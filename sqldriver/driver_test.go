// The tests in this file deliberately use ONLY database/sql and the
// blank-imported driver — the stock-consumer acceptance check: a Go
// application with no talign imports beyond the registration runs
// prepared placeholder ALIGN queries against both the embedded and the
// remote DSN and iterates rows incrementally.
package sqldriver_test

import (
	"context"
	"database/sql"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"talign/sqldriver"

	// Test scaffolding only (boots the in-process talignd the remote DSN
	// connects to, seeds big relations); the consumer paths below never
	// touch these.
	"talign/internal/dataset"
	"talign/internal/relation"
	"talign/internal/server"
)

// remoteDSN boots a demo talignd and returns its URL as a DSN.
func remoteDSN(t *testing.T) string {
	t.Helper()
	srv := server.New(server.Config{})
	r, p := dataset.Demo()
	srv.Catalog().Register("r", r)
	srv.Catalog().Register("p", p)
	srv.AnalyzeAll()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// alignSQL is the prepared placeholder ALIGN query of the acceptance
// criterion.
const alignSQL = `WITH r2 AS (SELECT Ts Us, Te Ue, * FROM r)
SELECT n, Us, Ue FROM (r2 ALIGN p ON DUR(Us, Ue) BETWEEN mn AND mx AND a >= $1) x
ORDER BY n, Us, Ts`

// runConsumer is the stock database/sql consumer: prepare, execute with
// two different bindings, iterate incrementally, scan into Go types.
func runConsumer(t *testing.T, dsn string) [][]any {
	t.Helper()
	db, err := sql.Open("talign", dsn)
	if err != nil {
		t.Fatalf("sql.Open(%q): %v", dsn, err)
	}
	defer db.Close()
	if err := db.PingContext(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}

	stmt, err := db.PrepareContext(context.Background(), alignSQL)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	defer stmt.Close()

	var out [][]any
	for _, minAge := range []int64{0, 30} {
		rows, err := stmt.QueryContext(context.Background(), minAge)
		if err != nil {
			t.Fatalf("Query(%d): %v", minAge, err)
		}
		cols, err := rows.Columns()
		if err != nil || !reflect.DeepEqual(cols, []string{"n", "us", "ue", "ts", "te"}) {
			t.Fatalf("Columns = %v (%v)", cols, err)
		}
		n := 0
		for rows.Next() {
			var name string
			var us, ue, ts, te int64
			if err := rows.Scan(&name, &us, &ue, &ts, &te); err != nil {
				t.Fatalf("Scan: %v", err)
			}
			if ts < us || te > ue {
				t.Fatalf("aligned interval [%d,%d) outside group interval [%d,%d)", ts, te, us, ue)
			}
			out = append(out, []any{minAge, name, us, ue, ts, te})
			n++
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("rows.Err: %v", err)
		}
		rows.Close()
		if n == 0 {
			t.Fatalf("Query(%d): no rows", minAge)
		}
	}
	return out
}

// TestStockConsumerEmbedded runs the consumer against the in-process
// engine.
func TestStockConsumerEmbedded(t *testing.T) {
	runConsumer(t, "talign://demo")
}

// TestStockConsumerRemote runs the identical consumer against a talignd
// server and requires identical results.
func TestStockConsumerRemote(t *testing.T) {
	emb := runConsumer(t, "talign://demo")
	rem := runConsumer(t, remoteDSN(t))
	if !reflect.DeepEqual(emb, rem) {
		t.Fatalf("embedded and remote driver results differ:\n%v\n%v", emb, rem)
	}
}

// TestDriverAdHocAndExplain covers un-prepared QueryContext, EXPLAIN's
// plan rows and ANALYZE through Exec.
func TestDriverAdHocAndExplain(t *testing.T) {
	db, err := sql.Open("talign", "talign://demo")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var count int64
	err = db.QueryRowContext(context.Background(),
		"SELECT COUNT(*) c, n FROM r GROUP BY n ORDER BY n LIMIT 1").Scan(&count, new(string), new(int64), new(int64))
	if err != nil || count != 2 {
		t.Fatalf("ad-hoc aggregate: count=%d err=%v", count, err)
	}

	rows, err := db.QueryContext(context.Background(), "EXPLAIN SELECT n FROM r")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, _ := rows.Columns()
	if !reflect.DeepEqual(cols, []string{"plan"}) {
		t.Fatalf("EXPLAIN columns = %v", cols)
	}
	var lines []string
	for rows.Next() {
		var l string
		if err := rows.Scan(&l); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, l)
	}
	if len(lines) == 0 || !contains(lines, "SeqScan r") {
		t.Fatalf("EXPLAIN lines = %v", lines)
	}

	if _, err := db.ExecContext(context.Background(), "ANALYZE p"); err != nil {
		t.Fatalf("Exec ANALYZE: %v", err)
	}

	// Transactions are refused.
	if _, err := db.BeginTx(context.Background(), nil); err == nil {
		t.Fatal("BeginTx succeeded")
	}

	// Wrong placeholder count is caught before execution.
	if _, err := db.QueryContext(context.Background(), "SELECT n FROM r WHERE n = $1"); err == nil {
		t.Fatal("missing parameter accepted")
	}
}

// TestDriverContextCancel: a cancelled context aborts a long-running
// driver query.
func TestDriverContextCancel(t *testing.T) {
	dsn := "talign://?analyze=0"
	db, err := sql.Open("talign", dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	seedBig(t, dsn)

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryContext(ctx, "SELECT v, Ts, Te FROM (big a ALIGN big b ON true) x")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	start := time.Now()
	for rows.Next() {
		if time.Since(start) > 10*time.Second {
			t.Fatal("cancelled query kept producing")
		}
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
}

func contains(lines []string, sub string) bool {
	for _, l := range lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

// seedBig registers a large relation in the shared embedded DB behind
// dsn (test scaffolding: uses the driver's native escape hatch).
func seedBig(t *testing.T, dsn string) {
	t.Helper()
	b := relation.NewBuilder("v int")
	for i := 0; i < 3000; i++ {
		b.Row(int64(i%11), int64(i%11)+40, int64(i))
	}
	db, err := sqldriver.Shared(dsn)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register("big", b.MustBuild()); err != nil {
		t.Fatal(err)
	}
}
