// Package sqldriver registers the temporal-alignment engine as a stock
// database/sql driver named "talign". A blank import is all an
// application needs:
//
//	import (
//		"database/sql"
//		_ "talign/sqldriver"
//	)
//
//	db, err := sql.Open("talign", "talign://demo")        // embedded
//	db, err := sql.Open("talign", "talignd://host:7411")  // remote
//
// Placeholders are the engine's $1..$N; PrepareContext plans once and
// executes many times through the backend's plan cache; QueryContext
// returns incrementally streamed rows (the cursor pulls executor batches
// or NDJSON wire frames on demand); and the query's context cancels the
// execution backend-side, embedded or remote. Result sets list the
// visible columns followed by the valid-time bounds "ts" and "te" (int64
// columns). EXPLAIN-style statements return a single "plan" column, one
// row per rendered line; ANALYZE works through Exec.
//
// Connections are read-only query channels: Exec of row-producing
// statements drains them, and transactions are not supported (relations
// are immutable snapshots; there is nothing to roll back).
//
// Embedded DSNs are shared: every connection to the same DSN uses one
// engine instance (catalog, plan cache, admission gate), so the pool
// behaves like a pool of sessions against one server, not N private
// databases.
package sqldriver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"strings"
	"sync"

	"talign"
	"talign/internal/value"
)

func init() {
	sql.Register("talign", &Driver{})
}

// Driver is the database/sql/driver entry point.
type Driver struct{}

// Open connects with a one-shot connector (the database/sql package
// prefers OpenConnector when available).
func (d *Driver) Open(dsn string) (driver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector implements driver.DriverContext: the DSN is validated
// and resolved to a shared talign.DB once, and every connection of the
// pool shares ONE backend session — statement names are process-unique,
// so sharing is safe, and it keeps a connection-churning pool from
// growing the server's session table without bound.
func (d *Driver) OpenConnector(dsn string) (driver.Connector, error) {
	db, err := sharedDB(dsn)
	if err != nil {
		return nil, err
	}
	return &connector{dsn: dsn, db: db, drv: d, sess: db.Session("")}, nil
}

// shared embedded/remote DB handles, one per DSN for the process
// lifetime: database/sql opens and closes conns dynamically, and an
// embedded catalog must survive the pool dropping to zero conns.
var (
	sharedMu  sync.Mutex
	sharedDBs = map[string]*talign.DB{}
)

func sharedDB(dsn string) (*talign.DB, error) {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if db, ok := sharedDBs[dsn]; ok {
		return db, nil
	}
	db, err := talign.Open(dsn)
	if err != nil {
		return nil, err
	}
	sharedDBs[dsn] = db
	return db, nil
}

// Shared returns the native talign.DB behind a DSN — the same instance
// every database/sql connection to that DSN uses. It is the escape
// hatch for embedded applications that need the native API alongside
// database/sql (registering in-memory relations, reading the engine's
// metrics) without opening a second engine.
func Shared(dsn string) (*talign.DB, error) { return sharedDB(dsn) }

// connector hands the pool connections that share one backend session
// and one prepared-statement cache.
type connector struct {
	dsn  string
	db   *talign.DB
	drv  *Driver
	sess *talign.Session

	mu    sync.Mutex
	stmts map[string]*talign.Stmt
}

// Connect implements driver.Connector.
func (c *connector) Connect(ctx context.Context) (driver.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &conn{c: c}, nil
}

// Driver implements driver.Connector.
func (c *connector) Driver() driver.Driver { return c.drv }

// stmt resolves query text to a backend prepared statement, preparing
// each distinct text once per pool: database/sql re-prepares per
// connection, and without this cache every re-prepare would register
// another named statement in the shared session forever.
func (c *connector) stmt(ctx context.Context, query string) (*talign.Stmt, error) {
	c.mu.Lock()
	st, ok := c.stmts[query]
	c.mu.Unlock()
	if ok {
		return st, nil
	}
	st, err := c.sess.Prepare(ctx, query)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.stmts == nil {
		c.stmts = map[string]*talign.Stmt{}
	}
	if prev, ok := c.stmts[query]; ok {
		st = prev // another conn raced the prepare; reuse its name
	} else {
		c.stmts[query] = st
	}
	c.mu.Unlock()
	return st, nil
}

// conn is one pooled connection over the connector's shared session.
type conn struct {
	c *connector
}

// Prepare implements driver.Conn.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext implements driver.ConnPrepareContext (through the
// connector's shared statement cache).
func (c *conn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	st, err := c.c.stmt(ctx, query)
	if err != nil {
		return nil, err
	}
	return &stmt{st: st}, nil
}

// Close implements driver.Conn; the session's plans stay in the shared
// LRU cache.
func (c *conn) Close() error { return nil }

// Begin implements driver.Conn. The engine serves immutable snapshot
// relations; there are no transactions.
func (c *conn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("talign: transactions are not supported")
}

// QueryContext implements driver.QueryerContext (ad-hoc statements skip
// the Prepare round-trip; the plan cache still catches repeats).
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	goArgs, err := namedArgs(args)
	if err != nil {
		return nil, err
	}
	r, err := c.c.sess.Query(ctx, query, goArgs...)
	if err != nil {
		return nil, err
	}
	return wrapRows(r), nil
}

// ExecContext implements driver.ExecerContext: the statement runs to
// completion (ANALYZE refreshes statistics this way) and reports how
// many rows it produced.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	goArgs, err := namedArgs(args)
	if err != nil {
		return nil, err
	}
	r, err := c.c.sess.Query(ctx, query, goArgs...)
	if err != nil {
		return nil, err
	}
	return drain(r)
}

// stmt is a prepared statement handle.
type stmt struct {
	st *talign.Stmt
}

// Close implements driver.Stmt.
func (s *stmt) Close() error { return s.st.Close() }

// NumInput implements driver.Stmt: the count of $N placeholders, which
// database/sql enforces before calling Query/Exec.
func (s *stmt) NumInput() int { return s.st.NumParams() }

// Query implements driver.Stmt.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.QueryContext(context.Background(), valueArgs(args))
}

// QueryContext implements driver.StmtQueryContext.
func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	goArgs, err := namedArgs(args)
	if err != nil {
		return nil, err
	}
	r, err := s.st.Query(ctx, goArgs...)
	if err != nil {
		return nil, err
	}
	return wrapRows(r), nil
}

// Exec implements driver.Stmt.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.ExecContext(context.Background(), valueArgs(args))
}

// ExecContext implements driver.StmtExecContext.
func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	goArgs, err := namedArgs(args)
	if err != nil {
		return nil, err
	}
	r, err := s.st.Query(ctx, goArgs...)
	if err != nil {
		return nil, err
	}
	return drain(r)
}

// namedArgs converts driver.NamedValue arguments ($1..$N are strictly
// ordinal; named parameters are rejected).
func namedArgs(args []driver.NamedValue) ([]any, error) {
	out := make([]any, len(args))
	for _, a := range args {
		if a.Name != "" {
			return nil, fmt.Errorf("talign: named parameters are not supported (use $%d)", a.Ordinal)
		}
		out[a.Ordinal-1] = a.Value
	}
	return out, nil
}

// valueArgs adapts legacy positional driver.Value arguments.
func valueArgs(args []driver.Value) []driver.NamedValue {
	out := make([]driver.NamedValue, len(args))
	for j, a := range args {
		out[j] = driver.NamedValue{Ordinal: j + 1, Value: a}
	}
	return out
}

// wrapRows adapts a talign cursor: plan-only results (EXPLAIN, EXPLAIN
// ANALYZE, ANALYZE through Query) become a one-column "plan" result with
// one row per rendered line.
func wrapRows(r *talign.Rows) driver.Rows {
	if p := r.Plan(); p != "" {
		r.Close()
		return &planRows{lines: strings.Split(strings.TrimRight(p, "\n"), "\n")}
	}
	return &rows{r: r}
}

// drain consumes a cursor to completion for Exec.
func drain(r *talign.Rows) (driver.Result, error) {
	defer r.Close()
	var n int64
	for r.Next() {
		n++
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return result{rows: n}, nil
}

// result reports how many rows an Exec produced.
type result struct{ rows int64 }

// LastInsertId implements driver.Result (never available).
func (result) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("talign: no insert ids")
}

// RowsAffected implements driver.Result.
func (r result) RowsAffected() (int64, error) { return r.rows, nil }

// rows streams a talign cursor through the driver interface.
type rows struct {
	r *talign.Rows
}

// Columns implements driver.Rows.
func (r *rows) Columns() []string { return r.r.Columns() }

// ColumnTypeDatabaseTypeName implements the optional driver interface,
// reporting the engine type names (int, float, string, bool, interval).
func (r *rows) ColumnTypeDatabaseTypeName(i int) string {
	types := r.r.Types()
	if i < len(types) {
		return strings.ToUpper(types[i])
	}
	return ""
}

// Close implements driver.Rows; closing early stops the producing
// pipeline without draining it.
func (r *rows) Close() error { return r.r.Close() }

// Next implements driver.Rows.
func (r *rows) Next(dest []driver.Value) error {
	if !r.r.Next() {
		if err := r.r.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	vals := r.r.Values()
	for i, v := range vals {
		dest[i] = driverValue(v)
	}
	return nil
}

// driverValue converts an engine value to a driver.Value.
func driverValue(v value.Value) driver.Value {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindBool:
		return v.Bool()
	case value.KindInt:
		return v.Int()
	case value.KindFloat:
		return v.Float()
	case value.KindString:
		return v.Str()
	}
	return v.String()
}

// planRows renders EXPLAIN-style output as a one-column result set.
type planRows struct {
	lines []string
	pos   int
}

// Columns implements driver.Rows.
func (p *planRows) Columns() []string { return []string{"plan"} }

// Close implements driver.Rows.
func (p *planRows) Close() error { return nil }

// Next implements driver.Rows.
func (p *planRows) Next(dest []driver.Value) error {
	if p.pos >= len(p.lines) {
		return io.EOF
	}
	dest[0] = p.lines[p.pos]
	p.pos++
	return nil
}
