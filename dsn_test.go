package talign

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"talign/internal/plan"
)

// TestDSNBatchOption covers the batch= option on both schemes: it must
// reach the embedded planner flags, survive on remote DSNs (whose other
// query options are embedded-only), and reject junk.
func TestDSNBatchOption(t *testing.T) {
	cfg, err := parseDSN("talign://mem?batch=512")
	if err != nil {
		t.Fatalf("parseDSN: %v", err)
	}
	if cfg.batch != 512 {
		t.Fatalf("embedded batch = %d, want 512", cfg.batch)
	}
	if got := cfg.flags().BatchSize; got != 512 {
		t.Fatalf("flags().BatchSize = %d, want 512", got)
	}

	cfg, err = parseDSN("talignd://localhost:7171?batch=256")
	if err != nil {
		t.Fatalf("parseDSN remote: %v", err)
	}
	if cfg.remote == "" || cfg.batch != 256 {
		t.Fatalf("remote cfg = %+v, want remote host with batch 256", cfg)
	}

	// Without the option the default batch size stays in force.
	cfg, err = parseDSN("talign://")
	if err != nil {
		t.Fatalf("parseDSN: %v", err)
	}
	if got, want := cfg.flags().BatchSize, plan.DefaultFlags().BatchSize; got != want {
		t.Fatalf("default BatchSize = %d, want %d", got, want)
	}

	if _, err := parseDSN("talign://?batch=nope"); err == nil {
		t.Fatal("batch=nope parsed")
	}
	if _, err := parseDSN("talignd://localhost:7171?batch=-1"); err == nil {
		t.Fatal("batch=-1 parsed")
	}
	// Embedded-only options must be rejected, not swallowed, on remote
	// DSNs.
	_, err = parseDSN("talignd://localhost:7171?load=a=b.csv")
	if err == nil || !strings.Contains(err.Error(), "embedded") {
		t.Fatalf("remote load= error = %v, want embedded-only rejection", err)
	}
}

// TestDSNBatchAppliesRemote runs a query over the wire with batch=1 and
// checks results still match the default: the override changes batch
// framing, never rows.
func TestDSNBatchAppliesRemote(t *testing.T) {
	db := openRemoteTest(t)
	dbSmall, err := Open("talignd://" + strings.TrimPrefix(db.dsn, "http://") + "?batch=1")
	if err != nil {
		t.Fatalf("Open with batch=1: %v", err)
	}
	defer dbSmall.Close()
	const q = "SELECT n, Ts, Te FROM (r a NORMALIZE r b USING (n)) x ORDER BY n, Ts"
	ctx := context.Background()
	wr, err := db.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := dbSmall.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	want, got := collect(t, wr), collect(t, gr)
	if len(want) == 0 || !reflect.DeepEqual(got, want) {
		t.Fatalf("batch=1 rows diverge: %v vs %v", got, want)
	}
}
