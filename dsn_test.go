package talign

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"talign/internal/plan"
)

// TestDSNBatchOption covers the batch= option on both schemes: it must
// reach the embedded planner flags, survive on remote DSNs (whose other
// query options are embedded-only), and reject junk.
func TestDSNBatchOption(t *testing.T) {
	cfg, err := parseDSN("talign://mem?batch=512")
	if err != nil {
		t.Fatalf("parseDSN: %v", err)
	}
	if cfg.batch != 512 {
		t.Fatalf("embedded batch = %d, want 512", cfg.batch)
	}
	if got := cfg.flags().BatchSize; got != 512 {
		t.Fatalf("flags().BatchSize = %d, want 512", got)
	}

	cfg, err = parseDSN("talignd://localhost:7171?batch=256")
	if err != nil {
		t.Fatalf("parseDSN remote: %v", err)
	}
	if cfg.remote == "" || cfg.batch != 256 {
		t.Fatalf("remote cfg = %+v, want remote host with batch 256", cfg)
	}

	// Without the option the default batch size stays in force.
	cfg, err = parseDSN("talign://")
	if err != nil {
		t.Fatalf("parseDSN: %v", err)
	}
	if got, want := cfg.flags().BatchSize, plan.DefaultFlags().BatchSize; got != want {
		t.Fatalf("default BatchSize = %d, want %d", got, want)
	}

	if _, err := parseDSN("talign://?batch=nope"); err == nil {
		t.Fatal("batch=nope parsed")
	}
	if _, err := parseDSN("talignd://localhost:7171?batch=-1"); err == nil {
		t.Fatal("batch=-1 parsed")
	}
	// Embedded-only options must be rejected, not swallowed, on remote
	// DSNs.
	_, err = parseDSN("talignd://localhost:7171?load=a=b.csv")
	if err == nil || !strings.Contains(err.Error(), "embedded") {
		t.Fatalf("remote load= error = %v, want embedded-only rejection", err)
	}
}

// TestDSNBatchAppliesRemote runs a query over the wire with batch=1 and
// checks results still match the default: the override changes batch
// framing, never rows.
func TestDSNBatchAppliesRemote(t *testing.T) {
	db := openRemoteTest(t)
	dbSmall, err := Open("talignd://" + strings.TrimPrefix(db.dsn, "http://") + "?batch=1")
	if err != nil {
		t.Fatalf("Open with batch=1: %v", err)
	}
	defer dbSmall.Close()
	const q = "SELECT n, Ts, Te FROM (r a NORMALIZE r b USING (n)) x ORDER BY n, Ts"
	ctx := context.Background()
	wr, err := db.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := dbSmall.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	want, got := collect(t, wr), collect(t, gr)
	if len(want) == 0 || !reflect.DeepEqual(got, want) {
		t.Fatalf("batch=1 rows diverge: %v vs %v", got, want)
	}
}

// TestDSNResilienceOptions covers the timeout=, retry= and budget
// options introduced with the query-lifecycle resilience layer.
func TestDSNResilienceOptions(t *testing.T) {
	cfg, err := parseDSN("talign://mem?timeout=250ms&max-rows=1000&max-bytes=4096")
	if err != nil {
		t.Fatalf("parseDSN: %v", err)
	}
	if cfg.timeout != 250*time.Millisecond || cfg.maxRows != 1000 || cfg.maxBytes != 4096 {
		t.Fatalf("embedded resilience cfg = %+v", cfg)
	}

	cfg, err = parseDSN("talignd://localhost:7171?timeout=2s&retry=5")
	if err != nil {
		t.Fatalf("parseDSN remote: %v", err)
	}
	if cfg.timeout != 2*time.Second || cfg.retry != 5 {
		t.Fatalf("remote resilience cfg = %+v", cfg)
	}

	// retry defaults to "unset" so the client can distinguish retry=0
	// (explicitly disabled) from no option (use the default).
	cfg, err = parseDSN("talignd://localhost:7171")
	if err != nil {
		t.Fatalf("parseDSN: %v", err)
	}
	if cfg.retry != -1 {
		t.Fatalf("unset retry = %d, want -1", cfg.retry)
	}
	cfg, err = parseDSN("talignd://localhost:7171?retry=0")
	if err != nil {
		t.Fatalf("parseDSN: %v", err)
	}
	if cfg.retry != 0 {
		t.Fatalf("retry=0 parsed as %d", cfg.retry)
	}

	// Bad values and misplaced options are rejected, not swallowed.
	if _, err := parseDSN("talign://?timeout=soon"); err == nil {
		t.Fatal("timeout=soon parsed")
	}
	if _, err := parseDSN("talign://?timeout=-5s"); err == nil {
		t.Fatal("timeout=-5s parsed")
	}
	if _, err := parseDSN("talign://?retry=3"); err == nil || !strings.Contains(err.Error(), "remote") {
		t.Fatalf("embedded retry= error = %v, want remote-only rejection", err)
	}
	if _, err := parseDSN("talignd://localhost:7171?max-rows=10"); err == nil || !strings.Contains(err.Error(), "embedded") {
		t.Fatalf("remote max-rows= error = %v, want embedded-only rejection", err)
	}
}

// TestEmbeddedTimeoutAndBudgetApply proves the embedded DSN options
// actually reach the server core: a tight budget aborts with the
// "resource" code.
func TestEmbeddedTimeoutAndBudgetApply(t *testing.T) {
	db, err := Open("talign://demo?max-rows=1")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	rows, err := db.Query(context.Background(), "SELECT n, Ts, Te FROM r")
	if err == nil {
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
	}
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("got %v, want a resource budget abort", err)
	}
}
