package talign

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"talign/internal/faultinject"
	"talign/internal/plan"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/server"
	"talign/internal/sqlish"
	"talign/internal/value"
	"talign/internal/wire"
)

// chaosQueries is the differential corpus: scans, joins, temporal
// primitives and aggregation over the randomized relations r and s, so
// injected faults land in every operator family (including exchange
// fragments under the forced-parallel flags).
var chaosQueries = []string{
	"SELECT a, b, Ts, Te FROM r",
	"SELECT a, b, Ts, Te FROM r WHERE a >= 1",
	"SELECT r.a, s.b FROM r JOIN s ON r.a = s.a",
	"SELECT a, b, Ts, Te FROM (r ALIGN s ON r.a = s.a) x",
	"SELECT a, b, Ts, Te FROM (r NORMALIZE s USING (a)) x",
	"SELECT a, b FROM r UNION SELECT a, b FROM s",
	"SELECT a, COUNT(*) c FROM r GROUP BY a",
}

// chaosSites pairs each fault-injection site with the kinds that are
// survivable there. Panics are only injected behind recovery boundaries
// (operator guards, exchange goroutines, the server's stream guard);
// client-side and handler sites get errors and delays, which exercise
// teardown without crashing unguarded stacks.
var chaosSites = []struct {
	site  string
	kinds []faultinject.Kind
}{
	{"exec.open", []faultinject.Kind{faultinject.KindPanic, faultinject.KindError, faultinject.KindDelay}},
	{"exec.next", []faultinject.Kind{faultinject.KindPanic, faultinject.KindError, faultinject.KindDelay}},
	{"exec.splitter.run", []faultinject.Kind{faultinject.KindPanic, faultinject.KindError, faultinject.KindDelay}},
	{"exec.colsplitter.run", []faultinject.Kind{faultinject.KindPanic, faultinject.KindError, faultinject.KindDelay}},
	{"exec.exchange.worker", []faultinject.Kind{faultinject.KindPanic, faultinject.KindError, faultinject.KindDelay}},
	{"server.stream", []faultinject.Kind{faultinject.KindPanic, faultinject.KindError, faultinject.KindDelay}},
	{"server.stream.rows", []faultinject.Kind{faultinject.KindError, faultinject.KindDelay}},
	{"wire.decode", []faultinject.Kind{faultinject.KindError, faultinject.KindDelay}},
}

// chaosCodes are the wire error codes a fault-injected run may
// legitimately end with.
var chaosCodes = map[string]bool{
	sqlish.ErrInternal:    true,
	sqlish.ErrExecute:     true,
	sqlish.ErrTimeout:     true,
	sqlish.ErrCancelled:   true,
	sqlish.ErrResource:    true,
	sqlish.ErrUnavailable: true,
}

// chaosRun executes one query through the public client and returns its
// rows canonicalized: each row rendered and the set sorted, so two
// executions compare byte-for-byte regardless of parallel interleaving.
func chaosRun(db *DB, q string) ([]string, error) {
	rows, err := db.Query(context.Background(), q)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []string
	for rows.Next() {
		vals := rows.Values()
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// chaosErrOK classifies a failed run: the error must be a structured
// wire error with a known code, or one of the client's own structured
// shapes (an injected decode fault, a truncated-stream report, a
// context deadline). A bare panic would have killed the test binary —
// reaching this function at all is the isolation proof.
func chaosErrOK(err error) bool {
	var we *wire.Error
	if errors.As(err, &we) {
		return chaosCodes[we.Code]
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, "faultinject:") ||
		strings.Contains(msg, "talign: bad stream") ||
		strings.Contains(msg, "talign: stream truncated")
}

// TestChaosDifferential is the fault-injection acceptance test (run with
// -race): randomized faults — panics, errors, delays — armed at named
// sites across the executor, the server and the wire client, over a
// randomized catalog and the differential query corpus. Every run must
// end in either a byte-correct result (identical to the fault-free
// baseline) or a structured, coded error; afterwards the server must
// report zero in-flight DOP and the process must hold no leaked
// goroutines.
func TestChaosDifferential(t *testing.T) {
	attrs := []schema.Attr{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
	}
	rng := rand.New(rand.NewSource(7411))
	cfg := randrel.DefaultConfig(attrs...)
	cfg.MaxTuples = 40
	rels := map[string]*relation.Relation{
		"r": randrel.Generate(rng, cfg),
		"s": randrel.Generate(rng, cfg),
	}

	flags := plan.DefaultFlags()
	flags.DOP = 4
	flags.ForceParallel = true
	srv := server.New(server.Config{Flags: flags, MaxDOP: 16})
	for name, rel := range rels {
		srv.Catalog().Register(name, rel)
	}
	srv.AnalyzeAll()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// retry=0: a retried run would mask the injected fault and turn a
	// deterministic differential into a flaky one.
	db, err := Open(ts.URL + "?retry=0")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	t.Cleanup(faultinject.Reset)

	baselineGoroutines := runtime.NumGoroutine()
	baseline := make(map[string][]string, len(chaosQueries))
	for _, q := range chaosQueries {
		rows, err := chaosRun(db, q)
		if err != nil {
			t.Fatalf("baseline %s: %v", q, err)
		}
		baseline[q] = rows
	}

	runs := 250
	if testing.Short() {
		runs = 60
	}
	var correct, failed int
	var fired uint64
	for i := 0; i < runs; i++ {
		q := chaosQueries[rng.Intn(len(chaosQueries))]
		sp := chaosSites[rng.Intn(len(chaosSites))]
		kind := sp.kinds[rng.Intn(len(sp.kinds))]
		after := rng.Intn(5)
		faultinject.Arm(sp.site, faultinject.Fault{
			Kind:  kind,
			After: after,
			Delay: time.Duration(rng.Intn(3)) * time.Millisecond,
		})
		got, err := chaosRun(db, q)
		fired += faultinject.Fired()
		faultinject.Reset()

		tag := fmt.Sprintf("run %d: %s@%s after=%d on %q", i, kind, sp.site, after, q)
		if err == nil {
			correct++
			if !equalStrings(got, baseline[q]) {
				t.Fatalf("%s: survived but rows differ from baseline\ngot  %v\nwant %v", tag, got, baseline[q])
			}
			continue
		}
		failed++
		if !chaosErrOK(err) {
			t.Fatalf("%s: unstructured error: %v", tag, err)
		}
	}
	t.Logf("chaos: %d runs, %d byte-correct, %d structured failures, %d faults fired",
		runs, correct, failed, fired)

	// Quiesce: the gate must be fully released and goroutines back to
	// baseline (HTTP keep-alive conns settle within the wait window).
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv.GateStats().InUse == 0 && runtime.NumGoroutine() <= baselineGoroutines+4 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if g := srv.GateStats(); g.InUse != 0 {
		t.Fatalf("gate still holds %d in-flight DOP after chaos", g.InUse)
	}
	if n := runtime.NumGoroutine(); n > baselineGoroutines+4 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baselineGoroutines, buf[:runtime.Stack(buf, true)])
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
