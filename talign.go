// Package talign is the public client API of the temporal-alignment
// engine: one stable contract — DB, Session, Stmt, Rows — over two
// interchangeable backends selected by DSN:
//
//	talign://[demo][?opts]    embedded: the full engine in-process
//	                          (catalog, plan cache, admission gate)
//	talignd://host:port       remote: a talignd server over the
//	                          wire-level NDJSON row-streaming protocol
//
// Results are incremental cursors backed directly by the batch executor
// (embedded) or the streaming wire protocol (remote): rows arrive as the
// pipeline produces them, a LIMIT stops the pipeline early, and the
// context passed to Query/Prepare is plumbed into every operator's batch
// loop — cancelling it aborts the query wherever it runs, releasing its
// admission-gate slot.
//
// DSN options shared by both backends (query parameters):
//
//	batch=N         executor batch-size override
//	timeout=D       per-query deadline, a Go duration ("30s", "2m");
//	                embedded arms the server core's deadline, remote a
//	                client-side deadline covering the whole stream
//
// Remote-only DSN options:
//
//	retry=N         retries beyond the first attempt for idempotent
//	                requests that fail at the transport level or hit a
//	                draining server (default 2), with exponential
//	                backoff and jitter
//
// Embedded-only DSN options:
//
//	demo            host part "demo" preloads the paper's hotel example
//	                relations r(n) and p(a, mn, mx)
//	load=name=path  load a CSV file as a relation (repeatable)
//	j=N             degree of parallelism (0 = all CPUs)
//	cache=N         prepared-plan cache capacity
//	max-dop=N       total in-flight DOP across concurrent queries
//	max-rows=N      per-query row budget across operator boundaries
//	max-bytes=N     per-query byte budget across operator boundaries
//	analyze=0       skip the automatic ANALYZE of loaded tables
//
// A database/sql driver over this package lives in talign/sqldriver;
// stock Go applications need nothing beyond that driver registration.
package talign

import (
	"context"
	"fmt"

	"talign/internal/relation"
	"talign/internal/stats"
	"talign/internal/value"
)

// DB is a handle to an embedded engine instance or a remote talignd
// server. It is safe for concurrent use; queries issued through it share
// the backend's plan cache and admission gate. Close releases the
// backend (for remote DBs the underlying HTTP connections).
type DB struct {
	backend backend
	dsn     string
}

// backend is the seam between the stable public contract and the two
// transports underneath it (AlignNet-style: one interface, embedded or
// remote execution behind it).
type backend interface {
	// query starts one execution and returns an incremental row source.
	// Exactly one of stmt (a prepared statement name) and sql is set.
	query(ctx context.Context, session, stmt, sql string, params []value.Value) (*Rows, error)
	// prepare registers sql under name in the session and reports the
	// statement's parameter count and result schema.
	prepare(ctx context.Context, session, name, sql string) (stmtMeta, error)
	// register adds a relation to the catalog (embedded only).
	register(name string, rel *relation.Relation) error
	// analyze refreshes a table's statistics (embedded only; remote
	// callers issue the ANALYZE statement instead).
	analyze(name string) (*stats.Table, error)
	// close releases the backend.
	close() error
}

// stmtMeta is what prepare learns about a statement.
type stmtMeta struct {
	numParams int
	columns   []string
	types     []string
}

// Open connects to the backend named by dsn: "talign://..." for an
// embedded engine, "talignd://host:port" (or an http:// URL) for a
// remote talignd server. The remote form performs a health check before
// returning.
func Open(dsn string) (*DB, error) {
	cfg, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	var b backend
	if cfg.remote != "" {
		b, err = openRemote(cfg)
	} else {
		b, err = openEmbedded(cfg)
	}
	if err != nil {
		return nil, err
	}
	return &DB{backend: b, dsn: dsn}, nil
}

// Query executes one statement as an incremental cursor: rows stream out
// of the executor (or off the wire) as they are produced. args bind the
// statement's $1..$N placeholders in order. Cancelling ctx aborts the
// execution cooperatively — server-side for remote DBs — and the
// returned Rows must be Closed (Close is idempotent; exhausting the
// cursor closes it implicitly).
//
// EXPLAIN, EXPLAIN ANALYZE and ANALYZE statements produce no rows; their
// rendering is available through Rows.Plan.
func (db *DB) Query(ctx context.Context, sql string, args ...any) (*Rows, error) {
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	return db.backend.query(ctx, "", "", sql, params)
}

// Session returns a named scope for prepared statements. Sessions are
// cheap handles: statements prepared in one session are invisible to
// others, which is what lets many clients of one server (or one embedded
// DB) use the same statement names without collisions. An empty id gets
// a process-unique one.
func (db *DB) Session(id string) *Session {
	if id == "" {
		id = nextSessionID()
	}
	return &Session{db: db, id: id}
}

// Prepare is shorthand for preparing in an anonymous session.
func (db *DB) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	return db.Session("").Prepare(ctx, sql)
}

// Register adds (or replaces) a named relation in an embedded DB's
// catalog; it errors on remote DBs, whose catalog lives with the server.
func (db *DB) Register(name string, rel *relation.Relation) error {
	return db.backend.register(name, rel)
}

// Analyze computes and installs optimizer statistics for a registered
// table of an embedded DB (remote callers run the ANALYZE statement).
func (db *DB) Analyze(name string) (*stats.Table, error) {
	return db.backend.analyze(name)
}

// Close releases the backend. In-flight cursors keep working; new
// queries fail.
func (db *DB) Close() error { return db.backend.close() }

// String identifies the DB by its DSN.
func (db *DB) String() string { return db.dsn }

// Session is a prepared-statement scope on a DB (see DB.Session).
type Session struct {
	db *DB
	id string
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Query executes ad-hoc SQL in this session (see DB.Query).
func (s *Session) Query(ctx context.Context, sql string, args ...any) (*Rows, error) {
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	return s.db.backend.query(ctx, s.id, "", sql, params)
}

// Prepare parses and plans sql once, registering it under a fresh name
// in the session; every Stmt.Query afterwards reuses the cached plan
// with new parameter bindings.
func (s *Session) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	name := nextStmtName()
	meta, err := s.db.backend.prepare(ctx, s.id, name, sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{sess: s, name: name, meta: meta}, nil
}

// Stmt is a prepared statement bound to a session.
type Stmt struct {
	sess *Session
	name string
	meta stmtMeta
}

// NumParams reports how many $N placeholders the statement takes.
func (st *Stmt) NumParams() int { return st.meta.numParams }

// Columns lists the result columns: the visible attributes followed by
// the valid-time bounds "ts" and "te".
func (st *Stmt) Columns() []string { return append([]string(nil), st.meta.columns...) }

// Types lists the column type names, parallel to Columns.
func (st *Stmt) Types() []string { return append([]string(nil), st.meta.types...) }

// Query executes the prepared statement with args bound to $1..$N,
// returning an incremental cursor (see DB.Query for the contract).
func (st *Stmt) Query(ctx context.Context, args ...any) (*Rows, error) {
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	if len(params) != st.meta.numParams {
		return nil, fmt.Errorf("talign: statement wants %d parameter(s), got %d", st.meta.numParams, len(params))
	}
	return st.sess.db.backend.query(ctx, st.sess.id, st.name, "", params)
}

// Close releases the statement handle. The plan stays in the backend's
// shared plan cache (eviction is LRU), so Close never costs a replan.
func (st *Stmt) Close() error { return nil }

// toValues converts Go argument values to engine values: nil, bool,
// integers, floats, strings, and value.Value pass through.
func toValues(args []any) ([]value.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]value.Value, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("talign: arg %d: %v", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

// toValue converts one Go value to an engine value.
func toValue(a any) (value.Value, error) {
	switch t := a.(type) {
	case nil:
		return value.Null, nil
	case value.Value:
		return t, nil
	case bool:
		return value.NewBool(t), nil
	case int:
		return value.NewInt(int64(t)), nil
	case int32:
		return value.NewInt(int64(t)), nil
	case int64:
		return value.NewInt(t), nil
	case float32:
		return value.NewFloat(float64(t)), nil
	case float64:
		return value.NewFloat(t), nil
	case string:
		return value.NewString(t), nil
	case []byte:
		return value.NewString(string(t)), nil
	}
	return value.Null, fmt.Errorf("unsupported argument type %T", a)
}
