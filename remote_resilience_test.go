package talign

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"talign/internal/dataset"
	"talign/internal/relation"
	"talign/internal/server"
)

// flaky503 wraps a real talignd handler and fails the first n requests
// per path with 503, the way a draining replica behind a load balancer
// would.
type flaky503 struct {
	inner http.Handler
	n     int32
	seen  atomic.Int32
}

func (f *flaky503) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.seen.Add(1) <= f.n {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"unavailable","message":"draining"}}`))
		return
	}
	f.inner.ServeHTTP(w, r)
}

// TestClientRetries503 proves the wire client retries transient 503s
// with backoff: an Open plus a query against a server that refuses the
// first two requests must still succeed.
func TestClientRetries503(t *testing.T) {
	srv := server.New(server.Config{})
	r, p := dataset.Demo()
	srv.Catalog().Register("r", r)
	srv.Catalog().Register("p", p)
	flaky := &flaky503{inner: srv.Handler(), n: 2}
	ts := httptest.NewServer(flaky)
	t.Cleanup(ts.Close)

	db, err := Open(ts.URL) // default retry=2 absorbs both refusals
	if err != nil {
		t.Fatalf("Open through flaky server: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	rows, err := db.Query(context.Background(), "SELECT n FROM r")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil || n == 0 {
		t.Fatalf("rows: %d, err %v", n, err)
	}
	rows.Close()
}

// TestClientRetryDisabled proves retry=0 turns retries off: the first
// 503 surfaces as the structured "unavailable" error.
func TestClientRetryDisabled(t *testing.T) {
	srv := server.New(server.Config{})
	flaky := &flaky503{inner: srv.Handler(), n: 1}
	ts := httptest.NewServer(flaky)
	t.Cleanup(ts.Close)

	_, err := Open(ts.URL + "?retry=0")
	if err == nil || !strings.Contains(err.Error(), "unavailable") {
		t.Fatalf("Open with retry=0 against 503: %v, want unavailable", err)
	}
}

// TestRemoteClientTimeout proves the timeout= DSN option arms a
// client-side deadline over the whole remote stream: a slow ALIGN dies
// with a deadline error instead of hanging.
func TestRemoteClientTimeout(t *testing.T) {
	srv := server.New(server.Config{})
	b := relation.NewBuilder("v int")
	for i := 0; i < 3000; i++ {
		b.Row(int64(i%13), int64(i%13)+50, int64(i))
	}
	srv.Catalog().Register("big", b.MustBuild())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	db, err := Open(ts.URL + "?timeout=100ms")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })

	rows, err := db.Query(context.Background(), "SELECT v, Ts, Te FROM (big a ALIGN big b ON true) x")
	if err == nil {
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
	}
	if err == nil {
		t.Fatal("slow query under timeout=100ms succeeded")
	}
	// The deadline can surface client-side (context error on the
	// connection) or server-side (structured "timeout" frame), depending
	// on who notices first; both are correct.
	if !errors.Is(err, context.DeadlineExceeded) && !strings.Contains(err.Error(), "deadline") && !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("got %v, want a deadline error", err)
	}
}
