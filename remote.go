package talign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"talign/internal/relation"
	"talign/internal/stats"
	"talign/internal/value"
	"talign/internal/wire"
)

// remoteDB speaks talignd's wire protocol: prepared statements through
// POST /prepare and executions through the chunked NDJSON row stream of
// POST /query/stream. The request context rides on the HTTP request, so
// cancelling it tears the connection down and — through the server's
// request context — aborts the query server-side.
type remoteDB struct {
	base   string
	batch  int // batch= DSN option, sent with every query request
	http   *http.Client
	closed atomic.Bool
}

// openRemote builds the wire backend for a talignd:// DSN and checks the
// server is reachable.
func openRemote(cfg dsnConfig) (backend, error) {
	r := &remoteDB{base: cfg.remote, batch: cfg.batch, http: &http.Client{}}
	resp, err := r.http.Get(r.base + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("talign: cannot reach talignd at %s: %v", cfg.remote, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("talign: talignd at %s: healthz returned %s", cfg.remote, resp.Status)
	}
	return r, nil
}

// wireRequest is the /query, /query/stream and /prepare body.
type wireRequest struct {
	Session string `json:"session,omitempty"`
	Name    string `json:"name,omitempty"`
	Stmt    string `json:"stmt,omitempty"`
	SQL     string `json:"sql,omitempty"`
	Params  []any  `json:"params,omitempty"`
	Batch   int    `json:"batch,omitempty"`
}

func (r *remoteDB) post(ctx context.Context, path string, body wireRequest) (*http.Response, error) {
	if r.closed.Load() {
		return nil, fmt.Errorf("talign: DB is closed")
	}
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return r.http.Do(req)
}

// httpErr decodes a non-200 response's structured error body.
func httpErr(resp *http.Response) error {
	defer resp.Body.Close()
	var out struct {
		Error *wire.Error `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err == nil && out.Error != nil {
		return out.Error
	}
	return fmt.Errorf("talign: server returned %s", resp.Status)
}

func (r *remoteDB) query(ctx context.Context, session, stmt, sql string, params []value.Value) (*Rows, error) {
	cells := make([]any, len(params))
	for i, p := range params {
		cells[i] = wire.Cell(p)
	}
	resp, err := r.post(ctx, "/query/stream", wireRequest{Session: session, Stmt: stmt, SQL: sql, Params: cells, Batch: r.batch})
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, httpErr(resp)
	}
	src := &remoteSource{body: resp.Body, dec: newFrameDecoder(resp.Body)}
	first, err := src.dec.next()
	if err != nil {
		src.close()
		return nil, fmt.Errorf("talign: bad stream: %v", err)
	}
	switch first.Frame {
	case wire.FrameError:
		src.close()
		return nil, first.Error
	case wire.FramePlan:
		src.close()
		return &Rows{plan: first.Plan, cacheHit: first.CacheHit}, nil
	case wire.FrameSchema:
		src.types = first.Types
		return &Rows{cols: first.Columns, types: first.Types, cacheHit: first.CacheHit, src: src}, nil
	}
	src.close()
	return nil, fmt.Errorf("talign: bad stream: unexpected %q frame", first.Frame)
}

func (r *remoteDB) prepare(ctx context.Context, session, name, sql string) (stmtMeta, error) {
	resp, err := r.post(ctx, "/prepare", wireRequest{Session: session, Name: name, SQL: sql})
	if err != nil {
		return stmtMeta{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return stmtMeta{}, httpErr(resp)
	}
	defer resp.Body.Close()
	var out struct {
		Params  int      `json:"params"`
		Columns []string `json:"columns"`
		Types   []string `json:"types"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return stmtMeta{}, fmt.Errorf("talign: bad prepare response: %v", err)
	}
	return stmtMeta{numParams: out.Params, columns: out.Columns, types: out.Types}, nil
}

func (r *remoteDB) register(string, *relation.Relation) error {
	return fmt.Errorf("talign: Register needs an embedded DB; load the catalog on the talignd side")
}

func (r *remoteDB) analyze(string) (*stats.Table, error) {
	return nil, fmt.Errorf("talign: Analyze needs an embedded DB; run the ANALYZE statement instead")
}

func (r *remoteDB) close() error {
	r.closed.Store(true)
	r.http.CloseIdleConnections()
	return nil
}

// frameDecoder reads NDJSON frames off the wire with UseNumber so int64
// cells survive exactly.
type frameDecoder struct{ dec *json.Decoder }

func newFrameDecoder(body io.Reader) *frameDecoder {
	dec := json.NewDecoder(body)
	dec.UseNumber()
	return &frameDecoder{dec: dec}
}

func (d *frameDecoder) next() (wire.Frame, error) {
	var f wire.Frame
	err := d.dec.Decode(&f)
	return f, err
}

// remoteSource adapts the frame stream to the Rows contract. A stream
// that ends without a status frame (server died, connection cut) is an
// error, never a silent truncation. The schema frame's column types
// steer cell decoding, so string-escaped NaN/Inf floats and periods
// come back as their real kinds, identical to the embedded backend.
type remoteSource struct {
	body   io.ReadCloser
	dec    *frameDecoder
	types  []string
	rows   [][]any
	pos    int
	closed bool
}

func (s *remoteSource) next() ([]value.Value, error) {
	for s.pos >= len(s.rows) {
		f, err := s.dec.next()
		if err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("talign: stream truncated before status frame")
			}
			return nil, err
		}
		switch f.Frame {
		case wire.FrameRows:
			s.rows, s.pos = f.Rows, 0
		case wire.FrameStatus:
			return nil, nil
		case wire.FrameError:
			return nil, f.Error
		default:
			return nil, fmt.Errorf("talign: bad stream: unexpected %q frame", f.Frame)
		}
	}
	cells := s.rows[s.pos]
	s.pos++
	row := make([]value.Value, len(cells))
	for i, c := range cells {
		typ := ""
		if i < len(s.types) {
			typ = s.types[i]
		}
		v, err := wire.ValueAs(c, typ)
		if err != nil {
			return nil, fmt.Errorf("talign: bad cell: %v", err)
		}
		row[i] = v
	}
	return row, nil
}

func (s *remoteSource) close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	// Closing the body mid-stream drops the connection; the server sees
	// the disconnect through its request context and cancels the query.
	return s.body.Close()
}
