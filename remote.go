package talign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"talign/internal/backoff"
	"talign/internal/faultinject"
	"talign/internal/relation"
	"talign/internal/stats"
	"talign/internal/value"
	"talign/internal/wire"
)

// Client-side resilience defaults. Control requests (healthz, prepare)
// are small and bounded, so they get an overall per-request timeout; row
// streams can legitimately run for minutes, so their client bounds only
// the phases that must be fast — dialing, the TLS handshake, and the
// wait for response headers — never the body.
const (
	controlTimeout        = 10 * time.Second
	dialTimeout           = 5 * time.Second
	tlsHandshakeTimeout   = 5 * time.Second
	responseHeaderTimeout = 60 * time.Second
	defaultRetries        = 2 // retries beyond the first attempt
)

// remoteDB speaks talignd's wire protocol: prepared statements through
// POST /prepare and executions through the chunked NDJSON row stream of
// POST /query/stream. The request context rides on the HTTP request, so
// cancelling it tears the connection down and — through the server's
// request context — aborts the query server-side.
//
// Requests that fail before any response bytes arrive (a transport
// error, or a 503 from a draining server) are retried with exponential
// backoff and jitter; every request this backend issues is idempotent
// (the dialect is read-only and prepare is a pure registration), so a
// retry can at worst repeat work, never duplicate an effect.
type remoteDB struct {
	base    string
	batch   int           // batch= DSN option, sent with every query request
	timeout time.Duration // timeout= DSN option: client-side per-query deadline
	retry   int           // retry= DSN option: retries beyond the first attempt
	control *http.Client  // bounded end-to-end: healthz, prepare
	stream  *http.Client  // row streams: transport-phase timeouts only
	closed  atomic.Bool
}

// openRemote builds the wire backend for a talignd:// DSN and checks the
// server is reachable.
func openRemote(cfg dsnConfig) (backend, error) {
	dialer := &net.Dialer{Timeout: dialTimeout, KeepAlive: 30 * time.Second}
	transport := &http.Transport{
		DialContext:           dialer.DialContext,
		TLSHandshakeTimeout:   tlsHandshakeTimeout,
		ResponseHeaderTimeout: responseHeaderTimeout,
	}
	if cfg.timeout > 0 && cfg.timeout+10*time.Second > responseHeaderTimeout {
		// The server holds headers back while the query waits at the
		// admission gate, so the header timeout must outlast the query
		// deadline or slow-but-legal queries die as transport errors.
		transport.ResponseHeaderTimeout = cfg.timeout + 10*time.Second
	}
	retry := cfg.retry
	if retry < 0 {
		retry = defaultRetries
	}
	r := &remoteDB{
		base:    cfg.remote,
		batch:   cfg.batch,
		timeout: cfg.timeout,
		retry:   retry,
		control: &http.Client{Timeout: controlTimeout, Transport: transport},
		stream:  &http.Client{Transport: transport},
	}
	resp, err := r.retryDo(context.Background(), r.control, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, r.base+"/healthz", nil)
	})
	if err != nil {
		return nil, fmt.Errorf("talign: cannot reach talignd at %s: %v", cfg.remote, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("talign: talignd at %s: healthz returned %s", cfg.remote, resp.Status)
	}
	return r, nil
}

// retryDo issues the request up to r.retry+1 times, retrying transport
// failures and 503 responses (a draining or overloaded server) with
// exponential backoff plus jitter. mk builds a fresh request per attempt
// (request bodies are single-use).
func (r *remoteDB) retryDo(ctx context.Context, client *http.Client, mk func() (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := mk()
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req.WithContext(ctx))
		if err == nil && resp.StatusCode != http.StatusServiceUnavailable {
			return resp, nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = httpErr(resp) // decodes the structured body and closes it
		}
		if attempt >= r.retry || ctx.Err() != nil {
			return nil, lastErr
		}
		select {
		case <-time.After(backoff.Default(attempt)):
		case <-ctx.Done():
			return nil, lastErr
		}
	}
}

// wireRequest is the /query, /query/stream and /prepare body.
type wireRequest struct {
	Session string `json:"session,omitempty"`
	Name    string `json:"name,omitempty"`
	Stmt    string `json:"stmt,omitempty"`
	SQL     string `json:"sql,omitempty"`
	Params  []any  `json:"params,omitempty"`
	Batch   int    `json:"batch,omitempty"`
}

func (r *remoteDB) post(ctx context.Context, client *http.Client, path string, body wireRequest) (*http.Response, error) {
	if r.closed.Load() {
		return nil, fmt.Errorf("talign: DB is closed")
	}
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return r.retryDo(ctx, client, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
}

// httpErr decodes a non-200 response's structured error body.
func httpErr(resp *http.Response) error {
	defer resp.Body.Close()
	var out struct {
		Error *wire.Error `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err == nil && out.Error != nil {
		return out.Error
	}
	return fmt.Errorf("talign: server returned %s", resp.Status)
}

func (r *remoteDB) query(ctx context.Context, session, stmt, sql string, params []value.Value) (*Rows, error) {
	cells := make([]any, len(params))
	for i, p := range params {
		cells[i] = wire.Cell(p)
	}
	// The timeout= deadline covers the whole query — connection, server
	// execution, and reading the stream — and is released when the Rows
	// close. Retries happen before the first frame is consumed, so a
	// retried query never splices two executions' rows together.
	cancel := func() {}
	if r.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
	}
	resp, err := r.post(ctx, r.stream, "/query/stream", wireRequest{Session: session, Stmt: stmt, SQL: sql, Params: cells, Batch: r.batch})
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		return nil, httpErr(resp)
	}
	src := &remoteSource{body: resp.Body, dec: newFrameDecoder(resp.Body), cancel: cancel}
	first, err := src.dec.next()
	if err != nil {
		src.close()
		return nil, fmt.Errorf("talign: bad stream: %v", err)
	}
	switch first.Frame {
	case wire.FrameError:
		src.close()
		return nil, first.Error
	case wire.FramePlan:
		src.close()
		return &Rows{plan: first.Plan, cacheHit: first.CacheHit}, nil
	case wire.FrameSchema:
		src.types = first.Types
		return &Rows{cols: first.Columns, types: first.Types, cacheHit: first.CacheHit, src: src}, nil
	}
	src.close()
	return nil, fmt.Errorf("talign: bad stream: unexpected %q frame", first.Frame)
}

func (r *remoteDB) prepare(ctx context.Context, session, name, sql string) (stmtMeta, error) {
	resp, err := r.post(ctx, r.control, "/prepare", wireRequest{Session: session, Name: name, SQL: sql})
	if err != nil {
		return stmtMeta{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return stmtMeta{}, httpErr(resp)
	}
	defer resp.Body.Close()
	var out struct {
		Params  int      `json:"params"`
		Columns []string `json:"columns"`
		Types   []string `json:"types"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return stmtMeta{}, fmt.Errorf("talign: bad prepare response: %v", err)
	}
	return stmtMeta{numParams: out.Params, columns: out.Columns, types: out.Types}, nil
}

func (r *remoteDB) register(string, *relation.Relation) error {
	return fmt.Errorf("talign: Register needs an embedded DB; load the catalog on the talignd side")
}

func (r *remoteDB) analyze(string) (*stats.Table, error) {
	return nil, fmt.Errorf("talign: Analyze needs an embedded DB; run the ANALYZE statement instead")
}

func (r *remoteDB) close() error {
	r.closed.Store(true)
	r.control.CloseIdleConnections()
	r.stream.CloseIdleConnections()
	return nil
}

// frameDecoder reads NDJSON frames off the wire with UseNumber so int64
// cells survive exactly.
type frameDecoder struct{ dec *json.Decoder }

func newFrameDecoder(body io.Reader) *frameDecoder {
	dec := json.NewDecoder(body)
	dec.UseNumber()
	return &frameDecoder{dec: dec}
}

func (d *frameDecoder) next() (wire.Frame, error) {
	if err := faultinject.Hit("wire.decode"); err != nil {
		return wire.Frame{}, err
	}
	var f wire.Frame
	err := d.dec.Decode(&f)
	return f, err
}

// remoteSource adapts the frame stream to the Rows contract. A stream
// that ends without a status frame (server died, connection cut) is an
// error, never a silent truncation. The schema frame's column types
// steer cell decoding, so string-escaped NaN/Inf floats and periods
// come back as their real kinds, identical to the embedded backend.
type remoteSource struct {
	body   io.ReadCloser
	dec    *frameDecoder
	cancel func() // releases the timeout= deadline context, if any
	types  []string
	rows   [][]any
	pos    int
	closed bool
}

func (s *remoteSource) next() ([]value.Value, error) {
	for s.pos >= len(s.rows) {
		f, err := s.dec.next()
		if err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("talign: stream truncated before status frame")
			}
			return nil, err
		}
		switch f.Frame {
		case wire.FrameRows:
			s.rows, s.pos = f.Rows, 0
		case wire.FrameStatus:
			return nil, nil
		case wire.FrameError:
			return nil, f.Error
		default:
			return nil, fmt.Errorf("talign: bad stream: unexpected %q frame", f.Frame)
		}
	}
	cells := s.rows[s.pos]
	s.pos++
	row := make([]value.Value, len(cells))
	for i, c := range cells {
		typ := ""
		if i < len(s.types) {
			typ = s.types[i]
		}
		v, err := wire.ValueAs(c, typ)
		if err != nil {
			return nil, fmt.Errorf("talign: bad cell: %v", err)
		}
		row[i] = v
	}
	return row, nil
}

func (s *remoteSource) close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.cancel != nil {
		s.cancel()
	}
	// Closing the body mid-stream drops the connection; the server sees
	// the disconnect through its request context and cancels the query.
	return s.body.Close()
}
