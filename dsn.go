package talign

import (
	"fmt"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"talign/internal/plan"
)

// dsnConfig is the parsed form of an Open DSN.
type dsnConfig struct {
	// remote is the base URL of a talignd server; empty for embedded.
	remote string

	// batch overrides the executor batch size; it applies to both
	// backends (embedded planner flags, or per-request on the wire).
	batch int

	// timeout is the per-query deadline; it applies to both backends
	// (the embedded server core's deadline, or a client-side context
	// deadline on every remote request). Zero means no deadline.
	timeout time.Duration

	// retry is the number of retries (beyond the first attempt) for
	// idempotent remote requests that fail at the transport level or hit
	// a draining server; remote-only. -1 means "not set, use default".
	retry int

	// Embedded options.
	demo     bool
	loads    [][2]string // name, csv path
	dop      int
	cache    int
	maxDOP   int
	maxRows  int
	maxBytes int
	analyze  bool
}

// parseDSN splits a DSN into backend kind and options.
func parseDSN(dsn string) (dsnConfig, error) {
	cfg := dsnConfig{dop: 1, analyze: true, retry: -1}
	u, err := url.Parse(dsn)
	if err != nil {
		return cfg, fmt.Errorf("talign: bad DSN %q: %v", dsn, err)
	}
	switch u.Scheme {
	case "talignd":
		if u.Host == "" {
			return cfg, fmt.Errorf("talign: DSN %q needs host:port", dsn)
		}
		cfg.remote = "http://" + u.Host
	case "http", "https":
		cfg.remote = strings.TrimRight(u.Scheme+"://"+u.Host, "/")
	case "talign":
		// Embedded; catalog and options below.
	default:
		return cfg, fmt.Errorf("talign: DSN %q: unknown scheme %q (use talign:// or talignd://)", dsn, u.Scheme)
	}
	if cfg.remote == "" {
		switch u.Host {
		case "", "mem":
		case "demo":
			cfg.demo = true
		default:
			return cfg, fmt.Errorf("talign: DSN %q: unknown embedded catalog %q (use \"demo\" or none)", dsn, u.Host)
		}
	}
	q := u.Query()
	for key, vals := range q {
		// Options shared by both backends.
		switch key {
		case "batch":
			if cfg.batch, err = dsnInt(key, vals); err != nil {
				return cfg, err
			}
			continue
		case "timeout":
			d, derr := time.ParseDuration(vals[len(vals)-1])
			if derr != nil || d < 0 {
				return cfg, fmt.Errorf("talign: DSN option timeout=%q is not a non-negative duration", vals[len(vals)-1])
			}
			cfg.timeout = d
			continue
		case "retry":
			// Retrying is a wire-level concern; an embedded query either
			// runs or fails deterministically, so retry= there is a
			// configuration mistake worth surfacing.
			if cfg.remote == "" {
				return cfg, fmt.Errorf("talign: DSN option %q applies to remote talignd:// only", key)
			}
			if cfg.retry, err = dsnInt(key, vals); err != nil {
				return cfg, err
			}
			continue
		}
		// Everything else configures the embedded engine; rejecting it
		// on remote DSNs beats silently ignoring a load= or j= the
		// server can never honor.
		if cfg.remote != "" {
			return cfg, fmt.Errorf("talign: DSN option %q applies to embedded talign:// only", key)
		}
		switch key {
		case "load":
			for _, v := range vals {
				name, path, ok := strings.Cut(v, "=")
				if !ok || name == "" || path == "" {
					return cfg, fmt.Errorf("talign: DSN load option %q is not name=file.csv", v)
				}
				cfg.loads = append(cfg.loads, [2]string{name, path})
			}
		case "j":
			if cfg.dop, err = dsnInt(key, vals); err != nil {
				return cfg, err
			}
			if cfg.dop == 0 {
				cfg.dop = runtime.NumCPU()
			}
		case "cache":
			if cfg.cache, err = dsnInt(key, vals); err != nil {
				return cfg, err
			}
		case "max-dop", "maxdop":
			if cfg.maxDOP, err = dsnInt(key, vals); err != nil {
				return cfg, err
			}
		case "max-rows", "maxrows":
			if cfg.maxRows, err = dsnInt(key, vals); err != nil {
				return cfg, err
			}
		case "max-bytes", "maxbytes":
			if cfg.maxBytes, err = dsnInt(key, vals); err != nil {
				return cfg, err
			}
		case "analyze":
			cfg.analyze = vals[len(vals)-1] != "0" && vals[len(vals)-1] != "false"
		default:
			return cfg, fmt.Errorf("talign: DSN option %q is not known", key)
		}
	}
	return cfg, nil
}

// dsnInt parses the last occurrence of a numeric DSN option.
func dsnInt(key string, vals []string) (int, error) {
	n, err := strconv.Atoi(vals[len(vals)-1])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("talign: DSN option %s=%q is not a non-negative integer", key, vals[len(vals)-1])
	}
	return n, nil
}

// flags builds the embedded planner flags for this DSN.
func (c dsnConfig) flags() plan.Flags {
	f := plan.DefaultFlags()
	if c.dop > 0 {
		f.DOP = c.dop
	}
	if c.batch > 0 {
		f.BatchSize = c.batch
	}
	return f
}

// Process-unique session and statement names for the anonymous-handle
// convenience paths.
var (
	sessionSeq atomic.Uint64
	stmtSeq    atomic.Uint64
)

func nextSessionID() string {
	return fmt.Sprintf("talign-sess-%d", sessionSeq.Add(1))
}

func nextStmtName() string {
	return fmt.Sprintf("stmt-%d", stmtSeq.Add(1))
}
