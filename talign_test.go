package talign

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"talign/internal/dataset"
	"talign/internal/relation"
	"talign/internal/server"
	"talign/internal/sqlish"
)

// openRemoteTest boots an httptest talignd with the demo catalog and
// connects through the public client.
func openRemoteTest(t *testing.T) *DB {
	t.Helper()
	srv := server.New(server.Config{})
	r, p := dataset.Demo()
	srv.Catalog().Register("r", r)
	srv.Catalog().Register("p", p)
	srv.AnalyzeAll()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	db, err := Open(ts.URL)
	if err != nil {
		t.Fatalf("remote Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// collect drains a cursor into plain Go rows.
func collect(t *testing.T, rows *Rows) [][]any {
	t.Helper()
	defer rows.Close()
	var out [][]any
	for rows.Next() {
		vals := rows.Values()
		row := make([]any, len(vals))
		for i := range vals {
			row[i] = goValue(vals[i])
		}
		out = append(out, row)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows: %v", err)
	}
	return out
}

// apiQueries exercises the public contract over both backends.
var apiQueries = []struct {
	sql  string
	args []any
}{
	{"SELECT a, mn, mx FROM p ORDER BY a, mn", nil},
	{"SELECT n FROM r WHERE n = $1 ORDER BY Ts", []any{"Ann"}},
	{"SELECT n, Ts, Te FROM (r a NORMALIZE r b USING (n)) x ORDER BY n, Ts", nil},
	{"WITH r2 AS (SELECT Ts Us, Te Ue, * FROM r) SELECT n, Us, Ue FROM (r2 ALIGN p ON DUR(Us, Ue) BETWEEN mn AND mx AND a >= $1) x ORDER BY n, Us, Ts", []any{30}},
	{"SELECT a FROM p ORDER BY a DESC LIMIT 2 OFFSET 1", nil},
}

// TestEmbeddedRemoteEquivalent: the same statements produce identical
// rows through the embedded executor cursor and the remote wire stream —
// the "one contract, two backends" acceptance check.
func TestEmbeddedRemoteEquivalent(t *testing.T) {
	emb, err := Open("talign://demo")
	if err != nil {
		t.Fatal(err)
	}
	defer emb.Close()
	rem := openRemoteTest(t)

	for _, q := range apiQueries {
		ctx := context.Background()
		er, err := emb.Query(ctx, q.sql, q.args...)
		if err != nil {
			t.Fatalf("embedded %s: %v", q.sql, err)
		}
		rr, err := rem.Query(ctx, q.sql, q.args...)
		if err != nil {
			t.Fatalf("remote %s: %v", q.sql, err)
		}
		if !reflect.DeepEqual(er.Columns(), rr.Columns()) {
			t.Fatalf("%s: columns %v vs %v", q.sql, er.Columns(), rr.Columns())
		}
		ev, rv := collect(t, er), collect(t, rr)
		if !reflect.DeepEqual(ev, rv) {
			t.Fatalf("%s: embedded %v vs remote %v", q.sql, ev, rv)
		}
		if len(ev) == 0 {
			t.Fatalf("%s: no rows — not a meaningful differential", q.sql)
		}
	}
}

// TestPreparedStatements: prepare once, execute many with different
// bindings on both backends.
func TestPreparedStatements(t *testing.T) {
	emb, err := Open("talign://demo")
	if err != nil {
		t.Fatal(err)
	}
	defer emb.Close()
	rem := openRemoteTest(t)

	for name, db := range map[string]*DB{"embedded": emb, "remote": rem} {
		sess := db.Session("")
		stmt, err := sess.Prepare(context.Background(), "SELECT a FROM p WHERE a >= $1 ORDER BY a")
		if err != nil {
			t.Fatalf("%s Prepare: %v", name, err)
		}
		if stmt.NumParams() != 1 {
			t.Fatalf("%s NumParams = %d", name, stmt.NumParams())
		}
		if cols := stmt.Columns(); len(cols) != 3 || cols[0] != "a" || cols[2] != "te" {
			t.Fatalf("%s Columns = %v", name, cols)
		}
		for want, arg := range map[int]int64{4: 40, 5: 30} {
			rows, err := stmt.Query(context.Background(), arg)
			if err != nil {
				t.Fatalf("%s Query(%d): %v", name, arg, err)
			}
			if got := len(collect(t, rows)); got != want {
				t.Fatalf("%s Query(%d): %d rows, want %d", name, arg, got, want)
			}
		}
		if _, err := stmt.Query(context.Background()); err == nil {
			t.Fatalf("%s: missing params accepted", name)
		}
	}
}

// TestRowsScan covers the typed Scan destinations.
func TestRowsScan(t *testing.T) {
	db, err := Open("talign://demo")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rows, err := db.Query(context.Background(), "SELECT n, Ts, Te FROM r WHERE n = 'Joe'")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	var n string
	var ts, te int64
	if err := rows.Scan(&n, &ts, &te); err != nil {
		t.Fatal(err)
	}
	if n != "Joe" || ts != 1 || te != 5 {
		t.Fatalf("scanned (%q, %d, %d)", n, ts, te)
	}
}

// TestPlanResults: EXPLAIN and ANALYZE surface through Rows.Plan on both
// backends.
func TestPlanResults(t *testing.T) {
	emb, err := Open("talign://demo")
	if err != nil {
		t.Fatal(err)
	}
	defer emb.Close()
	rem := openRemoteTest(t)
	for name, db := range map[string]*DB{"embedded": emb, "remote": rem} {
		rows, err := db.Query(context.Background(), "EXPLAIN SELECT n FROM r")
		if err != nil {
			t.Fatalf("%s EXPLAIN: %v", name, err)
		}
		if !strings.Contains(rows.Plan(), "SeqScan r") {
			t.Fatalf("%s EXPLAIN plan = %q", name, rows.Plan())
		}
		rows.Close()
		rows, err = db.Query(context.Background(), "ANALYZE p")
		if err != nil {
			t.Fatalf("%s ANALYZE: %v", name, err)
		}
		if !strings.Contains(rows.Plan(), "ANALYZE p: 5 rows") {
			t.Fatalf("%s ANALYZE plan = %q", name, rows.Plan())
		}
		rows.Close()
	}
}

// TestStructuredErrorsSurface: the remote backend surfaces the wire
// error object with its code and position.
func TestStructuredErrorsSurface(t *testing.T) {
	rem := openRemoteTest(t)
	_, err := rem.Query(context.Background(), "SELECT n FROM")
	if err == nil {
		t.Fatal("expected a parse error")
	}
	if !strings.Contains(err.Error(), "parse") || !strings.Contains(err.Error(), "col 14") {
		t.Fatalf("remote parse error = %v", err)
	}

	emb, err2 := Open("talign://demo")
	if err2 != nil {
		t.Fatal(err2)
	}
	defer emb.Close()
	_, err = emb.Query(context.Background(), "SELECT n FROM")
	var se *sqlish.Error
	if !errors.As(err, &se) || se.Code != sqlish.ErrParse {
		t.Fatalf("embedded parse error = %v", err)
	}
}

// TestCancelPublicAPI: cancelling the Query context stops an embedded
// cursor promptly with the cancellation surfaced in Err.
func TestCancelPublicAPI(t *testing.T) {
	db, err := Open("talign://")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	b := relation.NewBuilder("v int")
	for i := 0; i < 3000; i++ {
		b.Row(int64(i%11), int64(i%11)+40, int64(i))
	}
	if err := db.Register("big", b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.Query(ctx, "SELECT v, Ts, Te FROM (big a ALIGN big b ON true) x")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	start := time.Now()
	for rows.Next() {
		if time.Since(start) > 10*time.Second {
			t.Fatal("cancelled cursor kept producing rows")
		}
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
}

// TestDSNErrors rejects malformed DSNs loudly.
func TestDSNErrors(t *testing.T) {
	for _, dsn := range []string{
		"postgres://x",
		"talign://unknowncatalog",
		"talign://?bogus=1",
		"talign://?load=nopath",
		"talignd://",
	} {
		if _, err := Open(dsn); err == nil {
			t.Fatalf("Open(%q) succeeded", dsn)
		}
	}
}
