// Distributed scatter-gather benchmark panels (-bench-dist): the Fig. 13
// ALIGN/NORMALIZE workloads executed through a coordinator over 1, 2 and
// 4 in-process workers, recording wall time alongside the coordinator's
// fragment, shipped-row and shipped-byte counters per panel.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"

	"talign/internal/benchkit"
	"talign/internal/dataset"
	"talign/internal/distsql"
	"talign/internal/plan"
	"talign/internal/server"
)

// distBenchPoint is a benchkit point plus the distributed shipping
// counters (per-operation averages over the measured iterations).
type distBenchPoint struct {
	benchkit.BenchPoint
	Workers     int    `json:"workers"`
	Fragments   uint64 `json:"fragments_per_op"`
	RowsIn      uint64 `json:"rows_shipped_in_per_op"`
	RowsOut     uint64 `json:"rows_shipped_out_per_op"`
	BytesIn     uint64 `json:"bytes_shipped_in_per_op"`
	BytesOut    uint64 `json:"bytes_shipped_out_per_op"`
	StageRows   uint64 `json:"stage_rows_total"` // one-time table distribution cost per topology
	StrategyHit string `json:"strategy"`
}

// distBenchFile is the committed BENCH_PR10.json shape: the benchkit
// "after" layout extended with the shipping counters.
type distBenchFile struct {
	Description string           `json:"description"`
	After       []distBenchPoint `json:"after"`
}

// distCounters snapshots the coordinator's dispatch counters by metric
// name.
func distCounters(c *distsql.Coordinator) map[string]uint64 {
	out := map[string]uint64{}
	for _, m := range c.DistMetrics() {
		out[m.Name] = m.Value
	}
	return out
}

// runDistBenchPanels measures the distributed ALIGN/NORMALIZE panels at
// n = 10^6 (scaled by -scale) over 1, 2 and 4 workers.
func runDistBenchPanels(path string) error {
	n := 1_000_000 * *scaleFlag / 100
	flags := plan.DefaultFlags()
	relA := dataset.Incumben(dataset.IncumbenConfig{Rows: n, Seed: *seed})
	relB := dataset.Incumben(dataset.IncumbenConfig{Rows: n, Seed: *seed + 1})

	queries := []struct{ name, sql string }{
		{"pr10/align-ssn", "SELECT ssn, pcn, Ts, Te FROM (a ALIGN b ON a.ssn = b.ssn) x"},
		{"pr10/normalize-ssn", "SELECT ssn, pcn, Ts, Te FROM (a NORMALIZE b USING (ssn)) x"},
	}

	var points []distBenchPoint
	for _, workers := range []int{1, 2, 4} {
		var topo distsql.Topology
		for i := 0; i < workers; i++ {
			ws := httptest.NewServer(distsql.Handler(server.New(server.Config{Flags: flags, MaxDOP: 64})))
			defer ws.Close()
			topo.Workers = append(topo.Workers, distsql.Worker{Name: fmt.Sprintf("w%d", i), URL: ws.URL})
		}
		csrv := server.New(server.Config{Flags: flags, MaxDOP: 64})
		coord := distsql.New(csrv, topo, flags, nil)
		coord.Attach()
		if err := coord.DistributeTable(context.Background(), "a", relA); err != nil {
			return err
		}
		if err := coord.DistributeTable(context.Background(), "b", relB); err != nil {
			return err
		}
		if err := coord.AnalyzeWorkers(context.Background()); err != nil {
			return err
		}
		staged := distCounters(coord)["talignd_dist_rows_out_total"]

		for _, q := range queries {
			explain, err := csrv.QueryContext(context.Background(), "", "", "EXPLAIN "+q.sql, nil)
			if err != nil {
				return fmt.Errorf("%s: explain: %v", q.name, err)
			}
			before := distCounters(coord)
			pt, err := benchkit.MeasureBench(q.name, n, func() (int, error) {
				rs, err := csrv.StreamBatch(context.Background(), "", "", q.sql, nil, 0)
				if err != nil {
					return 0, err
				}
				defer rs.Close()
				rows := 0
				for {
					b, err := rs.Next()
					if err != nil {
						return 0, err
					}
					if len(b) == 0 {
						return rows, nil
					}
					rows += len(b)
				}
			})
			if err != nil {
				return err
			}
			after := distCounters(coord)
			per := func(name string) uint64 { return (after[name] - before[name]) / uint64(pt.Iterations) }
			dp := distBenchPoint{
				BenchPoint: pt,
				Workers:    workers,
				Fragments:  per("talignd_fragments_total"),
				RowsIn:     per("talignd_dist_rows_in_total"),
				RowsOut:    per("talignd_dist_rows_out_total"),
				BytesIn:    per("talignd_dist_bytes_in_total"),
				BytesOut:   per("talignd_dist_bytes_out_total"),
				StageRows:  staged,
				StrategyHit: func() string {
					// First line of the EXPLAIN, e.g. "Distributed: scatter over 2 worker(s)".
					for i := 0; i < len(explain.Plan); i++ {
						if explain.Plan[i] == '\n' {
							return explain.Plan[:i]
						}
					}
					return explain.Plan
				}(),
			}
			fmt.Fprintf(os.Stderr, "%-22s workers=%d n=%-8d %14.0f ns/op %10d rows %10d rows-in/op %12d B-in/op\n",
				dp.Name, dp.Workers, dp.N, dp.NsPerOp, dp.Rows, dp.RowsIn, dp.BytesIn)
			points = append(points, dp)
		}
	}

	raw, err := json.MarshalIndent(distBenchFile{
		Description: fmt.Sprintf("Distributed Fig. 13 ALIGN/NORMALIZE on Incumben (n=%d per relation, hash-partitioned by ssn) through a coordinator over 1, 2 and 4 in-process workers speaking the fragment protocol over HTTP. Counters are per-operation deltas of the coordinator's shipping metrics; stage_rows_total is the one-time table distribution for that topology. Regenerate: go run ./cmd/experiments -bench-dist BENCH_PR10.json", n),
		After:       points,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
