// Command experiments regenerates every figure of the paper's evaluation
// (Sec. 7, Figs. 13–16) on the synthetic datasets and prints the series as
// TSV. Sizes default to a laptop-friendly scale; quadratic baselines are
// capped separately (see -nlmax/-sqlmax) exactly because their blow-up is
// the phenomenon the figures demonstrate.
//
// Usage:
//
//	experiments -fig all|13a|13b|14a|14b|15a|15b|15c|15d|16a|16b [-scale 100]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"talign/internal/baseline"
	"talign/internal/benchkit"
	"talign/internal/core"
	"talign/internal/dataset"
	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/sqlish"
	"talign/internal/storage"
)

var (
	figFlag   = flag.String("fig", "all", "figure to regenerate (13a..16b or all)")
	scaleFlag = flag.Int("scale", 100, "percentage applied to the default sweep sizes")
	nlMax     = flag.Int("nlmax", 4000, "largest input for nested-loop series (quadratic)")
	sqlMax    = flag.Int("sqlmax", 2000, "largest input for standard-SQL series (quadratic)")
	seed      = flag.Int64("seed", 1, "dataset seed")
	dopFlag   = flag.Int("j", 1, "degree of parallelism: when > 1, parallel exchange series are added (0 = all CPUs)")
	benchFlag = flag.String("bench", "", "write ns/op, allocs/op and rows for the Fig. 13/14 panels to this JSON file (e.g. BENCH_PR2.json) instead of printing figures; an existing 'before' section in the file is preserved")
	optFlag   = flag.String("bench-opt", "", "write filtered Fig. 13-style SQL workloads to this JSON file (e.g. BENCH_PR4.json), measuring DisableOptimizer as 'before' and the stats-fed optimizer as 'after'")
	colFlag   = flag.String("bench-col", "", "write filtered Fig. 13-style SQL workloads to this JSON file (e.g. BENCH_PR6.json), measuring the row executor (DisableColumnar) as 'before' and the vectorized pipeline as 'after'; both sides run the stats-fed optimizer")
	storFlag  = flag.String("bench-storage", "", "write disk-backed workloads to this JSON file (e.g. BENCH_PR8.json): the PR 6 filtered panels plus valid-time-filtered scans/ALIGN over on-disk segments, measuring plan.Flags.DisablePruning as 'before' and zone-map segment pruning as 'after'")
	distFlag  = flag.String("bench-dist", "", "write distributed Fig. 13 ALIGN/NORMALIZE workloads (n scaled by -scale from 10^6) to this JSON file (e.g. BENCH_PR10.json): scatter-gather over 1, 2 and 4 in-process workers, with fragment/row/byte-shipped counters per panel")
)

// dop resolves the -j flag (0 means every CPU; negatives are rejected).
func dop() int {
	if *dopFlag < 0 {
		fmt.Fprintf(os.Stderr, "-j must be >= 0 (0 = all CPUs), got %d\n", *dopFlag)
		os.Exit(1)
	}
	if *dopFlag == 0 {
		return runtime.NumCPU()
	}
	return *dopFlag
}

// parFlags is DefaultFlags with the exchange layer enabled at -j workers.
func parFlags() plan.Flags {
	f := plan.DefaultFlags()
	f.DOP = dop()
	return f
}

func main() {
	flag.Parse()
	if *benchFlag != "" {
		if err := runBenchPanels(*benchFlag); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *optFlag != "" {
		if err := runOptBenchPanels(*optFlag); err != nil {
			fmt.Fprintf(os.Stderr, "bench-opt: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *colFlag != "" {
		if err := runColBenchPanels(*colFlag); err != nil {
			fmt.Fprintf(os.Stderr, "bench-col: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *storFlag != "" {
		if err := runStorageBenchPanels(*storFlag); err != nil {
			fmt.Fprintf(os.Stderr, "bench-storage: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *distFlag != "" {
		if err := runDistBenchPanels(*distFlag); err != nil {
			fmt.Fprintf(os.Stderr, "bench-dist: %v\n", err)
			os.Exit(1)
		}
		return
	}
	figs := map[string]func() (benchkit.Figure, error){
		"13a": fig13a, "13b": fig13b,
		"14a": fig14a, "14b": fig14b,
		"15a": fig15a, "15b": fig15b, "15c": fig15c, "15d": fig15d,
		"16a": fig16a, "16b": fig16b,
	}
	order := []string{"13a", "13b", "14a", "14b", "15a", "15b", "15c", "15d", "16a", "16b"}
	run := func(id string) {
		f, err := figs[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := f.WriteTSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *figFlag == "all" {
		for _, id := range order {
			run(id)
		}
		return
	}
	if _, ok := figs[*figFlag]; !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 13a..16b or all)\n", *figFlag)
		os.Exit(1)
	}
	run(*figFlag)
}

func sizes(base []int) []int { return benchkit.Scale(base, *scaleFlag) }

// incCache caches generated Incumben datasets per size; the mutex keeps it
// safe if sweeps ever run concurrently.
var (
	incMu    sync.Mutex
	incCache = map[int]*relation.Relation{}
)

func incumben(n int) *relation.Relation {
	incMu.Lock()
	defer incMu.Unlock()
	if rel, ok := incCache[n]; ok {
		return rel
	}
	rel := dataset.Incumben(dataset.IncumbenConfig{Rows: n, Seed: *seed})
	incCache[n] = rel
	return rel
}

// normalizeSSN runs N_{ssn}(inc; inc) under the given flags.
func normalizeRun(attrs []string, flags plan.Flags) benchkit.Runner {
	return func(n int) (int, error) {
		a := core.New(flags)
		inc := incumben(n)
		out, err := a.Normalize(inc, inc, attrs...)
		if err != nil {
			return 0, err
		}
		return out.Len(), nil
	}
}

// fig13a: runtime of N{ssn} with the join method forced, as in Sec. 7.2.
func fig13a() (benchkit.Figure, error) {
	sz := sizes([]int{10000, 20000, 40000, 80000})
	fig := benchkit.Figure{ID: "13a", Title: "Normalization N{ssn} on Incumben, forced join methods", XLabel: "input tuples"}
	variants := []struct {
		name  string
		flags plan.Flags
		cap   int
	}{
		{"merge", plan.Flags{EnableMergeJoin: true, EnableSort: true}, 1 << 30},
		{"hash", plan.Flags{EnableHashJoin: true}, 1 << 30},
		{"nestloop", plan.Flags{EnableNestLoop: true}, *nlMax},
	}
	if dop() > 1 {
		par := plan.Flags{EnableHashJoin: true, DOP: dop()}
		variants = append(variants, struct {
			name  string
			flags plan.Flags
			cap   int
		}{fmt.Sprintf("hash-par(j=%d)", dop()), par, 1 << 30})
	}
	for _, v := range variants {
		s, err := benchkit.Sweep(v.name, benchkit.CapSizes(sz, v.cap), normalizeRun([]string{"ssn"}, v.flags))
		if err != nil {
			return fig, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// fig13b: output cardinality of N{ssn} (method independent).
func fig13b() (benchkit.Figure, error) {
	sz := sizes([]int{10000, 20000, 40000, 80000})
	fig := benchkit.Figure{ID: "13b", Title: "Normalization N{ssn} output size", XLabel: "input tuples"}
	s, err := benchkit.Sweep("output", sz, normalizeRun([]string{"ssn"}, plan.DefaultFlags()))
	if err != nil {
		return fig, err
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// fig14a/b: N{}, N{pcn}, N{ssn} runtime and output size. N{} splits every
// tuple at every boundary and is therefore capped like the quadratic
// baselines.
func fig14(fig benchkit.Figure) (benchkit.Figure, error) {
	sz := sizes([]int{10000, 20000, 40000, 80000})
	variants := []struct {
		name  string
		attrs []string
		cap   int
	}{
		{"N{}", nil, *nlMax},
		{"N{pcn}", []string{"pcn"}, 1 << 30},
		{"N{ssn}", []string{"ssn"}, 1 << 30},
	}
	for _, v := range variants {
		s, err := benchkit.Sweep(v.name, benchkit.CapSizes(sz, v.cap), normalizeRun(v.attrs, plan.DefaultFlags()))
		if err != nil {
			return fig, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

func fig14a() (benchkit.Figure, error) {
	return fig14(benchkit.Figure{ID: "14a", Title: "Normalization attributes: runtime", XLabel: "input tuples"})
}

func fig14b() (benchkit.Figure, error) {
	return fig14(benchkit.Figure{ID: "14b", Title: "Normalization attributes: output size", XLabel: "input tuples"})
}

// outerRunner runs a temporal left outer join workload under a strategy.
func o1Runner(st baseline.Strategy, gen func(n int, seed int64) (*relation.Relation, *relation.Relation)) benchkit.Runner {
	return func(n int) (int, error) {
		r, s := gen(n, *seed)
		out, err := baseline.LeftOuterJoin(st, r, s, nil)
		if err != nil {
			return 0, err
		}
		return out.Len(), nil
	}
}

// fig15a: O1 on D_disj — align stays cheap, sql goes quadratic.
func fig15a() (benchkit.Figure, error) {
	sz := sizes([]int{1000, 2000, 4000, 8000, 16000})
	fig := benchkit.Figure{ID: "15a", Title: "O1 = r LOJ(true) s on D_disj", XLabel: "input tuples per relation"}
	sAlign, err := benchkit.Sweep("align", sz, o1Runner(baseline.StrategyAlign, dataset.Ddisj))
	if err != nil {
		return fig, err
	}
	sSQL, err := benchkit.Sweep("sql", benchkit.CapSizes(sz, *sqlMax), o1Runner(baseline.StrategySQL, dataset.Ddisj))
	if err != nil {
		return fig, err
	}
	fig.Series = append(fig.Series, sAlign, sSQL)
	return fig, nil
}

// fig15b: O1 on D_eq — sql wins (NOT EXISTS refutes instantly); align's
// group join is quadratic in the overlap count, so both are capped small.
func fig15b() (benchkit.Figure, error) {
	sz := benchkit.CapSizes(sizes([]int{125, 250, 500, 1000}), *sqlMax)
	fig := benchkit.Figure{ID: "15b", Title: "O1 = r LOJ(true) s on D_eq", XLabel: "input tuples per relation"}
	for _, st := range []baseline.Strategy{baseline.StrategyAlign, baseline.StrategySQL} {
		s, err := benchkit.Sweep(st.String(), sz, o1Runner(st, dataset.Deq))
		if err != nil {
			return fig, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// fig15c: O2 on D_rand — the ESR condition Min ≤ DUR(r.T) ≤ Max.
func fig15c() (benchkit.Figure, error) {
	sz := sizes([]int{500, 1000, 2000, 4000})
	fig := benchkit.Figure{ID: "15c", Title: "O2 = r LOJ(Min<=DUR(r.T)<=Max) s on D_rand", XLabel: "input tuples per relation"}
	run := func(st baseline.Strategy) benchkit.Runner {
		return func(n int) (int, error) {
			r0, s := dataset.Drand(n, *seed)
			r := core.MustExtend(r0, "u")
			out, err := baseline.LeftOuterJoin(st, r, s, baseline.O2Theta())
			if err != nil {
				return 0, err
			}
			return out.Len(), nil
		}
	}
	sAlign, err := benchkit.Sweep("align", sz, run(baseline.StrategyAlign))
	if err != nil {
		return fig, err
	}
	sSQL, err := benchkit.Sweep("sql", benchkit.CapSizes(sz, *sqlMax), run(baseline.StrategySQL))
	if err != nil {
		return fig, err
	}
	fig.Series = append(fig.Series, sAlign, sSQL)
	return fig, nil
}

// o3Run evaluates O3 = r FOJ(pcn=pcn2) s over dataset halves.
func o3Run(st baseline.Strategy, gen func(n int) *relation.Relation) benchkit.Runner {
	return func(n int) (int, error) {
		r, s := dataset.SplitHalves(gen(n), []string{"ssn", "pcn"}, []string{"ssn2", "pcn2"})
		out, err := baseline.FullOuterJoin(st, r, s, baseline.O3Theta())
		if err != nil {
			return 0, err
		}
		return out.Len(), nil
	}
}

// fig15d: O3 on Incumben — the equality condition lets both approaches use
// fast joins.
func fig15d() (benchkit.Figure, error) {
	sz := sizes([]int{10000, 20000, 40000, 80000})
	fig := benchkit.Figure{ID: "15d", Title: "O3 = r FOJ(pcn=pcn) s on Incumben", XLabel: "input tuples total"}
	sAlign, err := benchkit.Sweep("align", sz, o3Run(baseline.StrategyAlign, incumben))
	if err != nil {
		return fig, err
	}
	// O3's equality condition keeps the SQL baseline's joins hash-friendly
	// (Sec. 7.4), so no quadratic cap is needed here.
	sSQL, err := benchkit.Sweep("sql", sz, o3Run(baseline.StrategySQL, incumben))
	if err != nil {
		return fig, err
	}
	fig.Series = append(fig.Series, sAlign, sSQL)
	if dop() > 1 {
		run := func(n int) (int, error) {
			r, s := dataset.SplitHalves(incumben(n), []string{"ssn", "pcn"}, []string{"ssn2", "pcn2"})
			out, err := core.New(parFlags()).FullOuterJoin(r, s, baseline.O3Theta())
			if err != nil {
				return 0, err
			}
			return out.Len(), nil
		}
		sPar, err := benchkit.Sweep(fmt.Sprintf("align-par(j=%d)", dop()), sz, run)
		if err != nil {
			return fig, err
		}
		fig.Series = append(fig.Series, sPar)
	}
	return fig, nil
}

// fig16a: O3 align vs sql+normalize on Incumben.
func fig16a() (benchkit.Figure, error) {
	sz := sizes([]int{10000, 20000, 40000, 80000})
	fig := benchkit.Figure{ID: "16a", Title: "O3 on Incumben: align vs sql+normalize", XLabel: "input tuples total"}
	sAlign, err := benchkit.Sweep("align", sz, o3Run(baseline.StrategyAlign, incumben))
	if err != nil {
		return fig, err
	}
	sNorm, err := benchkit.Sweep("sql+normalize", sz, o3Run(baseline.StrategySQLNormalize, incumben))
	if err != nil {
		return fig, err
	}
	fig.Series = append(fig.Series, sAlign, sNorm)
	return fig, nil
}

// fig16b: O3 align vs sql+normalize on the random dataset (more splitting
// points, larger temporal join result).
func fig16b() (benchkit.Figure, error) {
	sz := sizes([]int{10000, 20000, 40000, 80000})
	fig := benchkit.Figure{ID: "16b", Title: "O3 on random data: align vs sql+normalize", XLabel: "input tuples total"}
	gen := func(n int) *relation.Relation { return dataset.RandomIncumbenLike(n, *seed) }
	sAlign, err := benchkit.Sweep("align", sz, o3Run(baseline.StrategyAlign, gen))
	if err != nil {
		return fig, err
	}
	sNorm, err := benchkit.Sweep("sql+normalize", sz, o3Run(baseline.StrategySQLNormalize, gen))
	if err != nil {
		return fig, err
	}
	fig.Series = append(fig.Series, sAlign, sNorm)
	return fig, nil
}

// runBenchPanels measures the Fig. 13/14 panels (the benchmarks whose
// trajectory BENCH_PR*.json tracks) with testing.Benchmark — ns/op,
// allocs/op, B/op and output rows — and writes them as the "after"
// section of path, preserving any committed "before" baseline.
func runBenchPanels(path string) error {
	normalize := func(attrs []string, flags plan.Flags, n int) func() (int, error) {
		return func() (int, error) {
			out, err := core.New(flags).Normalize(incumben(n), incumben(n), attrs...)
			if err != nil {
				return 0, err
			}
			return out.Len(), nil
		}
	}
	panels := []struct {
		name string
		n    int
		run  func() (int, error)
	}{
		{"fig13/normalize-ssn/merge", 8000, normalize([]string{"ssn"}, plan.Flags{EnableMergeJoin: true, EnableSort: true}, 8000)},
		{"fig13/normalize-ssn/hash", 8000, normalize([]string{"ssn"}, plan.Flags{EnableHashJoin: true}, 8000)},
		{"fig13/normalize-ssn/nestloop", 1000, normalize([]string{"ssn"}, plan.Flags{EnableNestLoop: true}, 1000)},
		{"fig14/normalize-empty", 1000, normalize(nil, plan.DefaultFlags(), 1000)},
		{"fig14/normalize-pcn", 8000, normalize([]string{"pcn"}, plan.DefaultFlags(), 8000)},
		{"fig14/normalize-ssn", 8000, normalize([]string{"ssn"}, plan.DefaultFlags(), 8000)},
	}
	points := make([]benchkit.BenchPoint, 0, len(panels))
	for _, p := range panels {
		pt, err := benchkit.MeasureBench(p.name, p.n, p.run)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%-32s n=%-6d %12.0f ns/op %8d allocs/op %10d B/op %8d rows\n",
			pt.Name, pt.N, pt.NsPerOp, pt.AllocsPerOp, pt.BytesPerOp, pt.Rows)
		points = append(points, pt)
	}
	return benchkit.UpdateBenchFile(path, points)
}

// runOptBenchPanels measures filtered Fig. 13-style workloads through the
// SQL front end, once with the optimizer disabled (the "before" section)
// and once with the optimizer plus ANALYZE statistics (the "after"
// section): the deltas isolate what stats-driven predicate pushdown and
// strategy choice buy on selective queries over temporal operators.
func runOptBenchPanels(path string) error {
	const n = 8000
	relA := incumben(n)
	relB := dataset.Incumben(dataset.IncumbenConfig{Rows: n, Seed: *seed + 1})

	// A predicate keeping ~10% of employees: ssn is dense in [0, employees).
	var maxSSN int64
	for _, t := range relA.Tuples {
		if v := t.Vals[0].Int(); v > maxSSN {
			maxSSN = v
		}
	}
	k := maxSSN / 10

	mkEngine := func(disableOpt bool) (*sqlish.Engine, error) {
		f := plan.DefaultFlags()
		f.DisableOptimizer = disableOpt
		e := sqlish.NewEngine(f)
		e.Register("a", relA)
		e.Register("b", relB)
		if !disableOpt {
			for _, name := range []string{"a", "b"} {
				if _, err := e.Analyze(name); err != nil {
					return nil, err
				}
			}
		}
		return e, nil
	}

	queries := []struct{ name, sql string }{
		{"pr4/filtered-align", fmt.Sprintf(
			"SELECT ssn, pcn, Ts, Te FROM (a ALIGN b ON a.ssn = b.ssn) x WHERE ssn <= %d", k)},
		{"pr4/filtered-normalize", fmt.Sprintf(
			"SELECT ssn, pcn, Ts, Te FROM (a NORMALIZE b USING (ssn)) x WHERE ssn <= %d", k)},
		{"pr4/filtered-join", fmt.Sprintf(
			"SELECT a.ssn s1, b.pcn p2 FROM a JOIN b ON a.ssn = b.ssn WHERE b.pcn <= %d AND a.pcn >= 0", k)},
	}

	measure := func(disableOpt bool) ([]benchkit.BenchPoint, error) {
		e, err := mkEngine(disableOpt)
		if err != nil {
			return nil, err
		}
		label := "opt"
		if disableOpt {
			label = "noopt"
		}
		points := make([]benchkit.BenchPoint, 0, len(queries))
		for _, q := range queries {
			pt, err := benchkit.MeasureBench(q.name, n, func() (int, error) {
				rel, _, err := e.Query(q.sql)
				if err != nil {
					return 0, err
				}
				return rel.Len(), nil
			})
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "%-28s %-6s n=%-6d %12.0f ns/op %8d allocs/op %8d rows\n",
				pt.Name, label, pt.N, pt.NsPerOp, pt.AllocsPerOp, pt.Rows)
			points = append(points, pt)
		}
		return points, nil
	}

	before, err := measure(true)
	if err != nil {
		return err
	}
	after, err := measure(false)
	if err != nil {
		return err
	}
	return benchkit.WriteBenchFile(path, benchkit.BenchFile{
		Description: "Filtered Fig. 13-style SQL workloads on Incumben (n=8000): 'before' runs with plan.Flags.DisableOptimizer (the analyzer's literal plans), 'after' with the PR 4 cost-based optimizer after ANALYZE (stats-fed estimates, predicate pushdown into ALIGN/NORMALIZE/joins). Regenerate: go run ./cmd/experiments -bench-opt BENCH_PR4.json",
		Before:      before,
		After:       after,
	})
}

// runColBenchPanels measures the PR 4 filtered workloads with the row
// executor forced (plan.Flags.DisableColumnar, the "before" section) and
// with the vectorized pipeline (the "after" section). Both sides run the
// stats-fed optimizer, so the deltas isolate what the columnar batches
// buy: selection-vector filters, pointer-shuffle projections and the
// vector-encoded fused adjust.
func runColBenchPanels(path string) error {
	const n = 8000
	relA := incumben(n)
	relB := dataset.Incumben(dataset.IncumbenConfig{Rows: n, Seed: *seed + 1})

	var maxSSN int64
	for _, t := range relA.Tuples {
		if v := t.Vals[0].Int(); v > maxSSN {
			maxSSN = v
		}
	}
	k := maxSSN / 10

	mkEngine := func(disableCol bool) (*sqlish.Engine, error) {
		f := plan.DefaultFlags()
		f.DisableColumnar = disableCol
		e := sqlish.NewEngine(f)
		e.Register("a", relA)
		e.Register("b", relB)
		for _, name := range []string{"a", "b"} {
			if _, err := e.Analyze(name); err != nil {
				return nil, err
			}
		}
		return e, nil
	}

	queries := []struct{ name, sql string }{
		{"pr6/filtered-align", fmt.Sprintf(
			"SELECT ssn, pcn, Ts, Te FROM (a ALIGN b ON a.ssn = b.ssn) x WHERE ssn <= %d", k)},
		{"pr6/filtered-normalize", fmt.Sprintf(
			"SELECT ssn, pcn, Ts, Te FROM (a NORMALIZE b USING (ssn)) x WHERE ssn <= %d", k)},
		{"pr6/filtered-join", fmt.Sprintf(
			"SELECT a.ssn s1, b.pcn p2 FROM a JOIN b ON a.ssn = b.ssn WHERE b.pcn <= %d AND a.pcn >= 0", k)},
	}

	measure := func(disableCol bool) ([]benchkit.BenchPoint, error) {
		e, err := mkEngine(disableCol)
		if err != nil {
			return nil, err
		}
		label := "columnar"
		if disableCol {
			label = "row"
		}
		points := make([]benchkit.BenchPoint, 0, len(queries))
		for _, q := range queries {
			pt, err := benchkit.MeasureBench(q.name, n, func() (int, error) {
				rel, _, err := e.Query(q.sql)
				if err != nil {
					return 0, err
				}
				return rel.Len(), nil
			})
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "%-28s %-8s n=%-6d %12.0f ns/op %8d allocs/op %8d rows\n",
				pt.Name, label, pt.N, pt.NsPerOp, pt.AllocsPerOp, pt.Rows)
			points = append(points, pt)
		}
		return points, nil
	}

	before, err := measure(true)
	if err != nil {
		return err
	}
	after, err := measure(false)
	if err != nil {
		return err
	}
	return benchkit.WriteBenchFile(path, benchkit.BenchFile{
		Description: "Filtered Fig. 13-style SQL workloads on Incumben (n=8000): 'before' forces the row executor (plan.Flags.DisableColumnar), 'after' runs the PR 6 vectorized pipeline (columnar batches with selection vectors, vector key encoding, fused-adjust sweep over time columns). Both sides use the stats-fed optimizer. Regenerate: go run ./cmd/experiments -bench-col BENCH_PR6.json",
		Before:      before,
		After:       after,
	})
}

// runStorageBenchPanels measures the PR 8 disk-serving path: both
// Incumben relations are persisted as interval-partitioned columnar
// segments in a throwaway store and loaded back (served from the mapped
// file bytes), then the PR 6 filtered panels plus valid-time-filtered
// workloads run with zone-map pruning disabled (plan.Flags.
// DisablePruning, the "before" section) and enabled (the "after"
// section). Both sides use the stats-fed optimizer over segment-backed
// scans, so the deltas isolate what pruning buys — the all-attribute
// panels double as a disk-vs-disk sanity series (pruning cannot help a
// filter that every segment satisfies, so those deltas should be noise).
func runStorageBenchPanels(path string) error {
	const n = 8000
	dir, err := os.MkdirTemp("", "talign-bench-storage")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := storage.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	st.SegmentRows = 512

	rels := map[string]*relation.Relation{
		"a": incumben(n),
		"b": dataset.Incumben(dataset.IncumbenConfig{Rows: n, Seed: *seed + 1}),
	}
	disk := map[string]*relation.Relation{}
	for name, rel := range rels {
		if err := st.CreateTable(name, rel); err != nil {
			return err
		}
		if disk[name], err = st.Load(name); err != nil {
			return err
		}
	}

	maxSSN := rels["a"].Tuples[0].Vals[0].Int()
	minTS, maxTS := rels["a"].Tuples[0].T.Ts, rels["a"].Tuples[0].T.Ts
	for _, t := range rels["a"].Tuples {
		if v := t.Vals[0].Int(); v > maxSSN {
			maxSSN = v
		}
		if t.T.Ts < minTS {
			minTS = t.T.Ts
		}
		if t.T.Ts > maxTS {
			maxTS = t.T.Ts
		}
	}
	k := maxSSN / 10
	// Top decile of the valid-time domain: segments are partitioned in
	// (TS, TE) order, so ~90% of them fall wholly below t0 and prune.
	t0 := minTS + 9*(maxTS-minTS)/10

	mkEngine := func(disablePrune bool) (*sqlish.Engine, error) {
		f := plan.DefaultFlags()
		f.DisablePruning = disablePrune
		e := sqlish.NewEngine(f)
		e.Register("a", disk["a"])
		e.Register("b", disk["b"])
		for _, name := range []string{"a", "b"} {
			if _, err := e.Analyze(name); err != nil {
				return nil, err
			}
		}
		return e, nil
	}

	queries := []struct{ name, sql string }{
		{"pr8/time-filtered-scan", fmt.Sprintf(
			"SELECT ssn, pcn, Ts, Te FROM a WHERE Ts >= %d", t0)},
		{"pr8/time-filtered-align", fmt.Sprintf(
			"SELECT ssn, Ts, Te FROM ((SELECT ssn, pcn FROM a WHERE Ts >= %d) q ALIGN b ON q.ssn = b.ssn) x", t0)},
		{"pr8/filtered-align", fmt.Sprintf(
			"SELECT ssn, pcn, Ts, Te FROM (a ALIGN b ON a.ssn = b.ssn) x WHERE ssn <= %d", k)},
		{"pr8/filtered-normalize", fmt.Sprintf(
			"SELECT ssn, pcn, Ts, Te FROM (a NORMALIZE b USING (ssn)) x WHERE ssn <= %d", k)},
		{"pr8/filtered-join", fmt.Sprintf(
			"SELECT a.ssn s1, b.pcn p2 FROM a JOIN b ON a.ssn = b.ssn WHERE b.pcn <= %d AND a.pcn >= 0", k)},
	}

	measure := func(disablePrune bool) ([]benchkit.BenchPoint, error) {
		e, err := mkEngine(disablePrune)
		if err != nil {
			return nil, err
		}
		label := "pruned"
		if disablePrune {
			label = "full"
		}
		points := make([]benchkit.BenchPoint, 0, len(queries))
		for _, q := range queries {
			pt, err := benchkit.MeasureBench(q.name, n, func() (int, error) {
				rel, _, err := e.Query(q.sql)
				if err != nil {
					return 0, err
				}
				return rel.Len(), nil
			})
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "%-28s %-8s n=%-6d %12.0f ns/op %8d allocs/op %8d rows\n",
				pt.Name, label, pt.N, pt.NsPerOp, pt.AllocsPerOp, pt.Rows)
			points = append(points, pt)
		}
		return points, nil
	}

	before, err := measure(true)
	if err != nil {
		return err
	}
	after, err := measure(false)
	if err != nil {
		return err
	}
	return benchkit.WriteBenchFile(path, benchkit.BenchFile{
		Description: "Disk-backed workloads on Incumben (n=8000, 512-row interval-partitioned segments loaded from an on-disk store): the PR 6 filtered panels plus valid-time-filtered scan/ALIGN. 'before' sets plan.Flags.DisablePruning (every segment scanned), 'after' enables zone-map segment pruning. Both sides use the stats-fed optimizer over segment-backed scans. Regenerate: go run ./cmd/experiments -bench-storage BENCH_PR8.json",
		Before:      before,
		After:       after,
	})
}
