package main

import (
	"context"
	"fmt"
	"os"
	"strings"

	"talign"
)

// client wraps the public talign package's remote backend: every
// statement entered in the shell runs over talignd's NDJSON streaming
// protocol, and rows print as they arrive instead of after the server
// finished buffering the result. Ctrl-C'ing the shell mid-query drops
// the connection, which cancels the query server-side.
type client struct {
	db *talign.DB
}

// newClient connects to a talignd server ("host:port" or a URL).
func newClient(base string) (*client, error) {
	dsn := base
	if !strings.Contains(dsn, "://") {
		dsn = "talignd://" + dsn
	}
	db, err := talign.Open(dsn)
	if err != nil {
		return nil, err
	}
	return &client{db: db}, nil
}

// run sends one statement and prints the streamed result.
func (c *client) run(sql string) {
	rows, err := c.db.Query(context.Background(), sql)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	defer rows.Close()
	if plan := rows.Plan(); plan != "" {
		fmt.Print(plan)
		if !strings.HasSuffix(plan, "\n") {
			fmt.Println()
		}
		return
	}
	fmt.Println(strings.Join(rows.Columns(), "\t"))
	n := 0
	for rows.Next() {
		vals := rows.Values()
		cells := make([]string, len(vals))
		for i, v := range vals {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
		n++
	}
	if err := rows.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	fmt.Printf("(%d rows)\n", n)
}
