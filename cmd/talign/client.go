package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

// client speaks talignd's HTTP/JSON protocol: every statement entered in
// the shell is POSTed to /query and the response is rendered like a local
// result. EXPLAIN responses print the server's plan.
type client struct {
	base string
	http *http.Client
}

// newClient normalizes the base URL ("host:port" gains "http://").
func newClient(base string) *client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// queryResponse mirrors the server's /query JSON shape.
type queryResponse struct {
	Columns  []string `json:"columns"`
	Rows     [][]any  `json:"rows"`
	RowCount int      `json:"row_count"`
	Plan     string   `json:"plan"`
	Error    string   `json:"error"`
}

// run sends one statement and prints the result.
func (c *client) run(sql string) {
	body, err := json.Marshal(map[string]any{"sql": sql})
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	resp, err := c.http.Post(c.base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	var out queryResponse
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber() // int64 cells survive exactly; float64 would round 2^53+
	if err := dec.Decode(&out); err != nil {
		fmt.Fprintf(os.Stderr, "error: bad response: %v\n", err)
		return
	}
	if out.Error != "" {
		fmt.Fprintf(os.Stderr, "error: %s\n", out.Error)
		return
	}
	if out.Plan != "" {
		fmt.Print(out.Plan)
		return
	}
	fmt.Println(strings.Join(out.Columns, "\t"))
	for _, row := range out.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = renderCell(v)
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("(%d rows)\n", out.RowCount)
}

// renderCell formats one JSON cell the way the local shell prints values.
func renderCell(v any) string {
	switch x := v.(type) {
	case nil:
		return "ω"
	case json.Number:
		return x.String()
	case string:
		return x
	}
	return fmt.Sprint(v)
}

// ping checks the server is reachable before starting the shell.
func (c *client) ping() error {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %s", resp.Status)
	}
	return nil
}
