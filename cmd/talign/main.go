// Command talign is an interactive shell (and one-shot runner) for the
// temporal SQL dialect of the paper: load interval timestamped relations
// from CSV files, then run queries with ALIGN, NORMALIZE, ABSORB, outer
// joins and temporal aggregation; EXPLAIN shows the plan with the
// optimizer's row and cost estimates.
//
// Usage:
//
//	talign [-q query] [-j dop] [-connect host:port] [name=file.csv ...]
//
// Without -q, talign reads statements from stdin, one per line (or
// semicolon-terminated blocks). The CSV layout is documented in package
// csvio: a "name:type,...,ts,te" header followed by data rows. -j enables
// the parallel exchange layer: large joins, aggregations, ALIGN and
// NORMALIZE are hash-partitioned across that many worker goroutines
// (-j 0 uses all CPUs); EXPLAIN shows the Exchange nodes.
//
// With -connect, talign becomes a client of a running talignd server:
// statements run over its wire-level NDJSON row-streaming protocol
// (rows print as the server produces them) and the catalog lives on the
// server (name=file.csv arguments are rejected).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"talign/internal/csvio"
	"talign/internal/dataset"
	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/sqlish"
)

func main() {
	query := flag.String("q", "", "run a single query and exit")
	demo := flag.Bool("demo", false, "preload the paper's hotel example relations r and p")
	dop := flag.Int("j", 1, "degree of parallelism for the exchange layer (0 = all CPUs)")
	connect := flag.String("connect", "", "connect to a talignd server (host:port or URL) instead of executing locally")
	flag.Parse()

	if *dop < 0 {
		fatalf("-j must be >= 0 (0 = all CPUs), got %d", *dop)
	}

	// Client mode: statements go to a talignd server.
	var exec func(sql string)
	if *connect != "" {
		if len(flag.Args()) > 0 {
			fatalf("-connect uses the server's catalog; load CSVs on the talignd side")
		}
		if *demo {
			fatalf("-connect uses the server's catalog; start talignd with -demo instead")
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "j" {
				fatalf("-connect executes on the server; set parallelism with talignd -j")
			}
		})
		cl, err := newClient(*connect)
		if err != nil {
			fatalf("%v", err)
		}
		exec = cl.run
	} else {
		flags := plan.DefaultFlags()
		flags.DOP = *dop
		if flags.DOP == 0 {
			flags.DOP = runtime.NumCPU()
		}
		eng := sqlish.NewEngine(flags)
		for _, arg := range flag.Args() {
			parts := strings.SplitN(arg, "=", 2)
			if len(parts) != 2 {
				fatalf("argument %q is not name=file.csv", arg)
			}
			rel, err := csvio.ReadFile(parts[1])
			if err != nil {
				fatalf("loading %s: %v", parts[1], err)
			}
			eng.Register(parts[0], rel)
			fmt.Printf("loaded %s: %d tuples, schema %s\n", parts[0], rel.Len(), rel.Schema)
		}
		if *demo {
			loadDemo(eng)
		}
		exec = func(sql string) { run(eng, sql) }
	}

	if *query != "" {
		exec(*query)
		return
	}

	fmt.Println("talign — temporal alignment SQL shell (end statements with ';', \\q quits)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	for {
		if buf.Len() == 0 {
			fmt.Print("talign> ")
		} else {
			fmt.Print("   ...> ")
		}
		if !scanner.Scan() {
			return
		}
		line := scanner.Text()
		if strings.TrimSpace(line) == "\\q" {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		text := buf.String()
		if !strings.Contains(text, ";") {
			continue
		}
		buf.Reset()
		for _, stmt := range strings.Split(text, ";") {
			if strings.TrimSpace(stmt) == "" {
				continue
			}
			exec(stmt)
		}
	}
}

func run(eng *sqlish.Engine, sql string) {
	rel, explain, err := eng.Query(sql)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	if explain != "" {
		fmt.Print(explain)
		return
	}
	printRelation(rel)
}

func printRelation(rel *relation.Relation) {
	out := rel.Clone().SortCanonical()
	names := make([]string, 0, out.Schema.Len()+1)
	for _, a := range out.Schema.Attrs {
		names = append(names, a.Name)
	}
	names = append(names, "t")
	fmt.Println(strings.Join(names, "\t"))
	for _, t := range out.Tuples {
		cells := make([]string, 0, len(t.Vals)+1)
		for _, v := range t.Vals {
			cells = append(cells, v.String())
		}
		cells = append(cells, t.T.String())
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("(%d rows)\n", out.Len())
}

func loadDemo(eng *sqlish.Engine) {
	r, p := dataset.Demo()
	eng.Register("r", r)
	eng.Register("p", p)
	fmt.Println("demo relations loaded: r(n), p(a, mn, mx) — months since 2012/1")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
