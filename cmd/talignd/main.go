// Command talignd is the long-lived temporal-alignment query server: it
// loads interval-timestamped relations from CSV files, then serves the
// temporal SQL dialect over HTTP/JSON with prepared statements, an LRU
// plan cache keyed on the catalog version, and an admission gate bounding
// the total in-flight degree of parallelism.
//
// Usage:
//
//	talignd [-addr :7411] [-j dop] [-cache n] [-max-dop n] [-demo] [name=file.csv ...]
//
// Endpoints:
//
//	POST /query         {"sql": "SELECT ...", "params": [...]}
//	                    {"session": "s1", "stmt": "q1", "params": [...]}
//	POST /query/stream  same body; chunked NDJSON row streaming (schema
//	                    frame, row-batch frames, trailing status frame);
//	                    client disconnect cancels the query
//	POST /prepare       {"session": "s1", "name": "q1", "sql": "... $1 ..."}
//	GET  /explain       ?sql=... (or ?session=s1&stmt=q1)
//	GET  /healthz
//	GET  /stats         per-table ANALYZE statistics + plan-cache counters
//	GET  /metrics       Prometheus text-format counters (plan cache,
//	                    admission gate, cancellations)
//
// Loaded tables are auto-analyzed at startup, so the cost-based optimizer
// starts with real statistics; "ANALYZE <table>" via POST /query
// refreshes them at any time.
//
// Example:
//
//	talignd -demo &
//	curl -s localhost:7411/query -d '{"sql": "SELECT * FROM r WHERE a >= $1", "params": [40]}'
//
// cmd/talign's -connect flag speaks this protocol as an interactive client.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"

	"talign/internal/csvio"
	"talign/internal/dataset"
	"talign/internal/plan"
	"talign/internal/server"
)

func main() {
	addr := flag.String("addr", ":7411", "listen address")
	dop := flag.Int("j", 1, "degree of parallelism per query (0 = all CPUs)")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "prepared-plan cache capacity")
	maxDOP := flag.Int("max-dop", 0, "total in-flight DOP across queries (0 = 4x CPUs)")
	demo := flag.Bool("demo", false, "preload the paper's hotel example relations r and p")
	flag.Parse()

	if *dop < 0 {
		fatalf("-j must be >= 0 (0 = all CPUs), got %d", *dop)
	}
	flags := plan.DefaultFlags()
	flags.DOP = *dop
	if flags.DOP == 0 {
		flags.DOP = runtime.NumCPU()
	}
	if *maxDOP == 0 {
		*maxDOP = 4 * runtime.NumCPU()
	}

	srv := server.New(server.Config{Flags: flags, CacheSize: *cacheSize, MaxDOP: *maxDOP})
	for _, arg := range flag.Args() {
		parts := strings.SplitN(arg, "=", 2)
		if len(parts) != 2 {
			fatalf("argument %q is not name=file.csv", arg)
		}
		rel, err := csvio.ReadFile(parts[1])
		if err != nil {
			fatalf("loading %s: %v", parts[1], err)
		}
		srv.Catalog().Register(parts[0], rel)
		fmt.Printf("loaded %s: %d tuples, schema %s\n", parts[0], rel.Len(), rel.Schema)
	}
	if *demo {
		loadDemo(srv)
	}
	if n := srv.AnalyzeAll(); n > 0 {
		fmt.Printf("auto-analyzed %d table(s)\n", n)
	}

	fmt.Printf("talignd listening on %s (dop=%d, cache=%d, max in-flight dop=%d)\n",
		*addr, flags.DOP, *cacheSize, *maxDOP)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatalf("talignd: %v", err)
	}
}

// loadDemo registers the paper's running hotel example (Example 1).
func loadDemo(srv *server.Server) {
	r, p := dataset.Demo()
	srv.Catalog().Register("r", r)
	srv.Catalog().Register("p", p)
	fmt.Println("demo relations loaded: r(n), p(a, mn, mx) — months since 2012/1")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
