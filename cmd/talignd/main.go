// Command talignd is the long-lived temporal-alignment query server: it
// loads interval-timestamped relations from CSV files, then serves the
// temporal SQL dialect over HTTP/JSON with prepared statements, an LRU
// plan cache keyed on the catalog version, and an admission gate bounding
// the total in-flight degree of parallelism.
//
// Usage:
//
//	talignd [-addr :7411] [-j dop] [-cache n] [-max-dop n] [-timeout d]
//	        [-max-rows n] [-max-bytes n] [-drain d] [-demo]
//	        [-data dir] [-segment-rows n] [name=file.csv ...]
//
// With -data, talignd opens (or creates) a persistent data directory:
// tables created through "CREATE TABLE <name> FROM CSV '<path>'" are
// written as interval-partitioned columnar segments plus a WAL, and a
// restarted talignd warm-boots them — byte-identical results, zone maps
// ready for segment pruning — before serving. "DROP TABLE <name>"
// removes a table from the catalog and from disk. Without -data both
// statements still work but affect only the in-memory catalog.
//
// Endpoints:
//
//	POST /query         {"sql": "SELECT ...", "params": [...]}
//	                    {"session": "s1", "stmt": "q1", "params": [...]}
//	POST /query/stream  same body; chunked NDJSON row streaming (schema
//	                    frame, row-batch frames, trailing status frame);
//	                    client disconnect cancels the query
//	POST /prepare       {"session": "s1", "name": "q1", "sql": "... $1 ..."}
//	GET  /explain       ?sql=... (or ?session=s1&stmt=q1)
//	GET  /healthz       liveness: 200 while the process runs
//	GET  /readyz        readiness: 200 while accepting queries, 503 with a
//	                    structured "unavailable" error while draining
//	GET  /stats         per-table ANALYZE statistics + plan-cache counters
//	GET  /metrics       Prometheus text-format counters (plan cache,
//	                    admission gate, cancellations, timeouts, budget
//	                    aborts, recovered panics, drain state)
//
// Lifecycle: -timeout arms a per-query deadline, -max-rows/-max-bytes a
// per-query resource budget (rows/bytes crossing operator boundaries).
// On SIGTERM or SIGINT the server drains instead of dying mid-stream: it
// stops admitting queries (new ones get the "unavailable" error code,
// /readyz turns 503), lets in-flight streams finish for up to -drain,
// then exits 0.
//
// Loaded tables are auto-analyzed at startup, so the cost-based optimizer
// starts with real statistics; "ANALYZE <table>" via POST /query
// refreshes them at any time.
//
// Example:
//
//	talignd -demo &
//	curl -s localhost:7411/query -d '{"sql": "SELECT * FROM r WHERE a >= $1", "params": [40]}'
//
// cmd/talign's -connect flag speaks this protocol as an interactive client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"talign/internal/csvio"
	"talign/internal/dataset"
	"talign/internal/plan"
	"talign/internal/server"
	"talign/internal/storage"
)

func main() {
	addr := flag.String("addr", ":7411", "listen address")
	dop := flag.Int("j", 1, "degree of parallelism per query (0 = all CPUs)")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "prepared-plan cache capacity")
	maxDOP := flag.Int("max-dop", 0, "total in-flight DOP across queries (0 = 4x CPUs)")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none)")
	maxRows := flag.Int64("max-rows", 0, "per-query row budget across operator boundaries (0 = unlimited)")
	maxBytes := flag.Int64("max-bytes", 0, "per-query byte budget across operator boundaries (0 = unlimited)")
	drain := flag.Duration("drain", 15*time.Second, "shutdown drain deadline for in-flight queries")
	demo := flag.Bool("demo", false, "preload the paper's hotel example relations r and p")
	dataDir := flag.String("data", "", "data directory for persistent tables (empty = memory-only)")
	segRows := flag.Int("segment-rows", 0, "rows per on-disk segment (0 = default)")
	flag.Parse()

	if *dop < 0 {
		fatalf("-j must be >= 0 (0 = all CPUs), got %d", *dop)
	}
	flags := plan.DefaultFlags()
	flags.DOP = *dop
	if flags.DOP == 0 {
		flags.DOP = runtime.NumCPU()
	}
	if *maxDOP == 0 {
		*maxDOP = 4 * runtime.NumCPU()
	}

	srv := server.New(server.Config{
		Flags:     flags,
		CacheSize: *cacheSize,
		MaxDOP:    *maxDOP,
		Timeout:   *timeout,
		MaxRows:   *maxRows,
		MaxBytes:  *maxBytes,
	})
	var store *storage.Store
	if *dataDir != "" {
		var err error
		store, err = storage.Open(*dataDir)
		if err != nil {
			fatalf("opening data directory %s: %v", *dataDir, err)
		}
		if *segRows > 0 {
			store.SegmentRows = *segRows
		}
		n, err := srv.UseStore(store)
		if err != nil {
			fatalf("loading persisted tables from %s: %v", *dataDir, err)
		}
		fmt.Printf("data directory %s: %d persisted table(s) loaded\n", *dataDir, n)
	}
	for _, arg := range flag.Args() {
		parts := strings.SplitN(arg, "=", 2)
		if len(parts) != 2 {
			fatalf("argument %q is not name=file.csv", arg)
		}
		rel, err := csvio.ReadFile(parts[1])
		if err != nil {
			fatalf("loading %s: %v", parts[1], err)
		}
		srv.Catalog().Register(parts[0], rel)
		fmt.Printf("loaded %s: %d tuples, schema %s\n", parts[0], rel.Len(), rel.Schema)
	}
	if *demo {
		loadDemo(srv)
	}
	if n := srv.AnalyzeAll(); n > 0 {
		fmt.Printf("auto-analyzed %d table(s)\n", n)
	}

	fmt.Printf("talignd listening on %s (dop=%d, cache=%d, max in-flight dop=%d)\n",
		*addr, flags.DOP, *cacheSize, *maxDOP)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-serveErr:
		// ListenAndServe never returns nil; without a Shutdown in flight
		// any return is fatal (bad address, closed listener).
		fatalf("talignd: %v", err)
	case s := <-sig:
		// Graceful drain: stop admitting queries (new ones are refused
		// with the "unavailable" code and /readyz flips to 503), then let
		// in-flight streams finish under the drain deadline. A clean
		// drain — or one where only stuck streams remain past the
		// deadline — exits 0 so orchestrators see a voluntary shutdown.
		fmt.Printf("talignd: received %v, draining (deadline %s)\n", s, *drain)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Keep the listener up while in-flight queries finish: load
		// balancers need to reach /readyz to observe the 503 flip, and
		// monitoring keeps /healthz and /metrics. Only once the gate
		// quiesces (or the deadline passes) does the listener close.
	quiesce:
		for srv.GateStats().InUse > 0 {
			select {
			case <-ctx.Done():
				break quiesce
			case <-time.After(50 * time.Millisecond):
			}
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "talignd: drain deadline exceeded, closing remaining connections: %v\n", err)
			httpSrv.Close()
		} else {
			fmt.Println("talignd: drained cleanly")
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("talignd: %v", err)
		}
		if store != nil {
			// Fold any WAL tail into segments so the next start replays
			// nothing; failures leave the WAL in place, which the next
			// open replays — durability never depends on this step.
			if err := store.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "talignd: checkpoint on shutdown: %v\n", err)
			}
			store.Close()
		}
	}
}

// loadDemo registers the paper's running hotel example (Example 1).
func loadDemo(srv *server.Server) {
	r, p := dataset.Demo()
	srv.Catalog().Register("r", r)
	srv.Catalog().Register("p", p)
	fmt.Println("demo relations loaded: r(n), p(a, mn, mx) — months since 2012/1")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
