// Command talignd is the long-lived temporal-alignment query server: it
// loads interval-timestamped relations from CSV files, then serves the
// temporal SQL dialect over HTTP/JSON with prepared statements, an LRU
// plan cache keyed on the catalog version, and an admission gate bounding
// the total in-flight degree of parallelism.
//
// Usage:
//
//	talignd [-addr :7411] [-j dop] [-cache n] [-max-dop n] [-timeout d]
//	        [-max-rows n] [-max-bytes n] [-drain d] [-demo]
//	        [-data dir] [-segment-rows n]
//	        [-role coordinator|worker] [-worker host:port,...]
//	        [-cluster manifest.json] [-partition table=col,...]
//	        [name=file.csv ...]
//
// With -role, talignd forms a scatter-gather cluster: workers mount
// POST /fragment beside the full single-node surface, and a coordinator
// hash-partitions loaded tables by their alignment key across the
// -worker list (or the -cluster manifest, whose per-table partition
// columns -partition overrides), scatters query fragments and merges
// the shard streams — the client-facing protocol is byte-identical to a
// single node. See docs/API.md "Distributed deployment".
//
// With -data, talignd opens (or creates) a persistent data directory:
// tables created through "CREATE TABLE <name> FROM CSV '<path>'" are
// written as interval-partitioned columnar segments plus a WAL, and a
// restarted talignd warm-boots them — byte-identical results, zone maps
// ready for segment pruning — before serving. "DROP TABLE <name>"
// removes a table from the catalog and from disk. Without -data both
// statements still work but affect only the in-memory catalog.
//
// Endpoints:
//
//	POST /query         {"sql": "SELECT ...", "params": [...]}
//	                    {"session": "s1", "stmt": "q1", "params": [...]}
//	POST /query/stream  same body; chunked NDJSON row streaming (schema
//	                    frame, row-batch frames, trailing status frame);
//	                    client disconnect cancels the query
//	POST /prepare       {"session": "s1", "name": "q1", "sql": "... $1 ..."}
//	GET  /explain       ?sql=... (or ?session=s1&stmt=q1)
//	GET  /healthz       liveness: 200 while the process runs
//	GET  /readyz        readiness: 200 while accepting queries, 503 with a
//	                    structured "unavailable" error while draining
//	GET  /stats         per-table ANALYZE statistics + plan-cache counters
//	GET  /metrics       Prometheus text-format counters (plan cache,
//	                    admission gate, cancellations, timeouts, budget
//	                    aborts, recovered panics, drain state)
//
// Lifecycle: -timeout arms a per-query deadline, -max-rows/-max-bytes a
// per-query resource budget (rows/bytes crossing operator boundaries).
// On SIGTERM or SIGINT the server drains instead of dying mid-stream: it
// stops admitting queries (new ones get the "unavailable" error code,
// /readyz turns 503), lets in-flight streams finish for up to -drain,
// then exits 0.
//
// Loaded tables are auto-analyzed at startup, so the cost-based optimizer
// starts with real statistics; "ANALYZE <table>" via POST /query
// refreshes them at any time.
//
// Example:
//
//	talignd -demo &
//	curl -s localhost:7411/query -d '{"sql": "SELECT * FROM r WHERE a >= $1", "params": [40]}'
//
// cmd/talign's -connect flag speaks this protocol as an interactive client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"talign/internal/csvio"
	"talign/internal/dataset"
	"talign/internal/distsql"
	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/server"
	"talign/internal/storage"
)

func main() {
	addr := flag.String("addr", ":7411", "listen address")
	dop := flag.Int("j", 1, "degree of parallelism per query (0 = all CPUs)")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "prepared-plan cache capacity")
	maxDOP := flag.Int("max-dop", 0, "total in-flight DOP across queries (0 = 4x CPUs)")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none)")
	maxRows := flag.Int64("max-rows", 0, "per-query row budget across operator boundaries (0 = unlimited)")
	maxBytes := flag.Int64("max-bytes", 0, "per-query byte budget across operator boundaries (0 = unlimited)")
	drain := flag.Duration("drain", 15*time.Second, "shutdown drain deadline for in-flight queries")
	demo := flag.Bool("demo", false, "preload the paper's hotel example relations r and p")
	dataDir := flag.String("data", "", "data directory for persistent tables (empty = memory-only)")
	segRows := flag.Int("segment-rows", 0, "rows per on-disk segment (0 = default)")
	role := flag.String("role", "", "cluster role: coordinator, worker, or empty for single-node")
	workers := flag.String("worker", "", "coordinator worker list: host:port,host:port,...")
	cluster := flag.String("cluster", "", "coordinator cluster manifest file (JSON: workers + partition columns)")
	partition := flag.String("partition", "", "coordinator partition overrides: table=col,table=col,...")
	flag.Parse()

	if *dop < 0 {
		fatalf("-j must be >= 0 (0 = all CPUs), got %d", *dop)
	}
	flags := plan.DefaultFlags()
	flags.DOP = *dop
	if flags.DOP == 0 {
		flags.DOP = runtime.NumCPU()
	}
	if *maxDOP == 0 {
		*maxDOP = 4 * runtime.NumCPU()
	}

	srv := server.New(server.Config{
		Flags:     flags,
		CacheSize: *cacheSize,
		MaxDOP:    *maxDOP,
		Timeout:   *timeout,
		MaxRows:   *maxRows,
		MaxBytes:  *maxBytes,
	})
	var store *storage.Store
	if *dataDir != "" {
		var err error
		store, err = storage.Open(*dataDir)
		if err != nil {
			fatalf("opening data directory %s: %v", *dataDir, err)
		}
		if *segRows > 0 {
			store.SegmentRows = *segRows
		}
		n, err := srv.UseStore(store)
		if err != nil {
			fatalf("loading persisted tables from %s: %v", *dataDir, err)
		}
		fmt.Printf("data directory %s: %d persisted table(s) loaded\n", *dataDir, n)
	}
	var coord *distsql.Coordinator
	switch *role {
	case "", "worker":
		if *workers != "" || *cluster != "" {
			fatalf("-worker and -cluster require -role coordinator")
		}
	case "coordinator":
		topo, partMap, err := clusterConfig(*workers, *cluster, *partition)
		if err != nil {
			fatalf("%v", err)
		}
		coord = distsql.New(srv, topo, flags, partMap)
		coord.Attach()
		fmt.Printf("coordinator: %d worker(s), topology %s\n", len(topo.Workers), topo.Version())
	default:
		fatalf("-role must be coordinator, worker or empty, got %q", *role)
	}

	register := func(name string, rel *relation.Relation) {
		if coord != nil {
			if err := coord.DistributeTable(context.Background(), name, rel); err != nil {
				fatalf("distributing %s: %v", name, err)
			}
			fmt.Printf("distributed %s: %d tuples across %d worker(s)\n", name, rel.Len(), len(coord.Topology().Workers))
			return
		}
		srv.Catalog().Register(name, rel)
		fmt.Printf("loaded %s: %d tuples, schema %s\n", name, rel.Len(), rel.Schema)
	}
	for _, arg := range flag.Args() {
		parts := strings.SplitN(arg, "=", 2)
		if len(parts) != 2 {
			fatalf("argument %q is not name=file.csv", arg)
		}
		rel, err := csvio.ReadFile(parts[1])
		if err != nil {
			fatalf("loading %s: %v", parts[1], err)
		}
		register(parts[0], rel)
	}
	if *demo {
		r, p := dataset.Demo()
		register("r", r)
		register("p", p)
		fmt.Println("demo relations loaded: r(n), p(a, mn, mx) — months since 2012/1")
	}
	if coord != nil {
		// Workers got the data; give their optimizers statistics too.
		if err := coord.AnalyzeWorkers(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "talignd: worker analyze broadcast: %v\n", err)
		}
	}
	if n := srv.AnalyzeAll(); n > 0 {
		fmt.Printf("auto-analyzed %d table(s)\n", n)
	}

	handler := srv.Handler()
	if *role == "worker" {
		handler = distsql.Handler(srv)
		fmt.Println("worker: fragment endpoint mounted at POST /fragment")
	}
	fmt.Printf("talignd listening on %s (dop=%d, cache=%d, max in-flight dop=%d)\n",
		*addr, flags.DOP, *cacheSize, *maxDOP)
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-serveErr:
		// ListenAndServe never returns nil; without a Shutdown in flight
		// any return is fatal (bad address, closed listener).
		fatalf("talignd: %v", err)
	case s := <-sig:
		// Graceful drain: stop admitting queries (new ones are refused
		// with the "unavailable" code and /readyz flips to 503), then let
		// in-flight streams finish under the drain deadline. A clean
		// drain — or one where only stuck streams remain past the
		// deadline — exits 0 so orchestrators see a voluntary shutdown.
		fmt.Printf("talignd: received %v, draining (deadline %s)\n", s, *drain)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Keep the listener up while in-flight queries finish: load
		// balancers need to reach /readyz to observe the 503 flip, and
		// monitoring keeps /healthz and /metrics. Only once the gate
		// quiesces (or the deadline passes) does the listener close.
	quiesce:
		for srv.GateStats().InUse > 0 {
			select {
			case <-ctx.Done():
				break quiesce
			case <-time.After(50 * time.Millisecond):
			}
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "talignd: drain deadline exceeded, closing remaining connections: %v\n", err)
			httpSrv.Close()
		} else {
			fmt.Println("talignd: drained cleanly")
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("talignd: %v", err)
		}
		if store != nil {
			// Fold any WAL tail into segments so the next start replays
			// nothing; failures leave the WAL in place, which the next
			// open replays — durability never depends on this step.
			if err := store.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "talignd: checkpoint on shutdown: %v\n", err)
			}
			store.Close()
		}
	}
}

// clusterConfig resolves the coordinator's topology and partition
// overrides from the -cluster manifest or the -worker/-partition flags.
func clusterConfig(workers, cluster, partition string) (distsql.Topology, map[string]string, error) {
	if cluster != "" {
		if workers != "" {
			return distsql.Topology{}, nil, fmt.Errorf("-worker and -cluster are mutually exclusive")
		}
		m, err := distsql.LoadManifest(cluster)
		if err != nil {
			return distsql.Topology{}, nil, err
		}
		part := m.Partition
		if overrides, err := parsePartition(partition); err != nil {
			return distsql.Topology{}, nil, err
		} else {
			for t, c := range overrides {
				part[t] = c
			}
		}
		return distsql.Topology{Workers: m.Workers}, part, nil
	}
	if workers == "" {
		return distsql.Topology{}, nil, fmt.Errorf("-role coordinator requires -worker or -cluster")
	}
	topo, err := distsql.ParseWorkers(workers)
	if err != nil {
		return distsql.Topology{}, nil, err
	}
	part, err := parsePartition(partition)
	if err != nil {
		return distsql.Topology{}, nil, err
	}
	return topo, part, nil
}

// parsePartition parses "table=col,table=col" overrides.
func parsePartition(s string) (map[string]string, error) {
	out := map[string]string{}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("-partition entry %q is not table=col", kv)
		}
		out[strings.ToLower(parts[0])] = strings.ToLower(parts[1])
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
