package talign

import (
	"context"
	"fmt"
	"sync/atomic"

	"talign/internal/csvio"
	"talign/internal/dataset"
	"talign/internal/relation"
	"talign/internal/server"
	"talign/internal/sqlish"
	"talign/internal/stats"
	"talign/internal/tuple"
	"talign/internal/value"
)

// embeddedDB runs the full engine in-process: the same server core that
// talignd wraps in HTTP — copy-on-write catalog, LRU plan cache,
// admission gate — minus the wire. Cursors returned by query pull
// executor batches directly; the admission-gate claim is held until the
// cursor closes.
type embeddedDB struct {
	srv    *server.Server
	closed atomic.Bool
}

// openEmbedded builds the in-process backend for a talign:// DSN.
func openEmbedded(cfg dsnConfig) (backend, error) {
	srv := server.New(server.Config{
		Flags:     cfg.flags(),
		CacheSize: cfg.cache,
		MaxDOP:    cfg.maxDOP,
		Timeout:   cfg.timeout,
		MaxRows:   int64(cfg.maxRows),
		MaxBytes:  int64(cfg.maxBytes),
	})
	if cfg.demo {
		r, p := dataset.Demo()
		srv.Catalog().Register("r", r)
		srv.Catalog().Register("p", p)
	}
	for _, load := range cfg.loads {
		rel, err := csvio.ReadFile(load[1])
		if err != nil {
			return nil, fmt.Errorf("talign: loading %s: %v", load[1], err)
		}
		srv.Catalog().Register(load[0], rel)
	}
	if cfg.analyze {
		srv.AnalyzeAll()
	}
	return &embeddedDB{srv: srv}, nil
}

func (e *embeddedDB) query(ctx context.Context, session, stmt, sql string, params []value.Value) (*Rows, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("talign: DB is closed")
	}
	rs, err := e.srv.Stream(ctx, session, stmt, sql, params)
	if err != nil {
		return nil, err
	}
	if rs.Plan() != "" {
		rs.Close()
		return &Rows{plan: rs.Plan(), cacheHit: rs.CacheHit()}, nil
	}
	return &Rows{
		cols:     rs.Columns(),
		types:    rs.Types(),
		cacheHit: rs.CacheHit(),
		src:      &embeddedSource{rs: rs},
	}, nil
}

func (e *embeddedDB) prepare(ctx context.Context, session, name, sql string) (stmtMeta, error) {
	if e.closed.Load() {
		return stmtMeta{}, fmt.Errorf("talign: DB is closed")
	}
	if err := ctx.Err(); err != nil {
		return stmtMeta{}, err
	}
	prep, err := e.srv.Prepare(session, name, sql)
	if err != nil {
		return stmtMeta{}, err
	}
	cols, types := preparedColumns(prep)
	return stmtMeta{numParams: prep.NumParams, columns: cols, types: types}, nil
}

func (e *embeddedDB) register(name string, rel *relation.Relation) error {
	if e.closed.Load() {
		return fmt.Errorf("talign: DB is closed")
	}
	e.srv.Catalog().Register(name, rel)
	return nil
}

func (e *embeddedDB) analyze(name string) (*stats.Table, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("talign: DB is closed")
	}
	return e.srv.Analyze(name)
}

func (e *embeddedDB) close() error {
	e.closed.Store(true)
	return nil
}

// Server exposes the embedded server core (nil for remote DBs); the
// talign shell uses it for catalog loading and metrics.
func (db *DB) Server() *server.Server {
	if e, ok := db.backend.(*embeddedDB); ok {
		return e.srv
	}
	return nil
}

// embeddedSource adapts a server RowStream (executor batches, reused
// buffers) to the Rows contract (fully-owned rows).
type embeddedSource struct {
	rs    *server.RowStream
	batch []tuple.Tuple
	pos   int
}

func (s *embeddedSource) next() ([]value.Value, error) {
	for s.pos >= len(s.batch) {
		b, err := s.rs.Next()
		if err != nil {
			return nil, err
		}
		if len(b) == 0 {
			return nil, nil
		}
		s.batch, s.pos = b, 0
	}
	t := s.batch[s.pos]
	s.pos++
	// Copy out of the executor-owned batch; the Vals backing array itself
	// is immutable once handed out (the batch ownership contract), so a
	// shallow copy of the slice contents is a full hand-off.
	row := make([]value.Value, 0, len(t.Vals)+2)
	row = append(row, t.Vals...)
	row = append(row, value.NewInt(t.T.Ts), value.NewInt(t.T.Te))
	return row, nil
}

func (s *embeddedSource) close() error {
	s.batch, s.pos = nil, 0
	return s.rs.Close()
}

// preparedColumns lists a prepared statement's result columns and types
// (visible attributes plus the valid-time bounds).
func preparedColumns(prep *sqlish.Prepared) (cols, types []string) {
	sch := prep.Schema()
	cols = make([]string, 0, sch.Len()+2)
	types = make([]string, 0, sch.Len()+2)
	for _, at := range sch.Attrs {
		cols = append(cols, at.Name)
		types = append(types, at.Type.String())
	}
	cols = append(cols, "ts", "te")
	types = append(types, "int", "int")
	return cols, types
}
