// Package talign's root benchmarks regenerate every panel of the paper's
// evaluation (Figs. 13–16) as testing.B benchmarks. Output cardinalities
// (the y axis of Figs. 13b/14b) are reported via the "rows" metric.
// cmd/experiments runs the same workloads as full parameter sweeps.
//
// Sizes are scaled down from the paper's 10k–200k so the full suite runs
// in minutes; the series' relative order — who wins, where the crossovers
// are — is the reproduction target (see EXPERIMENTS.md).
package talign

import (
	"fmt"
	"sync"
	"testing"

	"talign/internal/baseline"
	"talign/internal/core"
	"talign/internal/dataset"
	"talign/internal/plan"
	"talign/internal/relation"
)

// benchIncumben caches the scaled synthetic Incumben dataset. The mutex
// keeps the cache safe under -race and parallel benchmarks (testing.B may
// run b.RunParallel bodies and subtests concurrently).
var (
	benchMu       sync.Mutex
	benchIncumben = map[int]*relation.Relation{}
)

func incumbenN(b *testing.B, n int) *relation.Relation {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if rel, ok := benchIncumben[n]; ok {
		return rel
	}
	rel := dataset.Incumben(dataset.IncumbenConfig{Rows: n, Seed: 1})
	benchIncumben[n] = rel
	return rel
}

func reportRows(b *testing.B, rows int) {
	b.Helper()
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkFig13NormalizeJoinMethods reproduces Fig. 13(a): N_{ssn} on
// Incumben with each join method forced via planner flags, and Fig. 13(b)
// through the reported rows metric.
func BenchmarkFig13NormalizeJoinMethods(b *testing.B) {
	variants := []struct {
		name  string
		flags plan.Flags
		n     int
	}{
		{"merge/n=8000", plan.Flags{EnableMergeJoin: true, EnableSort: true}, 8000},
		{"hash/n=8000", plan.Flags{EnableHashJoin: true}, 8000},
		{"nestloop/n=1000", plan.Flags{EnableNestLoop: true}, 1000},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			rel := incumbenN(b, v.n)
			a := core.New(v.flags)
			b.ResetTimer()
			rows := 0
			for i := 0; i < b.N; i++ {
				out, err := a.Normalize(rel, rel, "ssn")
				if err != nil {
					b.Fatal(err)
				}
				rows = out.Len()
			}
			reportRows(b, rows)
		})
	}
}

// BenchmarkFig14NormalizeAttrs reproduces Fig. 14(a)/(b): runtime and
// output size of N_{}, N_{pcn} and N_{ssn} on Incumben.
func BenchmarkFig14NormalizeAttrs(b *testing.B) {
	variants := []struct {
		name  string
		attrs []string
		n     int
	}{
		{"Nempty/n=1000", nil, 1000},
		{"Npcn/n=8000", []string{"pcn"}, 8000},
		{"Nssn/n=8000", []string{"ssn"}, 8000},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			rel := incumbenN(b, v.n)
			a := core.Default()
			b.ResetTimer()
			rows := 0
			for i := 0; i < b.N; i++ {
				out, err := a.Normalize(rel, rel, v.attrs...)
				if err != nil {
					b.Fatal(err)
				}
				rows = out.Len()
			}
			reportRows(b, rows)
		})
	}
}

// BenchmarkFig15aO1Ddisj reproduces Fig. 15(a): O1 on D_disj, align vs the
// standard-SQL formulation (quadratic NOT EXISTS).
func BenchmarkFig15aO1Ddisj(b *testing.B) {
	for _, st := range []baseline.Strategy{baseline.StrategyAlign, baseline.StrategySQL} {
		b.Run(st.String()+"/n=1000", func(b *testing.B) {
			b.ReportAllocs()
			r, s := dataset.Ddisj(1000, 1)
			b.ResetTimer()
			rows := 0
			for i := 0; i < b.N; i++ {
				out, err := baseline.LeftOuterJoin(st, r, s, nil)
				if err != nil {
					b.Fatal(err)
				}
				rows = out.Len()
			}
			reportRows(b, rows)
		})
	}
}

// BenchmarkFig15bO1Deq reproduces Fig. 15(b): O1 on D_eq, where the SQL
// formulation wins because NOT EXISTS refutes on the first probe.
func BenchmarkFig15bO1Deq(b *testing.B) {
	for _, st := range []baseline.Strategy{baseline.StrategyAlign, baseline.StrategySQL} {
		b.Run(st.String()+"/n=250", func(b *testing.B) {
			b.ReportAllocs()
			r, s := dataset.Deq(250, 1)
			b.ResetTimer()
			rows := 0
			for i := 0; i < b.N; i++ {
				out, err := baseline.LeftOuterJoin(st, r, s, nil)
				if err != nil {
					b.Fatal(err)
				}
				rows = out.Len()
			}
			reportRows(b, rows)
		})
	}
}

// BenchmarkFig15cO2Drand reproduces Fig. 15(c): O2 with the extended
// snapshot reducibility condition Min ≤ DUR(r.T) ≤ Max on D_rand.
func BenchmarkFig15cO2Drand(b *testing.B) {
	for _, st := range []baseline.Strategy{baseline.StrategyAlign, baseline.StrategySQL} {
		b.Run(st.String()+"/n=1000", func(b *testing.B) {
			b.ReportAllocs()
			r0, s := dataset.Drand(1000, 1)
			r := core.MustExtend(r0, "u")
			b.ResetTimer()
			rows := 0
			for i := 0; i < b.N; i++ {
				out, err := baseline.LeftOuterJoin(st, r, s, baseline.O2Theta())
				if err != nil {
					b.Fatal(err)
				}
				rows = out.Len()
			}
			reportRows(b, rows)
		})
	}
}

// BenchmarkFig15dO3Incumben reproduces Fig. 15(d): the full outer join O3
// on Incumben halves, where the equality condition lets both approaches
// use fast join methods.
func BenchmarkFig15dO3Incumben(b *testing.B) {
	for _, st := range []baseline.Strategy{baseline.StrategyAlign, baseline.StrategySQL} {
		b.Run(st.String()+"/n=8000", func(b *testing.B) {
			b.ReportAllocs()
			r, s := dataset.SplitHalves(incumbenN(b, 8000), []string{"ssn", "pcn"}, []string{"ssn2", "pcn2"})
			b.ResetTimer()
			rows := 0
			for i := 0; i < b.N; i++ {
				out, err := baseline.FullOuterJoin(st, r, s, baseline.O3Theta())
				if err != nil {
					b.Fatal(err)
				}
				rows = out.Len()
			}
			reportRows(b, rows)
		})
	}
}

// BenchmarkFig16aO3IncumbenNorm reproduces Fig. 16(a): O3 on Incumben,
// align vs sql+normalize (normalization-based temporal difference over the
// intermediate join result).
func BenchmarkFig16aO3IncumbenNorm(b *testing.B) {
	for _, st := range []baseline.Strategy{baseline.StrategyAlign, baseline.StrategySQLNormalize} {
		b.Run(st.String()+"/n=8000", func(b *testing.B) {
			b.ReportAllocs()
			r, s := dataset.SplitHalves(incumbenN(b, 8000), []string{"ssn", "pcn"}, []string{"ssn2", "pcn2"})
			b.ResetTimer()
			rows := 0
			for i := 0; i < b.N; i++ {
				out, err := baseline.FullOuterJoin(st, r, s, baseline.O3Theta())
				if err != nil {
					b.Fatal(err)
				}
				rows = out.Len()
			}
			reportRows(b, rows)
		})
	}
}

// BenchmarkFig16bO3RandomNorm reproduces Fig. 16(b): O3 on the random
// dataset with more distinct splitting points, where sql+normalize loses
// more ground.
func BenchmarkFig16bO3RandomNorm(b *testing.B) {
	for _, st := range []baseline.Strategy{baseline.StrategyAlign, baseline.StrategySQLNormalize} {
		b.Run(st.String()+"/n=8000", func(b *testing.B) {
			b.ReportAllocs()
			rel := dataset.RandomIncumbenLike(8000, 1)
			r, s := dataset.SplitHalves(rel, []string{"ssn", "pcn"}, []string{"ssn2", "pcn2"})
			b.ResetTimer()
			rows := 0
			for i := 0; i < b.N; i++ {
				out, err := baseline.FullOuterJoin(st, r, s, baseline.O3Theta())
				if err != nil {
					b.Fatal(err)
				}
				rows = out.Len()
			}
			reportRows(b, rows)
		})
	}
}

// BenchmarkAblationIntervalIndex measures the Sec. 8 future-work access
// path: the sort-based overlap join for group construction replaces the
// quadratic nested loop on O1/D_disj (θ = true admits no equi keys).
func BenchmarkAblationIntervalIndex(b *testing.B) {
	r, s := dataset.Ddisj(2000, 1)
	variants := []struct {
		name string
		mk   func() *core.Algebra
	}{
		{"nestloop", core.Default},
		{"interval-index", func() *core.Algebra {
			f := plan.DefaultFlags()
			f.EnableIntervalIndex = true
			return core.New(f)
		}},
	}
	for _, v := range variants {
		b.Run(v.name+"/n=2000", func(b *testing.B) {
			b.ReportAllocs()
			a := v.mk()
			rows := 0
			for i := 0; i < b.N; i++ {
				out, err := a.LeftOuterJoin(r, s, nil)
				if err != nil {
					b.Fatal(err)
				}
				rows = out.Len()
			}
			reportRows(b, rows)
		})
	}
}

// BenchmarkAblationAntiJoinRewrite measures the second Sec. 8 future-work
// customization: the temporal antijoin via the gaps-only aligner (no
// second alignment, no join) against the generic Table 2 reduction.
func BenchmarkAblationAntiJoinRewrite(b *testing.B) {
	rel := dataset.RandomIncumbenLike(8000, 3)
	r, s := dataset.SplitHalves(rel, []string{"ssn", "pcn"}, []string{"ssn2", "pcn2"})
	variants := []struct {
		name string
		mk   func() *core.Algebra
	}{
		{"generic", core.Default},
		{"gaps-only", func() *core.Algebra {
			f := plan.DefaultFlags()
			f.EnableAntiJoinRewrite = true
			return core.New(f)
		}},
	}
	for _, v := range variants {
		b.Run(v.name+"/n=8000", func(b *testing.B) {
			b.ReportAllocs()
			a := v.mk()
			rows := 0
			for i := 0; i < b.N; i++ {
				out, err := a.AntiJoin(r, s, baseline.O3Theta())
				if err != nil {
					b.Fatal(err)
				}
				rows = out.Len()
			}
			reportRows(b, rows)
		})
	}
}

// BenchmarkPrimitives measures the two primitives in isolation: the
// ablation behind the Sec. 6.2/6.3 cost model (alignment does one extra
// comparison per tuple compared to normalization).
func BenchmarkPrimitives(b *testing.B) {
	rel := dataset.RandomIncumbenLike(4000, 2)
	r, s := dataset.SplitHalves(rel, []string{"ssn", "pcn"}, []string{"ssn2", "pcn2"})
	a := core.Default()
	b.Run("align/theta=pcn", func(b *testing.B) {
		b.ReportAllocs()
		rows := 0
		for i := 0; i < b.N; i++ {
			out, err := a.Align(r, s, baseline.O3Theta())
			if err != nil {
				b.Fatal(err)
			}
			rows = out.Len()
		}
		reportRows(b, rows)
	})
	b.Run("normalize/B=pcn", func(b *testing.B) {
		b.ReportAllocs()
		rows := 0
		for i := 0; i < b.N; i++ {
			out, err := a.Normalize(r, r, "pcn")
			if err != nil {
				b.Fatal(err)
			}
			rows = out.Len()
		}
		reportRows(b, rows)
	})
	b.Run("absorb", func(b *testing.B) {
		b.ReportAllocs()
		aligned, err := a.Align(r, s, baseline.O3Theta())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Absorb(aligned); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelExchange measures the exchange layer against the serial
// executor on the two Fig. 13/14-style workloads at the largest scaled
// size: normalization N_{ssn} (Fig. 13a's winning hash plan) and the full
// temporal outer join O3 (Fig. 15d's align strategy). dop=1 is the serial
// baseline; higher DOPs hash-partition the plane sweep, sort and joins
// across worker goroutines.
func BenchmarkParallelExchange(b *testing.B) {
	const n = 8000
	variants := []struct {
		name  string
		dop   int
		force bool
	}{
		{"serial", 1, false},
		// auto: the core-aware cost model picks the exchange only when the
		// machine has real concurrency to offer (on a 1-CPU box it keeps
		// the serial plan, so this series measures the planner's fallback).
		{"dop=2-auto", 2, false},
		{"dop=4-auto", 4, false},
		// forced: ForceParallel runs the exchange regardless of
		// profitability, exposing its overhead on single-core machines
		// and its speedup on multi-core ones.
		{"dop=4-forced", 4, true},
	}
	for _, v := range variants {
		flags := plan.DefaultFlags()
		flags.DOP = v.dop
		if v.force {
			flags.ForceParallel = true
		}
		b.Run(fmt.Sprintf("normalize-ssn/n=%d/%s", n, v.name), func(b *testing.B) {
			b.ReportAllocs()
			rel := incumbenN(b, n)
			a := core.New(flags)
			b.ResetTimer()
			rows := 0
			for i := 0; i < b.N; i++ {
				out, err := a.Normalize(rel, rel, "ssn")
				if err != nil {
					b.Fatal(err)
				}
				rows = out.Len()
			}
			reportRows(b, rows)
		})
		b.Run(fmt.Sprintf("align-join-o3/n=%d/%s", n, v.name), func(b *testing.B) {
			b.ReportAllocs()
			r, s := dataset.SplitHalves(incumbenN(b, n), []string{"ssn", "pcn"}, []string{"ssn2", "pcn2"})
			a := core.New(flags)
			b.ResetTimer()
			rows := 0
			for i := 0; i < b.N; i++ {
				out, err := a.FullOuterJoin(r, s, baseline.O3Theta())
				if err != nil {
					b.Fatal(err)
				}
				rows = out.Len()
			}
			reportRows(b, rows)
		})
	}
}
