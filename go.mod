module talign

go 1.24
