package talign

import (
	"fmt"
	"math"

	"talign/internal/value"
)

// rowSource is the transport-side half of a Rows cursor: a pull stream of
// fully-owned rows (safe to retain, unlike executor batches).
type rowSource interface {
	// next returns the next row, or nil at end of stream. Errors are
	// terminal.
	next() ([]value.Value, error)
	// close aborts the stream (idempotent); for remote sources it hangs
	// up the wire stream, for embedded ones it tears the executor down
	// and releases the admission-gate claim.
	close() error
}

// Rows is an incremental result cursor in the style of database/sql: call
// Next until it returns false, Scan inside the loop, then check Err. The
// context given to the originating Query governs the stream — cancelling
// it makes Next return false promptly with Err reporting the
// cancellation, and aborts the execution at the backend. Close is
// idempotent; abandoning a cursor without closing it leaks its
// admission-gate claim until garbage collection, so always Close.
//
// Columns lists the visible attributes followed by the valid-time bounds
// "ts" and "te" (int columns), matching the wire protocol's schema frame.
type Rows struct {
	cols     []string
	types    []string
	plan     string
	cacheHit bool

	src    rowSource
	cur    []value.Value
	err    error
	closed bool
}

// Columns returns the result column names (attributes plus "ts", "te").
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Types returns the column type names, parallel to Columns.
func (r *Rows) Types() []string { return append([]string(nil), r.types...) }

// Plan returns the plan rendering for EXPLAIN / EXPLAIN ANALYZE / ANALYZE
// statements (empty for row-producing statements, which stream rows
// instead).
func (r *Rows) Plan() string { return r.plan }

// CacheHit reports whether the statement's plan came out of the
// backend's plan cache.
func (r *Rows) CacheHit() bool { return r.cacheHit }

// Next advances to the next row, reporting false at the end of the
// stream or on error (check Err afterwards). Rows arrive incrementally:
// the first Next can return before the query has finished producing
// later rows.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil || r.src == nil {
		return false
	}
	row, err := r.src.next()
	if err != nil {
		r.err = err
		r.Close()
		return false
	}
	if row == nil {
		r.Close()
		return false
	}
	r.cur = row
	return true
}

// Values returns the current row's values (valid until the next call to
// Next). The last two are the valid-time bounds ts and te as ints.
func (r *Rows) Values() []value.Value { return r.cur }

// Scan copies the current row into dest, one pointer per column:
// *int64, *int, *float64, *bool, *string and *any are supported, with ω
// (null) only scannable into *any (as nil). Periods scan into *string.
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("talign: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("talign: Scan wants %d destination(s), got %d", len(r.cur), len(dest))
	}
	for i, v := range r.cur {
		if err := scanValue(v, dest[i]); err != nil {
			return fmt.Errorf("talign: Scan column %d (%s): %v", i, r.colName(i), err)
		}
	}
	return nil
}

func (r *Rows) colName(i int) string {
	if i < len(r.cols) {
		return r.cols[i]
	}
	return fmt.Sprint(i)
}

// Err returns the error that terminated the stream, if any; context
// cancellation surfaces here.
func (r *Rows) Err() error { return r.err }

// Close aborts the stream and releases backend resources (idempotent).
// Closing early stops the producing pipeline without draining it.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.src == nil {
		return nil
	}
	return r.src.close()
}

// scanValue converts one engine value into a Go destination pointer.
func scanValue(v value.Value, dest any) error {
	if d, ok := dest.(*any); ok {
		*d = goValue(v)
		return nil
	}
	if v.IsNull() {
		return fmt.Errorf("ω (null) needs an *any destination")
	}
	switch d := dest.(type) {
	case *int64:
		switch v.Kind() {
		case value.KindInt:
			*d = v.Int()
			return nil
		case value.KindFloat:
			if f := v.Float(); f == math.Trunc(f) {
				*d = int64(f)
				return nil
			}
		}
	case *int:
		if v.Kind() == value.KindInt {
			*d = int(v.Int())
			return nil
		}
	case *float64:
		switch v.Kind() {
		case value.KindFloat:
			*d = v.Float()
			return nil
		case value.KindInt:
			*d = float64(v.Int())
			return nil
		}
	case *bool:
		if v.Kind() == value.KindBool {
			*d = v.Bool()
			return nil
		}
	case *string:
		*d = v.String()
		return nil
	default:
		return fmt.Errorf("unsupported destination type %T", dest)
	}
	return fmt.Errorf("cannot scan %s into %T", v.Kind(), dest)
}

// goValue converts an engine value to its natural Go representation.
func goValue(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindBool:
		return v.Bool()
	case value.KindInt:
		return v.Int()
	case value.KindFloat:
		return v.Float()
	case value.KindString:
		return v.Str()
	}
	return v.String()
}
