package interval

import (
	"testing"
	"testing/quick"
)

// genPair produces two valid intervals in a small domain from raw quick
// inputs, so overlap cases are common.
func genPair(a, b, c, d int8) (Interval, Interval) {
	mk := func(x, y int8) Interval {
		lo, hi := int64(x%32), int64(y%32)
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			hi++
		}
		return Interval{Ts: lo, Te: hi}
	}
	return mk(a, b), mk(c, d)
}

func TestNewValidatesOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(5, 5) must panic")
		}
	}()
	New(5, 5)
}

func TestBasicPredicates(t *testing.T) {
	i := New(2, 7)
	cases := []struct {
		name string
		got  bool
		want bool
	}{
		{"contains start", i.Contains(2), true},
		{"excludes end", i.Contains(7), false},
		{"contains inner", i.Contains(4), true},
		{"excludes before", i.Contains(1), false},
		{"valid", i.Valid(), true},
		{"zero invalid", Interval{}.Valid(), false},
		{"zero is zero", Interval{}.Zero(), true},
		{"contains itself", i.ContainsInterval(i), true},
		{"proper excludes self", i.ProperContains(i), false},
		{"proper contains strict", i.ProperContains(New(3, 6)), true},
		{"proper contains shared start", i.ProperContains(New(2, 6)), true},
		{"overlaps self", i.Overlaps(i), true},
		{"adjacent no overlap", i.Overlaps(New(7, 9)), false},
		{"adjacent detected", i.Adjacent(New(7, 9)), true},
		{"not adjacent", i.Adjacent(New(8, 9)), false},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v want %v", c.name, c.got, c.want)
		}
	}
	if i.Duration() != 5 {
		t.Errorf("duration: got %d want 5", i.Duration())
	}
	if i.String() != "[2, 7)" {
		t.Errorf("string: got %q", i)
	}
	if (Interval{}).String() != "[-)" {
		t.Errorf("zero string: got %q", Interval{})
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b   Interval
		want   Interval
		wantOK bool
	}{
		{New(1, 5), New(3, 8), New(3, 5), true},
		{New(1, 5), New(5, 8), Interval{}, false},
		{New(1, 9), New(3, 5), New(3, 5), true},
		{New(1, 2), New(8, 9), Interval{}, false},
		{New(1, 5), New(1, 5), New(1, 5), true},
	}
	for _, c := range cases {
		got, ok := c.a.Intersect(c.b)
		if ok != c.wantOK || (ok && got != c.want) {
			t.Errorf("%v ∩ %v: got %v,%v want %v,%v", c.a, c.b, got, ok, c.want, c.wantOK)
		}
	}
}

func TestUnionAndMinus(t *testing.T) {
	if u, ok := New(1, 4).Union(New(4, 8)); !ok || u != New(1, 8) {
		t.Errorf("adjacent union failed: %v %v", u, ok)
	}
	if _, ok := New(1, 3).Union(New(5, 8)); ok {
		t.Error("disjoint union must fail")
	}
	if got := New(1, 9).Minus(New(3, 5)); len(got) != 2 || got[0] != New(1, 3) || got[1] != New(5, 9) {
		t.Errorf("minus middle: %v", got)
	}
	if got := New(1, 9).Minus(New(0, 10)); len(got) != 0 {
		t.Errorf("minus cover: %v", got)
	}
	if got := New(1, 9).Minus(New(10, 12)); len(got) != 1 || got[0] != New(1, 9) {
		t.Errorf("minus disjoint: %v", got)
	}
}

func TestCompare(t *testing.T) {
	if New(1, 5).Compare(New(1, 5)) != 0 {
		t.Error("equal compare")
	}
	if New(1, 5).Compare(New(2, 3)) != -1 {
		t.Error("start order")
	}
	if New(1, 5).Compare(New(1, 4)) != 1 {
		t.Error("end order")
	}
}

// Property: intersection is commutative and contained in both operands.
func TestPropIntersection(t *testing.T) {
	f := func(a, b, c, d int8) bool {
		x, y := genPair(a, b, c, d)
		i1, ok1 := x.Intersect(y)
		i2, ok2 := y.Intersect(x)
		if ok1 != ok2 || i1 != i2 {
			return false
		}
		if ok1 && (!x.ContainsInterval(i1) || !y.ContainsInterval(i1)) {
			return false
		}
		return ok1 == x.Overlaps(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Minus yields disjoint pieces covering exactly x \ y.
func TestPropMinus(t *testing.T) {
	f := func(a, b, c, d int8) bool {
		x, y := genPair(a, b, c, d)
		pieces := x.Minus(y)
		for t := x.Ts; t < x.Te; t++ {
			inPieces := false
			for _, p := range pieces {
				if p.Contains(t) {
					inPieces = true
				}
			}
			if inPieces == y.Contains(t) {
				return false // must be in pieces iff not in y
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is a total order consistent with equality.
func TestPropCompare(t *testing.T) {
	f := func(a, b, c, d int8) bool {
		x, y := genPair(a, b, c, d)
		cxy, cyx := x.Compare(y), y.Compare(x)
		if cxy != -cyx {
			return false
		}
		return (cxy == 0) == (x == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
