// Package interval implements half-open time intervals [Ts, Te) over a
// linearly ordered, discrete time domain (Sec. 3.1 of the paper).
//
// A time point is an int64. An interval is a contiguous, non-empty set of
// time points represented by its inclusive start Ts and exclusive end Te.
// All operators in this repository assume Ts < Te for valid intervals; the
// zero Interval{} is the canonical "no valid time" marker used by
// nontemporal intermediate results.
package interval

import (
	"fmt"
	"math"
)

// TimeMin and TimeMax bound the usable time domain. They leave headroom so
// that arithmetic such as Te-Ts never overflows.
const (
	TimeMin int64 = math.MinInt64 / 4
	TimeMax int64 = math.MaxInt64 / 4
)

// Interval is a half-open interval [Ts, Te) of discrete time points.
type Interval struct {
	Ts int64 // inclusive start
	Te int64 // exclusive end
}

// New returns the interval [ts, te). It panics if ts >= te, because an empty
// or inverted interval is never a valid tuple timestamp; use Intersect for
// operations that may produce empty results.
func New(ts, te int64) Interval {
	if ts >= te {
		panic(fmt.Sprintf("interval: invalid [%d, %d)", ts, te))
	}
	return Interval{Ts: ts, Te: te}
}

// Zero reports whether i is the zero interval (the "no valid time" marker).
func (i Interval) Zero() bool { return i.Ts == 0 && i.Te == 0 }

// Valid reports whether i is a well-formed, non-empty interval.
func (i Interval) Valid() bool { return i.Ts < i.Te }

// Duration returns the number of time points in i, i.e. Te - Ts (the DUR
// function of the paper's examples).
func (i Interval) Duration() int64 { return i.Te - i.Ts }

// Contains reports whether time point t lies in [Ts, Te).
func (i Interval) Contains(t int64) bool { return i.Ts <= t && t < i.Te }

// ContainsInterval reports whether o is a (not necessarily proper) subset
// of i.
func (i Interval) ContainsInterval(o Interval) bool {
	return i.Ts <= o.Ts && o.Te <= i.Te
}

// ProperContains reports whether o ⊂ i (subset and not equal). This is the
// covering test used by the absorb operator (Def. 12).
func (i Interval) ProperContains(o Interval) bool {
	return i.ContainsInterval(o) && i != o
}

// Overlaps reports whether i and o share at least one time point.
func (i Interval) Overlaps(o Interval) bool {
	return i.Ts < o.Te && o.Ts < i.Te
}

// Adjacent reports whether i and o meet without overlapping, i.e. one ends
// exactly where the other starts.
func (i Interval) Adjacent(o Interval) bool {
	return i.Te == o.Ts || o.Te == i.Ts
}

// Intersect returns i ∩ o and whether it is non-empty.
func (i Interval) Intersect(o Interval) (Interval, bool) {
	ts := max64(i.Ts, o.Ts)
	te := min64(i.Te, o.Te)
	if ts >= te {
		return Interval{}, false
	}
	return Interval{Ts: ts, Te: te}, true
}

// Union returns the smallest interval covering both i and o and whether the
// two form a contiguous set (overlapping or adjacent); if they do not, the
// union of the point sets is not an interval and ok is false.
func (i Interval) Union(o Interval) (Interval, bool) {
	if !i.Overlaps(o) && !i.Adjacent(o) {
		return Interval{}, false
	}
	return Interval{Ts: min64(i.Ts, o.Ts), Te: max64(i.Te, o.Te)}, true
}

// Minus returns the (0, 1 or 2) maximal sub-intervals of i not covered by o.
func (i Interval) Minus(o Interval) []Interval {
	if !i.Overlaps(o) {
		return []Interval{i}
	}
	var out []Interval
	if i.Ts < o.Ts {
		out = append(out, Interval{Ts: i.Ts, Te: o.Ts})
	}
	if o.Te < i.Te {
		out = append(out, Interval{Ts: o.Te, Te: i.Te})
	}
	return out
}

// Compare orders intervals by (Ts, Te). It returns -1, 0 or +1.
func (i Interval) Compare(o Interval) int {
	switch {
	case i.Ts < o.Ts:
		return -1
	case i.Ts > o.Ts:
		return 1
	case i.Te < o.Te:
		return -1
	case i.Te > o.Te:
		return 1
	}
	return 0
}

// Equal reports i == o.
func (i Interval) Equal(o Interval) bool { return i == o }

// String renders the interval in the paper's notation, e.g. "[3, 7)".
func (i Interval) String() string {
	if i.Zero() {
		return "[-)"
	}
	return fmt.Sprintf("[%d, %d)", i.Ts, i.Te)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
