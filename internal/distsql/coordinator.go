package distsql

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"talign/internal/csvio"
	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/server"
	"talign/internal/sqlish"
	"talign/internal/tuple"
	"talign/internal/value"
	"talign/internal/wire"
)

// strategy is the distributed execution shape chosen for one statement.
type strategy int

const (
	// stratScatter runs the statement (or its ORDER-less body) verbatim
	// on every worker and concatenates the streams in worker order.
	stratScatter strategy = iota
	// stratScatterFinal scatters the body, gathers the shard results into
	// a coordinator temp and runs a final SELECT for ORDER BY/LIMIT or a
	// global dedup pass.
	stratScatterFinal
	// stratPartialAgg pushes partial COUNT/SUM/MIN/MAX aggregation to the
	// workers and re-aggregates the gathered partials.
	stratPartialAgg
	// stratGatherAll reassembles every referenced table and runs the
	// original statement on the coordinator — the universal fallback.
	stratGatherAll
)

func (s strategy) String() string {
	switch s {
	case stratScatter:
		return "scatter"
	case stratScatterFinal:
		return "scatter+final"
	case stratPartialAgg:
		return "partial-aggregate"
	case stratGatherAll:
		return "gather-all"
	}
	return "unknown"
}

// distPlan is one cached distributed plan: the strategy decision plus
// the rendered fragments (rendered without table substitution; plans
// that repartition re-render per execution with the staged names).
type distPlan struct {
	strategy  strategy
	verbatim  bool // workerSQL is the full normalized statement; params pass through
	redoDedup bool
	repart    map[string]string // table -> partition column it must be re-hashed on
	tables    []string

	workerSQL    string
	workerParams []int
	finalSQL     string
	finalParams  []int

	bodySch schema.Schema // schema of the gathered worker results (final strategies)
	sch     schema.Schema // client-visible result schema
	cols    []string
	types   []string
}

// dcache is the bounded distributed-plan cache (FIFO eviction; the keys
// already fold in every invalidating version, so stale entries are
// unreachable rather than wrong).
type dcache struct {
	mu    sync.Mutex
	m     map[string]*distPlan
	order []string
	cap   int
}

func newDcache(capacity int) *dcache {
	return &dcache{m: make(map[string]*distPlan), cap: capacity}
}

func (c *dcache) get(key string) *distPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[key]
}

func (c *dcache) put(key string, pl *distPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[key]; exists {
		return
	}
	for len(c.m) >= c.cap && len(c.order) > 0 {
		delete(c.m, c.order[0])
		c.order = c.order[1:]
	}
	c.m[key] = pl
	c.order = append(c.order, key)
}

// Coordinator implements server.Distributor over a static worker
// topology: it owns the shard map (which partition column each table is
// currently hashed on), the distributed-plan cache and the worker
// client, and plugs into the server through SetDistributor.
type Coordinator struct {
	srv     *server.Server
	topo    Topology
	topoVer string
	flags   plan.Flags
	flagsFP string
	client  *workerClient

	// partOverride maps table -> partition column from the cluster
	// manifest; tables absent default to their first column.
	partOverride map[string]string

	mu       sync.Mutex
	parts    map[string]string // table -> current partition column
	shardVer uint64

	cache *dcache
	qid   atomic.Uint64

	queries       atomic.Uint64
	hits          atomic.Uint64
	misses        atomic.Uint64
	scatters      atomic.Uint64
	scatterFinals atomic.Uint64
	partialAggs   atomic.Uint64
	repartitions  atomic.Uint64
	gatherAlls    atomic.Uint64
}

// New builds a coordinator over srv and the worker topology. flags must
// be the planner flags srv was configured with (the coordinator prepares
// final stages locally under the same flags). partition carries the
// manifest's per-table partition-column overrides (nil for defaults).
func New(srv *server.Server, topo Topology, flags plan.Flags, partition map[string]string) *Coordinator {
	po := map[string]string{}
	for t, col := range partition {
		po[strings.ToLower(t)] = strings.ToLower(col)
	}
	return &Coordinator{
		srv:          srv,
		topo:         topo,
		topoVer:      topo.Version(),
		flags:        flags,
		flagsFP:      flags.Fingerprint(),
		client:       newWorkerClient(),
		partOverride: po,
		parts:        map[string]string{},
		cache:        newDcache(256),
	}
}

// Attach installs the coordinator as srv's distributor.
func (c *Coordinator) Attach() { c.srv.SetDistributor(c) }

// Topology returns the coordinator's worker set.
func (c *Coordinator) Topology() Topology { return c.topo }

// PlanKey is the distributed plan-cache fingerprint for one normalized
// statement: it folds in the planner flags, the topology version, the
// shard-map version and the catalog version, so a cached distributed
// plan can never survive a worker-set, partitioning or schema change
// (the distributed mirror of the local cache's statsVersion discipline).
func (c *Coordinator) PlanKey(norm string) string {
	c.mu.Lock()
	sv := c.shardVer
	c.mu.Unlock()
	return fmt.Sprintf("%s\x00%s\x00%s\x00%d\x00%d",
		norm, c.flagsFP, c.topoVer, sv, c.srv.Catalog().Version())
}

// partsSnapshot copies the shard map under the lock.
func (c *Coordinator) partsSnapshot() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.parts))
	for t, col := range c.parts {
		out[t] = col
	}
	return out
}

// allSharded reports whether every table is in the shard map; statements
// touching any other table are declined to the local pipeline (which
// also produces the proper error for unknown tables).
func (c *Coordinator) allSharded(tables []string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range tables {
		if _, ok := c.parts[t]; !ok {
			return false
		}
	}
	return true
}

// DistributeTable hash-partitions rel by its manifest-assigned (or
// first) column, stages one shard per worker under the table's real
// name, registers a schema-only stub locally (the coordinator plans
// against schemas, never rows) and records the partitioning in the
// shard map.
func (c *Coordinator) DistributeTable(ctx context.Context, name string, rel *relation.Relation) error {
	name = strings.ToLower(name)
	if rel.Schema.Len() == 0 {
		return fmt.Errorf("distsql: cannot partition %s: no columns", name)
	}
	col := c.partOverride[name]
	if col == "" {
		col = rel.Schema.Attrs[0].Name
	}
	shards, err := partitionRelation(rel, col, len(c.topo.Workers))
	if err != nil {
		return fmt.Errorf("distsql: partitioning %s: %v", name, err)
	}
	for i, w := range c.topo.Workers {
		if err := c.client.stage(ctx, w, name, shards[i]); err != nil {
			return err
		}
	}
	c.srv.Catalog().Register(name, relation.New(rel.Schema))
	c.mu.Lock()
	c.parts[name] = strings.ToLower(col)
	c.shardVer++
	c.mu.Unlock()
	return nil
}

// AnalyzeWorkers broadcasts a full ANALYZE to every worker so their
// cost-based optimizers start with real per-shard statistics (the
// distributed mirror of single-node startup auto-analyze).
func (c *Coordinator) AnalyzeWorkers(ctx context.Context) error {
	for _, w := range c.topo.Workers {
		if _, err := c.client.ack(ctx, w, &wire.FragmentRequest{Op: wire.FragmentAnalyze}); err != nil {
			return err
		}
	}
	return nil
}

// ------------------------------------------------------- Distributor

// DistStream implements server.Distributor: it classifies the parsed
// statement, declines anything purely local, and otherwise plans and
// launches the distributed execution.
func (c *Coordinator) DistStream(ctx context.Context, st *sqlish.Statement, norm string, params []value.Value, batch int) (*server.DistResult, bool, error) {
	snap := c.srv.Catalog().Snapshot()
	info := st.DistInfo(snap)
	switch info.Kind {
	case sqlish.DistAnalyze:
		return c.distAnalyze(ctx, info)
	case sqlish.DistCreate:
		return c.distCreate(ctx, info)
	case sqlish.DistDrop:
		return c.distDrop(ctx, info)
	}
	if len(info.Tables) == 0 || !c.allSharded(info.Tables) {
		return nil, false, nil
	}
	c.queries.Add(1)
	pl, hit, err := c.plan(st, norm, info)
	if err != nil {
		return nil, true, err
	}
	if info.Explain {
		return &server.DistResult{Plan: c.explainText(pl), CacheHit: hit}, true, nil
	}
	if pl.strategy == stratGatherAll {
		res, err := c.runGatherAll(ctx, st, pl, params, batch, hit, info.ExplainAnalyze)
		return res, true, err
	}
	res, err := c.run(ctx, st, pl, params, batch, hit)
	return res, true, err
}

// DistExplain implements the never-executing GET /explain path.
func (c *Coordinator) DistExplain(st *sqlish.Statement, norm string) (string, bool, error) {
	snap := c.srv.Catalog().Snapshot()
	info := st.DistInfo(snap)
	if info.Kind != sqlish.DistSelect || len(info.Tables) == 0 || !c.allSharded(info.Tables) {
		return "", false, nil
	}
	pl, _, err := c.plan(st, norm, info)
	if err != nil {
		return "", true, err
	}
	return c.explainText(pl), true, nil
}

// explainText renders the distributed plan for EXPLAIN.
func (c *Coordinator) explainText(pl *distPlan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Distributed: %s over %d worker(s)\n", pl.strategy, len(c.topo.Workers))
	for _, t := range sortedKeys(pl.repart) {
		fmt.Fprintf(&b, "  repartition: %s by %s\n", t, pl.repart[t])
	}
	if pl.strategy == stratGatherAll {
		fmt.Fprintf(&b, "  gather: %s\n", strings.Join(pl.tables, ", "))
		return b.String()
	}
	fmt.Fprintf(&b, "  worker: %s\n", pl.workerSQL)
	if pl.finalSQL != "" {
		fmt.Fprintf(&b, "  final:  %s\n", pl.finalSQL)
	}
	return b.String()
}

// ------------------------------------------------------- DDL broadcast

// distAnalyze broadcasts ANALYZE to every worker and sums the per-shard
// row counts into the single-node acknowledgement format.
func (c *Coordinator) distAnalyze(ctx context.Context, info *sqlish.DistInfo) (*server.DistResult, bool, error) {
	target := strings.ToLower(info.Target)
	if !c.allSharded([]string{target}) {
		return nil, false, nil
	}
	var rows int64
	for _, w := range c.topo.Workers {
		ack, err := c.client.ack(ctx, w, &wire.FragmentRequest{Op: wire.FragmentAnalyze, Name: target})
		if err != nil {
			return nil, true, err
		}
		rows += ack.Rows
	}
	cols := 0
	if stub, ok := c.srv.Catalog().Snapshot().Lookup(target); ok {
		cols = stub.Schema.Len()
	}
	return &server.DistResult{Plan: fmt.Sprintf("ANALYZE %s: %d rows, %d columns", target, rows, cols)}, true, nil
}

// distCreate loads the CSV on the coordinator, partitions it across the
// workers and registers the local schema stub, mirroring the
// single-node CREATE TABLE acknowledgement byte-for-byte.
func (c *Coordinator) distCreate(ctx context.Context, info *sqlish.DistInfo) (*server.DistResult, bool, error) {
	target := strings.ToLower(info.Target)
	if _, exists := c.srv.Catalog().Snapshot().Lookup(target); exists {
		return nil, true, fmt.Errorf("server: CREATE TABLE: table %q already exists", target)
	}
	rel, err := csvio.ReadFile(info.CreatePath)
	if err != nil {
		return nil, true, fmt.Errorf("server: CREATE TABLE %s: %v", target, err)
	}
	if err := c.DistributeTable(ctx, target, rel); err != nil {
		return nil, true, err
	}
	return &server.DistResult{Plan: fmt.Sprintf("CREATE TABLE %s: %d rows, %d columns", target, rel.Len(), rel.Schema.Len())}, true, nil
}

// distDrop broadcasts the unstage and drops the local stub.
func (c *Coordinator) distDrop(ctx context.Context, info *sqlish.DistInfo) (*server.DistResult, bool, error) {
	target := strings.ToLower(info.Target)
	if !c.allSharded([]string{target}) {
		return nil, false, nil
	}
	for _, w := range c.topo.Workers {
		if _, err := c.client.ack(ctx, w, &wire.FragmentRequest{Op: wire.FragmentUnstage, Name: target}); err != nil {
			return nil, true, err
		}
	}
	c.srv.Catalog().Drop(target)
	c.mu.Lock()
	delete(c.parts, target)
	c.shardVer++
	c.mu.Unlock()
	return &server.DistResult{Plan: "DROP TABLE " + target}, true, nil
}

// ------------------------------------------------------- planning

// plan resolves the distributed plan through the cache.
func (c *Coordinator) plan(st *sqlish.Statement, norm string, info *sqlish.DistInfo) (*distPlan, bool, error) {
	key := c.PlanKey(norm)
	if pl := c.cache.get(key); pl != nil {
		c.hits.Add(1)
		return pl, true, nil
	}
	c.misses.Add(1)
	pl, err := c.buildPlan(st, norm, info)
	if err != nil {
		return nil, false, err
	}
	c.cache.put(key, pl)
	return pl, false, nil
}

// buildPlan picks the cheapest strategy the statement's shape admits.
// Every candidate's rendered fragments are validated by preparing them
// locally (worker bodies against the schema stubs, final stages against
// an empty temp of the body schema) — a candidate that fails to prepare
// falls through to the next, ending at gather-all, so a renderer gap can
// cost performance but never correctness.
func (c *Coordinator) buildPlan(st *sqlish.Statement, norm string, info *sqlish.DistInfo) (*distPlan, error) {
	snap := c.srv.Catalog().Snapshot()
	prep, err := st.Prepare(snap, c.flags)
	if err != nil {
		// The statement does not analyze against the schemas; surface the
		// same structured error single-node planning would.
		return nil, err
	}
	cols, types := server.SchemaColumns(prep)
	pl := &distPlan{tables: info.Tables, sch: prep.Schema(), cols: cols, types: types}

	if len(c.topo.Workers) == 1 && !info.ExplainAnalyze {
		// One worker holds every shard: any statement runs there verbatim.
		pl.strategy = stratScatter
		pl.verbatim = true
		pl.workerSQL = norm
		return pl, nil
	}

	gather := func() (*distPlan, error) {
		pl.strategy = stratGatherAll
		pl.repart = nil
		return pl, nil
	}
	shape := info.Shape
	if shape == nil || !shape.Colocatable || info.ExplainAnalyze {
		return gather()
	}

	parts := c.partsSnapshot()
	repart := map[string]string{}
	eff := map[string]string{}
	for _, t := range info.Tables {
		eff[t] = parts[t]
	}
	for t, col := range shape.Require {
		if parts[t] != col {
			repart[t] = col
		}
		eff[t] = col
	}
	pl.repart = repart
	pinned := func(refs []sqlish.TableCol) bool {
		for _, r := range refs {
			if eff[r.Table] == r.Col {
				return true
			}
		}
		return false
	}
	ordered := info.OrderLimit

	tryScatter := func() bool {
		body, ps, rerr := st.RenderDistBody(nil)
		if rerr != nil {
			return false
		}
		if _, perr := sqlish.Prepare(body, snap, c.flags); perr != nil {
			return false
		}
		pl.strategy = stratScatter
		pl.workerSQL, pl.workerParams = body, ps
		return true
	}
	tryScatterFinal := func(redo bool) bool {
		body, ps, rerr := st.RenderDistBody(nil)
		if rerr != nil {
			return false
		}
		bprep, perr := sqlish.Prepare(body, snap, c.flags)
		if perr != nil {
			return false
		}
		finalSQL, fps, rerr := st.RenderDistFinal("__g", redo)
		if rerr != nil {
			return false
		}
		tmp := sqlish.MapCatalog{}
		tmp.Register("__g", relation.New(bprep.Schema()))
		if _, perr := sqlish.Prepare(finalSQL, tmp, c.flags); perr != nil {
			return false
		}
		pl.strategy = stratScatterFinal
		pl.redoDedup = redo
		pl.workerSQL, pl.workerParams = body, ps
		pl.finalSQL, pl.finalParams = finalSQL, fps
		pl.bodySch = bprep.Schema()
		return true
	}
	tryAggSplit := func() bool {
		agg, rerr := st.RenderDistAgg(nil, "__g")
		if rerr != nil {
			return false
		}
		wprep, perr := sqlish.Prepare(agg.Worker, snap, c.flags)
		if perr != nil {
			return false
		}
		tmp := sqlish.MapCatalog{}
		tmp.Register("__g", relation.New(wprep.Schema()))
		fprep, perr := sqlish.Prepare(agg.Final, tmp, c.flags)
		if perr != nil {
			return false
		}
		// The final stage must reproduce the original output shape exactly;
		// a naming or typing divergence means the split is unsafe.
		fcols, ftypes := server.SchemaColumns(fprep)
		if !equalStrings(fcols, pl.cols) || !equalStrings(ftypes, pl.types) {
			return false
		}
		pl.strategy = stratPartialAgg
		pl.workerSQL, pl.workerParams = agg.Worker, agg.WorkerParams
		pl.finalSQL, pl.finalParams = agg.Final, agg.FinalParams
		pl.bodySch = wprep.Schema()
		return true
	}

	switch {
	case shape.HasAgg || shape.HasGroupBy:
		// Groups pinned to one shard make any aggregation (HAVING included)
		// shard-exact; otherwise a partial/final split handles the plain
		// COUNT/SUM/MIN/MAX shapes.
		pinnedGroups := shape.HasGroupBy && shape.PlainGroup && len(shape.GroupRefs) > 0 && pinned(shape.GroupRefs)
		if pinnedGroups && !ordered && tryScatter() {
			return pl, nil
		}
		if pinnedGroups && ordered && tryScatterFinal(false) {
			return pl, nil
		}
		if shape.Dedup == "" && shape.CanAggSplit && tryAggSplit() {
			return pl, nil
		}
		return gather()
	case shape.Dedup != "":
		// Dedup groups pinned to one shard (some projected column is the
		// partition column) make shard-local DISTINCT/ABSORB exact and the
		// shard results disjoint; otherwise the final stage re-applies the
		// dedup over the union (absorption is compositional: a locally
		// absorbed tuple is absorbed by the same witness globally).
		if pinned(shape.ProjRefs) {
			if !ordered && tryScatter() {
				return pl, nil
			}
			if tryScatterFinal(false) {
				return pl, nil
			}
		}
		if tryScatterFinal(true) {
			return pl, nil
		}
		return gather()
	default:
		if !ordered && tryScatter() {
			return pl, nil
		}
		if ordered && tryScatterFinal(false) {
			return pl, nil
		}
		return gather()
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ------------------------------------------------------- execution

// gatherTable streams every worker's shard of name back into one
// relation (the stub's schema supplies the attribute kinds; tuples come
// off the wire).
func (c *Coordinator) gatherTable(ctx context.Context, name string, sch schema.Schema, batch int) (*relation.Relation, error) {
	gctx, cancel := context.WithCancel(ctx)
	streams := make([]*workerStream, len(c.topo.Workers))
	for i, w := range c.topo.Workers {
		streams[i] = c.client.startExec(gctx, w, "SELECT * FROM "+name, nil, batch)
	}
	tuples, err := drain(&mergeSource{cancel: cancel, streams: streams})
	if err != nil {
		return nil, err
	}
	// Built directly: gathered columns typed by the stub schema may carry
	// kinds Append would re-check against ω cells.
	return &relation.Relation{Schema: sch, Tuples: tuples}, nil
}

// unstageAll removes staged repartition temps from every worker,
// best-effort under its own deadline (the query is already answered or
// failed; a dead worker just keeps a temp until it restarts).
func (c *Coordinator) unstageAll(names []string) {
	if len(names) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, name := range names {
		for _, w := range c.topo.Workers {
			_, _ = c.client.ack(ctx, w, &wire.FragmentRequest{Op: wire.FragmentUnstage, Name: name})
		}
	}
}

// run executes a scatter-family plan: stage repartitioned tables if the
// plan needs them, fan the (possibly re-rendered) worker fragment out,
// then either stream the merged shards straight through (scatter) or
// gather and run the final stage locally.
func (c *Coordinator) run(ctx context.Context, st *sqlish.Statement, pl *distPlan, params []value.Value, batch int, hit bool) (res *server.DistResult, err error) {
	fanCtx, cancel := context.WithCancel(ctx)
	streaming := false
	defer func() {
		if !streaming {
			cancel()
		}
	}()

	// Coordinator-mediated shuffle: gather each mis-partitioned table,
	// re-hash it on the required column and stage the shards back under a
	// per-execution temp name the fragment substitutes for the original.
	subst := map[string]string{}
	var staged []string
	cleanup := func() { c.unstageAll(staged) }
	defer func() {
		if !streaming && err != nil {
			cleanup()
		}
	}()
	if len(pl.repart) > 0 {
		c.repartitions.Add(1)
		qid := c.qid.Add(1)
		snap := c.srv.Catalog().Snapshot()
		for _, t := range sortedKeys(pl.repart) {
			col := pl.repart[t]
			stub, found := snap.Lookup(t)
			if !found {
				return nil, fmt.Errorf("distsql: table %s vanished during planning", t)
			}
			rel, gerr := c.gatherTable(fanCtx, t, stub.Schema, batch)
			if gerr != nil {
				return nil, gerr
			}
			shards, perr := partitionRelation(rel, col, len(c.topo.Workers))
			if perr != nil {
				return nil, perr
			}
			name := fmt.Sprintf("__rp%d_%s", qid, t)
			for i, w := range c.topo.Workers {
				if serr := c.client.stage(fanCtx, w, name, shards[i]); serr != nil {
					return nil, serr
				}
			}
			staged = append(staged, name)
			subst[t] = name
		}
	}

	workerSQL, wpIdx := pl.workerSQL, pl.workerParams
	if len(subst) > 0 {
		// Staged names are per-execution, so substituted fragments are
		// re-rendered here; the cached render already validated the shape.
		if pl.strategy == stratPartialAgg {
			agg, rerr := st.RenderDistAgg(subst, "__g")
			if rerr != nil {
				return nil, rerr
			}
			workerSQL, wpIdx = agg.Worker, agg.WorkerParams
		} else {
			body, ps, rerr := st.RenderDistBody(subst)
			if rerr != nil {
				return nil, rerr
			}
			workerSQL, wpIdx = body, ps
		}
	}
	var wparams []any
	if pl.verbatim {
		wparams = cellValues(params)
	} else {
		mapped, merr := mapParams(wpIdx, params)
		if merr != nil {
			return nil, merr
		}
		wparams = cellValues(mapped)
	}

	streams := make([]*workerStream, len(c.topo.Workers))
	for i, w := range c.topo.Workers {
		streams[i] = c.client.startExec(fanCtx, w, workerSQL, wparams, batch)
	}
	merge := &mergeSource{cancel: cancel, streams: streams}

	if pl.strategy == stratScatter {
		c.scatters.Add(1)
		streaming = true
		return &server.DistResult{
			Cols: pl.cols, Types: pl.types, Schema: pl.sch, CacheHit: hit,
			Src: &cleanupSource{mergeSource: merge, cleanup: cleanup},
		}, nil
	}

	// Final-stage strategies buffer: gather the shard results into a temp
	// and run the rendered final statement over it locally.
	tuples, derr := drain(merge)
	cleanup()
	staged = nil
	if derr != nil {
		return nil, derr
	}
	tmp := sqlish.MapCatalog{}
	tmp.Register("__g", &relation.Relation{Schema: pl.bodySch, Tuples: tuples})
	fprep, perr := sqlish.Prepare(pl.finalSQL, tmp, c.flags)
	if perr != nil {
		return nil, fmt.Errorf("distsql: final stage: %v", perr)
	}
	fparams, merr := mapParams(pl.finalParams, params)
	if merr != nil {
		return nil, merr
	}
	out, xerr := c.collect(ctx, fprep, fparams)
	if xerr != nil {
		return nil, xerr
	}
	if pl.strategy == stratPartialAgg {
		c.partialAggs.Add(1)
	} else {
		c.scatterFinals.Add(1)
	}
	return &server.DistResult{
		Cols: pl.cols, Types: pl.types, Schema: fprep.Schema(), CacheHit: hit,
		Src: &relSource{tuples: out, batch: batchOr(batch)},
	}, nil
}

// runGatherAll reassembles every referenced table on the coordinator and
// runs the original statement locally — correctness for every shape the
// scatter strategies cannot prove.
func (c *Coordinator) runGatherAll(ctx context.Context, st *sqlish.Statement, pl *distPlan, params []value.Value, batch int, hit bool, explainAnalyze bool) (*server.DistResult, error) {
	c.gatherAlls.Add(1)
	snap := c.srv.Catalog().Snapshot()
	tmp := sqlish.MapCatalog{}
	for _, t := range pl.tables {
		stub, found := snap.Lookup(t)
		if !found {
			return nil, fmt.Errorf("distsql: table %s vanished during planning", t)
		}
		rel, err := c.gatherTable(ctx, t, stub.Schema, batch)
		if err != nil {
			return nil, err
		}
		tmp.Register(t, rel)
	}
	prep, err := st.Prepare(tmp, c.flags)
	if err != nil {
		return nil, err
	}
	if explainAnalyze {
		text, aerr := prep.ExplainAnalyzeContext(ctx, params...)
		if aerr != nil {
			return nil, aerr
		}
		return &server.DistResult{Plan: text, CacheHit: hit}, nil
	}
	out, err := c.collect(ctx, prep, params)
	if err != nil {
		return nil, err
	}
	return &server.DistResult{
		Cols: pl.cols, Types: pl.types, Schema: prep.Schema(), CacheHit: hit,
		Src: &relSource{tuples: out, batch: batchOr(batch)},
	}, nil
}

// collect drains one local execution into a tuple slice under ctx.
func (c *Coordinator) collect(ctx context.Context, prep *sqlish.Prepared, params []value.Value) ([]tuple.Tuple, error) {
	cur, err := prep.Stream(ctx, params...)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var out []tuple.Tuple
	for {
		b, nerr := cur.Next()
		if nerr != nil {
			return nil, nerr
		}
		if len(b) == 0 {
			return out, nil
		}
		// Batches are reused by the executor; the tuple structs copy
		// safely per the batch ownership contract.
		out = append(out, b...)
	}
}

// mapParams rebinds a fragment's gap-free $1..$N to the original
// statement's bound parameters.
func mapParams(idxs []int, params []value.Value) ([]value.Value, error) {
	out := make([]value.Value, len(idxs))
	for i, idx := range idxs {
		if idx < 1 || idx > len(params) {
			return nil, &sqlish.Error{
				Code: sqlish.ErrRequest,
				Msg:  fmt.Sprintf("statement references $%d but %d parameter(s) are bound", idx, len(params)),
				Pos:  -1,
			}
		}
		out[i] = params[idx-1]
	}
	return out, nil
}

// cellValues converts bound parameters to their wire cells.
func cellValues(vals []value.Value) []any {
	if len(vals) == 0 {
		return nil
	}
	out := make([]any, len(vals))
	for i, v := range vals {
		out[i] = wire.Cell(v)
	}
	return out
}

// cleanupSource runs a cleanup (unstaging repartition temps) when the
// streamed scatter result is closed.
type cleanupSource struct {
	*mergeSource
	cleanup func()
	once    sync.Once
}

func (s *cleanupSource) Close() error {
	err := s.mergeSource.Close()
	s.once.Do(s.cleanup)
	return err
}

// relSource serves an in-memory result as batches (the final-stage and
// gather-all strategies buffer at the coordinator by construction).
type relSource struct {
	tuples []tuple.Tuple
	batch  int
	pos    int
}

func (r *relSource) Next() ([]tuple.Tuple, error) {
	if r.pos >= len(r.tuples) {
		return nil, nil
	}
	end := r.pos + r.batch
	if end > len(r.tuples) {
		end = len(r.tuples)
	}
	b := r.tuples[r.pos:end]
	r.pos = end
	return b, nil
}

func (r *relSource) Close() error { return nil }

func batchOr(batch int) int {
	if batch > 0 {
		return batch
	}
	return 1024
}
