// Package distsql turns talignd into a sharded cluster: a coordinator
// hash-partitions tables by alignment key across N worker talignd
// nodes, rewrites each statement into per-shard SQL fragments, executes
// them over the wire-level fragment protocol (POST /fragment, the same
// NDJSON frames as /query/stream), and merges the worker streams back
// into the ordinary client protocol — clients cannot tell a coordinator
// from a single node.
//
// The planner picks the cheapest correct strategy per statement:
//
//   - scatter: the FROM tree is colocated under the current partitioning
//     (every join/ALIGN/NORMALIZE boundary is bridged by an
//     equi-condition on the partition columns), so workers run the
//     statement verbatim and the coordinator concatenates the streams.
//   - scatter+final: scatter, then a coordinator-local final stage over
//     the gathered rows for ORDER BY/LIMIT or a global DISTINCT/ABSORB
//     pass when dedup groups are not pinned to one shard.
//   - partial aggregate: workers compute per-shard COUNT/SUM/MIN/MAX
//     partials, the coordinator re-aggregates (COUNT→SUM and friends)
//     and reapplies HAVING/ORDER BY/LIMIT.
//   - repartition: a table whose required alignment key differs from its
//     current partition column is gathered, re-hashed on the required
//     key and staged back to the workers under a temporary name
//     (coordinator-mediated shuffle), then the query scatters.
//   - gather-all: the universal fallback (WITH, set operations,
//     subqueries, AVG, non-colocatable joins) — shards are gathered and
//     the original statement runs on the coordinator.
//
// Correctness leans on the paper's key property: temporal alignment
// group construction only ever combines tuples that agree on the
// alignment key, so hash partitioning by that key makes shard-local
// ALIGN/NORMALIZE exact. Every strategy is validated against the
// single-node engine by the differential tests in this package.
package distsql

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"
)

// Worker is one worker node in the static cluster topology.
type Worker struct {
	// Name identifies the worker in errors and metrics (w0, w1, ...).
	Name string `json:"name"`
	// URL is the worker's base HTTP URL.
	URL string `json:"url"`
}

// Topology is the static worker set a coordinator fans out to.
type Topology struct {
	// Workers lists the worker nodes; shard i of every table lives on
	// Workers[i].
	Workers []Worker
}

// Version fingerprints the worker set; it participates in the
// distributed-plan cache key so cached plans die with topology changes
// (the distributed mirror of the catalog's statsVersion pattern).
func (t Topology) Version() string {
	h := fnv.New64a()
	for _, w := range t.Workers {
		h.Write([]byte(w.Name))
		h.Write([]byte{0})
		h.Write([]byte(w.URL))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%d-%x", len(t.Workers), h.Sum64())
}

// ParseWorkers builds a topology from the -worker flag's comma-separated
// host:port list; workers are named w0, w1, ... in list order.
func ParseWorkers(list string) (Topology, error) {
	var t Topology
	for i, hp := range strings.Split(list, ",") {
		hp = strings.TrimSpace(hp)
		if hp == "" {
			continue
		}
		url := hp
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		t.Workers = append(t.Workers, Worker{Name: fmt.Sprintf("w%d", i), URL: strings.TrimRight(url, "/")})
	}
	if len(t.Workers) == 0 {
		return t, fmt.Errorf("distsql: no workers in %q", list)
	}
	return t, nil
}

// Manifest is the cluster manifest file: the worker set plus optional
// per-table partition-column overrides (tables default to their first
// column).
type Manifest struct {
	Workers   []Worker          `json:"workers"`
	Partition map[string]string `json:"partition,omitempty"`
}

// LoadManifest reads a JSON cluster manifest.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("distsql: manifest: %v", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("distsql: manifest %s: %v", path, err)
	}
	if len(m.Workers) == 0 {
		return nil, fmt.Errorf("distsql: manifest %s: no workers", path)
	}
	for i := range m.Workers {
		if m.Workers[i].Name == "" {
			m.Workers[i].Name = fmt.Sprintf("w%d", i)
		}
		m.Workers[i].URL = strings.TrimRight(m.Workers[i].URL, "/")
	}
	part := map[string]string{}
	for t, c := range m.Partition {
		part[strings.ToLower(t)] = strings.ToLower(c)
	}
	m.Partition = part
	return &m, nil
}

// sortedKeys returns a map's keys in deterministic order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
