package distsql

import (
	"fmt"
	"hash/fnv"
	"strings"

	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// shardOf maps one partition-key value to a worker index: FNV-1a over
// the value's order-preserving key encoding (ω included), modulo the
// worker count. Every node that partitions — the coordinator loading a
// table, the repartitioning shuffle — must use exactly this function, or
// colocation silently breaks.
func shardOf(v value.Value, n int) int {
	h := fnv.New64a()
	h.Write(v.AppendKey(nil))
	return int(h.Sum64() % uint64(n))
}

// partitionRelation splits rel into n shards by hashing column col.
// Value-equivalent tuples agree on every attribute, so they always land
// on the same shard — the property shard-local dedup and alignment rely
// on.
func partitionRelation(rel *relation.Relation, col string, n int) ([]*relation.Relation, error) {
	idx := -1
	for i, at := range rel.Schema.Attrs {
		if at.Name == strings.ToLower(col) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("distsql: partition column %q not in schema", col)
	}
	shards := make([]*relation.Relation, n)
	for i := range shards {
		shards[i] = relation.New(rel.Schema)
	}
	for _, t := range rel.Tuples {
		shards[shardOf(t.Vals[idx], n)].Tuples = append(shards[shardOf(t.Vals[idx], n)].Tuples, t)
	}
	return shards, nil
}

// partitionTuples is partitionRelation over bare tuples with a known
// column index (the repartitioning shuffle's inner loop).
func partitionTuples(tuples []tuple.Tuple, idx, n int) [][]tuple.Tuple {
	shards := make([][]tuple.Tuple, n)
	for _, t := range tuples {
		s := shardOf(t.Vals[idx], n)
		shards[s] = append(shards[s], t)
	}
	return shards
}

// kindOf maps a wire type name back to a value kind ("null" and unknown
// names map to KindNull, which only ever describes all-ω columns).
func kindOf(name string) value.Kind {
	switch name {
	case "bool":
		return value.KindBool
	case "int":
		return value.KindInt
	case "float":
		return value.KindFloat
	case "string":
		return value.KindString
	case "period", "interval":
		return value.KindInterval
	}
	return value.KindNull
}

// schemaOf rebuilds a visible-attribute schema from wire columns/types
// (the trailing ts/te pair already stripped by the caller).
func schemaOf(cols, types []string) (schema.Schema, error) {
	attrs := make([]schema.Attr, len(cols))
	for i, c := range cols {
		typ := ""
		if i < len(types) {
			typ = types[i]
		}
		attrs[i] = schema.Attr{Name: c, Type: kindOf(typ)}
	}
	return schema.New(attrs...)
}
