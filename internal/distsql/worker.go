package distsql

import (
	"encoding/json"
	"fmt"
	"net/http"

	"talign/internal/faultinject"
	"talign/internal/relation"
	"talign/internal/server"
	"talign/internal/sqlish"
	"talign/internal/value"
	"talign/internal/wire"
)

// Handler wraps a worker's server with the fragment endpoint: the full
// single-node HTTP surface stays mounted (health probes, /metrics,
// direct debugging queries), and POST /fragment adds the
// coordinator-facing operations — exec (a streamed shard-local query,
// answered in the exact NDJSON frames of /query/stream), stage/unstage
// (shard registration for CREATE and the repartitioning shuffle) and
// analyze (statistics broadcast).
func Handler(srv *server.Server) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("POST /fragment", func(w http.ResponseWriter, r *http.Request) {
		var req wire.FragmentRequest
		dec := json.NewDecoder(r.Body)
		dec.UseNumber()
		if err := dec.Decode(&req); err != nil {
			server.HTTPError(w, fmt.Errorf("distsql: bad fragment body: %v", err))
			return
		}
		if err := faultinject.Hit("distsql.fragment"); err != nil {
			server.HTTPError(w, err)
			return
		}
		switch req.Op {
		case wire.FragmentExec:
			params := make([]value.Value, len(req.Params))
			for i, p := range req.Params {
				v, err := wire.Value(p)
				if err != nil {
					server.HTTPError(w, fmt.Errorf("distsql: fragment param $%d: %v", i+1, err))
					return
				}
				params[i] = v
			}
			rs, err := srv.StreamBatch(r.Context(), "", "", req.SQL, params, req.Batch)
			if err != nil {
				server.HTTPError(w, err)
				return
			}
			defer rs.Close()
			server.WriteFrameStream(w, rs)
		case wire.FragmentStage:
			sch, err := schemaOf(req.Columns, req.Types)
			if err != nil {
				server.HTTPError(w, fmt.Errorf("distsql: stage %s: %v", req.Name, err))
				return
			}
			tuples, err := decodeRows(req.Rows, req.Types)
			if err != nil {
				server.HTTPError(w, fmt.Errorf("distsql: stage %s: %v", req.Name, err))
				return
			}
			// Built directly rather than via Append: a staged shard may carry
			// all-ω columns typed KindNull by the coordinator's local plan,
			// and Append's kind check would reject the non-null originals.
			srv.Catalog().Register(req.Name, &relation.Relation{Schema: sch, Tuples: tuples})
			writeAck(w, wire.FragmentAck{OK: true, Rows: int64(len(tuples))})
		case wire.FragmentUnstage:
			// Idempotent: unstaging an absent table is a success, so the
			// coordinator's best-effort cleanup can retry blindly.
			srv.Catalog().Drop(req.Name)
			writeAck(w, wire.FragmentAck{OK: true})
		case wire.FragmentAnalyze:
			if req.Name == "" {
				n := srv.AnalyzeAll()
				writeAck(w, wire.FragmentAck{OK: true, Rows: int64(n)})
				return
			}
			t, err := srv.Analyze(req.Name)
			if err != nil {
				server.HTTPError(w, err)
				return
			}
			writeAck(w, wire.FragmentAck{OK: true, Rows: int64(t.Rows)})
		default:
			server.HTTPError(w, &sqlish.Error{
				Code: sqlish.ErrRequest,
				Msg:  fmt.Sprintf("distsql: unknown fragment op %q", req.Op),
				Pos:  -1,
			})
		}
	})
	return mux
}

func writeAck(w http.ResponseWriter, ack wire.FragmentAck) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ack)
}
