package distsql

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"talign/internal/faultinject"
	"talign/internal/plan"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/server"
	"talign/internal/sqlish"
	"talign/internal/value"
)

// cluster is an in-process distributed deployment: n worker servers
// behind httptest listeners and a coordinator attached to its own server.
type cluster struct {
	coord   *Coordinator
	csrv    *server.Server
	wsrvs   []*server.Server
	workers []*httptest.Server
}

func newCluster(t *testing.T, n int, partition map[string]string) *cluster {
	t.Helper()
	flags := plan.DefaultFlags()
	cl := &cluster{}
	var topo Topology
	for i := 0; i < n; i++ {
		wsrv := server.New(server.Config{Flags: flags, MaxDOP: 16})
		hs := httptest.NewServer(Handler(wsrv))
		t.Cleanup(hs.Close)
		cl.wsrvs = append(cl.wsrvs, wsrv)
		cl.workers = append(cl.workers, hs)
		topo.Workers = append(topo.Workers, Worker{Name: fmt.Sprintf("w%d", i), URL: hs.URL})
	}
	cl.csrv = server.New(server.Config{Flags: flags, MaxDOP: 16})
	cl.coord = New(cl.csrv, topo, flags, partition)
	cl.coord.Attach()
	return cl
}

func (cl *cluster) load(t *testing.T, rels map[string]*relation.Relation) {
	t.Helper()
	for name, rel := range rels {
		if err := cl.coord.DistributeTable(context.Background(), name, rel); err != nil {
			t.Fatalf("DistributeTable(%s): %v", name, err)
		}
	}
	if err := cl.coord.AnalyzeWorkers(context.Background()); err != nil {
		t.Fatalf("AnalyzeWorkers: %v", err)
	}
}

// singleNode is the reference: one server holding the full relations.
func singleNode(t *testing.T, rels map[string]*relation.Relation) *server.Server {
	t.Helper()
	s := server.New(server.Config{Flags: plan.DefaultFlags(), MaxDOP: 16})
	for name, rel := range rels {
		s.Catalog().Register(name, rel)
	}
	s.AnalyzeAll()
	return s
}

// testRels builds the r/s/u relations of one differential seed.
func testRels(seed int) map[string]*relation.Relation {
	attrs := []schema.Attr{{Name: "a", Type: value.KindInt}, {Name: "b", Type: value.KindInt}}
	cfg := randrel.DefaultConfig(attrs...)
	cfg.MaxTuples = 12
	rng := rand.New(rand.NewSource(int64(1000 + seed)))
	return map[string]*relation.Relation{
		"r": randrel.Generate(rng, cfg),
		"s": randrel.Generate(rng, cfg),
		"u": randrel.Generate(rng, cfg),
	}
}

// canonKeys renders a result as its sorted per-row key encodings, so two
// results compare byte-equal exactly when every row (values and valid
// time) is identical.
func canonKeys(rel *relation.Relation) [][]byte {
	keys := make([][]byte, rel.Len())
	for i := range rel.Tuples {
		keys[i] = rel.Tuples[i].AppendKey(nil)
	}
	sort.Slice(keys, func(a, b int) bool { return bytes.Compare(keys[a], keys[b]) < 0 })
	return keys
}

func assertSameRows(t *testing.T, tag, q string, got, want *relation.Relation) {
	t.Helper()
	gk, wk := canonKeys(got), canonKeys(want)
	if len(gk) != len(wk) {
		t.Fatalf("%s: row count diverged on %q: %d vs %d", tag, q, len(gk), len(wk))
	}
	for i := range gk {
		if !bytes.Equal(gk[i], wk[i]) {
			t.Fatalf("%s: diverged on %q at sorted row %d:\n% x\nvs\n% x", tag, q, i, gk[i], wk[i])
		}
	}
}

// diffQuery is one differential shape; params may be nil.
type diffQuery struct {
	sql    string
	params []value.Value
}

// distDiffQueries is the single-node optimizer corpus (opt_diff_test.go)
// plus distributed-specific shapes: repartition-requiring joins and
// temporal operators, the partial/final aggregate split, global
// aggregates, ORDER BY + LIMIT finals and bound parameters.
var distDiffQueries = []diffQuery{
	{sql: "SELECT a, b FROM r WHERE a = 1 AND b >= 1"},
	{sql: "SELECT a, b, Ts, Te FROM r WHERE a = 1 AND 1 = 1"},
	{sql: "SELECT r.a, s.b FROM r JOIN s ON r.a = s.a WHERE s.b >= 1 AND r.b <= 2"},
	{sql: "SELECT r.a, s.b FROM r LEFT JOIN s ON r.a = s.a WHERE r.b >= 1"},
	{sql: "SELECT r.a, s.b FROM r RIGHT JOIN s ON r.a = s.a AND r.b >= 1 WHERE s.b <= 2"},
	{sql: "SELECT r.a ra, s.a sa, u.b ub FROM r JOIN s ON r.a = s.a JOIN u ON s.b = u.b WHERE u.a >= 1"},
	{sql: "SELECT r.b, s.b, u.b FROM r, s, u WHERE r.a = s.a AND s.b = u.b AND u.a = 1"},
	{sql: "SELECT a, b, Ts, Te FROM (r ALIGN s ON r.a = s.a) x WHERE a >= 1"},
	{sql: "SELECT a, b, Ts, Te FROM (r NORMALIZE s USING (a)) x WHERE b = 2"},
	{sql: "SELECT a, COUNT(*) c FROM r WHERE b >= 0 GROUP BY a HAVING a >= 1"},
	{sql: "SELECT a, b FROM r WHERE a = 1 UNION SELECT a, b FROM s WHERE b = 1"},
	{sql: "SELECT DISTINCT a FROM r WHERE b = 0"},
	{sql: "SELECT ABSORB a, b, Ts, Te FROM r WHERE a >= 1"},
	{sql: "WITH w AS (SELECT a, b FROM r WHERE a >= 1) SELECT w1.a, w2.b FROM w w1 JOIN w w2 ON w1.a = w2.a"},
	{sql: "SELECT a, b FROM r WHERE a BETWEEN 0 AND 1 ORDER BY a, b"},
	// Distributed-specific shapes.
	{sql: "SELECT r.a, s.b FROM r JOIN s ON r.b = s.b WHERE r.a >= 0"},               // repartition: join key != partition column
	{sql: "SELECT a, b, Ts, Te FROM (r ALIGN s ON r.b = s.b) x"},                     // repartition under ALIGN
	{sql: "SELECT a, b, Ts, Te FROM (r NORMALIZE s USING (b)) x"},                    // repartition under NORMALIZE
	{sql: "SELECT b, COUNT(*) c, SUM(a) sa, MIN(a) mn, MAX(a) mx FROM r GROUP BY b"}, // partial/final agg split
	{sql: "SELECT COUNT(*) c FROM r WHERE b >= 1"},                                   // global aggregate
	{sql: "SELECT a, COUNT(*) c FROM r GROUP BY a ORDER BY a"},                       // pinned groups + ordered final
	{sql: "SELECT a, b FROM r ORDER BY a, b LIMIT 100"},                              // ORDER BY + LIMIT final (limit > |r|)
	{sql: "SELECT DISTINCT b FROM r"},                                                // dedup off the partition column
	{sql: "SELECT a, b FROM r WHERE a >= $1 AND b <= $2", params: []value.Value{value.NewInt(0), value.NewInt(2)}},
	{sql: "SELECT r.a, s.b FROM r JOIN s ON r.a = s.a WHERE s.b >= $1", params: []value.Value{value.NewInt(1)}},
}

// TestDistributedDifferential is the acceptance differential: for random
// relations, every corpus shape must return the exact same row set
// (values and valid time, byte-compared) through a 1-, 2- and 3-worker
// coordinator as on a single node — buffered and streamed.
func TestDistributedDifferential(t *testing.T) {
	for _, workers := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for seed := 0; seed < 4; seed++ {
				rels := testRels(seed)
				single := singleNode(t, rels)
				cl := newCluster(t, workers, nil)
				cl.load(t, rels)
				for _, q := range distDiffQueries {
					want, werr := single.QueryContext(context.Background(), "", "", q.sql, q.params)
					got, gerr := cl.csrv.QueryContext(context.Background(), "", "", q.sql, q.params)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("seed %d: error parity diverged on %q: single=%v dist=%v", seed, q.sql, werr, gerr)
					}
					if werr != nil {
						continue
					}
					assertSameRows(t, fmt.Sprintf("seed %d buffered", seed), q.sql, got.Rel, want.Rel)

					// Streamed must match buffered byte-for-byte too.
					rs, serr := cl.csrv.StreamBatch(context.Background(), "", "", q.sql, q.params, 3)
					if serr != nil {
						t.Fatalf("seed %d: streamed %q: %v", seed, q.sql, serr)
					}
					streamed := relation.New(want.Rel.Schema)
					for {
						b, nerr := rs.Next()
						if nerr != nil {
							t.Fatalf("seed %d: streamed %q: %v", seed, q.sql, nerr)
						}
						if len(b) == 0 {
							break
						}
						streamed.Tuples = append(streamed.Tuples, b...)
					}
					rs.Close()
					assertSameRows(t, fmt.Sprintf("seed %d streamed", seed), q.sql, streamed, want.Rel)
				}
			}
		})
	}
}

// TestDistributedStrategies pins the planner's strategy choices via
// EXPLAIN: colocated scatters stay scatters, mismatched join keys
// repartition, plain aggregates split, and WITH falls back to gather.
func TestDistributedStrategies(t *testing.T) {
	rels := testRels(1)
	cl := newCluster(t, 2, nil)
	cl.load(t, rels)
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT a, b FROM r WHERE a = 1", "Distributed: scatter over"},
		{"SELECT r.a, s.b FROM r JOIN s ON r.a = s.a", "Distributed: scatter over"},
		{"SELECT r.a, s.b FROM r JOIN s ON r.b = s.b", "repartition:"},
		{"SELECT b, COUNT(*) c FROM r GROUP BY b", "Distributed: partial-aggregate"},
		{"SELECT a, COUNT(*) c FROM r GROUP BY a", "Distributed: scatter over"},
		{"SELECT a, b, Ts, Te FROM (r ALIGN s ON r.a = s.a) x", "Distributed: scatter over"},
		{"SELECT a, b, Ts, Te FROM (r NORMALIZE s USING (a)) x", "Distributed: scatter over"},
		{"SELECT a, b FROM r ORDER BY a, b LIMIT 3", "Distributed: scatter+final"},
		{"WITH w AS (SELECT a FROM r) SELECT a FROM w", "Distributed: gather-all"},
	}
	for _, tc := range cases {
		res, err := cl.csrv.QueryContext(context.Background(), "", "", "EXPLAIN "+tc.sql, nil)
		if err != nil {
			t.Fatalf("EXPLAIN %s: %v", tc.sql, err)
		}
		if !strings.Contains(res.Plan, tc.want) {
			t.Errorf("EXPLAIN %s:\n%s\nwant substring %q", tc.sql, res.Plan, tc.want)
		}
	}
}

// TestPlanKeyInvalidation is the plan-cache satellite regression: the
// distributed fingerprint must change whenever the worker topology or the
// shard map changes, and repeated statements must hit the cache between
// those events.
func TestPlanKeyInvalidation(t *testing.T) {
	rels := testRels(2)
	cl2 := newCluster(t, 2, nil)
	cl2.load(t, rels)
	cl3 := newCluster(t, 3, nil)
	cl3.load(t, rels)

	const norm = "select a, b from r"
	if cl2.coord.PlanKey(norm) == cl3.coord.PlanKey(norm) {
		t.Fatal("PlanKey identical across different topologies")
	}

	q := "SELECT a, b FROM r"
	res, err := cl2.csrv.QueryContext(context.Background(), "", "", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("first distributed execution reported a cache hit")
	}
	res, err = cl2.csrv.QueryContext(context.Background(), "", "", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("second distributed execution missed the cache")
	}

	// A shard-map change (new table distributed) must invalidate.
	before := cl2.coord.PlanKey(norm)
	extra := testRels(3)["u"]
	if err := cl2.coord.DistributeTable(context.Background(), "extra", extra); err != nil {
		t.Fatal(err)
	}
	if cl2.coord.PlanKey(norm) == before {
		t.Fatal("PlanKey unchanged after a shard-map change")
	}
	res, err = cl2.csrv.QueryContext(context.Background(), "", "", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("distributed plan cache served a stale entry across a shard-map change")
	}
}

// TestDistributedDDL proves ANALYZE and DROP broadcast through the
// coordinator with the single-node acknowledgement formats, and that a
// dropped table stops being distributable.
func TestDistributedDDL(t *testing.T) {
	rels := testRels(0)
	cl := newCluster(t, 2, nil)
	cl.load(t, rels)

	res, err := cl.csrv.QueryContext(context.Background(), "", "", "ANALYZE r", nil)
	if err != nil {
		t.Fatalf("ANALYZE: %v", err)
	}
	want := fmt.Sprintf("ANALYZE r: %d rows, 2 columns", rels["r"].Len())
	if res.Plan != want {
		t.Fatalf("ANALYZE ack = %q, want %q", res.Plan, want)
	}

	res, err = cl.csrv.QueryContext(context.Background(), "", "", "DROP TABLE u", nil)
	if err != nil {
		t.Fatalf("DROP: %v", err)
	}
	if res.Plan != "DROP TABLE u" {
		t.Fatalf("DROP ack = %q", res.Plan)
	}
	for i, w := range cl.wsrvs {
		if _, ok := w.Catalog().Snapshot().Lookup("u"); ok {
			t.Fatalf("worker %d still holds a shard of the dropped table", i)
		}
	}
	if _, err := cl.csrv.QueryContext(context.Background(), "", "", "SELECT a FROM u", nil); err == nil {
		t.Fatal("query over a dropped table succeeded")
	}
}

// faultArm arms a fault site for the test and resets the layer on exit.
func faultArm(t *testing.T, site string, after int, repeat bool) {
	t.Helper()
	faultinject.Arm(site, faultinject.Fault{Kind: faultinject.KindError, After: after, Repeat: repeat})
	t.Cleanup(faultinject.Reset)
}

// waitFor polls cond until timeout.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWorkerUnreachable is the degradation satellite: with one worker
// gone before dispatch, a query fails fast with the structured
// "unavailable" error naming the dead worker, the retry and unreachable
// counters advance, and the coordinator keeps serving.
func TestWorkerUnreachable(t *testing.T) {
	rels := testRels(0)
	cl := newCluster(t, 2, nil)
	cl.load(t, rels)
	cl.coord.client.retries = 0 // keep the failure fast; retry accounting is covered below

	cl.workers[1].Close()
	_, err := cl.csrv.QueryContext(context.Background(), "", "", "SELECT a, b FROM r", nil)
	var se *sqlish.Error
	if !errors.As(err, &se) || se.Code != sqlish.ErrUnavailable {
		t.Fatalf("got %v, want structured %q error", err, sqlish.ErrUnavailable)
	}
	if !strings.Contains(se.Msg, "w1") {
		t.Fatalf("unavailable error does not name the dead worker: %q", se.Msg)
	}
	if cl.coord.client.unreachable.Load() == 0 {
		t.Fatal("talignd_worker_unreachable_total did not advance")
	}
	waitFor(t, 5*time.Second, "coordinator gate to drain", func() bool {
		return cl.csrv.GateStats().InUse == 0
	})
}

// TestDispatchRetry proves a transient dispatch failure is retried with
// backoff and succeeds, advancing talignd_fragment_retries_total without
// touching the unreachable counter.
func TestDispatchRetry(t *testing.T) {
	rels := testRels(0)
	cl := newCluster(t, 2, nil)
	cl.load(t, rels)

	faultArm(t, "distsql.dispatch", 1, false)
	res, err := cl.csrv.QueryContext(context.Background(), "", "", "SELECT a, b FROM r", nil)
	if err != nil {
		t.Fatalf("query with one transient dispatch fault: %v", err)
	}
	if res.Rel == nil {
		t.Fatal("no rows returned")
	}
	if cl.coord.client.retried.Load() == 0 {
		t.Fatal("talignd_fragment_retries_total did not advance")
	}
	if got := cl.coord.client.unreachable.Load(); got != 0 {
		t.Fatalf("unreachable = %d after a recovered retry, want 0", got)
	}
}

// TestChaosWorkerKilledMidStream is the chaos satellite (run with
// -race): a worker killed while its shard stream is in flight must
// surface as a structured "unavailable" error naming the worker, leak no
// goroutines, and leave the coordinator's admission gate drained.
func TestChaosWorkerKilledMidStream(t *testing.T) {
	attrs := []schema.Attr{{Name: "a", Type: value.KindInt}, {Name: "b", Type: value.KindInt}}
	cfg := randrel.DefaultConfig(attrs...)
	cfg.MaxTuples = 4000
	rng := rand.New(rand.NewSource(7))
	rels := map[string]*relation.Relation{"r": randrel.Generate(rng, cfg)}

	cl := newCluster(t, 2, nil)
	cl.load(t, rels)
	cl.coord.client.retries = 0

	// Warm the connection pool, then baseline: the cluster's own listener
	// and keep-alive goroutines must not count as query leaks.
	if _, err := cl.csrv.QueryContext(context.Background(), "", "", "SELECT a FROM r WHERE a = 0", nil); err != nil {
		t.Fatalf("warm-up query: %v", err)
	}
	baseline := runtime.NumGoroutine()

	// A worker panic mid-stream aborts its chunked response without a
	// terminal frame — byte-for-byte what a kill -9 mid-query looks like
	// to the coordinator. After=3 lets row frames flush first.
	faultinject.Arm("server.stream.rows", faultinject.Fault{Kind: faultinject.KindPanic, After: 3})
	t.Cleanup(faultinject.Reset)

	rs, err := cl.csrv.StreamBatch(context.Background(), "", "", "SELECT a, b, Ts, Te FROM r", nil, 8)
	if err != nil {
		t.Fatalf("StreamBatch: %v", err)
	}
	if _, err := rs.Next(); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	for {
		b, nerr := rs.Next()
		if nerr != nil {
			var se *sqlish.Error
			if !errors.As(nerr, &se) || se.Code != sqlish.ErrUnavailable {
				t.Fatalf("mid-stream kill: got %v, want structured %q error", nerr, sqlish.ErrUnavailable)
			}
			if !strings.Contains(se.Msg, "worker w") {
				t.Fatalf("mid-stream kill error does not name a worker: %q", se.Msg)
			}
			break
		}
		if len(b) == 0 {
			t.Fatal("stream completed cleanly despite a worker dying mid-query")
		}
	}
	rs.Close()

	waitFor(t, 5*time.Second, "coordinator gate to drain", func() bool {
		return cl.csrv.GateStats().InUse == 0
	})
	waitFor(t, 5*time.Second, "goroutines to return to baseline", func() bool {
		return runtime.NumGoroutine() <= baseline+4
	})
}

// TestWorkerFaultInjection arms the worker-side fragment site: the
// injected error must cross the wire as a structured error, not a
// transport failure.
func TestWorkerFaultInjection(t *testing.T) {
	rels := testRels(0)
	cl := newCluster(t, 2, nil)
	cl.load(t, rels)
	cl.coord.client.retries = 0

	faultArm(t, "distsql.fragment", 0, true)
	_, err := cl.csrv.QueryContext(context.Background(), "", "", "SELECT a, b FROM r", nil)
	if err == nil {
		t.Fatal("query succeeded with the fragment endpoint faulted")
	}
	waitFor(t, 5*time.Second, "coordinator gate to drain", func() bool {
		return cl.csrv.GateStats().InUse == 0
	})
}

// TestRepartitionCleanup proves repartition temps are unstaged from every
// worker after the query answers.
func TestRepartitionCleanup(t *testing.T) {
	rels := testRels(0)
	cl := newCluster(t, 2, nil)
	cl.load(t, rels)

	q := "SELECT r.a, s.b FROM r JOIN s ON r.b = s.b"
	if _, err := cl.csrv.QueryContext(context.Background(), "", "", q, nil); err != nil {
		t.Fatalf("repartition query: %v", err)
	}
	if cl.coord.repartitions.Load() == 0 {
		t.Fatal("query did not take the repartition path")
	}
	waitFor(t, 5*time.Second, "repartition temps to unstage", func() bool {
		for _, w := range cl.wsrvs {
			snap := w.Catalog().Snapshot()
			for _, name := range snap.Names() {
				if strings.HasPrefix(name, "__rp") {
					return false
				}
			}
		}
		return true
	})
}
