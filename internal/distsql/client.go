package distsql

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"talign/internal/backoff"
	"talign/internal/faultinject"
	"talign/internal/interval"
	"talign/internal/relation"
	"talign/internal/sqlish"
	"talign/internal/tuple"
	"talign/internal/value"
	"talign/internal/wire"
)

// fragmentRetries is how many times an idempotent fragment dispatch is
// re-issued beyond the first attempt. Every fragment operation is
// idempotent — exec is read-only and retried only before any frame is
// consumed, stage/unstage are last-write-wins registrations — so a
// retry can at worst repeat work, never duplicate an effect.
const fragmentRetries = 2

// workerClient issues fragment operations against the worker fleet with
// the shared backoff curve, classifying exhausted retries as structured
// "unavailable" errors naming the worker.
type workerClient struct {
	http    *http.Client
	retries int

	fragments   atomic.Uint64 // fragment operations dispatched
	retried     atomic.Uint64 // dispatch retries after transport failures/503s
	unreachable atomic.Uint64 // workers given up on after retry exhaustion
	rowsIn      atomic.Uint64 // rows decoded off worker streams
	bytesIn     atomic.Uint64 // response-body bytes read off worker streams
	rowsOut     atomic.Uint64 // rows staged out to workers
	bytesOut    atomic.Uint64 // request-body bytes staged out to workers
}

func newWorkerClient() *workerClient {
	dialer := &net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}
	return &workerClient{
		http: &http.Client{Transport: &http.Transport{
			DialContext:           dialer.DialContext,
			TLSHandshakeTimeout:   5 * time.Second,
			ResponseHeaderTimeout: 60 * time.Second,
			MaxIdleConnsPerHost:   16,
		}},
		retries: fragmentRetries,
	}
}

// unavailable wraps a dispatch failure as the structured error the
// satellite contract requires: code "unavailable", naming the worker.
func unavailable(w Worker, err error) error {
	return &sqlish.Error{
		Code: sqlish.ErrUnavailable,
		Msg:  fmt.Sprintf("worker %s (%s) unreachable: %v", w.Name, w.URL, err),
		Pos:  -1,
	}
}

// post sends one fragment request, retrying transport failures and 503s
// (a draining or restarting worker) with exponential backoff. The body
// is re-marshaled per attempt; responses with structured error bodies
// are decoded and returned as their coded errors.
func (c *workerClient) post(ctx context.Context, w Worker, req *wire.FragmentRequest) (*http.Response, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	c.fragments.Add(1)
	c.bytesOut.Add(uint64(len(data)))
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := faultinject.Hit("distsql.dispatch"); err != nil {
			lastErr = err
		} else {
			hreq, herr := http.NewRequestWithContext(ctx, http.MethodPost, w.URL+"/fragment", bytes.NewReader(data))
			if herr != nil {
				return nil, herr
			}
			hreq.Header.Set("Content-Type", "application/json")
			resp, rerr := c.http.Do(hreq)
			if rerr == nil && resp.StatusCode == http.StatusOK {
				return resp, nil
			}
			if rerr != nil {
				lastErr = rerr
			} else {
				lastErr = decodeHTTPError(resp)
				if resp.StatusCode != http.StatusServiceUnavailable {
					// A structured non-503 failure (parse error, resource abort)
					// is the query's real outcome, not a reachability problem.
					return nil, lastErr
				}
			}
		}
		if attempt >= c.retries || ctx.Err() != nil {
			c.unreachable.Add(1)
			return nil, unavailable(w, lastErr)
		}
		c.retried.Add(1)
		select {
		case <-time.After(backoff.Default(attempt)):
		case <-ctx.Done():
			c.unreachable.Add(1)
			return nil, unavailable(w, lastErr)
		}
	}
}

// decodeHTTPError converts a non-200 fragment response into its
// structured error (or a plain description when the body is not ours).
func decodeHTTPError(resp *http.Response) error {
	defer resp.Body.Close()
	var out struct {
		Error *wire.Error `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err == nil && out.Error != nil {
		return &sqlish.Error{Code: out.Error.Code, Msg: out.Error.Message, Pos: -1, Line: out.Error.Line, Col: out.Error.Col}
	}
	return fmt.Errorf("worker returned %s", resp.Status)
}

// ack performs one non-exec fragment operation (stage, unstage,
// analyze) and decodes its acknowledgement.
func (c *workerClient) ack(ctx context.Context, w Worker, req *wire.FragmentRequest) (wire.FragmentAck, error) {
	resp, err := c.post(ctx, w, req)
	if err != nil {
		return wire.FragmentAck{}, err
	}
	defer resp.Body.Close()
	var out wire.FragmentAck
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("distsql: bad %s ack from %s: %v", req.Op, w.Name, err)
	}
	return out, nil
}

// stage registers rel under name on worker w.
func (c *workerClient) stage(ctx context.Context, w Worker, name string, rel *relation.Relation) error {
	cols := make([]string, 0, rel.Schema.Len())
	types := make([]string, 0, rel.Schema.Len())
	for _, at := range rel.Schema.Attrs {
		cols = append(cols, at.Name)
		types = append(types, at.Type.String())
	}
	rows := make([][]any, rel.Len())
	for i, t := range rel.Tuples {
		row := make([]any, 0, len(t.Vals)+2)
		for _, v := range t.Vals {
			row = append(row, wire.Cell(v))
		}
		row = append(row, t.T.Ts, t.T.Te)
		rows[i] = row
	}
	c.rowsOut.Add(uint64(len(rows)))
	_, err := c.ack(ctx, w, &wire.FragmentRequest{
		Op: wire.FragmentStage, Name: name, Columns: cols, Types: types, Rows: rows,
	})
	return err
}

// countingReader counts bytes read off a worker response body.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

// workerStream is one worker's in-flight exec fragment: a goroutine
// decodes its NDJSON frames into tuple batches on a bounded channel; err
// is set before the channel closes (read it only after the close).
type workerStream struct {
	worker Worker
	ch     chan []tuple.Tuple
	err    error
}

// startExec dispatches an exec fragment to w and streams its decoded
// batches. The stream ends with a closed channel; a truncated stream (a
// worker killed mid-query) surfaces as a structured "unavailable" error
// naming the worker.
func (c *workerClient) startExec(ctx context.Context, w Worker, sql string, params []any, batch int) *workerStream {
	ws := &workerStream{worker: w, ch: make(chan []tuple.Tuple, 4)}
	go func() {
		defer close(ws.ch)
		resp, err := c.post(ctx, w, &wire.FragmentRequest{Op: wire.FragmentExec, SQL: sql, Params: params, Batch: batch})
		if err != nil {
			ws.err = err
			return
		}
		defer resp.Body.Close()
		dec := json.NewDecoder(&countingReader{r: resp.Body, n: &c.bytesIn})
		dec.UseNumber()
		var types []string
		for {
			var f wire.Frame
			if err := dec.Decode(&f); err != nil {
				ws.err = &sqlish.Error{
					Code: sqlish.ErrUnavailable,
					Msg:  fmt.Sprintf("worker %s (%s): stream truncated: %v", w.Name, w.URL, err),
					Pos:  -1,
				}
				return
			}
			switch f.Frame {
			case wire.FrameSchema:
				types = f.Types
			case wire.FrameRows:
				batchTuples, derr := decodeRows(f.Rows, types)
				if derr != nil {
					ws.err = fmt.Errorf("distsql: worker %s: %v", w.Name, derr)
					return
				}
				c.rowsIn.Add(uint64(len(batchTuples)))
				select {
				case ws.ch <- batchTuples:
				case <-ctx.Done():
					ws.err = ctx.Err()
					return
				}
			case wire.FrameStatus:
				return
			case wire.FrameError:
				ws.err = &sqlish.Error{Code: f.Error.Code, Msg: fmt.Sprintf("worker %s: %s", w.Name, f.Error.Message), Pos: -1}
				return
			default:
				ws.err = fmt.Errorf("distsql: worker %s: unexpected %q frame", w.Name, f.Frame)
				return
			}
		}
	}()
	return ws
}

// decodeRows converts wire rows (visible cells then ts, te) back to
// tuples, steering cell decoding by the fragment's schema types.
func decodeRows(rows [][]any, types []string) ([]tuple.Tuple, error) {
	out := make([]tuple.Tuple, len(rows))
	for i, row := range rows {
		if len(row) < 2 {
			return nil, fmt.Errorf("short row (%d cells)", len(row))
		}
		vals := make([]value.Value, len(row)-2)
		for j := range vals {
			typ := ""
			if j < len(types) {
				typ = types[j]
			}
			v, err := wire.ValueAs(row[j], typ)
			if err != nil {
				return nil, fmt.Errorf("bad cell: %v", err)
			}
			vals[j] = v
		}
		ts, err := cellInt(row[len(row)-2])
		if err != nil {
			return nil, fmt.Errorf("bad ts: %v", err)
		}
		te, err := cellInt(row[len(row)-1])
		if err != nil {
			return nil, fmt.Errorf("bad te: %v", err)
		}
		out[i] = tuple.Tuple{Vals: vals, T: interval.Interval{Ts: ts, Te: te}}
	}
	return out, nil
}

// cellInt decodes a ts/te bound (int64 in-process, json.Number off the
// wire).
func cellInt(x any) (int64, error) {
	switch t := x.(type) {
	case int64:
		return t, nil
	case json.Number:
		return t.Int64()
	case float64:
		return int64(t), nil
	}
	return 0, fmt.Errorf("unsupported bound type %T", x)
}

// mergeSource concatenates worker streams in worker order (deterministic
// merge; workers still produce in parallel, buffered by their channels).
// It implements server.BatchSource.
type mergeSource struct {
	cancel  context.CancelFunc
	streams []*workerStream
	idx     int
	done    bool
}

// Next returns the next batch from the current worker, advancing to the
// next worker when one finishes. A worker error is terminal for the
// whole merge.
func (m *mergeSource) Next() ([]tuple.Tuple, error) {
	if m.done {
		return nil, nil
	}
	for m.idx < len(m.streams) {
		ws := m.streams[m.idx]
		batch, ok := <-ws.ch
		if ok {
			return batch, nil
		}
		if ws.err != nil {
			m.Close()
			return nil, ws.err
		}
		m.idx++
	}
	m.Close()
	return nil, nil
}

// Close cancels the fan-out context, tearing down every in-flight worker
// request; the decode goroutines exit through their context checks and
// closed response bodies.
func (m *mergeSource) Close() error {
	if m.done {
		return nil
	}
	m.done = true
	if m.cancel != nil {
		m.cancel()
	}
	return nil
}

// drain collects a merge stream into a flat tuple slice (the gather
// stage of final-pass strategies).
func drain(src *mergeSource) ([]tuple.Tuple, error) {
	defer src.Close()
	var out []tuple.Tuple
	for {
		b, err := src.Next()
		if err != nil {
			return nil, err
		}
		if len(b) == 0 {
			return out, nil
		}
		out = append(out, b...)
	}
}
