package distsql

import "talign/internal/server"

// DistMetrics implements server.Distributor's metrics hook: the
// coordinator's counters render into the server's /metrics endpoint
// alongside the single-node ones.
func (c *Coordinator) DistMetrics() []server.DistMetric {
	return []server.DistMetric{
		{Name: "talignd_dist_workers", Help: "Workers in the static cluster topology.", Gauge: true, Value: uint64(len(c.topo.Workers))},
		{Name: "talignd_dist_queries_total", Help: "Statements executed through the distributed planner.", Value: c.queries.Load()},
		{Name: "talignd_dist_plan_cache_hits_total", Help: "Distributed plan-cache hits.", Value: c.hits.Load()},
		{Name: "talignd_dist_plan_cache_misses_total", Help: "Distributed plan-cache misses.", Value: c.misses.Load()},
		{Name: "talignd_fragments_total", Help: "Fragment operations dispatched to workers.", Value: c.client.fragments.Load()},
		{Name: "talignd_fragment_retries_total", Help: "Fragment dispatches retried after transport failures or 503s.", Value: c.client.retried.Load()},
		{Name: "talignd_worker_unreachable_total", Help: "Fragment dispatches abandoned after retry exhaustion.", Value: c.client.unreachable.Load()},
		{Name: "talignd_dist_rows_in_total", Help: "Rows decoded off worker result streams.", Value: c.client.rowsIn.Load()},
		{Name: "talignd_dist_rows_out_total", Help: "Rows staged out to workers (table loads and repartitioning).", Value: c.client.rowsOut.Load()},
		{Name: "talignd_dist_bytes_in_total", Help: "Response-body bytes read off worker streams.", Value: c.client.bytesIn.Load()},
		{Name: "talignd_dist_bytes_out_total", Help: "Request-body bytes shipped to workers.", Value: c.client.bytesOut.Load()},
		{Name: "talignd_dist_scatter_total", Help: "Queries executed by colocated scatter.", Value: c.scatters.Load()},
		{Name: "talignd_dist_scatter_final_total", Help: "Queries executed by scatter plus a coordinator final stage.", Value: c.scatterFinals.Load()},
		{Name: "talignd_dist_partial_agg_total", Help: "Queries executed by the partial/final aggregate split.", Value: c.partialAggs.Load()},
		{Name: "talignd_dist_repartition_total", Help: "Executions that staged a coordinator-mediated repartition.", Value: c.repartitions.Load()},
		{Name: "talignd_dist_gather_all_total", Help: "Queries executed by the gather-all fallback.", Value: c.gatherAlls.Load()},
	}
}
