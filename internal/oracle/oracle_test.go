package oracle

import (
	"testing"

	"talign/internal/expr"
	"talign/internal/relation"
	"talign/internal/tuple"
	"talign/internal/value"
)

// periodOf propagates a tuple's valid time as an interval value (a manual
// extend operator, keeping the oracle tests independent of package core).
func periodOf(tp tuple.Tuple) value.Value { return value.NewInterval(tp.T) }

// The oracle is itself validated on the paper's worked examples: if the
// reference implementation were wrong, the Theorem 1 cross-validation in
// package core would prove nothing.

func reservations() *relation.Relation {
	return relation.NewBuilder("n string").
		Row(0, 7, "Ann").
		Row(1, 5, "Joe").
		Row(7, 11, "Ann").
		MustBuild()
}

func mustEqual(t *testing.T, got, want *relation.Relation) {
	t.Helper()
	if !relation.SetEqual(got, want) {
		onlyGot, onlyWant := relation.Diff(got, want)
		t.Fatalf("only got: %v\nonly want: %v\ngot:\n%s", onlyGot, onlyWant, got)
	}
}

// TestOracleQ1 evaluates the Fig. 1(b) left outer join from the
// definitions (with timestamp propagation for the DUR predicate).
func TestOracleQ1(t *testing.T) {
	r := reservations()
	ru := relation.NewBuilder("n string", "u period").MustBuild()
	for _, tp := range r.Tuples {
		c := tp.Clone()
		c.Vals = append(c.Vals, periodOf(tp))
		ru.Tuples = append(ru.Tuples, c)
	}
	p := relation.NewBuilder("a int", "mn int", "mx int").
		Row(0, 5, 50, 1, 2).
		Row(0, 5, 40, 3, 7).
		Row(0, 12, 30, 8, 12).
		Row(9, 12, 50, 1, 2).
		Row(9, 12, 40, 3, 7).
		MustBuild()
	theta := expr.Between{X: expr.Dur(expr.C("u")), Lo: expr.C("mn"), Hi: expr.C("mx")}
	got, err := LeftOuterJoin(ru, p, theta)
	if err != nil {
		t.Fatalf("oracle louter: %v", err)
	}
	// z3 and z4 must stay separate (change preservation at 2012/8).
	nullPieces := 0
	for _, tp := range got.Tuples {
		if tp.Vals[2].IsNull() {
			nullPieces++
		}
	}
	if nullPieces != 2 {
		t.Fatalf("want the two ω pieces z3/z4, got %d:\n%s", nullPieces, got)
	}
	if got.Len() != 5 {
		t.Fatalf("want 5 result tuples, got %d:\n%s", got.Len(), got)
	}
}

// TestOracleProjectionMergesRuns: maximal runs with identical lineage
// merge, changes split.
func TestOracleProjectionMergesRuns(t *testing.T) {
	r := relation.NewBuilder("n string", "v int").
		Row(0, 7, "Ann", 1).
		Row(1, 5, "Ann", 2).
		MustBuild()
	got, err := Projection(r, "n")
	if err != nil {
		t.Fatalf("projection: %v", err)
	}
	want := relation.NewBuilder("n string").
		Row(0, 1, "Ann").
		Row(1, 5, "Ann").
		Row(5, 7, "Ann").
		MustBuild()
	mustEqual(t, got, want)
}

// TestOracleDifferenceLineage: the whole-s lineage component keeps
// non-adjacent surviving pieces separate but merges across irrelevant s
// boundaries.
func TestOracleDifference(t *testing.T) {
	r := relation.NewBuilder("x string").Row(0, 10, "a").MustBuild()
	s := relation.NewBuilder("x string").
		Row(2, 4, "a").
		Row(5, 6, "b"). // different value: no effect on a's pieces
		MustBuild()
	got, err := Difference(r, s)
	if err != nil {
		t.Fatalf("difference: %v", err)
	}
	want := relation.NewBuilder("x string").
		Row(0, 2, "a").
		Row(4, 10, "a").
		MustBuild()
	mustEqual(t, got, want)
}

// TestOracleAggregation replays Q2 (Fig. 7) at the snapshot level.
func TestOracleAggregation(t *testing.T) {
	r := reservations()
	ru := relation.NewBuilder("n string", "u period").MustBuild()
	for _, tp := range r.Tuples {
		c := tp.Clone()
		c.Vals = append(c.Vals, periodOf(tp))
		ru.Tuples = append(ru.Tuples, c)
	}
	got, err := Aggregation(ru, nil, []AggSpec{{Op: Avg, Arg: expr.Dur(expr.C("u")), Name: "d"}})
	if err != nil {
		t.Fatalf("aggregation: %v", err)
	}
	want := relation.NewBuilder("d float").
		Row(0, 1, 7.0).
		Row(1, 5, 5.5).
		Row(5, 7, 7.0).
		Row(7, 11, 4.0).
		MustBuild()
	mustEqual(t, got, want)
}

// TestOracleGroupsValueEquivalentTuples: arguments that violate the
// duplicate-free invariant still evaluate set-style operators — the
// overlapping value-equivalent tuples fold into one snapshot row whose
// lineage changes where the contributing set changes.
func TestOracleGroupsValueEquivalentTuples(t *testing.T) {
	bad := relation.NewBuilder("x string").
		Row(0, 5, "a").
		Row(3, 8, "a").
		MustBuild()
	other := relation.NewBuilder("x string").MustBuild()
	got, err := Union(bad, other)
	if err != nil {
		t.Fatalf("union: %v", err)
	}
	want := relation.NewBuilder("x string").
		Row(0, 3, "a"). // only the first tuple alive
		Row(3, 5, "a"). // both alive: different lineage
		Row(5, 8, "a"). // only the second
		MustBuild()
	mustEqual(t, got, want)
}

// TestOracleEmpty covers empty arguments.
func TestOracleEmpty(t *testing.T) {
	empty := relation.NewBuilder("x string").MustBuild()
	out, err := CartesianProduct(empty, empty)
	if err != nil || out.Len() != 0 {
		t.Fatalf("empty product: %v %v", out, err)
	}
	sel, err := Selection(empty, expr.Eq(expr.C("x"), expr.Str("a")))
	if err != nil || sel.Len() != 0 {
		t.Fatalf("empty selection: %v %v", sel, err)
	}
}
