// Package oracle is an independent reference implementation of the
// temporal algebra, evaluated directly from the paper's definitions rather
// than through the reduction rules: each operator is computed snapshot by
// snapshot (snapshot reducibility, Def. 1, over extended relations for
// Def. 4), its result rows are annotated with lineage sets (Def. 6), and
// maximal runs of time points with identical lineage become the result
// tuples (change preservation, Def. 7).
//
// The oracle is deliberately naive and shares no evaluation machinery with
// the engine beyond the expression language; agreement between core and
// oracle on random inputs is the repository's executable proof of
// Theorem 1.
package oracle

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"talign/internal/expr"
	"talign/internal/interval"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// row is one snapshot result row: values plus a canonical lineage string.
type row struct {
	vals []value.Value
	lin  string
}

// rowKey canonically encodes values and lineage for run tracking.
func rowKey(r row) string {
	var b strings.Builder
	for _, v := range r.vals {
		fmt.Fprintf(&b, "%d:%s|", v.Kind(), v)
	}
	b.WriteString("#")
	b.WriteString(r.lin)
	return b.String()
}

// linSet canonically renders a lineage component from tuple indexes.
func linSet(idx []int) string {
	s := make([]string, len(idx))
	for i, v := range idx {
		s[i] = fmt.Sprint(v)
	}
	sort.Strings(s)
	return "{" + strings.Join(s, ",") + "}"
}

// linConst is the lineage component "the whole argument relation" used by
// difference-like lineage (Def. 6): it never varies with t.
const linConst = "*"

func lin2(a, b string) string { return "<" + a + ";" + b + ">" }

// boundaries returns the sorted distinct interval endpoints of all
// relations: between consecutive boundaries every snapshot is constant.
func boundaries(rels ...*relation.Relation) []int64 {
	set := map[int64]struct{}{}
	for _, r := range rels {
		for _, t := range r.Tuples {
			set[t.T.Ts] = struct{}{}
			set[t.T.Te] = struct{}{}
		}
	}
	out := make([]int64, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// pointwise runs snap over every constant segment and merges maximal runs
// of identical (values, lineage) rows into result tuples.
func pointwise(out schema.Schema, snap func(t int64) ([]row, error), rels ...*relation.Relation) (*relation.Relation, error) {
	res := relation.New(out)
	bounds := boundaries(rels...)
	type run struct {
		vals  []value.Value
		start int64
		end   int64
	}
	open := map[string]*run{}
	for i := 0; i+1 < len(bounds); i++ {
		t, next := bounds[i], bounds[i+1]
		rows, err := snap(t)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		for _, r := range rows {
			k := rowKey(r)
			if seen[k] {
				return nil, fmt.Errorf("oracle: duplicate snapshot row %v at t=%d (argument not duplicate free?)", r.vals, t)
			}
			seen[k] = true
			if ru, ok := open[k]; ok && ru.end == t {
				ru.end = next // contiguous: extend the run
				continue
			}
			if ru, ok := open[k]; ok {
				// Same row reappears after a hole: close the old run.
				res.Tuples = append(res.Tuples, tuple.Tuple{Vals: ru.vals, T: interval.Interval{Ts: ru.start, Te: ru.end}})
			}
			open[k] = &run{vals: r.vals, start: t, end: next}
		}
		// Close runs not extended in this segment.
		for k, ru := range open {
			if ru.end != next && ru.end <= t {
				res.Tuples = append(res.Tuples, tuple.Tuple{Vals: ru.vals, T: interval.Interval{Ts: ru.start, Te: ru.end}})
				delete(open, k)
			}
		}
	}
	for _, ru := range open {
		res.Tuples = append(res.Tuples, tuple.Tuple{Vals: ru.vals, T: interval.Interval{Ts: ru.start, Te: ru.end}})
	}
	res.SortCanonical()
	return res, nil
}

// aliveIdx lists the indexes of r's tuples alive at t.
func aliveIdx(r *relation.Relation, t int64) []int {
	var out []int
	for i, tp := range r.Tuples {
		if tp.T.Contains(t) {
			out = append(out, i)
		}
	}
	return out
}

func evalTheta(theta expr.Expr, l, r tuple.Tuple) (bool, error) {
	if theta == nil {
		return true, nil
	}
	vals := make([]value.Value, 0, len(l.Vals)+len(r.Vals))
	vals = append(vals, l.Vals...)
	vals = append(vals, r.Vals...)
	env := expr.Env{Vals: vals}
	return expr.EvalBool(theta, &env)
}

// Selection computes σT_θ(r) from the definitions.
func Selection(r *relation.Relation, pred expr.Expr) (*relation.Relation, error) {
	bound, err := pred.Bind(r.Schema)
	if err != nil {
		return nil, err
	}
	return pointwise(r.Schema, func(t int64) ([]row, error) {
		var rows []row
		for _, i := range aliveIdx(r, t) {
			env := expr.Env{Vals: r.Tuples[i].Vals}
			ok, err := expr.EvalBool(bound, &env)
			if err != nil {
				return nil, err
			}
			if ok {
				rows = append(rows, row{vals: r.Tuples[i].Vals, lin: lin2(linSet([]int{i}), "")})
			}
		}
		return rows, nil
	}, r)
}

// Projection computes πT_B(r) from the definitions.
func Projection(r *relation.Relation, attrs ...string) (*relation.Relation, error) {
	cols, err := r.Schema.Indexes(attrs...)
	if err != nil {
		return nil, err
	}
	out := r.Schema.Project(cols)
	return pointwise(out, func(t int64) ([]row, error) {
		groups := map[string][]int{}
		vals := map[string][]value.Value{}
		for _, i := range aliveIdx(r, t) {
			b := make([]value.Value, len(cols))
			for k, c := range cols {
				b[k] = r.Tuples[i].Vals[c]
			}
			key := valsKey(b)
			groups[key] = append(groups[key], i)
			vals[key] = b
		}
		var rows []row
		for key, idx := range groups {
			rows = append(rows, row{vals: vals[key], lin: lin2(linSet(idx), "")})
		}
		return rows, nil
	}, r)
}

func valsKey(vs []value.Value) string {
	var b strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&b, "%d:%s|", v.Kind(), v)
	}
	return b.String()
}

// AggOp mirrors the engine's aggregate functions for the oracle.
type AggOp uint8

// Aggregate functions supported by the oracle.
const (
	CountStar AggOp = iota
	Count
	Sum
	Avg
	Min
	Max
)

// AggSpec is an oracle aggregate column.
type AggSpec struct {
	Op   AggOp
	Arg  expr.Expr
	Name string
}

// Aggregation computes BϑT_F(r) from the definitions.
func Aggregation(r *relation.Relation, groupBy []string, aggs []AggSpec) (*relation.Relation, error) {
	cols, err := r.Schema.Indexes(groupBy...)
	if err != nil {
		return nil, err
	}
	attrs := make([]schema.Attr, 0, len(cols)+len(aggs))
	for _, c := range cols {
		attrs = append(attrs, r.Schema.Attrs[c])
	}
	bound := make([]AggSpec, len(aggs))
	for i, a := range aggs {
		bound[i] = a
		if a.Arg != nil {
			e, err := a.Arg.Bind(r.Schema)
			if err != nil {
				return nil, err
			}
			bound[i].Arg = e
		}
		kind := value.KindInt
		switch a.Op {
		case Avg:
			kind = value.KindFloat
		case Sum, Min, Max:
			if a.Arg != nil && bound[i].Arg.Type() != value.KindNull {
				kind = bound[i].Arg.Type()
			}
		}
		attrs = append(attrs, schema.Attr{Name: a.Name, Type: kind})
	}
	out := schema.Schema{Attrs: attrs}
	return pointwise(out, func(t int64) ([]row, error) {
		groups := map[string][]int{}
		keys := map[string][]value.Value{}
		for _, i := range aliveIdx(r, t) {
			b := make([]value.Value, len(cols))
			for k, c := range cols {
				b[k] = r.Tuples[i].Vals[c]
			}
			key := valsKey(b)
			groups[key] = append(groups[key], i)
			keys[key] = b
		}
		var rows []row
		for key, idx := range groups {
			vals := append([]value.Value{}, keys[key]...)
			for _, a := range bound {
				v, err := aggEval(a, r, idx)
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
			rows = append(rows, row{vals: vals, lin: lin2(linSet(idx), "")})
		}
		return rows, nil
	}, r)
}

func aggEval(a AggSpec, r *relation.Relation, idx []int) (value.Value, error) {
	var count int64
	var sumI int64
	var sumF float64
	sawF := false
	var best value.Value
	hasBest := false
	for _, i := range idx {
		if a.Op == CountStar {
			count++
			continue
		}
		env := expr.Env{Vals: r.Tuples[i].Vals, T: r.Tuples[i].T}
		v, err := a.Arg.Eval(&env)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() {
			continue
		}
		count++
		switch v.Kind() {
		case value.KindInt:
			sumI += v.Int()
			sumF += float64(v.Int())
		case value.KindFloat:
			sawF = true
			sumF += v.Float()
		}
		if !hasBest || (a.Op == Min && v.Compare(best) < 0) || (a.Op == Max && v.Compare(best) > 0) {
			best = v
			hasBest = true
		}
	}
	switch a.Op {
	case CountStar, Count:
		return value.NewInt(count), nil
	case Sum:
		if count == 0 {
			return value.Null, nil
		}
		if sawF {
			return value.NewFloat(sumF), nil
		}
		return value.NewInt(sumI), nil
	case Avg:
		if count == 0 {
			return value.Null, nil
		}
		return value.NewFloat(sumF / float64(count)), nil
	default:
		if !hasBest {
			return value.Null, nil
		}
		return best, nil
	}
}

// matchRows pairs alive tuples by value equality for the set operations.
func setRows(r, s *relation.Relation, t int64, kind setKind) []row {
	ra, sa := aliveIdx(r, t), aliveIdx(s, t)
	rGroups := map[string][]int{}
	rVals := map[string][]value.Value{}
	for _, i := range ra {
		k := valsKey(r.Tuples[i].Vals)
		rGroups[k] = append(rGroups[k], i)
		rVals[k] = r.Tuples[i].Vals
	}
	sGroups := map[string][]int{}
	sVals := map[string][]value.Value{}
	for _, j := range sa {
		k := valsKey(s.Tuples[j].Vals)
		sGroups[k] = append(sGroups[k], j)
		sVals[k] = s.Tuples[j].Vals
	}
	var rows []row
	switch kind {
	case unionKind:
		seen := map[string]bool{}
		for k, idx := range rGroups {
			rows = append(rows, row{vals: rVals[k], lin: lin2(linSet(idx), linSet(sGroups[k]))})
			seen[k] = true
		}
		for k, jdx := range sGroups {
			if !seen[k] {
				rows = append(rows, row{vals: sVals[k], lin: lin2(linSet(nil), linSet(jdx))})
			}
		}
	case intersectKind:
		for k, idx := range rGroups {
			if jdx, ok := sGroups[k]; ok {
				rows = append(rows, row{vals: rVals[k], lin: lin2(linSet(idx), linSet(jdx))})
			}
		}
	case exceptKind:
		for k, idx := range rGroups {
			if _, ok := sGroups[k]; !ok {
				rows = append(rows, row{vals: rVals[k], lin: lin2(linSet(idx), linConst)})
			}
		}
	}
	return rows
}

type setKind uint8

const (
	unionKind setKind = iota
	intersectKind
	exceptKind
)

// Union computes r ∪T s from the definitions.
func Union(r, s *relation.Relation) (*relation.Relation, error) {
	return pointwise(r.Schema, func(t int64) ([]row, error) {
		return setRows(r, s, t, unionKind), nil
	}, r, s)
}

// Intersection computes r ∩T s from the definitions.
func Intersection(r, s *relation.Relation) (*relation.Relation, error) {
	return pointwise(r.Schema, func(t int64) ([]row, error) {
		return setRows(r, s, t, intersectKind), nil
	}, r, s)
}

// Difference computes r −T s from the definitions.
func Difference(r, s *relation.Relation) (*relation.Relation, error) {
	return pointwise(r.Schema, func(t int64) ([]row, error) {
		return setRows(r, s, t, exceptKind), nil
	}, r, s)
}

// joinKind distinguishes the tuple based binary operators.
type joinKind uint8

const (
	innerKind joinKind = iota
	leftKind
	rightKind
	fullKind
	antiKind
)

func joinRows(r, s *relation.Relation, theta expr.Expr, t int64, kind joinKind) ([]row, error) {
	ra, sa := aliveIdx(r, t), aliveIdx(s, t)
	rMatched := map[int]bool{}
	sMatched := map[int]bool{}
	var rows []row
	for _, i := range ra {
		for _, j := range sa {
			ok, err := evalTheta(theta, r.Tuples[i], s.Tuples[j])
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			rMatched[i] = true
			sMatched[j] = true
			if kind == antiKind {
				continue
			}
			vals := make([]value.Value, 0, len(r.Tuples[i].Vals)+len(s.Tuples[j].Vals))
			vals = append(vals, r.Tuples[i].Vals...)
			vals = append(vals, s.Tuples[j].Vals...)
			rows = append(rows, row{vals: vals, lin: lin2(linSet([]int{i}), linSet([]int{j}))})
		}
	}
	pad := func(n int) []value.Value { return make([]value.Value, n) }
	if kind == leftKind || kind == fullKind {
		for _, i := range ra {
			if !rMatched[i] {
				vals := append(append([]value.Value{}, r.Tuples[i].Vals...), pad(s.Schema.Len())...)
				rows = append(rows, row{vals: vals, lin: lin2(linSet([]int{i}), linConst)})
			}
		}
	}
	if kind == rightKind || kind == fullKind {
		for _, j := range sa {
			if !sMatched[j] {
				vals := append(append([]value.Value{}, pad(r.Schema.Len())...), s.Tuples[j].Vals...)
				rows = append(rows, row{vals: vals, lin: lin2(linConst, linSet([]int{j}))})
			}
		}
	}
	if kind == antiKind {
		for _, i := range ra {
			if !rMatched[i] {
				rows = append(rows, row{vals: r.Tuples[i].Vals, lin: lin2(linSet([]int{i}), linConst)})
			}
		}
	}
	return rows, nil
}

func joinOp(r, s *relation.Relation, theta expr.Expr, kind joinKind) (*relation.Relation, error) {
	var bound expr.Expr
	var err error
	if theta != nil {
		bound, err = theta.Bind(r.Schema.Concat(s.Schema))
		if err != nil {
			return nil, err
		}
	}
	out := r.Schema.Concat(s.Schema)
	if kind == antiKind {
		out = r.Schema
	}
	return pointwise(out, func(t int64) ([]row, error) {
		return joinRows(r, s, bound, t, kind)
	}, r, s)
}

// CartesianProduct computes r ×T s from the definitions.
func CartesianProduct(r, s *relation.Relation) (*relation.Relation, error) {
	return joinOp(r, s, nil, innerKind)
}

// Join computes r ⋈T_θ s from the definitions.
func Join(r, s *relation.Relation, theta expr.Expr) (*relation.Relation, error) {
	return joinOp(r, s, theta, innerKind)
}

// LeftOuterJoin computes r ⟕T_θ s from the definitions.
func LeftOuterJoin(r, s *relation.Relation, theta expr.Expr) (*relation.Relation, error) {
	return joinOp(r, s, theta, leftKind)
}

// RightOuterJoin computes r ⟖T_θ s from the definitions.
func RightOuterJoin(r, s *relation.Relation, theta expr.Expr) (*relation.Relation, error) {
	return joinOp(r, s, theta, rightKind)
}

// FullOuterJoin computes r ⟗T_θ s from the definitions.
func FullOuterJoin(r, s *relation.Relation, theta expr.Expr) (*relation.Relation, error) {
	return joinOp(r, s, theta, fullKind)
}

// AntiJoin computes r ▷T_θ s from the definitions.
func AntiJoin(r, s *relation.Relation, theta expr.Expr) (*relation.Relation, error) {
	return joinOp(r, s, theta, antiKind)
}
