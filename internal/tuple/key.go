// Order-preserving tuple keys and the key-based sorter used by every sort
// hot path. A tuple encodes to a []byte whose bytes.Compare order matches
// Tuple.Compare among tuples of equal arity (all sort sites operate
// within one schema, so arity is fixed); sorting then runs over flat
// bytes — memcmp comparisons with a byte-radix fast path — instead of
// per-row polymorphic comparator closures.
package tuple

import (
	"bytes"
	"sort"

	"talign/internal/value"
)

// AppendKeyVals appends the order-preserving encodings of t's values to
// dst. For equal-arity tuples, bytes.Compare over the results matches
// CompareVals.
func (t Tuple) AppendKeyVals(dst []byte) []byte {
	for _, v := range t.Vals {
		dst = v.AppendKey(dst)
	}
	return dst
}

// AppendKey appends the full tuple key (values, then valid time) to dst.
// For equal-arity tuples, bytes.Compare over the results matches Compare.
func (t Tuple) AppendKey(dst []byte) []byte {
	return value.AppendIntervalKey(t.AppendKeyVals(dst), t.T)
}

// SortByKey sorts rows in place into the canonical Tuple.Compare order
// via encoded keys. The sort is not stable; Compare is a total order, so
// ties are bytewise-identical keys and their relative order is
// unobservable through the tuple API.
func SortByKey(rows []Tuple) {
	KeySortFunc(rows, Tuple.AppendKey)
}

// KeySortFunc decorates items with the byte keys produced by appendKey —
// encoded back to back into one shared arena — and key-sorts them. It is
// the one implementation of the decorate-and-sort idiom used by every
// sort site with a custom key layout.
func KeySortFunc[T any](items []T, appendKey func(T, []byte) []byte) {
	if len(items) < 2 {
		return
	}
	keys := make([][]byte, len(items))
	arena := make([]byte, 0, 24*len(items))
	for i := range items {
		start := len(arena)
		arena = appendKey(items[i], arena)
		keys[i] = arena[start:len(arena):len(arena)]
	}
	KeySort(items, keys)
}

// radixMinLen gates the radix fast path: below it, pdqsort's constant
// factors win.
const radixMinLen = 128

// insertionMaxLen is the bucket size at which the radix recursion hands
// off to insertion sort.
const insertionMaxLen = 24

// KeySort sorts items and keys together so that keys ascend in
// bytes.Compare order. keys[i] is the sort key of items[i]; both slices
// are permuted identically. The sort is not stable.
//
// When every key has the same length — the common case for schemas of
// fixed-width values (ints, bools, intervals, floats) — an MSD byte radix
// sort runs instead of comparison sorting.
func KeySort[T any](items []T, keys [][]byte) {
	if len(items) != len(keys) {
		panic("tuple: KeySort items/keys length mismatch")
	}
	if len(items) < 2 {
		return
	}
	if len(items) >= radixMinLen {
		if w := uniformKeyLen(keys); w > 0 {
			radixSort(items, keys, 0, w)
			return
		}
	}
	sort.Sort(keyPairs[T]{items: items, keys: keys})
}

// keyPairs adapts the parallel (items, keys) slices to sort.Interface
// without materializing a combined slice.
type keyPairs[T any] struct {
	items []T
	keys  [][]byte
}

func (k keyPairs[T]) Len() int { return len(k.items) }
func (k keyPairs[T]) Less(i, j int) bool {
	return bytes.Compare(k.keys[i], k.keys[j]) < 0
}
func (k keyPairs[T]) Swap(i, j int) {
	k.items[i], k.items[j] = k.items[j], k.items[i]
	k.keys[i], k.keys[j] = k.keys[j], k.keys[i]
}

// uniformKeyLen returns the shared key length, or 0 if lengths differ
// (or keys are empty).
func uniformKeyLen(keys [][]byte) int {
	w := len(keys[0])
	if w == 0 {
		return 0
	}
	for _, k := range keys[1:] {
		if len(k) != w {
			return 0
		}
	}
	return w
}

// radixSort is an in-place MSD byte radix sort (American-flag style) over
// fixed-width keys, recursing per bucket with an insertion-sort tail.
func radixSort[T any](items []T, keys [][]byte, pos, w int) {
	for len(items) > insertionMaxLen && pos < w {
		var counts [256]int
		for _, k := range keys {
			counts[k[pos]]++
		}
		// Bucket start offsets, plus a copy that advances as we permute.
		var starts, next [256]int
		sum := 0
		for b := 0; b < 256; b++ {
			starts[b] = sum
			next[b] = sum
			sum += counts[b]
		}
		// Cycle-permute each element into its bucket.
		for b := 0; b < 256; b++ {
			end := starts[b] + counts[b]
			for i := next[b]; i < end; {
				c := keys[i][pos]
				if c == byte(b) {
					i++
					next[b] = i
					continue
				}
				j := next[c]
				items[i], items[j] = items[j], items[i]
				keys[i], keys[j] = keys[j], keys[i]
				next[c]++
			}
		}
		// Recurse into all but the largest bucket; loop on the largest to
		// bound stack depth (classic quicksort-style tail elision).
		largest, largestSize := -1, -1
		for b := 0; b < 256; b++ {
			if counts[b] > largestSize {
				largest, largestSize = b, counts[b]
			}
		}
		for b := 0; b < 256; b++ {
			if b == largest || counts[b] < 2 {
				continue
			}
			lo, hi := starts[b], starts[b]+counts[b]
			radixSort(items[lo:hi], keys[lo:hi], pos+1, w)
		}
		lo, hi := starts[largest], starts[largest]+counts[largest]
		items, keys = items[lo:hi], keys[lo:hi]
		pos++
	}
	if len(items) > 1 {
		insertionSortSuffix(items, keys, pos)
	}
}

// insertionSortSuffix insertion-sorts a small run comparing key suffixes
// from pos (the prefixes are already equal).
func insertionSortSuffix[T any](items []T, keys [][]byte, pos int) {
	for i := 1; i < len(items); i++ {
		it, k := items[i], keys[i]
		j := i - 1
		for j >= 0 && bytes.Compare(keys[j][pos:], k[pos:]) > 0 {
			items[j+1], keys[j+1] = items[j], keys[j]
			j--
		}
		items[j+1], keys[j+1] = it, k
	}
}
