// Package tuple implements interval timestamped tuples (Sec. 3.1): a vector
// of nontemporal attribute values plus a single valid-time interval T.
package tuple

import (
	"hash/maphash"
	"strings"

	"talign/internal/interval"
	"talign/internal/value"
)

// Tuple is a row of a temporal relation. Vals holds the nontemporal
// attribute values in schema order; T is the tuple's valid time. A zero T
// marks nontemporal intermediate results.
type Tuple struct {
	Vals []value.Value
	T    interval.Interval
}

// New builds a tuple over the given values and interval.
func New(t interval.Interval, vals ...value.Value) Tuple {
	return Tuple{Vals: vals, T: t}
}

// Clone returns a deep copy (the value slice is copied; values are
// immutable).
func (t Tuple) Clone() Tuple {
	vals := make([]value.Value, len(t.Vals))
	copy(vals, t.Vals)
	return Tuple{Vals: vals, T: t.T}
}

// Arity returns the number of nontemporal attributes.
func (t Tuple) Arity() int { return len(t.Vals) }

// ValsEqual reports value equivalence: pairwise equal nontemporal values
// (r.A = r'.A in the paper's notation). ω equals ω.
func (t Tuple) ValsEqual(o Tuple) bool {
	if len(t.Vals) != len(o.Vals) {
		return false
	}
	for i := range t.Vals {
		if !t.Vals[i].Equal(o.Vals[i]) {
			return false
		}
	}
	return true
}

// Equal reports full equality: value equivalence plus identical timestamps.
func (t Tuple) Equal(o Tuple) bool {
	return t.T == o.T && t.ValsEqual(o)
}

// compareVals lexicographically orders two value vectors; a strict prefix
// sorts first (shared by Compare and CompareVals).
func compareVals(a, b []value.Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Compare orders tuples by nontemporal values, then by timestamp; the total
// order drives sorting, merging and set operations.
func (t Tuple) Compare(o Tuple) int {
	if c := compareVals(t.Vals, o.Vals); c != 0 {
		return c
	}
	return t.T.Compare(o.T)
}

// CompareVals orders tuples by nontemporal values only.
func (t Tuple) CompareVals(o Tuple) int {
	return compareVals(t.Vals, o.Vals)
}

// HashVals mixes the nontemporal values at the given positions into h; a nil
// cols hashes all values.
func (t Tuple) HashVals(h *maphash.Hash, cols []int) {
	if cols == nil {
		for _, v := range t.Vals {
			v.Hash(h)
		}
		return
	}
	for _, c := range cols {
		t.Vals[c].Hash(h)
	}
}

// Hash mixes values and timestamp into h (full set-semantics identity).
func (t Tuple) Hash(h *maphash.Hash) {
	t.HashVals(h, nil)
	value.NewInterval(t.T).Hash(h)
}

// Concat returns the concatenation of t and o's values; the result carries
// timestamp ts.
func (t Tuple) Concat(o Tuple, ts interval.Interval) Tuple {
	vals := make([]value.Value, 0, len(t.Vals)+len(o.Vals))
	vals = append(vals, t.Vals...)
	vals = append(vals, o.Vals...)
	return Tuple{Vals: vals, T: ts}
}

// WithT returns a copy of t with timestamp ts (values shared, not copied;
// callers must not mutate).
func (t Tuple) WithT(ts interval.Interval) Tuple {
	return Tuple{Vals: t.Vals, T: ts}
}

// NullPad returns a tuple of n ω values with timestamp ts (the outer-join
// padding of the paper's examples).
func NullPad(n int, ts interval.Interval) Tuple {
	return Tuple{Vals: make([]value.Value, n), T: ts}
}

// String renders "(v1, v2, ...) [ts, te)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t.Vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	if !t.T.Zero() {
		b.WriteByte(' ')
		b.WriteString(t.T.String())
	}
	return b.String()
}
