package tuple

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"talign/internal/interval"
	"talign/internal/value"
)

func randTuple(rng *rand.Rand, arity int) Tuple {
	vals := make([]value.Value, arity)
	for i := range vals {
		switch rng.Intn(6) {
		case 0:
			vals[i] = value.Null
		case 1:
			vals[i] = value.NewBool(rng.Intn(2) == 0)
		case 2:
			vals[i] = value.NewInt(int64(rng.Intn(8) - 4))
		case 3:
			vals[i] = value.NewFloat(float64(rng.Intn(8)-4) + 0.5*float64(rng.Intn(2)))
		case 4:
			vals[i] = value.NewString(string(rune('a' + rng.Intn(3))))
		default:
			ts := int64(rng.Intn(8))
			vals[i] = value.NewInterval(interval.Interval{Ts: ts, Te: ts + 1})
		}
	}
	ts := int64(rng.Intn(16) - 8)
	return Tuple{Vals: vals, T: interval.Interval{Ts: ts, Te: ts + 1 + int64(rng.Intn(8))}}
}

// TestTupleKeyMatchesCompare: for equal-arity tuples, bytes.Compare over
// AppendKey equals Tuple.Compare, and AppendKeyVals equals CompareVals.
func TestTupleKeyMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for arity := 0; arity <= 4; arity++ {
		for i := 0; i < 3000; i++ {
			a, b := randTuple(rng, arity), randTuple(rng, arity)
			ka, kb := a.AppendKey(nil), b.AppendKey(nil)
			if got, want := bytes.Compare(ka, kb), a.Compare(b); got != want {
				t.Fatalf("arity %d: key order %d, Compare %d for %v vs %v", arity, got, want, a, b)
			}
			va, vb := a.AppendKeyVals(nil), b.AppendKeyVals(nil)
			if got, want := bytes.Compare(va, vb), a.CompareVals(b); got != want {
				t.Fatalf("arity %d: vals key order %d, CompareVals %d for %v vs %v", arity, got, want, a, b)
			}
		}
	}
}

// TestSortByKey checks SortByKey against the comparator reference.
func TestSortByKey(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 17, 100, 1000} {
		rows := make([]Tuple, n)
		for i := range rows {
			rows[i] = randTuple(rng, 3)
		}
		want := append([]Tuple(nil), rows...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].Compare(want[j]) < 0 })
		SortByKey(rows)
		for i := range rows {
			if rows[i].Compare(want[i]) != 0 {
				t.Fatalf("n=%d: position %d differs: %v vs %v", n, i, rows[i], want[i])
			}
		}
	}
}

// TestKeySortRadixVsComparison forces both paths over identical
// fixed-width inputs (ints only → uniform key length → radix) and checks
// them against each other.
func TestKeySortRadixVsComparison(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{radixMinLen, 1000, 5000} {
		rows := make([]Tuple, n)
		for i := range rows {
			v := int64(rng.Intn(64) - 32)
			if rng.Intn(8) == 0 {
				v = rng.Int63() - rng.Int63() // spread across all bytes
			}
			ts := int64(rng.Intn(32))
			rows[i] = Tuple{Vals: []value.Value{value.NewInt(v), value.NewInt(int64(i % 7))},
				T: interval.Interval{Ts: ts, Te: ts + 1}}
		}
		keys := make([][]byte, n)
		for i := range rows {
			keys[i] = rows[i].AppendKey(nil)
		}
		if uniformKeyLen(keys) == 0 {
			t.Fatal("expected uniform key length for int-only schema")
		}
		ref := append([]Tuple(nil), rows...)
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].Compare(ref[j]) < 0 })
		KeySort(rows, keys)
		for i := 1; i < n; i++ {
			if bytes.Compare(keys[i-1], keys[i]) > 0 {
				t.Fatalf("keys out of order at %d", i)
			}
		}
		for i := range rows {
			if rows[i].Compare(ref[i]) != 0 {
				t.Fatalf("n=%d: radix sort misplaced row %d", n, i)
			}
		}
	}
}

// TestKeySortVariableWidth covers the comparison path with string keys of
// different lengths.
func TestKeySortVariableWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 500
	rows := make([]Tuple, n)
	keys := make([][]byte, n)
	for i := range rows {
		s := make([]byte, rng.Intn(5))
		for j := range s {
			s[j] = byte(rng.Intn(3) * 127) // includes 0x00 and 0xfe
		}
		rows[i] = Tuple{Vals: []value.Value{value.NewString(string(s))},
			T: interval.Interval{Ts: 0, Te: 1}}
		keys[i] = rows[i].AppendKey(nil)
	}
	ref := append([]Tuple(nil), rows...)
	sort.SliceStable(ref, func(i, j int) bool { return ref[i].Compare(ref[j]) < 0 })
	KeySort(rows, keys)
	for i := range rows {
		if rows[i].Compare(ref[i]) != 0 {
			t.Fatalf("position %d differs", i)
		}
	}
}

// TestKeySortNaNAndOmega: rows containing ω, NaN and ±Inf sort
// identically through keys and through Compare.
func TestKeySortNaNAndOmega(t *testing.T) {
	mk := func(f float64) Tuple {
		return Tuple{Vals: []value.Value{value.NewFloat(f)}, T: interval.Interval{Ts: 0, Te: 1}}
	}
	rows := []Tuple{
		mk(1), {Vals: []value.Value{value.Null}, T: interval.Interval{Ts: 0, Te: 1}},
		mk(math.Inf(1)), mk(math.NaN()), mk(math.Inf(-1)), mk(-0.0), mk(0),
	}
	SortByKey(rows)
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Compare(rows[i]) > 0 {
			t.Fatalf("rows out of order at %d: %v > %v", i, rows[i-1], rows[i])
		}
	}
	if !rows[0].Vals[0].IsNull() {
		t.Fatalf("ω must sort first, got %v", rows[0])
	}
}
