package tuple

import (
	"hash/maphash"
	"testing"

	"talign/internal/interval"
	"talign/internal/value"
)

func tup(ts, te int64, vals ...value.Value) Tuple {
	return New(interval.New(ts, te), vals...)
}

func TestValueAndFullEquality(t *testing.T) {
	a := tup(0, 5, value.NewString("x"), value.NewInt(1))
	b := tup(3, 9, value.NewString("x"), value.NewInt(1))
	c := tup(0, 5, value.NewString("x"), value.NewInt(2))
	if !a.ValsEqual(b) {
		t.Fatal("value equivalence ignores time")
	}
	if a.Equal(b) {
		t.Fatal("full equality includes time")
	}
	if a.ValsEqual(c) {
		t.Fatal("different values are not equivalent")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone must equal original")
	}
	// ω equals ω under grouping equality.
	d := tup(0, 5, value.Null)
	e := tup(0, 5, value.Null)
	if !d.ValsEqual(e) {
		t.Fatal("ω = ω for grouping")
	}
}

func TestCompareOrder(t *testing.T) {
	a := tup(0, 5, value.NewString("a"))
	b := tup(0, 5, value.NewString("b"))
	c := tup(1, 5, value.NewString("a"))
	if a.Compare(b) >= 0 {
		t.Fatal("value order first")
	}
	if a.Compare(c) >= 0 {
		t.Fatal("time breaks ties")
	}
	if a.CompareVals(c) != 0 {
		t.Fatal("CompareVals ignores time")
	}
	short := Tuple{Vals: a.Vals[:0]}
	if short.Compare(a) >= 0 {
		t.Fatal("shorter tuple sorts first")
	}
}

func TestConcatWithTAndPad(t *testing.T) {
	a := tup(0, 5, value.NewString("x"))
	b := tup(2, 7, value.NewInt(9))
	c := a.Concat(b, interval.New(2, 5))
	if c.Arity() != 2 || c.T != interval.New(2, 5) {
		t.Fatalf("concat: %v", c)
	}
	w := a.WithT(interval.New(1, 2))
	if w.T != interval.New(1, 2) || !w.ValsEqual(a) {
		t.Fatalf("withT: %v", w)
	}
	p := NullPad(3, interval.New(0, 1))
	if p.Arity() != 3 || !p.Vals[0].IsNull() {
		t.Fatalf("pad: %v", p)
	}
}

func TestHashConsistency(t *testing.T) {
	seed := maphash.MakeSeed()
	h := func(tp Tuple, cols []int) uint64 {
		var mh maphash.Hash
		mh.SetSeed(seed)
		tp.HashVals(&mh, cols)
		return mh.Sum64()
	}
	a := tup(0, 5, value.NewString("x"), value.NewInt(1))
	b := tup(9, 12, value.NewString("x"), value.NewInt(1))
	if h(a, nil) != h(b, nil) {
		t.Fatal("HashVals ignores time")
	}
	if h(a, []int{0}) != h(b, []int{0}) {
		t.Fatal("column-restricted hash")
	}
	var m1, m2 maphash.Hash
	m1.SetSeed(seed)
	m2.SetSeed(seed)
	a.Hash(&m1)
	b.Hash(&m2)
	if m1.Sum64() == m2.Sum64() {
		t.Fatal("full Hash must include time")
	}
}

func TestStringRendering(t *testing.T) {
	a := tup(0, 5, value.NewString("x"), value.Null)
	if got := a.String(); got != "(x, ω) [0, 5)" {
		t.Fatalf("string: %q", got)
	}
	nontemporal := Tuple{Vals: []value.Value{value.NewInt(1)}}
	if got := nontemporal.String(); got != "(1)" {
		t.Fatalf("nontemporal string: %q", got)
	}
}
