// Segment seam: a relation loaded from on-disk storage carries, besides
// its tuples and memoized columnar image, the list of columnar segments
// it was assembled from — each a contiguous valid-time partition with a
// zone map. Scans that know the segment list can serve one zero-copy
// image per segment and skip segments whose zone is disjoint from a
// pushed-down predicate.
package relation

import (
	"talign/internal/colbatch"
	"talign/internal/tuple"
)

// Segment is one interval-partitioned slice of a relation: a columnar
// image (possibly memory-mapped, read-only), its zone map, and the row
// range [Lo, Hi) it occupies in the relation's Tuples slice. Loaders
// materialize tuples in segment order, so the ranges tile [0, Len()).
type Segment struct {
	Img  *colbatch.Batch
	Zone colbatch.Zone
	Lo   int
	Hi   int
}

// segImage stamps a segment list the same way colImage stamps the
// columnar cache, so external mutation of Tuples drops it.
type segImage struct {
	segs  []Segment
	n     int
	first *tuple.Tuple
}

// Segments returns the relation's segment list, or nil when the
// relation was not assembled from segments (in-memory loads) or has
// been mutated since. Callers must treat segment images as read-only.
func (r *Relation) Segments() []Segment {
	if s := r.segv.Load(); s != nil && s.n == len(r.Tuples) && s.first == stamp(r) {
		return s.segs
	}
	return nil
}

// SetSegments installs the segment list a loader assembled the relation
// from. The ranges must tile [0, Len()) in order, and each segment's
// image must hold exactly Hi-Lo rows.
func (r *Relation) SetSegments(segs []Segment) {
	want := 0
	for _, sg := range segs {
		if sg.Lo != want || sg.Hi < sg.Lo || sg.Img == nil || sg.Img.Len() != sg.Hi-sg.Lo {
			panic("relation: SetSegments list does not tile the relation")
		}
		want = sg.Hi
	}
	if want != len(r.Tuples) {
		panic("relation: SetSegments list does not cover the relation")
	}
	r.segv.Store(&segImage{segs: segs, n: len(r.Tuples), first: stamp(r)})
}

// invalidateSegments drops the segment list; called alongside
// invalidateColumnar by every mutating method.
func (r *Relation) invalidateSegments() {
	if r.segv.Load() != nil {
		r.segv.Store(nil)
	}
}
