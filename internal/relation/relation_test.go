package relation

import (
	"strings"
	"testing"

	"talign/internal/interval"
	"talign/internal/tuple"
	"talign/internal/value"
)

func sample() *Relation {
	return NewBuilder("n string", "v int").
		Row(0, 5, "a", 1).
		Row(3, 9, "b", 2).
		Row(9, 12, "a", 1).
		MustBuild()
}

func TestBuilderAndAppend(t *testing.T) {
	r := sample()
	if r.Len() != 3 {
		t.Fatalf("len: %d", r.Len())
	}
	if err := r.Append(tuple.New(interval.New(0, 1), value.NewString("x"))); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if err := r.Append(tuple.New(interval.New(0, 1), value.NewString("x"), value.NewString("y"))); err == nil {
		t.Fatal("type mismatch must fail")
	}
	if err := r.Append(tuple.New(interval.New(0, 1), value.Null, value.Null)); err != nil {
		t.Fatalf("ω must be accepted for any type: %v", err)
	}
	if _, err := NewBuilder("bad").Build(); err == nil {
		t.Fatal("bad attribute spec must fail")
	}
	if _, err := NewBuilder("x sometype").Build(); err == nil {
		t.Fatal("unknown type must fail")
	}
}

func TestDuplicateFree(t *testing.T) {
	ok := sample()
	if err := ok.DuplicateFree(); err != nil {
		t.Fatalf("sample is duplicate free: %v", err)
	}
	bad := NewBuilder("n string").
		Row(0, 5, "a").
		Row(3, 7, "a").
		MustBuild()
	if err := bad.DuplicateFree(); err == nil {
		t.Fatal("overlapping value-equivalent tuples must be rejected")
	}
	adjacent := NewBuilder("n string").
		Row(0, 5, "a").
		Row(5, 7, "a").
		MustBuild()
	if err := adjacent.DuplicateFree(); err != nil {
		t.Fatalf("adjacent tuples are fine: %v", err)
	}
}

func TestTimeslice(t *testing.T) {
	r := sample()
	snap := r.Timeslice(4)
	if snap.Len() != 2 {
		t.Fatalf("snapshot at 4: %d rows", snap.Len())
	}
	for _, tp := range snap.Tuples {
		if !tp.T.Zero() {
			t.Fatal("snapshots are nontemporal")
		}
	}
	if got := r.Timeslice(100).Len(); got != 0 {
		t.Fatalf("snapshot at 100: %d rows", got)
	}
	if idx := r.TimesliceIdx(4); len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("timeslice idx: %v", idx)
	}
}

func TestActiveDomainAndSpan(t *testing.T) {
	r := sample()
	dom := r.ActiveDomain()
	want := []int64{0, 3, 5, 9, 12}
	if len(dom) != len(want) {
		t.Fatalf("domain: %v", dom)
	}
	for i := range want {
		if dom[i] != want[i] {
			t.Fatalf("domain: %v", dom)
		}
	}
	span, ok := r.Span()
	if !ok || span != interval.New(0, 12) {
		t.Fatalf("span: %v %v", span, ok)
	}
	if _, ok := New(r.Schema).Span(); ok {
		t.Fatal("empty relation has no span")
	}
}

func TestSetEqualAndDiff(t *testing.T) {
	a := sample()
	b := sample()
	// Different order, same set.
	b.Tuples[0], b.Tuples[2] = b.Tuples[2], b.Tuples[0]
	if !SetEqual(a, b) {
		t.Fatal("permutation must be set-equal")
	}
	c := sample()
	c.Tuples = c.Tuples[:2]
	if SetEqual(a, c) {
		t.Fatal("subset must not be set-equal")
	}
	onlyA, onlyC := Diff(a, c)
	if len(onlyA) != 1 || len(onlyC) != 0 {
		t.Fatalf("diff: %v %v", onlyA, onlyC)
	}
	// Duplicates collapse under set semantics.
	d := sample()
	d.Tuples = append(d.Tuples, d.Tuples[0].Clone())
	if !SetEqual(a, d) {
		t.Fatal("duplicate must not affect set equality")
	}
}

func TestDedupAndSort(t *testing.T) {
	r := NewBuilder("n string").
		Row(3, 5, "b").
		Row(0, 2, "a").
		Row(0, 2, "a").
		MustBuild()
	r.Dedup()
	if r.Len() != 2 {
		t.Fatalf("dedup: %d", r.Len())
	}
	if r.Tuples[0].Vals[0].Str() != "a" {
		t.Fatal("dedup must sort canonically")
	}
}

func TestCoalesce(t *testing.T) {
	r := NewBuilder("n string").
		Row(0, 3, "a").
		Row(3, 6, "a"). // adjacent: merges
		Row(8, 9, "a"). // gap: stays
		Row(0, 9, "b").
		MustBuild()
	got := r.Coalesce()
	want := NewBuilder("n string").
		Row(0, 6, "a").
		Row(8, 9, "a").
		Row(0, 9, "b").
		MustBuild()
	if !SetEqual(got, want) {
		t.Fatalf("coalesce:\n%s", got)
	}
}

func TestCloneIsolation(t *testing.T) {
	r := sample()
	c := r.Clone()
	c.Schema.Attrs[0].Name = "renamed"
	c.Tuples[0].Vals[0] = value.NewString("zzz")
	if r.Schema.Attrs[0].Name != "n" {
		t.Fatal("clone must not alias the schema")
	}
	if r.Tuples[0].Vals[0].Str() != "a" {
		t.Fatal("clone must not alias tuple values")
	}
}

func TestStringRendering(t *testing.T) {
	s := sample().String()
	for _, part := range []string{"n string", "v int", "[0, 5)", "(a, 1)"} {
		if !strings.Contains(s, part) {
			t.Fatalf("rendering missing %q:\n%s", part, s)
		}
	}
}

func TestAutoConversions(t *testing.T) {
	for _, c := range []struct {
		in   any
		kind value.Kind
	}{
		{nil, value.KindNull},
		{true, value.KindBool},
		{int(1), value.KindInt},
		{int32(1), value.KindInt},
		{int64(1), value.KindInt},
		{1.5, value.KindFloat},
		{"x", value.KindString},
		{interval.New(0, 1), value.KindInterval},
		{value.NewInt(9), value.KindInt},
	} {
		v, err := Auto(c.in)
		if err != nil || v.Kind() != c.kind {
			t.Fatalf("Auto(%v): %v %v", c.in, v, err)
		}
	}
	if _, err := Auto(struct{}{}); err == nil {
		t.Fatal("unconvertible type must fail")
	}
}

func TestParseKind(t *testing.T) {
	for in, want := range map[string]value.Kind{
		"int": value.KindInt, "bigint": value.KindInt, "integer": value.KindInt,
		"float": value.KindFloat, "double": value.KindFloat,
		"string": value.KindString, "text": value.KindString, "varchar": value.KindString,
		"bool": value.KindBool, "period": value.KindInterval,
	} {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q): %v %v", in, got, err)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Fatal("unknown kind must fail")
	}
}
