// Columnar image cache: the vectorized executor scans relations as
// colbatch vectors, and the conversion from []tuple.Tuple is linear in
// the relation size. Relations are effectively immutable once loaded
// (appends during load, then read-only query execution), so each
// Relation memoizes one columnar image and serves it to every scan.
package relation

import (
	"talign/internal/colbatch"
	"talign/internal/tuple"
)

// colImage is a cached columnar conversion of Tuples, stamped with the
// tuple count and slice identity it was built from so external appends
// (code that grows r.Tuples directly) are detected without bookkeeping.
type colImage struct {
	img   *colbatch.Batch
	n     int
	first *tuple.Tuple // nil for empty relations
}

// Columnar returns the columnar image of the relation, converting and
// caching on first use. The image is shared: callers must treat it as
// read-only (scan it through views, never append). Mutating methods
// (Append, SortCanonical, Dedup) invalidate the cache; direct external
// appends to r.Tuples are caught by the length/identity stamp.
func (r *Relation) Columnar() *colbatch.Batch {
	if c := r.colv.Load(); c != nil && c.n == len(r.Tuples) && c.first == stamp(r) {
		return c.img
	}
	img := colbatch.FromTuples(nil, r.Schema, r.Tuples)
	r.setColumnar(img)
	return img
}

// SetColumnar installs a pre-built columnar image (the CSV reader decodes
// straight into vectors and donates the result). The image must hold
// exactly r.Tuples' rows in order.
func (r *Relation) SetColumnar(img *colbatch.Batch) {
	if img.Len() != len(r.Tuples) || img.Sel != nil {
		panic("relation: SetColumnar image does not match relation")
	}
	r.setColumnar(img)
}

func (r *Relation) setColumnar(img *colbatch.Batch) {
	r.colv.Store(&colImage{img: img, n: len(r.Tuples), first: stamp(r)})
}

func stamp(r *Relation) *tuple.Tuple {
	if len(r.Tuples) == 0 {
		return nil
	}
	return &r.Tuples[0]
}

// invalidateColumnar drops the cached image; called by every mutating
// method. The nil-check keeps the common load loop (Append per row) at
// one atomic load instead of one store.
func (r *Relation) invalidateColumnar() {
	if r.colv.Load() != nil {
		r.colv.Store(nil)
	}
	r.invalidateSegments()
}
