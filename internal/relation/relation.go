// Package relation implements temporal relations: finite sets of interval
// timestamped tuples over a schema (Sec. 3.1), together with the timeslice
// operator τ_t, the duplicate-free invariant, and set-level utilities used
// throughout the algebra, the engine and the test oracle.
package relation

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync/atomic"

	"talign/internal/interval"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// Relation is a temporal relation: a schema plus a slice of tuples. The
// algebra treats relations as sets; Tuples order is an implementation
// detail (operators that need an order sort explicitly).
type Relation struct {
	Schema schema.Schema
	Tuples []tuple.Tuple

	// colv caches the columnar image of Tuples for the vectorized
	// executor; see Columnar in columnar.go.
	colv atomic.Pointer[colImage]

	// segv caches the interval-partitioned segment list a storage
	// loader assembled the relation from; see Segments in segments.go.
	segv atomic.Pointer[segImage]
}

// New returns an empty relation over the given schema.
func New(s schema.Schema) *Relation {
	return &Relation{Schema: s}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Append adds a tuple after checking its arity and value types against the
// schema. ω is accepted for any attribute type.
func (r *Relation) Append(t tuple.Tuple) error {
	if len(t.Vals) != r.Schema.Len() {
		return fmt.Errorf("relation: tuple arity %d does not match schema arity %d", len(t.Vals), r.Schema.Len())
	}
	for i, v := range t.Vals {
		if v.IsNull() {
			continue
		}
		want := r.Schema.Attrs[i].Type
		if v.Kind() == want {
			continue
		}
		if v.Kind().Numeric() && want.Numeric() {
			continue
		}
		return fmt.Errorf("relation: attribute %q expects %s, got %s", r.Schema.Attrs[i].Name, want, v.Kind())
	}
	r.Tuples = append(r.Tuples, t)
	r.invalidateColumnar()
	return nil
}

// MustAppend is Append but panics on error; for literals in tests/examples.
func (r *Relation) MustAppend(t tuple.Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy; the schema's attribute list is copied too, so
// renaming a clone's attributes cannot alias the original.
func (r *Relation) Clone() *Relation {
	attrs := make([]schema.Attr, len(r.Schema.Attrs))
	copy(attrs, r.Schema.Attrs)
	out := &Relation{Schema: schema.Schema{Attrs: attrs}, Tuples: make([]tuple.Tuple, len(r.Tuples))}
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// DuplicateFree verifies the paper's invariant (Sec. 3.1): no two distinct
// tuples are value-equivalent over a common time point. It returns the
// first offending pair if any.
func (r *Relation) DuplicateFree() error {
	idx := make([]int, len(r.Tuples))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return r.Tuples[idx[a]].Compare(r.Tuples[idx[b]]) < 0
	})
	for k := 1; k < len(idx); k++ {
		a, b := r.Tuples[idx[k-1]], r.Tuples[idx[k]]
		if a.ValsEqual(b) && a.T.Overlaps(b.T) {
			return fmt.Errorf("relation: tuples %v and %v are value-equivalent over common time points", a, b)
		}
	}
	return nil
}

// Timeslice implements τ_t (Sec. 3.1): the nontemporal snapshot at time t.
// The result tuples carry a zero interval; callers that need lineage use
// TimesliceIdx instead.
func (r *Relation) Timeslice(t int64) *Relation {
	out := New(r.Schema)
	for _, tp := range r.Tuples {
		if tp.T.Contains(t) {
			out.Tuples = append(out.Tuples, tuple.Tuple{Vals: tp.Vals})
		}
	}
	return out
}

// TimesliceIdx returns the indexes of the tuples alive at time t.
func (r *Relation) TimesliceIdx(t int64) []int {
	var out []int
	for i, tp := range r.Tuples {
		if tp.T.Contains(t) {
			out = append(out, i)
		}
	}
	return out
}

// ActiveDomain returns the sorted distinct start and end points of all
// tuples. Between two consecutive boundary points every snapshot is
// constant, so evaluating the algebra's definitions at the boundary points
// suffices (used by the oracle).
func (r *Relation) ActiveDomain() []int64 {
	set := make(map[int64]struct{}, 2*len(r.Tuples))
	for _, t := range r.Tuples {
		set[t.T.Ts] = struct{}{}
		set[t.T.Te] = struct{}{}
	}
	out := make([]int64, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// Span returns the smallest interval covering all tuples, or ok=false if
// the relation is empty.
func (r *Relation) Span() (interval.Interval, bool) {
	if len(r.Tuples) == 0 {
		return interval.Interval{}, false
	}
	lo, hi := r.Tuples[0].T.Ts, r.Tuples[0].T.Te
	for _, t := range r.Tuples[1:] {
		if t.T.Ts < lo {
			lo = t.T.Ts
		}
		if t.T.Te > hi {
			hi = t.T.Te
		}
	}
	return interval.Interval{Ts: lo, Te: hi}, true
}

// SortCanonical sorts tuples into the canonical total order (values, then
// timestamp) in place and returns the relation for chaining. The sort is
// key-based (order-preserving byte encodings) and not stable; Compare is
// total, so equal tuples are interchangeable.
func (r *Relation) SortCanonical() *Relation {
	tuple.SortByKey(r.Tuples)
	r.invalidateColumnar()
	return r
}

// Dedup removes exact duplicates (values and timestamp); the relation is
// sorted canonically as a side effect.
func (r *Relation) Dedup() *Relation {
	r.SortCanonical()
	out := r.Tuples[:0]
	for i, t := range r.Tuples {
		if i > 0 && t.Equal(r.Tuples[i-1]) {
			continue
		}
		out = append(out, t)
	}
	r.Tuples = out
	r.invalidateColumnar()
	return r
}

// SetEqual reports whether two relations contain the same set of tuples
// (schema names are not compared, only arity via tuple comparison).
func SetEqual(a, b *Relation) bool {
	if len(a.Tuples) != len(b.Tuples) {
		x, y := a.Clone().Dedup(), b.Clone().Dedup()
		if len(x.Tuples) != len(y.Tuples) {
			return false
		}
		return setEqualSorted(x, y)
	}
	x, y := a.Clone().Dedup(), b.Clone().Dedup()
	return setEqualSorted(x, y)
}

func setEqualSorted(x, y *Relation) bool {
	if len(x.Tuples) != len(y.Tuples) {
		return false
	}
	for i := range x.Tuples {
		if !x.Tuples[i].Equal(y.Tuples[i]) {
			return false
		}
	}
	return true
}

// Diff returns tuples in a but not in b and tuples in b but not in a
// (helper for test failure messages).
func Diff(a, b *Relation) (onlyA, onlyB []tuple.Tuple) {
	x, y := a.Clone().Dedup(), b.Clone().Dedup()
	i, j := 0, 0
	for i < len(x.Tuples) && j < len(y.Tuples) {
		c := x.Tuples[i].Compare(y.Tuples[j])
		switch {
		case c < 0:
			onlyA = append(onlyA, x.Tuples[i])
			i++
		case c > 0:
			onlyB = append(onlyB, y.Tuples[j])
			j++
		default:
			i++
			j++
		}
	}
	onlyA = append(onlyA, x.Tuples[i:]...)
	onlyB = append(onlyB, y.Tuples[j:]...)
	return onlyA, onlyB
}

// Coalesce merges value-equivalent tuples over adjacent or overlapping
// intervals into maximal intervals. Coalescing deliberately destroys
// change preservation; it is provided as a utility for applications that
// want TSQL2-style maximal periods, and for tests contrasting the two.
func (r *Relation) Coalesce() *Relation {
	out := New(r.Schema)
	sorted := r.Clone().SortCanonical()
	for i := 0; i < len(sorted.Tuples); {
		cur := sorted.Tuples[i]
		j := i + 1
		for j < len(sorted.Tuples) && sorted.Tuples[j].ValsEqual(cur) {
			nt := sorted.Tuples[j].T
			if u, ok := cur.T.Union(nt); ok {
				cur = cur.WithT(u)
				j++
				continue
			}
			break
		}
		out.Tuples = append(out.Tuples, cur)
		i = j
	}
	return out
}

// String renders the relation as an aligned table, one tuple per line.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.Schema.String())
	b.WriteString(" T\n")
	for _, t := range r.Tuples {
		b.WriteString("  ")
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Builder offers a fluent way to construct relations in tests and examples.
type Builder struct {
	rel *Relation
	err error
}

// NewBuilder starts building a relation over attrs, e.g.
// NewBuilder("n string", "a int").
func NewBuilder(attrs ...string) *Builder {
	parsed := make([]schema.Attr, 0, len(attrs))
	for _, a := range attrs {
		fields := strings.Fields(a)
		if len(fields) != 2 {
			return &Builder{err: fmt.Errorf("relation: bad attribute spec %q (want \"name type\")", a)}
		}
		kind, err := ParseKind(fields[1])
		if err != nil {
			return &Builder{err: err}
		}
		parsed = append(parsed, schema.Attr{Name: fields[0], Type: kind})
	}
	s, err := schema.New(parsed...)
	if err != nil {
		return &Builder{err: err}
	}
	return &Builder{rel: New(s)}
}

// Row appends a tuple with valid time [ts, te); vals are converted with
// Auto.
func (b *Builder) Row(ts, te int64, vals ...any) *Builder {
	if b.err != nil {
		return b
	}
	vv := make([]value.Value, len(vals))
	for i, v := range vals {
		conv, err := Auto(v)
		if err != nil {
			b.err = err
			return b
		}
		vv[i] = conv
	}
	b.err = b.rel.Append(tuple.New(interval.New(ts, te), vv...))
	return b
}

// Build returns the relation or the first error.
func (b *Builder) Build() (*Relation, error) {
	if b.err != nil {
		return nil, b.err
	}
	return b.rel, nil
}

// MustBuild is Build but panics on error.
func (b *Builder) MustBuild() *Relation {
	r, err := b.Build()
	if err != nil {
		panic(err)
	}
	return r
}

// Auto converts a Go value into a value.Value: nil→ω, bool, ints, float64,
// string, interval.Interval, or a value.Value passed through.
func Auto(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.Null, nil
	case value.Value:
		return x, nil
	case bool:
		return value.NewBool(x), nil
	case int:
		return value.NewInt(int64(x)), nil
	case int32:
		return value.NewInt(int64(x)), nil
	case int64:
		return value.NewInt(x), nil
	case float64:
		return value.NewFloat(x), nil
	case string:
		return value.NewString(x), nil
	case interval.Interval:
		return value.NewInterval(x), nil
	}
	return value.Null, fmt.Errorf("relation: cannot convert %T to a value", v)
}

// ParseKind parses a type name used by Builder and the CSV loader.
func ParseKind(s string) (value.Kind, error) {
	switch strings.ToLower(s) {
	case "bool":
		return value.KindBool, nil
	case "int", "int64", "bigint", "integer":
		return value.KindInt, nil
	case "float", "float64", "double":
		return value.KindFloat, nil
	case "string", "text", "varchar":
		return value.KindString, nil
	case "period", "interval":
		return value.KindInterval, nil
	}
	return value.KindNull, fmt.Errorf("relation: unknown type %q", s)
}
