package expr

import (
	"fmt"

	"talign/internal/schema"
	"talign/internal/value"
)

// Param is a $N query parameter placeholder (1-based). A plan containing
// Param nodes is a generic plan: it is analyzed, optimized and cached once,
// and each execution substitutes concrete values with BindParams without
// re-planning. Until then a Param's static type is unknown (KindNull) and
// evaluating it is an error.
type Param struct {
	// Idx is the 1-based parameter position ($1 has Idx 1).
	Idx int
}

// Bind implements Expr; placeholders are position-bound already and pass
// through schema binding unchanged.
func (p Param) Bind(schema.Schema) (Expr, error) { return p, nil }

// Type reports KindNull: a placeholder's type is unknown until a value is
// bound, and every operator in this engine accepts runtime kinds.
func (p Param) Type() value.Kind { return value.KindNull }

// Eval fails: executing a plan that still contains placeholders means the
// caller skipped BindParams (or supplied too few values).
func (p Param) Eval(*Env) (value.Value, error) {
	return value.Null, fmt.Errorf("expr: parameter $%d not bound", p.Idx)
}

// String renders the placeholder in PostgreSQL's $N syntax.
func (p Param) String() string { return fmt.Sprintf("$%d", p.Idx) }

// BindParams returns e with every Param whose value is provided replaced by
// the corresponding constant (vals[0] binds $1). Params beyond len(vals)
// are left in place and fail at Eval time; expressions without placeholders
// are returned unchanged (no copy).
func BindParams(e Expr, vals []value.Value) Expr {
	if e == nil || len(vals) == 0 || !HasParams(e) {
		return e
	}
	return rewriteParams(e, vals)
}

func rewriteParams(e Expr, vals []value.Value) Expr {
	switch x := e.(type) {
	case Param:
		if x.Idx >= 1 && x.Idx <= len(vals) {
			return Const{V: vals[x.Idx-1]}
		}
		return x
	case Cmp:
		return Cmp{x.Op, rewriteParams(x.L, vals), rewriteParams(x.R, vals)}
	case Logic:
		return Logic{x.Op, rewriteParams(x.L, vals), rewriteParams(x.R, vals)}
	case Not:
		return Not{rewriteParams(x.X, vals)}
	case IsNull:
		return IsNull{rewriteParams(x.X, vals), x.Negate}
	case Between:
		return Between{rewriteParams(x.X, vals), rewriteParams(x.Lo, vals), rewriteParams(x.Hi, vals)}
	case Arith:
		return Arith{x.Op, rewriteParams(x.L, vals), rewriteParams(x.R, vals)}
	case Func:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewriteParams(a, vals)
		}
		return Func{Name: x.Name, Args: args}
	}
	return e
}

// HasParams reports whether e contains any Param placeholder.
func HasParams(e Expr) bool {
	if e == nil {
		return false
	}
	found := false
	walk(e, func(x Expr) {
		if _, ok := x.(Param); ok {
			found = true
		}
	})
	return found
}
