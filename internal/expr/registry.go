package expr

import (
	"strings"
	"sync"

	"talign/internal/value"
)

// RegisteredFunc describes a scalar function installed at runtime with
// RegisterFunc. Registered functions sit behind the built-ins: a name
// that collides with a built-in never shadows it. Like the built-ins,
// a registered function is only invoked on non-null arguments — any
// null argument makes the call return null before dispatch (the
// dialect's strict three-valued convention).
type RegisteredFunc struct {
	// MinArity and MaxArity bound the accepted argument count;
	// MaxArity < 0 means variadic.
	MinArity, MaxArity int
	// Result is the static result kind used by the type checker.
	Result value.Kind
	// Eval computes the call. It runs once per row inside executor
	// operators, so it must be safe for concurrent use across parallel
	// fragments. A panic here is recovered at the operator boundary and
	// surfaces as a structured internal error.
	Eval func(args []value.Value) (value.Value, error)
}

var (
	funcRegMu sync.RWMutex
	funcReg   map[string]RegisteredFunc
)

// RegisterFunc installs (or replaces) a scalar function under name
// (case-insensitive) for every statement planned afterwards. It is the
// extension seam the resilience tests use to plant failing functions;
// production registrations should happen before serving queries.
func RegisterFunc(name string, fn RegisteredFunc) {
	funcRegMu.Lock()
	defer funcRegMu.Unlock()
	if funcReg == nil {
		funcReg = make(map[string]RegisteredFunc)
	}
	funcReg[strings.ToUpper(name)] = fn
}

// UnregisterFunc removes a registered function (no-op when absent).
func UnregisterFunc(name string) {
	funcRegMu.Lock()
	defer funcRegMu.Unlock()
	delete(funcReg, strings.ToUpper(name))
}

// lookupFunc resolves a registered function by its upper-cased name.
func lookupFunc(name string) (RegisteredFunc, bool) {
	funcRegMu.RLock()
	defer funcRegMu.RUnlock()
	fn, ok := funcReg[name]
	return fn, ok
}

// registeredInfo is funcInfo's registry fallback.
func registeredInfo(name string, arity int) (value.Kind, bool) {
	fn, ok := lookupFunc(name)
	if !ok || arity < fn.MinArity || (fn.MaxArity >= 0 && arity > fn.MaxArity) {
		return value.KindNull, false
	}
	return fn.Result, true
}
