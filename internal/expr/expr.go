// Package expr implements the scalar expression language used for θ
// conditions, projections and aggregate arguments: column references,
// constants, comparisons, boolean connectives (Kleene three-valued logic),
// arithmetic, and the interval functions of the paper's examples (DUR,
// PERIOD, OVERLAPS, ...). Expressions reference the evaluating tuple's own
// valid time through TStart/TEnd/TPeriod, which is how reduction rules
// express conditions such as r.T = s.T after alignment.
package expr

import (
	"fmt"
	"strings"

	"talign/internal/interval"
	"talign/internal/schema"
	"talign/internal/value"
)

// Env is the evaluation environment: the (possibly concatenated) tuple
// values and the tuple's valid time.
type Env struct {
	Vals []value.Value
	T    interval.Interval
}

// Expr is a scalar expression. Expressions are immutable after Bind.
type Expr interface {
	fmt.Stringer
	// Bind resolves column names against s and checks types; it returns a
	// bound copy of the expression.
	Bind(s schema.Schema) (Expr, error)
	// Type returns the static result kind (valid after Bind; named columns
	// report KindNull before binding).
	Type() value.Kind
	// Eval evaluates the expression; ω propagates per SQL-style semantics.
	Eval(env *Env) (value.Value, error)
}

// ---------------------------------------------------------------- constants

// Const is a literal value.
type Const struct{ V value.Value }

// Bool builds a boolean literal expression.
func Bool(b bool) Expr { return Const{value.NewBool(b)} }

// Int builds an integer literal expression.
func Int(i int64) Expr { return Const{value.NewInt(i)} }

// Float builds a float literal expression.
func Float(f float64) Expr { return Const{value.NewFloat(f)} }

// Str builds a string literal expression.
func Str(s string) Expr { return Const{value.NewString(s)} }

// Null is the ω literal.
var Null Expr = Const{value.Null}

func (c Const) Bind(schema.Schema) (Expr, error) { return c, nil }
func (c Const) Type() value.Kind                 { return c.V.Kind() }
func (c Const) Eval(*Env) (value.Value, error)   { return c.V, nil }
func (c Const) String() string                   { return c.V.String() }

// ------------------------------------------------------------------ columns

// Col is a named column reference, resolved by Bind.
type Col struct{ Name string }

// C returns a named column reference.
func C(name string) Expr { return Col{Name: name} }

func (c Col) Bind(s schema.Schema) (Expr, error) {
	i := s.Index(c.Name)
	if i < 0 {
		return nil, fmt.Errorf("expr: unknown column %q in %s", c.Name, s)
	}
	return ColIdx{Idx: i, Typ: s.Attrs[i].Type, Name: c.Name}, nil
}
func (c Col) Type() value.Kind { return value.KindNull }
func (c Col) Eval(*Env) (value.Value, error) {
	return value.Null, fmt.Errorf("expr: unbound column %q", c.Name)
}
func (c Col) String() string { return c.Name }

// ColIdx is a positional column reference (already bound).
type ColIdx struct {
	Idx  int
	Typ  value.Kind
	Name string // optional, for display
}

// CI returns a positional column reference of the given type.
func CI(idx int, typ value.Kind) Expr { return ColIdx{Idx: idx, Typ: typ} }

func (c ColIdx) Bind(s schema.Schema) (Expr, error) {
	if c.Idx < 0 || c.Idx >= s.Len() {
		return nil, fmt.Errorf("expr: column #%d out of range for %s", c.Idx, s)
	}
	return ColIdx{Idx: c.Idx, Typ: s.Attrs[c.Idx].Type, Name: s.Attrs[c.Idx].Name}, nil
}
func (c ColIdx) Type() value.Kind { return c.Typ }
func (c ColIdx) Eval(env *Env) (value.Value, error) {
	if c.Idx >= len(env.Vals) {
		return value.Null, fmt.Errorf("expr: column #%d out of range at runtime", c.Idx)
	}
	return env.Vals[c.Idx], nil
}
func (c ColIdx) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("#%d", c.Idx)
}

// ------------------------------------------------------- own-tuple valid time

// TStart evaluates to the tuple's own T.Ts as int.
type TStart struct{}

// TEnd evaluates to the tuple's own T.Te as int.
type TEnd struct{}

// TPeriod evaluates to the tuple's own T as a period value.
type TPeriod struct{}

func (TStart) Bind(schema.Schema) (Expr, error) { return TStart{}, nil }
func (TStart) Type() value.Kind                 { return value.KindInt }
func (TStart) Eval(env *Env) (value.Value, error) {
	return value.NewInt(env.T.Ts), nil
}
func (TStart) String() string { return "TS" }

func (TEnd) Bind(schema.Schema) (Expr, error) { return TEnd{}, nil }
func (TEnd) Type() value.Kind                 { return value.KindInt }
func (TEnd) Eval(env *Env) (value.Value, error) {
	return value.NewInt(env.T.Te), nil
}
func (TEnd) String() string { return "TE" }

func (TPeriod) Bind(schema.Schema) (Expr, error) { return TPeriod{}, nil }
func (TPeriod) Type() value.Kind                 { return value.KindInterval }
func (TPeriod) Eval(env *Env) (value.Value, error) {
	return value.NewInterval(env.T), nil
}
func (TPeriod) String() string { return "T" }

// -------------------------------------------------------------- comparisons

// CmpOp enumerates comparison operators.
type CmpOp uint8

// The comparison operators, in SQL spelling order (=, <>, <, <=, >, >=).
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[op]
}

// Cmp compares two expressions; any ω operand yields ω (unknown).
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eq builds l = r.
func Eq(l, r Expr) Expr { return Cmp{EQ, l, r} }

// Ne builds l <> r.
func Ne(l, r Expr) Expr { return Cmp{NE, l, r} }

// Lt builds l < r.
func Lt(l, r Expr) Expr { return Cmp{LT, l, r} }

// Le builds l <= r.
func Le(l, r Expr) Expr { return Cmp{LE, l, r} }

// Gt builds l > r.
func Gt(l, r Expr) Expr { return Cmp{GT, l, r} }

// Ge builds l >= r.
func Ge(l, r Expr) Expr { return Cmp{GE, l, r} }

func (c Cmp) Bind(s schema.Schema) (Expr, error) {
	l, err := c.L.Bind(s)
	if err != nil {
		return nil, err
	}
	r, err := c.R.Bind(s)
	if err != nil {
		return nil, err
	}
	return Cmp{c.Op, l, r}, nil
}
func (c Cmp) Type() value.Kind { return value.KindBool }
func (c Cmp) Eval(env *Env) (value.Value, error) {
	l, err := c.L.Eval(env)
	if err != nil {
		return value.Null, err
	}
	r, err := c.R.Eval(env)
	if err != nil {
		return value.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	cv := l.Compare(r)
	var b bool
	switch c.Op {
	case EQ:
		b = cv == 0
	case NE:
		b = cv != 0
	case LT:
		b = cv < 0
	case LE:
		b = cv <= 0
	case GT:
		b = cv > 0
	case GE:
		b = cv >= 0
	}
	return value.NewBool(b), nil
}
func (c Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// --------------------------------------------------------- boolean operators

// BoolOp enumerates boolean connectives.
type BoolOp uint8

// The boolean connectives.
const (
	AndOp BoolOp = iota
	OrOp
)

// Logic is AND/OR with Kleene three-valued semantics.
type Logic struct {
	Op   BoolOp
	L, R Expr
}

// And folds the operands into a conjunction (empty AND is TRUE).
func And(es ...Expr) Expr { return fold(AndOp, es) }

// Or folds the operands into a disjunction (empty OR is FALSE).
func Or(es ...Expr) Expr { return fold(OrOp, es) }

func fold(op BoolOp, es []Expr) Expr {
	if len(es) == 0 {
		return Bool(op == AndOp) // empty AND = true, empty OR = false
	}
	e := es[0]
	for _, n := range es[1:] {
		e = Logic{op, e, n}
	}
	return e
}

func (l Logic) Bind(s schema.Schema) (Expr, error) {
	a, err := l.L.Bind(s)
	if err != nil {
		return nil, err
	}
	b, err := l.R.Bind(s)
	if err != nil {
		return nil, err
	}
	return Logic{l.Op, a, b}, nil
}
func (l Logic) Type() value.Kind { return value.KindBool }
func (l Logic) Eval(env *Env) (value.Value, error) {
	a, err := l.L.Eval(env)
	if err != nil {
		return value.Null, err
	}
	// Short circuit where Kleene logic allows it.
	if !a.IsNull() {
		if l.Op == AndOp && !a.Bool() {
			return value.NewBool(false), nil
		}
		if l.Op == OrOp && a.Bool() {
			return value.NewBool(true), nil
		}
	}
	b, err := l.R.Eval(env)
	if err != nil {
		return value.Null, err
	}
	if !b.IsNull() {
		if l.Op == AndOp && !b.Bool() {
			return value.NewBool(false), nil
		}
		if l.Op == OrOp && b.Bool() {
			return value.NewBool(true), nil
		}
	}
	if a.IsNull() || b.IsNull() {
		return value.Null, nil
	}
	if l.Op == AndOp {
		return value.NewBool(a.Bool() && b.Bool()), nil
	}
	return value.NewBool(a.Bool() || b.Bool()), nil
}
func (l Logic) String() string {
	op := "AND"
	if l.Op == OrOp {
		op = "OR"
	}
	return fmt.Sprintf("(%s %s %s)", l.L, op, l.R)
}

// Not negates a boolean; ω stays ω.
type Not struct{ X Expr }

// Neg builds NOT x.
func Neg(x Expr) Expr { return Not{x} }

func (n Not) Bind(s schema.Schema) (Expr, error) {
	x, err := n.X.Bind(s)
	if err != nil {
		return nil, err
	}
	return Not{x}, nil
}
func (n Not) Type() value.Kind { return value.KindBool }
func (n Not) Eval(env *Env) (value.Value, error) {
	x, err := n.X.Eval(env)
	if err != nil {
		return value.Null, err
	}
	if x.IsNull() {
		return value.Null, nil
	}
	return value.NewBool(!x.Bool()), nil
}
func (n Not) String() string { return fmt.Sprintf("(NOT %s)", n.X) }

// IsNull tests for ω (IS NULL / IS NOT NULL).
type IsNull struct {
	X      Expr
	Negate bool
}

func (n IsNull) Bind(s schema.Schema) (Expr, error) {
	x, err := n.X.Bind(s)
	if err != nil {
		return nil, err
	}
	return IsNull{x, n.Negate}, nil
}
func (n IsNull) Type() value.Kind { return value.KindBool }
func (n IsNull) Eval(env *Env) (value.Value, error) {
	x, err := n.X.Eval(env)
	if err != nil {
		return value.Null, err
	}
	return value.NewBool(x.IsNull() != n.Negate), nil
}
func (n IsNull) String() string {
	if n.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", n.X)
	}
	return fmt.Sprintf("(%s IS NULL)", n.X)
}

// Between is lo <= x AND x <= hi with ω propagation.
type Between struct{ X, Lo, Hi Expr }

func (b Between) Bind(s schema.Schema) (Expr, error) {
	x, err := b.X.Bind(s)
	if err != nil {
		return nil, err
	}
	lo, err := b.Lo.Bind(s)
	if err != nil {
		return nil, err
	}
	hi, err := b.Hi.Bind(s)
	if err != nil {
		return nil, err
	}
	return Between{x, lo, hi}, nil
}
func (b Between) Type() value.Kind { return value.KindBool }
func (b Between) Eval(env *Env) (value.Value, error) {
	return Logic{AndOp, Cmp{LE, b.Lo, b.X}, Cmp{LE, b.X, b.Hi}}.Eval(env)
}
func (b Between) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", b.X, b.Lo, b.Hi)
}

// --------------------------------------------------------------- arithmetic

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// The arithmetic operators (+, -, *, /, %).
const (
	AddOp ArithOp = iota
	SubOp
	MulOp
	DivOp
	ModOp
)

func (op ArithOp) String() string { return [...]string{"+", "-", "*", "/", "%"}[op] }

// Arith applies int/float arithmetic; any ω operand yields ω; division by
// zero yields ω (the engine never aborts a scan mid-way on data errors).
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Add builds l + r.
func Add(l, r Expr) Expr { return Arith{AddOp, l, r} }

// Sub builds l - r.
func Sub(l, r Expr) Expr { return Arith{SubOp, l, r} }

// Mul builds l * r.
func Mul(l, r Expr) Expr { return Arith{MulOp, l, r} }

// Div builds l / r (division by zero yields ω).
func Div(l, r Expr) Expr { return Arith{DivOp, l, r} }

// Mod builds l % r over integers (zero modulus yields ω).
func Mod(l, r Expr) Expr { return Arith{ModOp, l, r} }

func (a Arith) Bind(s schema.Schema) (Expr, error) {
	l, err := a.L.Bind(s)
	if err != nil {
		return nil, err
	}
	r, err := a.R.Bind(s)
	if err != nil {
		return nil, err
	}
	return Arith{a.Op, l, r}, nil
}
func (a Arith) Type() value.Kind {
	if a.L.Type() == value.KindFloat || a.R.Type() == value.KindFloat {
		return value.KindFloat
	}
	return value.KindInt
}
func (a Arith) Eval(env *Env) (value.Value, error) {
	l, err := a.L.Eval(env)
	if err != nil {
		return value.Null, err
	}
	r, err := a.R.Eval(env)
	if err != nil {
		return value.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	if l.Kind() == value.KindInt && r.Kind() == value.KindInt {
		x, y := l.Int(), r.Int()
		switch a.Op {
		case AddOp:
			return value.NewInt(x + y), nil
		case SubOp:
			return value.NewInt(x - y), nil
		case MulOp:
			return value.NewInt(x * y), nil
		case DivOp:
			if y == 0 {
				return value.Null, nil
			}
			return value.NewInt(x / y), nil
		case ModOp:
			if y == 0 {
				return value.Null, nil
			}
			return value.NewInt(x % y), nil
		}
	}
	x, okx := l.AsFloat()
	y, oky := r.AsFloat()
	if !okx || !oky {
		return value.Null, fmt.Errorf("expr: %s applied to %s and %s", a.Op, l.Kind(), r.Kind())
	}
	switch a.Op {
	case AddOp:
		return value.NewFloat(x + y), nil
	case SubOp:
		return value.NewFloat(x - y), nil
	case MulOp:
		return value.NewFloat(x * y), nil
	case DivOp:
		if y == 0 {
			return value.Null, nil
		}
		return value.NewFloat(x / y), nil
	case ModOp:
		return value.Null, fmt.Errorf("expr: %% requires integers")
	}
	return value.Null, fmt.Errorf("expr: unknown arithmetic op")
}
func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// ---------------------------------------------------------------- functions

// Func is a built-in scalar function call.
type Func struct {
	Name string // upper case
	Args []Expr
}

// Call builds a function call; the name is case-insensitive.
func Call(name string, args ...Expr) Expr {
	return Func{Name: strings.ToUpper(name), Args: args}
}

// Dur returns DUR(p): the duration of a period value (the paper's examples
// use DUR(R.T) over propagated timestamps).
func Dur(p Expr) Expr { return Call("DUR", p) }

func (f Func) Bind(s schema.Schema) (Expr, error) {
	args := make([]Expr, len(f.Args))
	for i, a := range f.Args {
		b, err := a.Bind(s)
		if err != nil {
			return nil, err
		}
		args[i] = b
	}
	out := Func{Name: f.Name, Args: args}
	if _, err := funcInfo(f.Name, len(args)); err != nil {
		return nil, err
	}
	return out, nil
}

func (f Func) Type() value.Kind {
	info, err := funcInfo(f.Name, len(f.Args))
	if err != nil {
		return value.KindNull
	}
	return info
}

func funcInfo(name string, arity int) (value.Kind, error) {
	switch name {
	case "DUR":
		if arity == 1 || arity == 2 {
			return value.KindInt, nil
		}
	case "PERIOD":
		if arity == 2 {
			return value.KindInterval, nil
		}
	case "TSTART", "TEND":
		if arity == 1 {
			return value.KindInt, nil
		}
	case "OVERLAPS", "CONTAINS":
		if arity == 2 {
			return value.KindBool, nil
		}
	case "GREATEST", "LEAST":
		if arity >= 1 {
			return value.KindInt, nil
		}
	case "ABS":
		if arity == 1 {
			return value.KindInt, nil
		}
	}
	if k, ok := registeredInfo(name, arity); ok {
		return k, nil
	}
	return value.KindNull, fmt.Errorf("expr: unknown function %s/%d", name, arity)
}

func (f Func) Eval(env *Env) (value.Value, error) {
	// Arguments stay on the stack for the built-in arities (all ≤ 2
	// except GREATEST/LEAST): Eval runs once per row in projections.
	var buf [4]value.Value
	var args []value.Value
	if len(f.Args) <= len(buf) {
		args = buf[:len(f.Args)]
	} else {
		args = make([]value.Value, len(f.Args))
	}
	for i, a := range f.Args {
		v, err := a.Eval(env)
		if err != nil {
			return value.Null, err
		}
		args[i] = v
	}
	for _, a := range args {
		if a.IsNull() {
			return value.Null, nil
		}
	}
	switch f.Name {
	case "DUR":
		if len(args) == 1 {
			return value.NewInt(args[0].Interval().Duration()), nil
		}
		return value.NewInt(args[1].Int() - args[0].Int()), nil
	case "PERIOD":
		ts, te := args[0].Int(), args[1].Int()
		if ts >= te {
			return value.Null, nil
		}
		return value.NewInterval(interval.Interval{Ts: ts, Te: te}), nil
	case "TSTART":
		return value.NewInt(args[0].Interval().Ts), nil
	case "TEND":
		return value.NewInt(args[0].Interval().Te), nil
	case "OVERLAPS":
		return value.NewBool(args[0].Interval().Overlaps(args[1].Interval())), nil
	case "CONTAINS":
		return value.NewBool(args[0].Interval().ContainsInterval(args[1].Interval())), nil
	case "GREATEST", "LEAST":
		best := args[0]
		for _, a := range args[1:] {
			c := a.Compare(best)
			if (f.Name == "GREATEST" && c > 0) || (f.Name == "LEAST" && c < 0) {
				best = a
			}
		}
		return best, nil
	case "ABS":
		switch args[0].Kind() {
		case value.KindInt:
			x := args[0].Int()
			if x < 0 {
				x = -x
			}
			return value.NewInt(x), nil
		case value.KindFloat:
			x := args[0].Float()
			if x < 0 {
				x = -x
			}
			return value.NewFloat(x), nil
		}
		return value.Null, fmt.Errorf("expr: ABS of %s", args[0].Kind())
	}
	if fn, ok := lookupFunc(f.Name); ok {
		// Copy off the stack buffer: the registered Eval may retain its
		// argument slice, and handing it `args` directly would force the
		// buffer to escape on the built-in fast path too.
		heap := make([]value.Value, len(args))
		copy(heap, args)
		return fn.Eval(heap)
	}
	return value.Null, fmt.Errorf("expr: unknown function %s", f.Name)
}

func (f Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// ------------------------------------------------------------------ helpers

// EvalBool evaluates e as a predicate: ω (unknown) and false both report
// false, matching WHERE/ON semantics.
func EvalBool(e Expr, env *Env) (bool, error) {
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	if v.Kind() != value.KindBool {
		return false, fmt.Errorf("expr: predicate %s evaluated to %s, want bool", e, v.Kind())
	}
	return v.Bool(), nil
}

// Conjuncts flattens nested ANDs into a list.
func Conjuncts(e Expr) []Expr {
	if l, ok := e.(Logic); ok && l.Op == AndOp {
		return append(Conjuncts(l.L), Conjuncts(l.R)...)
	}
	if c, ok := e.(Const); ok && c.V.Kind() == value.KindBool && c.V.Bool() {
		return nil // drop literal TRUE
	}
	return []Expr{e}
}

// Shift rewrites every positional column reference by adding delta to its
// index (used when an expression over one input is evaluated against a
// concatenated join row).
func Shift(e Expr, delta int) Expr {
	switch x := e.(type) {
	case ColIdx:
		return ColIdx{Idx: x.Idx + delta, Typ: x.Typ, Name: x.Name}
	case Cmp:
		return Cmp{x.Op, Shift(x.L, delta), Shift(x.R, delta)}
	case Logic:
		return Logic{x.Op, Shift(x.L, delta), Shift(x.R, delta)}
	case Not:
		return Not{Shift(x.X, delta)}
	case IsNull:
		return IsNull{Shift(x.X, delta), x.Negate}
	case Between:
		return Between{Shift(x.X, delta), Shift(x.Lo, delta), Shift(x.Hi, delta)}
	case Arith:
		return Arith{x.Op, Shift(x.L, delta), Shift(x.R, delta)}
	case Func:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Shift(a, delta)
		}
		return Func{Name: x.Name, Args: args}
	}
	return e
}

// Remap rewrites every positional column reference through fn (used to
// re-target a condition from Concat(r, s) to Concat(s, r)).
func Remap(e Expr, fn func(int) int) Expr {
	switch x := e.(type) {
	case ColIdx:
		return ColIdx{Idx: fn(x.Idx), Typ: x.Typ, Name: x.Name}
	case Cmp:
		return Cmp{x.Op, Remap(x.L, fn), Remap(x.R, fn)}
	case Logic:
		return Logic{x.Op, Remap(x.L, fn), Remap(x.R, fn)}
	case Not:
		return Not{Remap(x.X, fn)}
	case IsNull:
		return IsNull{Remap(x.X, fn), x.Negate}
	case Between:
		return Between{Remap(x.X, fn), Remap(x.Lo, fn), Remap(x.Hi, fn)}
	case Arith:
		return Arith{x.Op, Remap(x.L, fn), Remap(x.R, fn)}
	case Func:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Remap(a, fn)
		}
		return Func{Name: x.Name, Args: args}
	}
	return e
}

// UsesT reports whether e references the evaluating tuple's own valid time
// (TStart/TEnd/TPeriod). The temporal algebra rejects such conditions: per
// extended snapshot reducibility, conditions over timestamps must go
// through propagated attributes instead.
func UsesT(e Expr) bool { return usesT(e) }

// MaxColIdx returns the largest positional column index referenced by e, or
// -1 if none.
func MaxColIdx(e Expr) int {
	max := -1
	walk(e, func(x Expr) {
		if c, ok := x.(ColIdx); ok && c.Idx > max {
			max = c.Idx
		}
	})
	return max
}

// MinColIdx returns the smallest positional column index referenced by e,
// or -1 if none.
func MinColIdx(e Expr) int {
	min := -1
	walk(e, func(x Expr) {
		if c, ok := x.(ColIdx); ok && (min == -1 || c.Idx < min) {
			min = c.Idx
		}
	})
	return min
}

func walk(e Expr, fn func(Expr)) {
	fn(e)
	switch x := e.(type) {
	case Cmp:
		walk(x.L, fn)
		walk(x.R, fn)
	case Logic:
		walk(x.L, fn)
		walk(x.R, fn)
	case Not:
		walk(x.X, fn)
	case IsNull:
		walk(x.X, fn)
	case Between:
		walk(x.X, fn)
		walk(x.Lo, fn)
		walk(x.Hi, fn)
	case Arith:
		walk(x.L, fn)
		walk(x.R, fn)
	case Func:
		for _, a := range x.Args {
			walk(a, fn)
		}
	}
}

// EquiPair is an equality conjunct l = r where l references only columns of
// the left input (indexes < split) and r only columns of the right input
// (indexes >= split, reported relative to the right input).
type EquiPair struct {
	Left, Right Expr
}

// SplitJoinCondition partitions a join condition bound against the
// concatenated schema into equi-join pairs and a residual condition. split
// is the arity of the left input. The residual is nil when everything was
// extracted.
func SplitJoinCondition(cond Expr, split int) (pairs []EquiPair, residual Expr) {
	var rest []Expr
	for _, c := range Conjuncts(cond) {
		if cmp, ok := c.(Cmp); ok && cmp.Op == EQ {
			lmin, lmax := MinColIdx(cmp.L), MaxColIdx(cmp.L)
			rmin, rmax := MinColIdx(cmp.R), MaxColIdx(cmp.R)
			lOnLeft := lmin >= 0 && lmax < split && !usesT(cmp.L)
			rOnRight := rmin >= split && !usesT(cmp.R)
			lOnRight := lmin >= split && !usesT(cmp.L)
			rOnLeft := rmin >= 0 && rmax < split && !usesT(cmp.R)
			if lOnLeft && rOnRight {
				pairs = append(pairs, EquiPair{Left: cmp.L, Right: Shift(cmp.R, -split)})
				continue
			}
			if lOnRight && rOnLeft {
				pairs = append(pairs, EquiPair{Left: cmp.R, Right: Shift(cmp.L, -split)})
				continue
			}
		}
		rest = append(rest, c)
	}
	if len(rest) > 0 {
		residual = And(rest...)
	}
	return pairs, residual
}

func usesT(e Expr) bool {
	found := false
	walk(e, func(x Expr) {
		switch x.(type) {
		case TStart, TEnd, TPeriod:
			found = true
		}
	})
	return found
}
