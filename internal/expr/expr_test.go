package expr

import (
	"strings"
	"testing"

	"talign/internal/interval"
	"talign/internal/schema"
	"talign/internal/value"
)

func sch() schema.Schema {
	return schema.MustNew(
		schema.Attr{Name: "a", Type: value.KindInt},
		schema.Attr{Name: "b", Type: value.KindString},
		schema.Attr{Name: "p", Type: value.KindInterval},
	)
}

func env(vals ...value.Value) *Env {
	return &Env{Vals: vals, T: interval.New(10, 20)}
}

func evalOn(t *testing.T, e Expr, en *Env) value.Value {
	t.Helper()
	bound, err := e.Bind(sch())
	if err != nil {
		t.Fatalf("bind %s: %v", e, err)
	}
	v, err := bound.Eval(en)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestColumnBindingAndEval(t *testing.T) {
	en := env(value.NewInt(7), value.NewString("x"), value.NewInterval(interval.New(1, 5)))
	if got := evalOn(t, C("a"), en); got.Int() != 7 {
		t.Fatalf("col a: %v", got)
	}
	if got := evalOn(t, C("B"), en); got.Str() != "x" {
		t.Fatalf("case-insensitive col b: %v", got)
	}
	if _, err := C("zz").Bind(sch()); err == nil {
		t.Fatal("unknown column must fail to bind")
	}
	if _, err := (Col{Name: "a"}).Eval(en); err == nil {
		t.Fatal("unbound column must fail to eval")
	}
}

func TestComparisonsAndNulls(t *testing.T) {
	en := env(value.NewInt(7), value.NewString("x"), value.Null)
	if got := evalOn(t, Lt(C("a"), Int(9)), en); !got.Bool() {
		t.Fatal("7 < 9")
	}
	if got := evalOn(t, Eq(C("a"), Int(7)), en); !got.Bool() {
		t.Fatal("7 = 7")
	}
	// ω comparisons are unknown.
	if got := evalOn(t, Eq(C("p"), C("p")), en); !got.IsNull() {
		t.Fatal("ω = ω must be unknown")
	}
	ok, err := EvalBool(Cmp{EQ, Null, Null}, en)
	if err != nil || ok {
		t.Fatal("unknown predicates are false in WHERE")
	}
}

func TestKleeneLogic(t *testing.T) {
	en := env(value.NewInt(7), value.NewString("x"), value.Null)
	unknown := Eq(Null, Int(1))
	cases := []struct {
		name string
		e    Expr
		want any // true, false or nil for unknown
	}{
		{"false AND unknown", And(Bool(false), unknown), false},
		{"unknown AND false", And(unknown, Bool(false)), false},
		{"true AND unknown", And(Bool(true), unknown), nil},
		{"true OR unknown", Or(Bool(true), unknown), true},
		{"unknown OR true", Or(unknown, Bool(true)), true},
		{"false OR unknown", Or(Bool(false), unknown), nil},
		{"NOT unknown", Neg(unknown), nil},
		{"NOT true", Neg(Bool(true)), false},
		{"empty AND", And(), true},
		{"empty OR", Or(), false},
	}
	for _, c := range cases {
		got := evalOn(t, c.e, en)
		switch want := c.want.(type) {
		case bool:
			if got.IsNull() || got.Bool() != want {
				t.Errorf("%s: got %v want %v", c.name, got, want)
			}
		case nil:
			if !got.IsNull() {
				t.Errorf("%s: got %v want unknown", c.name, got)
			}
		}
	}
}

func TestIsNullAndBetween(t *testing.T) {
	en := env(value.NewInt(7), value.NewString("x"), value.Null)
	if got := evalOn(t, IsNull{X: C("p")}, en); !got.Bool() {
		t.Fatal("p IS NULL")
	}
	if got := evalOn(t, IsNull{X: C("a"), Negate: true}, en); !got.Bool() {
		t.Fatal("a IS NOT NULL")
	}
	if got := evalOn(t, Between{X: C("a"), Lo: Int(5), Hi: Int(9)}, en); !got.Bool() {
		t.Fatal("7 BETWEEN 5 AND 9")
	}
	if got := evalOn(t, Between{X: C("a"), Lo: Int(8), Hi: Int(9)}, en); got.Bool() {
		t.Fatal("7 NOT BETWEEN 8 AND 9")
	}
}

func TestArithmetic(t *testing.T) {
	en := env(value.NewInt(7), value.NewString("x"), value.Null)
	if got := evalOn(t, Add(C("a"), Int(3)), en); got.Int() != 10 {
		t.Fatalf("7+3: %v", got)
	}
	if got := evalOn(t, Mul(Int(4), Float(2.5)), en); got.Float() != 10 {
		t.Fatalf("4*2.5: %v", got)
	}
	if got := evalOn(t, Div(Int(7), Int(2)), en); got.Int() != 3 {
		t.Fatalf("integer division: %v", got)
	}
	if got := evalOn(t, Div(Int(7), Int(0)), en); !got.IsNull() {
		t.Fatalf("division by zero must be ω: %v", got)
	}
	if got := evalOn(t, Mod(Int(7), Int(4)), en); got.Int() != 3 {
		t.Fatalf("7%%4: %v", got)
	}
	if got := evalOn(t, Sub(Null, Int(1)), en); !got.IsNull() {
		t.Fatalf("ω-1 must be ω: %v", got)
	}
}

func TestIntervalFunctions(t *testing.T) {
	en := env(value.NewInt(7), value.NewString("x"), value.NewInterval(interval.New(3, 9)))
	if got := evalOn(t, Dur(C("p")), en); got.Int() != 6 {
		t.Fatalf("DUR: %v", got)
	}
	if got := evalOn(t, Call("DUR", Int(4), Int(9)), en); got.Int() != 5 {
		t.Fatalf("DUR/2: %v", got)
	}
	if got := evalOn(t, Call("PERIOD", Int(1), Int(4)), en); got.Interval() != interval.New(1, 4) {
		t.Fatalf("PERIOD: %v", got)
	}
	if got := evalOn(t, Call("PERIOD", Int(4), Int(4)), en); !got.IsNull() {
		t.Fatalf("empty PERIOD must be ω: %v", got)
	}
	if got := evalOn(t, Call("TSTART", C("p")), en); got.Int() != 3 {
		t.Fatalf("TSTART: %v", got)
	}
	if got := evalOn(t, Call("TEND", C("p")), en); got.Int() != 9 {
		t.Fatalf("TEND: %v", got)
	}
	if got := evalOn(t, Call("OVERLAPS", C("p"), Const{value.NewInterval(interval.New(8, 12))}), en); !got.Bool() {
		t.Fatalf("OVERLAPS: %v", got)
	}
	if got := evalOn(t, Call("CONTAINS", C("p"), Const{value.NewInterval(interval.New(4, 6))}), en); !got.Bool() {
		t.Fatalf("CONTAINS: %v", got)
	}
	if got := evalOn(t, Call("GREATEST", Int(3), Int(9), Int(5)), en); got.Int() != 9 {
		t.Fatalf("GREATEST: %v", got)
	}
	if got := evalOn(t, Call("LEAST", Int(3), Int(9), Int(5)), en); got.Int() != 3 {
		t.Fatalf("LEAST: %v", got)
	}
	if got := evalOn(t, Call("ABS", Int(-4)), en); got.Int() != 4 {
		t.Fatalf("ABS: %v", got)
	}
	if _, err := Call("NOPE", Int(1)).Bind(sch()); err == nil {
		t.Fatal("unknown function must fail to bind")
	}
	if _, err := Call("DUR").Bind(sch()); err == nil {
		t.Fatal("wrong arity must fail to bind")
	}
}

func TestOwnTupleTime(t *testing.T) {
	en := env(value.NewInt(7), value.NewString("x"), value.Null)
	if got := evalOn(t, TStart{}, en); got.Int() != 10 {
		t.Fatalf("TS: %v", got)
	}
	if got := evalOn(t, TEnd{}, en); got.Int() != 20 {
		t.Fatalf("TE: %v", got)
	}
	if got := evalOn(t, TPeriod{}, en); got.Interval() != interval.New(10, 20) {
		t.Fatalf("T: %v", got)
	}
	if !UsesT(And(Bool(true), Gt(TEnd{}, Int(0)))) {
		t.Fatal("UsesT must see TEnd")
	}
	if UsesT(Gt(C("a"), Int(0))) {
		t.Fatal("UsesT false positive")
	}
}

func TestConjunctsShiftRemap(t *testing.T) {
	e := And(Eq(CI(0, value.KindInt), CI(2, value.KindInt)), Gt(CI(1, value.KindInt), Int(5)))
	cj := Conjuncts(e)
	if len(cj) != 2 {
		t.Fatalf("conjuncts: %v", cj)
	}
	if len(Conjuncts(Bool(true))) != 0 {
		t.Fatal("literal TRUE must vanish")
	}
	shifted := Shift(e, 10)
	if MinColIdx(shifted) != 10 || MaxColIdx(shifted) != 12 {
		t.Fatalf("shift: min=%d max=%d", MinColIdx(shifted), MaxColIdx(shifted))
	}
	swapped := Remap(e, func(i int) int { return 5 - i })
	if MaxColIdx(swapped) != 5 {
		t.Fatalf("remap: %d", MaxColIdx(swapped))
	}
	if MaxColIdx(Int(1)) != -1 || MinColIdx(Int(1)) != -1 {
		t.Fatal("no columns: -1")
	}
}

func TestSplitJoinCondition(t *testing.T) {
	// Layout: left columns 0..1, right columns 2..3 (split = 2).
	cond := And(
		Eq(CI(0, value.KindInt), CI(2, value.KindInt)),       // equi
		Eq(CI(3, value.KindString), CI(1, value.KindString)), // equi, reversed sides
		Gt(CI(1, value.KindInt), CI(3, value.KindInt)),       // residual
		Gt(TEnd{}, Int(0)), // residual (uses T)
	)
	pairs, residual := SplitJoinCondition(cond, 2)
	if len(pairs) != 2 {
		t.Fatalf("pairs: %v", pairs)
	}
	// Right expressions are rebased to the right input.
	if MaxColIdx(pairs[0].Right) != 0 || MaxColIdx(pairs[1].Right) != 1 {
		t.Fatalf("right rebase wrong: %v", pairs)
	}
	if residual == nil || len(Conjuncts(residual)) != 2 {
		t.Fatalf("residual: %v", residual)
	}
	// No extractable conjuncts.
	pairs2, res2 := SplitJoinCondition(Gt(CI(0, value.KindInt), CI(2, value.KindInt)), 2)
	if len(pairs2) != 0 || res2 == nil {
		t.Fatalf("non-equi split: %v %v", pairs2, res2)
	}
}

func TestStringRendering(t *testing.T) {
	e := And(Eq(C("a"), Int(1)), Between{X: C("a"), Lo: Int(0), Hi: Int(9)})
	s := e.String()
	for _, part := range []string{"a", "=", "AND", "BETWEEN"} {
		if !strings.Contains(s, part) {
			t.Fatalf("rendering missing %q: %s", part, s)
		}
	}
}
