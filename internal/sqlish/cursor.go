package sqlish

import (
	"context"

	"talign/internal/exec"
	"talign/internal/plan"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// Cursor is an incremental result stream over one execution of a Prepared
// statement: it pulls batches straight out of the batch executor instead
// of materializing the result relation, which is what the public talign
// package's Rows and the server's wire-level row streaming are built on.
// The execution's context is armed into every operator, so cancelling it
// aborts the pipeline cooperatively between batches; reaching a LIMIT
// stops the pipeline without draining it.
//
// A Cursor is single-use and not safe for concurrent use; Close is
// idempotent and must be called (it tears down exchange workers and
// releases operator state).
type Cursor struct {
	it     exec.Iterator
	sch    schema.Schema
	opened bool
	closed bool
	err    error
}

// Stream runs the Execute stage incrementally: it binds params to $1..$N,
// builds a fresh executor tree under ctx and returns a cursor over its
// batches. EXPLAIN statements cannot be streamed (use Explain); an
// ANALYZE statement never reaches Prepare in the first place.
func (p *Prepared) Stream(ctx context.Context, params ...value.Value) (*Cursor, error) {
	return p.StreamBudget(ctx, nil, params...)
}

// StreamBudget is Stream under a resource budget: every operator of the
// built tree charges its output batches against budget, and exhausting
// it aborts the execution with a structured *exec.BudgetError. A nil
// budget streams unbounded.
func (p *Prepared) StreamBudget(ctx context.Context, budget *exec.Budget, params ...value.Value) (*Cursor, error) {
	if p.explain {
		return nil, requestError("cannot Stream an EXPLAIN statement")
	}
	if err := plan.CheckParams(p.NumParams, params); err != nil {
		return nil, requestError("%s", paramErrMsg(err))
	}
	ec := plan.NewExecCtxContext(ctx, params...)
	ec.Budget = budget
	it, err := p.root.Build(ec)
	if err != nil {
		return nil, err
	}
	return &Cursor{it: it, sch: p.root.Schema()}, nil
}

// Schema describes the cursor's output tuples' nontemporal attributes.
func (c *Cursor) Schema() schema.Schema { return c.sch }

// Next returns the next batch of tuples; an empty batch signals
// exhaustion. The batch follows the executor's ownership contract: it is
// valid only until the following Next or Close call, so consumers that
// keep tuples must copy them out. After an error (including context
// cancellation) the cursor is done and Next keeps returning that error.
func (c *Cursor) Next() ([]tuple.Tuple, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.closed {
		return nil, nil
	}
	if !c.opened {
		c.opened = true
		if err := c.it.Open(); err != nil {
			c.err = err
			c.Close()
			return nil, err
		}
	}
	b, err := c.it.Next()
	if err != nil {
		c.err = err
		c.Close()
		return nil, err
	}
	if len(b) == 0 {
		c.Close()
		return nil, nil
	}
	return b, nil
}

// Close releases the execution's resources (idempotent). Closing before
// exhaustion stops the pipeline early — upstream operators, exchange
// workers included, are torn down without draining.
func (c *Cursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if !c.opened {
		c.opened = true
		// The tree was never opened: Close alone must still release any
		// resources operators pre-allocated at build time.
	}
	return c.it.Close()
}

// Err returns the error that terminated the cursor, if any.
func (c *Cursor) Err() error { return c.err }
