// Package sqlish implements the SQL dialect of Sec. 6: the standard SELECT
// fragment (WITH, joins including outer joins, WHERE, GROUP BY, HAVING, set
// operations, ORDER BY) extended with the paper's keywords:
//
//	FROM (r ALIGN s ON θ) x            -- temporal alignment (Sec. 6.2)
//	FROM (r NORMALIZE s USING (b)) x   -- temporal normalization (Sec. 6.3)
//	SELECT ABSORB ...                  -- absorb instead of DISTINCT
//
// Valid time is exposed through the virtual columns Ts and Te: selecting
// them (unaliased) sets the result's valid time; aliasing them (SELECT Ts
// AS Us, Te AS Ue, *) propagates the timestamps as ordinary data, which is
// how queries obtain extended snapshot reducibility.
package sqlish

import (
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
	tokParam  // $N parameter placeholder; text holds the digits
)

type token struct {
	kind tokKind
	text string // identifiers are lower-cased; symbols canonical
	pos  int
}

// lexer tokenizes the input.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(l.src[start:l.pos]), pos: start})
		case c >= '0' && c <= '9':
			seenDot := false
			for l.pos < len(l.src) {
				d := l.src[l.pos]
				if d == '.' && !seenDot {
					seenDot = true
					l.pos++
					continue
				}
				if d < '0' || d > '9' {
					break
				}
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case c == '$':
			l.pos++
			digits := l.pos
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			if l.pos == digits {
				return nil, newErrorAt(l.src, start, "expected parameter number after $")
			}
			l.toks = append(l.toks, token{kind: tokParam, text: l.src[digits:l.pos], pos: start})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, newErrorAt(l.src, start, "unterminated string")
				}
				if l.src[l.pos] == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
		default:
			sym := l.symbol()
			if sym == "" {
				return nil, newErrorAt(l.src, l.pos, "unexpected character %q", c)
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: sym, pos: start})
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

// symbol consumes one operator or punctuation token.
func (l *lexer) symbol() string {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		if two == "!=" {
			return "<>"
		}
		return two
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', ',', '.', '*', '+', '-', '/', '%', '=', '<', '>':
		l.pos++
		return string(c)
	}
	return ""
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// reserved words that cannot be used as implicit aliases.
var reserved = map[string]bool{
	"select": true, "distinct": true, "absorb": true, "from": true,
	"where": true, "group": true, "by": true, "having": true,
	"order": true, "asc": true, "desc": true, "as": true, "with": true,
	"align": true, "normalize": true, "using": true, "on": true,
	"join": true, "inner": true, "left": true, "right": true, "full": true,
	"outer": true, "cross": true, "and": true, "or": true, "not": true,
	"between": true, "is": true, "null": true, "union": true,
	"intersect": true, "except": true, "true": true, "false": true,
	"explain": true, "analyze": true, "limit": true, "offset": true,
}
