package sqlish

import (
	"math/rand"
	"strings"
	"testing"

	"talign/internal/exec"
	"talign/internal/interval"
	"talign/internal/plan"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/storage"
	"talign/internal/tuple"
	"talign/internal/value"
)

// persist round-trips rels through an on-disk store and returns their
// segment-backed images (small segments so multi-segment pruning paths
// engage even on tiny relations). The store must outlive the returned
// relations — their columnar images alias its file mappings.
func persist(t *testing.T, rels map[string]*relation.Relation, segRows int) (map[string]*relation.Relation, *storage.Store) {
	t.Helper()
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SegmentRows = segRows
	out := make(map[string]*relation.Relation, len(rels))
	for name, rel := range rels {
		if err := st.CreateTable(name, rel); err != nil {
			t.Fatalf("persist %s: %v", name, err)
		}
		loaded, err := st.Load(name)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if rel.Len() > 0 && loaded.Segments() == nil {
			t.Fatalf("loaded %s has no segments", name)
		}
		out[name] = loaded
	}
	return out, st
}

// TestDiskVsMemoryDifferential runs the optimizer differential's full
// query corpus against two engines over the same data — one on
// in-memory relations, one on segment-backed relations loaded from an
// on-disk store — and requires identical results. This is the
// disk-serving path's equivalence proof: mmap-backed columnar views,
// segment scans and zone-map pruning must be invisible to every query
// shape.
func TestDiskVsMemoryDifferential(t *testing.T) {
	attrs := []schema.Attr{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
	}
	for seed := 0; seed < 10; seed++ {
		rng := rand.New(rand.NewSource(int64(200 + seed)))
		cfg := randrel.DefaultConfig(attrs...)
		cfg.MaxTuples = 12
		rels := map[string]*relation.Relation{
			"r": randrel.Generate(rng, cfg),
			"s": randrel.Generate(rng, cfg),
			"u": randrel.Generate(rng, cfg),
		}
		disk, st := persist(t, rels, 4)

		mem := NewEngine(plan.DefaultFlags())
		onDisk := NewEngine(plan.DefaultFlags())
		for name := range rels {
			mem.Register(name, rels[name])
			onDisk.Register(name, disk[name])
		}
		for _, q := range diffQueries {
			want, _, err := mem.Query(q)
			if err != nil {
				t.Fatalf("seed %d: memory %s: %v", seed, q, err)
			}
			got, _, err := onDisk.Query(q)
			if err != nil {
				t.Fatalf("seed %d: disk %s: %v", seed, q, err)
			}
			if !relation.SetEqual(got, want) {
				onlyG, onlyW := relation.Diff(got, want)
				t.Fatalf("seed %d: disk diverged on %s\nonly disk: %v\nonly memory: %v", seed, q, onlyG, onlyW)
			}
		}
		st.Close()
	}
}

// pruningQueries adds valid-time predicates to the corpus shapes, since
// TS/TE conjuncts are the primary pruning targets of an
// interval-partitioned layout.
var pruningQueries = append([]string{
	"SELECT a, b, Ts, Te FROM r WHERE Ts >= 6",
	"SELECT a, b, Ts, Te FROM r WHERE Te <= 4",
	"SELECT a, b FROM r WHERE Ts BETWEEN 2 AND 7 AND a >= 1",
	"SELECT a, b FROM r WHERE a = 999",
	"SELECT q.a, s.b FROM (SELECT a, b FROM r WHERE Ts >= 5) q JOIN s ON q.a = s.a",
	"SELECT a, Ts, Te FROM ((SELECT a, b FROM r WHERE Ts >= 5) q ALIGN s ON q.a = s.a) x",
}, diffQueries...)

// TestPruningDifferential proves zone-map pruning never changes
// results: the same disk-backed data queried with pruning enabled and
// with Flags.DisablePruning must agree on the whole corpus — while the
// process-wide counters prove pruning actually engaged.
func TestPruningDifferential(t *testing.T) {
	attrs := []schema.Attr{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
	}
	prunedBefore := exec.SegmentsPruned()
	for seed := 0; seed < 10; seed++ {
		rng := rand.New(rand.NewSource(int64(300 + seed)))
		cfg := randrel.DefaultConfig(attrs...)
		cfg.MaxTuples = 16
		rels := map[string]*relation.Relation{
			"r": randrel.Generate(rng, cfg),
			"s": randrel.Generate(rng, cfg),
			"u": randrel.Generate(rng, cfg),
		}
		disk, st := persist(t, rels, 4)

		pruning := NewEngine(plan.DefaultFlags())
		noPruneFlags := plan.DefaultFlags()
		noPruneFlags.DisablePruning = true
		noPruning := NewEngine(noPruneFlags)
		for name := range disk {
			pruning.Register(name, disk[name])
			noPruning.Register(name, disk[name])
		}
		for _, q := range pruningQueries {
			want, _, err := noPruning.Query(q)
			if err != nil {
				t.Fatalf("seed %d: pruning-off %s: %v", seed, q, err)
			}
			got, _, err := pruning.Query(q)
			if err != nil {
				t.Fatalf("seed %d: pruning-on %s: %v", seed, q, err)
			}
			if !relation.SetEqual(got, want) {
				onlyG, onlyW := relation.Diff(got, want)
				t.Fatalf("seed %d: pruning changed results of %s\nonly on: %v\nonly off: %v", seed, q, onlyG, onlyW)
			}
		}
		st.Close()
	}
	if exec.SegmentsPruned() == prunedBefore {
		t.Fatal("pruning never engaged across the whole differential — the on-path is not being exercised")
	}
}

// intervalTable builds a relation with n rows at ts=i (duration dur) so
// segment zones partition time predictably.
func intervalTable(n int, dur int64) *relation.Relation {
	sch := schema.MustNew(schema.Attr{Name: "a", Type: value.KindInt})
	rel := relation.New(sch)
	for i := 0; i < n; i++ {
		rel.MustAppend(tuple.Tuple{
			Vals: []value.Value{value.NewInt(int64(i % 7))},
			T:    interval.New(int64(i), int64(i)+dur),
		})
	}
	return rel
}

// TestExplainAnalyzeSegmentCounters is the EXPLAIN ANALYZE regression
// for the pruning counters: a valid-time filter over a 10-segment table
// must report the exact segments scanned vs pruned on its scan node,
// and a time-filtered ALIGN (the acceptance shape) must prune at least
// one segment.
func TestExplainAnalyzeSegmentCounters(t *testing.T) {
	rels := map[string]*relation.Relation{
		"r": intervalTable(100, 3),
		"s": intervalTable(40, 5),
	}
	disk, st := persist(t, rels, 10)
	defer st.Close()
	e := NewEngine(plan.DefaultFlags())
	for name := range disk {
		e.Register(name, disk[name])
	}

	// Segments hold rows [10i, 10i+9] with MinTS=10i, MaxTS=10i+9; the
	// filter Ts >= 50 disqualifies segments 0-4 (MaxTS 9..49) exactly.
	_, text, err := e.Query("EXPLAIN ANALYZE SELECT a, Ts, Te FROM r WHERE Ts >= 50")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "(segments scanned=5 pruned=5)") {
		t.Fatalf("EXPLAIN ANALYZE misreports segment pruning:\n%s", text)
	}
	if !strings.Contains(text, "[prune: TS >= 50]") {
		t.Fatalf("EXPLAIN ANALYZE scan label lacks prune bounds:\n%s", text)
	}

	// The acceptance shape: a valid-time-filtered ALIGN over
	// multi-segment data reports at least one pruned segment.
	_, text, err = e.Query("EXPLAIN ANALYZE SELECT a, Ts, Te FROM ((SELECT a FROM r WHERE Ts >= 50) q ALIGN s ON q.a = s.a) x")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "segments scanned=5 pruned=5") {
		t.Fatalf("time-filtered ALIGN does not show pruning:\n%s", text)
	}
}
