package sqlish

import (
	"strings"
	"testing"

	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/tuple"
	"talign/internal/value"
)

// newHotelEngine loads the paper's running example (Fig. 1): R with
// reservations and P with price categories, months since 2012/1.
func newHotelEngine() *Engine {
	e := NewEngine(plan.DefaultFlags())
	e.Register("r", relation.NewBuilder("n string").
		Row(0, 7, "Ann").
		Row(1, 5, "Joe").
		Row(7, 11, "Ann").
		MustBuild())
	e.Register("p", relation.NewBuilder("a int", "mn int", "mx int").
		Row(0, 5, 50, 1, 2).
		Row(0, 5, 40, 3, 7).
		Row(0, 12, 30, 8, 12).
		Row(9, 12, 50, 1, 2).
		Row(9, 12, 40, 3, 7).
		MustBuild())
	return e
}

func mustEqual(t *testing.T, got, want *relation.Relation) {
	t.Helper()
	if !relation.SetEqual(got, want) {
		onlyGot, onlyWant := relation.Diff(got, want)
		t.Fatalf("relations differ\nonly got:  %v\nonly want: %v\ngot:\n%s", onlyGot, onlyWant, got)
	}
}

// TestPaperQ1SQL runs the paper's Sec. 6.2 formulation of query Q1: the
// temporal left outer join via two ALIGN from-items, timestamp equality in
// the join condition, and ABSORB.
func TestPaperQ1SQL(t *testing.T) {
	e := newHotelEngine()
	got, _, err := e.Query(`
		WITH r2 AS (SELECT Ts Us, Te Ue, * FROM r)
		SELECT ABSORB n, a, mn, mx, x.Ts, x.Te
		FROM (r2 ALIGN p ON DUR(Us, Ue) BETWEEN mn AND mx) x
		LEFT OUTER JOIN (p ALIGN r2 ON DUR(Us, Ue) BETWEEN mn AND mx) y
		ON DUR(Us, Ue) BETWEEN y.mn AND y.mx AND x.Ts = y.Ts AND x.Te = y.Te`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	want := relation.NewBuilder("n string", "a int", "mn int", "mx int").
		Row(0, 5, "Ann", 40, 3, 7).
		Row(1, 5, "Joe", 40, 3, 7).
		Row(5, 7, "Ann", nil, nil, nil).
		Row(7, 9, "Ann", nil, nil, nil).
		Row(9, 11, "Ann", 40, 3, 7).
		MustBuild()
	mustEqual(t, got, want)
}

// TestPaperQ2SQL runs the paper's Sec. 6.3 formulation of query Q2:
// temporal aggregation via NORMALIZE with an empty USING list.
func TestPaperQ2SQL(t *testing.T) {
	e := newHotelEngine()
	got, _, err := e.Query(`
		WITH r2 AS (SELECT Ts Us, Te Ue, * FROM r)
		SELECT AVG(DUR(Us, Ue)) avg_dur, Ts, Te
		FROM (r2 r1 NORMALIZE r2 r3 USING ()) x
		GROUP BY Ts, Te`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	want := relation.NewBuilder("avg_dur float").
		Row(0, 1, 7.0).
		Row(1, 5, 5.5).
		Row(5, 7, 7.0).
		Row(7, 11, 4.0).
		MustBuild()
	mustEqual(t, got, want)
}

func TestSelectStarKeepsValidTime(t *testing.T) {
	e := newHotelEngine()
	got := e.MustQuery(`SELECT * FROM r WHERE n = 'Ann'`)
	want := relation.NewBuilder("n string").
		Row(0, 7, "Ann").
		Row(7, 11, "Ann").
		MustBuild()
	mustEqual(t, got, want)
}

func TestTimestampPropagation(t *testing.T) {
	e := newHotelEngine()
	got := e.MustQuery(`SELECT Ts Us, Te Ue, * FROM r WHERE n = 'Joe'`)
	want := relation.NewBuilder("us int", "ue int", "n string").
		Row(1, 5, 1, 5, "Joe").
		MustBuild()
	mustEqual(t, got, want)
}

func TestNormalizeWithGrouping(t *testing.T) {
	e := newHotelEngine()
	got := e.MustQuery(`SELECT * FROM (r a NORMALIZE r b USING (n)) x`)
	// Ann's reservations meet at 7 but do not overlap; Joe splits nothing
	// within Ann's group.
	want := relation.NewBuilder("n string").
		Row(0, 7, "Ann").
		Row(7, 11, "Ann").
		Row(1, 5, "Joe").
		MustBuild()
	mustEqual(t, got, want)
}

func TestCountGroupByName(t *testing.T) {
	e := newHotelEngine()
	got := e.MustQuery(`
		SELECT n, COUNT(*) c, Ts, Te
		FROM (r a NORMALIZE r b USING ()) x
		GROUP BY n, Ts, Te`)
	want := relation.NewBuilder("n string", "c int").
		Row(0, 1, "Ann", 1).
		Row(1, 5, "Ann", 1).
		Row(5, 7, "Ann", 1).
		Row(1, 5, "Joe", 1).
		Row(7, 11, "Ann", 1).
		MustBuild()
	mustEqual(t, got, want)
}

func TestSetOperations(t *testing.T) {
	e := NewEngine(plan.DefaultFlags())
	e.Register("a", relation.NewBuilder("x string").Row(0, 4, "k").MustBuild())
	e.Register("b", relation.NewBuilder("x string").Row(2, 6, "k").MustBuild())
	// Nontemporal union over normalized inputs (the Table 2 reduction
	// expressed in SQL).
	got := e.MustQuery(`
		SELECT * FROM (a a1 NORMALIZE b b1 USING (x)) x
		UNION
		SELECT * FROM (b b2 NORMALIZE a a2 USING (x)) y`)
	want := relation.NewBuilder("x string").
		Row(0, 2, "k").
		Row(2, 4, "k").
		Row(4, 6, "k").
		MustBuild()
	mustEqual(t, got, want)
}

func TestExplain(t *testing.T) {
	e := newHotelEngine()
	_, text, err := e.Query(`EXPLAIN SELECT * FROM (r a ALIGN p b ON true) x`)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	for _, wantPart := range []string{"Adjust align", "join", "SeqScan"} {
		if !strings.Contains(text, wantPart) {
			t.Fatalf("explain output missing %q:\n%s", wantPart, text)
		}
	}
}

func TestOrderBy(t *testing.T) {
	e := newHotelEngine()
	got := e.MustQuery(`SELECT n FROM r ORDER BY n DESC, Ts`)
	if got.Len() != 3 {
		t.Fatalf("want 3 rows, got %d", got.Len())
	}
	if got.Tuples[0].Vals[0].Str() != "Joe" {
		t.Fatalf("DESC order broken: first row %v", got.Tuples[0])
	}
}

func TestHaving(t *testing.T) {
	e := newHotelEngine()
	got := e.MustQuery(`
		SELECT n, COUNT(*) c FROM r GROUP BY n HAVING COUNT(*) > 1`)
	// Without GROUP BY Ts, Te the result is nontemporal (zero interval).
	want := relation.NewBuilder("n string", "c int").MustBuild()
	want.MustAppend(tuple.Tuple{Vals: []value.Value{value.NewString("Ann"), value.NewInt(2)}})
	mustEqual(t, got, want)
}

func TestErrors(t *testing.T) {
	e := newHotelEngine()
	cases := []struct {
		name, sql string
	}{
		{"unknown table", `SELECT * FROM nope`},
		{"unknown column", `SELECT zz FROM r`},
		{"align without alias", `SELECT * FROM (r ALIGN p ON true)`},
		{"aggregate in where", `SELECT n FROM r WHERE COUNT(*) > 1`},
		{"ts without te", `SELECT n, Ts FROM r`},
		{"group ts without te", `SELECT n, COUNT(*) FROM r GROUP BY n, Ts`},
		{"bad set op arity", `SELECT n FROM r UNION SELECT a, mn FROM p`},
		{"unterminated string", `SELECT 'x FROM r`},
		{"trailing garbage", `SELECT n FROM r )`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := e.Query(tc.sql); err == nil {
				t.Fatalf("expected error for %s", tc.sql)
			}
		})
	}
}

func TestWithShadowsCatalog(t *testing.T) {
	e := newHotelEngine()
	got := e.MustQuery(`WITH r AS (SELECT * FROM r WHERE n = 'Joe') SELECT * FROM r`)
	want := relation.NewBuilder("n string").Row(1, 5, "Joe").MustBuild()
	mustEqual(t, got, want)
}

func TestArithmeticAndComparisons(t *testing.T) {
	e := newHotelEngine()
	got := e.MustQuery(`SELECT a, a * 2 + 1 d FROM p WHERE a >= 40 AND NOT (a = 50) OR a < 0`)
	want := relation.NewBuilder("a int", "d int").
		Row(0, 5, 40, 81).
		Row(9, 12, 40, 81).
		MustBuild()
	mustEqual(t, got, want)
}
