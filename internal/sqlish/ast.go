package sqlish

// AST node types for the SQL dialect. Expressions reuse a tiny surface AST
// (sexpr) that the analyzer resolves into bound expr.Expr trees.

// sexpr is a surface expression.
type sexpr interface{ sexprNode() }

type (
	// sRef is a (possibly qualified) column reference; Table may be "".
	sRef struct {
		Table, Col string
	}
	// sNum is a numeric literal (int or float per Dot).
	sNum struct {
		Text string
	}
	// sStr is a string literal.
	sStr struct {
		Text string
	}
	// sBool is TRUE/FALSE; sNull is NULL.
	sBool struct{ V bool }
	sNull struct{}
	// sBin is a binary operator: comparison, arithmetic, AND/OR.
	sBin struct {
		Op   string
		L, R sexpr
	}
	// sNot is NOT x; sIsNull is x IS [NOT] NULL.
	sNot    struct{ X sexpr }
	sIsNull struct {
		X      sexpr
		Negate bool
	}
	// sBetween is x BETWEEN lo AND hi.
	sBetween struct {
		X, Lo, Hi sexpr
	}
	// sCall is a function or aggregate call; Star marks COUNT(*).
	sCall struct {
		Name string
		Args []sexpr
		Star bool
	}
	// sParam is a $N parameter placeholder (1-based).
	sParam struct {
		Idx int
	}
)

func (sRef) sexprNode()     {}
func (sNum) sexprNode()     {}
func (sStr) sexprNode()     {}
func (sBool) sexprNode()    {}
func (sNull) sexprNode()    {}
func (sBin) sexprNode()     {}
func (sNot) sexprNode()     {}
func (sIsNull) sexprNode()  {}
func (sBetween) sexprNode() {}
func (sCall) sexprNode()    {}
func (sParam) sexprNode()   {}

// selectItem is one SELECT list entry.
type selectItem struct {
	Star  bool   // *
	Expr  sexpr  // nil when Star
	Alias string // "" if none
}

// dedupMode reflects SELECT / SELECT DISTINCT / SELECT ABSORB.
type dedupMode uint8

const (
	dedupNone dedupMode = iota
	dedupDistinct
	dedupAbsorb
)

// fromItem is a FROM clause element.
type fromItem interface{ fromNode() }

type (
	// fTable is a named table with an optional alias.
	fTable struct {
		Name, Alias string
	}
	// fSubquery is a parenthesized SELECT with a mandatory alias.
	fSubquery struct {
		Query *selectStmt
		Alias string
	}
	// fAlign is (a ALIGN b ON θ) alias.
	fAlign struct {
		Left, Right fromItem
		Theta       sexpr
		Alias       string
	}
	// fNormalize is (a NORMALIZE b USING (cols)) alias.
	fNormalize struct {
		Left, Right fromItem
		Using       []string
		Alias       string
	}
	// fJoin joins two from items.
	fJoin struct {
		Left, Right fromItem
		Type        string // inner, left, right, full, cross
		On          sexpr  // nil for cross
	}
)

func (fTable) fromNode()     {}
func (fSubquery) fromNode()  {}
func (fAlign) fromNode()     {}
func (fNormalize) fromNode() {}
func (fJoin) fromNode()      {}

// orderKey is one ORDER BY term.
type orderKey struct {
	Expr sexpr
	Desc bool
}

// selectStmt is a full SELECT (one branch of a set expression).
type selectStmt struct {
	Dedup   dedupMode
	Items   []selectItem
	From    []fromItem
	Where   sexpr
	GroupBy []sexpr
	Having  sexpr
}

// setStmt combines selects with UNION/INTERSECT/EXCEPT (left associative).
type setStmt struct {
	Left  *queryExpr
	Op    string // union, intersect, except
	Right *selectStmt
}

// queryExpr is either a plain select or a set operation.
type queryExpr struct {
	Select *selectStmt
	Set    *setStmt
}

// withClause names a subquery result.
type withClause struct {
	Name  string
	Query *queryExpr
}

// createStmt is a CREATE TABLE statement: the table name and the CSV
// file to load it from.
type createStmt struct {
	Name    string
	CSVPath string
}

// statement is the top-level parse result.
type statement struct {
	Explain bool
	// ExplainAnalyze marks EXPLAIN ANALYZE: execute the statement and
	// render the plan with estimated vs actual row counts.
	ExplainAnalyze bool
	// Analyze holds the table name of a standalone "ANALYZE <table>"
	// statement (Body is nil in that case).
	Analyze string
	// Create holds a "CREATE TABLE <name> FROM CSV '<path>'" statement
	// (Body is nil in that case).
	Create *createStmt
	// Drop holds the table name of a "DROP TABLE <name>" statement
	// (Body is nil in that case).
	Drop    string
	With    []withClause
	Body    *queryExpr
	OrderBy []orderKey
	// Limit and Offset are the LIMIT/OFFSET clause values (nil = absent).
	Limit  *int64
	Offset *int64
}
