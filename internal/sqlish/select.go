package sqlish

import (
	"fmt"
	"strconv"
	"strings"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/plan"
	"talign/internal/schema"
	"talign/internal/value"
)

// buildQueryExpr compiles a select or a set operation chain.
func (a *analyzer) buildQueryExpr(q *queryExpr) (plan.Node, *scope, error) {
	if q.Select != nil {
		return a.buildSelect(q.Select)
	}
	left, _, err := a.buildQueryExpr(q.Set.Left)
	if err != nil {
		return nil, nil, err
	}
	right, _, err := a.buildSelect(q.Set.Right)
	if err != nil {
		return nil, nil, err
	}
	var kind exec.SetOpKind
	switch q.Set.Op {
	case "union":
		kind = exec.UnionOp
	case "intersect":
		kind = exec.IntersectOp
	default:
		kind = exec.ExceptOp
	}
	if !left.Schema().UnionCompatible(right.Schema()) {
		return nil, nil, fmt.Errorf("sqlish: %s arguments not union compatible: %s vs %s",
			strings.ToUpper(q.Set.Op), left.Schema(), right.Schema())
	}
	return a.planner.SetOp(left, right, kind), nil, nil
}

// buildSelect compiles one SELECT. The returned scope (possibly nil)
// exposes the result columns for ORDER BY resolution.
func (a *analyzer) buildSelect(st *selectStmt) (plan.Node, *scope, error) {
	if len(st.From) == 0 {
		return nil, nil, fmt.Errorf("sqlish: SELECT without FROM is not supported")
	}
	// FROM: fold comma items with cross joins.
	node, sc, err := a.buildFrom(st.From[0])
	if err != nil {
		return nil, nil, err
	}
	for _, fi := range st.From[1:] {
		right, rsc, err := a.buildFrom(fi)
		if err != nil {
			return nil, nil, err
		}
		node = a.planner.ParJoin(node, right, nil, exec.InnerJoin, false)
		sc = combineScopes(sc, rsc)
	}
	// Alias uniqueness.
	seen := map[string]bool{}
	for _, it := range sc.items {
		key := strings.ToLower(it.alias)
		if seen[key] {
			return nil, nil, fmt.Errorf("sqlish: duplicate table alias %q", it.alias)
		}
		seen[key] = true
	}
	if st.Where != nil {
		pred, err := a.resolve(st.Where, sc, false)
		if err != nil {
			return nil, nil, err
		}
		node = a.planner.Filter(node, pred)
	}

	hasAgg := len(st.GroupBy) > 0
	for _, item := range st.Items {
		if item.Expr != nil && containsAgg(item.Expr) {
			hasAgg = true
		}
	}
	if st.Having != nil {
		hasAgg = true
	}

	var out plan.Node
	if hasAgg {
		out, err = a.buildAggSelect(st, node, sc)
	} else {
		out, err = a.buildPlainSelect(st, node, sc)
	}
	if err != nil {
		return nil, nil, err
	}
	switch st.Dedup {
	case dedupDistinct:
		out = a.planner.Distinct(out)
	case dedupAbsorb:
		out = a.planner.Absorb(out)
	}
	return out, nil, nil
}

// buildPlainSelect handles non-aggregating SELECT lists: stars, expressions
// and the virtual Ts/Te columns whose unaliased selection sets the result's
// valid time.
func (a *analyzer) buildPlainSelect(st *selectStmt, node plan.Node, sc *scope) (plan.Node, error) {
	var names []string
	var exprs []expr.Expr
	var tsExpr, teExpr expr.Expr
	for _, item := range st.Items {
		if item.Star {
			for _, it := range sc.items {
				for c, at := range it.sch.Attrs {
					names = append(names, at.Name)
					exprs = append(exprs, expr.ColIdx{Idx: it.off + c, Typ: at.Type, Name: at.Name})
				}
			}
			continue
		}
		if col, table, ok := isTimeRef(item.Expr); ok {
			aliasIsTime := item.Alias == "" || item.Alias == col
			if aliasIsTime {
				off, err := findTime(sc, table, col)
				if err != nil {
					return nil, fmt.Errorf("sqlish: %v", err)
				}
				ref := expr.ColIdx{Idx: off, Typ: value.KindInt, Name: col}
				if col == "ts" {
					if tsExpr != nil {
						return nil, fmt.Errorf("sqlish: multiple unaliased Ts columns in SELECT")
					}
					tsExpr = ref
				} else {
					if teExpr != nil {
						return nil, fmt.Errorf("sqlish: multiple unaliased Te columns in SELECT")
					}
					teExpr = ref
				}
				continue
			}
		}
		e, err := a.resolve(item.Expr, sc, false)
		if err != nil {
			return nil, err
		}
		names = append(names, itemName(item, len(names)))
		exprs = append(exprs, e)
	}
	if (tsExpr == nil) != (teExpr == nil) {
		return nil, fmt.Errorf("sqlish: select either both Ts and Te or neither")
	}
	if tsExpr != nil {
		return a.planner.ProjectT(node, names, exprs, expr.Call("PERIOD", tsExpr, teExpr)), nil
	}
	return a.planner.Project(node, names, exprs), nil
}

// buildAggSelect handles GROUP BY / aggregate SELECT lists.
func (a *analyzer) buildAggSelect(st *selectStmt, node plan.Node, sc *scope) (plan.Node, error) {
	// Group-by terms: Ts/Te pairs switch on temporal grouping.
	var groupExprs []expr.Expr
	var groupRender []string
	groupTs, groupTe := false, false
	for _, g := range st.GroupBy {
		if col, table, ok := isTimeRef(g); ok {
			off, err := findTime(sc, table, col)
			if err != nil {
				return nil, fmt.Errorf("sqlish: %v", err)
			}
			_ = off
			if col == "ts" {
				groupTs = true
			} else {
				groupTe = true
			}
			continue
		}
		e, err := a.resolve(g, sc, false)
		if err != nil {
			return nil, err
		}
		groupExprs = append(groupExprs, e)
		groupRender = append(groupRender, render(g))
	}
	if groupTs != groupTe {
		return nil, fmt.Errorf("sqlish: GROUP BY must list both Ts and Te (or neither)")
	}
	groupByT := groupTs

	// Collect aggregates from SELECT and HAVING.
	var aggs []exec.AggSpec
	aggIndex := map[string]int{}
	collect := func(e sexpr) error {
		var err error
		walkSexpr(e, func(x sexpr) {
			if err != nil {
				return
			}
			c, ok := x.(sCall)
			if !ok || !isAggName(c.Name) {
				return
			}
			key := render(c)
			if _, dup := aggIndex[key]; dup {
				return
			}
			spec := exec.AggSpec{Name: fmt.Sprintf("agg%d", len(aggs))}
			switch c.Name {
			case "count":
				if c.Star {
					spec.Func = exec.AggCountStar
				} else {
					spec.Func = exec.AggCount
				}
			case "sum":
				spec.Func = exec.AggSum
			case "avg":
				spec.Func = exec.AggAvg
			case "min":
				spec.Func = exec.AggMin
			case "max":
				spec.Func = exec.AggMax
			}
			if !c.Star {
				if len(c.Args) != 1 {
					err = fmt.Errorf("sqlish: aggregate %s takes one argument", strings.ToUpper(c.Name))
					return
				}
				arg, rerr := a.resolve(c.Args[0], sc, false)
				if rerr != nil {
					err = rerr
					return
				}
				spec.Arg = arg
			}
			aggIndex[key] = len(aggs)
			aggs = append(aggs, spec)
		})
		return err
	}
	for _, item := range st.Items {
		if item.Star {
			return nil, fmt.Errorf("sqlish: * not allowed with GROUP BY")
		}
		if err := collect(item.Expr); err != nil {
			return nil, err
		}
	}
	if st.Having != nil {
		if err := collect(st.Having); err != nil {
			return nil, err
		}
	}

	groupNames := make([]string, len(groupExprs))
	for i := range groupExprs {
		groupNames[i] = fmt.Sprintf("g%d", i)
	}
	aggNode, err := a.planner.ParAggregate(node, groupExprs, groupNames, groupByT, aggs)
	if err != nil {
		return nil, err
	}

	// Map SELECT items over the aggregate output: group expressions by
	// syntactic identity, aggregates by collected position, Ts/Te by the
	// group's valid time.
	aggOut := aggNode.Schema()
	var mapExpr func(e sexpr) (expr.Expr, error)
	mapExpr = func(e sexpr) (expr.Expr, error) {
		key := render(e)
		for i, gr := range groupRender {
			if gr == key {
				return expr.ColIdx{Idx: i, Typ: aggOut.Attrs[i].Type, Name: aggOut.Attrs[i].Name}, nil
			}
		}
		if c, ok := e.(sCall); ok && isAggName(c.Name) {
			i := aggIndex[key]
			pos := len(groupExprs) + i
			return expr.ColIdx{Idx: pos, Typ: aggOut.Attrs[pos].Type, Name: aggOut.Attrs[pos].Name}, nil
		}
		switch x := e.(type) {
		case sNum, sStr, sBool, sNull, sParam:
			return a.resolve(x, &scope{}, false)
		case sBin:
			l, err := mapExpr(x.L)
			if err != nil {
				return nil, err
			}
			r, err := mapExpr(x.R)
			if err != nil {
				return nil, err
			}
			resolved, err := a.resolve(sBin{Op: x.Op, L: sNum{Text: "0"}, R: sNum{Text: "0"}}, &scope{}, false)
			if err != nil {
				return nil, err
			}
			switch op := resolved.(type) {
			case expr.Cmp:
				return expr.Cmp{Op: op.Op, L: l, R: r}, nil
			case expr.Arith:
				return expr.Arith{Op: op.Op, L: l, R: r}, nil
			case expr.Logic:
				return expr.Logic{Op: op.Op, L: l, R: r}, nil
			}
			return nil, fmt.Errorf("sqlish: unsupported operator %q over aggregates", x.Op)
		}
		return nil, fmt.Errorf("sqlish: %q must appear in GROUP BY or be an aggregate", key)
	}

	var names []string
	var exprs []expr.Expr
	sawTs, sawTe := false, false
	for _, item := range st.Items {
		if col, _, ok := isTimeRef(item.Expr); ok && (item.Alias == "" || item.Alias == col) {
			if !groupByT {
				return nil, fmt.Errorf("sqlish: selecting Ts/Te requires GROUP BY Ts, Te")
			}
			if col == "ts" {
				sawTs = true
			} else {
				sawTe = true
			}
			continue
		}
		e, err := mapExpr(item.Expr)
		if err != nil {
			return nil, err
		}
		names = append(names, itemName(item, len(names)))
		exprs = append(exprs, e)
	}
	_ = sawTs
	_ = sawTe

	out := plan.Node(aggNode)
	if st.Having != nil {
		having, err := mapHaving(a, st.Having, mapExpr)
		if err != nil {
			return nil, err
		}
		out = a.planner.Filter(out, having)
	}
	// Valid time: the aggregate node already carries the group's T (or the
	// zero interval when not grouping by time); the projection keeps it.
	return a.planner.Project(out, names, exprs), nil
}

func mapHaving(a *analyzer, e sexpr, mapExpr func(sexpr) (expr.Expr, error)) (expr.Expr, error) {
	switch x := e.(type) {
	case sBin:
		if x.Op == "and" || x.Op == "or" {
			l, err := mapHaving(a, x.L, mapExpr)
			if err != nil {
				return nil, err
			}
			r, err := mapHaving(a, x.R, mapExpr)
			if err != nil {
				return nil, err
			}
			if x.Op == "and" {
				return expr.And(l, r), nil
			}
			return expr.Or(l, r), nil
		}
	case sNot:
		inner, err := mapHaving(a, x.X, mapExpr)
		if err != nil {
			return nil, err
		}
		return expr.Neg(inner), nil
	}
	return mapExpr(e)
}

// walkSexpr visits every node of a surface expression.
func walkSexpr(e sexpr, fn func(sexpr)) {
	fn(e)
	switch x := e.(type) {
	case sBin:
		walkSexpr(x.L, fn)
		walkSexpr(x.R, fn)
	case sNot:
		walkSexpr(x.X, fn)
	case sIsNull:
		walkSexpr(x.X, fn)
	case sBetween:
		walkSexpr(x.X, fn)
		walkSexpr(x.Lo, fn)
		walkSexpr(x.Hi, fn)
	case sCall:
		for _, a := range x.Args {
			walkSexpr(a, fn)
		}
	}
}

func containsAgg(e sexpr) bool {
	found := false
	walkSexpr(e, func(x sexpr) {
		if c, ok := x.(sCall); ok && isAggName(c.Name) {
			found = true
		}
	})
	return found
}

// itemName derives an output column name.
func itemName(item selectItem, pos int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if r, ok := item.Expr.(sRef); ok {
		return r.Col
	}
	if c, ok := item.Expr.(sCall); ok {
		return strings.ToLower(c.Name)
	}
	return "col" + strconv.Itoa(pos)
}

// orderKeys resolves ORDER BY terms against the output schema; Ts/Te sort
// on the valid time, names on columns, integers on ordinals.
func (a *analyzer) orderKeys(keys []orderKey, out schema.Schema, _ *scope) ([]exec.SortKey, error) {
	var sk []exec.SortKey
	for _, k := range keys {
		var e expr.Expr
		switch x := k.Expr.(type) {
		case sRef:
			if x.Table == "" && x.Col == "ts" {
				e = expr.TStart{}
			} else if x.Table == "" && x.Col == "te" {
				e = expr.TEnd{}
			} else {
				i := out.Index(x.Col)
				if i < 0 {
					return nil, fmt.Errorf("sqlish: ORDER BY: unknown output column %q", x.Col)
				}
				e = expr.ColIdx{Idx: i, Typ: out.Attrs[i].Type, Name: out.Attrs[i].Name}
			}
		case sNum:
			i, err := strconv.Atoi(x.Text)
			if err != nil || i < 1 || i > out.Len() {
				return nil, fmt.Errorf("sqlish: ORDER BY ordinal %q out of range", x.Text)
			}
			e = expr.ColIdx{Idx: i - 1, Typ: out.Attrs[i-1].Type, Name: out.Attrs[i-1].Name}
		default:
			return nil, fmt.Errorf("sqlish: ORDER BY supports column names, ordinals, Ts and Te")
		}
		sk = append(sk, exec.SortKey{Expr: e, Desc: k.Desc})
	}
	return sk, nil
}
