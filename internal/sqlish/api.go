package sqlish

import (
	"context"
	"fmt"
	"strings"

	"talign/internal/csvio"
	"talign/internal/opt"
	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/stats"
	"talign/internal/value"
)

// The statement pipeline has four explicit stages:
//
//	Parse    — lex + parse the SQL text into an AST (Statement)
//	Analyze  — resolve names against a Catalog, type-check, extract
//	           placeholders
//	Plan     — build the immutable plan.Node tree (cost-based method and
//	           exchange choices happen here)
//	Execute  — bind $N parameter values and drain the plan
//
// Parse is independent of any catalog; Analyze+Plan are fused in Prepare
// (the analyzer emits plan nodes directly); Execute is Prepared.Execute.
// A Prepared is immutable and safe for concurrent Execute calls, which is
// what the server's plan cache relies on.

// Statement is a parsed but not yet analyzed statement: the output of the
// Parse stage. It can be prepared against different catalogs.
type Statement struct {
	// SQL is the original statement text.
	SQL string

	ast *statement
}

// Parse runs the first pipeline stage: it lexes and parses sql into a
// Statement without touching any catalog.
func Parse(sql string) (*Statement, error) {
	ast, err := parse(sql)
	if err != nil {
		return nil, err
	}
	return &Statement{SQL: sql, ast: ast}, nil
}

// IsExplain reports whether the statement is an EXPLAIN.
func (st *Statement) IsExplain() bool { return st.ast.Explain }

// AnalyzeTarget returns the table name of a standalone ANALYZE statement;
// ok is false for every other statement kind. ANALYZE mutates catalog
// statistics and is executed by the Engine or the server, never through
// Prepare.
func (st *Statement) AnalyzeTarget() (name string, ok bool) {
	return st.ast.Analyze, st.ast.Analyze != ""
}

// CreateTarget returns the table name and CSV path of a CREATE TABLE
// ... FROM CSV statement; ok is false for every other statement kind.
// CREATE TABLE mutates the catalog (and the data directory, when the
// server runs with one) and is executed by the server, never through
// Prepare.
func (st *Statement) CreateTarget() (name, csvPath string, ok bool) {
	if st.ast.Create == nil {
		return "", "", false
	}
	return st.ast.Create.Name, st.ast.Create.CSVPath, true
}

// DropTarget returns the table name of a DROP TABLE statement; ok is
// false for every other statement kind. Like CREATE TABLE, it is
// executed by the server, never through Prepare.
func (st *Statement) DropTarget() (name string, ok bool) {
	return st.ast.Drop, st.ast.Drop != ""
}

// Catalog resolves lower-cased table names during the Analyze stage.
// Implementations must be safe for concurrent use; the relations returned
// must be treated as immutable snapshots (the engine never mutates them,
// and cached plans keep referencing them).
type Catalog interface {
	// Lookup returns the relation registered under the (lower-case) name.
	Lookup(name string) (*relation.Relation, bool)
}

// MapCatalog is a Catalog over a plain map. The zero value is an empty
// catalog; keys must be lower-case (Register takes care of that). It is
// NOT safe for concurrent mutation — the server package provides a
// versioned copy-on-write catalog for shared use.
type MapCatalog map[string]*relation.Relation

// Lookup implements Catalog.
func (m MapCatalog) Lookup(name string) (*relation.Relation, bool) {
	rel, ok := m[strings.ToLower(name)]
	return rel, ok
}

// Register adds (or replaces) a named relation.
func (m MapCatalog) Register(name string, rel *relation.Relation) {
	m[strings.ToLower(name)] = rel
}

// Prepared is an analyzed and planned statement: the output of the
// Analyze + Plan stages. It is immutable — Execute may be called
// concurrently from many goroutines, each execution binding its own
// parameter values — and it pins the catalog snapshot it was planned
// against (plans over changed catalogs must be re-prepared; the server's
// plan cache keys on the catalog version for exactly that reason).
type Prepared struct {
	// SQL is the original statement text.
	SQL string
	// NumParams is the number of $N placeholders the statement takes
	// (the highest index seen; numbering must be gap-free from $1).
	NumParams int

	root           plan.Node
	maxDOP         int
	explain        bool
	explainAnalyze bool
}

// Prepare runs Parse, Analyze and Plan in one call.
func Prepare(sql string, cat Catalog, flags plan.Flags) (*Prepared, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return st.Prepare(cat, flags)
}

// Prepare runs the Analyze, Plan and Optimize stages: names are resolved
// against cat, WITH clauses become shared subplans, the cost-based
// planner (under flags, fed by the catalog's table statistics when cat
// implements plan.StatsSource) fixes join methods and exchange placement,
// and — unless flags.DisableOptimizer — the rule-based optimizer rewrites
// the plan (predicate pushdown, projection pruning, constant folding,
// join reordering). The resulting plan is generic over its $N
// placeholders.
func (st *Statement) Prepare(cat Catalog, flags plan.Flags) (*Prepared, error) {
	if name, ok := st.AnalyzeTarget(); ok {
		return nil, fmt.Errorf("sqlish: ANALYZE %s cannot be prepared; execute it through the engine or server", name)
	}
	if name, _, ok := st.CreateTarget(); ok {
		return nil, fmt.Errorf("sqlish: CREATE TABLE %s cannot be prepared; execute it through the server", name)
	}
	if name, ok := st.DropTarget(); ok {
		return nil, fmt.Errorf("sqlish: DROP TABLE %s cannot be prepared; execute it through the server", name)
	}
	a := newAnalyzer(cat, flags)
	for _, w := range st.ast.With {
		node, _, err := a.buildQueryExpr(w.Query)
		if err != nil {
			return nil, err
		}
		a.with[strings.ToLower(w.Name)] = a.planner.Shared(node)
	}
	node, outScope, err := a.buildQueryExpr(st.ast.Body)
	if err != nil {
		return nil, err
	}
	if len(st.ast.OrderBy) > 0 {
		keys, err := a.orderKeys(st.ast.OrderBy, node.Schema(), outScope)
		if err != nil {
			return nil, err
		}
		node = a.planner.Sort(node, keys...)
	}
	if !flags.DisableOptimizer {
		node = opt.Optimize(node, a.planner)
	}
	if st.ast.Limit != nil || st.ast.Offset != nil {
		// LIMIT sits above ORDER BY and outside the optimizer: its executor
		// exits early, which is what lets a cursor stop the pipeline
		// instead of draining it.
		n := int64(-1)
		if st.ast.Limit != nil {
			n = *st.ast.Limit
		}
		var off int64
		if st.ast.Offset != nil {
			off = *st.ast.Offset
		}
		node = a.planner.Limit(node, n, off)
	}
	return &Prepared{
		SQL:            st.SQL,
		NumParams:      a.maxParam,
		root:           node,
		maxDOP:         plan.MaxDOP(node),
		explain:        st.ast.Explain,
		explainAnalyze: st.ast.ExplainAnalyze,
	}, nil
}

// MaxDOP reports the widest exchange in the plan: how many worker
// goroutines one execution can occupy (1 for serial plans). Admission
// control charges executions this weight.
func (p *Prepared) MaxDOP() int { return p.maxDOP }

// IsExplain reports whether the statement was an EXPLAIN; Execute refuses
// such statements (use Explain instead).
func (p *Prepared) IsExplain() bool { return p.explain }

// IsExplainAnalyze reports whether the statement was an EXPLAIN ANALYZE;
// such statements run through ExplainAnalyze, which executes the plan and
// reports actual row counts.
func (p *Prepared) IsExplainAnalyze() bool { return p.explainAnalyze }

// Schema describes the result columns (parameter-typed columns report
// kind ω until execution).
func (p *Prepared) Schema() schema.Schema { return p.root.Schema() }

// Explain renders the plan with the optimizer's row and cost estimates;
// unbound placeholders render as $N.
func (p *Prepared) Explain() string { return plan.Explain(p.root) }

// ExplainAnalyze executes the plan with params bound to $1..$N, counting
// every operator's actual output rows, and renders the tree with
// estimated vs actual cardinalities. It is only valid for EXPLAIN
// ANALYZE statements and is safe to call concurrently (each call builds
// and runs a fresh executor tree).
func (p *Prepared) ExplainAnalyze(params ...value.Value) (string, error) {
	return p.ExplainAnalyzeContext(context.Background(), params...)
}

// ExplainAnalyzeContext is ExplainAnalyze under a context: cancelling ctx
// aborts the measured execution cooperatively.
func (p *Prepared) ExplainAnalyzeContext(ctx context.Context, params ...value.Value) (string, error) {
	if !p.explainAnalyze {
		return "", requestError("statement is not EXPLAIN ANALYZE")
	}
	if err := plan.CheckParams(p.NumParams, params); err != nil {
		return "", requestError("%s", paramErrMsg(err))
	}
	text, _, err := plan.ExplainAnalyze(p.root, plan.NewExecCtxContext(ctx, params...))
	return text, err
}

// Execute runs the Execute stage: it binds params to $1..$N (exactly
// NumParams values are required), builds a fresh executor tree and drains
// it. Execute is safe to call concurrently.
func (p *Prepared) Execute(params ...value.Value) (*relation.Relation, error) {
	if p.explain {
		return nil, requestError("cannot Execute an EXPLAIN statement")
	}
	if err := plan.CheckParams(p.NumParams, params); err != nil {
		return nil, requestError("%s", paramErrMsg(err))
	}
	return plan.RunParams(p.root, params...)
}

// paramErrMsg strips the plan-layer prefix off a CheckParams error.
func paramErrMsg(err error) string {
	return strings.TrimPrefix(err.Error(), "plan: ")
}

// ParseNormalized runs the Parse stage and derives the normalized
// plan-cache key text from ONE shared lex of sql: parse errors point
// into the original statement text (line/col of the offending token),
// and the caller gets the cache key without lexing again. It is the
// entry point the server uses for ad-hoc statements.
func ParseNormalized(sql string) (*Statement, string, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, "", err
	}
	ast, err := parseTokens(sql, toks)
	if err != nil {
		return nil, "", err
	}
	return &Statement{SQL: sql, ast: ast}, renderNormalized(toks), nil
}

// Normalize canonicalizes a statement's text for plan-cache keying: it
// re-renders the token stream with single spaces, lower-cased keywords and
// identifiers, and canonical symbols, so formatting and case differences
// (but nothing semantic) map to the same cache entry. The result is not
// meant to be pretty — only stable.
func Normalize(sql string) (string, error) {
	toks, err := lex(sql)
	if err != nil {
		return "", err
	}
	return renderNormalized(toks), nil
}

// renderNormalized renders a token stream in the canonical cache-key
// form.
func renderNormalized(toks []token) string {
	var b strings.Builder
	for i, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		switch t.kind {
		case tokString:
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.text, "'", "''"))
			b.WriteByte('\'')
		case tokParam:
			b.WriteByte('$')
			b.WriteString(t.text)
		default:
			b.WriteString(t.text)
		}
	}
	return b.String()
}

// StatsCatalog is a Catalog that also resolves per-table ANALYZE
// statistics; the analyzer feeds them to the planner when the catalog it
// prepares against implements this (the Engine's private catalog and the
// server's versioned snapshots both do).
type StatsCatalog interface {
	Catalog
	plan.StatsSource
}

// engineCatalog is the Engine's private StatsCatalog: a MapCatalog plus a
// statistics side table maintained by ANALYZE.
type engineCatalog struct {
	MapCatalog
	stats map[string]*stats.Table
}

// TableStats implements plan.StatsSource.
func (c engineCatalog) TableStats(name string) *stats.Table {
	return c.stats[strings.ToLower(name)]
}

// Engine is the one-stop convenience wrapper around the pipeline: it owns
// a private MapCatalog (plus the statistics ANALYZE collects) and runs
// each statement through Prepare + Execute. It preserves the pre-server
// one-shot API used by the shell, the examples and the tests; long-lived
// multi-client use wants the server package (COW catalog, plan cache,
// admission control) instead, and NEW consumer code should reach for the
// public talign package at the module root — context-aware streaming
// cursors over this same pipeline, embedded or remote — rather than this
// internal shim. An Engine is not safe for concurrent use.
type Engine struct {
	catalog engineCatalog
	flags   plan.Flags
}

// NewEngine creates an engine with the given planner flags.
func NewEngine(flags plan.Flags) *Engine {
	return &Engine{
		catalog: engineCatalog{MapCatalog: MapCatalog{}, stats: map[string]*stats.Table{}},
		flags:   flags,
	}
}

// Register adds (or replaces) a named relation; statistics for a replaced
// relation are dropped (re-run ANALYZE to refresh them).
func (e *Engine) Register(name string, rel *relation.Relation) {
	e.catalog.Register(name, rel)
	delete(e.catalog.stats, strings.ToLower(name))
}

// Analyze computes and installs statistics for a registered table, as the
// ANALYZE statement does.
func (e *Engine) Analyze(name string) (*stats.Table, error) {
	rel, ok := e.catalog.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sqlish: ANALYZE: unknown table %q", name)
	}
	st := stats.Analyze(rel)
	e.catalog.stats[strings.ToLower(name)] = st
	return st, nil
}

// Query parses, plans and runs a statement. For EXPLAIN and EXPLAIN
// ANALYZE statements the returned relation is nil and the plan text is
// set; ANALYZE statements refresh the named table's statistics and
// report a short summary in the plan slot.
func (e *Engine) Query(sql string) (*relation.Relation, string, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, "", err
	}
	if name, ok := st.AnalyzeTarget(); ok {
		ts, err := e.Analyze(name)
		if err != nil {
			return nil, "", err
		}
		return nil, fmt.Sprintf("ANALYZE %s: %d rows, %d columns", name, ts.Rows, len(ts.Cols)), nil
	}
	if name, path, ok := st.CreateTarget(); ok {
		if _, exists := e.catalog.Lookup(name); exists {
			return nil, "", fmt.Errorf("sqlish: CREATE TABLE: table %q already exists", name)
		}
		rel, err := csvio.ReadFile(path)
		if err != nil {
			return nil, "", fmt.Errorf("sqlish: CREATE TABLE %s: %w", name, err)
		}
		e.Register(name, rel)
		return nil, fmt.Sprintf("CREATE TABLE %s: %d rows, %d columns", name, rel.Len(), rel.Schema.Len()), nil
	}
	if name, ok := st.DropTarget(); ok {
		if _, exists := e.catalog.Lookup(name); !exists {
			return nil, "", fmt.Errorf("sqlish: DROP TABLE: unknown table %q", name)
		}
		delete(e.catalog.MapCatalog, strings.ToLower(name))
		delete(e.catalog.stats, strings.ToLower(name))
		return nil, "DROP TABLE " + name, nil
	}
	p, err := st.Prepare(e.catalog, e.flags)
	if err != nil {
		return nil, "", err
	}
	if p.IsExplainAnalyze() {
		text, err := p.ExplainAnalyze()
		if err != nil {
			return nil, "", err
		}
		return nil, text, nil
	}
	if p.IsExplain() {
		return nil, p.Explain(), nil
	}
	rel, err := p.Execute()
	if err != nil {
		return nil, "", err
	}
	return rel, "", nil
}

// MustQuery is Query but panics on error (examples and tests).
func (e *Engine) MustQuery(sql string) *relation.Relation {
	rel, _, err := e.Query(sql)
	if err != nil {
		panic(err)
	}
	return rel
}
