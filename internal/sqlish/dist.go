package sqlish

// Distributed-planning support: the distsql coordinator needs to reason
// about a parsed statement — which base tables it touches, whether its
// FROM tree is colocatable under a hash partitioning, whether its
// aggregation admits a partial/final split — and to render rewritten,
// re-parseable SQL fragments for workers. The AST is deliberately
// unexported, so this file is the one sanctioned window onto it: a
// conservative distillation (anything it cannot prove scatter-safe is
// reported as unsupported, and the coordinator falls back to gathering
// whole shards) plus renderers that emit valid dialect SQL with $N
// placeholders renumbered gap-free per fragment.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DistKind classifies a statement for the distributed planner.
type DistKind int

// Statement kinds the coordinator distinguishes: queries are distributed
// by strategy, the catalog-mutating kinds are broadcast or partitioned.
const (
	// DistSelect is a row-producing query (possibly EXPLAIN-wrapped).
	DistSelect DistKind = iota
	// DistAnalyze is a standalone ANALYZE <table>.
	DistAnalyze
	// DistCreate is CREATE TABLE <name> FROM CSV '<path>'.
	DistCreate
	// DistDrop is DROP TABLE <name>.
	DistDrop
)

// TableCol names one column of one base-table instance in a FROM tree.
type TableCol struct {
	// Table is the lower-cased base table name (not the alias).
	Table string
	// Col is the lower-cased column name.
	Col string
}

// DistInfo is the distributed planner's distilled view of a statement.
type DistInfo struct {
	// Kind classifies the statement.
	Kind DistKind
	// Explain and ExplainAnalyze mark EXPLAIN wrappers around a query.
	Explain        bool
	ExplainAnalyze bool
	// Tables lists the distinct base tables the statement references
	// (lower-cased, sorted; WITH names are resolved and excluded).
	Tables []string
	// Target is the table of ANALYZE/DROP or the name of CREATE.
	Target string
	// CreatePath is the CSV path of a CREATE TABLE statement.
	CreatePath string
	// OrderLimit reports an ORDER BY, LIMIT or OFFSET clause.
	OrderLimit bool
	// Shape describes a scatter-analyzable single-SELECT body; nil when
	// the statement needs the gather-all fallback (WITH, set operations,
	// subqueries, unresolvable references, ...).
	Shape *DistShape
}

// DistShape describes a single-SELECT body for scatter planning.
type DistShape struct {
	// Dedup is "", "distinct" or "absorb".
	Dedup string
	// HasAgg reports aggregate calls in the SELECT list or HAVING.
	HasAgg bool
	// HasGroupBy reports a GROUP BY clause of any shape.
	HasGroupBy bool
	// GroupByT reports temporal grouping (GROUP BY ..., Ts, Te).
	GroupByT bool
	// GroupRefs are the plain-column GROUP BY terms resolved to base
	// tables (time refs excluded). Nil when there is no GROUP BY or a
	// group term is not a resolvable column reference.
	GroupRefs []TableCol
	// PlainGroup reports that every non-time GROUP BY term resolved to a
	// base-table column.
	PlainGroup bool
	// ProjRefs are the bare column references in the SELECT list (star
	// expanded) resolved to base tables; used to prove dedup locality.
	ProjRefs []TableCol
	// Require maps each referenced base table to the partition column a
	// colocated scatter needs; tables absent from the map are
	// unconstrained (single-table scans).
	Require map[string]string
	// Colocatable reports that a consistent Require assignment exists —
	// every join/ALIGN/NORMALIZE boundary is bridged by an equi-condition
	// on the assigned columns.
	Colocatable bool
	// CanAggSplit reports that the aggregation admits a partial/final
	// split (plain grouped COUNT/SUM/MIN/MAX; AVG and global aggregates
	// are excluded and fall back to gather-all).
	CanAggSplit bool
}

// DistAggSQL is the rendered partial/final aggregate split: Worker runs
// on every shard, Final re-aggregates the gathered partials. The param
// slices map each fragment's $1..$N back to the original statement's
// 1-based parameter indices.
type DistAggSQL struct {
	Worker       string
	WorkerParams []int
	Final        string
	FinalParams  []int
}

// ------------------------------------------------------------ analysis

// DistInfo distills the statement for the distributed planner. The
// catalog resolves unqualified column references (the coordinator's
// schema stubs suffice — only schemas are consulted, never rows).
// Analysis is conservative: any construct it cannot prove scatter-safe
// leaves Shape nil, which the coordinator treats as gather-all.
func (st *Statement) DistInfo(cat Catalog) *DistInfo {
	a := st.ast
	info := &DistInfo{
		Kind:           DistSelect,
		Explain:        a.Explain && !a.ExplainAnalyze,
		ExplainAnalyze: a.ExplainAnalyze,
		OrderLimit:     len(a.OrderBy) > 0 || a.Limit != nil || a.Offset != nil,
	}
	switch {
	case a.Analyze != "":
		info.Kind = DistAnalyze
		info.Target = a.Analyze
		return info
	case a.Create != nil:
		info.Kind = DistCreate
		info.Target = a.Create.Name
		info.CreatePath = a.Create.CSVPath
		return info
	case a.Drop != "":
		info.Kind = DistDrop
		info.Target = a.Drop
		return info
	}
	info.Tables = collectBaseTables(a)
	if len(a.With) == 0 && a.Body != nil && a.Body.Select != nil {
		info.Shape = distillSelect(a.Body.Select, cat)
	}
	return info
}

// collectBaseTables walks the whole statement (WITH bodies, set-operation
// branches, subqueries, ALIGN/NORMALIZE subtrees) collecting base-table
// names; WITH-introduced names shadow base tables.
func collectBaseTables(a *statement) []string {
	seen := map[string]bool{}
	shadow := map[string]bool{}
	var fromItems func(items []fromItem)
	var query func(q *queryExpr)
	var sel func(s *selectStmt)
	var item func(f fromItem)
	item = func(f fromItem) {
		switch x := f.(type) {
		case fTable:
			if !shadow[x.Name] {
				seen[x.Name] = true
			}
		case fSubquery:
			sel(x.Query)
		case fAlign:
			item(x.Left)
			item(x.Right)
		case fNormalize:
			item(x.Left)
			item(x.Right)
		case fJoin:
			item(x.Left)
			item(x.Right)
		}
	}
	fromItems = func(items []fromItem) {
		for _, f := range items {
			item(f)
		}
	}
	sel = func(s *selectStmt) {
		if s == nil {
			return
		}
		fromItems(s.From)
	}
	query = func(q *queryExpr) {
		if q == nil {
			return
		}
		if q.Select != nil {
			sel(q.Select)
		}
		if q.Set != nil {
			query(q.Set.Left)
			sel(q.Set.Right)
		}
	}
	for _, w := range a.With {
		query(w.Query)
		shadow[w.Name] = true
	}
	query(a.Body)
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// dinst is one base-table instance in a FROM tree.
type dinst struct {
	id    int
	table string
	cols  map[string]bool
}

// dcol is one visible output column with its source instance.
type dcol struct {
	name string
	inst *dinst
	col  string
}

// dbind is one name (table alias or composite alias) usable for
// qualified references, with its visible columns.
type dbind struct {
	name string
	cols []dcol
}

// dnode identifies one (instance, column) vertex in the equality graph.
type dnode struct {
	inst *dinst
	col  string
}

// dboundary is one binary operator in the FROM tree whose matching
// semantics require colocation: the instance sets of its two subtrees
// and the direct equi-conditions bridging them.
type dboundary struct {
	left, right map[int]bool
	pairs       [][2]dnode
}

// dwalker accumulates the colocation analysis over a FROM tree.
type dwalker struct {
	cat        Catalog
	nextID     int
	insts      []*dinst
	boundaries []*dboundary
	equis      [][2]dnode // every resolved equality, boundary-crossing or not
	ok         bool
}

// walkFrom analyzes one FROM item, returning its bindings, visible
// columns and instance set. ok=false (on the walker) marks the tree
// unsupported.
func (w *dwalker) walkFrom(f fromItem) (binds []dbind, cols []dcol, insts map[int]bool) {
	insts = map[int]bool{}
	switch x := f.(type) {
	case fTable:
		rel, found := w.cat.Lookup(x.Name)
		if !found {
			w.ok = false
			return
		}
		in := &dinst{id: w.nextID, table: x.Name, cols: map[string]bool{}}
		w.nextID++
		w.insts = append(w.insts, in)
		insts[in.id] = true
		name := x.Alias
		if name == "" {
			name = x.Name
		}
		for _, at := range rel.Schema.Attrs {
			in.cols[at.Name] = true
			cols = append(cols, dcol{name: at.Name, inst: in, col: at.Name})
		}
		binds = []dbind{{name: name, cols: cols}}
		return
	case fAlign:
		lb, lc, li := w.walkFrom(x.Left)
		rb, _, ri := w.walkFrom(x.Right)
		if !w.ok {
			return
		}
		scope := append(append([]dbind{}, lb...), rb...)
		w.boundary(li, ri, w.equiPairs(conjuncts(x.Theta), scope, li, ri))
		for id := range li {
			insts[id] = true
		}
		for id := range ri {
			insts[id] = true
		}
		// ALIGN keeps the left operand's attributes.
		cols = lc
		if x.Alias != "" {
			binds = []dbind{{name: x.Alias, cols: cols}}
		} else {
			binds = lb
		}
		return
	case fNormalize:
		lb, lc, li := w.walkFrom(x.Left)
		rb, rc, ri := w.walkFrom(x.Right)
		if !w.ok {
			return
		}
		var pairs [][2]dnode
		for _, c := range x.Using {
			ln, lok := resolveIn(lb, sRef{Col: c})
			rn, rok := resolveIn(rb, sRef{Col: c})
			if lok && rok {
				// USING columns are equality boundaries; they must enter the
				// global graph or colocationKey never sees a bridging class.
				w.equis = append(w.equis, [2]dnode{ln, rn})
				pairs = append(pairs, [2]dnode{ln, rn})
			}
		}
		_ = rc
		w.boundary(li, ri, pairs)
		for id := range li {
			insts[id] = true
		}
		for id := range ri {
			insts[id] = true
		}
		cols = lc
		if x.Alias != "" {
			binds = []dbind{{name: x.Alias, cols: cols}}
		} else {
			binds = lb
		}
		return
	case fJoin:
		lb, lc, li := w.walkFrom(x.Left)
		rb, rc, ri := w.walkFrom(x.Right)
		if !w.ok {
			return
		}
		scope := append(append([]dbind{}, lb...), rb...)
		var pairs [][2]dnode
		if x.On != nil {
			pairs = w.equiPairs(conjuncts(x.On), scope, li, ri)
		}
		w.boundary(li, ri, pairs)
		for id := range li {
			insts[id] = true
		}
		for id := range ri {
			insts[id] = true
		}
		binds = scope
		cols = append(append([]dcol{}, lc...), rc...)
		return
	default: // fSubquery and anything new
		w.ok = false
		return
	}
}

// boundary records one binary matching boundary.
func (w *dwalker) boundary(left, right map[int]bool, pairs [][2]dnode) {
	w.boundaries = append(w.boundaries, &dboundary{left: left, right: right, pairs: pairs})
}

// equiPairs resolves `ref = ref` conjuncts against scope, recording every
// resolved equality into the global graph and returning the subset that
// bridges the (left, right) instance sets.
func (w *dwalker) equiPairs(conj []sexpr, scope []dbind, left, right map[int]bool) [][2]dnode {
	var crossing [][2]dnode
	for _, c := range conj {
		b, isBin := c.(sBin)
		if !isBin || b.Op != "=" {
			continue
		}
		lr, lok := b.L.(sRef)
		rr, rok := b.R.(sRef)
		if !lok || !rok {
			continue
		}
		ln, lfound := resolveIn(scope, lr)
		rn, rfound := resolveIn(scope, rr)
		if !lfound || !rfound {
			continue
		}
		w.equis = append(w.equis, [2]dnode{ln, rn})
		if (left[ln.inst.id] && right[rn.inst.id]) || (left[rn.inst.id] && right[ln.inst.id]) {
			crossing = append(crossing, [2]dnode{ln, rn})
		}
	}
	return crossing
}

// conjuncts flattens an AND tree into its conjuncts.
func conjuncts(e sexpr) []sexpr {
	if e == nil {
		return nil
	}
	if b, ok := e.(sBin); ok && b.Op == "and" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sexpr{e}
}

// resolveIn resolves a column reference against bindings: qualified refs
// match a binding name, bare refs must be unambiguous. Ts/Te never
// resolve (they are the valid-time bounds, not columns).
func resolveIn(binds []dbind, r sRef) (dnode, bool) {
	if r.Table == "" && (r.Col == "ts" || r.Col == "te") {
		return dnode{}, false
	}
	var found dnode
	n := 0
	for _, b := range binds {
		if r.Table != "" && b.name != r.Table {
			continue
		}
		for _, c := range b.cols {
			if c.name == r.Col {
				found = dnode{inst: c.inst, col: c.col}
				n++
				break // first match within one binding wins
			}
		}
		if r.Table != "" {
			break
		}
	}
	if r.Table != "" {
		return found, n == 1
	}
	return found, n == 1
}

// distillSelect analyzes one SELECT body for scatter planning.
func distillSelect(sel *selectStmt, cat Catalog) *DistShape {
	w := &dwalker{cat: cat, ok: true}
	var topBinds []dbind
	var topCols []dcol
	accum := map[int]bool{}
	whereConj := conjuncts(sel.Where)
	for i, f := range sel.From {
		binds, cols, insts := w.walkFrom(f)
		if !w.ok {
			return nil
		}
		if i > 0 {
			// Comma-list items are inner-joined; WHERE conjuncts supply the
			// bridging equi-conditions for these implicit boundaries.
			scope := append(append([]dbind{}, topBinds...), binds...)
			w.boundary(accum, insts, w.equiPairs(whereConj, scope, accum, insts))
			merged := map[int]bool{}
			for id := range accum {
				merged[id] = true
			}
			for id := range insts {
				merged[id] = true
			}
			accum = merged
		} else {
			accum = insts
		}
		topBinds = append(topBinds, binds...)
		topCols = append(topCols, cols...)
	}
	if len(w.insts) == 0 {
		return nil
	}
	// Also feed WHERE equalities into the global equality graph even for
	// single-item FROMs (they can chain classes through a table).
	w.equiPairs(whereConj, topBinds, map[int]bool{}, map[int]bool{})

	shape := &DistShape{}
	switch sel.Dedup {
	case dedupDistinct:
		shape.Dedup = "distinct"
	case dedupAbsorb:
		shape.Dedup = "absorb"
	}

	// Projected bare columns (star expands to every visible column).
	for _, it := range sel.Items {
		if it.Star {
			for _, c := range topCols {
				shape.ProjRefs = append(shape.ProjRefs, TableCol{Table: c.inst.table, Col: c.col})
			}
			continue
		}
		if r, ok := it.Expr.(sRef); ok {
			if n, ok := resolveIn(topBinds, r); ok {
				shape.ProjRefs = append(shape.ProjRefs, TableCol{Table: n.inst.table, Col: n.col})
			}
		}
	}

	// GROUP BY terms: Ts/Te pairs flag temporal grouping, the rest must
	// be plain resolvable columns for a split or locality proof.
	shape.HasGroupBy = len(sel.GroupBy) > 0
	shape.PlainGroup = true
	for _, g := range sel.GroupBy {
		if _, _, ok := isTimeRef(g); ok {
			shape.GroupByT = true
			continue
		}
		r, isRef := g.(sRef)
		if !isRef {
			shape.PlainGroup = false
			continue
		}
		n, ok := resolveIn(topBinds, r)
		if !ok {
			shape.PlainGroup = false
			continue
		}
		shape.GroupRefs = append(shape.GroupRefs, TableCol{Table: n.inst.table, Col: n.col})
	}

	shape.HasAgg = selHasAgg(sel)
	shape.Require, shape.Colocatable = colocationKey(w)
	shape.CanAggSplit = canAggSplit(sel, topBinds)
	return shape
}

// selHasAgg reports aggregate calls in the SELECT list or HAVING.
func selHasAgg(sel *selectStmt) bool {
	found := false
	var walk func(e sexpr)
	walk = func(e sexpr) {
		switch x := e.(type) {
		case sCall:
			if isAggName(x.Name) {
				found = true
			}
			for _, a := range x.Args {
				walk(a)
			}
		case sBin:
			walk(x.L)
			walk(x.R)
		case sNot:
			walk(x.X)
		case sIsNull:
			walk(x.X)
		case sBetween:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		}
	}
	for _, it := range sel.Items {
		if it.Expr != nil {
			walk(it.Expr)
		}
	}
	if sel.Having != nil {
		walk(sel.Having)
	}
	return found
}

// colocationKey searches the equality graph for one equivalence class
// that covers every instance and bridges every boundary with a direct
// equi-condition; the per-table column choice becomes the required
// partitioning. Two instances of one table demanding different columns
// make the tree non-colocatable under a single physical partitioning.
func colocationKey(w *dwalker) (map[string]string, bool) {
	req := map[string]string{}
	if len(w.insts) == 1 && len(w.boundaries) == 0 {
		return req, true // single scan: any partitioning works
	}
	// Union-find over (instance, column) nodes.
	parent := map[string]string{}
	var find func(x string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) {
		parent[find(a)] = find(b)
	}
	key := func(n dnode) string { return strconv.Itoa(n.inst.id) + "." + n.col }
	for _, eq := range w.equis {
		union(key(eq[0]), key(eq[1]))
	}
	// Candidate classes, ordered deterministically by root key.
	roots := map[string][]dnode{}
	for _, eq := range w.equis {
		for _, n := range eq {
			r := find(key(n))
			roots[r] = append(roots[r], n)
		}
	}
	var order []string
	for r := range roots {
		order = append(order, r)
	}
	sort.Strings(order)
	for _, r := range order {
		nodes := roots[r]
		covered := map[int]string{} // inst id -> chosen column (first seen)
		for _, n := range nodes {
			if _, ok := covered[n.inst.id]; !ok {
				covered[n.inst.id] = n.col
			}
		}
		if len(covered) != len(w.insts) {
			continue
		}
		ok := true
		for _, b := range w.boundaries {
			bridged := false
			for _, p := range b.pairs {
				if find(key(p[0])) == r && find(key(p[1])) == r {
					bridged = true
					break
				}
			}
			if !bridged {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Per-table column: all instances of a table must agree.
		assign := map[string]string{}
		consistent := true
		for _, in := range w.insts {
			col := covered[in.id]
			if prev, seen := assign[in.table]; seen && prev != col {
				consistent = false
				break
			}
			assign[in.table] = col
		}
		if consistent {
			return assign, true
		}
	}
	return nil, false
}

// canAggSplit reports whether the aggregation admits a partial/final
// split: a non-empty plain-column GROUP BY (plus optional Ts/Te) and a
// SELECT list of group-matching references and COUNT/SUM/MIN/MAX calls.
// AVG and global (ungrouped) aggregates are excluded — the float
// accumulation order and empty-input row semantics would diverge from
// the single-node pipeline — as are arithmetic expressions over
// aggregates.
func canAggSplit(sel *selectStmt, binds []dbind) bool {
	if !selHasAgg(sel) || len(sel.GroupBy) == 0 {
		return false
	}
	groupKeys := map[string]bool{}
	plain := 0
	for _, g := range sel.GroupBy {
		if _, _, ok := isTimeRef(g); ok {
			continue
		}
		groupKeys[render(g)] = true
		plain++
	}
	if plain == 0 {
		return false // purely temporal grouping: final regroup alone is fine, but keep it simple
	}
	okAgg := func(c sCall) bool {
		switch c.Name {
		case "count":
			return c.Star || len(c.Args) == 1
		case "sum", "min", "max":
			return len(c.Args) == 1
		}
		return false
	}
	for _, it := range sel.Items {
		if it.Star {
			return false
		}
		if _, _, ok := isTimeRef(it.Expr); ok {
			continue
		}
		if groupKeys[render(it.Expr)] {
			continue
		}
		c, isCall := it.Expr.(sCall)
		if !isCall || !isAggName(c.Name) || !okAgg(c) {
			return false
		}
	}
	if sel.Having != nil && !havingSplittable(sel.Having, groupKeys, okAgg) {
		return false
	}
	return true
}

// havingSplittable checks a HAVING tree: every column reference must be a
// group term or live inside a splittable aggregate call.
func havingSplittable(e sexpr, groupKeys map[string]bool, okAgg func(sCall) bool) bool {
	if e == nil {
		return true
	}
	if groupKeys[render(e)] {
		return true
	}
	if _, _, ok := isTimeRef(e); ok {
		return true
	}
	switch x := e.(type) {
	case sRef:
		return false // unmatched bare reference
	case sCall:
		if isAggName(x.Name) {
			return okAgg(x)
		}
		for _, a := range x.Args {
			if !havingSplittable(a, groupKeys, okAgg) {
				return false
			}
		}
		return true
	case sBin:
		return havingSplittable(x.L, groupKeys, okAgg) && havingSplittable(x.R, groupKeys, okAgg)
	case sNot:
		return havingSplittable(x.X, groupKeys, okAgg)
	case sIsNull:
		return havingSplittable(x.X, groupKeys, okAgg)
	case sBetween:
		return havingSplittable(x.X, groupKeys, okAgg) &&
			havingSplittable(x.Lo, groupKeys, okAgg) &&
			havingSplittable(x.Hi, groupKeys, okAgg)
	default:
		return true // literals, params
	}
}

// ------------------------------------------------------------ rendering

// drender renders AST fragments back to valid dialect SQL, renumbering
// $N placeholders gap-free in first-appearance order and substituting
// base-table names (the original binding name is preserved as an alias,
// so column references survive the substitution).
type drender struct {
	sb     strings.Builder
	subst  map[string]string
	params []int
	seen   map[int]int
	err    error
}

func newDrender(subst map[string]string) *drender {
	return &drender{subst: subst, seen: map[int]int{}}
}

func (d *drender) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("sqlish: distributed render: "+format, args...)
	}
}

func (d *drender) str(s string) { d.sb.WriteString(s) }

func (d *drender) param(idx int) {
	n, ok := d.seen[idx]
	if !ok {
		d.params = append(d.params, idx)
		n = len(d.params)
		d.seen[idx] = n
	}
	d.str("$" + strconv.Itoa(n))
}

func (d *drender) expr(e sexpr) {
	switch x := e.(type) {
	case sRef:
		if x.Table != "" {
			d.str(x.Table + "." + x.Col)
		} else {
			d.str(x.Col)
		}
	case sNum:
		d.str(x.Text)
	case sStr:
		d.str("'" + strings.ReplaceAll(x.Text, "'", "''") + "'")
	case sBool:
		if x.V {
			d.str("TRUE")
		} else {
			d.str("FALSE")
		}
	case sNull:
		d.str("NULL")
	case sParam:
		d.param(x.Idx)
	case sBin:
		d.str("(")
		d.expr(x.L)
		d.str(" " + strings.ToUpper(x.Op) + " ")
		d.expr(x.R)
		d.str(")")
	case sNot:
		d.str("(NOT ")
		d.expr(x.X)
		d.str(")")
	case sIsNull:
		d.str("(")
		d.expr(x.X)
		if x.Negate {
			d.str(" IS NOT NULL)")
		} else {
			d.str(" IS NULL)")
		}
	case sBetween:
		d.str("(")
		d.expr(x.X)
		d.str(" BETWEEN ")
		d.expr(x.Lo)
		d.str(" AND ")
		d.expr(x.Hi)
		d.str(")")
	case sCall:
		d.str(x.Name + "(")
		if x.Star {
			d.str("*")
		}
		for i, a := range x.Args {
			if i > 0 {
				d.str(", ")
			}
			d.expr(a)
		}
		d.str(")")
	default:
		d.fail("unsupported expression %T", e)
	}
}

func (d *drender) fromItem(f fromItem) {
	switch x := f.(type) {
	case fTable:
		repl, substituted := d.subst[x.Name]
		switch {
		case substituted:
			binding := x.Alias
			if binding == "" {
				binding = x.Name
			}
			d.str(repl + " AS " + binding)
		case x.Alias != "":
			d.str(x.Name + " AS " + x.Alias)
		default:
			d.str(x.Name)
		}
	case fAlign:
		d.str("(")
		d.fromItem(x.Left)
		d.str(" ALIGN ")
		d.fromItem(x.Right)
		d.str(" ON ")
		d.expr(x.Theta)
		d.str(")")
		if x.Alias != "" {
			d.str(" " + x.Alias)
		}
	case fNormalize:
		d.str("(")
		d.fromItem(x.Left)
		d.str(" NORMALIZE ")
		d.fromItem(x.Right)
		d.str(" USING (" + strings.Join(x.Using, ", ") + "))")
		if x.Alias != "" {
			d.str(" " + x.Alias)
		}
	case fJoin:
		d.fromItem(x.Left)
		switch x.Type {
		case "left":
			d.str(" LEFT JOIN ")
		case "right":
			d.str(" RIGHT JOIN ")
		case "full":
			d.str(" FULL JOIN ")
		case "cross":
			d.str(" CROSS JOIN ")
		default:
			d.str(" JOIN ")
		}
		d.fromItem(x.Right)
		if x.On != nil {
			d.str(" ON ")
			d.expr(x.On)
		}
	default:
		d.fail("unsupported FROM item %T", f)
	}
}

func (d *drender) selectBody(sel *selectStmt) {
	d.str("SELECT ")
	switch sel.Dedup {
	case dedupDistinct:
		d.str("DISTINCT ")
	case dedupAbsorb:
		d.str("ABSORB ")
	}
	for i, it := range sel.Items {
		if i > 0 {
			d.str(", ")
		}
		if it.Star {
			d.str("*")
			continue
		}
		d.expr(it.Expr)
		if it.Alias != "" {
			d.str(" AS " + it.Alias)
		}
	}
	if len(sel.From) > 0 {
		d.str(" FROM ")
		for i, f := range sel.From {
			if i > 0 {
				d.str(", ")
			}
			d.fromItem(f)
		}
	}
	if sel.Where != nil {
		d.str(" WHERE ")
		d.expr(sel.Where)
	}
	if len(sel.GroupBy) > 0 {
		d.str(" GROUP BY ")
		for i, g := range sel.GroupBy {
			if i > 0 {
				d.str(", ")
			}
			d.expr(g)
		}
	}
	if sel.Having != nil {
		d.str(" HAVING ")
		d.expr(sel.Having)
	}
}

func (d *drender) orderLimit(a *statement) {
	if len(a.OrderBy) > 0 {
		d.str(" ORDER BY ")
		for i, k := range a.OrderBy {
			if i > 0 {
				d.str(", ")
			}
			d.expr(k.Expr)
			if k.Desc {
				d.str(" DESC")
			}
		}
	}
	if a.Limit != nil {
		d.str(" LIMIT " + strconv.FormatInt(*a.Limit, 10))
	}
	if a.Offset != nil {
		d.str(" OFFSET " + strconv.FormatInt(*a.Offset, 10))
	}
}

// RenderDistBody renders the statement's single-SELECT body — dedup
// mode, SELECT list, FROM, WHERE, GROUP BY, HAVING — without ORDER
// BY/LIMIT (those run in the coordinator's final stage). subst replaces
// base-table names (aliasing the original binding name so references
// survive); the returned ints map the rendered $1..$N back to the
// original statement's parameter indices.
func (st *Statement) RenderDistBody(subst map[string]string) (string, []int, error) {
	a := st.ast
	if len(a.With) > 0 || a.Body == nil || a.Body.Select == nil {
		return "", nil, fmt.Errorf("sqlish: distributed render: not a single-SELECT statement")
	}
	d := newDrender(subst)
	d.selectBody(a.Body.Select)
	if d.err != nil {
		return "", nil, d.err
	}
	return d.sb.String(), d.params, nil
}

// RenderDistFinal renders the coordinator's final stage over a gathered
// temp table: `SELECT [dedup] * FROM <from>` plus the statement's ORDER
// BY/LIMIT/OFFSET. redoDedup re-applies the statement's DISTINCT/ABSORB
// over the union of shard-local results (needed when dedup groups are
// not pinned to one shard).
func (st *Statement) RenderDistFinal(from string, redoDedup bool) (string, []int, error) {
	a := st.ast
	d := newDrender(nil)
	d.str("SELECT ")
	if redoDedup && a.Body != nil && a.Body.Select != nil {
		switch a.Body.Select.Dedup {
		case dedupDistinct:
			d.str("DISTINCT ")
		case dedupAbsorb:
			d.str("ABSORB ")
		}
	}
	d.str("* FROM " + from)
	d.orderLimit(a)
	if d.err != nil {
		return "", nil, d.err
	}
	return d.sb.String(), d.params, nil
}

// RenderDistAgg renders the partial/final aggregate split (CanAggSplit
// must hold). Workers evaluate the partial form per shard — group terms
// as __g<j> columns, each distinct aggregate as an __a<k> column, HAVING
// deferred — and the coordinator re-aggregates the gathered partials
// with SUM/MIN/MAX finals, reapplying HAVING, ORDER BY and LIMIT.
// Temporal grouping rides on the tuples' valid time: the worker groups
// by Ts/Te so each partial carries its group interval, and the final
// groups by Ts/Te again.
func (st *Statement) RenderDistAgg(subst map[string]string, from string) (*DistAggSQL, error) {
	a := st.ast
	if len(a.With) > 0 || a.Body == nil || a.Body.Select == nil {
		return nil, fmt.Errorf("sqlish: distributed render: not a single-SELECT statement")
	}
	sel := a.Body.Select

	// Collect plain group terms and distinct aggregate calls.
	type aggSlot struct {
		call sCall
		key  string
	}
	var groups []sexpr
	groupIdx := map[string]int{}
	groupByT := false
	for _, g := range sel.GroupBy {
		if _, _, ok := isTimeRef(g); ok {
			groupByT = true
			continue
		}
		k := render(g)
		if _, ok := groupIdx[k]; !ok {
			groupIdx[k] = len(groups)
			groups = append(groups, g)
		}
	}
	var aggs []aggSlot
	aggIdx := map[string]int{}
	var collect func(e sexpr)
	collect = func(e sexpr) {
		switch x := e.(type) {
		case sCall:
			if isAggName(x.Name) {
				k := render(x)
				if _, ok := aggIdx[k]; !ok {
					aggIdx[k] = len(aggs)
					aggs = append(aggs, aggSlot{call: x, key: k})
				}
				return
			}
			for _, arg := range x.Args {
				collect(arg)
			}
		case sBin:
			collect(x.L)
			collect(x.R)
		case sNot:
			collect(x.X)
		case sIsNull:
			collect(x.X)
		case sBetween:
			collect(x.X)
			collect(x.Lo)
			collect(x.Hi)
		}
	}
	for _, it := range sel.Items {
		if it.Expr != nil {
			collect(it.Expr)
		}
	}
	if sel.Having != nil {
		collect(sel.Having)
	}
	if len(groups) == 0 || len(aggs) == 0 {
		return nil, fmt.Errorf("sqlish: distributed render: aggregation not splittable")
	}

	// Worker fragment: groups and partial aggregates, original GROUP BY.
	w := newDrender(subst)
	w.str("SELECT ")
	for j, g := range groups {
		if j > 0 {
			w.str(", ")
		}
		w.expr(g)
		w.str(" AS __g" + strconv.Itoa(j))
	}
	for k, slot := range aggs {
		w.str(", ")
		w.expr(slot.call) // COUNT/SUM/MIN/MAX partials are the calls themselves
		w.str(" AS __a" + strconv.Itoa(k))
	}
	w.str(" FROM ")
	for i, f := range sel.From {
		if i > 0 {
			w.str(", ")
		}
		w.fromItem(f)
	}
	if sel.Where != nil {
		w.str(" WHERE ")
		w.expr(sel.Where)
	}
	w.str(" GROUP BY ")
	for i, g := range sel.GroupBy {
		if i > 0 {
			w.str(", ")
		}
		w.expr(g)
	}
	if w.err != nil {
		return nil, w.err
	}

	// Final stage: re-aggregate the gathered partials. finalExpr rewrites
	// an expression in terms of the temp columns.
	f := newDrender(nil)
	finalAgg := func(slot aggSlot, k int) {
		col := "__a" + strconv.Itoa(k)
		switch slot.call.Name {
		case "count", "sum":
			f.str("sum(" + col + ")")
		case "min":
			f.str("min(" + col + ")")
		case "max":
			f.str("max(" + col + ")")
		}
	}
	var finalExpr func(e sexpr)
	finalExpr = func(e sexpr) {
		if c, ok := e.(sCall); ok && isAggName(c.Name) {
			k, found := aggIdx[render(c)]
			if !found {
				f.fail("aggregate %s missing from split", render(c))
				return
			}
			finalAgg(aggs[k], k)
			return
		}
		if j, ok := groupIdx[render(e)]; ok {
			f.str("__g" + strconv.Itoa(j))
			return
		}
		if _, _, ok := isTimeRef(e); ok {
			f.expr(e)
			return
		}
		switch x := e.(type) {
		case sRef:
			f.fail("unresolved reference %s in final stage", render(e))
		case sBin:
			f.str("(")
			finalExpr(x.L)
			f.str(" " + strings.ToUpper(x.Op) + " ")
			finalExpr(x.R)
			f.str(")")
		case sNot:
			f.str("(NOT ")
			finalExpr(x.X)
			f.str(")")
		case sIsNull:
			f.str("(")
			finalExpr(x.X)
			if x.Negate {
				f.str(" IS NOT NULL)")
			} else {
				f.str(" IS NULL)")
			}
		case sBetween:
			f.str("(")
			finalExpr(x.X)
			f.str(" BETWEEN ")
			finalExpr(x.Lo)
			f.str(" AND ")
			finalExpr(x.Hi)
			f.str(")")
		default:
			f.expr(e)
		}
	}
	f.str("SELECT ")
	for i, it := range sel.Items {
		if i > 0 {
			f.str(", ")
		}
		name := distItemName(it, i)
		before := f.sb.Len()
		finalExpr(it.Expr)
		if f.sb.String()[before:] != name {
			f.str(" AS " + name)
		}
	}
	f.str(" FROM " + from + " GROUP BY ")
	for j := range groups {
		if j > 0 {
			f.str(", ")
		}
		f.str("__g" + strconv.Itoa(j))
	}
	if groupByT {
		f.str(", ts, te")
	}
	if sel.Having != nil {
		f.str(" HAVING ")
		finalExpr(sel.Having)
	}
	// ORDER BY keys must be re-expressed against the final stage's own
	// output: a bare reference names an output column (group terms and
	// aggregates keep their original names via AS), an aggregate call is
	// rewritten to its re-aggregated form, anything else is unsupported
	// (the coordinator falls back to gather-all when rendering fails).
	if len(a.OrderBy) > 0 {
		f.str(" ORDER BY ")
		for i, k := range a.OrderBy {
			if i > 0 {
				f.str(", ")
			}
			if r, isRef := k.Expr.(sRef); isRef && r.Table == "" {
				f.str(r.Col)
			} else if c, isCall := k.Expr.(sCall); isCall && isAggName(c.Name) {
				finalExpr(k.Expr)
			} else {
				f.fail("ORDER BY key %s not renderable in final aggregate stage", render(k.Expr))
			}
			if k.Desc {
				f.str(" DESC")
			}
		}
	}
	if a.Limit != nil {
		f.str(" LIMIT " + strconv.FormatInt(*a.Limit, 10))
	}
	if a.Offset != nil {
		f.str(" OFFSET " + strconv.FormatInt(*a.Offset, 10))
	}
	if f.err != nil {
		return nil, f.err
	}
	return &DistAggSQL{
		Worker:       w.sb.String(),
		WorkerParams: w.params,
		Final:        f.sb.String(),
		FinalParams:  f.params,
	}, nil
}

// distItemName mirrors the analyzer's output-column naming.
func distItemName(item selectItem, pos int) string {
	return itemName(item, pos)
}
