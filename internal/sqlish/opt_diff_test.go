package sqlish

import (
	"math/rand"
	"testing"

	"talign/internal/core"
	"talign/internal/expr"
	"talign/internal/plan"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/value"
)

// diffQueries is the statement mix the optimizer differential covers:
// filters over every pushdown target (projections, joins incl. outer,
// ALIGN/NORMALIZE, set operations, DISTINCT/ABSORB, GROUP BY + HAVING),
// constant folding, multi-way join chains eligible for reordering, WITH
// sharing, and ORDER BY.
var diffQueries = []string{
	"SELECT a, b FROM r WHERE a = 1 AND b >= 1",
	"SELECT a, b, Ts, Te FROM r WHERE a = 1 AND 1 = 1",
	"SELECT r.a, s.b FROM r JOIN s ON r.a = s.a WHERE s.b >= 1 AND r.b <= 2",
	"SELECT r.a, s.b FROM r LEFT JOIN s ON r.a = s.a WHERE r.b >= 1",
	"SELECT r.a, s.b FROM r RIGHT JOIN s ON r.a = s.a AND r.b >= 1 WHERE s.b <= 2",
	"SELECT r.a ra, s.a sa, u.b ub FROM r JOIN s ON r.a = s.a JOIN u ON s.b = u.b WHERE u.a >= 1",
	"SELECT r.b, s.b, u.b FROM r, s, u WHERE r.a = s.a AND s.b = u.b AND u.a = 1",
	"SELECT a, b, Ts, Te FROM (r ALIGN s ON r.a = s.a) x WHERE a >= 1",
	"SELECT a, b, Ts, Te FROM (r NORMALIZE s USING (a)) x WHERE b = 2",
	"SELECT a, COUNT(*) c FROM r WHERE b >= 0 GROUP BY a HAVING a >= 1",
	"SELECT a, b FROM r WHERE a = 1 UNION SELECT a, b FROM s WHERE b = 1",
	"SELECT DISTINCT a FROM r WHERE b = 0",
	"SELECT ABSORB a, b, Ts, Te FROM r WHERE a >= 1",
	"WITH w AS (SELECT a, b FROM r WHERE a >= 1) SELECT w1.a, w2.b FROM w w1 JOIN w w2 ON w1.a = w2.a",
	"SELECT a, b FROM r WHERE a BETWEEN 0 AND 1 ORDER BY a, b",
}

// diffEngines builds optimizer-on (analyzed and unanalyzed) and
// optimizer-off engines over the same relations.
func diffEngines(t *testing.T, rels map[string]*relation.Relation) (on, onStats, off *Engine) {
	t.Helper()
	mk := func(disable, analyze bool) *Engine {
		f := plan.DefaultFlags()
		f.DisableOptimizer = disable
		e := NewEngine(f)
		for name, rel := range rels {
			e.Register(name, rel)
			if analyze {
				if _, err := e.Analyze(name); err != nil {
					t.Fatal(err)
				}
			}
		}
		return e
	}
	return mk(false, false), mk(false, true), mk(true, false)
}

// TestOptimizerDifferential proves, over randomized relations, that
// optimized plans (with and without ANALYZE statistics) return exactly
// the rows the unoptimized plans do. The unoptimized path is itself
// diffed against the snapshot-semantics oracle by the core and fused
// operator tests, so agreement here chains the optimizer to the oracle.
func TestOptimizerDifferential(t *testing.T) {
	attrs := []schema.Attr{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
	}
	const seeds = 30
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		cfg := randrel.DefaultConfig(attrs...)
		cfg.MaxTuples = 12
		rels := map[string]*relation.Relation{
			"r": randrel.Generate(rng, cfg),
			"s": randrel.Generate(rng, cfg),
			"u": randrel.Generate(rng, cfg),
		}
		on, onStats, off := diffEngines(t, rels)
		for _, q := range diffQueries {
			want, _, err := off.Query(q)
			if err != nil {
				t.Fatalf("seed %d: unoptimized %s: %v", seed, q, err)
			}
			for name, e := range map[string]*Engine{"opt": on, "opt+stats": onStats} {
				got, _, err := e.Query(q)
				if err != nil {
					t.Fatalf("seed %d: %s %s: %v", seed, name, q, err)
				}
				if !relation.SetEqual(got, want) {
					onlyG, onlyW := relation.Diff(got, want)
					t.Fatalf("seed %d: %s diverged on %s\nonly %s: %v\nonly unopt: %v",
						seed, name, q, name, onlyG, onlyW)
				}
			}
		}
	}
}

// TestOptimizerAlignPushdownVsAlgebra checks the key semantic claim
// behind ALIGN pushdown directly against the algebra: filtering an
// alignment's output by a value predicate equals aligning the
// pre-filtered left side (whose plans the core tests diff against the
// oracle).
func TestOptimizerAlignPushdownVsAlgebra(t *testing.T) {
	attrs := []schema.Attr{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
	}
	for seed := 0; seed < 20; seed++ {
		rng := rand.New(rand.NewSource(int64(100 + seed)))
		cfg := randrel.DefaultConfig(attrs...)
		r := randrel.Generate(rng, cfg)
		s := randrel.Generate(rng, cfg)

		_, onStats, _ := diffEngines(t, map[string]*relation.Relation{"r": r, "s": s})
		got, _, err := onStats.Query("SELECT a, b, Ts, Te FROM (r ALIGN s ON r.a = s.a) x WHERE a = 1")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Algebra reference: σ_{a=1}(r) aligned against s.
		fr := relation.New(r.Schema)
		for _, tp := range r.Tuples {
			if tp.Vals[0].Kind() == value.KindInt && tp.Vals[0].Int() == 1 {
				fr.Tuples = append(fr.Tuples, tp)
			}
		}
		// θ positionally: left a is column 0, right a is column 2 of the
		// concatenated row (both relations are (a, b)).
		theta := expr.Eq(expr.CI(0, value.KindInt), expr.CI(2, value.KindInt))
		want, err := core.Default().Align(fr, s, theta)
		if err != nil {
			t.Fatalf("seed %d: align: %v", seed, err)
		}
		if !relation.SetEqual(got, want) {
			onlyG, onlyW := relation.Diff(got, want)
			t.Fatalf("seed %d: SQL pushdown diverged from algebra\nonly sql: %v\nonly algebra: %v\nsql rows %d vs algebra %d",
				seed, onlyG, onlyW, got.Len(), want.Len())
		}
	}
}

// TestOptimizedPlansDeterministic: preparing the same statement twice
// yields the same EXPLAIN, so the plan cache can safely share optimized
// plans.
func TestOptimizedPlansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := randrel.DefaultConfig(schema.Attr{Name: "a", Type: value.KindInt}, schema.Attr{Name: "b", Type: value.KindInt})
	rels := map[string]*relation.Relation{
		"r": randrel.Generate(rng, cfg),
		"s": randrel.Generate(rng, cfg),
		"u": randrel.Generate(rng, cfg),
	}
	_, onStats, _ := diffEngines(t, rels)
	for _, q := range diffQueries {
		_, p1, err := onStats.Query("EXPLAIN " + q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		_, p2, err := onStats.Query("EXPLAIN " + q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if p1 != p2 {
			t.Errorf("nondeterministic plan for %s:\n%s\nvs\n%s", q, p1, p2)
		}
	}
}
