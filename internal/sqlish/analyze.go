package sqlish

import (
	"fmt"
	"strconv"
	"strings"

	"talign/internal/core"
	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/plan"
	"talign/internal/schema"
	"talign/internal/value"
)

// analyzer turns ASTs into plans (the Analyze → Plan stages of the
// pipeline). Table names resolve against a base Catalog plus the WITH
// clauses of the current statement, which are planned as shared subtrees
// (materialized once per execution) instead of being evaluated eagerly —
// that is what lets a statement containing WITH be prepared once and
// executed many times with different parameters.
type analyzer struct {
	base     Catalog
	with     map[string]plan.Node
	planner  *plan.Planner
	algebra  *core.Algebra
	maxParam int
}

// newAnalyzer builds an analyzer over cat under the given flags. A
// catalog that also resolves statistics (StatsCatalog) feeds them to the
// planner, so scan nodes pick up their tables' ANALYZE results.
func newAnalyzer(cat Catalog, flags plan.Flags) *analyzer {
	a := &analyzer{
		base:    cat,
		with:    map[string]plan.Node{},
		planner: plan.NewPlanner(flags),
		algebra: core.New(flags),
	}
	if src, ok := cat.(plan.StatsSource); ok {
		a.planner.Stats = src
	}
	return a
}

// lookup resolves a table name: WITH clauses shadow the base catalog.
func (a *analyzer) lookup(name string) (plan.Node, bool) {
	key := strings.ToLower(name)
	if n, ok := a.with[key]; ok {
		return n, true
	}
	if a.base != nil {
		if rel, ok := a.base.Lookup(key); ok {
			return a.planner.Scan(rel, name), true
		}
	}
	return nil, false
}

// scopeItem is one visible FROM entity. tsOff/teOff point at the hidden
// columns holding the entity's valid time as data (the virtual Ts/Te).
type scopeItem struct {
	alias        string
	sch          schema.Schema
	off          int
	tsOff, teOff int
}

type scope struct {
	items []scopeItem
	width int
}

func (s *scope) shift(delta int) {
	for i := range s.items {
		s.items[i].off += delta
		s.items[i].tsOff += delta
		s.items[i].teOff += delta
	}
}

// addHidden wraps a node so its visible columns are followed by fresh
// __ts/__te columns reflecting the node's current valid time.
func (a *analyzer) addHidden(n plan.Node) plan.Node {
	sch := n.Schema()
	names := make([]string, 0, sch.Len()+2)
	exprs := make([]expr.Expr, 0, sch.Len()+2)
	for i, at := range sch.Attrs {
		names = append(names, at.Name)
		exprs = append(exprs, expr.ColIdx{Idx: i, Typ: at.Type, Name: at.Name})
	}
	names = append(names, "__ts", "__te")
	exprs = append(exprs, expr.TStart{}, expr.TEnd{})
	return a.planner.Project(n, names, exprs)
}

// visibleOnly strips hidden columns from an item's node.
func visibleSchema(items []scopeItem) []schema.Attr {
	var attrs []schema.Attr
	for _, it := range items {
		attrs = append(attrs, it.sch.Attrs...)
	}
	return attrs
}

// buildFrom compiles one from item.
func (a *analyzer) buildFrom(fi fromItem) (plan.Node, *scope, error) {
	switch f := fi.(type) {
	case fTable:
		src, ok := a.lookup(f.Name)
		if !ok {
			return nil, nil, fmt.Errorf("sqlish: unknown table %q", f.Name)
		}
		alias := f.Alias
		if alias == "" {
			alias = f.Name
		}
		sch := src.Schema()
		node := a.addHidden(src)
		sc := &scope{
			items: []scopeItem{{alias: alias, sch: sch, off: 0, tsOff: sch.Len(), teOff: sch.Len() + 1}},
			width: sch.Len() + 2,
		}
		return node, sc, nil

	case fSubquery:
		node, _, err := a.buildSelect(f.Query)
		if err != nil {
			return nil, nil, err
		}
		wrapped := a.addHidden(node)
		n := node.Schema().Len()
		sc := &scope{
			items: []scopeItem{{alias: f.Alias, sch: node.Schema(), off: 0, tsOff: n, teOff: n + 1}},
			width: n + 2,
		}
		return wrapped, sc, nil

	case fAlign:
		if f.Alias == "" {
			return nil, nil, fmt.Errorf("sqlish: ALIGN requires an alias")
		}
		left, lsc, err := a.buildFrom(f.Left)
		if err != nil {
			return nil, nil, err
		}
		right, rsc, err := a.buildFrom(f.Right)
		if err != nil {
			return nil, nil, err
		}
		combined := combineScopes(lsc, rsc)
		theta, err := a.resolve(f.Theta, combined, false)
		if err != nil {
			return nil, nil, err
		}
		aligned := a.algebra.AlignPlan(left, right, theta)
		// The aligned node still carries the left side's stale hidden
		// columns; re-project to the visible columns and fresh times.
		visible := visibleSchema(lsc.items)
		node := a.addHidden(a.projectCols(aligned, lsc, visible))
		sc := &scope{
			items: []scopeItem{{alias: f.Alias, sch: schema.Schema{Attrs: visible}, off: 0, tsOff: len(visible), teOff: len(visible) + 1}},
			width: len(visible) + 2,
		}
		return node, sc, nil

	case fNormalize:
		if f.Alias == "" {
			return nil, nil, fmt.Errorf("sqlish: NORMALIZE requires an alias")
		}
		left, lsc, err := a.buildFrom(f.Left)
		if err != nil {
			return nil, nil, err
		}
		right, rsc, err := a.buildFrom(f.Right)
		if err != nil {
			return nil, nil, err
		}
		var rCols, sCols []int
		for _, name := range f.Using {
			rc, _, err := findColumn(lsc, "", name)
			if err != nil {
				return nil, nil, fmt.Errorf("sqlish: NORMALIZE USING: %v", err)
			}
			sc, _, err := findColumn(rsc, "", name)
			if err != nil {
				return nil, nil, fmt.Errorf("sqlish: NORMALIZE USING: %v", err)
			}
			rCols = append(rCols, rc)
			sCols = append(sCols, sc)
		}
		norm := a.algebra.NormalizePlan2(left, right, rCols, sCols)
		visible := visibleSchema(lsc.items)
		node := a.addHidden(a.projectCols(norm, lsc, visible))
		sc := &scope{
			items: []scopeItem{{alias: f.Alias, sch: schema.Schema{Attrs: visible}, off: 0, tsOff: len(visible), teOff: len(visible) + 1}},
			width: len(visible) + 2,
		}
		return node, sc, nil

	case fJoin:
		left, lsc, err := a.buildFrom(f.Left)
		if err != nil {
			return nil, nil, err
		}
		right, rsc, err := a.buildFrom(f.Right)
		if err != nil {
			return nil, nil, err
		}
		combined := combineScopes(lsc, rsc)
		var cond expr.Expr
		if f.On != nil {
			cond, err = a.resolve(f.On, combined, false)
			if err != nil {
				return nil, nil, err
			}
		}
		var jt exec.JoinType
		switch f.Type {
		case "inner", "cross":
			jt = exec.InnerJoin
		case "left":
			jt = exec.LeftOuterJoin
		case "right":
			jt = exec.RightOuterJoin
		case "full":
			jt = exec.FullOuterJoin
		default:
			return nil, nil, fmt.Errorf("sqlish: unsupported join type %q", f.Type)
		}
		node := a.planner.ParJoin(left, right, cond, jt, false)
		return node, combined, nil
	}
	return nil, nil, fmt.Errorf("sqlish: unhandled from item %T", fi)
}

// projectCols projects a node (whose layout matches sc) down to the given
// visible attributes, keeping valid time.
func (a *analyzer) projectCols(n plan.Node, sc *scope, visible []schema.Attr) plan.Node {
	names := make([]string, 0, len(visible))
	exprs := make([]expr.Expr, 0, len(visible))
	i := 0
	for _, it := range sc.items {
		for c, at := range it.sch.Attrs {
			names = append(names, at.Name)
			exprs = append(exprs, expr.ColIdx{Idx: it.off + c, Typ: at.Type, Name: at.Name})
			i++
		}
	}
	return a.planner.Project(n, names, exprs)
}

func combineScopes(l, r *scope) *scope {
	out := &scope{width: l.width + r.width}
	out.items = append(out.items, l.items...)
	rr := &scope{items: append([]scopeItem{}, r.items...)}
	rr.shift(l.width)
	out.items = append(out.items, rr.items...)
	return out
}

// findColumn resolves a (qualified) name to an absolute column offset.
func findColumn(sc *scope, table, col string) (int, value.Kind, error) {
	found := -1
	var kind value.Kind
	for _, it := range sc.items {
		if table != "" && !strings.EqualFold(it.alias, table) {
			continue
		}
		if i := it.sch.Index(col); i >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("ambiguous column %q", col)
			}
			found = it.off + i
			kind = it.sch.Attrs[i].Type
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("unknown column %q", qualify(table, col))
	}
	return found, kind, nil
}

func qualify(table, col string) string {
	if table == "" {
		return col
	}
	return table + "." + col
}

// findTime resolves a Ts/Te reference to the hidden column of the named
// (or first) item.
func findTime(sc *scope, table, col string) (int, error) {
	for _, it := range sc.items {
		if table != "" && !strings.EqualFold(it.alias, table) {
			continue
		}
		if col == "ts" {
			return it.tsOff, nil
		}
		return it.teOff, nil
	}
	return 0, fmt.Errorf("unknown table %q for %s", table, col)
}

// aggregate function names.
func isAggName(name string) bool {
	switch name {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}

// resolve compiles a surface expression against a scope. When allowAgg is
// false, aggregate calls are rejected (they are only legal in SELECT and
// HAVING, where the caller extracts them first).
func (a *analyzer) resolve(e sexpr, sc *scope, allowAgg bool) (expr.Expr, error) {
	switch x := e.(type) {
	case sRef:
		if x.Col == "ts" || x.Col == "te" {
			off, err := findTime(sc, x.Table, x.Col)
			if err != nil {
				return nil, fmt.Errorf("sqlish: %v", err)
			}
			return expr.ColIdx{Idx: off, Typ: value.KindInt, Name: qualify(x.Table, x.Col)}, nil
		}
		off, kind, err := findColumn(sc, x.Table, x.Col)
		if err != nil {
			return nil, fmt.Errorf("sqlish: %v", err)
		}
		return expr.ColIdx{Idx: off, Typ: kind, Name: qualify(x.Table, x.Col)}, nil
	case sNum:
		if strings.Contains(x.Text, ".") {
			f, err := strconv.ParseFloat(x.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlish: bad number %q", x.Text)
			}
			return expr.Float(f), nil
		}
		i, err := strconv.ParseInt(x.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlish: bad number %q", x.Text)
		}
		return expr.Int(i), nil
	case sStr:
		return expr.Str(x.Text), nil
	case sBool:
		return expr.Bool(x.V), nil
	case sNull:
		return expr.Null, nil
	case sParam:
		if x.Idx > a.maxParam {
			a.maxParam = x.Idx
		}
		return expr.Param{Idx: x.Idx}, nil
	case sNot:
		inner, err := a.resolve(x.X, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		return expr.Neg(inner), nil
	case sIsNull:
		inner, err := a.resolve(x.X, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		return expr.IsNull{X: inner, Negate: x.Negate}, nil
	case sBetween:
		xx, err := a.resolve(x.X, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		lo, err := a.resolve(x.Lo, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		hi, err := a.resolve(x.Hi, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		return expr.Between{X: xx, Lo: lo, Hi: hi}, nil
	case sBin:
		l, err := a.resolve(x.L, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		r, err := a.resolve(x.R, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "and":
			return expr.And(l, r), nil
		case "or":
			return expr.Or(l, r), nil
		case "=":
			return expr.Eq(l, r), nil
		case "<>":
			return expr.Ne(l, r), nil
		case "<":
			return expr.Lt(l, r), nil
		case "<=":
			return expr.Le(l, r), nil
		case ">":
			return expr.Gt(l, r), nil
		case ">=":
			return expr.Ge(l, r), nil
		case "+":
			return expr.Add(l, r), nil
		case "-":
			return expr.Sub(l, r), nil
		case "*":
			return expr.Mul(l, r), nil
		case "/":
			return expr.Div(l, r), nil
		case "%":
			return expr.Mod(l, r), nil
		}
		return nil, fmt.Errorf("sqlish: unknown operator %q", x.Op)
	case sCall:
		if isAggName(x.Name) {
			return nil, fmt.Errorf("sqlish: aggregate %s not allowed here", strings.ToUpper(x.Name))
		}
		args := make([]expr.Expr, len(x.Args))
		for i, arg := range x.Args {
			r, err := a.resolve(arg, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			args[i] = r
		}
		return expr.Call(x.Name, args...), nil
	}
	return nil, fmt.Errorf("sqlish: unhandled expression %T", e)
}

// render canonicalizes a surface expression for GROUP BY matching.
func render(e sexpr) string {
	switch x := e.(type) {
	case sRef:
		return qualify(x.Table, x.Col)
	case sNum:
		return x.Text
	case sStr:
		return "'" + x.Text + "'"
	case sBool:
		return fmt.Sprint(x.V)
	case sNull:
		return "null"
	case sParam:
		return "$" + strconv.Itoa(x.Idx)
	case sNot:
		return "not(" + render(x.X) + ")"
	case sIsNull:
		if x.Negate {
			return "isnotnull(" + render(x.X) + ")"
		}
		return "isnull(" + render(x.X) + ")"
	case sBetween:
		return "between(" + render(x.X) + "," + render(x.Lo) + "," + render(x.Hi) + ")"
	case sBin:
		return "(" + render(x.L) + x.Op + render(x.R) + ")"
	case sCall:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = render(a)
		}
		star := ""
		if x.Star {
			star = "*"
		}
		return x.Name + "(" + star + strings.Join(parts, ",") + ")"
	}
	return fmt.Sprintf("%T", e)
}

// isTimeRef reports whether e is a bare or qualified Ts/Te reference.
func isTimeRef(e sexpr) (col string, table string, ok bool) {
	r, isRef := e.(sRef)
	if !isRef || (r.Col != "ts" && r.Col != "te") {
		return "", "", false
	}
	return r.Col, r.Table, true
}
