package sqlish

import (
	"strings"
	"testing"

	"talign/internal/plan"
	"talign/internal/relation"
)

// distCat is the two-table catalog the dist analysis tests resolve
// unqualified references against.
func distCat(t *testing.T) MapCatalog {
	t.Helper()
	cat := MapCatalog{}
	for _, name := range []string{"r", "s"} {
		b := relation.NewBuilder("a int", "b int")
		b.Row(0, 10, int64(1), int64(2))
		cat.Register(name, b.MustBuild())
	}
	return cat
}

func distInfo(t *testing.T, sql string) *DistInfo {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st.DistInfo(distCat(t))
}

func TestDistInfoClassification(t *testing.T) {
	info := distInfo(t, "SELECT a, b FROM r WHERE a = 1")
	if info.Kind != DistSelect || len(info.Tables) != 1 || info.Tables[0] != "r" {
		t.Fatalf("simple select: kind %v tables %v", info.Kind, info.Tables)
	}
	if info.Shape == nil || !info.Shape.Colocatable || len(info.Shape.Require) != 0 {
		t.Fatalf("single-table scan should be unconstrained-colocatable: %+v", info.Shape)
	}
	if info.OrderLimit {
		t.Fatal("OrderLimit set without ORDER BY/LIMIT")
	}

	info = distInfo(t, "SELECT a FROM r ORDER BY a LIMIT 1")
	if !info.OrderLimit {
		t.Fatal("OrderLimit not set for ORDER BY + LIMIT")
	}

	info = distInfo(t, "SELECT r.a FROM r JOIN s ON r.a = s.b")
	if info.Shape == nil || !info.Shape.Colocatable {
		t.Fatalf("equi-join should be colocatable: %+v", info.Shape)
	}
	if info.Shape.Require["r"] != "a" || info.Shape.Require["s"] != "b" {
		t.Fatalf("join key assignment = %v, want r:a s:b", info.Shape.Require)
	}

	info = distInfo(t, "SELECT r.a FROM r JOIN s ON r.a > s.a")
	if info.Shape != nil && info.Shape.Colocatable {
		t.Fatal("non-equi join must not be colocatable")
	}

	info = distInfo(t, "WITH w AS (SELECT a FROM r) SELECT a FROM w")
	if info.Shape != nil {
		t.Fatalf("WITH statement should have no scatter shape, got %+v", info.Shape)
	}
	if len(info.Tables) != 1 || info.Tables[0] != "r" {
		t.Fatalf("WITH base tables = %v, want [r]", info.Tables)
	}

	info = distInfo(t, "ANALYZE r")
	if info.Kind != DistAnalyze || info.Target != "r" {
		t.Fatalf("ANALYZE: kind %v target %q", info.Kind, info.Target)
	}
	info = distInfo(t, "DROP TABLE s")
	if info.Kind != DistDrop || info.Target != "s" {
		t.Fatalf("DROP: kind %v target %q", info.Kind, info.Target)
	}
}

func TestDistInfoAggShape(t *testing.T) {
	info := distInfo(t, "SELECT b, COUNT(*) c, SUM(a) sa FROM r GROUP BY b")
	sh := info.Shape
	if sh == nil || !sh.HasAgg || !sh.HasGroupBy || !sh.PlainGroup || !sh.CanAggSplit {
		t.Fatalf("grouped count/sum should admit the agg split: %+v", sh)
	}
	if len(sh.GroupRefs) != 1 || sh.GroupRefs[0] != (TableCol{Table: "r", Col: "b"}) {
		t.Fatalf("GroupRefs = %v, want [r.b]", sh.GroupRefs)
	}

	info = distInfo(t, "SELECT b, AVG(a) av FROM r GROUP BY b")
	if info.Shape != nil && info.Shape.CanAggSplit {
		t.Fatal("AVG must not admit the partial/final split")
	}
	info = distInfo(t, "SELECT COUNT(*) c FROM r")
	if info.Shape != nil && info.Shape.CanAggSplit {
		t.Fatal("a global aggregate must not admit the partial/final split")
	}
}

// TestRenderDistBodyParams proves fragment SQL renumbers $N gap-free and
// reports the original indices, and that substituted tables keep their
// binding name.
func TestRenderDistBodyParams(t *testing.T) {
	st, err := Parse("SELECT a, b FROM r WHERE a >= $2 AND b <= $1 ORDER BY a LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	body, params, err := st.RenderDistBody(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(body, "ORDER") || strings.Contains(body, "LIMIT") {
		t.Fatalf("body kept ORDER BY/LIMIT: %s", body)
	}
	if !strings.Contains(body, "$1") || !strings.Contains(body, "$2") || strings.Contains(body, "$3") {
		t.Fatalf("body params not renumbered gap-free: %s", body)
	}
	if len(params) != 2 || params[0] != 2 || params[1] != 1 {
		t.Fatalf("param mapping = %v, want [2 1]", params)
	}

	body, _, err = st.RenderDistBody(map[string]string{"r": "__rp1_r"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "__rp1_r AS r") {
		t.Fatalf("substituted body does not alias the staged table: %s", body)
	}

	final, fparams, err := st.RenderDistFinal("__g", false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(final, "FROM __g") || !strings.Contains(final, "ORDER BY") || !strings.Contains(final, "LIMIT 3") {
		t.Fatalf("final stage missing FROM/ORDER/LIMIT: %s", final)
	}
	if len(fparams) != 0 {
		t.Fatalf("final stage params = %v, want none", fparams)
	}
}

// TestRenderDistAggSplit proves the worker/final pair prepares and
// reproduces the original statement's output columns.
func TestRenderDistAggSplit(t *testing.T) {
	cat := distCat(t)
	st, err := Parse("SELECT b, COUNT(*) c, SUM(a) sa, MIN(a) mn, MAX(a) mx FROM r WHERE a >= $1 GROUP BY b HAVING b >= 0 ORDER BY b")
	if err != nil {
		t.Fatal(err)
	}
	agg, err := st.RenderDistAgg(nil, "__g")
	if err != nil {
		t.Fatal(err)
	}
	flags := plan.DefaultFlags()
	wprep, err := Prepare(agg.Worker, cat, flags)
	if err != nil {
		t.Fatalf("worker fragment does not prepare: %v\n%s", err, agg.Worker)
	}
	tmp := MapCatalog{}
	tmp.Register("__g", relation.New(wprep.Schema()))
	fprep, err := Prepare(agg.Final, tmp, flags)
	if err != nil {
		t.Fatalf("final fragment does not prepare: %v\n%s", err, agg.Final)
	}
	want, err := st.Prepare(cat, flags)
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := fprep.Schema().String(), want.Schema().String(); got != exp {
		t.Fatalf("final schema %s, want %s", got, exp)
	}
	if len(agg.WorkerParams) != 1 || agg.WorkerParams[0] != 1 {
		t.Fatalf("worker params = %v, want [1]", agg.WorkerParams)
	}
}
