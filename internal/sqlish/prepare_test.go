package sqlish

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"talign/internal/expr"
	"talign/internal/oracle"
	"talign/internal/plan"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/value"
)

// testCatalog returns the paper's hotel example as a MapCatalog.
func testCatalog() MapCatalog {
	cat := MapCatalog{}
	cat.Register("r", relation.NewBuilder("n string").
		Row(0, 7, "Ann").
		Row(1, 5, "Joe").
		Row(7, 11, "Ann").
		MustBuild())
	cat.Register("p", relation.NewBuilder("a int", "mn int", "mx int").
		Row(0, 5, 50, 1, 2).
		Row(0, 5, 40, 3, 7).
		Row(0, 12, 30, 8, 12).
		Row(9, 12, 50, 1, 2).
		Row(9, 12, 40, 3, 7).
		MustBuild())
	return cat
}

func TestPipelineStages(t *testing.T) {
	cat := testCatalog()
	st, err := Parse("SELECT a FROM p WHERE a >= $1 ORDER BY a")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if st.IsExplain() {
		t.Fatalf("not an EXPLAIN statement")
	}
	prep, err := st.Prepare(cat, plan.DefaultFlags())
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if prep.NumParams != 1 {
		t.Fatalf("NumParams = %d, want 1", prep.NumParams)
	}
	if got := prep.Schema().Len(); got != 1 {
		t.Fatalf("schema arity = %d, want 1", got)
	}
	rel, err := prep.Execute(value.NewInt(40))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if rel.Len() != 4 {
		t.Fatalf("got %d rows, want 4 (a in {40, 40, 50, 50}):\n%s", rel.Len(), rel)
	}
	// The same plan executes again with a different binding.
	rel, err = prep.Execute(value.NewInt(50))
	if err != nil {
		t.Fatalf("Execute #2: %v", err)
	}
	if rel.Len() != 2 {
		t.Fatalf("got %d rows, want 2:\n%s", rel.Len(), rel)
	}
}

func TestExecuteParamCount(t *testing.T) {
	prep, err := Prepare("SELECT a FROM p WHERE a BETWEEN $1 AND $2", testCatalog(), plan.DefaultFlags())
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if prep.NumParams != 2 {
		t.Fatalf("NumParams = %d, want 2", prep.NumParams)
	}
	if _, err := prep.Execute(value.NewInt(1)); err == nil {
		t.Fatalf("Execute with 1 of 2 params should fail")
	}
	if _, err := prep.Execute(); err == nil {
		t.Fatalf("Execute with 0 of 2 params should fail")
	}
	if _, err := prep.Execute(value.NewInt(30), value.NewInt(40)); err != nil {
		t.Fatalf("Execute: %v", err)
	}
}

func TestExecuteExplainRefused(t *testing.T) {
	prep, err := Prepare("EXPLAIN SELECT * FROM r", testCatalog(), plan.DefaultFlags())
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if !prep.IsExplain() {
		t.Fatalf("IsExplain = false")
	}
	if _, err := prep.Execute(); err == nil {
		t.Fatalf("Execute of EXPLAIN should fail")
	}
	if !strings.Contains(prep.Explain(), "SeqScan r") {
		t.Fatalf("Explain missing scan node:\n%s", prep.Explain())
	}
}

// TestPlaceholderVsLiteral checks extensively that executing a prepared
// statement with bound parameters matches re-planning the statement with
// the values spliced in as literals — across filters, BETWEEN, ALIGN θ
// conditions, aggregation HAVING and WITH bodies.
func TestPlaceholderVsLiteral(t *testing.T) {
	cat := testCatalog()
	flags := plan.DefaultFlags()
	cases := []struct {
		sql    string
		params []value.Value
		lits   []string
	}{
		{
			"SELECT n FROM r WHERE n = $1",
			[]value.Value{value.NewString("Ann")},
			[]string{"'Ann'"},
		},
		{
			"SELECT a, mn, mx FROM p WHERE a >= $1 AND mx <= $2",
			[]value.Value{value.NewInt(40), value.NewInt(7)},
			[]string{"40", "7"},
		},
		{
			"SELECT a FROM p WHERE a BETWEEN $1 AND $2",
			[]value.Value{value.NewInt(35), value.NewInt(45)},
			[]string{"35", "45"},
		},
		{
			`WITH r2 AS (SELECT Ts Us, Te Ue, * FROM r)
			 SELECT n, Us, Ue, x.Ts, x.Te FROM (r2 ALIGN p ON DUR(Us, Ue) BETWEEN mn AND mx AND a >= $1) x`,
			[]value.Value{value.NewInt(40)},
			[]string{"40"},
		},
		{
			"SELECT a, COUNT(*) c FROM p GROUP BY a HAVING COUNT(*) >= $1",
			[]value.Value{value.NewInt(2)},
			[]string{"2"},
		},
		{
			"SELECT n, a FROM r JOIN p ON mn <= $1 WHERE a > $2",
			[]value.Value{value.NewInt(2), value.NewInt(35)},
			[]string{"2", "35"},
		},
	}
	for _, tc := range cases {
		prep, err := Prepare(tc.sql, cat, flags)
		if err != nil {
			t.Fatalf("Prepare(%s): %v", tc.sql, err)
		}
		got, err := prep.Execute(tc.params...)
		if err != nil {
			t.Fatalf("Execute(%s): %v", tc.sql, err)
		}
		lit := tc.sql
		for i, l := range tc.lits {
			lit = strings.ReplaceAll(lit, fmt.Sprintf("$%d", i+1), l)
		}
		wantPrep, err := Prepare(lit, cat, flags)
		if err != nil {
			t.Fatalf("Prepare(literal %s): %v", lit, err)
		}
		want, err := wantPrep.Execute()
		if err != nil {
			t.Fatalf("Execute(literal %s): %v", lit, err)
		}
		if !relation.SetEqual(got, want) {
			onlyG, onlyW := relation.Diff(got, want)
			t.Fatalf("%s with %v != literal form\nonly prepared: %v\nonly literal: %v",
				tc.sql, tc.params, onlyG, onlyW)
		}
	}
}

// TestPlaceholderVsOracle cross-checks parameter binding against the
// independent snapshot-semantics oracle: a parameterized selection must
// produce exactly oracle.Selection with the same constant, on random
// relations and random bindings.
func TestPlaceholderVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7411))
	flags := plan.DefaultFlags()
	attrs := []schema.Attr{{Name: "k", Type: value.KindString}, {Name: "v", Type: value.KindInt}}
	for trial := 0; trial < 30; trial++ {
		rel := randrel.Generate(rng, randrel.DefaultConfig(attrs...))
		cat := MapCatalog{}
		cat.Register("t", rel)
		prep, err := Prepare("SELECT k, v FROM t WHERE v >= $1", cat, flags)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		for _, bound := range []int64{-1, 0, 1, 2} {
			got, err := prep.Execute(value.NewInt(bound))
			if err != nil {
				t.Fatalf("Execute(%d): %v", bound, err)
			}
			pred, err := expr.Ge(expr.C("v"), expr.Int(bound)).Bind(rel.Schema)
			if err != nil {
				t.Fatalf("bind predicate: %v", err)
			}
			want, err := oracle.Selection(rel, pred)
			if err != nil {
				t.Fatalf("oracle.Selection: %v", err)
			}
			if !relation.SetEqual(got, want) {
				onlyG, onlyW := relation.Diff(got, want)
				t.Fatalf("trial %d bound %d: engine != oracle\nonly engine: %v\nonly oracle: %v\ninput:\n%s",
					trial, bound, onlyG, onlyW, rel)
			}
		}
	}
}

func TestNormalize(t *testing.T) {
	a, err := Normalize("SELECT   A, mn FROM P  WHERE a >= $1 -- trailing comment\n ORDER BY a")
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	b, err := Normalize("select a,mn from p where a>=$1 order by a")
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if a != b {
		t.Fatalf("normal forms differ:\n%q\n%q", a, b)
	}
	// Normalized text must re-parse to an equivalent statement.
	if _, err := Prepare(a, testCatalog(), plan.DefaultFlags()); err != nil {
		t.Fatalf("normalized text does not prepare: %v", err)
	}
	// String case is semantic and must be preserved.
	c, _ := Normalize("SELECT * FROM r WHERE n = 'Ann'")
	d, _ := Normalize("SELECT * FROM r WHERE n = 'ann'")
	if c == d {
		t.Fatalf("string literal case was lost: %q", c)
	}
}

// TestPreparedMaxDOP: admission weight reflects the plan's actual width,
// not the configured DOP — serial plans cost 1.
func TestPreparedMaxDOP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := randrel.DefaultConfig(
		schema.Attr{Name: "k", Type: value.KindString},
		schema.Attr{Name: "v", Type: value.KindInt})
	cfg.MaxTuples = 50
	cat := MapCatalog{}
	cat.Register("t", randrel.Generate(rng, cfg))
	flags := plan.DefaultFlags()
	flags.DOP = 4
	flags.ForceParallel = true
	par, err := Prepare("SELECT k, COUNT(*) c FROM t GROUP BY k", cat, flags)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if par.MaxDOP() != 4 {
		t.Fatalf("parallel plan MaxDOP = %d, want 4", par.MaxDOP())
	}
	ser, err := Prepare("SELECT k FROM t", cat, flags)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if ser.MaxDOP() != 1 {
		t.Fatalf("serial plan MaxDOP = %d, want 1", ser.MaxDOP())
	}
}

// TestWithClauseIsPerExecution ensures WITH bodies re-materialize per
// execution (they are SharedNode subtrees, not prepare-time snapshots), so
// parameters inside WITH work.
func TestWithParamInWith(t *testing.T) {
	prep, err := Prepare(
		"WITH big AS (SELECT a FROM p WHERE a >= $1) SELECT a FROM big",
		testCatalog(), plan.DefaultFlags())
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	r1, err := prep.Execute(value.NewInt(50))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	r2, err := prep.Execute(value.NewInt(30))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if r1.Len() != 2 || r2.Len() != 5 {
		t.Fatalf("param in WITH ignored: got %d and %d rows, want 2 and 5", r1.Len(), r2.Len())
	}
}
