package sqlish

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"talign/internal/plan"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/value"
)

// colEngines builds a columnar engine (default flags), a columnar engine
// with a tiny batch size (stressing selection vectors across batch
// boundaries), and a row-only engine over the same relations.
func colEngines(t *testing.T, rels map[string]*relation.Relation) (col, colSmall, row *Engine) {
	t.Helper()
	mk := func(mut func(*plan.Flags)) *Engine {
		f := plan.DefaultFlags()
		mut(&f)
		e := NewEngine(f)
		for name, rel := range rels {
			e.Register(name, rel)
			if _, err := e.Analyze(name); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	return mk(func(*plan.Flags) {}),
		mk(func(f *plan.Flags) { f.BatchSize = 3 }),
		mk(func(f *plan.Flags) { f.DisableColumnar = true })
}

// canonKeys renders a result as its sorted per-row key encodings, so two
// results compare byte-equal exactly when every row (values and valid
// time) is identical.
func canonKeys(rel *relation.Relation) [][]byte {
	keys := make([][]byte, rel.Len())
	for i := range rel.Tuples {
		keys[i] = rel.Tuples[i].AppendKey(nil)
	}
	sort.Slice(keys, func(a, b int) bool { return bytes.Compare(keys[a], keys[b]) < 0 })
	return keys
}

func assertByteEqual(t *testing.T, tag, q string, seed int, got, want *relation.Relation) {
	t.Helper()
	gk, wk := canonKeys(got), canonKeys(want)
	if len(gk) != len(wk) {
		t.Fatalf("seed %d: %s row count diverged on %s: %d vs %d", seed, tag, q, len(gk), len(wk))
	}
	for i := range gk {
		if !bytes.Equal(gk[i], wk[i]) {
			t.Fatalf("seed %d: %s diverged on %s at sorted row %d:\n% x\nvs\n% x",
				seed, tag, q, i, gk[i], wk[i])
		}
	}
}

// TestColumnarDifferential proves, over randomized relations and the same
// query corpus the optimizer differential uses, that the vectorized
// pipeline returns byte-identical rows to the row executor — with the
// default batch size and with a 3-row batch that forces every operator
// across batch boundaries. The row path is chained to the
// snapshot-semantics oracle by the core tests, so agreement here chains
// the columnar path to the oracle too.
func TestColumnarDifferential(t *testing.T) {
	attrs := []schema.Attr{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
	}
	const seeds = 30
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		cfg := randrel.DefaultConfig(attrs...)
		cfg.MaxTuples = 12
		rels := map[string]*relation.Relation{
			"r": randrel.Generate(rng, cfg),
			"s": randrel.Generate(rng, cfg),
			"u": randrel.Generate(rng, cfg),
		}
		col, colSmall, row := colEngines(t, rels)
		for _, q := range diffQueries {
			want, _, err := row.Query(q)
			if err != nil {
				t.Fatalf("seed %d: row %s: %v", seed, q, err)
			}
			for tag, e := range map[string]*Engine{"columnar": col, "columnar/batch=3": colSmall} {
				got, _, err := e.Query(q)
				if err != nil {
					t.Fatalf("seed %d: %s %s: %v", seed, tag, q, err)
				}
				assertByteEqual(t, tag, q, seed, got, want)
			}
		}
	}
}

// TestColumnarExchangeParallel forces parallel plans over vectorized
// sources (ColSplitter partitions by hashing key columns without
// materializing rows) and diffs them byte-equal against the serial row
// engine. Run under -race this is the concurrency check for the
// exchange-over-vectors path.
func TestColumnarExchangeParallel(t *testing.T) {
	attrs := []schema.Attr{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindInt},
	}
	queries := []string{
		"SELECT r.a, s.b FROM r JOIN s ON r.a = s.a WHERE s.b >= 1",
		"SELECT a, b, Ts, Te FROM (r ALIGN s ON r.a = s.a) x WHERE a >= 1",
		"SELECT a, b, Ts, Te FROM (r NORMALIZE s USING (a)) x",
		"SELECT a, b FROM r WHERE a = 1 UNION SELECT a, b FROM s WHERE b = 1",
	}
	for seed := 0; seed < 10; seed++ {
		rng := rand.New(rand.NewSource(int64(2000 + seed)))
		cfg := randrel.DefaultConfig(attrs...)
		cfg.MaxTuples = 40
		rels := map[string]*relation.Relation{
			"r": randrel.Generate(rng, cfg),
			"s": randrel.Generate(rng, cfg),
		}
		par := plan.DefaultFlags()
		par.DOP = 4
		par.ForceParallel = true
		pe := NewEngine(par)
		row := plan.DefaultFlags()
		row.DisableColumnar = true
		re := NewEngine(row)
		for name, rel := range rels {
			pe.Register(name, rel)
			re.Register(name, rel)
		}
		for _, q := range queries {
			want, _, err := re.Query(q)
			if err != nil {
				t.Fatalf("seed %d: row %s: %v", seed, q, err)
			}
			got, _, err := pe.Query(q)
			if err != nil {
				t.Fatalf("seed %d: parallel %s: %v", seed, q, err)
			}
			assertByteEqual(t, "parallel", q, seed, got, want)
		}
	}
}
