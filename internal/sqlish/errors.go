package sqlish

import (
	"errors"
	"fmt"
	"strings"
)

// Error codes classify where in the statement pipeline an error arose;
// they are stable strings that travel over the wire protocol unchanged.
const (
	// ErrParse covers lexer and parser errors; these carry the 1-based
	// line and column of the offending token.
	ErrParse = "parse"
	// ErrAnalyze covers name resolution, typing and planning errors.
	ErrAnalyze = "analyze"
	// ErrExecute covers runtime errors (including cancellation).
	ErrExecute = "execute"
	// ErrRequest covers statement-use errors that are the caller's to
	// fix before execution starts: wrong parameter counts, streaming an
	// EXPLAIN, and the server's protocol-shape errors.
	ErrRequest = "request"
	// ErrCancelled reports a query aborted by context cancellation (a
	// disconnected client, an explicit cancel).
	ErrCancelled = "cancelled"
	// ErrTimeout reports a query aborted by a deadline: the server's
	// per-query timeout or the client context's.
	ErrTimeout = "timeout"
	// ErrResource reports a query aborted by its resource budget (max
	// rows / max bytes crossing operator boundaries).
	ErrResource = "resource"
	// ErrInternal reports a recovered executor panic: the query died,
	// the process did not.
	ErrInternal = "internal"
	// ErrUnavailable reports a server refusing new work — it is
	// draining for shutdown; clients should retry elsewhere or later.
	ErrUnavailable = "unavailable"
)

// requestError builds an ErrRequest error with no position.
func requestError(format string, args ...any) *Error {
	return &Error{Code: ErrRequest, Msg: fmt.Sprintf(format, args...), Pos: -1}
}

// Error is the pipeline's structured error: a stage code, a human-readable
// message, and — for parse errors — the statement position that caused it.
// The server renders it as the wire-level JSON error object
// {code, message, line, col}, so clients can point at the offending token
// instead of grepping a flat string.
type Error struct {
	// Code is one of the Err* constants.
	Code string
	// Msg is the message without the "sqlish: " prefix (Error adds it).
	Msg string
	// Pos is the byte offset into the statement text; -1 when unknown.
	Pos int
	// Line and Col are 1-based; 0 when unknown.
	Line, Col int
}

// Error implements the error interface, appending the position when known.
func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("sqlish: %s (line %d, col %d)", e.Msg, e.Line, e.Col)
	}
	return "sqlish: " + e.Msg
}

// newErrorAt builds a parse-stage error at a byte offset of src, filling
// in the 1-based line and column.
func newErrorAt(src string, pos int, format string, args ...any) *Error {
	line, col := LineCol(src, pos)
	return &Error{Code: ErrParse, Msg: fmt.Sprintf(format, args...), Pos: pos, Line: line, Col: col}
}

// LineCol converts a byte offset into 1-based line and column numbers
// (columns count bytes, which matches how editors address ASCII SQL).
func LineCol(src string, pos int) (line, col int) {
	if pos < 0 {
		return 0, 0
	}
	if pos > len(src) {
		pos = len(src)
	}
	line, col = 1, 1
	for i := 0; i < pos; i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// AsError classifies err as a structured *Error: an err that already is
// one (anywhere in its chain) is returned as-is, anything else is wrapped
// under the given default code with positions unknown.
func AsError(err error, defaultCode string) *Error {
	var se *Error
	if errors.As(err, &se) {
		return se
	}
	return &Error{
		Code: defaultCode,
		Msg:  strings.TrimPrefix(err.Error(), "sqlish: "),
		Pos:  -1,
	}
}
