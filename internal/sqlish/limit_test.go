package sqlish

import (
	"errors"
	"strings"
	"testing"

	"talign/internal/plan"
	"talign/internal/relation"
)

func limitEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(plan.DefaultFlags())
	b := relation.NewBuilder("v int")
	for i := 0; i < 100; i++ {
		b.Row(int64(i), int64(i)+1, int64(i))
	}
	e.Register("nums", b.MustBuild())
	return e
}

// TestLimitOffsetSQL checks the grammar end to end: LIMIT/OFFSET apply
// after ORDER BY, compose, and accept OFFSET alone.
func TestLimitOffsetSQL(t *testing.T) {
	e := limitEngine(t)
	for _, tc := range []struct {
		sql   string
		rows  int
		first int64
	}{
		{"SELECT v FROM nums ORDER BY v LIMIT 5", 5, 0},
		{"SELECT v FROM nums ORDER BY v LIMIT 5 OFFSET 10", 5, 10},
		{"SELECT v FROM nums ORDER BY v DESC LIMIT 1", 1, 99},
		{"SELECT v FROM nums ORDER BY v OFFSET 95", 5, 95},
		{"SELECT v FROM nums ORDER BY v LIMIT 0", 0, 0},
		{"SELECT v FROM nums ORDER BY v LIMIT 1000", 100, 0},
	} {
		rel, _, err := e.Query(tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		if rel.Len() != tc.rows {
			t.Fatalf("%s: %d rows, want %d", tc.sql, rel.Len(), tc.rows)
		}
		if tc.rows > 0 && rel.Tuples[0].Vals[0].Int() != tc.first {
			t.Fatalf("%s: first row %v, want %d", tc.sql, rel.Tuples[0].Vals[0], tc.first)
		}
	}
}

// TestLimitExplain: the plan renders the Limit node above the sort.
func TestLimitExplain(t *testing.T) {
	e := limitEngine(t)
	_, text, err := e.Query("EXPLAIN SELECT v FROM nums ORDER BY v LIMIT 7 OFFSET 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(text, "Limit 7 offset 3") {
		t.Fatalf("EXPLAIN does not lead with the Limit node:\n%s", text)
	}
}

// TestLimitErrors: LIMIT/OFFSET take non-negative integer literals.
func TestLimitErrors(t *testing.T) {
	e := limitEngine(t)
	for _, sql := range []string{
		"SELECT v FROM nums LIMIT x",
		"SELECT v FROM nums LIMIT 1.5",
		"SELECT v FROM nums OFFSET v",
		"SELECT v FROM nums LIMIT", // dangling
	} {
		if _, _, err := e.Query(sql); err == nil {
			t.Fatalf("%s: expected an error", sql)
		}
	}
}

// TestStructuredParseErrors: parse errors carry the stage code and the
// 1-based line/col of the offending token, also across lines.
func TestStructuredParseErrors(t *testing.T) {
	for _, tc := range []struct {
		sql       string
		line, col int
	}{
		{"SELECT v FROM", 1, 14},
		{"SELECT v\nFROM nums WHERE\n  v >", 3, 6},
		{"SELECT 'oops", 1, 8},
	} {
		_, err := Parse(tc.sql)
		if err == nil {
			t.Fatalf("%q: expected a parse error", tc.sql)
		}
		var se *Error
		if !errors.As(err, &se) {
			t.Fatalf("%q: error %v is not a structured *Error", tc.sql, err)
		}
		if se.Code != ErrParse {
			t.Fatalf("%q: code %q, want parse", tc.sql, se.Code)
		}
		if se.Line != tc.line || se.Col != tc.col {
			t.Fatalf("%q: position %d:%d, want %d:%d (%v)", tc.sql, se.Line, se.Col, tc.line, tc.col, se)
		}
	}
}
