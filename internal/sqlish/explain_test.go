package sqlish

import (
	"strings"
	"testing"

	"talign/internal/dataset"
	"talign/internal/plan"
)

// goldenQuery is the representative ALIGN + join + aggregate statement
// the EXPLAIN goldens pin: alignment against the paper's demo relations,
// an extra join with a pushable ON conjunct, and a temporal aggregation.
const goldenQuery = `SELECT n, COUNT(*) c, Ts, Te
FROM (r ALIGN p ON a >= 40) x JOIN p p2 ON p2.a >= 45
GROUP BY n, Ts, Te`

// goldenEngine builds an engine over the demo catalog with fresh
// statistics, exactly like talignd's auto-analyzed startup state.
func goldenEngine(t *testing.T) *Engine {
	t.Helper()
	r, p := dataset.Demo()
	e := NewEngine(plan.DefaultFlags())
	e.Register("r", r)
	e.Register("p", p)
	for _, name := range []string{"r", "p"} {
		if _, err := e.Analyze(name); err != nil {
			t.Fatalf("ANALYZE %s: %v", name, err)
		}
	}
	return e
}

// TestExplainGolden pins the optimized plan shape for the representative
// query. A diff here means the optimizer changed its mind — review it
// deliberately, then update the golden. Note the two optimizer effects it
// locks in: the ON conjunct p2.a >= 45 pushed below the join as a filter
// on p2's scan, and the collapsed hidden-column projections.
func TestExplainGolden(t *testing.T) {
	const want = `Project g0, agg0  (rows=20 cost=4.23)
  HashAggregate (1 group cols, byT=true, 1 aggs)  (rows=20 cost=4.13)
    nestloop inner join ON true  (rows=40 cost=3.93)
      Project n, TS, TE  (rows=40 cost=2.75)
        FusedAdjust align (nestloop join)  (rows=40 cost=2.45)
          Project n, TS, TE  (rows=3 cost=1.05)
            SeqScan r  (rows=3 cost=1.03)
          Project a, mn, mx, TS, TE  (rows=5 cost=1.11)
            SeqScan p  (rows=5 cost=1.05)
      Project a, mn, mx, TS, TE  (rows=1 cost=1.07)
        Filter (a >= 45)  (rows=1 cost=1.06)
          SeqScan p  (rows=5 cost=1.05)
`
	e := goldenEngine(t)
	_, got, err := e.Query("EXPLAIN " + goldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("EXPLAIN golden mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExplainAnalyzeGolden pins the estimated-vs-actual rendering: the
// demo data is fixed, so every actual count is deterministic.
func TestExplainAnalyzeGolden(t *testing.T) {
	const want = `Project g0, agg0  (rows=20 cost=4.23) (actual rows=5)
  HashAggregate (1 group cols, byT=true, 1 aggs)  (rows=20 cost=4.13) (actual rows=5)
    nestloop inner join ON true  (rows=40 cost=3.93) (actual rows=10)
      Project n, TS, TE  (rows=40 cost=2.75) (actual rows=5)
        FusedAdjust align (nestloop join)  (rows=40 cost=2.45) (actual rows=5)
          Project n, TS, TE  (rows=3 cost=1.05) (actual rows=3)
            SeqScan r  (rows=3 cost=1.03) (actual rows=3)
          Project a, mn, mx, TS, TE  (rows=5 cost=1.11) (actual rows=5)
            SeqScan p  (rows=5 cost=1.05) (actual rows=5)
      Project a, mn, mx, TS, TE  (rows=1 cost=1.07) (actual rows=2)
        Filter (a >= 45)  (rows=1 cost=1.06) (actual rows=2)
          SeqScan p  (rows=5 cost=1.05) (actual rows=5)
`
	e := goldenEngine(t)
	_, got, err := e.Query("EXPLAIN ANALYZE " + goldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("EXPLAIN ANALYZE golden mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExplainAnalyzeMatchesExecution: the instrumented run must return
// the same row count the plain execution does.
func TestExplainAnalyzeMatchesExecution(t *testing.T) {
	e := goldenEngine(t)
	rel, _, err := e.Query(goldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	_, text, err := e.Query("EXPLAIN ANALYZE " + goldenQuery)
	if err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(text, "\n", 2)[0]
	if !strings.Contains(first, "(actual rows=5)") || rel.Len() != 5 {
		t.Errorf("root actual (%s) disagrees with execution (%d rows)", first, rel.Len())
	}
}

// TestAnalyzeStatement: ANALYZE through the SQL front end updates the
// engine's statistics and reports a summary.
func TestAnalyzeStatement(t *testing.T) {
	r, _ := dataset.Demo()
	e := NewEngine(plan.DefaultFlags())
	e.Register("r", r)
	rel, msg, err := e.Query("ANALYZE r")
	if err != nil || rel != nil {
		t.Fatalf("ANALYZE: rel=%v err=%v", rel, err)
	}
	if !strings.Contains(msg, "ANALYZE r") || !strings.Contains(msg, "3 rows") {
		t.Errorf("ANALYZE summary = %q", msg)
	}
	if _, _, err := e.Query("ANALYZE nosuch"); err == nil {
		t.Error("ANALYZE of an unknown table must fail")
	}
	// ANALYZE cannot be prepared (it mutates catalog state).
	if _, err := Prepare("ANALYZE r", e.catalog, e.flags); err == nil {
		t.Error("Prepare(ANALYZE) must fail")
	}
}
