package sqlish

import (
	"strconv"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	src  string
	toks []token
	pos  int
}

// Parse parses one statement.
func parse(src string) (*statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return parseTokens(src, toks)
}

// parseTokens parses an already-lexed statement; src backs error
// positions.
func parseTokens(src string, toks []token) (*statement, error) {
	p := &parser{src: src, toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected %q after end of statement", p.peek().text)
	}
	return st, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return newErrorAt(p.src, p.peek().pos, format, args...)
}

// kw reports whether the next token is the given keyword and consumes it.
func (p *parser) kw(word string) bool {
	if p.peek().kind == tokIdent && p.peek().text == word {
		p.pos++
		return true
	}
	return false
}

// sym reports whether the next token is the given symbol and consumes it.
func (p *parser) sym(s string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return p.errf("expected %s, found %q", word, p.peek().text)
	}
	return nil
}

func (p *parser) expectSym(s string) error {
	if !p.sym(s) {
		return p.errf("expected %q, found %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent || reserved[t.text] {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// statement := ANALYZE table
//
//	| CREATE TABLE table FROM CSV 'path'
//	| DROP TABLE table
//	| [EXPLAIN [ANALYZE]] [WITH ...] queryExpr [ORDER BY ...]
//	  [LIMIT n] [OFFSET m]
func (p *parser) statement() (*statement, error) {
	st := &statement{}
	if p.kw("analyze") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Analyze = name
		return st, nil
	}
	if p.kw("create") {
		if err := p.expectKw("table"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("from"); err != nil {
			return nil, err
		}
		if err := p.expectKw("csv"); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokString {
			return nil, p.errf("expected a quoted CSV path, found %q", t.text)
		}
		p.pos++
		st.Create = &createStmt{Name: name, CSVPath: t.text}
		return st, nil
	}
	if p.kw("drop") {
		if err := p.expectKw("table"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Drop = name
		return st, nil
	}
	if p.kw("explain") {
		st.Explain = true
		if p.kw("analyze") {
			st.ExplainAnalyze = true
		}
	}
	if p.kw("with") {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("as"); err != nil {
				return nil, err
			}
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			q, err := p.queryExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			st.With = append(st.With, withClause{Name: name, Query: q})
			if !p.sym(",") {
				break
			}
		}
	}
	body, err := p.queryExpr()
	if err != nil {
		return nil, err
	}
	st.Body = body
	if p.kw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			k := orderKey{Expr: e}
			if p.kw("desc") {
				k.Desc = true
			} else {
				p.kw("asc")
			}
			st.OrderBy = append(st.OrderBy, k)
			if !p.sym(",") {
				break
			}
		}
	}
	if p.kw("limit") {
		n, err := p.intLiteral("LIMIT")
		if err != nil {
			return nil, err
		}
		st.Limit = &n
	}
	if p.kw("offset") {
		n, err := p.intLiteral("OFFSET")
		if err != nil {
			return nil, err
		}
		st.Offset = &n
	}
	return st, nil
}

// intLiteral parses a non-negative integer literal (LIMIT/OFFSET counts).
func (p *parser) intLiteral(clause string) (int64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errf("%s expects an integer literal, found %q", clause, t.text)
	}
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errf("%s expects an integer literal, found %q", clause, t.text)
	}
	p.pos++
	return n, nil
}

// queryExpr := select { (UNION|INTERSECT|EXCEPT) select }
func (p *parser) queryExpr() (*queryExpr, error) {
	sel, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	q := &queryExpr{Select: sel}
	for {
		var op string
		switch {
		case p.kw("union"):
			op = "union"
		case p.kw("intersect"):
			op = "intersect"
		case p.kw("except"):
			op = "except"
		default:
			return q, nil
		}
		right, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		q = &queryExpr{Set: &setStmt{Left: q, Op: op, Right: right}}
	}
}

// selectStmt parses one SELECT ... [FROM ...] [WHERE] [GROUP BY] [HAVING].
func (p *parser) selectStmt() (*selectStmt, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	st := &selectStmt{}
	if p.kw("distinct") {
		st.Dedup = dedupDistinct
	} else if p.kw("absorb") {
		st.Dedup = dedupAbsorb
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.sym(",") {
			break
		}
	}
	if p.kw("from") {
		for {
			fi, err := p.fromItem()
			if err != nil {
				return nil, err
			}
			st.From = append(st.From, fi)
			if !p.sym(",") {
				break
			}
		}
	}
	if p.kw("where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.kw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.sym(",") {
				break
			}
		}
	}
	if p.kw("having") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	return st, nil
}

func (p *parser) selectItem() (selectItem, error) {
	if p.sym("*") {
		return selectItem{Star: true}, nil
	}
	e, err := p.expr()
	if err != nil {
		return selectItem{}, err
	}
	item := selectItem{Expr: e}
	if p.kw("as") {
		name, err := p.ident()
		if err != nil {
			return selectItem{}, err
		}
		item.Alias = name
	} else if t := p.peek(); t.kind == tokIdent && !reserved[t.text] {
		p.pos++
		item.Alias = t.text
	}
	return item, nil
}

// fromItem := primary { joinClause }
func (p *parser) fromItem() (fromItem, error) {
	left, err := p.fromPrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt string
		switch {
		case p.kw("cross"):
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			jt = "cross"
		case p.kw("inner"):
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			jt = "inner"
		case p.kw("left"):
			p.kw("outer")
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			jt = "left"
		case p.kw("right"):
			p.kw("outer")
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			jt = "right"
		case p.kw("full"):
			p.kw("outer")
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			jt = "full"
		case p.kw("join"):
			jt = "inner"
		default:
			return left, nil
		}
		right, err := p.fromPrimary()
		if err != nil {
			return nil, err
		}
		var on sexpr
		if jt != "cross" {
			if err := p.expectKw("on"); err != nil {
				return nil, err
			}
			on, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		left = fJoin{Left: left, Right: right, Type: jt, On: on}
	}
}

// fromPrimary := table [alias] | '(' select ')' alias
//
//	| '(' primary ALIGN primary ON expr ')' alias
//	| '(' primary NORMALIZE primary USING '(' cols ')' ')' alias
func (p *parser) fromPrimary() (fromItem, error) {
	if p.sym("(") {
		// Either a subquery or an ALIGN/NORMALIZE pair.
		if p.peek().kind == tokIdent && p.peek().text == "select" {
			sub, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			alias, err := p.aliasOpt()
			if err != nil {
				return nil, err
			}
			if alias == "" {
				return nil, p.errf("subquery in FROM requires an alias")
			}
			return fSubquery{Query: sub, Alias: alias}, nil
		}
		left, err := p.fromPrimary()
		if err != nil {
			return nil, err
		}
		switch {
		case p.kw("align"):
			right, err := p.fromPrimary()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("on"); err != nil {
				return nil, err
			}
			theta, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			alias, err := p.aliasOpt()
			if err != nil {
				return nil, err
			}
			return fAlign{Left: left, Right: right, Theta: theta, Alias: alias}, nil
		case p.kw("normalize"):
			right, err := p.fromPrimary()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("using"); err != nil {
				return nil, err
			}
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			var cols []string
			if !p.sym(")") {
				for {
					c, err := p.ident()
					if err != nil {
						return nil, err
					}
					cols = append(cols, c)
					if !p.sym(",") {
						break
					}
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			alias, err := p.aliasOpt()
			if err != nil {
				return nil, err
			}
			return fNormalize{Left: left, Right: right, Using: cols, Alias: alias}, nil
		default:
			// Parenthesized plain from item.
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return left, nil
		}
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	alias, err := p.aliasOpt()
	if err != nil {
		return nil, err
	}
	return fTable{Name: name, Alias: alias}, nil
}

func (p *parser) aliasOpt() (string, error) {
	if p.kw("as") {
		return p.ident()
	}
	if t := p.peek(); t.kind == tokIdent && !reserved[t.text] {
		p.pos++
		return t.text, nil
	}
	return "", nil
}

// Expression grammar (precedence climbing):
//
//	expr     := orTerm
//	orTerm   := andTerm { OR andTerm }
//	andTerm  := notTerm { AND notTerm }
//	notTerm  := NOT notTerm | predicate
//	predicate:= additive [cmp additive | BETWEEN additive AND additive |
//	            IS [NOT] NULL]
//	additive := multTerm { (+|-) multTerm }
//	multTerm := unary { (*|/|%) unary }
//	unary    := - unary | primaryExpr
func (p *parser) expr() (sexpr, error) { return p.orTerm() }

func (p *parser) orTerm() (sexpr, error) {
	l, err := p.andTerm()
	if err != nil {
		return nil, err
	}
	for p.kw("or") {
		r, err := p.andTerm()
		if err != nil {
			return nil, err
		}
		l = sBin{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andTerm() (sexpr, error) {
	l, err := p.notTerm()
	if err != nil {
		return nil, err
	}
	for p.kw("and") {
		r, err := p.notTerm()
		if err != nil {
			return nil, err
		}
		l = sBin{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notTerm() (sexpr, error) {
	if p.kw("not") {
		x, err := p.notTerm()
		if err != nil {
			return nil, err
		}
		return sNot{X: x}, nil
	}
	return p.predicate()
}

func (p *parser) predicate() (sexpr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol {
		switch op := p.peek().text; op {
		case "=", "<>", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			return sBin{Op: op, L: l, R: r}, nil
		}
	}
	if p.kw("between") {
		lo, err := p.additive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		hi, err := p.additive()
		if err != nil {
			return nil, err
		}
		return sBetween{X: l, Lo: lo, Hi: hi}, nil
	}
	if p.kw("is") {
		neg := p.kw("not")
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return sIsNull{X: l, Negate: neg}, nil
	}
	return l, nil
}

func (p *parser) additive() (sexpr, error) {
	l, err := p.multTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.sym("+"):
			r, err := p.multTerm()
			if err != nil {
				return nil, err
			}
			l = sBin{Op: "+", L: l, R: r}
		case p.sym("-"):
			r, err := p.multTerm()
			if err != nil {
				return nil, err
			}
			l = sBin{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) multTerm() (sexpr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.sym("*"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = sBin{Op: "*", L: l, R: r}
		case p.sym("/"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = sBin{Op: "/", L: l, R: r}
		case p.sym("%"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = sBin{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unary() (sexpr, error) {
	if p.sym("-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return sBin{Op: "-", L: sNum{Text: "0"}, R: x}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (sexpr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		return sNum{Text: t.text}, nil
	case tokString:
		p.pos++
		return sStr{Text: t.text}, nil
	case tokParam:
		p.pos++
		idx, err := strconv.Atoi(t.text)
		if err != nil || idx < 1 {
			return nil, p.errf("bad parameter $%s (parameters are $1, $2, ...)", t.text)
		}
		return sParam{Idx: idx}, nil
	case tokSymbol:
		if p.sym("(") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		switch t.text {
		case "true":
			p.pos++
			return sBool{V: true}, nil
		case "false":
			p.pos++
			return sBool{V: false}, nil
		case "null":
			p.pos++
			return sNull{}, nil
		}
		if reserved[t.text] {
			return nil, p.errf("unexpected keyword %q in expression", t.text)
		}
		p.pos++
		name := t.text
		// Function call?
		if p.sym("(") {
			call := sCall{Name: name}
			if p.sym("*") {
				call.Star = true
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if !p.sym(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.sym(",") {
						break
					}
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		// Qualified reference?
		if p.sym(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return sRef{Table: name, Col: col}, nil
		}
		return sRef{Col: name}, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}
