// Package lineage implements lineage sets for interval timestamped
// databases (Def. 6) and the change preservation property (Def. 7): a
// result relation is change preserving iff every tuple's lineage is
// constant across its interval and value-equivalent tuples adjacent to its
// boundaries have different lineage (maximality).
//
// The package complements the oracle: the oracle constructs the unique
// change-preserving result, while this package checks an arbitrary claimed
// result against the definition — including deliberately broken results in
// tests (over-split or over-coalesced relations must fail).
package lineage

import (
	"fmt"
	"sort"

	"talign/internal/expr"
	"talign/internal/relation"
	"talign/internal/tuple"
	"talign/internal/value"
)

// Lineage is one lineage set 〈r′, s′〉: the argument tuples (by index) a
// result tuple is derived from at a time point. RightWhole marks the
// difference-style second component, which is the entire s relation
// (constant in t). Unary operators leave Right empty.
type Lineage struct {
	Left       []int
	Right      []int
	RightWhole bool
}

// key canonicalizes a lineage for comparison.
func (l Lineage) key() string {
	a := append([]int{}, l.Left...)
	b := append([]int{}, l.Right...)
	sort.Ints(a)
	sort.Ints(b)
	if l.RightWhole {
		return fmt.Sprint(a, "|*")
	}
	return fmt.Sprint(a, "|", b)
}

// Equal reports whether two lineage sets are identical.
func (l Lineage) Equal(o Lineage) bool { return l.key() == o.key() }

// Func computes the lineage set of result tuple z at time point t; ok is
// false when z is not in the operator's result at t (which Verify treats
// as a snapshot reducibility violation).
type Func func(z tuple.Tuple, t int64) (Lineage, bool)

// Verify checks Def. 7 on a claimed result relation.
func Verify(result *relation.Relation, fn Func) error {
	for zi, z := range result.Tuples {
		// (1) The lineage set is constant across z.T, and z is in the
		// result at every point of z.T.
		first, ok := fn(z, z.T.Ts)
		if !ok {
			return fmt.Errorf("lineage: tuple %v not derivable at its own start point", z)
		}
		for t := z.T.Ts + 1; t < z.T.Te; t++ {
			l, ok := fn(z, t)
			if !ok {
				return fmt.Errorf("lineage: tuple %v not derivable at t=%d", z, t)
			}
			if !l.Equal(first) {
				return fmt.Errorf("lineage: tuple %v has changing lineage within its interval (t=%d)", z, t)
			}
		}
		// (2)+(3) Maximality: a value-equivalent tuple covering the point
		// just before z starts (or the point where z ends) must have a
		// different lineage there.
		for zj, z2 := range result.Tuples {
			if zi == zj || !z.ValsEqual(z2) {
				continue
			}
			if z2.T.Contains(z.T.Ts - 1) {
				l2, ok := fn(z2, z.T.Ts-1)
				if ok && l2.Equal(first) {
					return fmt.Errorf("lineage: tuples %v and %v should have been merged at t=%d", z2, z, z.T.Ts-1)
				}
			}
			if z2.T.Contains(z.T.Te) {
				l2, ok := fn(z2, z.T.Te)
				if ok && l2.Equal(first) {
					return fmt.Errorf("lineage: tuples %v and %v should have been merged at t=%d", z, z2, z.T.Te)
				}
			}
		}
	}
	return nil
}

// evalTheta evaluates θ over a candidate pair (nil θ is true).
func evalTheta(theta expr.Expr, l, r tuple.Tuple) bool {
	if theta == nil {
		return true
	}
	vals := make([]value.Value, 0, len(l.Vals)+len(r.Vals))
	vals = append(vals, l.Vals...)
	vals = append(vals, r.Vals...)
	env := expr.Env{Vals: vals}
	ok, err := expr.EvalBool(theta, &env)
	return err == nil && ok
}

// isAllNull reports whether a value slice is entirely ω.
func isAllNull(vs []value.Value) bool {
	for _, v := range vs {
		if !v.IsNull() {
			return false
		}
	}
	return true
}

// LeftOuterJoin returns the lineage function for r ⟕T_θ s (Def. 6): join
// lineage for matched tuples, antijoin (difference) lineage for ω-padded
// tuples. theta must be bound against Concat(r.Schema, s.Schema).
func LeftOuterJoin(r, s *relation.Relation, theta expr.Expr) Func {
	rl := r.Schema.Len()
	return func(z tuple.Tuple, t int64) (Lineage, bool) {
		zr, zs := z.Vals[:rl], z.Vals[rl:]
		if isAllNull(zs) {
			// Antijoin lineage: 〈{r}, s〉.
			for i, rt := range r.Tuples {
				if !rt.T.Contains(t) || !valsEq(rt.Vals, zr) {
					continue
				}
				// z is in the result only if r has no θ-partner at t.
				for _, st := range s.Tuples {
					if st.T.Contains(t) && evalTheta(theta, rt, st) {
						return Lineage{}, false
					}
				}
				return Lineage{Left: []int{i}, RightWhole: true}, true
			}
			return Lineage{}, false
		}
		for i, rt := range r.Tuples {
			if !rt.T.Contains(t) || !valsEq(rt.Vals, zr) {
				continue
			}
			for j, st := range s.Tuples {
				if !st.T.Contains(t) || !valsEq(st.Vals, zs) {
					continue
				}
				if evalTheta(theta, rt, st) {
					return Lineage{Left: []int{i}, Right: []int{j}}, true
				}
			}
		}
		return Lineage{}, false
	}
}

// AntiJoin returns the lineage function for r ▷T_θ s.
func AntiJoin(r, s *relation.Relation, theta expr.Expr) Func {
	return func(z tuple.Tuple, t int64) (Lineage, bool) {
		for i, rt := range r.Tuples {
			if !rt.T.Contains(t) || !valsEq(rt.Vals, z.Vals) {
				continue
			}
			for _, st := range s.Tuples {
				if st.T.Contains(t) && evalTheta(theta, rt, st) {
					return Lineage{}, false
				}
			}
			return Lineage{Left: []int{i}, RightWhole: true}, true
		}
		return Lineage{}, false
	}
}

// Projection returns the lineage function for πT_B(r), with cols the
// projected column positions.
func Projection(r *relation.Relation, cols []int) Func {
	return func(z tuple.Tuple, t int64) (Lineage, bool) {
		var idx []int
		for i, rt := range r.Tuples {
			if !rt.T.Contains(t) {
				continue
			}
			match := true
			for k, c := range cols {
				if !rt.Vals[c].Equal(z.Vals[k]) {
					match = false
					break
				}
			}
			if match {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			return Lineage{}, false
		}
		return Lineage{Left: idx}, true
	}
}

// Union returns the lineage function for r ∪T s.
func Union(r, s *relation.Relation) Func {
	return func(z tuple.Tuple, t int64) (Lineage, bool) {
		var li, ri []int
		for i, rt := range r.Tuples {
			if rt.T.Contains(t) && valsEq(rt.Vals, z.Vals) {
				li = append(li, i)
			}
		}
		for j, st := range s.Tuples {
			if st.T.Contains(t) && valsEq(st.Vals, z.Vals) {
				ri = append(ri, j)
			}
		}
		if len(li) == 0 && len(ri) == 0 {
			return Lineage{}, false
		}
		return Lineage{Left: li, Right: ri}, true
	}
}

// Difference returns the lineage function for r −T s: 〈{r...}, s〉.
func Difference(r, s *relation.Relation) Func {
	return func(z tuple.Tuple, t int64) (Lineage, bool) {
		var li []int
		for i, rt := range r.Tuples {
			if rt.T.Contains(t) && valsEq(rt.Vals, z.Vals) {
				li = append(li, i)
			}
		}
		if len(li) == 0 {
			return Lineage{}, false
		}
		for _, st := range s.Tuples {
			if st.T.Contains(t) && valsEq(st.Vals, z.Vals) {
				return Lineage{}, false // removed by the difference at t
			}
		}
		return Lineage{Left: li, RightWhole: true}, true
	}
}

func valsEq(a, b []value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
