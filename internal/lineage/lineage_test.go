package lineage

import (
	"math/rand"
	"testing"

	"talign/internal/core"
	"talign/internal/expr"
	"talign/internal/interval"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

func attrsR() []schema.Attr {
	return []schema.Attr{{Name: "x", Type: value.KindString}}
}

func attrsS() []schema.Attr {
	return []schema.Attr{{Name: "y", Type: value.KindString}}
}

// TestExample4ChangePreservation replays Example 4: the reduction's left
// outer join result preserves the change at 2012/8, and the over-coalesced
// and over-split variants violate Def. 7.
func TestExample4ChangePreservation(t *testing.T) {
	r := relation.NewBuilder("n string").
		Row(0, 7, "Ann").
		Row(1, 5, "Joe").
		Row(7, 11, "Ann").
		MustBuild()
	ru := core.MustExtend(r, "u")
	p := relation.NewBuilder("a int", "mn int", "mx int").
		Row(0, 5, 50, 1, 2).
		Row(0, 5, 40, 3, 7).
		Row(0, 12, 30, 8, 12).
		Row(9, 12, 50, 1, 2).
		Row(9, 12, 40, 3, 7).
		MustBuild()
	theta := expr.Between{X: expr.Dur(expr.C("u")), Lo: expr.C("mn"), Hi: expr.C("mx")}
	bound, err := core.BindTheta(ru, p, theta)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	got, err := core.Default().LeftOuterJoin(ru, p, theta)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	fn := LeftOuterJoin(ru, p, bound)
	if err := Verify(got, fn); err != nil {
		t.Fatalf("the reduction result must be change preserving: %v", err)
	}

	// Coalescing z3 and z4 into one tuple violates constancy: the lineage
	// flips from r1 to r3 at 2012/8.
	coalesced := got.Clone()
	merged := relation.New(coalesced.Schema)
	for _, tp := range coalesced.Tuples {
		if tp.Vals[2].IsNull() && tp.T.Ts == 5 {
			nt := tp.WithT(interval.New(5, 9))
			merged.Tuples = append(merged.Tuples, nt)
			continue
		}
		if tp.Vals[2].IsNull() && tp.T.Ts == 7 {
			continue
		}
		merged.Tuples = append(merged.Tuples, tp)
	}
	if err := Verify(merged, fn); err == nil {
		t.Fatal("coalescing across the change at 2012/8 must violate change preservation")
	}

	// Splitting z3 into two month-long pieces violates maximality.
	split := relation.New(got.Schema)
	for _, tp := range got.Tuples {
		if tp.Vals[2].IsNull() && tp.T.Ts == 5 {
			split.Tuples = append(split.Tuples,
				tp.WithT(interval.New(5, 6)),
				tp.WithT(interval.New(6, 7)))
			continue
		}
		split.Tuples = append(split.Tuples, tp)
	}
	if err := Verify(split, fn); err == nil {
		t.Fatal("over-splitting z3 must violate maximality")
	}
}

// TestRandomizedJoinLineage verifies Def. 7 on random instances for the
// outer and anti joins via the explicit checker.
func TestRandomizedJoinLineage(t *testing.T) {
	a := core.Default()
	rng := rand.New(rand.NewSource(77))
	theta := expr.Eq(expr.C("x"), expr.C("y"))
	for round := 0; round < 60; round++ {
		r := randrel.Generate(rng, randrel.DefaultConfig(attrsR()...))
		s := randrel.Generate(rng, randrel.DefaultConfig(attrsS()...))
		bound, err := core.BindTheta(r, s, theta)
		if err != nil {
			t.Fatalf("bind: %v", err)
		}
		louter, err := a.LeftOuterJoin(r, s, theta)
		if err != nil {
			t.Fatalf("louter: %v", err)
		}
		if err := Verify(louter, LeftOuterJoin(r, s, bound)); err != nil {
			t.Fatalf("round %d louter: %v\nr:\n%s\ns:\n%s", round, err, r, s)
		}
		anti, err := a.AntiJoin(r, s, theta)
		if err != nil {
			t.Fatalf("anti: %v", err)
		}
		if err := Verify(anti, AntiJoin(r, s, bound)); err != nil {
			t.Fatalf("round %d anti: %v\nr:\n%s\ns:\n%s", round, err, r, s)
		}
	}
}

// TestRandomizedGroupLineage verifies projection, union and difference.
func TestRandomizedGroupLineage(t *testing.T) {
	a := core.Default()
	rng := rand.New(rand.NewSource(78))
	for round := 0; round < 60; round++ {
		r := randrel.Generate(rng, randrel.DefaultConfig(attrsR()...))
		s := randrel.Generate(rng, randrel.DefaultConfig(attrsR()...))
		proj, err := a.Projection(r, "x")
		if err != nil {
			t.Fatalf("projection: %v", err)
		}
		if err := Verify(proj, Projection(r, []int{0})); err != nil {
			t.Fatalf("round %d projection: %v\nr:\n%s", round, err, r)
		}
		uni, err := a.Union(r, s)
		if err != nil {
			t.Fatalf("union: %v", err)
		}
		if err := Verify(uni, Union(r, s)); err != nil {
			t.Fatalf("round %d union: %v\nr:\n%s\ns:\n%s", round, err, r, s)
		}
		diff, err := a.Difference(r, s)
		if err != nil {
			t.Fatalf("difference: %v", err)
		}
		if err := Verify(diff, Difference(r, s)); err != nil {
			t.Fatalf("round %d difference: %v\nr:\n%s\ns:\n%s", round, err, r, s)
		}
	}
}

// TestLineageEquality covers the canonical comparison.
func TestLineageEquality(t *testing.T) {
	a := Lineage{Left: []int{2, 1}, Right: []int{3}}
	b := Lineage{Left: []int{1, 2}, Right: []int{3}}
	if !a.Equal(b) {
		t.Fatal("order must not matter")
	}
	c := Lineage{Left: []int{1, 2}, RightWhole: true}
	if a.Equal(c) {
		t.Fatal("whole-relation component must differ from an index set")
	}
}

// TestVerifyRejectsForeignTuple checks that a tuple not derivable from the
// arguments fails verification.
func TestVerifyRejectsForeignTuple(t *testing.T) {
	r := relation.NewBuilder("x string").Row(0, 4, "a").MustBuild()
	s := relation.NewBuilder("y string").MustBuild()
	bad := relation.New(r.Schema)
	bad.Tuples = append(bad.Tuples, tuple.Tuple{
		Vals: []value.Value{value.NewString("zz")},
		T:    interval.New(0, 4),
	})
	if err := Verify(bad, AntiJoin(r, s, nil)); err == nil {
		t.Fatal("foreign tuple must fail verification")
	}
}
