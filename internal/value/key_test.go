package value

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"talign/internal/interval"
)

// keyEdgeValues are the hand-picked corners of every kind's domain.
func keyEdgeValues() []Value {
	floats := []float64{
		math.NaN(), math.Inf(-1), math.Inf(1),
		-math.MaxFloat64, math.MaxFloat64,
		-two63 * 2, two63 * 2, // finite, outside int64 range
		-two63, -two63 + 1024, two63 - 1024,
		-0.0, 0.0, math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		-1.5, -1, -0.5, 0.5, 1, 1.5, 2.5,
		float64(1 << 53), float64(1<<53) + 2,
		1e-300, 1e300, -1e300,
	}
	ints := []int64{
		math.MinInt64, math.MinInt64 + 1, -(1 << 53) - 1, -(1 << 53),
		-2, -1, 0, 1, 2, 1 << 53, (1 << 53) + 1,
		math.MaxInt64 - 1, math.MaxInt64,
	}
	strs := []string{
		"", "\x00", "\x00\x00", "\x00a", "a", "a\x00", "a\x00b", "ab",
		"a\xff", "\xff", "\xff\x00", "b", "ω",
	}
	ivs := []interval.Interval{
		{}, {Ts: 0, Te: 1}, {Ts: -5, Te: 3}, {Ts: -5, Te: 7},
		{Ts: interval.TimeMin, Te: interval.TimeMax},
	}
	out := []Value{Null, NewBool(false), NewBool(true)}
	for _, f := range floats {
		out = append(out, NewFloat(f))
	}
	for _, i := range ints {
		out = append(out, NewInt(i))
	}
	for _, s := range strs {
		out = append(out, NewString(s))
	}
	for _, iv := range ivs {
		out = append(out, Value{kind: KindInterval, i: iv.Ts, j: iv.Te})
	}
	return out
}

func randValue(rng *rand.Rand) Value {
	switch rng.Intn(6) {
	case 0:
		return Null
	case 1:
		return NewBool(rng.Intn(2) == 0)
	case 2:
		if rng.Intn(4) == 0 {
			return NewInt(rng.Int63() - rng.Int63())
		}
		return NewInt(int64(rng.Intn(64) - 32))
	case 3:
		switch rng.Intn(8) {
		case 0:
			return NewFloat(math.Float64frombits(rng.Uint64()))
		case 1:
			return NewFloat(float64(rng.Intn(64) - 32))
		default:
			return NewFloat((rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(40)-20)))
		}
	case 4:
		n := rng.Intn(6)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(4) * 85) // 0x00, 0x55, 0xaa, 0xff
		}
		return NewString(string(b))
	default:
		ts := int64(rng.Intn(32) - 16)
		return NewInterval(interval.Interval{Ts: ts, Te: ts + 1 + int64(rng.Intn(8))})
	}
}

// checkKeyOrder asserts the central property: bytes.Compare over encodings
// equals Compare over values.
func checkKeyOrder(t *testing.T, a, b Value) {
	t.Helper()
	ka := a.AppendKey(nil)
	kb := b.AppendKey(nil)
	if got, want := bytes.Compare(ka, kb), a.Compare(b); got != want {
		t.Fatalf("bytes.Compare(enc(%v), enc(%v)) = %d, Compare = %d\nka=%x\nkb=%x",
			a, b, got, want, ka, kb)
	}
}

// TestKeyOrderEdgeCases covers every pair of the edge-case values,
// including NaN, ±Inf, -0.0, ω, integers beyond 2^53, strings with
// 0x00/0xff bytes and zero-ish intervals.
func TestKeyOrderEdgeCases(t *testing.T) {
	vals := keyEdgeValues()
	for _, a := range vals {
		for _, b := range vals {
			checkKeyOrder(t, a, b)
		}
	}
}

// TestKeyOrderRandom is the property test over random values of every
// kind, mixed across kinds.
func TestKeyOrderRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		checkKeyOrder(t, randValue(rng), randValue(rng))
	}
}

// TestKeyOrderRandomVsEdges crosses random values with the edge cases.
func TestKeyOrderRandomVsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edges := keyEdgeValues()
	for i := 0; i < 4000; i++ {
		v := randValue(rng)
		for _, e := range edges {
			checkKeyOrder(t, v, e)
			checkKeyOrder(t, e, v)
		}
	}
}

// TestCompareIsTotalOrder spot-checks antisymmetry and transitivity of
// Compare itself on the edge set (the property the encoding relies on).
func TestCompareIsTotalOrder(t *testing.T) {
	vals := keyEdgeValues()
	for _, a := range vals {
		for _, b := range vals {
			if a.Compare(b) != -b.Compare(a) {
				t.Fatalf("Compare(%v,%v) not antisymmetric", a, b)
			}
			for _, c := range vals {
				if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
					t.Fatalf("Compare not transitive on %v, %v, %v", a, b, c)
				}
			}
		}
	}
}

// TestCompareNumericExactness pins the cases the old lossy int→float cast
// got wrong or intransitive.
func TestCompareNumericExactness(t *testing.T) {
	big := int64(1 << 53)
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(big + 1), NewFloat(float64(big)), 1},
		{NewFloat(float64(big)), NewInt(big + 1), -1},
		{NewInt(big), NewFloat(float64(big)), 0},
		{NewInt(math.MaxInt64), NewFloat(two63), -1},
		{NewInt(math.MinInt64), NewFloat(-two63), 0},
		{NewFloat(math.NaN()), NewFloat(math.Inf(-1)), -1},
		{NewFloat(math.NaN()), NewInt(math.MinInt64), -1},
		{NewFloat(math.NaN()), NewFloat(math.NaN()), 0},
		{NewFloat(-0.0), NewFloat(0.0), 0},
		{NewFloat(-0.0), NewInt(0), 0},
		{NewFloat(math.Inf(1)), NewInt(math.MaxInt64), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		checkKeyOrder(t, c.a, c.b)
	}
}

// FuzzKeyOrder lets the fuzzer search for order violations between an
// int64/float64/string triple interpreted as three values.
func FuzzKeyOrder(f *testing.F) {
	f.Add(int64(0), 0.0, "")
	f.Add(int64(1<<53+1), float64(1<<53), "\x00")
	f.Add(int64(-1), math.Inf(-1), "a\x00b")
	f.Fuzz(func(t *testing.T, i int64, fl float64, s string) {
		vals := []Value{NewInt(i), NewFloat(fl), NewString(s)}
		for _, a := range vals {
			for _, b := range vals {
				ka, kb := a.AppendKey(nil), b.AppendKey(nil)
				if bytes.Compare(ka, kb) != a.Compare(b) {
					t.Fatalf("order mismatch: %v vs %v", a, b)
				}
			}
		}
	})
}
