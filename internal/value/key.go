// Order-preserving key encoding: every Value maps to a []byte whose
// bytes.Compare order is exactly Compare's order, across kinds. Sorting,
// grouping and set operations encode once and then work on flat bytes
// (memcmp instead of polymorphic comparisons), the technique popularized
// by ordered key-value stores.
//
// Layout: one kind tag (matching rank order: ω < bool < numeric < string
// < interval), then a kind-specific payload:
//
//	ω        0x01
//	bool     0x02 · 0x00/0x01
//	numeric  0x03 · region · payload       (ints and floats share one space)
//	string   0x04 · escaped bytes · 0x00 0x01
//	interval 0x05 · Ts (biased BE) · Te (biased BE)
//
// Numeric regions keep int64 and float64 in one exact order without ever
// rounding an int64 through float64:
//
//	0x00 NaN                    (empty payload; sorts first, like Compare)
//	0x01 -Inf                   (empty payload)
//	0x02 finite f < -2^63       (8B monotone float bits)
//	0x04 value in [-2^63, 2^63) (8B biased floor + 8B fraction payload)
//	0x06 finite f ≥ 2^63        (8B monotone float bits)
//	0x07 +Inf                   (empty payload)
//
// In the middle region an int64 i encodes as (i, 0), and a float f as
// (floor(f), payload) where the payload is 0 when f is an exact integer
// and the monotone bit pattern of f otherwise (always nonzero). floor and
// the int64 conversion are exact, and within one floor the float's own
// bits order its fractional part, so no lossy arithmetic is involved.
// This is what makes int 2^53+1 sort after float 2^53 even though
// float64(2^53+1) == 2^53.
//
// Every encoding is self-delimiting (fixed width per tag/region, strings
// terminated), so concatenated encodings of value sequences of equal
// arity compare exactly like the sequences. Mixed-arity sequences are NOT
// comparable through concatenated keys; all sort sites operate within one
// schema, where arity is fixed.
package value

import (
	"math"

	"talign/internal/interval"
)

// Kind tags, in rank() order.
const (
	keyTagNull     byte = 0x01
	keyTagBool     byte = 0x02
	keyTagNum      byte = 0x03
	keyTagString   byte = 0x04
	keyTagInterval byte = 0x05
)

// Numeric region bytes.
const (
	numNaN    byte = 0x00
	numNegInf byte = 0x01
	numNegBig byte = 0x02
	numMid    byte = 0x04
	numPosBig byte = 0x06
	numPosInf byte = 0x07
)

// String escaping: 0x00 bytes are escaped so the terminator (0x00 0x01)
// sorts before any continuation, making "a" < "a\x00..." < "ab".
const (
	strTerm1  byte = 0x00
	strTerm2  byte = 0x01
	strEscape byte = 0xff
)

// AppendKey appends the order-preserving encoding of v to dst and returns
// the extended slice. For all values a, b:
//
//	bytes.Compare(a.AppendKey(nil), b.AppendKey(nil)) == a.Compare(b)
func (v Value) AppendKey(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, keyTagNull)
	case KindBool:
		return append(dst, keyTagBool, byte(v.i))
	case KindInt:
		return appendNumKeyInt(append(dst, keyTagNum), v.i)
	case KindFloat:
		return appendNumKeyFloat(append(dst, keyTagNum), v.f)
	case KindString:
		dst = append(dst, keyTagString)
		s := v.s
		for i := 0; i < len(s); i++ {
			if c := s[i]; c == 0x00 {
				dst = append(dst, 0x00, strEscape)
			} else {
				dst = append(dst, c)
			}
		}
		return append(dst, strTerm1, strTerm2)
	case KindInterval:
		dst = append(dst, keyTagInterval)
		dst = AppendInt64Key(dst, v.i)
		return AppendInt64Key(dst, v.j)
	}
	return append(dst, 0xff) // unreachable
}

// AppendInt64Key appends x in a form whose unsigned byte order matches
// signed int64 order (sign-bit bias, big endian).
func AppendInt64Key(dst []byte, x int64) []byte {
	return appendUint64(dst, uint64(x)^(1<<63))
}

// AppendIntervalKey appends iv as (Ts, Te), matching interval.Compare.
func AppendIntervalKey(dst []byte, iv interval.Interval) []byte {
	dst = AppendInt64Key(dst, iv.Ts)
	return AppendInt64Key(dst, iv.Te)
}

func appendUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

func appendNumKeyInt(dst []byte, i int64) []byte {
	dst = AppendInt64Key(append(dst, numMid), i)
	return appendUint64(dst, 0)
}

func appendNumKeyFloat(dst []byte, f float64) []byte {
	switch {
	case math.IsNaN(f):
		return append(dst, numNaN)
	case math.IsInf(f, -1):
		return append(dst, numNegInf)
	case math.IsInf(f, 1):
		return append(dst, numPosInf)
	case f >= two63:
		return appendUint64(append(dst, numPosBig), floatOrderKey(f))
	case f < -two63:
		return appendUint64(append(dst, numNegBig), floatOrderKey(f))
	}
	ff := math.Floor(f)
	dst = AppendInt64Key(append(dst, numMid), int64(ff))
	if f == ff {
		// Normalizes integral floats (and -0.0) to the int encoding: the
		// floor itself is the smallest element of [floor, floor+1).
		return appendUint64(dst, 0)
	}
	return appendUint64(dst, floatOrderKey(f))
}

// floatOrderKey maps a non-NaN float to a uint64 that ascends with the
// value: negative floats complement all bits, non-negative ones set the
// sign bit. The result is nonzero for every non-integer float, so it
// never collides with the integer payload 0 within a floor.
func floatOrderKey(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | (1 << 63)
}
