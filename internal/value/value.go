// Package value implements the typed attribute values of the temporal
// relational model. The null value ω (Sec. 1 of the paper) pads the
// non-matching side of outer joins; intervals appear as ordinary values when
// timestamps are propagated by the extend operator (Def. 3).
package value

import (
	"fmt"
	"hash/maphash"
	"math"
	"strconv"

	"talign/internal/interval"
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

const (
	KindNull Kind = iota // ω
	KindBool
	KindInt
	KindFloat
	KindString
	KindInterval // a propagated timestamp [Ts, Te)
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindInterval:
		return "period"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Numeric reports whether the kind is int or float.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is a dynamically typed attribute value. The zero Value is ω (null).
type Value struct {
	kind Kind
	i    int64   // int payload, bool (0/1), interval start
	j    int64   // interval end
	f    float64 // float payload
	s    string  // string payload
}

// Null is the ω value.
var Null = Value{}

// NewBool, NewInt, NewFloat, NewString and NewInterval construct values.
func NewBool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

func NewString(s string) Value { return Value{kind: KindString, s: s} }

func NewInterval(iv interval.Interval) Value {
	return Value{kind: KindInterval, i: iv.Ts, j: iv.Te}
}

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is ω.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload; it panics on other kinds.
func (v Value) Bool() bool {
	v.mustBe(KindBool)
	return v.i != 0
}

// Int returns the integer payload; it panics on other kinds.
func (v Value) Int() int64 {
	v.mustBe(KindInt)
	return v.i
}

// Float returns the float payload; it panics on other kinds.
func (v Value) Float() float64 {
	v.mustBe(KindFloat)
	return v.f
}

// Str returns the string payload; it panics on other kinds.
func (v Value) Str() string {
	v.mustBe(KindString)
	return v.s
}

// Interval returns the interval payload; it panics on other kinds.
func (v Value) Interval() interval.Interval {
	v.mustBe(KindInterval)
	return interval.Interval{Ts: v.i, Te: v.j}
}

// AsFloat widens int or float to float64 for mixed numeric arithmetic.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	}
	return 0, false
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("value: %s used as %s", v.kind, k))
	}
}

// Equal reports grouping equality: ω = ω, and values of the same kind are
// compared by payload. Int and float compare numerically across kinds so
// that e.g. SUM results group consistently.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Compare imposes a total order used for sorting, grouping and set
// operations: ω sorts first and equals itself; then bool < int/float <
// string < interval across kinds; numeric kinds compare by exact numeric
// value (int vs float comparisons do not round through float64, so the
// order stays transitive for integers beyond 2^53). Among floats, NaN
// sorts before every other value and equals itself, and -0.0 equals 0.0 —
// the refinements that make Compare a genuine total order, which the
// order-preserving key encoding (AppendKey) depends on.
func (v Value) Compare(o Value) int {
	vr, or := v.rank(), o.rank()
	if vr != or {
		switch {
		case vr < or:
			return -1
		default:
			return 1
		}
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return cmpInt64(v.i, o.i)
	case KindInt:
		if o.kind == KindFloat {
			return cmpIntFloat(v.i, o.f)
		}
		return cmpInt64(v.i, o.i)
	case KindFloat:
		if o.kind == KindInt {
			return -cmpIntFloat(o.i, v.f)
		}
		return cmpFloat64(v.f, o.f)
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		}
		return 0
	case KindInterval:
		return v.Interval().Compare(o.Interval())
	}
	return 0
}

// rank groups kinds into comparison classes: numeric kinds share a class so
// that 1 (int) and 1.0 (float) are equal and adjacent in sort order.
func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	case KindInterval:
		return 4
	}
	return 5
}

// Hash mixes the value into h for hash joins, aggregation and set
// operations. Values that are Equal hash identically (ints that equal a
// float hash via the float path only when non-integral floats are
// impossible; to keep Equal⇒same-hash we hash all numerics as float bits
// when the value is integral-representable).
func (v Value) Hash(h *maphash.Hash) {
	switch v.kind {
	case KindNull:
		h.WriteByte(0)
	case KindBool:
		h.WriteByte(1)
		h.WriteByte(byte(v.i))
	case KindInt:
		h.WriteByte(2)
		writeUint64(h, uint64(v.i))
	case KindFloat:
		if f := v.f; f >= -two63 && f < two63 && f == float64(int64(f)) {
			// Integral float hashes like the equal int.
			h.WriteByte(2)
			writeUint64(h, uint64(int64(f)))
		} else {
			h.WriteByte(3)
			writeUint64(h, math.Float64bits(f))
		}
	case KindString:
		h.WriteByte(4)
		h.WriteString(v.s)
		h.WriteByte(0xff)
	case KindInterval:
		h.WriteByte(5)
		writeUint64(h, uint64(v.i))
		writeUint64(h, uint64(v.j))
	}
}

// String renders the value; ω prints as the paper's symbol.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "ω"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindInterval:
		return v.Interval().String()
	}
	return "?"
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// cmpFloat64 totally orders float64: NaN first (NaN == NaN), then the
// usual order; -0.0 == 0.0.
func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	}
	// At least one NaN.
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	}
	return 1
}

// two63 is 2^63 as a float64 (exactly representable).
const two63 = float64(1 << 63)

// cmpIntFloat exactly compares an int64 with a float64 under the total
// order of cmpFloat64 (NaN first). It never rounds i through float64, so
// integers that differ only beyond 2^53 still compare correctly.
func cmpIntFloat(i int64, f float64) int {
	switch {
	case math.IsNaN(f):
		return 1 // NaN sorts before every integer
	case f >= two63:
		return -1 // covers +Inf
	case f < -two63:
		return 1 // covers -Inf
	}
	// f is finite with floor(f) representable as int64.
	ff := math.Floor(f)
	if fi := int64(ff); i != fi {
		return cmpInt64(i, fi)
	}
	if f > ff {
		return -1 // i == floor(f) < f
	}
	return 0
}

func writeUint64(h *maphash.Hash, u uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	h.Write(b[:])
}
