package value

import (
	"hash/maphash"
	"testing"
	"testing/quick"

	"talign/internal/interval"
)

func TestKindsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null, KindNull, "ω"},
		{NewBool(true), KindBool, "true"},
		{NewBool(false), KindBool, "false"},
		{NewInt(-7), KindInt, "-7"},
		{NewFloat(2.5), KindFloat, "2.5"},
		{NewString("hi"), KindString, "hi"},
		{NewInterval(interval.New(1, 4)), KindInterval, "[1, 4)"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind %v want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("kind %v: string %q want %q", c.kind, c.v.String(), c.str)
		}
	}
	if !Null.IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
	if NewBool(true).Bool() != true {
		t.Error("bool accessor")
	}
	if NewInt(42).Int() != 42 {
		t.Error("int accessor")
	}
	if NewFloat(1.5).Float() != 1.5 {
		t.Error("float accessor")
	}
	if NewString("s").Str() != "s" {
		t.Error("string accessor")
	}
	if NewInterval(interval.New(2, 3)).Interval() != interval.New(2, 3) {
		t.Error("interval accessor")
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int() on a string must panic")
		}
	}()
	NewString("x").Int()
}

func TestCompareSemantics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, Null, 0},
		{Null, NewInt(0), -1},
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewFloat(3.0), 0},  // cross numeric equality
		{NewFloat(2.5), NewInt(3), -1}, // cross numeric order
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewInt(0), -1}, // kind rank: bool < numeric
		{NewInt(5), NewString(""), -1}, // numeric < string
		{NewString("z"), NewInterval(interval.New(0, 1)), -1},
		{NewInterval(interval.New(0, 2)), NewInterval(interval.New(0, 3)), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v cmp %v: got %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := NewInt(4).AsFloat(); !ok || f != 4 {
		t.Error("int AsFloat")
	}
	if f, ok := NewFloat(4.5).AsFloat(); !ok || f != 4.5 {
		t.Error("float AsFloat")
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("string AsFloat must fail")
	}
}

func hashOf(v Value) uint64 {
	var h maphash.Hash
	h.SetSeed(fixedSeed)
	v.Hash(&h)
	return h.Sum64()
}

var fixedSeed = maphash.MakeSeed()

// Property: Equal values hash identically (including int/float equality).
func TestPropEqualImpliesSameHash(t *testing.T) {
	f := func(i int16, pickFloat bool) bool {
		a := NewInt(int64(i))
		b := a
		if pickFloat {
			b = NewFloat(float64(i))
		}
		if !a.Equal(b) {
			return false
		}
		return hashOf(a) == hashOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is antisymmetric and Equal ⇔ Compare==0.
func TestPropCompareAntisymmetric(t *testing.T) {
	mk := func(sel uint8, i int16, s string) Value {
		switch sel % 5 {
		case 0:
			return Null
		case 1:
			return NewBool(i%2 == 0)
		case 2:
			return NewInt(int64(i))
		case 3:
			return NewFloat(float64(i) / 2)
		default:
			return NewString(s)
		}
	}
	f := func(s1, s2 uint8, i1, i2 int16, t1, t2 string) bool {
		a, b := mk(s1, i1, t1), mk(s2, i2, t2)
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		return a.Equal(b) == (a.Compare(b) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: string hashing distinguishes boundary-shifted strings (the
// terminator byte prevents ["ab","c"] colliding with ["a","bc"]).
func TestStringHashBoundary(t *testing.T) {
	var h1, h2 maphash.Hash
	h1.SetSeed(fixedSeed)
	h2.SetSeed(fixedSeed)
	NewString("ab").Hash(&h1)
	NewString("c").Hash(&h1)
	NewString("a").Hash(&h2)
	NewString("bc").Hash(&h2)
	if h1.Sum64() == h2.Sum64() {
		t.Fatal("string concatenation ambiguity in hashing")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int",
		KindFloat: "float", KindString: "string", KindInterval: "period",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("kind %d: %q want %q", k, k.String(), want)
		}
	}
	if !KindInt.Numeric() || !KindFloat.Numeric() || KindString.Numeric() {
		t.Error("Numeric misbehaves")
	}
}
