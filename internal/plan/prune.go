// Zone-map segment pruning. Relations loaded from on-disk storage carry
// interval-partitioned segments with zone maps (min/max TS/TE, per-column
// min/max — see relation.Segments). When the optimizer lands a filter
// directly above a scan, it extracts the conjuncts that compare one
// column (or TS/TE) against a constant into PruneBounds and attaches
// them to the scan; at Build time the scan skips every segment whose
// zone proves the predicate false for all of its rows. The filter stays
// in place above the scan, so pruning can only skip work, never change
// results — which is exactly what the pruning differential test asserts.
package plan

import (
	"fmt"
	"strings"

	"talign/internal/colbatch"
	"talign/internal/expr"
	"talign/internal/relation"
	"talign/internal/value"
)

// Prune targets: attribute columns are their non-negative index; the
// valid-time endpoints get the two sentinels.
const (
	pruneTS = -1
	pruneTE = -2
)

// pruneCond is one extracted conjunct: target op constant.
type pruneCond struct {
	target int
	op     expr.CmpOp
	v      value.Value
}

// PruneBounds is the set of zone-checkable conjuncts of a scan's
// pushed-down predicate.
type PruneBounds struct {
	conds []pruneCond
}

// ExtractPruneBounds collects the zone-checkable conjuncts of pred:
// column-vs-constant and TS/TE-vs-constant comparisons plus BETWEEN
// over those operands. Conjuncts of any other shape (column-column,
// $N parameters, disjunctions, computed operands) contribute nothing —
// they are simply not used for pruning. Returns nil when no conjunct
// qualifies.
func ExtractPruneBounds(pred expr.Expr, width int) *PruneBounds {
	var pb PruneBounds
	add := func(target int, op expr.CmpOp, v value.Value) {
		if v.IsNull() || (target >= 0 && target >= width) {
			return // a null constant never compares true; leave it to the filter
		}
		pb.conds = append(pb.conds, pruneCond{target: target, op: op, v: v})
	}
	for _, c := range expr.Conjuncts(pred) {
		switch e := c.(type) {
		case expr.Cmp:
			if target, ok := pruneTargetOf(e.L); ok {
				if cv, isConst := constVal(e.R); isConst {
					add(target, e.Op, cv)
				}
				continue
			}
			if target, ok := pruneTargetOf(e.R); ok {
				if cv, isConst := constVal(e.L); isConst {
					add(target, flipCmp(e.Op), cv)
				}
			}
		case expr.Between:
			target, ok := pruneTargetOf(e.X)
			if !ok {
				continue
			}
			lo, okLo := constVal(e.Lo)
			hi, okHi := constVal(e.Hi)
			if okLo {
				add(target, expr.GE, lo)
			}
			if okHi {
				add(target, expr.LE, hi)
			}
		}
	}
	if len(pb.conds) == 0 {
		return nil
	}
	return &pb
}

// pruneTargetOf maps an operand to a prune target.
func pruneTargetOf(e expr.Expr) (int, bool) {
	switch x := e.(type) {
	case expr.ColIdx:
		return x.Idx, true
	case expr.TStart:
		return pruneTS, true
	case expr.TEnd:
		return pruneTE, true
	}
	return 0, false
}

// Admits reports whether the zone may contain a row satisfying every
// extracted conjunct; false proves the segment empty under the
// predicate and prunes it.
func (pb *PruneBounds) Admits(z *colbatch.Zone) bool {
	if z.Rows == 0 {
		return false
	}
	for _, c := range pb.conds {
		var min, max value.Value
		switch c.target {
		case pruneTS:
			min, max = value.NewInt(z.MinTS), value.NewInt(z.MaxTS)
		case pruneTE:
			min, max = value.NewInt(z.MinTE), value.NewInt(z.MaxTE)
		default:
			if c.target >= len(z.Cols) {
				continue // zone from an older schema; do not prune on it
			}
			zc := z.Cols[c.target]
			if zc.AllNull() {
				return false // comparing ω never yields TRUE: no row passes
			}
			min, max = zc.Min, zc.Max
		}
		if rangeExcludes(min, max, c.op, c.v) {
			return false
		}
	}
	return true
}

// rangeExcludes reports whether no x in [min, max] can satisfy
// "x op v". Cross-kind comparisons (beyond int/float mixing) never
// exclude: the filter's own semantics decide those rows.
func rangeExcludes(min, max value.Value, op expr.CmpOp, v value.Value) bool {
	comparable := v.Kind() == min.Kind() && v.Kind() == max.Kind() ||
		(v.Kind().Numeric() && min.Kind().Numeric() && max.Kind().Numeric())
	if !comparable {
		return false
	}
	switch op {
	case expr.EQ:
		return v.Compare(min) < 0 || v.Compare(max) > 0
	case expr.NE:
		return min.Compare(max) == 0 && min.Compare(v) == 0
	case expr.LT:
		return min.Compare(v) >= 0
	case expr.LE:
		return min.Compare(v) > 0
	case expr.GT:
		return max.Compare(v) <= 0
	case expr.GE:
		return max.Compare(v) < 0
	}
	return false
}

// Filter partitions segs into the survivors and the pruned count.
func (pb *PruneBounds) Filter(segs []relation.Segment) ([]relation.Segment, int) {
	keep := make([]relation.Segment, 0, len(segs))
	for _, sg := range segs {
		if pb.Admits(&sg.Zone) {
			keep = append(keep, sg)
		}
	}
	return keep, len(segs) - len(keep)
}

// WithPrune returns a copy of the scan carrying pb. The receiver is
// left untouched: plans are immutable and may be shared.
func (s *ScanNode) WithPrune(pb *PruneBounds) *ScanNode {
	c := *s
	c.Prune = pb
	return &c
}

// String renders the bounds for EXPLAIN labels.
func (pb *PruneBounds) String() string {
	var b strings.Builder
	for i, c := range pb.conds {
		if i > 0 {
			b.WriteString(" AND ")
		}
		switch c.target {
		case pruneTS:
			b.WriteString("TS")
		case pruneTE:
			b.WriteString("TE")
		default:
			fmt.Fprintf(&b, "#%d", c.target)
		}
		b.WriteString(" " + c.op.String() + " " + c.v.String())
	}
	return b.String()
}
