package plan

import (
	"fmt"
	"math"

	"talign/internal/exec"
	"talign/internal/schema"
	"talign/internal/stats"
)

// LimitNode caps the result at N rows after skipping Offset rows. Its
// executor counterpart exits early: once the limit is reached it stops
// pulling from its child entirely, so a cursor over LIMIT k reads O(k)
// batches instead of draining the pipeline. N < 0 means no limit (OFFSET
// alone).
type LimitNode struct {
	Input  Node
	N      int64
	Offset int64

	batch int
	noCol bool
}

// Limit builds a LIMIT/OFFSET node; n < 0 means unlimited.
func (p *Planner) Limit(input Node, n, offset int64) *LimitNode {
	return &LimitNode{Input: input, N: n, Offset: offset, batch: p.Flags.BatchSize, noCol: p.Flags.DisableColumnar}
}

func (l *LimitNode) Schema() schema.Schema { return l.Input.Schema() }
func (l *LimitNode) Children() []Node      { return []Node{l.Input} }

// Rows caps the input estimate at the limit (after the offset).
func (l *LimitNode) Rows() float64 {
	in := math.Max(0, l.Input.Rows()-float64(l.Offset))
	if l.N >= 0 {
		in = math.Min(in, float64(l.N))
	}
	return in
}

// Cost charges the input in proportion to the fraction of it the early
// exit actually pulls.
func (l *LimitNode) Cost() float64 {
	inRows := math.Max(l.Input.Rows(), 1)
	frac := 1.0
	if l.N >= 0 {
		frac = math.Min(1, (float64(l.N)+float64(l.Offset))/inRows)
	}
	return l.Input.Cost()*frac + l.Rows()*CPUTupleCost
}

// Stats scales the input's statistics down to the capped cardinality.
func (l *LimitNode) Stats() *stats.Table {
	in := NodeStats(l.Input)
	if in == nil {
		return nil
	}
	return &stats.Table{Rows: int64(l.Rows()), Cols: in.Cols, T: in.T}
}

func (l *LimitNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	if it, ok, err := materializeColBuild(l, ctx); err != nil || ok {
		return it, err
	}
	in, err := l.Input.Build(ctx)
	if err != nil {
		return nil, err
	}
	lim, err := exec.NewLimit(in, l.N, l.Offset)
	if err != nil {
		return nil, err
	}
	return ctx.instrument(l, lim), nil
}

func (l *LimitNode) Label() string {
	switch {
	case l.N >= 0 && l.Offset > 0:
		return fmt.Sprintf("Limit %d offset %d", l.N, l.Offset)
	case l.N >= 0:
		return fmt.Sprintf("Limit %d", l.N)
	default:
		return fmt.Sprintf("Offset %d", l.Offset)
	}
}
