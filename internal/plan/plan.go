// Package plan implements the logical plan layer above the executor:
// statistics-based cost estimation, join-method selection (nested loop vs
// hash vs sort-merge) with PostgreSQL-style enable flags, the paper's row
// and cost estimates for the new Align/Normalize nodes (Sec. 6.2/6.3), plan
// construction helpers, and EXPLAIN rendering.
//
// The optimizer is deliberately in the spirit of the paper's host system:
// enable flags add a large disable cost rather than removing an access path
// (so a forced method still wins even if it is the only viable one), and
// the group-construction joins of alignment and normalization go through
// the same join planning as every other join — which is what Fig. 13
// measures.
package plan

import (
	"context"
	"fmt"
	"math"
	"strings"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/stats"
	"talign/internal/value"
)

// Cost model constants, PostgreSQL-flavoured.
const (
	CPUTupleCost    = 0.01
	CPUOperatorCost = 0.0025
	SeqPageCost     = 1.0
	TuplesPerPage   = 100
	DisableCost     = 1.0e10

	// Default selectivities.
	EqSelectivity    = 0.005
	RangeSelectivity = 1.0 / 3.0
)

// Flags mirror PostgreSQL's planner enable_* settings (Sec. 7.2 toggles
// enable_mergejoin / enable_hashjoin to steer normalization's internal
// join).
type Flags struct {
	EnableNestLoop  bool
	EnableHashJoin  bool
	EnableMergeJoin bool
	EnableSort      bool
	// EnableIntervalIndex turns on the sort-based overlap join for the
	// aligner's group construction when θ has no equi keys (the paper's
	// Sec. 8 future-work direction). Off by default to keep the
	// paper-faithful access paths.
	EnableIntervalIndex bool
	// EnableAntiJoinRewrite evaluates the temporal antijoin with the
	// customized gaps-only aligner instead of the generic Table 2
	// reduction (Sec. 8 future work: primitives specialized per operator).
	// Off by default for paper fidelity.
	EnableAntiJoinRewrite bool
	// DisableFusedAdjust reverts ALIGN/NORMALIZE to the classic
	// three-node pipeline (group-construction join → sort → Adjust)
	// instead of the fused group-construction → plane-sweep operator.
	// The fused node is the default (zero value) because it eliminates
	// the per-pair concatenated-row allocation and the sort of the join
	// output; the legacy path remains for differential testing.
	DisableFusedAdjust bool
	// DOP is the degree of parallelism for the exchange layer: plans whose
	// estimated input cardinality reaches ParallelMinRows are rewritten to
	// hash-partition work across DOP worker goroutines. 0 or 1 disables
	// parallel execution.
	DOP int
	// ParallelMinRows gates the exchange rewrite: below this estimated
	// input cardinality the startup and transfer overhead of an exchange
	// outweighs the speedup, and above it the exchange plan still has to
	// beat the serial plan on estimated cost. 0 (the zero value) means
	// DefaultParallelMinRows.
	ParallelMinRows float64
	// ForceParallel applies the exchange rewrite unconditionally when
	// DOP > 1, skipping the row gate, the core-count check and the cost
	// comparison. It exists for tests and benchmarks that must exercise
	// the parallel plans regardless of profitability.
	ForceParallel bool
	// BatchSize overrides the executor's DefaultBatchSize when > 0.
	BatchSize int
	// DisableOptimizer skips the rule-based rewrite pass (predicate
	// pushdown, projection pruning, constant folding, join reordering)
	// after analysis, preserving the analyzer's literal plans. It exists
	// as the escape hatch for differential testing: optimized and
	// unoptimized plans must return identical results.
	DisableOptimizer bool
	// DisableColumnar keeps every operator on the row ([]tuple.Tuple)
	// path. The columnar (colbatch vector) path is the default where
	// supported — scans, compilable filters, column projections, limits,
	// fused adjust (hash/nestloop), union, exchange — with row fallback
	// elsewhere; this flag exists for differential testing and as an
	// escape hatch.
	DisableColumnar bool

	// DisablePruning turns off zone-map segment pruning on scans of
	// storage-backed relations. Pruning only ever skips segments whose
	// zone proves the pushed-down predicate false for every row, so
	// results are identical either way; this flag exists for the
	// pruning on/off differential test and as an escape hatch.
	DisablePruning bool
}

// DefaultFlags enables every paper-faithful access path; parallelism stays
// off (DOP 1) so plans remain the paper's serial pipelines unless asked.
func DefaultFlags() Flags {
	return Flags{
		EnableNestLoop:  true,
		EnableHashJoin:  true,
		EnableMergeJoin: true,
		EnableSort:      true,
		DOP:             1,
		ParallelMinRows: DefaultParallelMinRows,
	}
}

// DefaultParallelMinRows is the default exchange gate: roughly where the
// per-worker startup cost amortizes against per-tuple work on current
// hardware.
const DefaultParallelMinRows = 1024

// Fingerprint renders the flags as a short stable string. Every field that
// can change plan shape or method choice participates, which makes the
// fingerprint a sound plan-cache key component: two flag sets with equal
// fingerprints always plan a statement identically.
func (f Flags) Fingerprint() string {
	b := func(v bool) byte {
		if v {
			return '1'
		}
		return '0'
	}
	return fmt.Sprintf("nl%c,hj%c,mj%c,so%c,ii%c,aj%c,fa%c,dop%d,pmr%g,fp%c,bs%d,op%c,co%c,zp%c",
		b(f.EnableNestLoop), b(f.EnableHashJoin), b(f.EnableMergeJoin), b(f.EnableSort),
		b(f.EnableIntervalIndex), b(f.EnableAntiJoinRewrite), b(f.DisableFusedAdjust),
		f.DOP, f.ParallelMinRows, b(f.ForceParallel), f.BatchSize, b(f.DisableOptimizer),
		b(f.DisableColumnar), b(f.DisablePruning))
}

// applyBatch plumbs a configured batch size into a built operator.
func applyBatch(it exec.Iterator, n int) exec.Iterator {
	if n > 0 {
		if bs, ok := it.(exec.BatchSizer); ok {
			bs.SetBatchSize(n)
		}
	}
	return it
}

// JoinMethod enumerates physical join strategies.
type JoinMethod uint8

// The physical join strategies the cost model chooses among.
const (
	MethodNestLoop JoinMethod = iota
	MethodHash
	MethodMerge
)

// String renders the method for EXPLAIN labels.
func (m JoinMethod) String() string {
	return [...]string{"nestloop", "hash", "merge"}[m]
}

// Node is a logical plan node with cost estimates and a physical build.
type Node interface {
	Schema() schema.Schema
	Children() []Node
	// Rows is the estimated output cardinality.
	Rows() float64
	// Cost is the estimated total cost (children included).
	Cost() float64
	// Build instantiates the executor subtree for one execution. Plans are
	// immutable and may be Built concurrently; per-execution state (bound
	// $N parameters, shared materializations) travels in ctx, which may be
	// nil for parameterless one-shot plans.
	Build(ctx *ExecCtx) (exec.Iterator, error)
	// Label describes the node for EXPLAIN.
	Label() string
}

// Planner constructs plan nodes under a set of flags.
type Planner struct {
	Flags Flags
	// Stats resolves table statistics during plan construction; nil means
	// no statistics (the cost model falls back to its constants).
	Stats StatsSource
}

// NewPlanner returns a planner with the given flags.
func NewPlanner(flags Flags) *Planner { return &Planner{Flags: flags} }

// StatsSource resolves ANALYZE statistics for named tables; the catalog
// layers (sqlish map catalogs, the server's versioned catalog snapshots)
// implement it.
type StatsSource interface {
	// TableStats returns the statistics for the (lower-cased) table name,
	// or nil when the table was never analyzed.
	TableStats(name string) *stats.Table
}

// Statser is implemented by plan nodes that can describe their output's
// column and interval statistics; derived nodes propagate their inputs'
// statistics through projections, filters and joins on a best-effort
// basis.
type Statser interface {
	// Stats returns the node's output statistics, or nil when unknown.
	Stats() *stats.Table
}

// NodeStats returns n's output statistics, or nil when n does not carry
// any.
func NodeStats(n Node) *stats.Table {
	if s, ok := n.(Statser); ok {
		return s.Stats()
	}
	return nil
}

// clampSel bounds a selectivity estimate to [1/max(rows, 1), 1]: a
// predicate keeps at least one row in expectation and never more than all
// of them. Without the clamp, stacked multiplicative estimates (e.g.
// math.Pow(EqSelectivity, len(keys))·2 over many join keys) underflow
// toward 0 or exceed 1 and poison every estimate above them.
func clampSel(sel, rows float64) float64 {
	lo := 1 / math.Max(rows, 1)
	if sel < lo {
		return lo
	}
	if sel > 1 {
		return 1
	}
	return sel
}

// distinctT returns the distinct-interval count of t's valid-time column,
// or 0 when unknown.
func distinctT(t *stats.Table) float64 {
	if t == nil {
		return 0
	}
	return t.T.DistinctT
}

// Explain renders the plan tree with estimates, one node per line.
func Explain(n Node) string {
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s  (rows=%.0f cost=%.2f)\n", n.Label(), n.Rows(), n.Cost())
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

// ----------------------------------------------------------------- scan

// ScanNode reads a materialized relation.
type ScanNode struct {
	Rel  *relation.Relation
	Name string
	// TableStats holds the table's ANALYZE statistics (nil when never
	// analyzed); derived nodes propagate them upward through Stats().
	TableStats *stats.Table

	// Prune, when set, carries the zone-checkable bounds of the filter
	// sitting directly above this scan; Build uses them to skip
	// segments of storage-backed relations (see prune.go). Relations
	// without segments ignore it.
	Prune *PruneBounds

	batch int
	noCol bool
}

// Scan builds a scan node; name is used by EXPLAIN and resolves the
// table's statistics through the planner's StatsSource.
func (p *Planner) Scan(rel *relation.Relation, name string) *ScanNode {
	n := &ScanNode{Rel: rel, Name: name, batch: p.Flags.BatchSize, noCol: p.Flags.DisableColumnar}
	if p.Stats != nil && name != "" {
		n.TableStats = p.Stats.TableStats(strings.ToLower(name))
	}
	if n.TableStats == nil {
		// Never-ANALYZEd storage-backed tables still get coarse
		// statistics from their segment zone maps (row count, per-column
		// Min/Max and null fractions).
		if segs := rel.Segments(); segs != nil {
			n.TableStats = stats.FromSegments(segs)
		}
	}
	return n
}

func (s *ScanNode) Schema() schema.Schema { return s.Rel.Schema }
func (s *ScanNode) Children() []Node      { return nil }

// Rows is the relation's exact cardinality (the scan holds the data, so
// no estimate is needed even when statistics are stale).
func (s *ScanNode) Rows() float64 { return float64(s.Rel.Len()) }
func (s *ScanNode) Cost() float64 {
	pages := math.Ceil(float64(s.Rel.Len()) / TuplesPerPage)
	return pages*SeqPageCost + float64(s.Rel.Len())*CPUTupleCost
}

// Stats implements Statser with the table's ANALYZE statistics.
func (s *ScanNode) Stats() *stats.Table { return s.TableStats }

func (s *ScanNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	if segs, _, ok := s.pruneSegments(ctx); ok {
		return ctx.instrument(s, applyBatch(exec.NewSegScan(s.Rel, segs), s.batch)), nil
	}
	return ctx.instrument(s, applyBatch(exec.NewScan(s.Rel), s.batch)), nil
}

// pruneSegments resolves the relation's segments under s.Prune: the
// survivors, the pruned count, and whether a segment scan should be
// used at all (false when the relation has no segments or nothing to
// prune on). It also feeds the process-wide pruning counters and the
// context's SegObserver (EXPLAIN ANALYZE).
func (s *ScanNode) pruneSegments(ctx *ExecCtx) ([]relation.Segment, int, bool) {
	if s.Prune == nil {
		return nil, 0, false
	}
	segs := s.Rel.Segments()
	if segs == nil {
		return nil, 0, false
	}
	keep, pruned := s.Prune.Filter(segs)
	exec.SegmentsObserve(len(keep), pruned)
	if ctx != nil && ctx.SegObserver != nil {
		ctx.SegObserver(s, len(keep), pruned)
	}
	return keep, pruned, true
}

func (s *ScanNode) Label() string {
	name := s.Name
	if name == "" {
		name = "relation"
	}
	if s.Prune != nil {
		return "SeqScan " + name + " [prune: " + s.Prune.String() + "]"
	}
	return "SeqScan " + name
}

// ----------------------------------------------------------------- filter

// FilterNode applies a predicate.
type FilterNode struct {
	Input Node
	Pred  expr.Expr

	batch int
	noCol bool
}

// Filter builds a selection node; pred must be bound against input's
// schema.
func (p *Planner) Filter(input Node, pred expr.Expr) *FilterNode {
	return &FilterNode{Input: input, Pred: pred, batch: p.Flags.BatchSize, noCol: p.Flags.DisableColumnar}
}

func (f *FilterNode) Schema() schema.Schema { return f.Input.Schema() }
func (f *FilterNode) Children() []Node      { return []Node{f.Input} }
func (f *FilterNode) Rows() float64 {
	in := f.Input.Rows()
	sel := clampSel(selectivity(f.Pred, NodeStats(f.Input)), in)
	return math.Max(1, in*sel)
}
func (f *FilterNode) Cost() float64 {
	return f.Input.Cost() + f.Input.Rows()*CPUOperatorCost
}

// Stats scales the input's statistics to the filtered cardinality; the
// per-column distributions are kept as-is (a standard, slightly
// optimistic approximation).
func (f *FilterNode) Stats() *stats.Table {
	in := NodeStats(f.Input)
	if in == nil {
		return nil
	}
	return &stats.Table{Rows: int64(f.Rows()), Cols: in.Cols, T: in.T}
}

func (f *FilterNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	if it, ok, err := materializeColBuild(f, ctx); err != nil || ok {
		return it, err
	}
	in, err := f.Input.Build(ctx)
	if err != nil {
		return nil, err
	}
	return ctx.instrument(f, applyBatch(exec.NewFilter(in, ctx.bind(f.Pred)), f.batch)), nil
}
func (f *FilterNode) Label() string { return "Filter " + f.Pred.String() }

// selectivity estimates the fraction of tuples passing pred, consulting
// the input's column statistics (histograms for ranges, distinct counts
// for equality) where they exist and falling back to the classic
// constants where they do not.
func selectivity(pred expr.Expr, in *stats.Table) float64 {
	sel := 1.0
	for _, c := range expr.Conjuncts(pred) {
		sel *= conjunctSel(c, in)
	}
	return sel
}

// conjunctSel estimates one conjunct's selectivity.
func conjunctSel(c expr.Expr, in *stats.Table) float64 {
	switch e := c.(type) {
	case expr.Cmp:
		if col, v, op, ok := colConstCmp(e); ok {
			cs := in.Col(col)
			switch op {
			case expr.EQ:
				if s, ok := cs.SelEq(v); ok {
					return s
				}
			case expr.NE:
				if s, ok := cs.SelEq(v); ok {
					return 1 - s
				}
			case expr.LT:
				if s, ok := cs.SelRange(stats.OpLT, v); ok {
					return s
				}
			case expr.LE:
				if s, ok := cs.SelRange(stats.OpLE, v); ok {
					return s
				}
			case expr.GT:
				if s, ok := cs.SelRange(stats.OpGT, v); ok {
					return s
				}
			case expr.GE:
				if s, ok := cs.SelRange(stats.OpGE, v); ok {
					return s
				}
			}
		}
		if e.Op == expr.EQ {
			return EqSelectivity
		}
		return RangeSelectivity
	case expr.Between:
		if ci, isCol := e.X.(expr.ColIdx); isCol {
			lo, okLo := constVal(e.Lo)
			hi, okHi := constVal(e.Hi)
			if okLo && okHi {
				cs := in.Col(ci.Idx)
				ge, ok1 := cs.SelRange(stats.OpGE, lo)
				le, ok2 := cs.SelRange(stats.OpLE, hi)
				if ok1 && ok2 {
					s := ge + le - 1
					if s < 0 {
						s = 0
					}
					return s
				}
			}
		}
		return RangeSelectivity * RangeSelectivity * 4 // a modest range window
	default:
		return 0.5
	}
}

// colConstCmp normalizes a comparison between one column and one constant
// into (column index, constant, operator); ok is false for any other
// shape (column-column, constant-constant, computed operands, $N
// parameters).
func colConstCmp(e expr.Cmp) (col int, v value.Value, op expr.CmpOp, ok bool) {
	if ci, isCol := e.L.(expr.ColIdx); isCol {
		if cv, isConst := constVal(e.R); isConst {
			return ci.Idx, cv, e.Op, true
		}
	}
	if ci, isCol := e.R.(expr.ColIdx); isCol {
		if cv, isConst := constVal(e.L); isConst {
			return ci.Idx, cv, flipCmp(e.Op), true
		}
	}
	return 0, value.Null, e.Op, false
}

// constVal unwraps a literal operand.
func constVal(e expr.Expr) (value.Value, bool) {
	c, ok := e.(expr.Const)
	if !ok {
		return value.Null, false
	}
	return c.V, true
}

// flipCmp mirrors an operator across swapped operands (5 < a ⇒ a > 5).
func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	}
	return op
}

// ---------------------------------------------------------------- project

// ProjectNode evaluates output expressions.
type ProjectNode struct {
	Input Node
	Exprs []expr.Expr
	Names []string
	TMode exec.TPolicy
	TExpr expr.Expr

	out   schema.Schema
	batch int
	noCol bool
}

// Project builds a projection node.
func (p *Planner) Project(input Node, names []string, exprs []expr.Expr) *ProjectNode {
	attrs := make([]schema.Attr, len(exprs))
	for i := range exprs {
		attrs[i] = schema.Attr{Name: names[i], Type: exprs[i].Type()}
	}
	return &ProjectNode{Input: input, Exprs: exprs, Names: names, out: schema.Schema{Attrs: attrs}, batch: p.Flags.BatchSize, noCol: p.Flags.DisableColumnar}
}

// ProjectT builds a projection whose valid time comes from a period-typed
// expression; tuples with ω/empty periods are dropped.
func (p *Planner) ProjectT(input Node, names []string, exprs []expr.Expr, tExpr expr.Expr) *ProjectNode {
	n := p.Project(input, names, exprs)
	n.TMode = exec.TFromExpr
	n.TExpr = tExpr
	return n
}

func (pr *ProjectNode) Schema() schema.Schema { return pr.out }
func (pr *ProjectNode) Children() []Node      { return []Node{pr.Input} }
func (pr *ProjectNode) Rows() float64         { return pr.Input.Rows() }
func (pr *ProjectNode) Cost() float64 {
	return pr.Input.Cost() + pr.Input.Rows()*CPUOperatorCost*float64(len(pr.Exprs))
}

// Stats remaps the input's column statistics through pass-through column
// references; computed output columns get empty statistics. Interval
// statistics survive only when the projection keeps the input's valid
// time.
func (pr *ProjectNode) Stats() *stats.Table {
	in := NodeStats(pr.Input)
	if in == nil {
		return nil
	}
	out := &stats.Table{Rows: in.Rows, Cols: make([]stats.Column, len(pr.Exprs))}
	for i, e := range pr.Exprs {
		if ci, ok := e.(expr.ColIdx); ok {
			if c := in.Col(ci.Idx); c != nil {
				out.Cols[i] = *c
			}
		}
	}
	if pr.TMode == exec.TKeep {
		out.T = in.T
	}
	return out
}

func (pr *ProjectNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	if it, ok, err := materializeColBuild(pr, ctx); err != nil || ok {
		return it, err
	}
	in, err := pr.Input.Build(ctx)
	if err != nil {
		return nil, err
	}
	node, err := exec.NewProject(in, pr.Names, ctx.bindAll(pr.Exprs))
	if err != nil {
		return nil, err
	}
	node.TMode = pr.TMode
	node.TExpr = ctx.bind(pr.TExpr)
	return ctx.instrument(pr, applyBatch(node, pr.batch)), nil
}
func (pr *ProjectNode) Label() string {
	parts := make([]string, len(pr.Exprs))
	for i, e := range pr.Exprs {
		parts[i] = e.String()
	}
	return "Project " + strings.Join(parts, ", ")
}

// ------------------------------------------------------------------- sort

// SortNode orders its input.
type SortNode struct {
	Input Node
	Keys  []exec.SortKey

	batch int
}

// Sort builds a sort node.
func (p *Planner) Sort(input Node, keys ...exec.SortKey) *SortNode {
	return &SortNode{Input: input, Keys: keys, batch: p.Flags.BatchSize}
}

func (s *SortNode) Schema() schema.Schema { return s.Input.Schema() }
func (s *SortNode) Children() []Node      { return []Node{s.Input} }
func (s *SortNode) Rows() float64         { return s.Input.Rows() }
func (s *SortNode) Cost() float64 {
	n := math.Max(s.Input.Rows(), 2)
	return s.Input.Cost() + 2*CPUOperatorCost*n*math.Log2(n)
}

// Stats passes the input's statistics through (sorting reorders rows
// only).
func (s *SortNode) Stats() *stats.Table { return NodeStats(s.Input) }

func (s *SortNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	in, err := s.Input.Build(ctx)
	if err != nil {
		return nil, err
	}
	return ctx.instrument(s, applyBatch(exec.NewSort(in, bindKeys(ctx, s.Keys)...), s.batch)), nil
}

// bindKeys substitutes ctx's parameters into sort-key expressions.
func bindKeys(ctx *ExecCtx, keys []exec.SortKey) []exec.SortKey {
	if ctx == nil || len(ctx.Params) == 0 || len(keys) == 0 {
		return keys
	}
	out := make([]exec.SortKey, len(keys))
	for i, k := range keys {
		out[i] = exec.SortKey{Expr: ctx.bind(k.Expr), Desc: k.Desc}
	}
	return out
}

// bindPairs substitutes ctx's parameters into equi-join pairs.
func bindPairs(ctx *ExecCtx, pairs []expr.EquiPair) []expr.EquiPair {
	if ctx == nil || len(ctx.Params) == 0 || len(pairs) == 0 {
		return pairs
	}
	out := make([]expr.EquiPair, len(pairs))
	for i, p := range pairs {
		out[i] = expr.EquiPair{Left: ctx.bind(p.Left), Right: ctx.bind(p.Right)}
	}
	return out
}
func (s *SortNode) Label() string { return fmt.Sprintf("Sort (%d keys)", len(s.Keys)) }

// ------------------------------------------------------------------- join

// JoinNode joins two inputs; the physical method is chosen at construction
// from the planner's flags and cost estimates.
type JoinNode struct {
	Left, Right Node
	Cond        expr.Expr // bound against Concat(left, right); may be nil
	Type        exec.JoinType
	MatchT      bool

	Method   JoinMethod
	keys     []expr.EquiPair
	residual expr.Expr
	out      schema.Schema
	cost     float64
	rows     float64
	batch    int
}

// Join builds a join node and selects the cheapest enabled method.
func (p *Planner) Join(l, r Node, cond expr.Expr, typ exec.JoinType, matchT bool) *JoinNode {
	j := &JoinNode{Left: l, Right: r, Cond: cond, Type: typ, MatchT: matchT, batch: p.Flags.BatchSize}
	if typ == exec.SemiJoin || typ == exec.AntiJoin {
		j.out = l.Schema()
	} else {
		j.out = l.Schema().Concat(r.Schema())
	}
	if cond != nil {
		j.keys, j.residual = expr.SplitJoinCondition(cond, l.Schema().Len())
	}
	if matchT {
		// The reduction rules compare adjusted timestamps with equality
		// only (Table 2): T becomes an ordinary equi-join key, which is
		// what lets reduced temporal joins use hash or merge strategies.
		j.keys = append(j.keys, expr.EquiPair{Left: expr.TPeriod{}, Right: expr.TPeriod{}})
	}
	j.choose(p.Flags)
	return j
}

// choose picks the physical method: candidate costs plus DisableCost for
// disabled paths, cheapest wins.
func (j *JoinNode) choose(flags Flags) {
	lr, rr := math.Max(j.Left.Rows(), 1), math.Max(j.Right.Rows(), 1)
	base := j.Left.Cost() + j.Right.Cost()

	nlCost := base + lr*rr*CPUOperatorCost + rr*CPUTupleCost
	if !flags.EnableNestLoop {
		nlCost += DisableCost
	}
	best, bestCost := MethodNestLoop, nlCost

	if len(j.keys) > 0 {
		hashCost := base + rr*(CPUOperatorCost+CPUTupleCost) + lr*CPUOperatorCost*2
		if !flags.EnableHashJoin {
			hashCost += DisableCost
		}
		if hashCost < bestCost {
			best, bestCost = MethodHash, hashCost
		}
		mergeCost := base +
			2*CPUOperatorCost*lr*math.Log2(lr+1) +
			2*CPUOperatorCost*rr*math.Log2(rr+1) +
			(lr+rr)*CPUOperatorCost
		if !flags.EnableMergeJoin {
			mergeCost += DisableCost
		}
		if mergeCost < bestCost {
			best, bestCost = MethodMerge, mergeCost
		}
	}
	j.Method = best
	j.cost = bestCost

	sel := joinSelectivity(j.Cond, j.keys, NodeStats(j.Left), NodeStats(j.Right))
	rows := lr * rr * clampSel(sel, lr*rr)
	switch j.Type {
	case exec.LeftOuterJoin:
		rows = math.Max(rows, lr)
	case exec.RightOuterJoin:
		rows = math.Max(rows, rr)
	case exec.FullOuterJoin:
		rows = math.Max(rows, lr+rr)
	case exec.SemiJoin, exec.AntiJoin:
		rows = lr * 0.5
	}
	j.rows = math.Max(rows, 1)
}

// joinSelectivity estimates a join condition's selectivity over the cross
// product: the product of the equi-key selectivities (distinct counts
// when statistics exist, EqSelectivity otherwise, the matched-T key from
// the distinct-interval counts), falling back to the classic constants
// for keyless conditions. Callers clamp the result to [1/(lr·rr), 1].
func joinSelectivity(cond expr.Expr, keys []expr.EquiPair, ls, rs *stats.Table) float64 {
	if cond == nil && len(keys) == 0 {
		return 1.0
	}
	if len(keys) == 0 {
		return RangeSelectivity
	}
	sel := 1.0
	statless := 0
	for _, k := range keys {
		if _, isT := k.Left.(expr.TPeriod); isT {
			if d := math.Max(distinctT(ls), distinctT(rs)); d > 0 {
				sel *= 1 / d
			} else {
				sel *= EqSelectivity
				statless++
			}
			continue
		}
		var lc, rc *stats.Column
		if ci, ok := k.Left.(expr.ColIdx); ok {
			lc = ls.Col(ci.Idx)
		}
		if ci, ok := k.Right.(expr.ColIdx); ok {
			rc = rs.Col(ci.Idx)
		}
		if s, ok := stats.EqJoinSel(lc, rc); ok {
			sel *= s
		} else {
			sel *= EqSelectivity
			statless++
		}
	}
	if statless == len(keys) {
		// Fully constant-based estimate: keep the classic ×2 fudge factor
		// that compensated for EqSelectivity's pessimism.
		sel *= 2
	}
	return sel
}

func (j *JoinNode) Schema() schema.Schema { return j.out }
func (j *JoinNode) Children() []Node      { return []Node{j.Left, j.Right} }
func (j *JoinNode) Rows() float64         { return j.rows }
func (j *JoinNode) Cost() float64         { return j.cost }

// Stats concatenates the children's column statistics in output-schema
// order (semi/anti joins keep only the left side); interval statistics do
// not survive a join.
func (j *JoinNode) Stats() *stats.Table {
	ls, rs := NodeStats(j.Left), NodeStats(j.Right)
	if ls == nil && rs == nil {
		return nil
	}
	out := &stats.Table{Rows: int64(j.rows), Cols: make([]stats.Column, j.out.Len())}
	lw := j.Left.Schema().Len()
	for i := range out.Cols {
		var c *stats.Column
		if i < lw {
			c = ls.Col(i)
		} else {
			c = rs.Col(i - lw)
		}
		if c != nil {
			out.Cols[i] = *c
		}
	}
	return out
}

func (j *JoinNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	l, err := j.Left.Build(ctx)
	if err != nil {
		return nil, err
	}
	r, err := j.Right.Build(ctx)
	if err != nil {
		return nil, err
	}
	keys := bindPairs(ctx, j.keys)
	residual := ctx.bind(j.residual)
	switch j.Method {
	case MethodHash:
		return ctx.instrument(j, applyBatch(exec.NewHashJoin(l, r, keys, residual, j.Type, j.MatchT), j.batch)), nil
	case MethodMerge:
		lk := make([]exec.SortKey, len(keys))
		rk := make([]exec.SortKey, len(keys))
		for i, k := range keys {
			lk[i] = exec.SortKey{Expr: k.Left}
			rk[i] = exec.SortKey{Expr: k.Right}
		}
		ls := applyBatch(exec.NewSort(l, lk...), j.batch)
		rs := applyBatch(exec.NewSort(r, rk...), j.batch)
		mj, err := exec.NewMergeJoin(ls, rs, keys, residual, j.Type, j.MatchT)
		if err != nil {
			return nil, err
		}
		return ctx.instrument(j, applyBatch(mj, j.batch)), nil
	default:
		return ctx.instrument(j, applyBatch(exec.NewNestedLoopJoin(l, r, ctx.bind(j.Cond), j.Type, j.MatchT), j.batch)), nil
	}
}

func (j *JoinNode) Label() string {
	cond := "true"
	if j.Cond != nil {
		cond = j.Cond.String()
	}
	t := ""
	if j.MatchT {
		t = " AND l.T = r.T"
	}
	return fmt.Sprintf("%s %s join ON %s%s", j.Method, j.Type, cond, t)
}

// -------------------------------------------------------- interval join

// IntervalJoinNode is the sort-based overlap join (Sec. 8 future work):
// group construction for alignment when θ admits no equi keys.
type IntervalJoinNode struct {
	Left, Right Node
	Cond        expr.Expr
	Type        exec.JoinType

	out   schema.Schema
	batch int
}

// IntervalJoin builds the node (inner or left outer only).
func (p *Planner) IntervalJoin(l, r Node, cond expr.Expr, typ exec.JoinType) *IntervalJoinNode {
	return &IntervalJoinNode{Left: l, Right: r, Cond: cond, Type: typ, out: l.Schema().Concat(r.Schema()), batch: p.Flags.BatchSize}
}

func (j *IntervalJoinNode) Schema() schema.Schema { return j.out }
func (j *IntervalJoinNode) Children() []Node      { return []Node{j.Left, j.Right} }
func (j *IntervalJoinNode) Rows() float64 {
	rows := j.Left.Rows() * 3 // default: a few overlap partners per tuple
	if f, ok := stats.OverlapFrac(NodeStats(j.Left), NodeStats(j.Right)); ok {
		prod := j.Left.Rows() * j.Right.Rows()
		rows = prod * clampSel(f, prod)
	}
	if j.Type == exec.LeftOuterJoin {
		rows = math.Max(rows, j.Left.Rows())
	}
	return math.Max(rows, 1)
}
func (j *IntervalJoinNode) Cost() float64 {
	lr, rr := math.Max(j.Left.Rows(), 2), math.Max(j.Right.Rows(), 2)
	return j.Left.Cost() + j.Right.Cost() +
		2*CPUOperatorCost*rr*math.Log2(rr) + // sort the inner
		lr*CPUOperatorCost*math.Log2(rr) + // binary search per outer tuple
		j.Rows()*CPUOperatorCost // window scan
}
func (j *IntervalJoinNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	l, err := j.Left.Build(ctx)
	if err != nil {
		return nil, err
	}
	r, err := j.Right.Build(ctx)
	if err != nil {
		return nil, err
	}
	ij, err := exec.NewIntervalJoin(l, r, ctx.bind(j.Cond), j.Type)
	if err != nil {
		return nil, err
	}
	return ctx.instrument(j, applyBatch(ij, j.batch)), nil
}
func (j *IntervalJoinNode) Label() string {
	cond := "true"
	if j.Cond != nil {
		cond = j.Cond.String()
	}
	return fmt.Sprintf("interval-index %s join ON %s", j.Type, cond)
}

// ------------------------------------------------------------- aggregation

// AggNode groups and aggregates.
type AggNode struct {
	Input    Node
	GroupBy  []expr.Expr
	Names    []string
	GroupByT bool
	Aggs     []exec.AggSpec

	out   schema.Schema
	batch int
}

// Aggregate builds an aggregation node.
func (p *Planner) Aggregate(input Node, groupBy []expr.Expr, names []string, groupByT bool, aggs []exec.AggSpec) (*AggNode, error) {
	probe, err := exec.NewHashAggregate(exec.NewScan(relation.New(input.Schema())), groupBy, names, groupByT, aggs)
	if err != nil {
		return nil, err
	}
	return &AggNode{Input: input, GroupBy: groupBy, Names: names, GroupByT: groupByT, Aggs: aggs, out: probe.Schema(), batch: p.Flags.BatchSize}, nil
}

func (a *AggNode) Schema() schema.Schema { return a.out }
func (a *AggNode) Children() []Node      { return []Node{a.Input} }
func (a *AggNode) Rows() float64 {
	if len(a.GroupBy) == 0 && !a.GroupByT {
		return 1
	}
	in := a.Input.Rows()
	st := NodeStats(a.Input)
	groups, known := 1.0, false
	for _, g := range a.GroupBy {
		if ci, ok := g.(expr.ColIdx); ok {
			if c := st.Col(ci.Idx); c != nil && c.Distinct > 0 {
				groups *= c.Distinct
				known = true
				continue
			}
		}
		groups *= 10 // computed or unanalyzed key: a modest fan-out guess
	}
	if a.GroupByT {
		if d := distinctT(st); d > 0 {
			groups *= d
			known = true
		} else {
			groups *= 10
		}
	}
	if !known {
		return math.Max(1, in*0.1)
	}
	return math.Max(1, math.Min(groups, in))
}
func (a *AggNode) Cost() float64 {
	return a.Input.Cost() + a.Input.Rows()*CPUOperatorCost*float64(1+len(a.Aggs))
}
func (a *AggNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	in, err := a.Input.Build(ctx)
	if err != nil {
		return nil, err
	}
	aggs := a.Aggs
	if ctx != nil && len(ctx.Params) > 0 {
		aggs = make([]exec.AggSpec, len(a.Aggs))
		for i, sp := range a.Aggs {
			sp.Arg = ctx.bind(sp.Arg)
			aggs[i] = sp
		}
	}
	agg, err := exec.NewHashAggregate(in, ctx.bindAll(a.GroupBy), a.Names, a.GroupByT, aggs)
	if err != nil {
		return nil, err
	}
	return ctx.instrument(a, applyBatch(agg, a.batch)), nil
}
func (a *AggNode) Label() string {
	return fmt.Sprintf("HashAggregate (%d group cols, byT=%v, %d aggs)", len(a.GroupBy), a.GroupByT, len(a.Aggs))
}

// ----------------------------------------------------------------- set ops

// SetOpNode implements union/intersect/except.
type SetOpNode struct {
	Left, Right Node
	Kind        exec.SetOpKind

	batch int
	noCol bool
}

// SetOp builds a set operation node.
func (p *Planner) SetOp(l, r Node, kind exec.SetOpKind) *SetOpNode {
	return &SetOpNode{Left: l, Right: r, Kind: kind, batch: p.Flags.BatchSize, noCol: p.Flags.DisableColumnar}
}

func (s *SetOpNode) Schema() schema.Schema { return s.Left.Schema() }
func (s *SetOpNode) Children() []Node      { return []Node{s.Left, s.Right} }
func (s *SetOpNode) Rows() float64 {
	switch s.Kind {
	case exec.UnionOp:
		return s.Left.Rows() + s.Right.Rows()
	case exec.IntersectOp:
		return math.Min(s.Left.Rows(), s.Right.Rows()) * 0.5
	default:
		return s.Left.Rows() * 0.5
	}
}
func (s *SetOpNode) Cost() float64 {
	return s.Left.Cost() + s.Right.Cost() + (s.Left.Rows()+s.Right.Rows())*CPUOperatorCost
}
func (s *SetOpNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	if it, ok, err := materializeColBuild(s, ctx); err != nil || ok {
		return it, err
	}
	l, err := s.Left.Build(ctx)
	if err != nil {
		return nil, err
	}
	r, err := s.Right.Build(ctx)
	if err != nil {
		return nil, err
	}
	op, err := exec.NewSetOp(l, r, s.Kind)
	if err != nil {
		return nil, err
	}
	return ctx.instrument(s, applyBatch(op, s.batch)), nil
}
func (s *SetOpNode) Label() string { return "SetOp " + s.Kind.String() }

// ---------------------------------------------------------------- distinct

// DistinctNode removes exact duplicates.
type DistinctNode struct {
	Input Node

	batch int
}

// Distinct builds a duplicate-elimination node.
func (p *Planner) Distinct(input Node) *DistinctNode {
	return &DistinctNode{Input: input, batch: p.Flags.BatchSize}
}

func (d *DistinctNode) Schema() schema.Schema { return d.Input.Schema() }
func (d *DistinctNode) Children() []Node      { return []Node{d.Input} }
func (d *DistinctNode) Rows() float64         { return math.Max(1, d.Input.Rows()*0.9) }
func (d *DistinctNode) Cost() float64 {
	return d.Input.Cost() + d.Input.Rows()*CPUOperatorCost
}
func (d *DistinctNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	in, err := d.Input.Build(ctx)
	if err != nil {
		return nil, err
	}
	return ctx.instrument(d, applyBatch(exec.NewDistinct(in), d.batch)), nil
}
func (d *DistinctNode) Label() string { return "Distinct" }

// ----------------------------------------------------- adjust (align/norm)

// AdjustNode is the logical node for the plane-sweep primitive. Its row
// and cost estimates are the paper's (Sec. 6.2 for alignment, Sec. 6.3 for
// normalization):
//
//	align:     numRows = 3·input.numRows
//	           cost    = input.cost + 2·cpu_op·input.numRows·numCols
//	normalize: numRows = 2·input.numRows
//	           cost    = input.cost + cpu_op·input.numRows·numCols
type AdjustNode struct {
	Input     Node
	Mode      exec.AdjustMode
	LeftWidth int
	P1, P2    expr.Expr

	out   schema.Schema
	batch int
}

// Adjust builds the plane-sweep node over the group-construction stream.
func (p *Planner) Adjust(input Node, mode exec.AdjustMode, leftWidth int, p1, p2 expr.Expr) *AdjustNode {
	cols := make([]int, leftWidth)
	for i := range cols {
		cols[i] = i
	}
	return &AdjustNode{Input: input, Mode: mode, LeftWidth: leftWidth, P1: p1, P2: p2, out: input.Schema().Project(cols), batch: p.Flags.BatchSize}
}

func (a *AdjustNode) Schema() schema.Schema { return a.out }
func (a *AdjustNode) Children() []Node      { return []Node{a.Input} }
func (a *AdjustNode) Rows() float64 {
	if a.Mode == exec.ModeAlign {
		return 3 * a.Input.Rows()
	}
	return 2 * a.Input.Rows()
}
func (a *AdjustNode) Cost() float64 {
	numCols := float64(a.LeftWidth)
	if a.Mode == exec.ModeAlign {
		return a.Input.Cost() + 2*CPUOperatorCost*a.Input.Rows()*numCols
	}
	return a.Input.Cost() + CPUOperatorCost*a.Input.Rows()*numCols
}
func (a *AdjustNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	in, err := a.Input.Build(ctx)
	if err != nil {
		return nil, err
	}
	ad, err := exec.NewAdjust(in, a.Mode, a.LeftWidth, ctx.bind(a.P1), ctx.bind(a.P2))
	if err != nil {
		return nil, err
	}
	return ctx.instrument(a, applyBatch(ad, a.batch)), nil
}
func (a *AdjustNode) Label() string { return "Adjust " + a.Mode.String() }

// ----------------------------------------------------------------- absorb

// AbsorbNode is the logical α node.
type AbsorbNode struct {
	Input Node

	batch int
}

// Absorb builds the temporal-duplicate elimination node (Def. 12).
func (p *Planner) Absorb(input Node) *AbsorbNode {
	return &AbsorbNode{Input: input, batch: p.Flags.BatchSize}
}

func (a *AbsorbNode) Schema() schema.Schema { return a.Input.Schema() }
func (a *AbsorbNode) Children() []Node      { return []Node{a.Input} }
func (a *AbsorbNode) Rows() float64         { return math.Max(1, a.Input.Rows()*0.9) }
func (a *AbsorbNode) Cost() float64 {
	n := math.Max(a.Input.Rows(), 2)
	return a.Input.Cost() + 2*CPUOperatorCost*n*math.Log2(n)
}
func (a *AbsorbNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	in, err := a.Input.Build(ctx)
	if err != nil {
		return nil, err
	}
	return ctx.instrument(a, applyBatch(exec.NewAbsorb(in), a.batch)), nil
}
func (a *AbsorbNode) Label() string { return "Absorb" }

// Run builds and drains a parameterless plan into a relation. It still
// allocates an ExecCtx: SharedNode memoization is per-context, so a nil
// context would re-materialize broadcast subtrees once per fragment.
func Run(n Node) (*relation.Relation, error) {
	return RunCtx(n, NewExecCtx())
}

// RunParams builds and drains a plan with the given $1..$N parameter
// values bound.
func RunParams(n Node, params ...value.Value) (*relation.Relation, error) {
	return RunCtx(n, NewExecCtx(params...))
}

// RunContext builds and drains a plan under ctx with params bound:
// cancelling ctx cooperatively aborts every operator in the tree.
func RunContext(ctx context.Context, n Node, params ...value.Value) (*relation.Relation, error) {
	return RunCtx(n, NewExecCtxContext(ctx, params...))
}

// RunCtx builds and drains a plan under an explicit execution context.
func RunCtx(n Node, ctx *ExecCtx) (*relation.Relation, error) {
	it, err := n.Build(ctx)
	if err != nil {
		return nil, err
	}
	return exec.Collect(it)
}
