// Columnar build protocol. Nodes whose physical operator has a
// vectorized twin implement colBuilder; Build methods try the columnar
// path first and finish it with a single exec.Materialize step at the
// row boundary, so cursors, the wire protocol and the database/sql
// driver keep seeing rows while the pipeline underneath runs over
// colbatch vectors.
//
// Three invariants keep the protocol safe:
//
//  1. BuildCol is consumption-free on refusal: every pure gate (flag,
//     instrumentation, expression shapes, strategy) is checked before
//     any child is built, so ok=false never leaves a half-consumed
//     partition leaf behind and the caller can fall back to the row
//     path unconditionally.
//  2. Multi-input nodes never refuse after the first child succeeded:
//     a row-only sibling is bridged with exec.NewToCol instead. Combined
//     with (1) this makes refusal propagation sound in exchange
//     fragments, where inputs are single-use partition streams.
//  3. Instrumented executions (EXPLAIN ANALYZE) stay entirely on the
//     row path — colDisabled checks ctx.Instrument — so per-operator
//     row counters keep their meaning.
package plan

import (
	"fmt"

	"talign/internal/exec"
	"talign/internal/relation"
)

// colBuilder is implemented by plan nodes that can build a vectorized
// executor subtree. ok=false means the node (or its input chain) needs
// the row path; err aborts the whole build.
type colBuilder interface {
	BuildCol(ctx *ExecCtx) (exec.ColIterator, bool, error)
}

// buildColNode attempts the columnar build of n.
func buildColNode(n Node, ctx *ExecCtx) (exec.ColIterator, bool, error) {
	cb, ok := n.(colBuilder)
	if !ok {
		return nil, false, nil
	}
	return cb.BuildCol(ctx)
}

// colDisabled reports whether the columnar path is off for this build:
// by flag, or because the execution is instrumented (EXPLAIN ANALYZE
// counts rows through the row iterators).
func colDisabled(noCol bool, ctx *ExecCtx) bool {
	return noCol || (ctx != nil && ctx.Instrument != nil)
}

// materializeColBuild is the shared head of the candidate Build methods:
// it tries n's columnar build and, on success, finishes the chain at the
// row boundary. ok=false means the caller should run its row path.
func materializeColBuild(n Node, ctx *ExecCtx) (exec.Iterator, bool, error) {
	cit, ok, err := buildColNode(n, ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	return ctx.instrument(n, exec.NewMaterialize(cit)), true, nil
}

// toColInput bridges a child into a columnar pipeline when the child
// itself cannot build columnar: the row subtree is built as usual and
// adapted batch-by-batch.
func toColInput(n Node, ctx *ExecCtx) (exec.ColIterator, error) {
	cit, ok, err := buildColNode(n, ctx)
	if err != nil {
		return nil, err
	}
	if ok {
		return cit, nil
	}
	it, err := n.Build(ctx)
	if err != nil {
		return nil, err
	}
	return exec.NewToCol(it), nil
}

// BuildCol streams the relation's cached columnar image (zero-copy
// views, see relation.Columnar).
func (s *ScanNode) BuildCol(ctx *ExecCtx) (exec.ColIterator, bool, error) {
	if colDisabled(s.noCol, ctx) {
		return nil, false, nil
	}
	if segs, _, ok := s.pruneSegments(ctx); ok {
		return exec.ApplyColBatch(exec.NewColSegScan(s.Rel.Schema, segs), s.batch), true, nil
	}
	return exec.ApplyColBatch(exec.NewColScan(s.Rel), s.batch), true, nil
}

// BuildCol evaluates the predicate over vectors, writing only the
// selection vector.
func (f *FilterNode) BuildCol(ctx *ExecCtx) (exec.ColIterator, bool, error) {
	if colDisabled(f.noCol, ctx) {
		return nil, false, nil
	}
	pred := ctx.bind(f.Pred)
	if !exec.ColFilterable(pred) {
		return nil, false, nil
	}
	in, ok, err := buildColNode(f.Input, ctx)
	if err != nil || !ok {
		return nil, ok, err
	}
	cf, ok := exec.NewColFilter(in, pred)
	if !ok {
		return nil, false, fmt.Errorf("plan: columnar filter refused a vetted predicate")
	}
	return exec.ApplyColBatch(cf, f.batch), true, nil
}

// BuildCol turns the projection into column pointer shuffling when every
// output expression is a plain column/TS/TE reference (TFromExpr also
// runs columnar for the PERIOD-over-int-columns shape).
func (pr *ProjectNode) BuildCol(ctx *ExecCtx) (exec.ColIterator, bool, error) {
	if colDisabled(pr.noCol, ctx) {
		return nil, false, nil
	}
	exprs := ctx.bindAll(pr.Exprs)
	texpr := ctx.bind(pr.TExpr)
	if !exec.ColProjectable(exprs, pr.TMode, texpr) {
		return nil, false, nil
	}
	in, ok, err := buildColNode(pr.Input, ctx)
	if err != nil || !ok {
		return nil, ok, err
	}
	cp, ok := exec.NewColProject(in, exprs, pr.out, pr.TMode, texpr)
	if !ok {
		return nil, false, fmt.Errorf("plan: columnar project refused a vetted expression list")
	}
	return cp, true, nil
}

// BuildCol caps the stream counting selected rows (not physical batch
// rows) and keeps the row operator's early exit.
func (l *LimitNode) BuildCol(ctx *ExecCtx) (exec.ColIterator, bool, error) {
	if colDisabled(l.noCol, ctx) || l.Offset < 0 {
		return nil, false, nil // negative offset: row path reports the error
	}
	in, ok, err := buildColNode(l.Input, ctx)
	if err != nil || !ok {
		return nil, ok, err
	}
	return exec.NewColLimit(in, l.N, l.Offset), true, nil
}

// BuildCol builds the vectorized fused adjust for the hash and
// nested-loop strategies with fully extracted equi keys; merge/interval
// strategies and residual θ keep the row operator. The group side is
// bridged with ToCol when it cannot build columnar — the operator drains
// it into a columnar store on Open either way.
func (n *FusedAdjustNode) BuildCol(ctx *ExecCtx) (exec.ColIterator, bool, error) {
	if colDisabled(n.noCol, ctx) || n.Residual != nil {
		return nil, false, nil
	}
	if n.Strategy != exec.GroupHash && n.Strategy != exec.GroupNestLoop {
		return nil, false, nil
	}
	keys := bindPairs(ctx, n.Keys)
	for _, k := range keys {
		if !exec.ColOperandOK(k.Left) || !exec.ColOperandOK(k.Right) {
			return nil, false, nil
		}
	}
	if n.Mode == exec.ModeNormalize && (n.PCol < 0 || n.PCol >= n.Right.Schema().Len()) {
		return nil, false, nil
	}
	l, ok, err := buildColNode(n.Left, ctx)
	if err != nil || !ok {
		return nil, ok, err
	}
	r, err := toColInput(n.Right, ctx)
	if err != nil {
		return nil, false, err
	}
	fa, ok := exec.NewColFusedAdjust(l, r, n.Mode, n.Strategy, keys, n.PCol)
	if !ok {
		return nil, false, fmt.Errorf("plan: columnar fused adjust refused after gates")
	}
	return exec.ApplyColBatch(fa, n.batch), true, nil
}

// BuildCol streams the union with selection-vector dedup; intersect and
// except stay on the row path.
func (s *SetOpNode) BuildCol(ctx *ExecCtx) (exec.ColIterator, bool, error) {
	if colDisabled(s.noCol, ctx) || s.Kind != exec.UnionOp {
		return nil, false, nil
	}
	if !s.Left.Schema().UnionCompatible(s.Right.Schema()) {
		return nil, false, nil // row path reports the error
	}
	l, ok, err := buildColNode(s.Left, ctx)
	if err != nil || !ok {
		return nil, ok, err
	}
	r, err := toColInput(s.Right, ctx)
	if err != nil {
		return nil, false, err
	}
	op, err := exec.NewColSetOp(l, r)
	if err != nil {
		return nil, false, err
	}
	return op, true, nil
}

// BuildCol scans the per-execution shared materialization columnar; the
// memoized relation is the same one the row path scans, so mixed row and
// columnar readers of one SharedNode stay consistent.
func (s *SharedNode) BuildCol(ctx *ExecCtx) (exec.ColIterator, bool, error) {
	if colDisabled(s.noCol, ctx) {
		return nil, false, nil
	}
	rel, err := ctx.sharedGet(s, func() (*relation.Relation, error) {
		it, err := s.Input.Build(ctx)
		if err != nil {
			return nil, err
		}
		return exec.Collect(it)
	})
	if err != nil {
		return nil, false, err
	}
	return exec.ApplyColBatch(exec.NewColScan(rel), s.batch), true, nil
}

// BuildCol hands out the pre-built columnar partition stream, once.
func (l *builtLeaf) BuildCol(*ExecCtx) (exec.ColIterator, bool, error) {
	if l.colIt == nil {
		return nil, false, nil
	}
	it := l.colIt
	l.colIt = nil
	return it, true, nil
}
