package plan

import (
	"fmt"
	"math"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/schema"
	"talign/internal/stats"
)

// FusedAdjustNode is the logical node for the fused group-construction →
// plane-sweep pipeline: it replaces the (join → sort → Adjust) chain of
// the classic ALIGN/NORMALIZE plans with a single operator that never
// materializes concatenated join rows. The group strategy (hash, merge,
// nested loop, interval index) is chosen at construction exactly like
// JoinNode's method — candidate costs plus DisableCost for disabled
// paths — so the planner flags that steer Fig. 13's join-method series
// steer the fused node the same way.
type FusedAdjustNode struct {
	Left, Right Node
	Mode        exec.AdjustMode
	Strategy    exec.GroupStrategy
	Keys        []expr.EquiPair
	Residual    expr.Expr
	PCol        int

	out   schema.Schema
	cost  float64
	batch int
	noCol bool
}

// FusedAlign builds the fused aligner for r Φ_θ s (modes align or gaps).
// theta is bound against Concat(r, s) and may be nil.
func (p *Planner) FusedAlign(r, s Node, theta expr.Expr, mode exec.AdjustMode) *FusedAdjustNode {
	var keys []expr.EquiPair
	var residual expr.Expr
	if theta != nil {
		keys, residual = expr.SplitJoinCondition(theta, r.Schema().Len())
	}
	n := &FusedAdjustNode{
		Left: r, Right: s, Mode: mode,
		Keys: keys, Residual: residual, PCol: -1,
		out: r.Schema(), batch: p.Flags.BatchSize, noCol: p.Flags.DisableColumnar,
	}
	n.choose(p.Flags)
	return n
}

// FusedNormalize builds the fused splitter N_B(r; points): keys equate
// r's grouping attributes with the point relation's leading columns, and
// pCol is the split-point column in the point relation.
func (p *Planner) FusedNormalize(r, points Node, keys []expr.EquiPair, pCol int) *FusedAdjustNode {
	n := &FusedAdjustNode{
		Left: r, Right: points, Mode: exec.ModeNormalize,
		Keys: keys, PCol: pCol,
		out: r.Schema(), batch: p.Flags.BatchSize, noCol: p.Flags.DisableColumnar,
	}
	n.choose(p.Flags)
	return n
}

// FusedAdjustFrom rebuilds a fused adjust node from its decomposed parts
// over (possibly rewritten) inputs, re-running strategy choice under the
// planner's flags and the inputs' statistics. The optimizer uses it after
// pushing predicates below the node.
func (p *Planner) FusedAdjustFrom(l, r Node, mode exec.AdjustMode, keys []expr.EquiPair, residual expr.Expr, pCol int) *FusedAdjustNode {
	n := &FusedAdjustNode{
		Left: l, Right: r, Mode: mode,
		Keys: keys, Residual: residual, PCol: pCol,
		out: l.Schema(), batch: p.Flags.BatchSize, noCol: p.Flags.DisableColumnar,
	}
	n.choose(p.Flags)
	return n
}

// choose picks the group strategy with JoinNode's cost candidates, plus
// the interval index (align only, keyless θ) which — matching the classic
// plan's behaviour — wins whenever its flag is on and θ has no equi keys.
func (n *FusedAdjustNode) choose(flags Flags) {
	lr, rr := math.Max(n.Left.Rows(), 1), math.Max(n.Right.Rows(), 1)
	base := n.Left.Cost() + n.Right.Cost()

	if len(n.Keys) == 0 && n.Mode != exec.ModeNormalize && flags.EnableIntervalIndex {
		n.Strategy = exec.GroupInterval
		n.cost = base +
			2*CPUOperatorCost*rr*math.Log2(rr+1) +
			lr*CPUOperatorCost*math.Log2(rr+1) +
			lr*3*CPUOperatorCost
		return
	}

	nlCost := base + lr*rr*CPUOperatorCost + rr*CPUTupleCost
	if !flags.EnableNestLoop {
		nlCost += DisableCost
	}
	best, bestCost := exec.GroupNestLoop, nlCost

	if len(n.Keys) > 0 {
		hashCost := base + rr*(CPUOperatorCost+CPUTupleCost) + lr*CPUOperatorCost*2
		if !flags.EnableHashJoin {
			hashCost += DisableCost
		}
		if hashCost < bestCost {
			best, bestCost = exec.GroupHash, hashCost
		}
		mergeCost := base +
			2*CPUOperatorCost*lr*math.Log2(lr+1) +
			2*CPUOperatorCost*rr*math.Log2(rr+1) +
			(lr+rr)*CPUOperatorCost
		if !flags.EnableMergeJoin {
			mergeCost += DisableCost
		}
		if mergeCost < bestCost {
			best, bestCost = exec.GroupMerge, mergeCost
		}
	}
	n.Strategy = best
	// The sweep itself: the paper's Sec. 6.2/6.3 per-row adjustment cost.
	n.cost = bestCost + 2*CPUOperatorCost*n.Rows()
}

func (n *FusedAdjustNode) Schema() schema.Schema { return n.out }
func (n *FusedAdjustNode) Children() []Node      { return []Node{n.Left, n.Right} }

// Rows follows the paper's estimates (Sec. 6.2/6.3): alignment emits ~3
// rows per group-join row, normalization ~2, with the group join scaled
// by its key selectivity like JoinNode. With interval statistics on both
// inputs the group join is additionally scaled by the overlap fraction —
// group construction only pairs tuples whose valid times overlap, which
// is exactly what the overlap profile estimates.
func (n *FusedAdjustNode) Rows() float64 {
	lr, rr := math.Max(n.Left.Rows(), 1), math.Max(n.Right.Rows(), 1)
	ls, rs := NodeStats(n.Left), NodeStats(n.Right)
	f, hasOverlap := stats.OverlapFrac(ls, rs)
	sel := RangeSelectivity
	switch {
	case len(n.Keys) > 0:
		// Equi keys dominate; alignment's group join additionally keeps
		// only overlapping pairs, which the overlap profile quantifies.
		sel = joinSelectivity(expr.Bool(true), n.Keys, ls, rs)
		if n.Mode != exec.ModeNormalize && hasOverlap {
			sel *= f
		}
	case n.Mode != exec.ModeNormalize && hasOverlap:
		// Keyless θ: the group join is exactly the overlap join.
		sel = f
	}
	sel = clampSel(sel, lr*rr)
	joinRows := math.Max(lr*rr*sel, lr) // left outer: at least one row per left tuple
	if n.Mode == exec.ModeNormalize {
		return 2 * joinRows
	}
	return 3 * joinRows
}

// Stats reports the left input's column statistics at the adjusted
// cardinality: the fused node emits left rows with rewritten valid times.
func (n *FusedAdjustNode) Stats() *stats.Table {
	in := NodeStats(n.Left)
	if in == nil {
		return nil
	}
	return &stats.Table{Rows: int64(n.Rows()), Cols: in.Cols}
}

func (n *FusedAdjustNode) Cost() float64 { return n.cost }

func (n *FusedAdjustNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	if it, ok, err := materializeColBuild(n, ctx); err != nil || ok {
		return it, err
	}
	l, err := n.Left.Build(ctx)
	if err != nil {
		return nil, err
	}
	r, err := n.Right.Build(ctx)
	if err != nil {
		return nil, err
	}
	fa, err := exec.NewFusedAdjust(l, r, n.Mode, n.Strategy, bindPairs(ctx, n.Keys), ctx.bind(n.Residual), n.PCol)
	if err != nil {
		return nil, err
	}
	return ctx.instrument(n, applyBatch(fa, n.batch)), nil
}

func (n *FusedAdjustNode) Label() string {
	return fmt.Sprintf("FusedAdjust %s (%s)", n.Mode, n.Strategy)
}
