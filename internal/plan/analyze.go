package plan

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"talign/internal/exec"
	"talign/internal/relation"
)

// ExplainAnalyze builds the plan under ctx with a row counter attached to
// every operator, executes it to completion, and renders the tree with
// estimated vs actual cardinalities per node. Nodes that never built an
// operator during this execution (template fragments inside an exchange,
// pruned branches) render "actual rows=-". The result relation is
// returned alongside the rendering so callers can report the output
// cardinality without re-running the statement.
//
// ctx must be fresh: ExplainAnalyze installs its own Instrument hook.
func ExplainAnalyze(n Node, ctx *ExecCtx) (string, *relation.Relation, error) {
	var mu sync.Mutex
	counts := map[Node]*atomic.Int64{}
	type segCount struct{ scanned, pruned int }
	segs := map[Node]segCount{}
	ctx.Instrument = func(node Node, it exec.Iterator) exec.Iterator {
		mu.Lock()
		c := counts[node]
		if c == nil {
			c = new(atomic.Int64)
			counts[node] = c
		}
		mu.Unlock()
		return exec.CountTo(it, c)
	}
	ctx.SegObserver = func(node Node, scanned, pruned int) {
		mu.Lock()
		sc := segs[node]
		sc.scanned += scanned
		sc.pruned += pruned
		segs[node] = sc
		mu.Unlock()
	}
	rel, err := RunCtx(n, ctx)
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		actual := "-"
		segInfo := ""
		mu.Lock()
		if c, ok := counts[n]; ok {
			actual = fmt.Sprint(c.Load())
		}
		if sc, ok := segs[n]; ok {
			segInfo = fmt.Sprintf(" (segments scanned=%d pruned=%d)", sc.scanned, sc.pruned)
		}
		mu.Unlock()
		fmt.Fprintf(&b, "%s  (rows=%.0f cost=%.2f) (actual rows=%s)%s\n",
			n.Label(), n.Rows(), n.Cost(), actual, segInfo)
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String(), rel, nil
}
