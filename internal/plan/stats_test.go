package plan

import (
	"math"
	"strings"
	"testing"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/stats"
	"talign/internal/value"
)

// analyzedScan attaches freshly computed statistics to a scan, as the
// catalog layers do after ANALYZE.
func analyzedScan(p *Planner, n int, name string) *ScanNode {
	rel := sampleRel(n)
	s := p.Scan(rel, name)
	s.TableStats = stats.Analyze(rel)
	return s
}

// TestSelectivityClampRegression pins the fix for the multi-key join
// selectivity formula: math.Pow(EqSelectivity, len(keys))·2 underflows
// toward 0 for long key lists, and every selectivity the planner computes
// must stay within [1/max(rows, 1), 1].
func TestSelectivityClampRegression(t *testing.T) {
	if got := clampSel(1e-30, 100); got != 0.01 {
		t.Fatalf("clampSel(1e-30, 100) = %v, want 0.01 (the 1/rows floor)", got)
	}
	if got := clampSel(5, 100); got != 1 {
		t.Fatalf("clampSel(5, 100) = %v, want 1", got)
	}
	if got := clampSel(0.5, 0); got != 1 {
		t.Fatalf("clampSel(0.5, 0) = %v, want 1 (the floor is 1/max(rows, 1))", got)
	}

	// Eight constant-based keys: the naive product is ~7.8e-19; clamped
	// over a 10×10 cross product it must report exactly the 1/100 floor.
	keys := make([]expr.EquiPair, 8)
	for i := range keys {
		keys[i] = expr.EquiPair{Left: expr.CI(0, value.KindInt), Right: expr.CI(0, value.KindInt)}
	}
	sel := joinSelectivity(expr.Bool(true), keys, nil, nil)
	if clamped := clampSel(sel, 100); clamped != 1.0/100 {
		t.Fatalf("clamped 8-key selectivity = %v, want 1/100", clamped)
	}

	// End to end: the join's row estimate stays within [1, lr·rr].
	p := NewPlanner(DefaultFlags())
	rel := sampleRel(10)
	cond := expr.And(
		expr.Eq(expr.CI(0, value.KindInt), expr.CI(2, value.KindInt)),
		expr.Eq(expr.CI(1, value.KindInt), expr.CI(3, value.KindInt)),
	)
	j := p.Join(p.Scan(rel, "r"), p.Scan(rel, "s"), cond, exec.InnerJoin, false)
	if j.Rows() < 1 || j.Rows() > 100 {
		t.Fatalf("2-key join row estimate %v outside [1, 100]", j.Rows())
	}
}

// TestStatsFedFilterEstimate: with ANALYZE statistics an equality filter
// estimates from the distinct count and a range filter from the
// histogram, instead of the hard-coded constants.
func TestStatsFedFilterEstimate(t *testing.T) {
	p := NewPlanner(DefaultFlags())
	scan := analyzedScan(p, 1000, "r") // k = i%10 (10 distinct), v = i

	eq := p.Filter(scan, expr.Eq(expr.CI(0, value.KindInt), expr.Int(3)))
	if got := eq.Rows(); math.Abs(got-100) > 20 {
		t.Fatalf("k=3 estimate %v, want ~100 (1000/10 via distinct count)", got)
	}

	rng := p.Filter(scan, expr.Lt(expr.CI(1, value.KindInt), expr.Int(500)))
	if got := rng.Rows(); math.Abs(got-500) > 100 {
		t.Fatalf("v<500 estimate %v, want ~500 via histogram", got)
	}

	// Out-of-range equality collapses to the floor, not EqSelectivity.
	miss := p.Filter(scan, expr.Eq(expr.CI(0, value.KindInt), expr.Int(99)))
	if got := miss.Rows(); got > 2 {
		t.Fatalf("k=99 estimate %v, want ~1 (outside [min, max])", got)
	}

	// Without statistics the classic constants still apply.
	noStats := p.Filter(p.Scan(sampleRel(1000), "r"), expr.Eq(expr.CI(0, value.KindInt), expr.Int(3)))
	if got := noStats.Rows(); got != 1000*EqSelectivity {
		t.Fatalf("stat-less estimate %v, want %v", got, 1000*EqSelectivity)
	}
}

// TestStatsFedJoinEstimate: equi-join cardinality comes from
// 1/max(distinct) when both sides are analyzed.
func TestStatsFedJoinEstimate(t *testing.T) {
	p := NewPlanner(DefaultFlags())
	l, r := analyzedScan(p, 1000, "l"), analyzedScan(p, 1000, "r")
	j := p.Join(l, r, equiCond(2), exec.InnerJoin, false)
	want := 1000.0 * 1000.0 / 10.0 // 10 distinct keys on both sides
	if got := j.Rows(); math.Abs(got-want)/want > 0.2 {
		t.Fatalf("analyzed join estimate %v, want ~%v", got, want)
	}
	nj := p.Join(p.Scan(sampleRel(1000), "l"), p.Scan(sampleRel(1000), "r"), equiCond(2), exec.InnerJoin, false)
	if got := nj.Rows(); got == j.Rows() {
		t.Fatalf("stat-less join estimate should differ from the stats-fed one, both %v", got)
	}
}

// TestStatsFedAggEstimate: group counts come from distinct counts.
func TestStatsFedAggEstimate(t *testing.T) {
	p := NewPlanner(DefaultFlags())
	scan := analyzedScan(p, 1000, "r")
	agg, err := p.Aggregate(scan, []expr.Expr{expr.CI(0, value.KindInt)}, []string{"k"}, false,
		[]exec.AggSpec{{Func: exec.AggCountStar, Name: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := agg.Rows(); got != 10 {
		t.Fatalf("analyzed aggregate estimate %v, want exactly 10 groups", got)
	}
}

// TestStatsPropagation: filters and projections pass statistics through,
// so estimates stay stats-fed above them.
func TestStatsPropagation(t *testing.T) {
	p := NewPlanner(DefaultFlags())
	scan := analyzedScan(p, 1000, "r")
	proj := p.Project(scan, []string{"k"}, []expr.Expr{expr.CI(0, value.KindInt)})
	f := p.Filter(proj, expr.Eq(expr.CI(0, value.KindInt), expr.Int(3)))
	if got := f.Rows(); math.Abs(got-100) > 20 {
		t.Fatalf("estimate above projection %v, want ~100", got)
	}
	st := NodeStats(f)
	if st == nil || st.Col(0) == nil || st.Col(0).Distinct != 10 {
		t.Fatalf("stats did not propagate through project+filter: %+v", st)
	}
}

// TestExplainAnalyzeCounts executes a plan under instrumentation and
// checks the rendered actual row counts.
func TestExplainAnalyzeCounts(t *testing.T) {
	p := NewPlanner(DefaultFlags())
	scan := analyzedScan(p, 1000, "r")
	f := p.Filter(scan, expr.Eq(expr.CI(0, value.KindInt), expr.Int(3)))
	text, rel, err := ExplainAnalyze(f, NewExecCtx())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 100 {
		t.Fatalf("result rows = %d, want 100", rel.Len())
	}
	for _, part := range []string{"(actual rows=100)", "(actual rows=1000)"} {
		if !strings.Contains(text, part) {
			t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", part, text)
		}
	}
}
