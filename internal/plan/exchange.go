package plan

import (
	"fmt"
	"hash/maphash"
	"math"
	"runtime"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/stats"
)

// Exchange cost model constants.
const (
	// ExchangeStartupCost is charged per worker goroutine: splitter and
	// merge channel setup, scheduling.
	ExchangeStartupCost = 100 * CPUTupleCost
	// ExchangeRowCost is charged per row crossing a partition boundary
	// (hash routing on the way in, batch copy on the way out).
	ExchangeRowCost = CPUOperatorCost
)

// ExchangeNode is the logical exchange operator: it hash-partitions each
// source across DOP streams, instantiates the Fragment subplan once per
// partition, and merges the fragments' output. Sources are co-partitioned
// with a shared hash seed, so fragment i sees exactly the rows whose keys
// hash to partition i in every source — the invariant that makes
// partitioned joins, aggregations and plane sweeps correct.
//
// A nil key list for a source means "partition by the entire tuple
// (values and valid time)", the scheme used for the aligner's group
// construction, whose plane sweep is independent per left tuple.
type ExchangeNode struct {
	Sources []Node
	Keys    [][]expr.Expr
	DOP     int
	// Fragment builds the per-partition subplan from one leaf per source.
	// It is called DOP+1 times: once with placeholder leaves for cost
	// estimation and EXPLAIN, then once per partition at build time.
	Fragment func(parts []Node) (Node, error)

	// RowHint, when set, overrides the output-cardinality estimate. The
	// generic template extrapolation (fragment rows x DOP) undercounts
	// joins — each fragment sees 1/DOP of BOTH inputs, so the product
	// shrinks by DOP² — and the rewrite helpers know the serial plan's
	// estimate, which is the right answer for a partitioned operator.
	RowHint float64

	template Node
	batch    int
	noCol    bool
}

// Exchange builds the node under the planner's DOP. It returns an error if
// the fragment cannot be constructed.
func (p *Planner) Exchange(sources []Node, keys [][]expr.Expr, fragment func(parts []Node) (Node, error)) (*ExchangeNode, error) {
	dop := p.Flags.DOP
	if dop < 1 {
		dop = 1
	}
	if len(keys) != len(sources) {
		return nil, fmt.Errorf("plan: exchange has %d key lists for %d sources", len(keys), len(sources))
	}
	leaves := make([]Node, len(sources))
	for i, s := range sources {
		leaves[i] = &partitionLeaf{src: s, keys: keys[i], dop: dop}
	}
	tmpl, err := fragment(leaves)
	if err != nil {
		return nil, err
	}
	return &ExchangeNode{
		Sources:  sources,
		Keys:     keys,
		DOP:      dop,
		Fragment: fragment,
		template: tmpl,
		batch:    p.Flags.BatchSize,
		noCol:    p.Flags.DisableColumnar,
	}, nil
}

func (e *ExchangeNode) Schema() schema.Schema { return e.template.Schema() }

// Children exposes the template fragment: EXPLAIN renders the exchange,
// the per-partition subplan below it, and the partitioned sources at the
// leaves.
func (e *ExchangeNode) Children() []Node { return []Node{e.template} }

// Rows: the serial plan's estimate when the rewrite helper provided it
// (partitioning does not change an operator's total output), otherwise
// every fragment produces roughly 1/DOP of the total.
func (e *ExchangeNode) Rows() float64 {
	if e.RowHint > 0 {
		return e.RowHint
	}
	return e.template.Rows() * float64(e.DOP)
}

// Cost: the fragments run concurrently, so the plan pays one fragment's
// cost (which already includes its 1/DOP share of the source cost) scaled
// by how much real concurrency the machine offers — on a single-core box
// DOP workers time-slice and the whole serial work is paid — plus the
// exchange overhead: rows crossing partition channels and per-worker
// startup. This is what makes the planner keep serial plans for small
// inputs (and any input on one core) even when DOP > 1.
func (e *ExchangeNode) Cost() float64 {
	var srcRows float64
	for _, s := range e.Sources {
		srcRows += s.Rows()
	}
	cores := float64(runtime.GOMAXPROCS(0))
	slowdown := float64(e.DOP) / math.Min(float64(e.DOP), cores)
	return e.template.Cost()*slowdown +
		(srcRows+e.Rows())*ExchangeRowCost +
		float64(e.DOP)*ExchangeStartupCost
}

func (e *ExchangeNode) Label() string {
	return fmt.Sprintf("Exchange (hash partition, dop=%d, %d sources)", e.DOP, len(e.Sources))
}

func (e *ExchangeNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	// One shared seed per exchange: co-partitioned sources must agree on
	// where a key lands.
	seed := maphash.MakeSeed()
	var created []interface{ Close() error }
	cleanup := func() {
		for _, it := range created {
			it.Close()
		}
	}
	// Columnar routing is all-or-nothing per exchange: the row and
	// columnar splitters hash with different schemes (value.Hash vs
	// maphash over key encodings), so co-partitioned sources must not
	// mix them. Every source and key list must go columnar, or none do.
	colParts, colOK, err := e.buildColSplitters(ctx, seed)
	if err != nil {
		return nil, err
	}
	var rowParts [][]exec.Iterator
	if colOK {
		for _, ps := range colParts {
			for _, p := range ps {
				created = append(created, p)
			}
		}
	} else {
		rowParts = make([][]exec.Iterator, len(e.Sources))
		for si, src := range e.Sources {
			it, err := src.Build(ctx)
			if err != nil {
				cleanup()
				return nil, err
			}
			sp, err := exec.NewSplitter(it, ctx.bindAll(e.Keys[si]), e.DOP, seed)
			if err != nil {
				cleanup()
				return nil, err
			}
			if e.batch > 0 {
				sp.SetBatchSize(e.batch)
			}
			rowParts[si] = make([]exec.Iterator, e.DOP)
			for i := 0; i < e.DOP; i++ {
				rowParts[si][i] = sp.Partition(i)
				created = append(created, rowParts[si][i])
			}
		}
	}
	frags := make([]exec.Iterator, e.DOP)
	for i := 0; i < e.DOP; i++ {
		leaves := make([]Node, len(e.Sources))
		for si := range e.Sources {
			leaf := &builtLeaf{
				sch:  e.Sources[si].Schema(),
				rows: e.Sources[si].Rows() / float64(e.DOP),
			}
			if colOK {
				leaf.colIt = colParts[si][i]
			} else {
				leaf.it = rowParts[si][i]
			}
			leaves[si] = leaf
		}
		fn, err := e.Fragment(leaves)
		if err != nil {
			cleanup()
			return nil, err
		}
		frags[i], err = fn.Build(ctx)
		if err != nil {
			cleanup()
			return nil, err
		}
	}
	ex, err := exec.NewExchange(frags)
	if err != nil {
		return nil, err
	}
	return ctx.instrument(e, ex), nil
}

// buildColSplitters attempts to route every source columnar: rows go
// from the source vectors straight into per-partition batches without
// ever being materialized as tuples. ok=false (with nothing consumed)
// when the flag, a key expression or any source keeps the exchange on
// the row path.
func (e *ExchangeNode) buildColSplitters(ctx *ExecCtx, seed maphash.Seed) ([][]exec.ColIterator, bool, error) {
	if colDisabled(e.noCol, ctx) {
		return nil, false, nil
	}
	for si := range e.Sources {
		for _, k := range ctx.bindAll(e.Keys[si]) {
			if !exec.ColOperandOK(k) {
				return nil, false, nil
			}
		}
	}
	ins := make([]exec.ColIterator, len(e.Sources))
	for si, src := range e.Sources {
		in, ok, err := buildColNode(src, ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		ins[si] = in
	}
	parts := make([][]exec.ColIterator, len(e.Sources))
	for si, in := range ins {
		sp, ok, err := exec.NewColSplitter(in, ctx.bindAll(e.Keys[si]), e.DOP, seed)
		if err != nil || !ok {
			return nil, false, err // keys pre-vetted; refusal is unreachable
		}
		if e.batch > 0 {
			sp.SetBatchSize(e.batch)
		}
		parts[si] = make([]exec.ColIterator, e.DOP)
		for i := range parts[si] {
			parts[si][i] = sp.Partition(i)
		}
	}
	return parts, true, nil
}

// partitionLeaf stands for one partition of a source inside the template
// fragment: 1/DOP of the source's rows and cost.
type partitionLeaf struct {
	src  Node
	keys []expr.Expr
	dop  int
}

func (l *partitionLeaf) Schema() schema.Schema { return l.src.Schema() }
func (l *partitionLeaf) Children() []Node      { return []Node{l.src} }
func (l *partitionLeaf) Rows() float64         { return l.src.Rows() / float64(l.dop) }
func (l *partitionLeaf) Cost() float64 {
	// Routing cost is charged once, in ExchangeNode.Cost — not here, or
	// source rows would be billed twice.
	return l.src.Cost() / float64(l.dop)
}
func (l *partitionLeaf) Build(*ExecCtx) (exec.Iterator, error) {
	return nil, fmt.Errorf("plan: partition leaf is a template node and cannot be built")
}
func (l *partitionLeaf) Label() string {
	by := "tuple"
	if l.keys != nil {
		by = fmt.Sprintf("%d keys", len(l.keys))
	}
	return fmt.Sprintf("Partition (hash by %s, 1/%d)", by, l.dop)
}

// builtLeaf hands an already-built partition stream (row or columnar) to
// a fragment. A columnar stream is served natively through BuildCol (see
// columnar.go) and materialized on demand when the consuming fragment
// operator needs rows.
type builtLeaf struct {
	it    exec.Iterator
	colIt exec.ColIterator
	sch   schema.Schema
	rows  float64
}

func (l *builtLeaf) Schema() schema.Schema { return l.sch }
func (l *builtLeaf) Children() []Node      { return nil }
func (l *builtLeaf) Rows() float64         { return l.rows }
func (l *builtLeaf) Cost() float64         { return l.rows * CPUTupleCost }
func (l *builtLeaf) Build(*ExecCtx) (exec.Iterator, error) {
	if l.colIt != nil {
		it := exec.NewMaterialize(l.colIt)
		l.colIt = nil
		return it, nil
	}
	if l.it == nil {
		return nil, fmt.Errorf("plan: partition iterator already consumed")
	}
	it := l.it
	l.it = nil
	return it, nil
}
func (l *builtLeaf) Label() string { return "PartitionSource" }

// SharedNode materializes its input once per execution and hands every
// other Build in the same execution a fresh scan over the cached result.
// It serves two roles: the broadcast side of a parallel fragment (DOP
// fragments each scan the same materialized relation instead of
// re-executing the subtree) and WITH-clause bodies referenced from several
// places in a statement. The memo lives on the ExecCtx, not the node, so a
// cached plan re-executed with different parameters (or concurrently)
// re-materializes per execution instead of serving stale rows.
type SharedNode struct {
	Input Node

	batch int
	noCol bool
}

// Shared wraps input for reuse across exchange fragments.
func (p *Planner) Shared(input Node) *SharedNode {
	return &SharedNode{Input: input, batch: p.Flags.BatchSize, noCol: p.Flags.DisableColumnar}
}

func (s *SharedNode) Schema() schema.Schema { return s.Input.Schema() }
func (s *SharedNode) Children() []Node      { return []Node{s.Input} }
func (s *SharedNode) Rows() float64         { return s.Input.Rows() }

// Cost charges the input once plus a scan per reuse; without knowing the
// reuse count here, it reports the single-execution cost (the exchange's
// template accounts for one fragment).
func (s *SharedNode) Cost() float64 {
	return s.Input.Cost() + s.Input.Rows()*CPUTupleCost
}

// Stats passes the input's statistics through (materialization does not
// change the distribution).
func (s *SharedNode) Stats() *stats.Table { return NodeStats(s.Input) }

func (s *SharedNode) Build(ctx *ExecCtx) (exec.Iterator, error) {
	rel, err := ctx.sharedGet(s, func() (*relation.Relation, error) {
		it, err := s.Input.Build(ctx)
		if err != nil {
			return nil, err
		}
		return exec.Collect(it)
	})
	if err != nil {
		return nil, err
	}
	return ctx.instrument(s, applyBatch(exec.NewScan(rel), s.batch)), nil
}

func (s *SharedNode) Label() string { return "Materialize (shared)" }

// MaxDOP reports the widest exchange in a plan: the maximum number of
// worker goroutines one execution can occupy (1 for fully serial plans,
// even when planned under DOP > 1 — the cost model may have kept every
// operator serial). The server's admission gate charges this weight per
// query, so serial plans cost 1 unit regardless of the session's DOP
// setting.
func MaxDOP(n Node) int {
	max := 1
	var walk func(Node)
	walk = func(n Node) {
		if e, ok := n.(*ExchangeNode); ok && e.DOP > max {
			max = e.DOP
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return max
}

// ShouldParallelize reports whether the planner should attempt an exchange
// rewrite for an input of the given estimated cardinality. force means the
// configuration demands the rewrite unconditionally (Flags.ForceParallel),
// which also skips the cost comparison; otherwise the attempt requires
// DOP > 1, a machine with real concurrency to offer, and rows clearing the
// gate — and the rewrite still has to win on estimated cost.
func (p *Planner) ShouldParallelize(rows float64) (attempt, force bool) {
	if p.Flags.DOP <= 1 {
		return false, false
	}
	if p.Flags.ForceParallel {
		return true, true
	}
	if runtime.GOMAXPROCS(0) < 2 {
		// Workers would only time-slice one core: routing and channel
		// overhead cannot be bought back.
		return false, false
	}
	gate := p.Flags.ParallelMinRows
	if gate <= 0 {
		gate = DefaultParallelMinRows
	}
	return rows >= gate, false
}

// ParJoin plans a join and, when the planner's DOP and the estimated
// cardinalities justify it, wraps it in a hash-partitioned exchange: both
// inputs are co-partitioned on the equi-join keys and DOP independent
// joins run in parallel. The decision is cost-based: the exchange plan is
// kept only when its estimated cost beats the serial join's.
func (p *Planner) ParJoin(l, r Node, cond expr.Expr, typ exec.JoinType, matchT bool) Node {
	j := p.Join(l, r, cond, typ, matchT)
	if len(j.keys) == 0 {
		return j
	}
	attempt, force := p.ShouldParallelize(l.Rows() + r.Rows())
	if !attempt {
		return j
	}
	lk := make([]expr.Expr, len(j.keys))
	rk := make([]expr.Expr, len(j.keys))
	for i, k := range j.keys {
		lk[i] = k.Left
		rk[i] = k.Right
	}
	ex, err := p.Exchange([]Node{l, r}, [][]expr.Expr{lk, rk}, func(parts []Node) (Node, error) {
		return p.Join(parts[0], parts[1], cond, typ, matchT), nil
	})
	return PickParallel(j, ex, err, force)
}

// PickParallel is the shared tail of every exchange rewrite: keep the
// exchange plan when it was built successfully and either the rewrite is
// forced or its estimated cost beats the serial plan's; otherwise fall
// back to the serial plan.
func PickParallel(serial Node, ex *ExchangeNode, err error, force bool) Node {
	if err != nil || ex == nil {
		return serial
	}
	ex.RowHint = serial.Rows()
	if !force && ex.Cost() >= serial.Cost() {
		return serial
	}
	return ex
}

// ParAggregate plans an aggregation, parallelized over an exchange when
// there are grouping keys to partition on (groups never span partitions,
// so no re-aggregation pass is needed).
func (p *Planner) ParAggregate(input Node, groupBy []expr.Expr, names []string, groupByT bool, aggs []exec.AggSpec) (Node, error) {
	agg, err := p.Aggregate(input, groupBy, names, groupByT, aggs)
	if err != nil {
		return nil, err
	}
	if len(groupBy) == 0 && !groupByT {
		return agg, nil
	}
	attempt, force := p.ShouldParallelize(input.Rows())
	if !attempt {
		return agg, nil
	}
	keys := make([]expr.Expr, 0, len(groupBy)+1)
	keys = append(keys, groupBy...)
	if groupByT {
		keys = append(keys, expr.TPeriod{})
	}
	ex, err := p.Exchange([]Node{input}, [][]expr.Expr{keys}, func(parts []Node) (Node, error) {
		return p.Aggregate(parts[0], groupBy, names, groupByT, aggs)
	})
	return PickParallel(agg, ex, err, force), nil
}
