package plan

import (
	"strings"
	"testing"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/relation"
	"talign/internal/value"
)

func sampleRel(n int) *relation.Relation {
	b := relation.NewBuilder("k int", "v int")
	for i := 0; i < n; i++ {
		b.Row(int64(i), int64(i)+1, i%10, i)
	}
	return b.MustBuild()
}

func equiCond(split int) expr.Expr {
	return expr.Eq(expr.CI(0, value.KindInt), expr.CI(split, value.KindInt))
}

// TestPaperCostEstimates checks the Sec. 6.2/6.3 formulas: alignment
// estimates 3× input rows, normalization 2×, with the stated CPU costs.
func TestPaperCostEstimates(t *testing.T) {
	p := NewPlanner(DefaultFlags())
	scan := p.Scan(sampleRel(100), "r")
	adjA := p.Adjust(scan, exec.ModeAlign, 2, expr.TStart{}, expr.TEnd{})
	if got := adjA.Rows(); got != 300 {
		t.Fatalf("align rows: got %v want 300 (= 3·input)", got)
	}
	wantCostA := scan.Cost() + 2*CPUOperatorCost*100*2
	if got := adjA.Cost(); got != wantCostA {
		t.Fatalf("align cost: got %v want %v", got, wantCostA)
	}
	adjN := p.Adjust(scan, exec.ModeNormalize, 2, expr.TStart{}, nil)
	if got := adjN.Rows(); got != 200 {
		t.Fatalf("normalize rows: got %v want 200 (= 2·input)", got)
	}
	wantCostN := scan.Cost() + CPUOperatorCost*100*2
	if got := adjN.Cost(); got != wantCostN {
		t.Fatalf("normalize cost: got %v want %v", got, wantCostN)
	}
}

// TestJoinMethodSelection mirrors the Sec. 7.2 experiment mechanics: with
// everything enabled an equi join picks hash or merge; disabling paths
// steers the choice, and with only nestloop left it falls back to it.
func TestJoinMethodSelection(t *testing.T) {
	rel := sampleRel(1000)
	mk := func(flags Flags) JoinMethod {
		p := NewPlanner(flags)
		j := p.Join(p.Scan(rel, "r"), p.Scan(rel, "s"), equiCond(2), exec.InnerJoin, false)
		return j.Method
	}
	all := DefaultFlags()
	if m := mk(all); m == MethodNestLoop {
		t.Fatalf("equi join with all paths enabled must not pick nestloop, got %s", m)
	}
	noMerge := all
	noMerge.EnableMergeJoin = false
	if m := mk(noMerge); m != MethodHash {
		t.Fatalf("with merge disabled want hash, got %s", m)
	}
	nlOnly := Flags{EnableNestLoop: true}
	if m := mk(nlOnly); m != MethodNestLoop {
		t.Fatalf("with only nestloop want nestloop, got %s", m)
	}
	// Non-equi conditions can only nest-loop.
	p := NewPlanner(all)
	j := p.Join(p.Scan(rel, "r"), p.Scan(rel, "s"),
		expr.Lt(expr.CI(0, value.KindInt), expr.CI(2, value.KindInt)), exec.InnerJoin, false)
	if j.Method != MethodNestLoop {
		t.Fatalf("non-equi join must nestloop, got %s", j.Method)
	}
}

// TestMatchTAddsTimestampKey: with MatchT the adjusted timestamp becomes an
// equi key, so even θ=true joins can hash (the Table 2 joins after
// alignment).
func TestMatchTAddsTimestampKey(t *testing.T) {
	rel := sampleRel(1000)
	p := NewPlanner(DefaultFlags())
	j := p.Join(p.Scan(rel, "r"), p.Scan(rel, "s"), nil, exec.InnerJoin, true)
	if j.Method == MethodNestLoop {
		t.Fatalf("T-equality join should hash or merge, got %s", j.Method)
	}
}

// TestDisabledPathStillUsable: disabling every path must still produce a
// plan (disable costs, not hard removal).
func TestDisabledPathStillUsable(t *testing.T) {
	rel := sampleRel(10)
	p := NewPlanner(Flags{})
	j := p.Join(p.Scan(rel, "r"), p.Scan(rel, "s"), equiCond(2), exec.InnerJoin, false)
	out, err := Run(j)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Len() == 0 {
		t.Fatal("join produced nothing")
	}
}

// TestJoinMethodsProduceSameResult runs the same plan under each forced
// method and compares.
func TestJoinMethodsProduceSameResult(t *testing.T) {
	rel := sampleRel(50)
	var results []*relation.Relation
	for _, flags := range []Flags{
		{EnableNestLoop: true},
		{EnableHashJoin: true, EnableNestLoop: true},
		{EnableMergeJoin: true, EnableSort: true, EnableNestLoop: true},
	} {
		p := NewPlanner(flags)
		j := p.Join(p.Scan(rel, "r"), p.Scan(rel, "s"), equiCond(2), exec.LeftOuterJoin, false)
		out, err := Run(j)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		results = append(results, out)
	}
	for i := 1; i < len(results); i++ {
		if !relation.SetEqual(results[0], results[i]) {
			t.Fatalf("method %d produced different result", i)
		}
	}
}

func TestExplainRendering(t *testing.T) {
	rel := sampleRel(10)
	p := NewPlanner(DefaultFlags())
	node := p.Absorb(p.Distinct(p.Filter(p.Scan(rel, "r"),
		expr.Gt(expr.CI(1, value.KindInt), expr.Int(3)))))
	text := Explain(node)
	for _, part := range []string{"Absorb", "Distinct", "Filter", "SeqScan r", "rows=", "cost="} {
		if !strings.Contains(text, part) {
			t.Fatalf("explain missing %q:\n%s", part, text)
		}
	}
}

// TestScanCostGrowsWithSize sanity-checks the scan model.
func TestScanCostGrowsWithSize(t *testing.T) {
	p := NewPlanner(DefaultFlags())
	small := p.Scan(sampleRel(10), "s")
	big := p.Scan(sampleRel(1000), "b")
	if small.Cost() >= big.Cost() {
		t.Fatal("scan cost must grow with relation size")
	}
	if small.Rows() != 10 || big.Rows() != 1000 {
		t.Fatal("scan row estimates must be exact")
	}
}

// TestAggregateAndSetOpNodes exercises the remaining node constructors.
func TestAggregateAndSetOpNodes(t *testing.T) {
	rel := sampleRel(20)
	p := NewPlanner(DefaultFlags())
	agg, err := p.Aggregate(p.Scan(rel, "r"),
		[]expr.Expr{expr.CI(0, value.KindInt)}, []string{"k"}, false,
		[]exec.AggSpec{{Func: exec.AggCountStar, Name: "c"}})
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	out, err := Run(agg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Len() != 10 {
		t.Fatalf("want 10 groups, got %d", out.Len())
	}
	set := p.SetOp(p.Scan(rel, "a"), p.Scan(rel, "b"), exec.IntersectOp)
	out2, err := Run(set)
	if err != nil {
		t.Fatalf("setop run: %v", err)
	}
	if out2.Len() != rel.Len() {
		t.Fatalf("self-intersection must keep all tuples, got %d", out2.Len())
	}
	if set.Rows() <= 0 || agg.Rows() <= 0 {
		t.Fatal("row estimates must be positive")
	}
}
