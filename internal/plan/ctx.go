package plan

import (
	"context"
	"fmt"
	"sync"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/relation"
	"talign/internal/value"
)

// ExecCtx carries one execution's runtime state down through Build: the
// bound parameter values for $N placeholders and the per-execution
// materialization memo for SharedNode subtrees. Plans themselves stay
// immutable — a prepared plan can be Built concurrently by many goroutines,
// each with its own ExecCtx — which is what makes the server's plan cache
// safe to share.
type ExecCtx struct {
	// Params are the values bound to $1..$N, in order.
	Params []value.Value

	// Ctx is the execution's context.Context. When it is cancellable,
	// every operator a Build produces gains a cooperative per-batch
	// cancellation check (exec.Guard), so cancelling the context — or
	// passing its deadline — promptly aborts the whole executor tree,
	// including the fragment operators driven by exchange worker
	// goroutines. A nil Ctx (or context.Background()) skips the check.
	Ctx context.Context

	// Budget, when set, is the execution's shared resource budget: every
	// guarded operator charges its output batches against it, and an
	// exhausted budget aborts the query with a structured
	// *exec.BudgetError (wire code "resource"). One Budget serves every
	// fragment of a parallel plan — the counters are atomic.
	Budget *exec.Budget

	// Instrument, when set, wraps every operator a Build produces (after
	// batch sizing) and is how EXPLAIN ANALYZE attaches its row counters.
	// It must be set before Build and be safe for the node identity it is
	// given; executions without instrumentation leave it nil and pay
	// nothing.
	Instrument func(n Node, it exec.Iterator) exec.Iterator

	// SegObserver, when set, receives each pruning-eligible scan's
	// segment outcome as it is built: how many segments will be read
	// and how many the zone maps pruned. EXPLAIN ANALYZE uses it to
	// annotate scan nodes; executions without it pay nothing.
	SegObserver func(n Node, scanned, pruned int)

	mu     sync.Mutex
	shared map[*SharedNode]*relation.Relation
}

// NewExecCtx returns an execution context binding params to $1..$N.
func NewExecCtx(params ...value.Value) *ExecCtx {
	return &ExecCtx{Params: params}
}

// NewExecCtxContext returns an execution context carrying ctx for
// cooperative cancellation and binding params to $1..$N.
func NewExecCtxContext(ctx context.Context, params ...value.Value) *ExecCtx {
	return &ExecCtx{Ctx: ctx, Params: params}
}

// bind substitutes this execution's parameter values into e. A nil context
// (or a context without parameters) returns e unchanged, so plans built
// outside the prepared-statement path pay nothing.
func (c *ExecCtx) bind(e expr.Expr) expr.Expr {
	if c == nil || len(c.Params) == 0 {
		return e
	}
	return expr.BindParams(e, c.Params)
}

// bindAll is bind over a slice; the input slice is never mutated (the plan
// owns it and stays immutable).
func (c *ExecCtx) bindAll(es []expr.Expr) []expr.Expr {
	if c == nil || len(c.Params) == 0 || len(es) == 0 {
		return es
	}
	out := make([]expr.Expr, len(es))
	for i, e := range es {
		out[i] = c.bind(e)
	}
	return out
}

// instrument finalizes a freshly built operator: it first arms the
// resilience boundary (exec.Guard: panic recovery at every operator
// call, the context's cooperative cancellation check, and resource
// budget charging — which is what makes cancellation and crash
// isolation reach even inside exchange fragments), then applies the
// Instrument hook. A nil ExecCtx passes the operator through untouched
// (direct Build calls in benchmarks pay nothing).
func (c *ExecCtx) instrument(n Node, it exec.Iterator) exec.Iterator {
	if c == nil {
		return it
	}
	it = exec.NewGuard(c.Ctx, c.Budget, it)
	if c.Instrument == nil {
		return it
	}
	return c.Instrument(n, it)
}

// sharedGet returns the memoized materialization of n for this execution,
// computing it with fn on first use. With a nil receiver there is no memo
// and fn runs every time.
func (c *ExecCtx) sharedGet(n *SharedNode, fn func() (*relation.Relation, error)) (*relation.Relation, error) {
	if c == nil {
		return fn()
	}
	c.mu.Lock()
	if rel, ok := c.shared[n]; ok {
		c.mu.Unlock()
		return rel, nil
	}
	c.mu.Unlock()
	rel, err := fn()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.shared == nil {
		c.shared = make(map[*SharedNode]*relation.Relation)
	}
	if prev, ok := c.shared[n]; ok {
		rel = prev // another builder of the same ctx won the race
	} else {
		c.shared[n] = rel
	}
	c.mu.Unlock()
	return rel, nil
}

// CheckParams verifies that params supplies every placeholder a plan
// needs: exactly nparams values (the statement's highest $N index).
func CheckParams(nparams int, params []value.Value) error {
	if len(params) != nparams {
		return fmt.Errorf("plan: statement wants %d parameter(s), got %d", nparams, len(params))
	}
	return nil
}
