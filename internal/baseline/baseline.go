// Package baseline implements the three competitor strategies evaluated in
// Sec. 7 for temporal outer joins:
//
//   - StrategyAlign: the paper's reduction rules (package core).
//   - StrategySQL: the standard-SQL formulation [Snodgrass 1999]: the join
//     part uses overlap predicates on explicit Ts/Te columns; the negative
//     part enumerates candidate gap boundaries (the tuple's own start/end
//     and the ends/starts of θ-matching partners) and keeps the pairs for
//     which NOT EXISTS any overlapping θ-matching partner.
//   - StrategySQLNormalize: the join part in standard SQL, the negative
//     part as a temporal difference of the argument and the (projected)
//     intermediate join result evaluated with temporal normalization
//     (Sec. 7.5).
//
// All three produce identical relations (the tests enforce this); the
// benchmarks compare their runtimes on the paper's datasets.
package baseline

import (
	"fmt"

	"talign/internal/core"
	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/value"
)

// Strategy selects the evaluation approach.
type Strategy uint8

// The strategies of Sec. 7.
const (
	StrategyAlign Strategy = iota
	StrategySQL
	StrategySQLNormalize
)

func (s Strategy) String() string {
	return [...]string{"align", "sql", "sql+normalize"}[s]
}

// O2Theta is the θ condition of query O2 (Sec. 7.4): Min ≤ DUR(r.T) ≤ Max,
// with r.T propagated into an attribute named "u" (extended snapshot
// reducibility) and the category bounds "min"/"max" on the s side.
func O2Theta() expr.Expr {
	return expr.Between{X: expr.Dur(expr.C("u")), Lo: expr.C("min"), Hi: expr.C("max")}
}

// O3Theta is the θ condition of query O3 (Sec. 7.4): r.pcn = s.pcn over the
// two Incumben halves (columns "pcn" and "pcn2").
func O3Theta() expr.Expr { return expr.Eq(expr.C("pcn"), expr.C("pcn2")) }

// LeftOuterJoin evaluates r ⟕T_θ s with the chosen strategy. theta is a
// condition over Concat(r, s) as in package core.
func LeftOuterJoin(strategy Strategy, r, s *relation.Relation, theta expr.Expr) (*relation.Relation, error) {
	switch strategy {
	case StrategyAlign:
		return core.Default().LeftOuterJoin(r, s, theta)
	case StrategySQL:
		return sqlOuter(r, s, theta, false)
	case StrategySQLNormalize:
		return sqlNormalizeOuter(r, s, theta, false)
	}
	return nil, fmt.Errorf("baseline: unknown strategy %d", strategy)
}

// FullOuterJoin evaluates r ⟗T_θ s with the chosen strategy.
func FullOuterJoin(strategy Strategy, r, s *relation.Relation, theta expr.Expr) (*relation.Relation, error) {
	switch strategy {
	case StrategyAlign:
		return core.Default().FullOuterJoin(r, s, theta)
	case StrategySQL:
		return sqlOuter(r, s, theta, true)
	case StrategySQLNormalize:
		return sqlNormalizeOuter(r, s, theta, true)
	}
	return nil, fmt.Errorf("baseline: unknown strategy %d", strategy)
}

// extTs appends the tuple's Ts and Te as ordinary int columns — the
// standard-SQL view of a temporal table, where timestamps are data.
func extTs(p *plan.Planner, n plan.Node) plan.Node {
	sch := n.Schema()
	names := make([]string, 0, sch.Len()+2)
	exprs := make([]expr.Expr, 0, sch.Len()+2)
	for i, at := range sch.Attrs {
		names = append(names, at.Name)
		exprs = append(exprs, expr.ColIdx{Idx: i, Typ: at.Type, Name: at.Name})
	}
	names = append(names, "__ts", "__te")
	exprs = append(exprs, expr.TStart{}, expr.TEnd{})
	return p.Project(n, names, exprs)
}

// shiftTheta moves θ's s-side references right by delta (both sides grew
// by the explicit timestamp columns).
func shiftTheta(theta expr.Expr, rl, delta int) expr.Expr {
	if theta == nil {
		return nil
	}
	return expr.Remap(theta, func(i int) int {
		if i >= rl {
			return i + delta
		}
		return i
	})
}

func swapThetaWidths(theta expr.Expr, rl, sl int) expr.Expr {
	if theta == nil {
		return nil
	}
	return expr.Remap(theta, func(i int) int {
		if i < rl {
			return i + sl
		}
		return i - rl
	})
}

// positivePart builds the overlap join: one result row per θ-matching,
// overlapping pair, timestamped with the intersection
// [greatest(r.Ts,s.Ts), least(r.Te,s.Te)).
func positivePart(p *plan.Planner, r, s plan.Node, theta expr.Expr) plan.Node {
	rl, sl := r.Schema().Len(), s.Schema().Len()
	rE, sE := extTs(p, r), extTs(p, s)
	// Join row layout: r.cols, __ts(rl), __te(rl+1), s.cols(rl+2..),
	// __ts(rl+2+sl), __te(rl+3+sl).
	rts, rte := rl, rl+1
	sts, ste := rl+2+sl, rl+3+sl
	cond := expr.And(
		expr.Lt(ci(rts), ci(ste)),
		expr.Lt(ci(sts), ci(rte)),
	)
	if t := shiftTheta(theta, rl, 2); t != nil {
		cond = expr.And(t, cond)
	}
	join := p.Join(rE, sE, cond, exec.InnerJoin, false)
	// Output: original columns, valid time = the intersection.
	names := make([]string, 0, rl+sl)
	exprs := make([]expr.Expr, 0, rl+sl)
	for i, at := range r.Schema().Attrs {
		names = append(names, at.Name)
		exprs = append(exprs, expr.ColIdx{Idx: i, Typ: at.Type, Name: at.Name})
	}
	for i, at := range s.Schema().Attrs {
		names = append(names, at.Name)
		exprs = append(exprs, expr.ColIdx{Idx: rl + 2 + i, Typ: at.Type, Name: at.Name})
	}
	period := expr.Call("PERIOD",
		expr.Call("GREATEST", ci(rts), ci(sts)),
		expr.Call("LEAST", ci(rte), ci(ste)))
	return p.ProjectT(join, names, exprs, period)
}

func ci(i int) expr.Expr { return expr.CI(i, value.KindInt) }

// gapsPart builds the standard-SQL negative part for r against s: the
// maximal sub-intervals of each r tuple not covered by any θ-matching s
// tuple, via candidate boundary pairs filtered with NOT EXISTS.
// Output schema: r's columns; valid time = the gap.
func gapsPart(p *plan.Planner, r, s plan.Node, theta expr.Expr) plan.Node {
	rl, sl := r.Schema().Len(), s.Schema().Len()
	rE, sE := extTs(p, r), extTs(p, s)
	rts, rte := rl, rl+1

	// Candidate starts: (r.cols, __ts, __te, cs).
	rCols := func(n plan.Node) ([]string, []expr.Expr) {
		names := make([]string, 0, rl+3)
		exprs := make([]expr.Expr, 0, rl+3)
		for i, at := range r.Schema().Attrs {
			names = append(names, at.Name)
			exprs = append(exprs, expr.ColIdx{Idx: i, Typ: at.Type, Name: at.Name})
		}
		names = append(names, "__ts", "__te")
		exprs = append(exprs, ci(rts), ci(rte))
		return names, exprs
	}

	candidate := func(ownPoint expr.Expr, partnerPointIdx int, name string) plan.Node {
		// Own boundary: every r tuple contributes it.
		namesA, exprsA := rCols(rE)
		a := p.Project(rE, append(namesA, name), append(exprsA, ownPoint))
		// Partner boundaries strictly inside r's interval, θ-matching.
		// Join layout: r.cols, __ts, __te, s.cols, __ts, __te.
		pIdx := rl + 2 + partnerPointIdx
		cond := expr.And(
			expr.Lt(ci(rts), ci(pIdx)),
			expr.Lt(ci(pIdx), ci(rte)),
		)
		if t := shiftTheta(theta, rl, 2); t != nil {
			cond = expr.And(t, cond)
		}
		join := p.Join(rE, sE, cond, exec.InnerJoin, false)
		namesB, exprsB := rCols(join)
		b := p.Project(join, append(namesB, name), append(exprsB, ci(pIdx)))
		return p.SetOp(a, b, exec.UnionOp)
	}
	starts := candidate(ci(rts), sl+1, "__cs") // own Ts, or a matching s's Te
	ends := candidate(ci(rte), sl, "__ce")     // own Te, or a matching s's Ts

	// Pair candidate starts and ends of the same r tuple with cs < ce.
	// starts layout: r.cols, __ts(rl), __te(rl+1), __cs(rl+2); ends adds
	// rl+3 columns on the right.
	eq := make([]expr.Expr, 0, rl+3)
	w := rl + 3
	for i := range r.Schema().Attrs {
		eq = append(eq, expr.Eq(expr.CI(i, r.Schema().Attrs[i].Type), expr.CI(w+i, r.Schema().Attrs[i].Type)))
	}
	eq = append(eq,
		expr.Eq(ci(rts), ci(w+rl)),
		expr.Eq(ci(rte), ci(w+rl+1)),
		expr.Lt(ci(rl+2), ci(w+rl+2)), // cs < ce
	)
	pairsJoin := p.Join(starts, ends, expr.And(eq...), exec.InnerJoin, false)
	namesP, exprsP := rCols(pairsJoin)
	pairs := p.Project(pairsJoin,
		append(namesP, "__cs", "__ce"),
		append(exprsP, ci(rl+2), ci(w+rl+2)))

	// NOT EXISTS: no θ-matching s overlaps the candidate gap.
	// pairs layout: r.cols, __ts, __te, __cs(rl+2), __ce(rl+3); sE appends
	// s.cols(rl+4..), __ts(rl+4+sl), __te(rl+5+sl).
	cs, ce := rl+2, rl+3
	sts2, ste2 := rl+4+sl, rl+5+sl
	notExists := expr.And(
		expr.Lt(ci(sts2), ci(ce)),
		expr.Lt(ci(cs), ci(ste2)),
	)
	if t := shiftTheta(theta, rl, 4); t != nil {
		notExists = expr.And(t, notExists)
	}
	anti := p.Join(pairs, sE, notExists, exec.AntiJoin, false)

	// Output the gap tuples.
	names := make([]string, 0, rl)
	exprs := make([]expr.Expr, 0, rl)
	for i, at := range r.Schema().Attrs {
		names = append(names, at.Name)
		exprs = append(exprs, expr.ColIdx{Idx: i, Typ: at.Type, Name: at.Name})
	}
	period := expr.Call("PERIOD", ci(cs), ci(ce))
	return p.Distinct(p.ProjectT(anti, names, exprs, period))
}

// padNulls extends a node's rows with ω columns on the given side.
func padNulls(p *plan.Planner, n plan.Node, left, right int) plan.Node {
	names := make([]string, 0, left+n.Schema().Len()+right)
	exprs := make([]expr.Expr, 0, left+n.Schema().Len()+right)
	for i := 0; i < left; i++ {
		names = append(names, fmt.Sprintf("__l%d", i))
		exprs = append(exprs, expr.Null)
	}
	for i, at := range n.Schema().Attrs {
		names = append(names, at.Name)
		exprs = append(exprs, expr.ColIdx{Idx: i, Typ: at.Type, Name: at.Name})
	}
	for i := 0; i < right; i++ {
		names = append(names, fmt.Sprintf("__r%d", i))
		exprs = append(exprs, expr.Null)
	}
	return p.Project(n, names, exprs)
}

// sqlOuter is the standard-SQL strategy: positive part ∪ padded gaps.
func sqlOuter(r, s *relation.Relation, theta expr.Expr, full bool) (*relation.Relation, error) {
	bound, err := core.BindTheta(r, s, theta)
	if err != nil {
		return nil, err
	}
	p := plan.NewPlanner(plan.DefaultFlags())
	rn, sn := p.Scan(r, "r"), p.Scan(s, "s")
	pos := positivePart(p, rn, sn, bound)
	leftGaps := padNulls(p, gapsPart(p, rn, sn, bound), 0, s.Schema.Len())
	out := p.SetOp(pos, leftGaps, exec.UnionOp)
	if full {
		swapped := swapThetaWidths(bound, r.Schema.Len(), s.Schema.Len())
		rightGaps := padNulls(p, gapsPart(p, sn, rn, swapped), r.Schema.Len(), 0)
		out = p.SetOp(out, rightGaps, exec.UnionOp)
	}
	return plan.Run(out)
}

// sqlNormalizeOuter computes the join part in SQL and the negative part as
// a temporal difference evaluated with normalization: the argument is
// normalized against the projected intermediate join result, the join
// result against itself plus the argument, and the difference of the two
// adjusted relations yields the gaps (Sec. 7.5).
func sqlNormalizeOuter(r, s *relation.Relation, theta expr.Expr, full bool) (*relation.Relation, error) {
	bound, err := core.BindTheta(r, s, theta)
	if err != nil {
		return nil, err
	}
	p := plan.NewPlanner(plan.DefaultFlags())
	a := core.New(plan.DefaultFlags())
	rn, sn := p.Scan(r, "r"), p.Scan(s, "s")
	pos, err := plan.Run(positivePart(p, rn, sn, bound))
	if err != nil {
		return nil, err
	}
	leftGaps, err := normalizedGaps(a, r, pos, 0)
	if err != nil {
		return nil, err
	}
	out := p.SetOp(p.Scan(pos, "pos"),
		padNulls(p, p.Scan(leftGaps, "gaps_r"), 0, s.Schema.Len()), exec.UnionOp)
	if full {
		rightGaps, err := normalizedGaps(a, s, pos, r.Schema.Len())
		if err != nil {
			return nil, err
		}
		out = p.SetOp(out, padNulls(p, p.Scan(rightGaps, "gaps_s"), r.Schema.Len(), 0), exec.UnionOp)
	}
	return plan.Run(out)
}

// normalizedGaps computes the temporal difference side −T π_side(join)
// with the normalization primitive. offset selects the side's columns in
// the join result.
func normalizedGaps(a *core.Algebra, side *relation.Relation, join *relation.Relation, offset int) (*relation.Relation, error) {
	p := a.Planner()
	// π_side(join): the covered portions of the side relation (with
	// duplicates across matching partners — the expensive intermediate).
	cols := make([]int, side.Schema.Len())
	names := make([]string, side.Schema.Len())
	exprs := make([]expr.Expr, side.Schema.Len())
	for i := range cols {
		at := join.Schema.Attrs[offset+i]
		cols[i] = offset + i
		names[i] = side.Schema.Attrs[i].Name
		exprs[i] = expr.ColIdx{Idx: offset + i, Typ: at.Type, Name: at.Name}
	}
	covered, err := plan.Run(p.Project(p.Scan(join, "join"), names, exprs))
	if err != nil {
		return nil, err
	}
	all := make([]int, side.Schema.Len())
	for i := range all {
		all[i] = i
	}
	// N_A(side; covered): split the argument at the join result's
	// boundaries...
	nSide := a.NormalizePlan(p.Scan(side, "side"), p.Scan(covered, "covered"), all)
	// ...and N_A(covered; covered ∪ side): the join result is not
	// duplicate free, so its pieces must additionally be split at their
	// own boundaries to line up with the argument's pieces.
	both := p.SetOp(p.Scan(covered, "covered"), p.Scan(side, "side"), exec.UnionOp)
	nCovered := a.NormalizePlan(p.Scan(covered, "covered"), both, all)
	return plan.Run(p.SetOp(nSide, nCovered, exec.ExceptOp))
}
