package baseline

import (
	"math/rand"
	"testing"

	"talign/internal/core"
	"talign/internal/dataset"
	"talign/internal/expr"
	"talign/internal/oracle"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/value"
)

// All three strategies must compute the same temporal outer join; the
// oracle provides the definitional ground truth.

func strategies() []Strategy {
	return []Strategy{StrategyAlign, StrategySQL, StrategySQLNormalize}
}

func attrsR() []schema.Attr {
	return []schema.Attr{{Name: "x", Type: value.KindString}, {Name: "v", Type: value.KindInt}}
}

func attrsS() []schema.Attr {
	return []schema.Attr{{Name: "y", Type: value.KindString}, {Name: "w", Type: value.KindInt}}
}

func TestStrategiesAgreeLeftOuterEqui(t *testing.T) {
	theta := expr.Eq(expr.C("x"), expr.C("y"))
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 60; round++ {
		r := randrel.Generate(rng, randrel.DefaultConfig(attrsR()...))
		s := randrel.Generate(rng, randrel.DefaultConfig(attrsS()...))
		want, err := oracle.LeftOuterJoin(r, s, theta)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		for _, st := range strategies() {
			got, err := LeftOuterJoin(st, r, s, theta)
			if err != nil {
				t.Fatalf("%s round %d: %v", st, round, err)
			}
			if !relation.SetEqual(got, want) {
				onlyGot, onlyWant := relation.Diff(got, want)
				t.Fatalf("%s round %d disagrees with oracle\nr:\n%s\ns:\n%s\nonly %s: %v\nonly oracle: %v",
					st, round, r, s, st, onlyGot, onlyWant)
			}
		}
	}
}

func TestStrategiesAgreeLeftOuterTrue(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for round := 0; round < 40; round++ {
		r := randrel.Generate(rng, randrel.DefaultConfig(attrsR()...))
		s := randrel.Generate(rng, randrel.DefaultConfig(attrsS()...))
		want, err := oracle.LeftOuterJoin(r, s, nil)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		for _, st := range strategies() {
			got, err := LeftOuterJoin(st, r, s, nil)
			if err != nil {
				t.Fatalf("%s round %d: %v", st, round, err)
			}
			if !relation.SetEqual(got, want) {
				onlyGot, onlyWant := relation.Diff(got, want)
				t.Fatalf("%s round %d disagrees (θ=true)\nr:\n%s\ns:\n%s\nonly %s: %v\nonly oracle: %v",
					st, round, r, s, st, onlyGot, onlyWant)
			}
		}
	}
}

func TestStrategiesAgreeFullOuter(t *testing.T) {
	theta := expr.Eq(expr.C("x"), expr.C("y"))
	rng := rand.New(rand.NewSource(44))
	for round := 0; round < 40; round++ {
		r := randrel.Generate(rng, randrel.DefaultConfig(attrsR()...))
		s := randrel.Generate(rng, randrel.DefaultConfig(attrsS()...))
		want, err := oracle.FullOuterJoin(r, s, theta)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		for _, st := range strategies() {
			got, err := FullOuterJoin(st, r, s, theta)
			if err != nil {
				t.Fatalf("%s round %d: %v", st, round, err)
			}
			if !relation.SetEqual(got, want) {
				onlyGot, onlyWant := relation.Diff(got, want)
				t.Fatalf("%s round %d disagrees (full outer)\nr:\n%s\ns:\n%s\nonly %s: %v\nonly oracle: %v",
					st, round, r, s, st, onlyGot, onlyWant)
			}
		}
	}
}

// TestO1OnPaperDatasets runs O1 = r ⟕T_true s on small instances of the
// synthetic datasets and cross-checks the strategies.
func TestO1OnPaperDatasets(t *testing.T) {
	for _, mk := range []struct {
		name string
		gen  func(n int, seed int64) (*relation.Relation, *relation.Relation)
	}{
		{"Ddisj", dataset.Ddisj},
		{"Deq", dataset.Deq},
	} {
		t.Run(mk.name, func(t *testing.T) {
			r, s := mk.gen(30, 7)
			want, err := LeftOuterJoin(StrategyAlign, r, s, nil)
			if err != nil {
				t.Fatalf("align: %v", err)
			}
			for _, st := range []Strategy{StrategySQL, StrategySQLNormalize} {
				got, err := LeftOuterJoin(st, r, s, nil)
				if err != nil {
					t.Fatalf("%s: %v", st, err)
				}
				if !relation.SetEqual(got, want) {
					onlyGot, onlyWant := relation.Diff(got, want)
					t.Fatalf("%s disagrees with align on %s\nonly %s: %v\nonly align: %v",
						st, mk.name, st, onlyGot, onlyWant)
				}
			}
		})
	}
}

// TestO2OnDrand runs O2 = r ⟕T_{Min≤DUR(r.T)≤Max} s: the ESR query needs
// timestamp propagation.
func TestO2OnDrand(t *testing.T) {
	r0, s := dataset.Drand(25, 9)
	r := core.MustExtend(r0, "u")
	theta := O2Theta()
	want, err := LeftOuterJoin(StrategyAlign, r, s, theta)
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	spec, err := oracle.LeftOuterJoin(r, s, theta)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if !relation.SetEqual(want, spec) {
		t.Fatalf("align disagrees with oracle on O2")
	}
	for _, st := range []Strategy{StrategySQL, StrategySQLNormalize} {
		got, err := LeftOuterJoin(st, r, s, theta)
		if err != nil {
			t.Fatalf("%s: %v", st, err)
		}
		if !relation.SetEqual(got, want) {
			onlyGot, onlyWant := relation.Diff(got, want)
			t.Fatalf("%s disagrees on O2\nonly %s: %v\nonly align: %v", st, st, onlyGot, onlyWant)
		}
	}
}

// TestO3OnIncumben runs O3 = r ⟗T_{r.pcn=s.pcn} s on a small synthetic
// Incumben sample.
func TestO3OnIncumben(t *testing.T) {
	inc := dataset.Incumben(dataset.IncumbenConfig{Rows: 60, Seed: 11})
	r, s := dataset.SplitHalves(inc, []string{"ssn", "pcn"}, []string{"ssn2", "pcn2"})
	theta := O3Theta()
	want, err := FullOuterJoin(StrategyAlign, r, s, theta)
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	spec, err := oracle.FullOuterJoin(r, s, theta)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if !relation.SetEqual(want, spec) {
		t.Fatalf("align disagrees with oracle on O3")
	}
	for _, st := range []Strategy{StrategySQL, StrategySQLNormalize} {
		got, err := FullOuterJoin(st, r, s, theta)
		if err != nil {
			t.Fatalf("%s: %v", st, err)
		}
		if !relation.SetEqual(got, want) {
			onlyGot, onlyWant := relation.Diff(got, want)
			t.Fatalf("%s disagrees on O3\nonly %s: %v\nonly align: %v", st, st, onlyGot, onlyWant)
		}
	}
}
