// Package csvio loads and stores temporal relations as CSV files for the
// CLI and the examples. The expected layout is a header of
// "name:type,...,ts,te" followed by data rows; ts/te hold the valid-time
// interval as integers, empty cells are ω.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"talign/internal/colbatch"
	"talign/internal/interval"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// Read parses a relation from CSV.
func Read(r io.Reader) (*relation.Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	if len(header) < 3 {
		return nil, fmt.Errorf("csvio: header needs at least one attribute plus ts,te")
	}
	if !strings.EqualFold(header[len(header)-2], "ts") || !strings.EqualFold(header[len(header)-1], "te") {
		return nil, fmt.Errorf("csvio: header must end with ts,te")
	}
	attrs := make([]schema.Attr, 0, len(header)-2)
	for _, h := range header[:len(header)-2] {
		parts := strings.SplitN(h, ":", 2)
		kind := value.KindString
		if len(parts) == 2 {
			kind, err = relation.ParseKind(parts[1])
			if err != nil {
				return nil, err
			}
		}
		attrs = append(attrs, schema.Attr{Name: strings.TrimSpace(parts[0]), Type: kind})
	}
	sch, err := schema.New(attrs...)
	if err != nil {
		return nil, err
	}
	// Decode straight into columnar vectors: typed cells append to flat
	// per-column storage (parseCell already enforces the schema kinds),
	// the row tuples are materialized from the batch in one pass, and
	// the batch is donated as the relation's cached columnar image so
	// the first vectorized scan pays no conversion.
	batch := colbatch.New(sch)
	scratch := make([]value.Value, len(attrs))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			rel := relation.New(sch)
			rel.Tuples = batch.Materialize(nil)
			rel.SetColumnar(batch)
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("csvio: line %d: %d fields, want %d", line, len(rec), len(header))
		}
		for i, cell := range rec[:len(attrs)] {
			v, err := parseCell(cell, attrs[i].Type)
			if err != nil {
				return nil, fmt.Errorf("csvio: line %d, column %s: %w", line, attrs[i].Name, err)
			}
			scratch[i] = v
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(rec[len(attrs)]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: bad ts: %w", line, err)
		}
		te, err := strconv.ParseInt(strings.TrimSpace(rec[len(attrs)+1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: bad te: %w", line, err)
		}
		if ts >= te {
			return nil, fmt.Errorf("csvio: line %d: empty interval [%d, %d)", line, ts, te)
		}
		batch.AppendTuple(tuple.Tuple{Vals: scratch, T: interval.New(ts, te)})
	}
}

func parseCell(cell string, kind value.Kind) (value.Value, error) {
	cell = strings.TrimSpace(cell)
	if cell == "" {
		return value.Null, nil
	}
	switch kind {
	case value.KindInt:
		i, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return value.Null, err
		}
		return value.NewInt(i), nil
	case value.KindFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return value.Null, err
		}
		return value.NewFloat(f), nil
	case value.KindBool:
		b, err := strconv.ParseBool(cell)
		if err != nil {
			return value.Null, err
		}
		return value.NewBool(b), nil
	case value.KindString:
		return value.NewString(cell), nil
	}
	return value.Null, fmt.Errorf("unsupported CSV type %s", kind)
}

// Write renders a relation as CSV with the Read layout.
func Write(w io.Writer, rel *relation.Relation) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, rel.Schema.Len()+2)
	for _, a := range rel.Schema.Attrs {
		header = append(header, a.Name+":"+a.Type.String())
	}
	header = append(header, "ts", "te")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, t := range rel.Tuples {
		rec := make([]string, 0, len(header))
		for _, v := range t.Vals {
			if v.IsNull() {
				rec = append(rec, "")
			} else {
				rec = append(rec, v.String())
			}
		}
		rec = append(rec, strconv.FormatInt(t.T.Ts, 10), strconv.FormatInt(t.T.Te, 10))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadFile loads a relation from a CSV file.
func ReadFile(path string) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile stores a relation into a CSV file.
func WriteFile(path string, rel *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Write(f, rel)
}
