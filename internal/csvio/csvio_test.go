package csvio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"talign/internal/relation"
)

func TestRoundTrip(t *testing.T) {
	rel := relation.NewBuilder("n string", "v int", "f float", "b bool").
		Row(0, 5, "ann", 1, 1.5, true).
		Row(5, 9, nil, nil, nil, nil).
		MustBuild()
	var buf bytes.Buffer
	if err := Write(&buf, rel); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !relation.SetEqual(rel, back) {
		t.Fatalf("round trip lost data:\n%s\nvs\n%s", rel, back)
	}
	if !back.Schema.Equal(rel.Schema) {
		t.Fatalf("schema mismatch: %s vs %s", back.Schema, rel.Schema)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, csv string
	}{
		{"no ts te", "a:int,b:int\n1,2\n"},
		{"short header", "ts,te\n"},
		{"bad type", "a:blob,ts,te\n1,0,1\n"},
		{"bad int", "a:int,ts,te\nxx,0,1\n"},
		{"bad ts", "a:int,ts,te\n1,zz,1\n"},
		{"empty interval", "a:int,ts,te\n1,5,5\n"},
		{"field count", "a:int,ts,te\n1,2\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(c.csv)); err == nil {
				t.Fatalf("expected error for %q", c.csv)
			}
		})
	}
}

func TestUntypedColumnsDefaultToString(t *testing.T) {
	rel, err := Read(strings.NewReader("name,ts,te\nann,0,5\n"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if rel.Tuples[0].Vals[0].Str() != "ann" {
		t.Fatalf("got %v", rel.Tuples[0])
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rel.csv")
	rel := relation.NewBuilder("n string").Row(0, 3, "x").MustBuild()
	if err := WriteFile(path, rel); err != nil {
		t.Fatalf("write file: %v", err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatalf("read file: %v", err)
	}
	if !relation.SetEqual(rel, back) {
		t.Fatal("file round trip lost data")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file must fail")
	}
}
