package opt

import (
	"math/bits"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/plan"
	"talign/internal/schema"
)

// maxReorderLeaves bounds the join sets the reorderer will touch; beyond
// it the analyzer's order stands.
const maxReorderLeaves = 12

// maxDPLeaves is the cutoff between exhaustive left-deep dynamic
// programming and the greedy heuristic.
const maxDPLeaves = 8

// leaf is one relation of a flattened inner-join chain.
type leaf struct {
	node  plan.Node
	start int // column offset in the original left-to-right order
	width int
}

// reorder is the memoized phase-2 entry point (join reordering).
func (o *optimizer) reorder(n plan.Node) plan.Node {
	if r, ok := o.reMemo[n]; ok {
		return r
	}
	r := o.reorderNode(n)
	o.reMemo[n] = r
	return r
}

// flattenable joins participate in reordering: plain inner joins without
// the reduction rules' T-equality (whose group semantics pin the sides).
func flattenable(j *plan.JoinNode) bool {
	return j.Type == exec.InnerJoin && !j.MatchT
}

func (o *optimizer) reorderNode(n plan.Node) plan.Node {
	if j, ok := n.(*plan.JoinNode); ok && flattenable(j) {
		var leaves []leaf
		var conjs []expr.Expr
		flatten(j, 0, &leaves, &conjs)
		if len(leaves) >= 3 && len(leaves) <= maxReorderLeaves {
			for i := range leaves {
				leaves[i].node = o.reorder(leaves[i].node)
			}
			return o.reorderJoin(j.Schema(), leaves, conjs)
		}
	}
	return o.rebuildChildren(n)
}

// flatten decomposes a maximal inner-join chain into its leaf relations
// and the conjuncts of every ON condition, rebased to absolute column
// positions over the chain's left-to-right concatenation.
func flatten(n plan.Node, start int, leaves *[]leaf, conjs *[]expr.Expr) int {
	if j, ok := n.(*plan.JoinNode); ok && flattenable(j) {
		lw := flatten(j.Left, start, leaves, conjs)
		rw := flatten(j.Right, start+lw, leaves, conjs)
		if j.Cond != nil {
			for _, c := range expr.Conjuncts(j.Cond) {
				*conjs = append(*conjs, expr.Shift(c, start))
			}
		}
		return lw + rw
	}
	w := n.Schema().Len()
	*leaves = append(*leaves, leaf{node: n, start: start, width: w})
	return w
}

// cand is one candidate left-deep join over a subset of leaves.
type cand struct {
	node  plan.Node
	order []int // leaf indices, left to right
}

// reorderJoin searches for the cheapest left-deep join order.
//
// The first leaf stays anchored leftmost: a join's output valid time is
// its left input's T, so every left-deep tree starting with leaf 0
// produces tuples timestamped with leaf 0's T — exactly like the original
// left-deep chain — and every residual conjunct still evaluates with
// env.T = leaf 0's T. Orders that move leaf 0 would change the observable
// valid times and are never considered.
//
// Conjuncts referencing a single leaf (and not the tuple's T) are pushed
// into that leaf up front; every other conjunct attaches to the first
// join whose inputs cover its columns.
func (o *optimizer) reorderJoin(origSchema schema.Schema, leaves []leaf, conjs []expr.Expr) plan.Node {
	n := len(leaves)
	leafOf := func(col int) int {
		for i, l := range leaves {
			if col >= l.start && col < l.start+l.width {
				return i
			}
		}
		return -1
	}

	// Classify conjuncts; pre-push single-leaf value predicates.
	var remaining []expr.Expr
	var masks []uint32
	for _, c := range conjs {
		var mask uint32
		expr.Remap(c, func(idx int) int { // Remap as a read-only walker
			if l := leafOf(idx); l >= 0 {
				mask |= 1 << l
			}
			return idx
		})
		if bits.OnesCount32(mask) == 1 && !expr.UsesT(c) {
			i := bits.TrailingZeros32(mask)
			leaves[i].node = o.filter(leaves[i].node, expr.Shift(c, -leaves[i].start))
			continue
		}
		remaining = append(remaining, c)
		masks = append(masks, mask)
	}

	// extend joins one more leaf onto a candidate, attaching every
	// conjunct that becomes applicable. placed(mask) covers all conjuncts
	// within mask once mask holds at least two leaves (a singleton has no
	// join to carry them yet).
	extend := func(c cand, maskC uint32, j int) cand {
		newMask := maskC | 1<<j
		order := append(append([]int{}, c.order...), j)
		remap := remapFor(order, leaves)
		var conds []expr.Expr
		for k, conj := range remaining {
			inNew := masks[k]&^newMask == 0
			placedBefore := bits.OnesCount32(maskC) >= 2 && masks[k]&^maskC == 0
			if inNew && !placedBefore {
				conds = append(conds, expr.Remap(conj, remap))
			}
		}
		var cond expr.Expr
		if len(conds) > 0 {
			cond = expr.And(conds...)
		}
		return cand{node: o.p.Join(c.node, leaves[j].node, cond, exec.InnerJoin, false), order: order}
	}

	full := uint32(1)<<n - 1
	var best cand
	if n <= maxDPLeaves {
		dp := make([]*cand, 1<<n)
		c0 := cand{node: leaves[0].node, order: []int{0}}
		dp[1] = &c0
		for mask := uint32(1); mask <= full; mask++ {
			if mask&1 == 0 || dp[mask] == nil {
				continue
			}
			for j := 1; j < n; j++ {
				if mask&(1<<j) != 0 {
					continue
				}
				next := extend(*dp[mask], mask, j)
				slot := mask | 1<<j
				if dp[slot] == nil || next.node.Cost() < dp[slot].node.Cost() {
					dp[slot] = &next
				}
			}
		}
		best = *dp[full]
	} else {
		cur := cand{node: leaves[0].node, order: []int{0}}
		mask := uint32(1)
		for len(cur.order) < n {
			var pick cand
			for j := 1; j < n; j++ {
				if mask&(1<<j) != 0 {
					continue
				}
				next := extend(cur, mask, j)
				if pick.node == nil || next.node.Cost() < pick.node.Cost() {
					pick = next
				}
			}
			cur = pick
			mask |= 1 << uint(cur.order[len(cur.order)-1])
		}
		best = cur
	}

	// Compare against the original order on TOTAL cost — a reordered
	// plan pays a column-restoring projection on top of its joins — and
	// prefer the original on ties (less churn, stable EXPLAIN).
	identity := cand{node: leaves[0].node, order: []int{0}}
	idMask := uint32(1)
	for j := 1; j < n; j++ {
		identity = extend(identity, idMask, j)
		idMask |= 1 << j
	}
	bestFinal := o.restoreOrder(best, leaves, origSchema)
	if identity.node.Cost() <= bestFinal.Cost() {
		return identity.node
	}
	return bestFinal
}

// restoreOrder re-projects a reordered join back to the original column
// order (a no-op projection is elided for the identity order).
func (o *optimizer) restoreOrder(c cand, leaves []leaf, origSchema schema.Schema) plan.Node {
	ident := true
	for i, li := range c.order {
		if li != i {
			ident = false
			break
		}
	}
	if ident {
		return c.node
	}
	remap := remapFor(c.order, leaves)
	names := make([]string, origSchema.Len())
	exprs := make([]expr.Expr, origSchema.Len())
	for col, at := range origSchema.Attrs {
		names[col] = at.Name
		exprs[col] = expr.ColIdx{Idx: remap(col), Typ: at.Type, Name: at.Name}
	}
	return o.project(c.node, names, exprs, exec.TKeep, nil)
}

// remapFor builds the original-column → reordered-column translation for
// a leaf order.
func remapFor(order []int, leaves []leaf) func(int) int {
	newStart := make(map[int]int, len(order))
	off := 0
	for _, li := range order {
		newStart[li] = off
		off += leaves[li].width
	}
	leafOf := func(col int) int {
		for i, l := range leaves {
			if col >= l.start && col < l.start+l.width {
				return i
			}
		}
		return -1
	}
	return func(col int) int {
		li := leafOf(col)
		if li < 0 {
			return col
		}
		return newStart[li] + (col - leaves[li].start)
	}
}

// rebuildChildren rewrites a node's children through the reorder pass and
// reconstructs the node when any child changed.
func (o *optimizer) rebuildChildren(n plan.Node) plan.Node {
	switch x := n.(type) {
	case *plan.FilterNode:
		if in := o.reorder(x.Input); in != x.Input {
			return o.p.Filter(in, x.Pred)
		}
	case *plan.ProjectNode:
		if in := o.reorder(x.Input); in != x.Input {
			p := o.p.Project(in, x.Names, x.Exprs)
			p.TMode = x.TMode
			p.TExpr = x.TExpr
			return p
		}
	case *plan.SortNode:
		if in := o.reorder(x.Input); in != x.Input {
			return o.p.Sort(in, x.Keys...)
		}
	case *plan.JoinNode:
		l, r := o.reorder(x.Left), o.reorder(x.Right)
		if l != x.Left || r != x.Right {
			return o.p.Join(l, r, x.Cond, x.Type, x.MatchT)
		}
	case *plan.IntervalJoinNode:
		l, r := o.reorder(x.Left), o.reorder(x.Right)
		if l != x.Left || r != x.Right {
			return o.p.IntervalJoin(l, r, x.Cond, x.Type)
		}
	case *plan.FusedAdjustNode:
		l, r := o.reorder(x.Left), o.reorder(x.Right)
		if l != x.Left || r != x.Right {
			return o.p.FusedAdjustFrom(l, r, x.Mode, x.Keys, x.Residual, x.PCol)
		}
	case *plan.AggNode:
		if in := o.reorder(x.Input); in != x.Input {
			if agg, err := o.p.Aggregate(in, x.GroupBy, x.Names, x.GroupByT, x.Aggs); err == nil {
				return agg
			}
		}
	case *plan.SetOpNode:
		l, r := o.reorder(x.Left), o.reorder(x.Right)
		if l != x.Left || r != x.Right {
			return o.p.SetOp(l, r, x.Kind)
		}
	case *plan.DistinctNode:
		if in := o.reorder(x.Input); in != x.Input {
			return o.p.Distinct(in)
		}
	case *plan.AbsorbNode:
		if in := o.reorder(x.Input); in != x.Input {
			return o.p.Absorb(in)
		}
	case *plan.AdjustNode:
		if in := o.reorder(x.Input); in != x.Input {
			return o.p.Adjust(in, x.Mode, x.LeftWidth, x.P1, x.P2)
		}
	case *plan.SharedNode:
		if in := o.reorder(x.Input); in != x.Input {
			return o.p.Shared(in)
		}
	}
	return n
}
