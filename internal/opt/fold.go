package opt

import (
	"talign/internal/expr"
	"talign/internal/value"
)

// fold simplifies constant subexpressions: any pure operator over literal
// operands evaluates at plan time, and AND/OR short-circuit around
// literal TRUE/FALSE per Kleene semantics. $N parameters are not
// constants (a prepared plan is generic over them), and expressions whose
// evaluation errors are left untouched for the executor to report.
func fold(e expr.Expr) expr.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case expr.Logic:
		l, r := fold(x.L), fold(x.R)
		if lc, ok := constBool(l); ok {
			return foldLogicSide(x.Op, lc, r)
		}
		if rc, ok := constBool(r); ok {
			return foldLogicSide(x.Op, rc, l)
		}
		return expr.Logic{Op: x.Op, L: l, R: r}
	case expr.Not:
		inner := fold(x.X)
		return evalIfConst(expr.Not{X: inner})
	case expr.Cmp:
		return evalIfConst(expr.Cmp{Op: x.Op, L: fold(x.L), R: fold(x.R)})
	case expr.Arith:
		return evalIfConst(expr.Arith{Op: x.Op, L: fold(x.L), R: fold(x.R)})
	case expr.IsNull:
		return evalIfConst(expr.IsNull{X: fold(x.X), Negate: x.Negate})
	case expr.Between:
		return evalIfConst(expr.Between{X: fold(x.X), Lo: fold(x.Lo), Hi: fold(x.Hi)})
	case expr.Func:
		args := make([]expr.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = fold(a)
		}
		return evalIfConst(expr.Func{Name: x.Name, Args: args})
	}
	return e
}

// foldAll folds a slice of expressions (the input slice is not mutated).
func foldAll(exprs []expr.Expr) []expr.Expr {
	out := make([]expr.Expr, len(exprs))
	for i, e := range exprs {
		out[i] = fold(e)
	}
	return out
}

// constBool unwraps a boolean (or ω) literal: known reports a definite
// TRUE/FALSE, ω stays unknown and is not simplified around.
func constBool(e expr.Expr) (b bool, known bool) {
	c, ok := e.(expr.Const)
	if !ok || c.V.IsNull() || c.V.Kind() != value.KindBool {
		return false, false
	}
	return c.V.Bool(), true
}

// foldLogicSide simplifies AND/OR with one definite boolean side:
// TRUE AND x = x, FALSE AND x = FALSE, TRUE OR x = TRUE, FALSE OR x = x.
// (The absorbing cases are sound even when x is ω or has side conditions:
// WHERE treats ω as FALSE, and expression evaluation is pure.)
func foldLogicSide(op expr.BoolOp, b bool, other expr.Expr) expr.Expr {
	if op == expr.AndOp {
		if b {
			return other
		}
		return expr.Bool(false)
	}
	if b {
		return expr.Bool(true)
	}
	return other
}

// evalIfConst evaluates e at plan time when every leaf is a literal.
func evalIfConst(e expr.Expr) expr.Expr {
	if !isConstExpr(e) {
		return e
	}
	v, err := e.Eval(&expr.Env{})
	if err != nil {
		return e
	}
	return expr.Const{V: v}
}

// isConstExpr reports whether e contains only literals and pure
// operators (no columns, parameters, or references to the tuple's T).
func isConstExpr(e expr.Expr) bool {
	switch x := e.(type) {
	case expr.Const:
		return true
	case expr.Cmp:
		return isConstExpr(x.L) && isConstExpr(x.R)
	case expr.Logic:
		return isConstExpr(x.L) && isConstExpr(x.R)
	case expr.Not:
		return isConstExpr(x.X)
	case expr.IsNull:
		return isConstExpr(x.X)
	case expr.Between:
		return isConstExpr(x.X) && isConstExpr(x.Lo) && isConstExpr(x.Hi)
	case expr.Arith:
		return isConstExpr(x.L) && isConstExpr(x.R)
	case expr.Func:
		for _, a := range x.Args {
			if !isConstExpr(a) {
				return false
			}
		}
		return true
	}
	return false
}
