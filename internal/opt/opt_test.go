package opt

import (
	"strings"
	"testing"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/stats"
	"talign/internal/value"
)

func testRel(n, mod int) *relation.Relation {
	b := relation.NewBuilder("k int", "v int")
	for i := 0; i < n; i++ {
		b.Row(int64(i), int64(i)+1, i%mod, i)
	}
	return b.MustBuild()
}

func scanWithStats(p *plan.Planner, rel *relation.Relation, name string) *plan.ScanNode {
	s := p.Scan(rel, name)
	s.TableStats = stats.Analyze(rel)
	return s
}

// runBoth executes the original and optimized plan and fails on any
// difference.
func runBoth(t *testing.T, p *plan.Planner, n plan.Node) plan.Node {
	t.Helper()
	o := Optimize(n, p)
	want, err := plan.Run(n)
	if err != nil {
		t.Fatalf("original plan: %v", err)
	}
	got, err := plan.Run(o)
	if err != nil {
		t.Fatalf("optimized plan: %v", err)
	}
	if !relation.SetEqual(got, want) {
		ga, gw := relation.Diff(got, want)
		t.Fatalf("optimized result diverged\nonly optimized: %v\nonly original: %v\noptimized plan:\n%s", ga, gw, plan.Explain(o))
	}
	return o
}

func TestFoldConstants(t *testing.T) {
	one := expr.Int(1)
	cases := []struct {
		in   expr.Expr
		want string
	}{
		{expr.Eq(one, one), "true"},
		{expr.And(expr.Bool(true), expr.Gt(expr.CI(0, value.KindInt), one)), "(#0 > 1)"},
		{expr.And(expr.Bool(false), expr.Gt(expr.CI(0, value.KindInt), one)), "false"},
		{expr.Or(expr.Bool(true), expr.Gt(expr.CI(0, value.KindInt), one)), "true"},
		{expr.Add(expr.Int(2), expr.Int(3)), "5"},
		{expr.Gt(expr.CI(0, value.KindInt), expr.Add(expr.Int(2), expr.Int(3))), "(#0 > 5)"},
	}
	for _, c := range cases {
		if got := fold(c.in).String(); got != c.want {
			t.Errorf("fold(%s) = %s, want %s", c.in, got, c.want)
		}
	}
	// Parameters are not constants.
	p := expr.Cmp{Op: expr.EQ, L: expr.Param{Idx: 1}, R: expr.Int(3)}
	if _, ok := fold(p).(expr.Const); ok {
		t.Error("fold must not evaluate $N parameters")
	}
}

func TestFilterTrueAndFalse(t *testing.T) {
	p := plan.NewPlanner(plan.DefaultFlags())
	scan := p.Scan(testRel(10, 5), "r")

	if got := Optimize(p.Filter(scan, expr.Eq(expr.Int(1), expr.Int(1))), p); got != scan {
		t.Errorf("WHERE 1=1 should collapse to the input, got %s", got.Label())
	}

	empty := Optimize(p.Filter(scan, expr.Eq(expr.Int(1), expr.Int(2))), p)
	out, err := plan.Run(empty)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("WHERE 1=2 must return nothing, got %d rows", out.Len())
	}
}

func TestPushdownBelowJoin(t *testing.T) {
	p := plan.NewPlanner(plan.DefaultFlags())
	l := scanWithStats(p, testRel(100, 10), "l")
	r := scanWithStats(p, testRel(100, 10), "r")
	join := p.Join(l, r, expr.Eq(expr.CI(0, value.KindInt), expr.CI(2, value.KindInt)), exec.InnerJoin, false)
	// One conjunct per side plus one cross-side residual.
	pred := expr.And(
		expr.Eq(expr.CI(0, value.KindInt), expr.Int(3)),               // left only
		expr.Ge(expr.CI(3, value.KindInt), expr.Int(10)),              // right only
		expr.Ne(expr.CI(1, value.KindInt), expr.CI(3, value.KindInt)), // both sides
	)
	o := runBoth(t, p, p.Filter(join, pred))
	text := plan.Explain(o)
	// The join node must now sit above filtered scans.
	ji := strings.Index(text, "join ON")
	if ji < 0 {
		t.Fatalf("no join in optimized plan:\n%s", text)
	}
	below := text[ji:]
	if !strings.Contains(below, "Filter (#0 = 3)") || !strings.Contains(below, "Filter (#1 >= 10)") {
		t.Errorf("single-side conjuncts not pushed below the join:\n%s", text)
	}
	if !strings.HasPrefix(text, "Filter") {
		t.Errorf("cross-side residual should stay above the join:\n%s", text)
	}
}

func TestNoPushIntoOuterNullSide(t *testing.T) {
	p := plan.NewPlanner(plan.DefaultFlags())
	l := p.Scan(testRel(20, 4), "l")
	r := p.Scan(testRel(20, 4), "r")
	join := p.Join(l, r, expr.Eq(expr.CI(0, value.KindInt), expr.CI(2, value.KindInt)), exec.LeftOuterJoin, false)
	// References the null-extended right side: must stay above the join.
	pred := expr.IsNull{X: expr.ColIdx{Idx: 2, Typ: value.KindInt}}
	o := runBoth(t, p, p.Filter(join, pred))
	if !strings.HasPrefix(plan.Explain(o), "Filter") {
		t.Errorf("filter on the null-extended side must not move:\n%s", plan.Explain(o))
	}
}

func TestProjectCollapse(t *testing.T) {
	p := plan.NewPlanner(plan.DefaultFlags())
	scan := p.Scan(testRel(10, 5), "r")
	inner := p.Project(scan, []string{"a", "b"}, []expr.Expr{
		expr.CI(1, value.KindInt), expr.CI(0, value.KindInt)})
	outer := p.Project(inner, []string{"c"}, []expr.Expr{
		expr.Add(expr.CI(0, value.KindInt), expr.Int(1))})
	o := runBoth(t, p, outer)
	if strings.Count(plan.Explain(o), "Project") != 1 {
		t.Errorf("stacked projections should collapse into one:\n%s", plan.Explain(o))
	}
}

func TestIdentityProjectElided(t *testing.T) {
	p := plan.NewPlanner(plan.DefaultFlags())
	scan := p.Scan(testRel(10, 5), "r")
	id := p.Project(scan, []string{"k", "v"}, []expr.Expr{
		expr.ColIdx{Idx: 0, Typ: value.KindInt, Name: "k"},
		expr.ColIdx{Idx: 1, Typ: value.KindInt, Name: "v"}})
	if got := Optimize(id, p); got != scan {
		t.Errorf("identity projection should be elided, got %s", got.Label())
	}
	// A renaming projection is NOT identity.
	ren := p.Project(scan, []string{"x", "v"}, []expr.Expr{
		expr.ColIdx{Idx: 0, Typ: value.KindInt, Name: "k"},
		expr.ColIdx{Idx: 1, Typ: value.KindInt, Name: "v"}})
	if got := Optimize(ren, p); got == scan {
		t.Error("renaming projection must be kept")
	}
}

func TestJoinReorder(t *testing.T) {
	p := plan.NewPlanner(plan.DefaultFlags())
	// big1 ⋈ big2 (huge intermediate) then ⋈ tiny: joining big1 with the
	// tiny relation first collapses the intermediate result. The
	// reorderer must find that order, and the result (column order and
	// valid times included) must not change.
	big1 := scanWithStats(p, testRel(2000, 50), "big1")
	big2 := scanWithStats(p, testRel(2000, 50), "big2")
	tiny := scanWithStats(p, testRel(3, 3), "tiny")
	j1 := p.Join(big1, big2, expr.Eq(expr.CI(0, value.KindInt), expr.CI(2, value.KindInt)), exec.InnerJoin, false)
	j2 := p.Join(j1, tiny, expr.Eq(expr.CI(0, value.KindInt), expr.CI(4, value.KindInt)), exec.InnerJoin, false)
	o := runBoth(t, p, j2)
	if o.Cost() >= j2.Cost() {
		t.Errorf("reordered plan should be cheaper: %v >= %v\n%s", o.Cost(), j2.Cost(), plan.Explain(o))
	}
	// Schema must be preserved exactly.
	if o.Schema().String() != j2.Schema().String() {
		t.Errorf("reorder changed the schema: %s vs %s", o.Schema(), j2.Schema())
	}
}

func TestPushdownBelowFusedAdjust(t *testing.T) {
	p := plan.NewPlanner(plan.DefaultFlags())
	l := scanWithStats(p, testRel(50, 5), "l")
	r := scanWithStats(p, testRel(50, 5), "r")
	theta := expr.Eq(expr.CI(0, value.KindInt), expr.CI(2, value.KindInt))
	fused := p.FusedAlign(l, r, theta, exec.ModeAlign)
	o := runBoth(t, p, p.Filter(fused, expr.Eq(expr.CI(0, value.KindInt), expr.Int(2))))
	text := plan.Explain(o)
	if strings.HasPrefix(text, "Filter") {
		t.Errorf("value filter should push below FusedAdjust:\n%s", text)
	}
}

func TestSharedStaysShared(t *testing.T) {
	p := plan.NewPlanner(plan.DefaultFlags())
	scan := p.Scan(testRel(10, 5), "r")
	shared := p.Shared(p.Filter(scan, expr.Eq(expr.Int(1), expr.Int(1))))
	join := p.Join(shared, shared, expr.Eq(expr.CI(0, value.KindInt), expr.CI(2, value.KindInt)), exec.InnerJoin, false)
	o := Optimize(join, p)
	j, ok := o.(*plan.JoinNode)
	if !ok {
		t.Fatalf("expected a join, got %T", o)
	}
	if j.Left != j.Right {
		t.Error("rewritten shared subtree must stay a single shared instance")
	}
}
