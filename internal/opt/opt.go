// Package opt implements the rule-based optimizer that runs between the
// analyzer and the executor: a rewrite pass over plan.Node trees doing
// constant folding, filter merging, predicate pushdown (below
// projections, joins, set operations, duplicate elimination, aggregation
// and the fused ALIGN/NORMALIZE operator), projection collapsing, and
// cost-based join reordering for chains of inner joins. Every rebuilt
// node goes back through the plan.Planner, so physical method choices
// (hash vs merge vs nested loop, fused group strategies) are re-costed
// against the rewritten inputs — with table statistics from ANALYZE when
// the catalog carries them.
//
// The pass is semantics-preserving by construction; each rule documents
// the invariant that makes it safe (most importantly: a join's output
// valid time is its LEFT input's T, so pushdown to the right side and
// join reordering are restricted to rewrites that keep the observable T
// unchanged). plan.Flags.DisableOptimizer bypasses the whole pass for
// differential testing.
package opt

import (
	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/plan"
	"talign/internal/relation"
)

// Optimize rewrites a plan under the planner's flags and statistics and
// returns the (possibly identical) optimized plan. The input plan is
// never mutated; shared subtrees (WITH bodies) stay shared in the output.
func Optimize(n plan.Node, p *plan.Planner) plan.Node {
	o := &optimizer{p: p, memo: map[plan.Node]plan.Node{}, reMemo: map[plan.Node]plan.Node{}}
	out := o.rewrite(n)
	return o.reorder(out)
}

// optimizer carries one pass's state: the planner (flags + statistics)
// and sharing-preserving memo tables for both phases.
type optimizer struct {
	p      *plan.Planner
	memo   map[plan.Node]plan.Node
	reMemo map[plan.Node]plan.Node
}

// rewrite is the memoized phase-1 entry point (folding, filters,
// projections).
func (o *optimizer) rewrite(n plan.Node) plan.Node {
	if r, ok := o.memo[n]; ok {
		return r
	}
	r := o.rewriteNode(n)
	o.memo[n] = r
	return r
}

// rewriteNode rewrites children bottom-up and applies the local rules.
func (o *optimizer) rewriteNode(n plan.Node) plan.Node {
	switch x := n.(type) {
	case *plan.FilterNode:
		return o.filter(o.rewrite(x.Input), x.Pred)
	case *plan.ProjectNode:
		return o.project(o.rewrite(x.Input), x.Names, foldAll(x.Exprs), x.TMode, fold(x.TExpr))
	case *plan.JoinNode:
		return o.join(o.rewrite(x.Left), o.rewrite(x.Right), x.Cond, x.Type, x.MatchT)
	case *plan.IntervalJoinNode:
		l, r := o.rewrite(x.Left), o.rewrite(x.Right)
		if l == x.Left && r == x.Right {
			return x
		}
		return o.p.IntervalJoin(l, r, x.Cond, x.Type)
	case *plan.FusedAdjustNode:
		l, r := o.rewrite(x.Left), o.rewrite(x.Right)
		if l == x.Left && r == x.Right {
			return x
		}
		return o.p.FusedAdjustFrom(l, r, x.Mode, x.Keys, x.Residual, x.PCol)
	case *plan.SortNode:
		in := o.rewrite(x.Input)
		if in == x.Input {
			return x
		}
		return o.p.Sort(in, x.Keys...)
	case *plan.AggNode:
		in := o.rewrite(x.Input)
		if in == x.Input {
			return x
		}
		agg, err := o.p.Aggregate(in, x.GroupBy, x.Names, x.GroupByT, x.Aggs)
		if err != nil {
			return x
		}
		return agg
	case *plan.SetOpNode:
		l, r := o.rewrite(x.Left), o.rewrite(x.Right)
		if l == x.Left && r == x.Right {
			return x
		}
		return o.p.SetOp(l, r, x.Kind)
	case *plan.DistinctNode:
		in := o.rewrite(x.Input)
		if in == x.Input {
			return x
		}
		return o.p.Distinct(in)
	case *plan.AbsorbNode:
		in := o.rewrite(x.Input)
		if in == x.Input {
			return x
		}
		return o.p.Absorb(in)
	case *plan.AdjustNode:
		in := o.rewrite(x.Input)
		if in == x.Input {
			return x
		}
		return o.p.Adjust(in, x.Mode, x.LeftWidth, x.P1, x.P2)
	case *plan.SharedNode:
		in := o.rewrite(x.Input)
		if in == x.Input {
			return x
		}
		return o.p.Shared(in)
	case *plan.ExchangeNode:
		// Exchange fragments are closures over their sources; rewriting
		// inside them would detach the template from the built fragments.
		// Parallel plans keep the analyzer's shape.
		return x
	}
	return n
}

// filter is the smart Filter constructor: it folds the predicate, prunes
// trivially true/false filters, merges adjacent filters, and pushes
// conjuncts as far down as the input's semantics allow. in must already
// be rewritten.
func (o *optimizer) filter(in plan.Node, pred expr.Expr) plan.Node {
	pred = fold(pred)
	if c, ok := pred.(expr.Const); ok {
		if !c.V.IsNull() && c.V.Bool() {
			return in // WHERE TRUE
		}
		// WHERE FALSE (or ω, which WHERE treats as false): the result is
		// empty with the input's schema.
		return o.p.Scan(relation.New(in.Schema()), "∅")
	}
	if f, ok := in.(*plan.FilterNode); ok {
		return o.filter(f.Input, expr.And(pred, f.Pred))
	}

	switch x := in.(type) {
	case *plan.ProjectNode:
		// Substituting the projection's expressions into the predicate
		// moves it below the projection. Safe unless the substituted
		// predicate reads the tuple's own T while the projection rewrites
		// T (TFromExpr/TZero): below, T is still the input's.
		sub := substitute(pred, x.Exprs)
		if x.TMode == exec.TKeep || !expr.UsesT(sub) {
			return o.project(o.filter(x.Input, sub), x.Names, x.Exprs, x.TMode, x.TExpr)
		}

	case *plan.JoinNode:
		return o.filterOverJoin(x, pred)

	case *plan.FusedAdjustNode:
		// The fused node emits rows carrying a LEFT tuple's values (with
		// adjusted T), and every left tuple yields at least its own
		// output rows independently of the others — so a value-only
		// predicate commutes with the whole group construction + sweep.
		push, keep := splitConjuncts(pred, func(c expr.Expr) bool { return !expr.UsesT(c) })
		if push != nil {
			n := o.p.FusedAdjustFrom(o.filter(x.Left, push), x.Right, x.Mode, x.Keys, x.Residual, x.PCol)
			return o.keepFilter(n, keep)
		}

	case *plan.AdjustNode:
		// Legacy chain: Adjust groups its input by the left-width prefix;
		// a value predicate over that prefix is constant per group and
		// removes whole groups, exactly like filtering the output.
		push, keep := splitConjuncts(pred, func(c expr.Expr) bool {
			return !expr.UsesT(c) && expr.MinColIdx(c) >= 0 && expr.MaxColIdx(c) < x.LeftWidth
		})
		if push != nil {
			n := o.p.Adjust(o.filter(x.Input, push), x.Mode, x.LeftWidth, x.P1, x.P2)
			return o.keepFilter(n, keep)
		}

	case *plan.SetOpNode:
		// Set operations match whole tuples, so value-equal tuples pass
		// or fail a value predicate identically on both sides.
		push, keep := splitConjuncts(pred, func(c expr.Expr) bool { return !expr.UsesT(c) })
		if push != nil {
			n := o.p.SetOp(o.filter(x.Left, push), o.filter(x.Right, push), x.Kind)
			return o.keepFilter(n, keep)
		}

	case *plan.DistinctNode:
		push, keep := splitConjuncts(pred, func(c expr.Expr) bool { return !expr.UsesT(c) })
		if push != nil {
			return o.keepFilter(o.p.Distinct(o.filter(x.Input, push)), keep)
		}

	case *plan.AbsorbNode:
		// Absorption compares only value-equal tuples, which a value
		// predicate keeps or drops as a block.
		push, keep := splitConjuncts(pred, func(c expr.Expr) bool { return !expr.UsesT(c) })
		if push != nil {
			return o.keepFilter(o.p.Absorb(o.filter(x.Input, push)), keep)
		}

	case *plan.ScanNode:
		// A filter directly above a scan cannot be pushed further, but
		// its column/TS/TE-vs-constant conjuncts become zone-map prune
		// bounds on the scan: segments of storage-backed relations whose
		// zone proves the predicate false are skipped at Build time. The
		// filter stays in place, so this only ever skips work.
		if !o.p.Flags.DisablePruning && x.Prune == nil && x.Rel.Segments() != nil {
			if pb := plan.ExtractPruneBounds(pred, x.Schema().Len()); pb != nil {
				in = x.WithPrune(pb)
			}
		}

	case *plan.AggNode:
		// HAVING conjuncts over group-by output columns filter whole
		// groups; substituting the grouping expressions moves them below
		// the aggregation.
		push, keep := splitConjuncts(pred, func(c expr.Expr) bool {
			if expr.MinColIdx(c) < 0 || expr.MaxColIdx(c) >= len(x.GroupBy) {
				return false
			}
			return !expr.UsesT(substitute(c, x.GroupBy))
		})
		if push != nil {
			agg, err := o.p.Aggregate(o.filter(x.Input, substitute(push, x.GroupBy)), x.GroupBy, x.Names, x.GroupByT, x.Aggs)
			if err == nil {
				return o.keepFilter(agg, keep)
			}
		}
	}
	return o.p.Filter(in, pred)
}

// join is the smart Join constructor: for inner joins, ON conjuncts that
// reference a single side become filters on that input (equi pairs span
// both sides and are never touched). An inner join keeps exactly the
// pairs satisfying the condition, so filtering one input by a single-side
// conjunct is equivalent; right-side pushes must not read T (the
// condition evaluates with env.T = the left tuple's T, but a filter on
// the right input would see the right tuple's).
func (o *optimizer) join(l, r plan.Node, cond expr.Expr, typ exec.JoinType, matchT bool) plan.Node {
	if cond != nil && typ == exec.InnerJoin {
		lw := l.Schema().Len()
		var lefts, rights, keep []expr.Expr
		for _, c := range expr.Conjuncts(fold(cond)) {
			min, max := expr.MinColIdx(c), expr.MaxColIdx(c)
			switch {
			case min >= 0 && max < lw:
				lefts = append(lefts, c)
			case min >= lw && !expr.UsesT(c):
				rights = append(rights, expr.Shift(c, -lw))
			default:
				keep = append(keep, c)
			}
		}
		if len(lefts) > 0 || len(rights) > 0 {
			if len(lefts) > 0 {
				l = o.filter(l, expr.And(lefts...))
			}
			if len(rights) > 0 {
				r = o.filter(r, expr.And(rights...))
			}
			if len(keep) == 0 {
				cond = nil
			} else {
				cond = expr.And(keep...)
			}
		}
	}
	return o.p.Join(l, r, cond, typ, matchT)
}

// keepFilter wraps n in a filter for the residual conjuncts, if any.
func (o *optimizer) keepFilter(n plan.Node, keep expr.Expr) plan.Node {
	if keep == nil {
		return n
	}
	return o.p.Filter(n, keep)
}

// filterOverJoin pushes a predicate's conjuncts into a join's inputs.
// The join's output valid time is the LEFT input's T, so left-side pushes
// may reference T while right-side pushes must not; outer joins only
// accept pushes on their row-preserving side (pushing into the
// null-extended side would change which rows get padded).
func (o *optimizer) filterOverJoin(j *plan.JoinNode, pred expr.Expr) plan.Node {
	lw := j.Left.Schema().Len()
	canLeft := j.Type == exec.InnerJoin || j.Type == exec.LeftOuterJoin ||
		j.Type == exec.SemiJoin || j.Type == exec.AntiJoin
	canRight := j.Type == exec.InnerJoin || j.Type == exec.RightOuterJoin
	var lefts, rights, keep []expr.Expr
	for _, c := range expr.Conjuncts(pred) {
		min, max := expr.MinColIdx(c), expr.MaxColIdx(c)
		switch {
		case canLeft && min >= 0 && max < lw:
			lefts = append(lefts, c)
		case canRight && min >= lw && !expr.UsesT(c):
			rights = append(rights, expr.Shift(c, -lw))
		default:
			keep = append(keep, c)
		}
	}
	if len(lefts) == 0 && len(rights) == 0 {
		return o.p.Filter(j, pred)
	}
	l, r := j.Left, j.Right
	if len(lefts) > 0 {
		l = o.filter(l, expr.And(lefts...))
	}
	if len(rights) > 0 {
		r = o.filter(r, expr.And(rights...))
	}
	nj := o.p.Join(l, r, j.Cond, j.Type, j.MatchT)
	if len(keep) == 0 {
		return nj
	}
	return o.p.Filter(nj, expr.And(keep...))
}

// project is the smart Project constructor: it collapses stacked
// projections by substitution and elides identity projections. exprs must
// already be folded.
func (o *optimizer) project(in plan.Node, names []string, exprs []expr.Expr, tmode exec.TPolicy, texpr expr.Expr) plan.Node {
	if pj, ok := in.(*plan.ProjectNode); ok {
		composed := make([]expr.Expr, len(exprs))
		for i, e := range exprs {
			composed[i] = fold(substitute(e, pj.Exprs))
		}
		switch {
		case pj.TMode == exec.TKeep:
			// The inner projection passes T through, so the outer T policy
			// (and a substituted TExpr) applies directly to its input.
			return o.project(pj.Input, names, composed, tmode, fold(substitute(texpr, pj.Exprs)))
		case tmode == exec.TKeep && !anyUsesT(composed):
			// The outer projection keeps whatever T the inner one
			// computed; composing keeps the inner policy. The composed
			// value expressions must not read T — below the collapse they
			// would see the pre-rewrite T.
			return o.project(pj.Input, names, composed, pj.TMode, pj.TExpr)
		}
	}
	if tmode == exec.TKeep && isIdentityProject(in, names, exprs) {
		return in
	}
	n := o.p.Project(in, names, exprs)
	n.TMode = tmode
	n.TExpr = texpr
	return n
}

// isIdentityProject reports whether the projection returns its input
// unchanged: every column in order, by plain reference, keeping its name.
func isIdentityProject(in plan.Node, names []string, exprs []expr.Expr) bool {
	sch := in.Schema()
	if len(exprs) != sch.Len() {
		return false
	}
	for i, e := range exprs {
		ci, ok := e.(expr.ColIdx)
		if !ok || ci.Idx != i || names[i] != sch.Attrs[i].Name {
			return false
		}
	}
	return true
}

// splitConjuncts partitions a predicate's conjuncts by pushable; both
// results are nil-able conjunctions.
func splitConjuncts(pred expr.Expr, pushable func(expr.Expr) bool) (push, keep expr.Expr) {
	var ps, ks []expr.Expr
	for _, c := range expr.Conjuncts(pred) {
		if pushable(c) {
			ps = append(ps, c)
		} else {
			ks = append(ks, c)
		}
	}
	if len(ps) == 0 {
		return nil, pred
	}
	push = expr.And(ps...)
	if len(ks) > 0 {
		keep = expr.And(ks...)
	}
	return push, keep
}

// substitute rewrites every positional column reference in e with the
// corresponding projection expression (re-targeting a predicate from a
// projection's output to its input).
func substitute(e expr.Expr, exprs []expr.Expr) expr.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case expr.ColIdx:
		if x.Idx >= 0 && x.Idx < len(exprs) {
			return exprs[x.Idx]
		}
		return x
	case expr.Cmp:
		return expr.Cmp{Op: x.Op, L: substitute(x.L, exprs), R: substitute(x.R, exprs)}
	case expr.Logic:
		return expr.Logic{Op: x.Op, L: substitute(x.L, exprs), R: substitute(x.R, exprs)}
	case expr.Not:
		return expr.Not{X: substitute(x.X, exprs)}
	case expr.IsNull:
		return expr.IsNull{X: substitute(x.X, exprs), Negate: x.Negate}
	case expr.Between:
		return expr.Between{X: substitute(x.X, exprs), Lo: substitute(x.Lo, exprs), Hi: substitute(x.Hi, exprs)}
	case expr.Arith:
		return expr.Arith{Op: x.Op, L: substitute(x.L, exprs), R: substitute(x.R, exprs)}
	case expr.Func:
		args := make([]expr.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = substitute(a, exprs)
		}
		return expr.Func{Name: x.Name, Args: args}
	}
	return e
}

// anyUsesT reports whether any expression reads the tuple's own T.
func anyUsesT(exprs []expr.Expr) bool {
	for _, e := range exprs {
		if e != nil && expr.UsesT(e) {
			return true
		}
	}
	return false
}
