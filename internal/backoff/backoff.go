// Package backoff provides the shared retry-delay policy used by every
// layer that re-issues idempotent requests: the public client retrying a
// draining talignd, and the distsql coordinator retrying fragment
// dispatch to workers. Centralizing the curve keeps the fleet's retry
// behavior uniform — exponential growth with a cap, plus randomized
// jitter so callers never stampede a recovering server in lockstep.
package backoff

import (
	"math/rand"
	"time"
)

// Default curve shared by the wire client and the fragment dispatcher.
const (
	// DefaultBase is the first retry's delay.
	DefaultBase = 50 * time.Millisecond
	// DefaultMax caps the exponential growth.
	DefaultMax = 2 * time.Second
)

// Delay returns the wait before retry attempt (0-based): base<<attempt
// capped at max, plus up to half again of random jitter.
func Delay(attempt int, base, max time.Duration) time.Duration {
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	return d + time.Duration(rand.Int63n(int64(d/2)+1))
}

// Default is Delay with the package's default curve (50ms, 100ms,
// 200ms, ... capped at 2s).
func Default(attempt int) time.Duration {
	return Delay(attempt, DefaultBase, DefaultMax)
}
