package storage

import (
	"encoding/binary"
	"math"
	"unsafe"

	"talign/internal/colbatch"
	"talign/internal/schema"
	"talign/internal/value"
)

// Column storage encodings inside a segment. The encoding mirrors the
// physical layout of colbatch.Vec, so decoding reverses to the same
// in-memory form the vectorized executor scans.
const (
	encInt      = 0 // data: rows × int64
	encFloat    = 1 // data: rows × float64
	encStr      = 2 // aux: (rows+1) × u32 offsets; data: blob
	encBool     = 3 // data: rows × byte (0/1)
	encInterval = 4 // data: rows × int64 starts; aux: rows × int64 ends
	encAny      = 5 // aux: (rows+1) × u32 offsets; data: tagged cells
)

// colRegion locates one column's regions in the payload. Offsets are
// absolute file offsets, 8-byte aligned; a zero-length nulls region
// means "no ω rows".
type colRegion struct {
	enc                uint8
	dataOff, dataLen   uint64
	auxOff, auxLen     uint64
	nullsOff, nullsLen uint64
}

// segHeader is the decoded header of a segment file.
type segHeader struct {
	rows   int
	schema schema.Schema
	zone   colbatch.Zone
	tsOff  uint64
	teOff  uint64
	cols   []colRegion
}

// hostLittleEndian reports whether int64/float64 regions can alias
// file bytes directly.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// EncodeSegment serializes a batch (no selection vector) into the
// segment file format, including its zone map. The encoding is
// deterministic: the same batch always produces the same bytes (the
// golden-file tests depend on this).
func EncodeSegment(b *colbatch.Batch) []byte {
	if b.Sel != nil {
		panic("storage: EncodeSegment over a selection")
	}
	rows := b.Len()
	zone := colbatch.ZoneOf(b)

	// Payload regions are laid out before the header is sized: offsets
	// are absolute, so the payload base (preamble + header length) must
	// be known first. Encode the header twice: once with zero offsets to
	// learn its length, then for real.
	type regionData struct {
		data, aux, nulls []byte
	}
	regions := make([]regionData, len(b.Cols))
	encs := make([]uint8, len(b.Cols))
	for c := range b.Cols {
		v := &b.Cols[c]
		var r regionData
		switch {
		case is(v.IntsRaw()):
			xs, _ := v.IntsRaw()
			encs[c] = encInt
			r.data = appendInt64s(nil, xs)
		case isF(v.FloatsRaw()):
			xs, _ := v.FloatsRaw()
			encs[c] = encFloat
			r.data = appendFloat64s(nil, xs)
		case isS(v.StrsRaw()):
			xs, _ := v.StrsRaw()
			encs[c] = encStr
			r.aux, r.data = encodeOffsets(len(xs), func(i int) []byte { return []byte(xs[i]) })
		case isB(v.BoolsRaw()):
			xs, _ := v.BoolsRaw()
			encs[c] = encBool
			r.data = make([]byte, len(xs))
			for i, x := range xs {
				if x {
					r.data[i] = 1
				}
			}
		case isIv(v.IntervalsRaw()):
			ts, te, _ := v.IntervalsRaw()
			encs[c] = encInterval
			r.data = appendInt64s(nil, ts)
			r.aux = appendInt64s(nil, te)
		default:
			xs, _ := v.AnyRaw()
			encs[c] = encAny
			var e enc
			r.aux, r.data = encodeOffsets(len(xs), func(i int) []byte {
				e.b = e.b[:0]
				e.val(xs[i])
				return e.b
			})
		}
		if bm := v.NullBitmap(); bm != nil {
			r.nulls = appendUint64s(nil, bm)
		}
		regions[c] = r
	}
	tsRegion := appendInt64s(nil, b.TS)
	teRegion := appendInt64s(nil, b.TE)

	layout := func(payloadBase uint64) (hdr segHeader, payload []byte) {
		hdr = segHeader{rows: rows, schema: b.Schema, zone: zone, cols: make([]colRegion, len(b.Cols))}
		place := func(region []byte) uint64 {
			for uint64(len(payload))%8 != 0 {
				payload = append(payload, 0)
			}
			off := payloadBase + uint64(len(payload))
			payload = append(payload, region...)
			return off
		}
		hdr.tsOff = place(tsRegion)
		hdr.teOff = place(teRegion)
		for c, r := range regions {
			cr := colRegion{enc: encs[c], dataLen: uint64(len(r.data)), auxLen: uint64(len(r.aux)), nullsLen: uint64(len(r.nulls))}
			cr.dataOff = place(r.data)
			cr.auxOff = place(r.aux)
			cr.nullsOff = place(r.nulls)
			hdr.cols[c] = cr
		}
		return hdr, payload
	}

	// Pass 1 sizes the header; pass 2 uses the resulting payload base.
	// The header length is offset-independent (offsets are fixed u64s).
	probeHdr, _ := layout(0)
	hdrLen := len(encodeSegHeader(probeHdr))
	preamble := len(segMagic) + 8 // magic + version + body length
	base := uint64(preamble + hdrLen)
	for base%8 != 0 {
		base++ // header is padded so the payload starts aligned
	}
	hdr, payload := layout(base)
	body := encodeSegHeader(hdr)
	for uint64(preamble+len(body))%8 != 0 {
		body = append(body, 0)
	}
	body = append(body, payload...)
	return frame(segMagic, SegmentVersion, body)
}

// Tiny ok-adapters so the encoder switch reads as layout dispatch.
func is(_ []int64, ok bool) bool      { return ok }
func isF(_ []float64, ok bool) bool   { return ok }
func isS(_ []string, ok bool) bool    { return ok }
func isB(_ []bool, ok bool) bool      { return ok }
func isIv(_, _ []int64, ok bool) bool { return ok }

func appendInt64s(dst []byte, xs []int64) []byte {
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
	}
	return dst
}

func appendFloat64s(dst []byte, xs []float64) []byte {
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

func appendUint64s(dst []byte, xs []uint64) []byte {
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, x)
	}
	return dst
}

// encodeOffsets builds the (rows+1)-entry u32 offset region plus the
// concatenated blob for variable-width cells.
func encodeOffsets(n int, cell func(i int) []byte) (aux, data []byte) {
	aux = binary.LittleEndian.AppendUint32(aux, 0)
	for i := 0; i < n; i++ {
		data = append(data, cell(i)...)
		aux = binary.LittleEndian.AppendUint32(aux, uint32(len(data)))
	}
	return aux, data
}

// encodeSegHeader serializes the header section.
func encodeSegHeader(h segHeader) []byte {
	var e enc
	e.u32(uint32(h.rows))
	e.u16(uint16(len(h.schema.Attrs)))
	for _, a := range h.schema.Attrs {
		e.str(a.Name)
		e.u8(uint8(a.Type))
	}
	encodeZone(&e, h.zone)
	e.u64(h.tsOff)
	e.u64(h.teOff)
	for _, c := range h.cols {
		e.u8(c.enc)
		e.u64(c.dataOff)
		e.u64(c.dataLen)
		e.u64(c.auxOff)
		e.u64(c.auxLen)
		e.u64(c.nullsOff)
		e.u64(c.nullsLen)
	}
	return e.b
}

func encodeZone(e *enc, z colbatch.Zone) {
	e.u32(uint32(z.Rows))
	e.i64(z.MinTS)
	e.i64(z.MaxTS)
	e.i64(z.MinTE)
	e.i64(z.MaxTE)
	for _, c := range z.Cols {
		e.val(c.Min)
		e.val(c.Max)
		e.u32(uint32(c.Nulls))
	}
}

func decodeZone(d *dec, cols int) colbatch.Zone {
	z := colbatch.Zone{Rows: int(d.u32())}
	z.MinTS = d.i64()
	z.MaxTS = d.i64()
	z.MinTE = d.i64()
	z.MaxTE = d.i64()
	z.Cols = make([]colbatch.ZoneCol, cols)
	for i := range z.Cols {
		z.Cols[i].Min = d.val()
		z.Cols[i].Max = d.val()
		z.Cols[i].Nulls = int(d.u32())
	}
	return z
}

// DecodeSegment parses a segment file into a batch plus its zone map.
// When data is a memory-mapped region on a little-endian host, the
// int64/float64 columns, the TS/TE arrays and the validity bitmaps
// alias the mapping directly (zero copy); strings, bools and boxed
// cells are decoded onto the heap. The batch is read-only and valid
// only while data stays mapped.
func DecodeSegment(data []byte) (*colbatch.Batch, colbatch.Zone, error) {
	body, err := unframe(segMagic, SegmentVersion, data, "segment")
	if err != nil {
		return nil, colbatch.Zone{}, err
	}
	d := &dec{b: body, what: "segment header"}
	rows := int(d.u32())
	ncols := int(d.u16())
	if d.err != nil {
		return nil, colbatch.Zone{}, d.err
	}
	if rows < 0 || rows > len(data) {
		return nil, colbatch.Zone{}, corruptf("segment header: row count %d exceeds file size", rows)
	}
	if ncols > math.MaxUint16 || 7*ncols > len(body) {
		return nil, colbatch.Zone{}, corruptf("segment header: column count %d exceeds header size", ncols)
	}
	attrs := make([]schema.Attr, ncols)
	for i := range attrs {
		attrs[i].Name = d.str()
		attrs[i].Type = value.Kind(d.u8())
		if attrs[i].Type > value.KindInterval {
			return nil, colbatch.Zone{}, corruptf("segment header: column %d has unknown kind %d", i, attrs[i].Type)
		}
	}
	zone := decodeZone(d, ncols)
	hdr := segHeader{rows: rows, schema: schema.Schema{Attrs: attrs}, zone: zone}
	hdr.tsOff = d.u64()
	hdr.teOff = d.u64()
	hdr.cols = make([]colRegion, ncols)
	for i := range hdr.cols {
		c := &hdr.cols[i]
		c.enc = d.u8()
		c.dataOff = d.u64()
		c.dataLen = d.u64()
		c.auxOff = d.u64()
		c.auxLen = d.u64()
		c.nullsOff = d.u64()
		c.nullsLen = d.u64()
	}
	if d.err != nil {
		return nil, colbatch.Zone{}, d.err
	}
	if zone.Rows != rows {
		return nil, colbatch.Zone{}, corruptf("segment header: zone rows %d != segment rows %d", zone.Rows, rows)
	}

	// region bounds-checks a payload region and returns its bytes.
	// The file-level CRC already vouches for content; this guards
	// against malformed offsets pointing outside the checked bytes.
	region := func(off, length uint64, what string) ([]byte, error) {
		end := uint64(len(data)) - 4 // the trailing CRC is not payload
		if off%8 != 0 {
			return nil, corruptf("segment: %s region at offset %d is not 8-byte aligned", what, off)
		}
		if off > end || length > end-off {
			return nil, corruptf("segment: %s region [%d, +%d) exceeds file payload [0, %d)", what, off, length, end)
		}
		return data[off : off+length], nil
	}
	tsb, err := region(hdr.tsOff, uint64(rows)*8, "ts")
	if err != nil {
		return nil, colbatch.Zone{}, err
	}
	teb, err := region(hdr.teOff, uint64(rows)*8, "te")
	if err != nil {
		return nil, colbatch.Zone{}, err
	}
	ts := decodeInt64s(tsb, rows)
	te := decodeInt64s(teb, rows)

	cols := make([]colbatch.Vec, ncols)
	for i := range cols {
		c := hdr.cols[i]
		name := attrs[i].Name
		var nulls []uint64
		if c.nullsLen != 0 {
			want := uint64((rows + 63) / 64 * 8)
			if c.nullsLen > want {
				return nil, colbatch.Zone{}, corruptf("segment: column %q bitmap is %d bytes, want at most %d", name, c.nullsLen, want)
			}
			nb, err := region(c.nullsOff, c.nullsLen, name+" bitmap")
			if err != nil {
				return nil, colbatch.Zone{}, err
			}
			nulls = decodeUint64s(nb, int(c.nullsLen/8))
		}
		db, err := region(c.dataOff, c.dataLen, name+" data")
		if err != nil {
			return nil, colbatch.Zone{}, err
		}
		ab, err := region(c.auxOff, c.auxLen, name+" aux")
		if err != nil {
			return nil, colbatch.Zone{}, err
		}
		vec, err := decodeColumn(c.enc, attrs[i].Type, name, rows, db, ab, nulls)
		if err != nil {
			return nil, colbatch.Zone{}, err
		}
		cols[i] = vec
	}
	return colbatch.NewFromParts(hdr.schema, cols, ts, te), zone, nil
}

// decodeColumn reverses one column region pair into a Vec. Typed
// encodings must match the declared schema kind; boxed cells (encAny)
// are legal for any declared kind — that is how demoted heterogeneous
// and untyped columns persist.
func decodeColumn(colEnc uint8, kind value.Kind, name string, rows int, data, aux []byte, nulls []uint64) (colbatch.Vec, error) {
	var zero colbatch.Vec
	wantKind := map[uint8]value.Kind{
		encInt: value.KindInt, encFloat: value.KindFloat, encStr: value.KindString,
		encBool: value.KindBool, encInterval: value.KindInterval,
	}
	if k, typed := wantKind[colEnc]; typed && k != kind {
		return zero, corruptf("segment: column %q declared %s but stored with encoding %d", name, kind, colEnc)
	}
	fixed := func(b []byte, width int, what string) error {
		if len(b) != rows*width {
			return corruptf("segment: column %q %s region is %d bytes, want %d", name, what, len(b), rows*width)
		}
		return nil
	}
	switch colEnc {
	case encInt:
		if err := fixed(data, 8, "data"); err != nil {
			return zero, err
		}
		return colbatch.VecFromInts(decodeInt64s(data, rows), nulls), nil
	case encFloat:
		if err := fixed(data, 8, "data"); err != nil {
			return zero, err
		}
		return colbatch.VecFromFloats(decodeFloat64s(data, rows), nulls), nil
	case encBool:
		if err := fixed(data, 1, "data"); err != nil {
			return zero, err
		}
		xs := make([]bool, rows)
		for i, b := range data {
			xs[i] = b != 0
		}
		return colbatch.VecFromBools(xs, nulls), nil
	case encInterval:
		if err := fixed(data, 8, "data"); err != nil {
			return zero, err
		}
		if err := fixed(aux, 8, "aux"); err != nil {
			return zero, err
		}
		return colbatch.VecFromIntervals(decodeInt64s(data, rows), decodeInt64s(aux, rows), nulls), nil
	case encStr:
		cells, err := splitOffsets(name, rows, data, aux)
		if err != nil {
			return zero, err
		}
		xs := make([]string, rows)
		for i, c := range cells {
			xs[i] = string(c)
		}
		return colbatch.VecFromStrs(xs, nulls), nil
	case encAny:
		cells, err := splitOffsets(name, rows, data, aux)
		if err != nil {
			return zero, err
		}
		xs := make([]value.Value, rows)
		for i, c := range cells {
			cd := &dec{b: c, what: "segment cell"}
			xs[i] = cd.val()
			if err := cd.done(); err != nil {
				return zero, corruptf("segment: column %q row %d: %v", name, i, err)
			}
		}
		return colbatch.VecFromAny(kind, xs), nil
	default:
		return zero, corruptf("segment: column %q has unknown encoding %d", name, colEnc)
	}
}

// splitOffsets slices variable-width cell storage by its offset region.
func splitOffsets(name string, rows int, data, aux []byte) ([][]byte, error) {
	if len(aux) != (rows+1)*4 {
		return nil, corruptf("segment: column %q offset region is %d bytes, want %d", name, len(aux), (rows+1)*4)
	}
	cells := make([][]byte, rows)
	prev := binary.LittleEndian.Uint32(aux)
	if prev != 0 {
		return nil, corruptf("segment: column %q offsets do not start at 0", name)
	}
	for i := 0; i < rows; i++ {
		next := binary.LittleEndian.Uint32(aux[(i+1)*4:])
		if next < prev || next > uint32(len(data)) {
			return nil, corruptf("segment: column %q offset %d (%d) out of order or out of range", name, i+1, next)
		}
		cells[i] = data[prev:next]
		prev = next
	}
	return cells, nil
}

// decodeInt64s aliases b as []int64 when the host allows zero-copy,
// else copies.
func decodeInt64s(b []byte, n int) []int64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func decodeFloat64s(b []byte, n int) []float64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func decodeUint64s(b []byte, n int) []uint64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}
