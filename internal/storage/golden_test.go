package storage

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"talign/internal/colbatch"
	"talign/internal/interval"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// goldenRelation is a small fixed relation covering every column
// encoding: int, float, string, bool, demoted (Any) and ω cells.
func goldenRelation() *relation.Relation {
	sch := schema.MustNew(
		schema.Attr{Name: "id", Type: value.KindInt},
		schema.Attr{Name: "w", Type: value.KindFloat},
		schema.Attr{Name: "tag", Type: value.KindString},
		schema.Attr{Name: "ok", Type: value.KindBool},
		schema.Attr{Name: "mix", Type: value.KindInt},
	)
	rel := relation.New(sch)
	rows := []struct {
		id  value.Value
		w   value.Value
		tag value.Value
		ok  value.Value
		mix value.Value
		ts  int64
		te  int64
	}{
		{value.NewInt(1), value.NewFloat(0.5), value.NewString("alpha"), value.NewBool(true), value.NewInt(10), 0, 5},
		{value.NewInt(2), value.NewFloat(-1.25), value.NewString(""), value.NewBool(false), value.NewFloat(2.5), 3, 9},
		{value.Null, value.Null, value.Null, value.Null, value.Null, 5, 6},
		{value.NewInt(4), value.NewFloat(3e18), value.NewString("δ (utf-8)"), value.NewBool(true), value.NewFloat(7.75), 7, 12},
	}
	for _, r := range rows {
		rel.MustAppend(tuple.Tuple{
			Vals: []value.Value{r.id, r.w, r.tag, r.ok, r.mix},
			T:    interval.New(r.ts, r.te),
		})
	}
	return rel
}

// goldenManifest is a fixed manifest with two tables.
func goldenManifest() *manifest {
	rel := goldenRelation()
	b := rel.Columnar()
	z := colbatch.ZoneOf(b)
	return &manifest{
		seq:       7,
		nextSegID: 3,
		tables: map[string]*tableMeta{
			"empty": {name: "empty", schema: schema.MustNew(schema.Attr{Name: "x", Type: value.KindInt})},
			"g": {name: "g", schema: rel.Schema, segs: []segMeta{
				{file: "seg-00000001.tsg", rows: b.Len(), zone: z},
			}},
		},
	}
}

// TestSegmentGolden pins the on-disk segment encoding byte-for-byte:
// any codec change that breaks compatibility with existing data
// directories fails here before it ships. Regenerate deliberately with
// go test ./internal/storage -run Golden -update.
func TestSegmentGolden(t *testing.T) {
	got := EncodeSegment(goldenRelation().Columnar())
	path := filepath.Join("testdata", "segment_v1.tsg")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("segment encoding drifted from golden fixture: %d bytes vs %d; if intentional, bump SegmentVersion and regenerate with -update",
			len(got), len(want))
	}
	// The fixture itself must decode to the source rows.
	dec, _, err := DecodeSegment(want)
	if err != nil {
		t.Fatalf("decoding golden fixture: %v", err)
	}
	src := goldenRelation().Columnar()
	for i := 0; i < src.Len(); i++ {
		if string(src.AppendRowKey(nil, i)) != string(dec.AppendRowKey(nil, i)) {
			t.Fatalf("golden fixture row %d drifted", i)
		}
	}
}

// TestManifestGolden pins the manifest encoding byte-for-byte.
func TestManifestGolden(t *testing.T) {
	got := encodeManifest(goldenManifest())
	path := filepath.Join("testdata", "manifest_v1.tsm")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("manifest encoding drifted from golden fixture: %d bytes vs %d; if intentional, bump ManifestVersion and regenerate with -update",
			len(got), len(want))
	}
	m, err := decodeManifest(want)
	if err != nil {
		t.Fatalf("decoding golden fixture: %v", err)
	}
	if m.seq != 7 || m.nextSegID != 3 || len(m.tables) != 2 {
		t.Fatalf("golden manifest decoded to %+v", m)
	}
}

// TestVersionedMagicRejection proves forward-incompatible data is
// refused with structured errors, never misread: a bumped version
// yields ErrVersion, a wrong magic or flipped payload byte ErrCorrupt.
func TestVersionedMagicRejection(t *testing.T) {
	seg := EncodeSegment(goldenRelation().Columnar())

	flip := func(data []byte, off int, to byte) []byte {
		c := append([]byte(nil), data...)
		c[off] = to
		return c
	}

	// Version byte (u32 LE right after the 8-byte magic) bumped to 2.
	if _, _, err := DecodeSegment(flip(seg, 8, 2)); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
	// Wrong magic.
	if _, _, err := DecodeSegment(flip(seg, 0, 'X')); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
	// A flipped payload byte breaks the checksum.
	if _, _, err := DecodeSegment(flip(seg, len(seg)/2, seg[len(seg)/2]^0xff)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: got %v, want ErrCorrupt", err)
	}
	// Truncation at any point is corruption, not a panic.
	for _, n := range []int{0, 4, 8, 12, 16, len(seg) / 2, len(seg) - 1} {
		if _, _, err := DecodeSegment(seg[:n]); err == nil {
			t.Fatalf("truncated to %d bytes decoded successfully", n)
		}
	}

	man := encodeManifest(goldenManifest())
	if _, err := decodeManifest(flip(man, 8, 2)); !errors.Is(err, ErrVersion) {
		t.Fatalf("future manifest version: got %v, want ErrVersion", err)
	}
	if _, err := decodeManifest(flip(man, 0, 'X')); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad manifest magic: got %v, want ErrCorrupt", err)
	}
}
