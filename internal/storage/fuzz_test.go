package storage

import (
	"errors"
	"testing"
)

// fuzzSeeds builds the corpus both decoders start from: a valid
// encoding plus systematic corruptions of it (truncations, version and
// magic flips, payload bit flips), so the fuzzer starts at the
// interesting boundaries instead of random noise.
func fuzzSeeds(f *testing.F, valid []byte) {
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("TALIGNSG"))
	f.Add([]byte("TALIGNMF"))
	for _, n := range []int{4, 8, 12, 16, len(valid) / 2, len(valid) - 1} {
		if n >= 0 && n <= len(valid) {
			f.Add(valid[:n])
		}
	}
	for _, off := range []int{0, 8, 12, len(valid) / 2, len(valid) - 1} {
		c := append([]byte(nil), valid...)
		c[off] ^= 0xff
		f.Add(c)
	}
}

// FuzzDecodeSegment: DecodeSegment must never panic and never return a
// batch on malformed input — every failure is a structured error
// wrapping ErrCorrupt or ErrVersion (which the server surfaces as the
// wire code "internal").
func FuzzDecodeSegment(f *testing.F) {
	fuzzSeeds(f, EncodeSegment(goldenRelation().Columnar()))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, zone, err := DecodeSegment(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("unstructured decode error: %v", err)
			}
			if b != nil {
				t.Fatal("error with non-nil batch")
			}
			return
		}
		if b.Len() != zone.Rows {
			t.Fatalf("batch rows %d != zone rows %d", b.Len(), zone.Rows)
		}
		// A successful decode must survive row-key extraction (the read
		// path queries run) without panicking.
		for i := 0; i < b.Len(); i++ {
			b.AppendRowKey(nil, i)
		}
	})
}

// FuzzDecodeManifest: same contract for the manifest decoder.
func FuzzDecodeManifest(f *testing.F) {
	fuzzSeeds(f, encodeManifest(goldenManifest()))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("unstructured decode error: %v", err)
			}
			return
		}
		for name, tm := range m.tables {
			if name == "" || tm == nil {
				t.Fatalf("decoded manifest holds empty/nil table entry")
			}
		}
	})
}
