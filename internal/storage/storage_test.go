package storage

import (
	"os"
	"path/filepath"
	"testing"

	"talign/internal/colbatch"
	"talign/internal/interval"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// mixedRelation builds a relation exercising every column layout:
// ints, floats, strings, bools, an untyped column, a demoted numeric
// column, and ω cells scattered through all of them.
func mixedRelation(t *testing.T) *relation.Relation {
	t.Helper()
	sch := schema.MustNew(
		schema.Attr{Name: "i", Type: value.KindInt},
		schema.Attr{Name: "f", Type: value.KindFloat},
		schema.Attr{Name: "s", Type: value.KindString},
		schema.Attr{Name: "b", Type: value.KindBool},
		schema.Attr{Name: "mix", Type: value.KindInt}, // demotes via float
	)
	rel := relation.New(sch)
	vals := func(i int) []value.Value {
		row := []value.Value{
			value.NewInt(int64(i)),
			value.NewFloat(float64(i) / 2),
			value.NewString(string(rune('a' + i%26))),
			value.NewBool(i%2 == 0),
			value.NewInt(int64(i)),
		}
		if i%5 == 0 {
			row[0] = value.Null
		}
		if i%7 == 0 {
			row[2] = value.Null
		}
		if i%3 == 0 {
			row[4] = value.NewFloat(float64(i) + 0.5)
		}
		return row
	}
	for i := 0; i < 100; i++ {
		rel.MustAppend(tuple.Tuple{Vals: vals(i), T: interval.New(int64(i), int64(i+10))})
	}
	return rel
}

func TestSegmentRoundTrip(t *testing.T) {
	rel := mixedRelation(t)
	batch := rel.Columnar()
	data := EncodeSegment(batch)
	got, zone, err := DecodeSegment(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Len() != batch.Len() {
		t.Fatalf("rows: got %d, want %d", got.Len(), batch.Len())
	}
	if zone.Rows != batch.Len() || zone.MinTS != 0 || zone.MaxTS != 99 || zone.MinTE != 10 || zone.MaxTE != 109 {
		t.Fatalf("zone: %+v", zone)
	}
	back := relation.New(rel.Schema)
	back.Tuples = got.Materialize(nil)
	if !relation.SetEqual(rel, back) {
		a, b := relation.Diff(rel, back)
		t.Fatalf("round trip changed rows: onlyA=%v onlyB=%v", a, b)
	}
	// Decoding is also key-exact, not just set-equal.
	for i := 0; i < batch.Len(); i++ {
		a := batch.AppendRowKey(nil, i)
		b := got.AppendRowKey(nil, i)
		if string(a) != string(b) {
			t.Fatalf("row %d key drifted", i)
		}
	}
}

func TestStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	rel := mixedRelation(t)

	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s.SegmentRows = 16
	if err := s.CreateTable("m", rel); err != nil {
		t.Fatalf("create: %v", err)
	}
	extra := []tuple.Tuple{{Vals: []value.Value{
		value.NewInt(1000), value.NewFloat(1), value.NewString("zz"), value.NewBool(true), value.NewInt(7),
	}, T: interval.New(500, 600)}}
	if err := s.Append("m", extra); err != nil {
		t.Fatalf("append: %v", err)
	}
	loaded, err := s.Load("m")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	want := relation.New(rel.Schema)
	want.Tuples = append(append(want.Tuples, rel.Tuples...), extra...)
	if !relation.SetEqual(want, loaded) {
		a, b := relation.Diff(want, loaded)
		t.Fatalf("pre-restart load: onlyA=%v onlyB=%v", a, b)
	}
	if segs := loaded.Segments(); len(segs) != 100/16+1+1 {
		t.Fatalf("segments: got %d, want %d", len(segs), 100/16+2)
	}

	// Reopen without checkpoint: WAL replay must restore both the
	// CreateTable and the Append.
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	loaded2, err := s2.Load("m")
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if !relation.SetEqual(want, loaded2) {
		a, b := relation.Diff(want, loaded2)
		t.Fatalf("post-restart load: onlyA=%v onlyB=%v", a, b)
	}

	// Checkpoint folds the pending row into a segment and truncates
	// the WAL; a third open must see identical data with no replay.
	if err := s2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if st, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || st.Size() != 0 {
		t.Fatalf("wal after checkpoint: %v / %d bytes", err, st.Size())
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatalf("open 3: %v", err)
	}
	defer s3.Close()
	loaded3, err := s3.Load("m")
	if err != nil {
		t.Fatalf("load 3: %v", err)
	}
	if !relation.SetEqual(want, loaded3) {
		a, b := relation.Diff(want, loaded3)
		t.Fatalf("post-checkpoint load: onlyA=%v onlyB=%v", a, b)
	}

	// DropTable removes the table and its files.
	if err := s3.DropTable("m"); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if _, err := s3.Load("m"); err == nil {
		t.Fatal("load after drop succeeded")
	}
	if names := s3.Tables(); len(names) != 0 {
		t.Fatalf("tables after drop: %v", names)
	}
}

func TestZoneMapsSurviveManifest(t *testing.T) {
	dir := t.TempDir()
	rel := mixedRelation(t)
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s.SegmentRows = 25
	if err := s.CreateTable("m", rel); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	loaded, err := s2.Load("m")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	segs := loaded.Segments()
	if len(segs) != 4 {
		t.Fatalf("got %d segments, want 4", len(segs))
	}
	// CreateTable sorts by TS, so the four zones partition [0, 100)
	// into consecutive TS ranges.
	for i, sg := range segs {
		if sg.Zone.Rows != 25 {
			t.Fatalf("segment %d zone rows %d", i, sg.Zone.Rows)
		}
		if want := int64(i * 25); sg.Zone.MinTS != want {
			t.Fatalf("segment %d MinTS %d, want %d", i, sg.Zone.MinTS, want)
		}
		if want := int64(i*25 + 24); sg.Zone.MaxTS != want {
			t.Fatalf("segment %d MaxTS %d, want %d", i, sg.Zone.MaxTS, want)
		}
		// The zone decoded from disk matches one recomputed in memory.
		if got := colbatch.ZoneOf(sg.Img); got.MinTS != sg.Zone.MinTS || got.MaxTS != sg.Zone.MaxTS ||
			got.MinTE != sg.Zone.MinTE || got.MaxTE != sg.Zone.MaxTE {
			t.Fatalf("segment %d zone drifted: disk %+v, memory %+v", i, sg.Zone, got)
		}
	}
}
