//go:build linux || darwin

package storage

import (
	"os"
	"syscall"
)

// mmapFile maps a file read-only. The mapping stays valid until
// munmapFile; the Store owns that lifetime and releases every mapping
// on Close.
func mmapFile(f *os.File) ([]byte, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
