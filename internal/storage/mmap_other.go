//go:build !linux && !darwin

package storage

import (
	"io"
	"os"
)

// mmapFile on platforms without the syscall mmap shim reads the file
// onto the heap; the decoder works identically, just without the
// zero-copy aliasing.
func mmapFile(f *os.File) ([]byte, error) {
	return io.ReadAll(f)
}

func munmapFile([]byte) error { return nil }
