package storage

import (
	"math/rand"
	"testing"

	"talign/internal/faultinject"
	"talign/internal/interval"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// faultSites are the storage-layer kill points the torture test crashes
// at: every site the write paths pass through.
var faultSites = []string{
	"storage.seg.write",
	"storage.seg.sync",
	"storage.wal.append",
	"storage.wal.torn",
	"storage.wal.sync",
	"storage.wal.truncate",
	"storage.manifest.write",
	"storage.manifest.rename",
	"storage.checkpoint",
}

var tortureSchema = schema.MustNew(
	schema.Attr{Name: "a", Type: value.KindInt},
	schema.Attr{Name: "s", Type: value.KindString},
)

// randRows builds deterministic random rows for the torture oracle.
func randRows(rng *rand.Rand, n int) []tuple.Tuple {
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		ts := rng.Int63n(1000)
		a := value.NewInt(rng.Int63n(50))
		if rng.Intn(8) == 0 {
			a = value.Null
		}
		rows[i] = tuple.Tuple{
			Vals: []value.Value{a, value.NewString(string(rune('a' + rng.Intn(26))))},
			T:    interval.New(ts, ts+1+rng.Int63n(40)),
		}
	}
	return rows
}

// oracle is the in-memory reference: the rows of every acknowledged
// table.
type oracle map[string][]tuple.Tuple

func (o oracle) clone() oracle {
	c := make(oracle, len(o))
	for k, v := range o {
		c[k] = append([]tuple.Tuple(nil), v...)
	}
	return c
}

// asRelation materializes one oracle table for comparison.
func (o oracle) asRelation(name string) *relation.Relation {
	rel := relation.New(tortureSchema)
	rel.Tuples = append(rel.Tuples, o[name]...)
	return rel
}

// storeMatches reports whether the reopened store serves exactly the
// oracle's tables and rows.
func storeMatches(t *testing.T, s *Store, o oracle) bool {
	t.Helper()
	names := s.Tables()
	if len(names) != len(o) {
		return false
	}
	for _, name := range names {
		want, ok := o[name]
		if !ok {
			return false
		}
		got, err := s.Load(name)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		wantRel := relation.New(tortureSchema)
		wantRel.Tuples = append(wantRel.Tuples, want...)
		if !relation.SetEqual(got, wantRel) {
			return false
		}
	}
	return true
}

// TestCrashRecoveryTorture drives a random operation mix (create,
// append, drop, checkpoint, restart) against a store while injecting a
// failure at a random storage kill point every few steps, then
// simulates a crash (close without checkpoint, reset faults, reopen)
// and checks the crash-consistency contract against an in-memory
// oracle:
//
//   - atomicity: the reopened store equals either the oracle BEFORE the
//     failed operation or AFTER it — never a partial state;
//   - durability: every operation acknowledged before the failure is
//     still visible.
func TestCrashRecoveryTorture(t *testing.T) {
	defer faultinject.Reset()
	tables := []string{"t0", "t1", "t2"}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("seed %d: open: %v", seed, err)
		}
		s.SegmentRows = 8
		committed := oracle{}

		reopen := func() {
			s.Close()
			faultinject.Reset()
			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("seed %d: reopen: %v", seed, err)
			}
			s2.SegmentRows = 8
			s = s2
		}

		for step := 0; step < 120; step++ {
			name := tables[rng.Intn(len(tables))]
			inject := rng.Intn(3) == 0
			site := ""
			if inject {
				site = faultSites[rng.Intn(len(faultSites))]
				faultinject.Arm(site, faultinject.Fault{Kind: faultinject.KindError})
			}

			// Pick and run one operation. applied is the state the
			// operation MEANT to produce — tracked even when the call
			// errors, because a failed fsync can still leave the record
			// durable (the bytes reached the file).
			applied := committed.clone()
			var opErr error
			switch op := rng.Intn(10); {
			case op < 4: // create (replacing tables is not allowed; drop first)
				if _, exists := committed[name]; exists {
					delete(applied, name)
					opErr = s.DropTable(name)
					break
				}
				rows := randRows(rng, 1+rng.Intn(40))
				rel := relation.New(tortureSchema)
				rel.Tuples = rows
				applied[name] = rows
				opErr = s.CreateTable(name, rel)
			case op < 8: // append
				if _, exists := committed[name]; !exists {
					break
				}
				rows := randRows(rng, 1+rng.Intn(10))
				applied[name] = append(applied[name], rows...)
				opErr = s.Append(name, rows)
			case op < 9: // checkpoint: no logical data change either way
				opErr = s.Checkpoint()
			default: // clean restart
				reopen()
				if !storeMatches(t, s, committed) {
					t.Fatalf("seed %d step %d: clean restart diverged from oracle", seed, step)
				}
			}

			if opErr != nil {
				// The operation failed (injected or cascading). Crash and
				// reopen: the store must be wholly before or wholly after
				// the failed operation.
				reopen()
				matchCommitted := storeMatches(t, s, committed)
				matchApplied := storeMatches(t, s, applied)
				if !matchCommitted && !matchApplied {
					t.Fatalf("seed %d step %d: after injected failure at %s the store matches neither pre- nor post-op oracle",
						seed, step, site)
				}
				if matchApplied && !matchCommitted {
					// The operation turned out durable after all (e.g. a
					// failed fsync whose bytes still reached the file).
					committed = applied
				}
				continue
			}
			committed = applied
			faultinject.Reset()
		}

		// Final verdict: a clean close and reopen serves exactly the
		// acknowledged state.
		reopen()
		if !storeMatches(t, s, committed) {
			t.Fatalf("seed %d: final state diverged from oracle", seed)
		}
		s.Close()
	}
}

// TestTornWALTailTruncated pins the torn-write behavior precisely: an
// append that crashes mid-record leaves a torn tail, replay stops
// before it, the tail is truncated, and the log keeps working.
func TestTornWALTailTruncated(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s.SegmentRows = 8
	rng := rand.New(rand.NewSource(42))
	base := randRows(rng, 20)
	rel := relation.New(tortureSchema)
	rel.Tuples = base
	if err := s.CreateTable("t", rel); err != nil {
		t.Fatalf("create: %v", err)
	}

	faultinject.Arm("storage.wal.torn", faultinject.Fault{Kind: faultinject.KindError})
	if err := s.Append("t", randRows(rng, 5)); err == nil {
		t.Fatal("append with torn WAL write succeeded")
	}
	s.Close()
	faultinject.Reset()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer s2.Close()
	got, err := s2.Load("t")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	want := relation.New(tortureSchema)
	want.Tuples = append(want.Tuples, base...)
	if !relation.SetEqual(got, want) {
		t.Fatal("torn append leaked rows (or lost committed ones)")
	}

	// The truncated log must accept and replay new records.
	extra := randRows(rng, 3)
	if err := s2.Append("t", extra); err != nil {
		t.Fatalf("append after torn-tail truncation: %v", err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer s3.Close()
	got3, err := s3.Load("t")
	if err != nil {
		t.Fatalf("load 3: %v", err)
	}
	want.Tuples = append(want.Tuples, extra...)
	if !relation.SetEqual(got3, want) {
		t.Fatal("append after truncation not durable")
	}
}
