package storage

import (
	"os"
	"path/filepath"
	"sort"

	"talign/internal/colbatch"
	"talign/internal/faultinject"
	"talign/internal/schema"
	"talign/internal/value"
)

// segMeta describes one committed segment of a table: the file that
// holds it, its row count, and its zone map (duplicated here so the
// planner prunes without touching segment files).
type segMeta struct {
	file string
	rows int
	zone colbatch.Zone
}

// tableMeta is one table's durable state.
type tableMeta struct {
	name   string
	schema schema.Schema
	segs   []segMeta
}

// manifest is the decoded catalog manifest: the durable table set as of
// sequence number seq, plus the next unused segment file id. WAL
// records with sequence numbers > seq apply on top.
type manifest struct {
	seq       uint64
	nextSegID uint64
	tables    map[string]*tableMeta
}

func newManifest() *manifest {
	return &manifest{tables: make(map[string]*tableMeta)}
}

// encodeManifest serializes the manifest deterministically (tables in
// sorted name order).
func encodeManifest(m *manifest) []byte {
	var e enc
	e.u64(m.seq)
	e.u64(m.nextSegID)
	names := make([]string, 0, len(m.tables))
	for n := range m.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	e.u32(uint32(len(names)))
	for _, n := range names {
		t := m.tables[n]
		e.str(t.name)
		encodeSchema(&e, t.schema)
		e.u32(uint32(len(t.segs)))
		for _, sg := range t.segs {
			e.str(sg.file)
			e.u32(uint32(sg.rows))
			encodeZone(&e, sg.zone)
		}
	}
	return frame(manMagic, ManifestVersion, e.b)
}

func encodeSchema(e *enc, s schema.Schema) {
	e.u16(uint16(len(s.Attrs)))
	for _, a := range s.Attrs {
		e.str(a.Name)
		e.u8(uint8(a.Type))
	}
}

func decodeSchema(d *dec) schema.Schema {
	n := int(d.u16())
	if d.err != nil || n > len(d.b) {
		d.fail("schema arity %d exceeds buffer", n)
		return schema.Schema{}
	}
	attrs := make([]schema.Attr, n)
	for i := range attrs {
		attrs[i].Name = d.str()
		attrs[i].Type = value.Kind(d.u8())
		if attrs[i].Type > value.KindInterval {
			d.fail("attribute %d has unknown kind %d", i, attrs[i].Type)
		}
	}
	return schema.Schema{Attrs: attrs}
}

// decodeManifest parses a manifest file.
func decodeManifest(data []byte) (*manifest, error) {
	body, err := unframe(manMagic, ManifestVersion, data, "manifest")
	if err != nil {
		return nil, err
	}
	d := &dec{b: body, what: "manifest"}
	m := newManifest()
	m.seq = d.u64()
	m.nextSegID = d.u64()
	ntables := int(d.u32())
	if d.err != nil || ntables > len(body) {
		d.fail("table count %d exceeds buffer", ntables)
		return nil, d.err
	}
	for i := 0; i < ntables; i++ {
		t := &tableMeta{name: d.str()}
		t.schema = decodeSchema(d)
		nsegs := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if nsegs > len(body) {
			return nil, corruptf("manifest: table %q segment count %d exceeds buffer", t.name, nsegs)
		}
		t.segs = make([]segMeta, nsegs)
		for j := range t.segs {
			t.segs[j].file = d.str()
			t.segs[j].rows = int(d.u32())
			t.segs[j].zone = decodeZone(d, t.schema.Len())
		}
		if t.name == "" || m.tables[t.name] != nil {
			return nil, corruptf("manifest: empty or duplicate table name %q", t.name)
		}
		m.tables[t.name] = t
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// writeManifest persists the manifest atomically: temp file, fsync,
// rename over the live name, fsync the directory. Fault sites:
// storage.manifest.write (temp write+sync), storage.manifest.rename.
func writeManifest(dir string, m *manifest) error {
	if err := faultinject.Hit("storage.manifest.write"); err != nil {
		return err
	}
	tmp := filepath.Join(dir, "manifest.tmp")
	if err := writeFileSync(tmp, encodeManifest(m)); err != nil {
		return err
	}
	if err := faultinject.Hit("storage.manifest.rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "manifest.bin")); err != nil {
		return err
	}
	return syncDir(dir)
}

// writeFileSync writes a file and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creates within it are
// durable; best-effort on filesystems that reject directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}
