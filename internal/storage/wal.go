package storage

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"

	"talign/internal/faultinject"
	"talign/internal/interval"
	"talign/internal/tuple"
	"talign/internal/value"
)

// WAL record types.
const (
	walCreateTable = 1 // name, schema, segment list (the commit point of CreateTable)
	walDropTable   = 2 // name
	walAppend      = 3 // name, appended rows as tagged cells
)

// walRecord is one decoded WAL record.
type walRecord struct {
	seq  uint64
	typ  uint8
	name string
	// walCreateTable
	table tableMeta
	// walAppend
	rows []tuple.Tuple
}

// maxWALRecord bounds a single record; longer length prefixes are
// treated as corruption (they would otherwise allocate unboundedly).
const maxWALRecord = 1 << 30

// walWriter appends checksummed records to wal.log.
type walWriter struct {
	f *os.File
}

func openWAL(dir string) (*walWriter, error) {
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f}, nil
}

// append frames and durably appends one record payload. Fault sites:
// storage.wal.append fails before any bytes reach the file,
// storage.wal.torn fails after writing only a prefix of the record
// (simulating a crash mid-write), storage.wal.sync fails after the
// write but before the fsync that makes it durable.
func (w *walWriter) append(payload []byte) error {
	if err := faultinject.Hit("storage.wal.append"); err != nil {
		return err
	}
	rec := make([]byte, 0, 8+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)
	if err := faultinject.Hit("storage.wal.torn"); err != nil {
		w.f.Write(rec[:len(rec)/2])
		w.f.Sync()
		return err
	}
	if _, err := w.f.Write(rec); err != nil {
		return err
	}
	if err := faultinject.Hit("storage.wal.sync"); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *walWriter) close() error { return w.f.Close() }

// truncate empties the log after a checkpoint; fault site
// storage.wal.truncate fails before the truncation happens.
func (w *walWriter) truncate() error {
	if err := faultinject.Hit("storage.wal.truncate"); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	return w.f.Sync()
}

// encodeWALCreate builds a create-table record payload.
func encodeWALCreate(seq uint64, t *tableMeta) []byte {
	var e enc
	e.u64(seq)
	e.u8(walCreateTable)
	e.str(t.name)
	encodeSchema(&e, t.schema)
	e.u32(uint32(len(t.segs)))
	for _, sg := range t.segs {
		e.str(sg.file)
		e.u32(uint32(sg.rows))
		encodeZone(&e, sg.zone)
	}
	return e.b
}

// encodeWALDrop builds a drop-table record payload.
func encodeWALDrop(seq uint64, name string) []byte {
	var e enc
	e.u64(seq)
	e.u8(walDropTable)
	e.str(name)
	return e.b
}

// encodeWALAppend builds an append record payload: each row's valid
// time plus its attribute cells in tagged form.
func encodeWALAppend(seq uint64, name string, rows []tuple.Tuple) []byte {
	var e enc
	e.u64(seq)
	e.u8(walAppend)
	e.str(name)
	e.u32(uint32(len(rows)))
	if len(rows) == 0 {
		e.u16(0)
		return e.b
	}
	e.u16(uint16(len(rows[0].Vals)))
	for _, t := range rows {
		e.i64(t.T.Ts)
		e.i64(t.T.Te)
		for _, v := range t.Vals {
			e.val(v)
		}
	}
	return e.b
}

// decodeWALRecord parses one record payload.
func decodeWALRecord(payload []byte) (walRecord, error) {
	d := &dec{b: payload, what: "wal record"}
	var r walRecord
	r.seq = d.u64()
	r.typ = d.u8()
	r.name = d.str()
	switch r.typ {
	case walCreateTable:
		r.table.name = r.name
		r.table.schema = decodeSchema(d)
		nsegs := int(d.u32())
		if d.err == nil && nsegs > len(payload) {
			d.fail("segment count %d exceeds record", nsegs)
		}
		if d.err != nil {
			return r, d.err
		}
		r.table.segs = make([]segMeta, nsegs)
		for i := range r.table.segs {
			r.table.segs[i].file = d.str()
			r.table.segs[i].rows = int(d.u32())
			r.table.segs[i].zone = decodeZone(d, r.table.schema.Len())
		}
	case walDropTable:
	case walAppend:
		nrows := int(d.u32())
		ncols := int(d.u16())
		if d.err == nil && (nrows > len(payload) || ncols > len(payload)) {
			d.fail("row/column count %d/%d exceeds record", nrows, ncols)
		}
		if d.err != nil {
			return r, d.err
		}
		r.rows = make([]tuple.Tuple, 0, nrows)
		for i := 0; i < nrows; i++ {
			ts := d.i64()
			te := d.i64()
			vals := make([]value.Value, ncols)
			for c := range vals {
				vals[c] = d.val()
			}
			r.rows = append(r.rows, tuple.Tuple{Vals: vals, T: interval.Interval{Ts: ts, Te: te}})
		}
	default:
		d.fail("unknown record type %d", r.typ)
	}
	if err := d.done(); err != nil {
		return r, err
	}
	return r, nil
}

// replayWAL scans wal.log, applies every intact record through apply,
// and truncates the file at the first torn or corrupt record (the
// crash-interrupted tail). It returns the highest sequence number seen.
func replayWAL(dir string, apply func(walRecord)) (uint64, error) {
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	var maxSeq uint64
	off := 0
	good := 0
	for {
		if len(data)-off < 8 {
			break // clean end or torn header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n < 9 || n > maxWALRecord || n > len(data)-off-8 {
			break // torn or garbage length
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn or corrupt record
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			break // framed but malformed: treat as the torn tail
		}
		if rec.seq > maxSeq {
			maxSeq = rec.seq
		}
		apply(rec)
		off += 8 + n
		good = off
	}
	if good != len(data) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return maxSeq, err
		}
	}
	return maxSeq, nil
}
