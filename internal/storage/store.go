package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"talign/internal/colbatch"
	"talign/internal/faultinject"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
)

// DefaultSegmentRows is the partition size CreateTable chops tables
// into when the Store's SegmentRows is left zero.
const DefaultSegmentRows = 4096

// Process-wide operation counters, exposed through /metrics the same
// way the exec package exposes its cancellation observations.
var (
	walAppendsTotal  atomic.Uint64
	walReplayedTotal atomic.Uint64
	checkpointsTotal atomic.Uint64
	segsWrittenTotal atomic.Uint64
	segsLoadedTotal  atomic.Uint64
)

// WALAppends reports WAL records durably appended process-wide.
func WALAppends() uint64 { return walAppendsTotal.Load() }

// WALReplayed reports WAL records replayed at Open process-wide.
func WALReplayed() uint64 { return walReplayedTotal.Load() }

// Checkpoints reports completed checkpoints process-wide.
func Checkpoints() uint64 { return checkpointsTotal.Load() }

// SegmentsWritten reports segment files written process-wide.
func SegmentsWritten() uint64 { return segsWrittenTotal.Load() }

// SegmentsLoaded reports segment files decoded at load process-wide.
func SegmentsLoaded() uint64 { return segsLoadedTotal.Load() }

// Store is an open data directory: the durable table catalog plus its
// write-ahead log. All methods are safe for concurrent use. Loaded
// relations alias memory-mapped segment files, so the Store must stay
// open for as long as any relation loaded from it is in use.
type Store struct {
	// SegmentRows caps rows per segment when partitioning a table;
	// set before the first CreateTable (0 means DefaultSegmentRows).
	SegmentRows int

	dir string

	mu      sync.Mutex
	man     *manifest
	wal     *walWriter
	seq     uint64
	pending map[string][]tuple.Tuple
	maps    map[string][]byte
	closed  bool
}

// Open opens (creating if needed) a data directory: it reads the
// manifest, replays the WAL on top — truncating any crash-torn tail —
// and deletes orphan segment files left by interrupted CreateTables.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		man:     newManifest(),
		pending: make(map[string][]tuple.Tuple),
		maps:    make(map[string][]byte),
	}
	if data, err := os.ReadFile(filepath.Join(dir, "manifest.bin")); err == nil {
		m, err := decodeManifest(data)
		if err != nil {
			return nil, err
		}
		s.man = m
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	s.seq = s.man.seq
	walSeq, err := replayWAL(dir, func(r walRecord) {
		if r.seq <= s.man.seq {
			return // already folded into the manifest by a checkpoint
		}
		walReplayedTotal.Add(1)
		switch r.typ {
		case walCreateTable:
			t := r.table
			s.man.tables[r.name] = &t
			s.bumpSegIDs(t.segs)
		case walDropTable:
			delete(s.man.tables, r.name)
			delete(s.pending, r.name)
		case walAppend:
			if s.man.tables[r.name] != nil {
				s.pending[r.name] = append(s.pending[r.name], r.rows...)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if walSeq > s.seq {
		s.seq = walSeq
	}
	if err := s.gcOrphans(); err != nil {
		return nil, err
	}
	w, err := openWAL(dir)
	if err != nil {
		return nil, err
	}
	s.wal = w
	return s, nil
}

// bumpSegIDs advances nextSegID past ids recovered from WAL records.
func (s *Store) bumpSegIDs(segs []segMeta) {
	for _, sg := range segs {
		var id uint64
		if _, err := fmt.Sscanf(sg.file, "seg-%d.tsg", &id); err == nil && id >= s.man.nextSegID {
			s.man.nextSegID = id + 1
		}
	}
}

// gcOrphans removes segment files no committed table references:
// the leftovers of CreateTables that crashed before their WAL commit
// record, and of dropped tables after a checkpoint.
func (s *Store) gcOrphans() error {
	referenced := make(map[string]bool)
	for _, t := range s.man.tables {
		for _, sg := range t.segs {
			referenced[sg.file] = true
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".tsg") || referenced[name] {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// Tables returns the committed table names in sorted order.
func (s *Store) Tables() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.man.tables))
	for n := range s.man.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Has reports whether a committed table of that name exists.
func (s *Store) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.man.tables[name]
	return ok
}

// segRows resolves the partition size.
func (s *Store) segRows() int {
	if s.SegmentRows > 0 {
		return s.SegmentRows
	}
	return DefaultSegmentRows
}

// CreateTable partitions rel by valid time into columnar segments,
// writes and syncs them, then commits the table with one WAL record.
// A crash before the WAL append leaves only orphan files that the next
// Open garbage-collects; a crash after it leaves a fully durable table.
func (s *Store) CreateTable(name string, rel *relation.Relation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("storage: empty table name")
	}
	if s.man.tables[name] != nil {
		return fmt.Errorf("storage: table %q already exists", name)
	}

	// Partition by valid time: sorting by (TS, TE) gives segments with
	// tight, mostly disjoint time zones, which is what makes zone-map
	// pruning effective on valid-time predicates.
	rows := make([]tuple.Tuple, len(rel.Tuples))
	copy(rows, rel.Tuples)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].T.Ts != rows[j].T.Ts {
			return rows[i].T.Ts < rows[j].T.Ts
		}
		return rows[i].T.Te < rows[j].T.Te
	})

	t := &tableMeta{name: name, schema: rel.Schema}
	per := s.segRows()
	for lo := 0; lo < len(rows); lo += per {
		hi := lo + per
		if hi > len(rows) {
			hi = len(rows)
		}
		batch := colbatch.FromTuples(nil, rel.Schema, rows[lo:hi])
		file := fmt.Sprintf("seg-%08d.tsg", s.man.nextSegID)
		if err := s.writeSegment(file, EncodeSegment(batch)); err != nil {
			return err
		}
		s.man.nextSegID++
		t.segs = append(t.segs, segMeta{file: file, rows: hi - lo, zone: colbatch.ZoneOf(batch)})
	}
	if err := s.commit(encodeWALCreate(s.seq+1, t)); err != nil {
		return err
	}
	s.man.tables[name] = t
	return nil
}

// writeSegment durably writes one segment file. Fault sites:
// storage.seg.write before any bytes, storage.seg.sync after the
// write but before the fsync.
func (s *Store) writeSegment(file string, data []byte) error {
	if err := faultinject.Hit("storage.seg.write"); err != nil {
		return err
	}
	path := filepath.Join(s.dir, file)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := faultinject.Hit("storage.seg.sync"); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	segsWrittenTotal.Add(1)
	return nil
}

// commit appends one WAL record and advances the sequence number.
func (s *Store) commit(payload []byte) error {
	if err := s.wal.append(payload); err != nil {
		return err
	}
	s.seq++
	walAppendsTotal.Add(1)
	return nil
}

// Append durably appends rows to a table through the WAL; they serve
// from memory until the next Checkpoint folds them into segments.
func (s *Store) Append(name string, rows []tuple.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	t := s.man.tables[name]
	if t == nil {
		return fmt.Errorf("storage: unknown table %q", name)
	}
	for _, r := range rows {
		if len(r.Vals) != t.schema.Len() {
			return fmt.Errorf("storage: append to %q: row arity %d, schema arity %d", name, len(r.Vals), t.schema.Len())
		}
	}
	if len(rows) == 0 {
		return nil
	}
	if err := s.commit(encodeWALAppend(s.seq+1, name, rows)); err != nil {
		return err
	}
	s.pending[name] = append(s.pending[name], rows...)
	return nil
}

// DropTable removes a table. The WAL record is the commit point; the
// segment files are deleted immediately afterwards (mappings handed to
// loaded relations stay valid — the pages live until munmap).
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	t := s.man.tables[name]
	if t == nil {
		return fmt.Errorf("storage: unknown table %q", name)
	}
	if err := s.commit(encodeWALDrop(s.seq+1, name)); err != nil {
		return err
	}
	delete(s.man.tables, name)
	delete(s.pending, name)
	for _, sg := range t.segs {
		os.Remove(filepath.Join(s.dir, sg.file))
	}
	return nil
}

// Checkpoint folds WAL-resident rows into fresh segments, writes a new
// manifest (atomically), and truncates the WAL. Crashing anywhere in
// between is safe: the WAL replays idempotently over whichever
// manifest survived, and half-written segments are orphan-collected.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	if err := faultinject.Hit("storage.checkpoint"); err != nil {
		return err
	}
	// Fold pending rows into segments first; only on full success does
	// the manifest advance past their WAL records.
	type folded struct {
		table *tableMeta
		segs  []segMeta
	}
	var folds []folded
	names := make([]string, 0, len(s.pending))
	for n := range s.pending {
		names = append(names, n)
	}
	sort.Strings(names)
	per := s.segRows()
	for _, n := range names {
		rows := s.pending[n]
		t := s.man.tables[n]
		if t == nil || len(rows) == 0 {
			continue
		}
		sort.SliceStable(rows, func(i, j int) bool {
			if rows[i].T.Ts != rows[j].T.Ts {
				return rows[i].T.Ts < rows[j].T.Ts
			}
			return rows[i].T.Te < rows[j].T.Te
		})
		f := folded{table: t}
		for lo := 0; lo < len(rows); lo += per {
			hi := lo + per
			if hi > len(rows) {
				hi = len(rows)
			}
			batch := colbatch.FromTuples(nil, t.schema, rows[lo:hi])
			file := fmt.Sprintf("seg-%08d.tsg", s.man.nextSegID)
			if err := s.writeSegment(file, EncodeSegment(batch)); err != nil {
				return err
			}
			s.man.nextSegID++
			f.segs = append(f.segs, segMeta{file: file, rows: hi - lo, zone: colbatch.ZoneOf(batch)})
		}
		folds = append(folds, f)
	}
	for _, f := range folds {
		f.table.segs = append(f.table.segs, f.segs...)
	}
	s.man.seq = s.seq
	if err := writeManifest(s.dir, s.man); err != nil {
		return err
	}
	for _, f := range folds {
		delete(s.pending, f.table.name)
	}
	if err := s.wal.truncate(); err != nil {
		return err
	}
	checkpointsTotal.Add(1)
	return nil
}

// Load assembles a table into a relation: one zero-copy columnar image
// per mapped segment (installed through the SetSegments seam, zone maps
// included) plus any WAL-resident rows as a trailing in-memory segment.
func (s *Store) Load(name string) (*relation.Relation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return nil, err
	}
	t := s.man.tables[name]
	if t == nil {
		return nil, fmt.Errorf("storage: unknown table %q", name)
	}
	rel := relation.New(t.schema)
	var segs []relation.Segment
	lo := 0
	for _, sg := range t.segs {
		data, err := s.mapFile(sg.file)
		if err != nil {
			return nil, err
		}
		batch, zone, err := DecodeSegment(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sg.file, err)
		}
		if err := sameSchema(batch.Schema, t.schema); err != nil {
			return nil, corruptf("segment %s schema drifted from catalog: %v", sg.file, err)
		}
		if batch.Len() != sg.rows {
			return nil, corruptf("segment %s holds %d rows, catalog says %d", sg.file, batch.Len(), sg.rows)
		}
		rel.Tuples = batch.Materialize(rel.Tuples)
		segs = append(segs, relation.Segment{Img: batch, Zone: zone, Lo: lo, Hi: lo + batch.Len()})
		lo += batch.Len()
		segsLoadedTotal.Add(1)
	}
	if rows := s.pending[name]; len(rows) > 0 {
		batch := colbatch.FromTuples(nil, t.schema, rows)
		rel.Tuples = batch.Materialize(rel.Tuples)
		segs = append(segs, relation.Segment{Img: batch, Zone: colbatch.ZoneOf(batch), Lo: lo, Hi: lo + batch.Len()})
	}
	rel.SetSegments(segs)
	return rel, nil
}

// sameSchema checks name/kind equality between a segment's embedded
// schema and the catalog's.
func sameSchema(a, b schema.Schema) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("arity %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Attrs {
		if !strings.EqualFold(a.Attrs[i].Name, b.Attrs[i].Name) || a.Attrs[i].Type != b.Attrs[i].Type {
			return fmt.Errorf("attribute %d: %s vs %s", i, a.Attrs[i], b.Attrs[i])
		}
	}
	return nil
}

// mapFile memory-maps a segment file once and caches the mapping for
// the Store's lifetime.
func (s *Store) mapFile(file string) ([]byte, error) {
	if b, ok := s.maps[file]; ok {
		return b, nil
	}
	f, err := os.Open(filepath.Join(s.dir, file))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := mmapFile(f)
	if err != nil {
		return nil, err
	}
	s.maps[file] = b
	return b, nil
}

func (s *Store) usable() error {
	if s.closed {
		return fmt.Errorf("storage: store is closed")
	}
	return nil
}

// Close releases every mapping and the WAL handle. Relations loaded
// from this Store must not be used afterwards: their columnar images
// alias the released mappings.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, b := range s.maps {
		if err := munmapFile(b); err != nil && first == nil {
			first = err
		}
	}
	s.maps = nil
	if err := s.wal.close(); err != nil && first == nil {
		first = err
	}
	return first
}
