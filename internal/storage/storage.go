// Package storage is the persistence layer: interval-partitioned
// columnar segments on disk, a checksummed catalog manifest, and a
// write-ahead log, so a talignd restart serves the same bytes it served
// before the restart.
//
// # Layout
//
// A data directory holds one manifest (manifest.bin), one write-ahead
// log (wal.log) and any number of segment files (seg-NNNNNNNN.tsg).
// A segment is a self-contained columnar encoding of one valid-time
// partition of a table: one typed region per attribute column (flat
// little-endian int64/float64 arrays, offset+blob string regions,
// byte-per-row bools, parallel start/end arrays for interval columns,
// tagged cells for heterogeneous columns), optional packed validity
// bitmaps, the TS/TE valid-time regions, and a zone map (min/max TS/TE,
// per-column min/max, row count) in the header. Regions are 8-byte
// aligned, so the int64/float64/TS/TE/bitmap regions of a memory-mapped
// segment alias directly into colbatch.Vec storage with no copy on
// little-endian hosts; the decoder falls back to copying elsewhere.
//
// # Durability protocol
//
// Tables become durable through the WAL: CreateTable writes and syncs
// the segment files first, then appends one create-table record to the
// WAL (the commit point). Append and DropTable are single WAL records.
// Every record carries a sequence number, a length and a CRC; replay
// stops at the first torn or corrupt record and truncates the tail.
// Checkpoint folds WAL state into a fresh manifest (written to a temp
// file, synced, then atomically renamed) and truncates the WAL; records
// with sequence numbers at or below the manifest's are skipped on
// replay, so a crash between manifest rename and WAL truncation only
// replays no-ops. Segment files not referenced by manifest + WAL are
// orphans from interrupted CreateTables and are deleted on Open.
//
// Decoding never trusts the bytes: magic, version, region bounds and
// checksums are validated, and every failure surfaces as a structured
// error wrapping ErrCorrupt (or ErrVersion for format-version skew) —
// never a panic. The sqlish layer maps these to error code "internal".
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"talign/internal/interval"
	"talign/internal/value"
)

// Format identifiers. Bumping a version makes older binaries reject
// newer files loudly instead of misreading them.
const (
	segMagic = "TALIGNSG"
	manMagic = "TALIGNMF"

	// SegmentVersion is the on-disk segment format version this build
	// reads and writes.
	SegmentVersion = 1
	// ManifestVersion is the manifest format version.
	ManifestVersion = 1
)

// ErrCorrupt is wrapped by every decoding failure caused by invalid
// bytes: bad magic, out-of-bounds regions, checksum mismatches.
var ErrCorrupt = errors.New("corrupt on-disk data")

// ErrVersion is wrapped when a file's format version is not the one
// this build speaks; the data may be fine, the reader is just too old
// or too new.
var ErrVersion = errors.New("unsupported on-disk format version")

// corruptf builds a corruption error with context.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("storage: "+format+": %w", append(args, ErrCorrupt)...)
}

// frame wraps a body in the common file framing: magic, version,
// body length, body, then a CRC-32 (IEEE) over everything before the
// checksum field.
func frame(magic string, version uint32, body []byte) []byte {
	out := make([]byte, 0, len(magic)+12+len(body))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = append(out, body...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// unframe validates the framing and returns the body. The returned
// slice aliases data.
func unframe(magic string, version uint32, data []byte, what string) ([]byte, error) {
	head := len(magic) + 8
	if len(data) < head+4 {
		return nil, corruptf("%s: %d bytes is shorter than any valid file", what, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, corruptf("%s: bad magic %q", what, data[:len(magic)])
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v != version {
		return nil, fmt.Errorf("storage: %s: format version %d, this build speaks %d: %w", what, v, version, ErrVersion)
	}
	n := int(binary.LittleEndian.Uint32(data[len(magic)+4:]))
	if n < 0 || n > len(data)-head-4 {
		return nil, corruptf("%s: body length %d exceeds file size %d", what, n, len(data))
	}
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(data[:len(data)-4]); got != sum {
		return nil, corruptf("%s: checksum mismatch (stored %08x, computed %08x)", what, sum, got)
	}
	if n != len(data)-head-4 {
		return nil, corruptf("%s: body length %d does not match file size %d", what, n, len(data))
	}
	return data[head : head+n], nil
}

// enc is an append-only little-endian encoder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)    { e.b = append(e.b, v) }
func (e *enc) u16(v uint16)  { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	if len(s) > math.MaxUint16 {
		panic("storage: string longer than 64 KiB in metadata")
	}
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}

// val appends a tagged value cell: kind byte, then the payload.
func (e *enc) val(v value.Value) {
	e.u8(uint8(v.Kind()))
	switch v.Kind() {
	case value.KindNull:
	case value.KindBool:
		if v.Bool() {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case value.KindInt:
		e.i64(v.Int())
	case value.KindFloat:
		e.f64(v.Float())
	case value.KindString:
		s := v.Str()
		e.u32(uint32(len(s)))
		e.b = append(e.b, s...)
	case value.KindInterval:
		iv := v.Interval()
		e.i64(iv.Ts)
		e.i64(iv.Te)
	}
}

// dec is a bounds-checked little-endian decoder; the first failure
// latches an error and turns every further read into a zero-value
// no-op, so decode paths check err once at convenient points.
type dec struct {
	b    []byte
	off  int
	err  error
	what string
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corruptf(d.what+": "+format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b)-d.off {
		d.fail("truncated at offset %d (need %d more bytes)", d.off, n)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *dec) u8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *dec) u16() uint16 {
	s := d.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (d *dec) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *dec) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := int(d.u16())
	return string(d.take(n))
}

// val reads one tagged value cell.
func (d *dec) val() value.Value {
	switch k := value.Kind(d.u8()); k {
	case value.KindNull:
		return value.Null
	case value.KindBool:
		return value.NewBool(d.u8() != 0)
	case value.KindInt:
		return value.NewInt(d.i64())
	case value.KindFloat:
		return value.NewFloat(d.f64())
	case value.KindString:
		n := int(d.u32())
		return value.NewString(string(d.take(n)))
	case value.KindInterval:
		ts := d.i64()
		te := d.i64()
		return value.NewInterval(interval.Interval{Ts: ts, Te: te})
	default:
		d.fail("unknown value tag %d at offset %d", k, d.off-1)
		return value.Null
	}
}

// done checks that the decoder consumed the buffer exactly.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		d.fail("%d trailing bytes", len(d.b)-d.off)
	}
	return d.err
}
