package server

import (
	"fmt"
	"net/http"

	"talign/internal/exec"
	"talign/internal/storage"
)

// handleMetrics renders the server's operational counters in Prometheus
// text exposition format: query/error/cancellation totals, wire-level
// streaming volume, plan-cache effectiveness (hits, misses, evictions,
// plans, size) and the admission gate's capacity, in-flight DOP and
// queue depth. Scrape it with any Prometheus-compatible collector; the
// talignd smoke test in CI greps it directly.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	cs := s.cache.Stats()
	gs := s.gate.Stats()
	snap := s.catalog.Snapshot()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("talignd_queries_total", "Queries accepted (ad-hoc, prepared, streamed).", s.queries.Load())
	counter("talignd_errors_total", "Queries that ended in an error.", s.errors.Load())
	counter("talignd_query_cancels_total", "Queries aborted by context cancellation.", s.cancels.Load())
	counter("talignd_query_timeouts_total", "Queries aborted by the per-query deadline.", s.timeouts.Load())
	counter("talignd_resource_aborts_total", "Queries aborted by their resource budget (rows/bytes).", s.resourceAborts.Load())
	counter("talignd_panics_recovered_total", "Queries that died to a recovered executor panic (the process did not).", s.panics.Load())
	counter("talignd_streams_total", "Wire-level streaming responses started.", s.streams.Load())
	counter("talignd_rows_streamed_total", "Rows delivered through streaming cursors.", s.rowsStreamed.Load())
	counter("talignd_exec_cancel_observed_total", "Operator batch loops that observed a cancelled context (process-wide).", exec.CancelObserved())
	counter("talignd_exec_panics_recovered_total", "Panics recovered at executor boundaries (process-wide, includes exchange goroutines).", exec.PanicsRecovered())
	counter("talignd_exec_budget_aborts_total", "Budget trips observed at executor boundaries (process-wide).", exec.BudgetAborts())

	counter("talignd_segments_scanned_total", "Segments read by pruning-eligible scans (process-wide).", exec.SegmentsScanned())
	counter("talignd_segments_pruned_total", "Segments skipped by zone-map pruning (process-wide).", exec.SegmentsPruned())
	counter("talignd_storage_wal_appends_total", "WAL records durably appended (process-wide).", storage.WALAppends())
	counter("talignd_storage_wal_replayed_total", "WAL records replayed at store open (process-wide).", storage.WALReplayed())
	counter("talignd_storage_checkpoints_total", "Store checkpoints completed (process-wide).", storage.Checkpoints())
	counter("talignd_storage_segments_written_total", "Segment files written and synced (process-wide).", storage.SegmentsWritten())
	counter("talignd_storage_segments_loaded_total", "Segment files mapped and decoded (process-wide).", storage.SegmentsLoaded())

	counter("talignd_plan_cache_hits_total", "Plan cache hits.", cs.Hits)
	counter("talignd_plan_cache_misses_total", "Plan cache misses.", cs.Misses)
	counter("talignd_plan_cache_evictions_total", "Plan cache LRU evictions.", cs.Evictions)
	counter("talignd_plans_total", "Statements actually planned.", cs.Plans)
	gauge("talignd_plan_cache_size", "Cached plans.", cs.Size)
	gauge("talignd_plan_cache_capacity", "Plan cache capacity.", cs.Capacity)

	gauge("talignd_gate_capacity", "Admission gate capacity in DOP units (0 = unlimited).", gs.Capacity)
	gauge("talignd_gate_in_flight_dop", "In-flight degree of parallelism claimed by running queries.", gs.InUse)
	gauge("talignd_gate_waiting", "Queries queued at the admission gate.", gs.Waiting)

	gauge("talignd_sessions", "Live sessions.", s.sess.count())
	gauge("talignd_catalog_tables", "Registered tables.", snap.Len())

	if s.dist != nil {
		for _, m := range s.dist.DistMetrics() {
			if m.Gauge {
				gauge(m.Name, m.Help, int(m.Value))
			} else {
				counter(m.Name, m.Help, m.Value)
			}
		}
	}

	draining := 0
	if s.Draining() {
		draining = 1
	}
	gauge("talignd_draining", "1 while the server is draining for shutdown (refusing new queries).", draining)
}
