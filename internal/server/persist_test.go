package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"talign/internal/plan"
	"talign/internal/storage"
)

// writeTortureCSV writes an n-row CSV whose valid times march forward,
// so small segments partition time cleanly.
func writeTortureCSV(t *testing.T, n int) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("a:int,tag:string,ts,te\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,row%d,%d,%d\n", i%9, i, i, i+4)
	}
	path := filepath.Join(t.TempDir(), "rows.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// rawBody POSTs and returns the exact response bytes, so restart
// comparisons are byte-identical, not merely set-equal.
func rawBody(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", path, err)
	}
	return resp.StatusCode, raw
}

// TestServerRestartServesIdenticalResults is the end-to-end persistence
// contract: CREATE TABLE ... FROM CSV through one server, restart onto
// the same data directory, and every query response — including row
// order under ORDER BY and the streaming NDJSON frames — is
// byte-identical to the pre-restart answer.
func TestServerRestartServesIdenticalResults(t *testing.T) {
	dataDir := t.TempDir()
	csvPath := writeTortureCSV(t, 100)
	queries := []string{
		`{"sql": "SELECT a, tag, Ts, Te FROM big WHERE Ts >= 50 ORDER BY Ts, tag"}`,
		`{"sql": "SELECT a, COUNT(*) AS c FROM big GROUP BY a ORDER BY a"}`,
		`{"sql": "SELECT a, Ts, Te FROM ((SELECT a FROM big WHERE Ts >= 80) q ALIGN big ON q.a = big.a) x ORDER BY Ts, Te, a"}`,
	}

	openServer := func() (*Server, *storage.Store, *httptest.Server) {
		st, err := storage.Open(dataDir)
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		st.SegmentRows = 16
		s := New(Config{Flags: plan.DefaultFlags()})
		if _, err := s.UseStore(st); err != nil {
			t.Fatalf("UseStore: %v", err)
		}
		return s, st, httptest.NewServer(s.Handler())
	}

	s1, st1, ts1 := openServer()
	code, out := rawBody(t, ts1, "/query", fmt.Sprintf(`{"sql": "CREATE TABLE big FROM CSV '%s'"}`, csvPath))
	if code != http.StatusOK {
		t.Fatalf("CREATE TABLE status %d: %s", code, out)
	}
	if !s1.Store().Has("big") {
		t.Fatal("CREATE TABLE did not persist to the store")
	}
	before := make([][]byte, len(queries))
	for i, q := range queries {
		code, raw := rawBody(t, ts1, "/query", q)
		if code != http.StatusOK {
			t.Fatalf("query %d status %d: %s", i, code, raw)
		}
		before[i] = raw
	}
	_, streamBefore := rawBody(t, ts1, "/query/stream", queries[0])
	ts1.Close()
	if err := st1.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	st1.Close()

	// Cold restart onto the same directory: the table must come back
	// without any CSV in sight, serving the same bytes.
	_, st2, ts2 := openServer()
	defer ts2.Close()
	defer st2.Close()
	for i, q := range queries {
		code, raw := rawBody(t, ts2, "/query", q)
		if code != http.StatusOK {
			t.Fatalf("restarted query %d status %d: %s", i, code, raw)
		}
		if string(raw) != string(before[i]) {
			t.Fatalf("restarted server diverged on query %d:\nbefore: %s\nafter:  %s", i, before[i], raw)
		}
	}
	if _, streamAfter := rawBody(t, ts2, "/query/stream", queries[0]); string(streamAfter) != string(streamBefore) {
		t.Fatalf("restarted stream diverged:\nbefore: %s\nafter:  %s", streamBefore, streamAfter)
	}

	// The restart must land on segment-backed relations: a valid-time
	// filter over the reloaded table shows pruned segments in EXPLAIN
	// ANALYZE.
	code, raw := rawBody(t, ts2, "/query", `{"sql": "EXPLAIN ANALYZE SELECT a FROM big WHERE Ts >= 50"}`)
	if code != http.StatusOK {
		t.Fatalf("explain analyze status %d: %s", code, raw)
	}
	if !strings.Contains(string(raw), "pruned=") || strings.Contains(string(raw), "pruned=0") {
		t.Fatalf("reloaded table shows no segment pruning: %s", raw)
	}
}

// TestServerDropTablePersists pins DROP TABLE durability: a dropped
// table stays gone across restart, and its files leave the directory.
func TestServerDropTablePersists(t *testing.T) {
	dataDir := t.TempDir()
	csvPath := writeTortureCSV(t, 30)

	st, err := storage.Open(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Flags: plan.DefaultFlags()})
	if _, err := s.UseStore(st); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	if code, out := rawBody(t, ts, "/query", fmt.Sprintf(`{"sql": "CREATE TABLE gone FROM CSV '%s'"}`, csvPath)); code != http.StatusOK {
		t.Fatalf("create: %d %s", code, out)
	}
	if code, out := rawBody(t, ts, "/query", `{"sql": "DROP TABLE gone"}`); code != http.StatusOK {
		t.Fatalf("drop: %d %s", code, out)
	}
	if code, out := rawBody(t, ts, "/query", `{"sql": "SELECT a FROM gone"}`); code == http.StatusOK {
		t.Fatalf("dropped table still answers queries: %s", out)
	}
	ts.Close()
	st.Close()

	st2, err := storage.Open(dataDir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if st2.Has("gone") {
		t.Fatal("dropped table resurrected on restart")
	}
	s2 := New(Config{Flags: plan.DefaultFlags()})
	if n, err := s2.UseStore(st2); err != nil || n != 0 {
		t.Fatalf("UseStore after drop: n=%d err=%v", n, err)
	}
}

// TestMetricsExposeStorageCounters checks the new storage and pruning
// rows appear on /metrics with live values.
func TestMetricsExposeStorageCounters(t *testing.T) {
	dataDir := t.TempDir()
	csvPath := writeTortureCSV(t, 60)
	st, err := storage.Open(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SegmentRows = 8
	s := New(Config{Flags: plan.DefaultFlags()})
	if _, err := s.UseStore(st); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, out := rawBody(t, ts, "/query", fmt.Sprintf(`{"sql": "CREATE TABLE m FROM CSV '%s'"}`, csvPath)); code != http.StatusOK {
		t.Fatalf("create: %d %s", code, out)
	}
	if code, out := rawBody(t, ts, "/query", `{"sql": "SELECT a FROM m WHERE Ts >= 40"}`); code != http.StatusOK {
		t.Fatalf("query: %d %s", code, out)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, metric := range []string{
		"talignd_segments_scanned_total",
		"talignd_segments_pruned_total",
		"talignd_storage_wal_appends_total",
		"talignd_storage_wal_replayed_total",
		"talignd_storage_checkpoints_total",
		"talignd_storage_segments_written_total",
		"talignd_storage_segments_loaded_total",
	} {
		if !strings.Contains(body, metric) {
			t.Fatalf("/metrics lacks %s:\n%s", metric, body)
		}
	}
	// The CREATE above wrote segments and a WAL record; those counters
	// must be nonzero now (process-wide, so >= is all we can pin).
	for _, metric := range []string{
		"talignd_storage_wal_appends_total 0\n",
		"talignd_storage_segments_written_total 0\n",
	} {
		if strings.Contains(body, metric) {
			t.Fatalf("%q stuck at zero after CREATE TABLE:\n%s", strings.TrimSpace(metric), body)
		}
	}
}
