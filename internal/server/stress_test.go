package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/value"
)

// stressQueries are the mixed workload: a value filter, a temporal
// normalization, a temporal aggregation and an ALIGN join, each with a
// $1 placeholder, plus one parameterless statement.
var stressQueries = []struct {
	sql     string
	nparams int
}{
	{"SELECT a, mn, mx FROM p WHERE a >= $1", 1},
	{"SELECT n, Ts, Te FROM (r a NORMALIZE r b USING (n)) x", 0},
	{"SELECT n, COUNT(*) c, Ts, Te FROM (r a NORMALIZE r b USING ()) x GROUP BY n, Ts, Te HAVING COUNT(*) >= $1", 1},
	{`WITH r2 AS (SELECT Ts Us, Te Ue, * FROM r)
	  SELECT n, Us, Ue, x.Ts, x.Te FROM (r2 ALIGN p ON DUR(Us, Ue) BETWEEN mn AND mx AND a >= $1) x`, 1},
	{"SELECT a FROM p WHERE a BETWEEN $1 AND 50 ORDER BY a", 1},
}

// stressParams is the binding domain for $1.
var stressParams = []int64{0, 1, 2, 30, 40, 50}

// TestConcurrentServerMatchesSerial fires N goroutines of mixed prepared
// and ad-hoc executions at one server and diffs every result against the
// serial execution of the same statement with the same binding. Run with
// -race this is the acceptance check for the concurrent serving layer:
// shared cached plans, the COW catalog and the admission gate must not
// corrupt results under contention.
func TestConcurrentServerMatchesSerial(t *testing.T) {
	flags := plan.DefaultFlags()
	s := demoServer(t, Config{Flags: flags, MaxDOP: 4})

	// Serial oracle: every (query, param) combination executed on a
	// single-goroutine engine before any concurrency starts.
	serial := map[string]*relation.Relation{}
	for qi, q := range stressQueries {
		for _, p := range bindings(q.nparams) {
			res, err := s.Query("", "", q.sql, p)
			if err != nil {
				t.Fatalf("serial %s with %v: %v", q.sql, p, err)
			}
			serial[resultKey(qi, p)] = res.Rel
		}
	}

	// Half the workers use named prepared statements, half ad-hoc SQL.
	for qi, q := range stressQueries {
		if _, err := s.Prepare("stress", fmt.Sprintf("q%d", qi), q.sql); err != nil {
			t.Fatalf("Prepare q%d: %v", qi, err)
		}
	}

	const workers = 8
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < iters; i++ {
				qi := rng.Intn(len(stressQueries))
				q := stressQueries[qi]
				var params []value.Value
				if q.nparams == 1 {
					params = []value.Value{value.NewInt(stressParams[rng.Intn(len(stressParams))])}
				}
				var res Result
				var err error
				if w%2 == 0 {
					res, err = s.Query("stress", fmt.Sprintf("q%d", qi), "", params)
				} else {
					res, err = s.Query("", "", q.sql, params)
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d: %s: %v", w, q.sql, err)
					return
				}
				want := serial[resultKey(qi, params)]
				if !relation.SetEqual(res.Rel, want) {
					onlyG, onlyW := relation.Diff(res.Rel, want)
					errs <- fmt.Errorf("worker %d: %s with %v diverged\nonly concurrent: %v\nonly serial: %v",
						w, q.sql, params, onlyG, onlyW)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := s.gate.Stats(); st.InUse != 0 {
		t.Fatalf("gate leaked %d units", st.InUse)
	}
}

// TestConcurrentCatalogChurn runs queries over stable tables while
// another goroutine registers and drops unrelated tables, exercising the
// COW snapshot path: queries must never observe a half-updated catalog,
// and version churn must only cause re-plans, not wrong results.
func TestConcurrentCatalogChurn(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	want, err := s.Query("", "", "SELECT n FROM r", nil)
	if err != nil {
		t.Fatalf("serial query: %v", err)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("tmp%d", i%4)
			s.Catalog().Register(name, relation.NewBuilder("x int").Row(0, 1, i).MustBuild())
			if i%3 == 0 {
				s.Catalog().Drop(name)
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := s.Query("", "", "SELECT n FROM r", nil)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				if !relation.SetEqual(res.Rel, want.Rel) {
					errs <- fmt.Errorf("worker %d: result diverged under catalog churn", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func bindings(nparams int) [][]value.Value {
	if nparams == 0 {
		return [][]value.Value{nil}
	}
	out := make([][]value.Value, len(stressParams))
	for i, p := range stressParams {
		out[i] = []value.Value{value.NewInt(p)}
	}
	return out
}

func resultKey(qi int, params []value.Value) string {
	key := fmt.Sprintf("q%d", qi)
	for _, p := range params {
		key += "|" + p.String()
	}
	return key
}
