package server

import (
	"context"
	"sync"
)

// Gate is the admission controller: a weighted FIFO semaphore bounding
// the total in-flight degree of parallelism across all queries. Every
// query acquires a weight equal to the parallelism its plan can actually
// use (1 for serial plans), so N serial queries and one DOP-N parallel
// query consume the same budget and a burst of parallel queries queues
// instead of oversubscribing the machine with worker goroutines.
//
// Admission is strictly first-come-first-served: a wide waiter at the
// head of the queue blocks later narrow arrivals until it is admitted,
// which is what prevents a steady stream of cheap queries from starving
// an expensive one indefinitely.
type Gate struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	waiters  []*gateWaiter
}

// gateWaiter is one queued acquisition; ch closes on admission.
type gateWaiter struct {
	w  int
	ch chan struct{}
}

// NewGate returns a gate admitting up to capacity units of in-flight DOP;
// capacity <= 0 means unlimited.
func NewGate(capacity int) *Gate {
	return &Gate{capacity: capacity}
}

// Acquire blocks until w units are available and claims them. Weights
// above the gate's capacity are clamped to it, so a single over-wide
// query waits for an idle gate rather than deadlocking. Acquire returns
// the weight actually claimed, which must be passed to Release.
func (g *Gate) Acquire(w int) int {
	claimed, _ := g.AcquireCtx(context.Background(), w)
	return claimed
}

// AcquireCtx is Acquire with cooperative cancellation: a caller whose
// context is cancelled while queued abandons its place in line (later
// waiters move up) and gets the context's error back with no units
// claimed. Admission that raced with the cancellation is rolled back, so
// the accounting stays exact either way.
func (g *Gate) AcquireCtx(ctx context.Context, w int) (int, error) {
	if g.capacity <= 0 {
		return 0, ctx.Err() // unlimited: nothing to claim
	}
	if w < 1 {
		w = 1
	}
	if w > g.capacity {
		w = g.capacity
	}
	g.mu.Lock()
	if len(g.waiters) == 0 && g.inUse+w <= g.capacity {
		g.inUse += w
		g.mu.Unlock()
		return w, nil
	}
	wt := &gateWaiter{w: w, ch: make(chan struct{})}
	g.waiters = append(g.waiters, wt)
	g.mu.Unlock()
	select {
	case <-wt.ch:
		return w, nil
	case <-ctx.Done():
	}
	// Cancelled while queued: leave the line — unless admission raced the
	// cancellation, in which case the claim is returned through Release
	// (which also lets the next waiter in).
	g.mu.Lock()
	for i, q := range g.waiters {
		if q == wt {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			g.mu.Unlock()
			return 0, ctx.Err()
		}
	}
	g.mu.Unlock()
	g.Release(w)
	return 0, ctx.Err()
}

// Release returns w units claimed by Acquire and admits queued waiters
// in FIFO order as far as the freed capacity reaches.
func (g *Gate) Release(w int) {
	if g.capacity <= 0 || w <= 0 {
		return
	}
	g.mu.Lock()
	g.inUse -= w
	if g.inUse < 0 {
		g.inUse = 0
	}
	for len(g.waiters) > 0 {
		head := g.waiters[0]
		if g.inUse+head.w > g.capacity {
			break // strict FIFO: the head blocks the line
		}
		g.inUse += head.w
		g.waiters = g.waiters[1:]
		close(head.ch)
	}
	g.mu.Unlock()
}

// GateStats is a point-in-time view of the gate.
type GateStats struct {
	// Capacity is the admission budget (0 = unlimited); InUse the claimed
	// units; Waiting the queued acquisitions.
	Capacity int `json:"capacity"`
	InUse    int `json:"in_use"`
	Waiting  int `json:"waiting"`
}

// Stats returns the current gate counters.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GateStats{Capacity: g.capacity, InUse: g.inUse, Waiting: len(g.waiters)}
}
