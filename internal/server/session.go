package server

import (
	"fmt"
	"sync"
)

// Session is per-client state: a namespace of named prepared statements.
// A session stores only statement text and metadata — the plans themselves
// live in the shared PlanCache keyed by catalog version, so a statement
// prepared before a catalog change transparently re-plans on its next
// execution (and LRU eviction can never break a session, only cost a
// re-plan).
type Session struct {
	// ID names the session (client-chosen).
	ID string

	mu    sync.Mutex
	stmts map[string]*stmtInfo
}

// stmtInfo is one named prepared statement: only the normalized text is
// stored — it is the plan-cache key component, and everything else
// (param count, schema) lives on the cached Prepared and may legitimately
// change when a catalog bump forces a re-plan.
type stmtInfo struct {
	norm string
}

// setStmt registers (or replaces) a named statement.
func (s *Session) setStmt(name, norm string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stmts[name] = &stmtInfo{norm: norm}
}

// stmt looks up a named statement.
func (s *Session) stmt(name string) (*stmtInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.stmts[name]
	if !ok {
		return nil, fmt.Errorf("server: session %q has no prepared statement %q", s.ID, name)
	}
	return info, nil
}

// StmtCount returns the number of prepared statements in the session.
func (s *Session) StmtCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stmts)
}

// sessions is the server's session table.
type sessions struct {
	mu sync.Mutex
	m  map[string]*Session
}

// DefaultSessionID is used when a request names no session.
const DefaultSessionID = "default"

// get returns the session with the given id, creating it on first use; an
// empty id maps to DefaultSessionID.
func (t *sessions) get(id string) *Session {
	if id == "" {
		id = DefaultSessionID
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = map[string]*Session{}
	}
	s, ok := t.m[id]
	if !ok {
		s = &Session{ID: id, stmts: map[string]*stmtInfo{}}
		t.m[id] = s
	}
	return s
}

// count returns the number of live sessions.
func (t *sessions) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
