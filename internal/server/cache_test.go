package server

import (
	"testing"
	"time"

	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/sqlish"
	"talign/internal/value"
)

func demoServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	s.Catalog().Register("r", relation.NewBuilder("n string").
		Row(0, 7, "Ann").
		Row(1, 5, "Joe").
		Row(7, 11, "Ann").
		MustBuild())
	s.Catalog().Register("p", relation.NewBuilder("a int", "mn int", "mx int").
		Row(0, 5, 50, 1, 2).
		Row(0, 5, 40, 3, 7).
		Row(0, 12, 30, 8, 12).
		Row(9, 12, 50, 1, 2).
		Row(9, 12, 40, 3, 7).
		MustBuild())
	return s
}

// TestPreparedPlansExactlyOnce is the acceptance check: a prepared
// statement executed twice plans exactly once.
func TestPreparedPlansExactlyOnce(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	if _, err := s.Prepare("s1", "q", "SELECT a FROM p WHERE a >= $1"); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	for i := 0; i < 2; i++ {
		res, err := s.Query("s1", "q", "", []value.Value{value.NewInt(40)})
		if err != nil {
			t.Fatalf("Query #%d: %v", i+1, err)
		}
		if res.Rel.Len() != 4 {
			t.Fatalf("Query #%d: %d rows, want 4", i+1, res.Rel.Len())
		}
		if !res.CacheHit {
			t.Fatalf("Query #%d missed the plan cache", i+1)
		}
	}
	st := s.CacheStats()
	if st.Plans != 1 {
		t.Fatalf("planned %d times, want exactly 1 (hits=%d misses=%d)", st.Plans, st.Hits, st.Misses)
	}
	if st.Hits != 2 {
		t.Fatalf("cache hits = %d, want 2", st.Hits)
	}
}

// TestCacheInvalidationOnCatalogChange: re-registering a relation bumps
// the catalog version, so the next execution re-plans against fresh data
// instead of serving the stale snapshot.
func TestCacheInvalidationOnCatalogChange(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	if _, err := s.Prepare("s1", "q", "SELECT n FROM r"); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	res, err := s.Query("s1", "q", "", nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Rel.Len() != 3 {
		t.Fatalf("got %d rows, want 3", res.Rel.Len())
	}

	v := s.Catalog().Version()
	s.Catalog().Register("r", relation.NewBuilder("n string").Row(0, 2, "Zoe").MustBuild())
	if got := s.Catalog().Version(); got != v+1 {
		t.Fatalf("version = %d, want %d", got, v+1)
	}

	before := s.CacheStats().Plans
	res, err = s.Query("s1", "q", "", nil)
	if err != nil {
		t.Fatalf("Query after catalog change: %v", err)
	}
	if res.CacheHit {
		t.Fatalf("stale plan served from cache after catalog change")
	}
	if res.Rel.Len() != 1 || res.Rel.Tuples[0].Vals[0].Str() != "Zoe" {
		t.Fatalf("stale data after catalog change:\n%s", res.Rel)
	}
	if got := s.CacheStats().Plans; got != before+1 {
		t.Fatalf("planned %d times after change, want %d", got, before+1)
	}

	// The same key now hits again.
	res, err = s.Query("s1", "q", "", nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.CacheHit {
		t.Fatalf("re-planned entry not cached")
	}
}

// TestCacheNormalization: formatting variants of one statement share a
// cache entry.
func TestCacheNormalization(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	if _, err := s.Query("", "", "SELECT n FROM r WHERE n = 'Ann'", nil); err != nil {
		t.Fatalf("Query: %v", err)
	}
	res, err := s.Query("", "", "select   N from R where n='Ann'", nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.CacheHit {
		t.Fatalf("formatting variant missed the cache")
	}
	if st := s.CacheStats(); st.Plans != 1 {
		t.Fatalf("planned %d times, want 1", st.Plans)
	}
}

// TestCacheFlagsKeying: the same SQL under different planner flags must
// not share plans.
func TestCacheFlagsKeying(t *testing.T) {
	f1 := plan.DefaultFlags()
	f2 := plan.DefaultFlags()
	f2.EnableHashJoin = false
	if f1.Fingerprint() == f2.Fingerprint() {
		t.Fatalf("distinct flags share a fingerprint %q", f1.Fingerprint())
	}
	c := NewPlanCache(8)
	cat := sqlish.MapCatalog{}
	cat.Register("r", relation.NewBuilder("n string").Row(0, 1, "x").MustBuild())
	for _, f := range []plan.Flags{f1, f2} {
		flags := f
		_, hit, err := c.GetOrPrepare(cacheKey{sql: "select n from r", flags: flags.Fingerprint()},
			func() (*sqlish.Prepared, error) { return sqlish.Prepare("select n from r", cat, flags) })
		if err != nil {
			t.Fatalf("GetOrPrepare: %v", err)
		}
		if hit {
			t.Fatalf("flags %q wrongly shared a plan", flags.Fingerprint())
		}
	}
	if st := c.Stats(); st.Plans != 2 || st.Size != 2 {
		t.Fatalf("stats = %+v, want 2 plans, 2 entries", st)
	}
}

// TestCacheLRUEviction: the least recently used entry is evicted at
// capacity.
func TestCacheLRUEviction(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags(), CacheSize: 2})
	queries := []string{
		"SELECT n FROM r",
		"SELECT a FROM p",
		"SELECT mn FROM p",
	}
	for _, q := range queries {
		if _, err := s.Query("", "", q, nil); err != nil {
			t.Fatalf("Query(%s): %v", q, err)
		}
	}
	st := s.CacheStats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want size 2, evictions 1", st)
	}
	// queries[0] was evicted; queries[2] is still cached.
	res, err := s.Query("", "", queries[2], nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.CacheHit {
		t.Fatalf("most recent entry evicted")
	}
	res, err = s.Query("", "", queries[0], nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.CacheHit {
		t.Fatalf("oldest entry survived eviction")
	}
}

func TestGate(t *testing.T) {
	g := NewGate(3)
	if got := g.Acquire(2); got != 2 {
		t.Fatalf("Acquire(2) = %d", got)
	}
	// A request wider than capacity is clamped, not deadlocked.
	done := make(chan int)
	go func() { done <- g.Acquire(5) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case w := <-done:
		t.Fatalf("Acquire(5) succeeded at %d units with 2/3 in use", w)
	default:
	}
	g.Release(2)
	if w := <-done; w != 3 {
		t.Fatalf("clamped acquire = %d, want 3", w)
	}
	st := g.Stats()
	if st.InUse != 3 || st.Capacity != 3 {
		t.Fatalf("stats = %+v", st)
	}
	g.Release(3)
	if st := g.Stats(); st.InUse != 0 {
		t.Fatalf("in use after release = %d", st.InUse)
	}

	// FIFO: a narrow arrival must not overtake a queued wide waiter.
	g.Acquire(1)
	wide := make(chan struct{})
	go func() { g.Acquire(3); close(wide) }()
	for g.Stats().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}
	narrow := make(chan struct{})
	go func() { g.Acquire(1); close(narrow) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-narrow:
		t.Fatalf("narrow acquisition overtook the queued wide waiter")
	default:
	}
	g.Release(1) // wide (3) admitted first, then narrow still waits
	<-wide
	select {
	case <-narrow:
		t.Fatalf("narrow admitted while wide holds full capacity")
	case <-time.After(20 * time.Millisecond):
	}
	g.Release(3)
	<-narrow
	g.Release(1)
	if st := g.Stats(); st.InUse != 0 || st.Waiting != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}

	// Unlimited gate is a no-op.
	u := NewGate(0)
	if w := u.Acquire(100); w != 0 {
		t.Fatalf("unlimited Acquire = %d", w)
	}
	u.Release(0)
}
