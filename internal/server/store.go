package server

import (
	"fmt"
	"strings"

	"talign/internal/csvio"
	"talign/internal/relation"
	"talign/internal/sqlish"
	"talign/internal/storage"
)

// UseStore attaches an opened storage.Store and warm-boots the catalog
// from it: every persisted table is loaded (segment-backed, zone maps
// attached) and registered. From then on CREATE TABLE and DROP TABLE
// statements write through to the store, so a restarted talignd serves
// the same tables byte-for-byte. Returns the number of tables loaded.
func (s *Server) UseStore(st *storage.Store) (int, error) {
	s.store = st
	n := 0
	for _, name := range st.Tables() {
		rel, err := st.Load(name)
		if err != nil {
			return n, storageError(err)
		}
		s.catalog.Register(name, rel)
		n++
	}
	return n, nil
}

// Store exposes the attached store (nil when the server is memory-only).
func (s *Server) Store() *storage.Store { return s.store }

// CreateTable loads a CSV file into a new table. With a store attached
// the data is persisted first (segments + WAL commit record) and the
// catalog registers the store's segment-backed image of it, so zone-map
// pruning applies from the first query; without one the table is
// memory-only, exactly like a talignd name=file.csv argument.
func (s *Server) CreateTable(name, csvPath string) (*relation.Relation, error) {
	key := strings.ToLower(name)
	if _, ok := s.catalog.Snapshot().Lookup(key); ok {
		return nil, fmt.Errorf("server: CREATE TABLE: table %q already exists", name)
	}
	rel, err := csvio.ReadFile(csvPath)
	if err != nil {
		return nil, fmt.Errorf("server: CREATE TABLE %s: %v", name, err)
	}
	if s.store != nil {
		if err := s.store.CreateTable(key, rel); err != nil {
			return nil, storageError(err)
		}
		loaded, err := s.store.Load(key)
		if err != nil {
			return nil, storageError(err)
		}
		rel = loaded
	}
	s.catalog.Register(key, rel)
	return rel, nil
}

// DropTable removes a table from the catalog and, when a store is
// attached, from disk.
func (s *Server) DropTable(name string) error {
	key := strings.ToLower(name)
	if _, ok := s.catalog.Snapshot().Lookup(key); !ok {
		return fmt.Errorf("server: DROP TABLE: unknown table %q", name)
	}
	if s.store != nil && s.store.Has(key) {
		if err := s.store.DropTable(key); err != nil {
			return storageError(err)
		}
	}
	s.catalog.Drop(key)
	return nil
}

// storageError wraps a storage-layer failure (I/O, corruption, version
// mismatch) as the structured "internal" wire error: the client's
// statement was well-formed; the server's disk state is the problem.
func storageError(err error) error {
	return &sqlish.Error{Code: sqlish.ErrInternal, Msg: err.Error(), Pos: -1}
}
