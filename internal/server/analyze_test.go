package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/value"
)

// TestAnalyzeInvalidatesPlanCache: ANALYZE bumps the statistics version,
// so the next execution of a cached statement re-plans against the fresh
// statistics while older entries simply age out.
func TestAnalyzeInvalidatesPlanCache(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	const q = "SELECT a FROM p WHERE a >= 40"
	if _, err := s.Query("", "", q, nil); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("", "", q, nil)
	if err != nil || !res.CacheHit {
		t.Fatalf("second execution should hit the cache (err=%v hit=%v)", err, res.CacheHit)
	}
	plans := s.CacheStats().Plans

	res, err = s.Query("", "", "ANALYZE p", nil)
	if err != nil {
		t.Fatalf("ANALYZE: %v", err)
	}
	if !strings.Contains(res.Plan, "ANALYZE p: 5 rows") {
		t.Fatalf("ANALYZE summary = %q", res.Plan)
	}

	res, err = s.Query("", "", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("ANALYZE must invalidate the cached plan (stats version keying)")
	}
	if got := s.CacheStats().Plans; got != plans+1 {
		t.Fatalf("expected exactly one re-plan after ANALYZE, plans %d -> %d", plans, got)
	}
	if s.catalog.Snapshot().TableStats("p") == nil {
		t.Fatal("ANALYZE did not install statistics")
	}
	// ANALYZE of an unknown table errors cleanly.
	if _, err := s.Query("", "", "ANALYZE nosuch", nil); err == nil {
		t.Fatal("ANALYZE nosuch should fail")
	}
}

// TestRegisterDropsStats: replacing a table discards its (now stale)
// statistics.
func TestRegisterDropsStats(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	if _, err := s.Analyze("r"); err != nil {
		t.Fatal(err)
	}
	if s.catalog.Snapshot().TableStats("r") == nil {
		t.Fatal("stats missing after Analyze")
	}
	s.Catalog().Register("r", relation.NewBuilder("n string").Row(0, 1, "Zed").MustBuild())
	if s.catalog.Snapshot().TableStats("r") != nil {
		t.Fatal("stale stats must be dropped when a table is replaced")
	}
}

// TestSetStatsIfDiscardsRacedAnalyze: statistics computed against a
// relation that was re-registered mid-scan must not be installed — the
// catalog invariant is that stats always describe the registered
// relation (GET /stats indexes the schema by the stats' column count).
func TestSetStatsIfDiscardsRacedAnalyze(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	old, _ := s.catalog.Snapshot().Lookup("p")
	s.Catalog().Register("p", relation.NewBuilder("x int").Row(0, 1, 1).MustBuild())
	if s.catalog.SetStatsIf("p", old, nil) {
		t.Fatal("SetStatsIf must refuse stats for a replaced relation")
	}
	if s.catalog.Snapshot().TableStats("p") != nil {
		t.Fatal("raced stats were installed")
	}
	// A fresh Analyze against the new relation succeeds.
	if _, err := s.Analyze("p"); err != nil {
		t.Fatalf("re-ANALYZE: %v", err)
	}
}

// TestHTTPStatsEndpoint drives GET /stats: per-table summaries appear
// once analyzed, alongside the plan-cache counters.
func TestHTTPStatsEndpoint(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() map[string]any {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /stats: %d", resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	out := get()
	tables := out["tables"].([]any)
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %v", out)
	}
	if tables[0].(map[string]any)["analyzed"].(bool) {
		t.Fatal("tables must start unanalyzed")
	}

	if n := s.AnalyzeAll(); n != 2 {
		t.Fatalf("AnalyzeAll = %d, want 2", n)
	}
	out = get()
	for _, tb := range out["tables"].([]any) {
		entry := tb.(map[string]any)
		if !entry["analyzed"].(bool) {
			t.Fatalf("table %v not analyzed", entry["name"])
		}
		if len(entry["columns"].([]any)) == 0 {
			t.Fatalf("table %v has no column stats", entry["name"])
		}
		if entry["interval"] == nil {
			t.Fatalf("table %v has no interval stats", entry["name"])
		}
	}
	if _, ok := out["cache"].(map[string]any); !ok {
		t.Fatalf("missing cache counters: %v", out)
	}
	if out["stats_version"].(float64) < 2 {
		t.Fatalf("stats_version = %v, want >= 2 after AnalyzeAll", out["stats_version"])
	}
}

// TestConcurrentAnalyzeStress interleaves concurrent ANALYZE churn
// (statistics version bumps → plan-cache invalidation → re-planning,
// possibly with different physical plans) with prepared-statement and
// ad-hoc execution, diffing every result against the serial answer. Run
// with -race this is the acceptance check that statistics churn cannot
// corrupt results or leak gate units.
func TestConcurrentAnalyzeStress(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags(), MaxDOP: 4})

	serial := map[string]*relation.Relation{}
	for qi, q := range stressQueries {
		for _, p := range bindings(q.nparams) {
			res, err := s.Query("", "", q.sql, p)
			if err != nil {
				t.Fatalf("serial %s with %v: %v", q.sql, p, err)
			}
			serial[resultKey(qi, p)] = res.Rel
		}
	}
	for qi, q := range stressQueries {
		if _, err := s.Prepare("stress", fmt.Sprintf("q%d", qi), q.sql); err != nil {
			t.Fatalf("Prepare q%d: %v", qi, err)
		}
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		tables := []string{"r", "p"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Query("", "", "ANALYZE "+tables[i%2], nil); err != nil {
				t.Errorf("ANALYZE churn: %v", err)
				return
			}
		}
	}()

	const workers = 8
	const iters = 30
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + w)))
			for i := 0; i < iters; i++ {
				qi := rng.Intn(len(stressQueries))
				q := stressQueries[qi]
				var params []value.Value
				if q.nparams == 1 {
					params = []value.Value{value.NewInt(stressParams[rng.Intn(len(stressParams))])}
				}
				var res Result
				var err error
				if w%2 == 0 {
					res, err = s.Query("stress", fmt.Sprintf("q%d", qi), "", params)
				} else {
					res, err = s.Query("", "", q.sql, params)
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d: %s: %v", w, q.sql, err)
					return
				}
				want := serial[resultKey(qi, params)]
				if !relation.SetEqual(res.Rel, want) {
					onlyG, onlyW := relation.Diff(res.Rel, want)
					errs <- fmt.Errorf("worker %d: %s with %v diverged under ANALYZE churn\nonly concurrent: %v\nonly serial: %v",
						w, q.sql, params, onlyG, onlyW)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := s.gate.Stats(); st.InUse != 0 {
		t.Fatalf("gate leaked %d units", st.InUse)
	}
}

// TestHTTPExplainAnalyze: EXPLAIN ANALYZE over the wire returns the
// instrumented plan in the plan slot.
func TestHTTPExplainAnalyze(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, out := post(t, ts, "/query", `{"sql": "EXPLAIN ANALYZE SELECT a FROM p WHERE a >= $1", "params": [40]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	text, _ := out["plan"].(string)
	if !strings.Contains(text, "actual rows=4") {
		t.Fatalf("EXPLAIN ANALYZE plan missing actuals: %v", out)
	}
}
