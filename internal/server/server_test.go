package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"talign/internal/plan"
)

// post sends a JSON body and decodes the JSON response.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decoding response: %v", path, err)
	}
	return resp.StatusCode, out
}

func TestHTTPQuery(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, out := post(t, ts, "/query", `{"sql": "SELECT a FROM p WHERE a >= $1 ORDER BY a", "params": [40]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if got := out["row_count"].(float64); got != 4 {
		t.Fatalf("row_count = %v, want 4", got)
	}
	cols := out["columns"].([]any)
	if len(cols) != 3 || cols[0] != "a" || cols[1] != "ts" || cols[2] != "te" {
		t.Fatalf("columns = %v", cols)
	}
	row := out["rows"].([]any)[0].([]any)
	if row[0].(float64) != 40 {
		t.Fatalf("first row = %v", row)
	}
}

func TestHTTPPrepareExecute(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, out := post(t, ts, "/prepare", `{"session": "s1", "name": "q1", "sql": "SELECT n FROM r WHERE n = $1"}`)
	if code != http.StatusOK {
		t.Fatalf("prepare status %d: %v", code, out)
	}
	if out["params"].(float64) != 1 || out["name"] != "q1" {
		t.Fatalf("prepare response: %v", out)
	}

	for i := 0; i < 2; i++ {
		code, out = post(t, ts, "/query", `{"session": "s1", "stmt": "q1", "params": ["Ann"]}`)
		if code != http.StatusOK {
			t.Fatalf("execute status %d: %v", code, out)
		}
		if out["row_count"].(float64) != 2 {
			t.Fatalf("row_count = %v, want 2", out["row_count"])
		}
		if out["cache_hit"] != true {
			t.Fatalf("execution %d was not a cache hit", i+1)
		}
	}
	if st := s.CacheStats(); st.Plans != 1 {
		t.Fatalf("planned %d times over prepare + 2 executes, want 1", st.Plans)
	}

	// Unknown statement and wrong param count are client errors with
	// structured {code, message} bodies.
	code, out = post(t, ts, "/query", `{"session": "s1", "stmt": "nope"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown stmt: status %d: %v", code, out)
	}
	code, out = post(t, ts, "/query", `{"session": "s1", "stmt": "q1", "params": []}`)
	if code != http.StatusBadRequest {
		t.Fatalf("missing params: status %d: %v", code, out)
	}
	if e := out["error"].(map[string]any); !strings.Contains(e["message"].(string), "parameter") {
		t.Fatalf("missing params error: %v", out)
	}
	// Sessions isolate statements.
	code, _ = post(t, ts, "/query", `{"session": "other", "stmt": "q1", "params": ["Ann"]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("statement leaked across sessions: status %d", code)
	}
}

func TestHTTPExplainAndHealthz(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags(), MaxDOP: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/explain?sql=" + strings.ReplaceAll("SELECT n FROM r WHERE n = $1", " ", "%20"))
	if err != nil {
		t.Fatalf("GET /explain: %v", err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(text), "SeqScan r") {
		t.Fatalf("explain: status %d body %q", resp.StatusCode, text)
	}

	// EXPLAIN through /query returns the plan as JSON.
	code, out := post(t, ts, "/query", `{"sql": "EXPLAIN SELECT n FROM r"}`)
	if code != http.StatusOK || !strings.Contains(out["plan"].(string), "SeqScan r") {
		t.Fatalf("EXPLAIN via /query: status %d: %v", code, out)
	}

	code, out = post(t, ts, "/query", `{"sql": "SELECT broken FROM nowhere"}`)
	if code != http.StatusBadRequest || out["error"] == nil {
		t.Fatalf("bad query: status %d: %v", code, out)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	resp.Body.Close()
	if health["ok"] != true {
		t.Fatalf("healthz: %v", health)
	}
	cat := health["catalog"].(map[string]any)
	tables := cat["tables"].([]any)
	if len(tables) != 2 {
		t.Fatalf("healthz tables: %v", tables)
	}
	gate := health["gate"].(map[string]any)
	if gate["capacity"].(float64) != 8 {
		t.Fatalf("healthz gate: %v", gate)
	}
}

// TestHTTPStructuredErrors asserts the {code, message, line, col} error
// object on every failing path: parse errors carry the offending token's
// 1-based statement position, analyzer errors the "analyze" code, and
// request-shape errors the "request" code.
func TestHTTPStructuredErrors(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	errObj := func(body string) map[string]any {
		t.Helper()
		code, out := post(t, ts, "/query", body)
		if code != http.StatusBadRequest || out["error"] == nil {
			t.Fatalf("body %s: status %d: %v", body, code, out)
		}
		e, ok := out["error"].(map[string]any)
		if !ok {
			t.Fatalf("body %s: error is not structured: %v", body, out)
		}
		return e
	}

	// Parse error on line 2, after 8 leading bytes: "SELECT n\nFROM r WHERE".
	e := errObj(`{"sql": "SELECT n\nFROM r WHERE"}`)
	if e["code"] != "parse" {
		t.Fatalf("parse error code = %v", e)
	}
	if e["line"].(float64) != 2 || e["col"].(float64) != 13 {
		t.Fatalf("parse error position = line %v col %v, want 2:13 (%v)", e["line"], e["col"], e)
	}

	e = errObj(`{"sql": "SELECT broken FROM nowhere"}`)
	if e["code"] != "analyze" || !strings.Contains(e["message"].(string), "nowhere") {
		t.Fatalf("analyze error = %v", e)
	}
	if _, hasLine := e["line"]; hasLine {
		t.Fatalf("analyze error should omit position: %v", e)
	}

	e = errObj(`{}`)
	if e["code"] != "request" {
		t.Fatalf("request error = %v", e)
	}

	// Parameter-count mismatch classifies as a request error too.
	code, out := post(t, ts, "/query", `{"sql": "SELECT n FROM r WHERE n = $1"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("missing param: status %d: %v", code, out)
	}
	if e := out["error"].(map[string]any); e["code"] != "request" {
		t.Fatalf("missing param error = %v", e)
	}

	// /prepare errors point into the ORIGINAL (multi-line) text as well.
	code, out = post(t, ts, "/prepare", `{"session":"s","name":"q","sql":"SELECT n\nFROM r WHERE"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("prepare parse error: status %d: %v", code, out)
	}
	if e := out["error"].(map[string]any); e["code"] != "parse" || e["line"].(float64) != 2 || e["col"].(float64) != 13 {
		t.Fatalf("prepare parse error = %v", e)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{not json`,
		`{}`, // neither sql nor stmt
		`{"sql": "SELECT 1 FROM r", "stmt": "x"}`,       // both
		`{"sql": "SELECT n FROM r", "params": [[1,2]]}`, // nested array param
	} {
		code, out := post(t, ts, "/query", body)
		if code != http.StatusBadRequest {
			t.Fatalf("body %s: status %d: %v", body, code, out)
		}
	}
	code, out := post(t, ts, "/prepare", `{"sql": "SELECT n FROM r"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("prepare without name: status %d: %v", code, out)
	}
}
