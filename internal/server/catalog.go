package server

import (
	"sort"
	"strings"
	"sync"

	"talign/internal/relation"
	"talign/internal/stats"
)

// Catalog is the server's thread-safe relation registry. It is
// copy-on-write: readers take an immutable Snapshot (plain maps shared by
// reference, never mutated after publication) without blocking writers,
// and every write replaces the maps wholesale and bumps a version
// counter. The versions are part of every plan-cache key, which is how
// catalog (and statistics) changes invalidate cached plans without any
// cache traversal.
//
// Statistics live beside the relations under their own version counter:
// ANALYZE churns statistics without touching data, and keying the plan
// cache on both versions means a re-ANALYZE invalidates exactly the plans
// whose cost decisions it could change.
type Catalog struct {
	mu           sync.RWMutex
	version      uint64
	statsVersion uint64
	rels         map[string]*relation.Relation
	stats        map[string]*stats.Table
}

// NewCatalog returns an empty catalog at version 0.
func NewCatalog() *Catalog {
	return &Catalog{rels: map[string]*relation.Relation{}, stats: map[string]*stats.Table{}}
}

// Register adds (or replaces) a named relation and bumps the catalog
// version. The relation must not be mutated after registration: snapshots
// and cached plans keep referencing it. Statistics of a replaced relation
// are dropped (re-run ANALYZE to refresh them).
func (c *Catalog) Register(name string, rel *relation.Relation) {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	next := make(map[string]*relation.Relation, len(c.rels)+1)
	for k, v := range c.rels {
		next[k] = v
	}
	next[key] = rel
	c.rels = next
	if _, had := c.stats[key]; had {
		c.stats = copyStatsExcept(c.stats, key)
	}
	c.version++
}

// Drop removes a named relation (and its statistics), reporting whether
// it existed; dropping bumps the version only when something changed.
func (c *Catalog) Drop(name string) bool {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.rels[key]; !ok {
		return false
	}
	next := make(map[string]*relation.Relation, len(c.rels)-1)
	for k, v := range c.rels {
		if k != key {
			next[k] = v
		}
	}
	c.rels = next
	if _, had := c.stats[key]; had {
		c.stats = copyStatsExcept(c.stats, key)
	}
	c.version++
	return true
}

// SetStats installs (or replaces) a table's ANALYZE statistics and bumps
// the statistics version, invalidating cached plans whose cost decisions
// could change.
func (c *Catalog) SetStats(name string, t *stats.Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setStatsLocked(strings.ToLower(name), t)
}

// SetStatsIf installs statistics only if the relation registered under
// name is still rel, reporting whether it did. ANALYZE computes outside
// the catalog lock; this compare-and-set discards results that raced
// with a Register/Drop of the same table, preserving the invariant that
// statistics always describe the registered relation.
func (c *Catalog) SetStatsIf(name string, rel *relation.Relation, t *stats.Table) bool {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rels[key] != rel {
		return false
	}
	c.setStatsLocked(key, t)
	return true
}

// setStatsLocked is the shared install path (caller holds the lock;
// key is lower-case).
func (c *Catalog) setStatsLocked(key string, t *stats.Table) {
	next := make(map[string]*stats.Table, len(c.stats)+1)
	for k, v := range c.stats {
		next[k] = v
	}
	next[key] = t
	c.stats = next
	c.statsVersion++
}

// copyStatsExcept clones a stats map without one key (caller holds the
// lock).
func copyStatsExcept(m map[string]*stats.Table, except string) map[string]*stats.Table {
	next := make(map[string]*stats.Table, len(m))
	for k, v := range m {
		if k != except {
			next[k] = v
		}
	}
	return next
}

// Version returns the current catalog version.
func (c *Catalog) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Snapshot returns an immutable view of the catalog at its current
// versions. Snapshots implement sqlish.StatsCatalog and stay valid (and
// consistent) however the catalog changes afterwards.
func (c *Catalog) Snapshot() Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Snapshot{Version: c.version, StatsVersion: c.statsVersion, rels: c.rels, stats: c.stats}
}

// Snapshot is one immutable catalog version: the maps are shared, never
// mutated, and safe for concurrent lookups.
type Snapshot struct {
	// Version identifies the catalog state this snapshot captured.
	Version uint64
	// StatsVersion identifies the statistics state; it moves
	// independently of Version (ANALYZE bumps only this one).
	StatsVersion uint64

	rels  map[string]*relation.Relation
	stats map[string]*stats.Table
}

// Lookup implements sqlish.Catalog.
func (s Snapshot) Lookup(name string) (*relation.Relation, bool) {
	rel, ok := s.rels[strings.ToLower(name)]
	return rel, ok
}

// TableStats implements plan.StatsSource: the table's ANALYZE statistics,
// or nil when it was never analyzed.
func (s Snapshot) TableStats(name string) *stats.Table {
	return s.stats[strings.ToLower(name)]
}

// Names returns the sorted table names in the snapshot.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s.rels))
	for k := range s.rels {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered relations.
func (s Snapshot) Len() int { return len(s.rels) }
