package server

import (
	"sort"
	"strings"
	"sync"

	"talign/internal/relation"
)

// Catalog is the server's thread-safe relation registry. It is
// copy-on-write: readers take an immutable Snapshot (a plain map shared by
// reference, never mutated after publication) without blocking writers,
// and every write replaces the map wholesale and bumps a version counter.
// The version is part of every plan-cache key, which is how catalog
// changes invalidate cached plans without any cache traversal.
type Catalog struct {
	mu      sync.RWMutex
	version uint64
	rels    map[string]*relation.Relation
}

// NewCatalog returns an empty catalog at version 0.
func NewCatalog() *Catalog {
	return &Catalog{rels: map[string]*relation.Relation{}}
}

// Register adds (or replaces) a named relation and bumps the catalog
// version. The relation must not be mutated after registration: snapshots
// and cached plans keep referencing it.
func (c *Catalog) Register(name string, rel *relation.Relation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := make(map[string]*relation.Relation, len(c.rels)+1)
	for k, v := range c.rels {
		next[k] = v
	}
	next[strings.ToLower(name)] = rel
	c.rels = next
	c.version++
}

// Drop removes a named relation, reporting whether it existed; dropping
// bumps the version only when something changed.
func (c *Catalog) Drop(name string) bool {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.rels[key]; !ok {
		return false
	}
	next := make(map[string]*relation.Relation, len(c.rels)-1)
	for k, v := range c.rels {
		if k != key {
			next[k] = v
		}
	}
	c.rels = next
	c.version++
	return true
}

// Version returns the current catalog version.
func (c *Catalog) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Snapshot returns an immutable view of the catalog at its current
// version. Snapshots implement sqlish.Catalog and stay valid (and
// consistent) however the catalog changes afterwards.
func (c *Catalog) Snapshot() Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Snapshot{Version: c.version, rels: c.rels}
}

// Snapshot is one immutable catalog version: the map is shared, never
// mutated, and safe for concurrent lookups.
type Snapshot struct {
	// Version identifies the catalog state this snapshot captured.
	Version uint64

	rels map[string]*relation.Relation
}

// Lookup implements sqlish.Catalog.
func (s Snapshot) Lookup(name string) (*relation.Relation, bool) {
	rel, ok := s.rels[strings.ToLower(name)]
	return rel, ok
}

// Names returns the sorted table names in the snapshot.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s.rels))
	for k := range s.rels {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered relations.
func (s Snapshot) Len() int { return len(s.rels) }
