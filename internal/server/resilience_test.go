package server

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/sqlish"
	"talign/internal/value"
)

// resilServer builds a server over one table t(v) with n tuples, with a
// config mutator for timeout/budget/flags variations.
func resilServer(t *testing.T, n int, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{Flags: plan.DefaultFlags(), MaxDOP: 16}
	if mut != nil {
		mut(&cfg)
	}
	s := New(cfg)
	b := relation.NewBuilder("v int")
	for i := 0; i < n; i++ {
		b.Row(int64(i%13), int64(i%13)+50, int64(i))
	}
	s.Catalog().Register("t", b.MustBuild())
	return s
}

// drainRows consumes a stream to completion (or error) and closes it.
func drainRows(rs *RowStream) (int, error) {
	defer rs.Close()
	total := 0
	for {
		b, err := rs.Next()
		if err != nil {
			return total, err
		}
		if len(b) == 0 {
			return total, nil
		}
		total += len(b)
	}
}

// assertQuiesced waits for the gate to return to zero in-flight DOP and
// the goroutine count to return to its baseline.
func assertQuiesced(t *testing.T, s *Server, baseline int) {
	t.Helper()
	waitFor(t, 5*time.Second, "gate to release all claims", func() bool {
		return s.GateStats().InUse == 0
	})
	waitFor(t, 5*time.Second, "goroutines to return to baseline", func() bool {
		return runtime.NumGoroutine() <= baseline+2
	})
}

// TestPanicFunctionIsolated is the crash-isolation acceptance test (run
// with -race): a registered SQL function that panics mid-batch must fail
// its query with a structured "internal" error — on the row and columnar
// executors, serial and under a forced-parallel exchange — leak no
// goroutines, release the admission gate, and count into the panic
// metric. The process (and the test binary) must survive every case.
func TestPanicFunctionIsolated(t *testing.T) {
	expr.RegisterFunc("chaos_panic_at", expr.RegisteredFunc{
		MinArity: 2, MaxArity: 2, Result: value.KindInt,
		Eval: func(args []value.Value) (value.Value, error) {
			if args[0].Int() == args[1].Int() {
				panic("chaos function panic")
			}
			return args[0], nil
		},
	})
	t.Cleanup(func() { expr.UnregisterFunc("chaos_panic_at") })

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"row-serial", func(c *Config) { c.Flags.DisableColumnar = true }},
		{"row-parallel", func(c *Config) {
			c.Flags.DisableColumnar = true
			c.Flags.DOP = 4
			c.Flags.ForceParallel = true
		}},
		{"col-serial", nil},
		{"col-parallel", func(c *Config) {
			c.Flags.DOP = 4
			c.Flags.ForceParallel = true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			s := resilServer(t, 5000, tc.mut)

			rs, err := s.Stream(context.Background(), "", "", "SELECT v, Ts, Te FROM t WHERE chaos_panic_at(v, 7) = v", nil)
			if err == nil {
				_, err = drainRows(rs)
			}
			var pe *exec.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("got %v, want *exec.PanicError", err)
			}
			if fmt.Sprint(pe.Val) != "chaos function panic" {
				t.Fatalf("recovered wrong panic value: %v", pe.Val)
			}
			if code := errorCode(err); code != sqlish.ErrInternal {
				t.Fatalf("errorCode = %q, want %q", code, sqlish.ErrInternal)
			}
			if got := s.panics.Load(); got != 1 {
				t.Fatalf("panics metric = %d, want 1", got)
			}
			assertQuiesced(t, s, baseline)
		})
	}
}

// TestQueryTimeout proves the server-side per-query deadline aborts a
// long execution with the "timeout" code, releasing the gate and leaking
// nothing.
func TestQueryTimeout(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := resilServer(t, 4000, func(c *Config) {
		c.Timeout = 100 * time.Millisecond
		c.Flags.DOP = 4
		c.Flags.ForceParallel = true
	})

	start := time.Now()
	rs, err := s.Stream(context.Background(), "", "", "SELECT v, Ts, Te FROM (t a ALIGN t b ON true) x", nil)
	if err == nil {
		_, err = drainRows(rs)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if code := errorCode(err); code != sqlish.ErrTimeout {
		t.Fatalf("errorCode = %q, want %q", code, sqlish.ErrTimeout)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %s to take effect", elapsed)
	}
	if got := s.timeouts.Load(); got != 1 {
		t.Fatalf("timeouts metric = %d, want 1", got)
	}
	assertQuiesced(t, s, baseline)
}

// TestResourceBudget proves the per-query row budget aborts a query that
// pushes too many tuples through operator boundaries, with the
// "resource" code and a clean teardown.
func TestResourceBudget(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := resilServer(t, 5000, func(c *Config) { c.MaxRows = 50 })

	rs, err := s.Stream(context.Background(), "", "", "SELECT v, Ts, Te FROM t", nil)
	if err == nil {
		_, err = drainRows(rs)
	}
	var be *exec.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *exec.BudgetError", err)
	}
	if code := errorCode(err); code != sqlish.ErrResource {
		t.Fatalf("errorCode = %q, want %q", code, sqlish.ErrResource)
	}
	if got := s.resourceAborts.Load(); got != 1 {
		t.Fatalf("resourceAborts metric = %d, want 1", got)
	}
	assertQuiesced(t, s, baseline)
}

// TestBudgetAllowsSmallResults proves a budget above a query's needs
// changes nothing: the full result still streams.
func TestBudgetAllowsSmallResults(t *testing.T) {
	s := resilServer(t, 100, func(c *Config) { c.MaxRows = 100_000; c.MaxBytes = 100 << 20 })
	rs, err := s.Stream(context.Background(), "", "", "SELECT v, Ts, Te FROM t", nil)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	n, err := drainRows(rs)
	if err != nil || n != 100 {
		t.Fatalf("got %d rows, err %v; want 100, nil", n, err)
	}
}

// TestDrainLifecycle proves BeginDrain flips /readyz to 503 (with the
// structured "unavailable" body), refuses new queries with the same
// code, keeps /healthz alive, and lets an in-flight stream finish.
func TestDrainLifecycle(t *testing.T) {
	s := resilServer(t, 2000, nil)
	h := s.Handler()

	probe := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	if code, _ := probe("/readyz"); code != 200 {
		t.Fatalf("/readyz before drain: %d, want 200", code)
	}

	// Open a stream, then drain with it still in flight.
	rs, err := s.Stream(context.Background(), "", "", "SELECT v, Ts, Te FROM t", nil)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	s.BeginDrain()

	if code, body := probe("/readyz"); code != 503 || !strings.Contains(body, sqlish.ErrUnavailable) {
		t.Fatalf("/readyz draining: %d %q, want 503 with %q", code, body, sqlish.ErrUnavailable)
	}
	if code, _ := probe("/healthz"); code != 200 {
		t.Fatalf("/healthz draining: %d, want 200 (liveness is not readiness)", code)
	}
	if _, body := probe("/metrics"); !strings.Contains(body, "talignd_draining 1") {
		t.Fatal("/metrics does not report talignd_draining 1")
	}

	// New work is refused with the structured code...
	_, err = s.Stream(context.Background(), "", "", "SELECT v, Ts, Te FROM t", nil)
	var se *sqlish.Error
	if !errors.As(err, &se) || se.Code != sqlish.ErrUnavailable {
		t.Fatalf("query during drain: %v, want structured %q error", err, sqlish.ErrUnavailable)
	}
	// ...while the in-flight stream still completes.
	n, err := drainRows(rs)
	if err != nil || n != 2000 {
		t.Fatalf("in-flight stream under drain: %d rows, err %v; want 2000, nil", n, err)
	}
}

// TestPanicDoesNotDisturbConcurrentQuery runs a slow parallel ALIGN
// while a second query panics: the panic must fail only its own query.
func TestPanicDoesNotDisturbConcurrentQuery(t *testing.T) {
	expr.RegisterFunc("chaos_always_panic", expr.RegisteredFunc{
		MinArity: 1, MaxArity: 1, Result: value.KindInt,
		Eval: func(args []value.Value) (value.Value, error) {
			panic("concurrent chaos")
		},
	})
	t.Cleanup(func() { expr.UnregisterFunc("chaos_always_panic") })

	baseline := runtime.NumGoroutine()
	s := resilServer(t, 2000, func(c *Config) {
		c.Flags.DOP = 4
		c.Flags.ForceParallel = true
	})

	type result struct {
		rows int
		err  error
	}
	alignDone := make(chan result, 1)
	go func() {
		rs, err := s.Stream(context.Background(), "", "", "SELECT v, Ts, Te FROM (t a ALIGN t b ON true) x", nil)
		if err != nil {
			alignDone <- result{0, err}
			return
		}
		n, err := rs.Next() // hold the stream open past the panic below
		if err != nil {
			alignDone <- result{0, err}
			return
		}
		total := len(n)
		more, err := drainRows(rs)
		alignDone <- result{total + more, err}
	}()

	waitFor(t, 10*time.Second, "align stream to produce rows", func() bool {
		return s.rowsStreamed.Load() > 0
	})
	rs, err := s.Stream(context.Background(), "", "", "SELECT v, Ts, Te FROM t WHERE chaos_always_panic(v) = v", nil)
	if err == nil {
		_, err = drainRows(rs)
	}
	var pe *exec.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking query: got %v, want *exec.PanicError", err)
	}

	res := <-alignDone
	if res.err != nil {
		t.Fatalf("concurrent ALIGN was disturbed: %v", res.err)
	}
	if res.rows == 0 {
		t.Fatal("concurrent ALIGN produced no rows")
	}
	assertQuiesced(t, s, baseline)
}
