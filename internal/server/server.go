// Package server implements talignd's concurrent query-serving layer on
// top of the sqlish Parse → Analyze → Plan → Execute pipeline: a
// copy-on-write catalog with a version counter, an LRU cache of prepared
// plans keyed on normalized SQL + catalog version + planner flags, named
// prepared statements with $N placeholders scoped to sessions, an
// admission gate bounding the total in-flight degree of parallelism, and
// an HTTP/JSON front end (POST /query, POST /prepare, GET /explain,
// GET /healthz).
//
// The layering invariant the whole package leans on: a sqlish.Prepared is
// immutable and its Execute builds a fresh executor tree per call, so one
// cached plan serves any number of concurrent executions; all mutable
// state (catalog map, cache LRU list, sessions, gate) is owned here and
// guarded explicitly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"talign/internal/exec"
	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/sqlish"
	"talign/internal/stats"
	"talign/internal/storage"
	"talign/internal/value"
	"talign/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// Flags are the planner flags every statement is planned under (the
	// fingerprint participates in plan-cache keys).
	Flags plan.Flags
	// CacheSize is the prepared-plan cache capacity (DefaultCacheSize when
	// zero).
	CacheSize int
	// MaxDOP bounds the total in-flight degree of parallelism across
	// concurrent queries; 0 means unlimited.
	MaxDOP int
	// Timeout is the per-query deadline: every execution (buffered or
	// streamed, including its wait at the admission gate) runs under a
	// context that expires after this long. 0 means no server-side
	// deadline; clients can still bring their own through the request
	// context. Expiry aborts with the wire code "timeout".
	Timeout time.Duration
	// MaxRows and MaxBytes are the per-query resource budget: cumulative
	// tuples / approximate bytes crossing operator boundaries (see
	// exec.Budget). 0 means unlimited; exhaustion aborts with the wire
	// code "resource".
	MaxRows  int64
	MaxBytes int64
}

// Server is the concurrent query server: it owns the catalog, the plan
// cache, the session table and the admission gate. All methods are safe
// for concurrent use.
type Server struct {
	flags    plan.Flags
	flagsFP  string
	catalog  *Catalog
	cache    *PlanCache
	gate     *Gate
	sess     sessions
	store    *storage.Store
	start    time.Time
	timeout  time.Duration
	maxRows  int64
	maxBytes int64
	dist     Distributor
	draining atomic.Bool

	queries        atomic.Uint64
	errors         atomic.Uint64
	cancels        atomic.Uint64
	timeouts       atomic.Uint64
	resourceAborts atomic.Uint64
	panics         atomic.Uint64
	streams        atomic.Uint64
	rowsStreamed   atomic.Uint64
}

// New creates a server with an empty catalog.
func New(cfg Config) *Server {
	return &Server{
		flags:    cfg.Flags,
		flagsFP:  cfg.Flags.Fingerprint(),
		catalog:  NewCatalog(),
		cache:    NewPlanCache(cfg.CacheSize),
		gate:     NewGate(cfg.MaxDOP),
		start:    time.Now(),
		timeout:  cfg.Timeout,
		maxRows:  cfg.MaxRows,
		maxBytes: cfg.MaxBytes,
	}
}

// BeginDrain flips the server into draining mode: /readyz starts
// reporting 503, and new queries are refused with the wire code
// "unavailable" while in-flight executions (streaming cursors included)
// run to completion. Draining is one-way — a drained server is on its
// way down.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// errDraining is the structured refusal new queries get while draining.
func errDraining() error {
	return &sqlish.Error{Code: sqlish.ErrUnavailable, Msg: "server is draining; not accepting new queries", Pos: -1}
}

// Catalog exposes the server's relation registry (for loading data).
func (s *Server) Catalog() *Catalog { return s.catalog }

// CacheStats exposes the plan-cache counters (tests and /healthz).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// GateStats exposes the admission-gate counters; a drained idle server
// must report zero in-flight DOP.
func (s *Server) GateStats() GateStats { return s.gate.Stats() }

// plan resolves SQL text to a cached (or freshly prepared) plan against
// the current catalog snapshot. The second result reports a cache hit.
func (s *Server) plan(norm string) (*sqlish.Prepared, bool, error) {
	return s.planWith(norm, 0)
}

// planWith is plan with a per-request batch-size override (batch <= 0
// keeps the server's configured flags). Overridden plans are cached like
// any other: the flags fingerprint in the cache key includes the batch
// size, so requests with different overrides never share a plan.
func (s *Server) planWith(norm string, batch int) (*sqlish.Prepared, bool, error) {
	flags, fp := s.flags, s.flagsFP
	if batch > 0 && batch != flags.BatchSize {
		flags.BatchSize = batch
		fp = flags.Fingerprint()
	}
	snap := s.catalog.Snapshot()
	key := cacheKey{sql: norm, version: snap.Version, stats: snap.StatsVersion, flags: fp}
	return s.cache.GetOrPrepare(key, func() (*sqlish.Prepared, error) {
		return sqlish.Prepare(norm, snap, flags)
	})
}

// Analyze computes and installs statistics for one table, invalidating
// cached plans through the statistics version in the cache key. The scan
// runs outside the catalog lock; SetStatsIf discards the result if the
// table was re-registered (or dropped) meanwhile, so statistics can
// never describe a relation other than the registered one.
func (s *Server) Analyze(name string) (*stats.Table, error) {
	rel, ok := s.catalog.Snapshot().Lookup(name)
	if !ok {
		return nil, fmt.Errorf("server: ANALYZE: unknown table %q", name)
	}
	t := stats.Analyze(rel)
	if !s.catalog.SetStatsIf(name, rel, t) {
		return nil, fmt.Errorf("server: ANALYZE %s: table changed during analysis; re-run", name)
	}
	return t, nil
}

// AnalyzeAll analyzes every registered table (auto-analyze after bulk
// loads) and returns how many it processed; tables that change mid-scan
// are skipped (their next ANALYZE refreshes them).
func (s *Server) AnalyzeAll() int {
	snap := s.catalog.Snapshot()
	n := 0
	for _, name := range snap.Names() {
		if rel, ok := snap.Lookup(name); ok {
			if s.catalog.SetStatsIf(name, rel, stats.Analyze(rel)) {
				n++
			}
		}
	}
	return n
}

// Prepare parses, plans and caches sql, then registers it under name in
// the session. The returned plan carries the statement's parameter count
// and result schema. Parsing happens against the original text, so
// syntax errors carry the client statement's line/col.
func (s *Server) Prepare(sessionID, name, sql string) (*sqlish.Prepared, error) {
	if strings.TrimSpace(name) == "" {
		return nil, fmt.Errorf("server: prepared statement needs a name")
	}
	_, norm, err := sqlish.ParseNormalized(sql)
	if err != nil {
		return nil, err
	}
	prep, _, err := s.plan(norm)
	if err != nil {
		return nil, err
	}
	s.sess.get(sessionID).setStmt(name, norm)
	return prep, nil
}

// Result is one query's outcome: either a relation or (for EXPLAIN) a
// plan rendering, plus whether the plan came out of the cache.
type Result struct {
	// Rel holds the result rows (nil for EXPLAIN statements).
	Rel *relation.Relation
	// Plan holds the EXPLAIN rendering (empty for ordinary statements).
	Plan string
	// CacheHit reports whether the plan was served from the cache.
	CacheHit bool
}

// Query executes ad-hoc SQL (stmtName == "") or a session's named
// prepared statement, binding params to $1..$N, buffering the full
// result. Execution is admitted through the DOP gate.
func (s *Server) Query(sessionID, stmtName, sql string, params []value.Value) (Result, error) {
	return s.QueryContext(context.Background(), sessionID, stmtName, sql, params)
}

// QueryContext is Query under a context: cancellation aborts the
// execution cooperatively (including while queued at the admission gate).
// It is implemented over the streaming core — the buffered path IS the
// stream, drained to completion — so buffered and streamed executions
// can never diverge.
func (s *Server) QueryContext(ctx context.Context, sessionID, stmtName, sql string, params []value.Value) (Result, error) {
	return s.QueryBatch(ctx, sessionID, stmtName, sql, params, 0)
}

// QueryBatch is QueryContext with a per-request batch-size override
// (batch <= 0 keeps the server's configured batch size).
func (s *Server) QueryBatch(ctx context.Context, sessionID, stmtName, sql string, params []value.Value, batch int) (Result, error) {
	rs, err := s.StreamBatch(ctx, sessionID, stmtName, sql, params, batch)
	if err != nil {
		return Result{}, err
	}
	defer rs.Close()
	if rs.Plan() != "" {
		return Result{Plan: rs.Plan(), CacheHit: rs.CacheHit()}, nil
	}
	rel := relation.New(rs.sch)
	for {
		b, nerr := rs.Next()
		if nerr != nil {
			return Result{}, nerr
		}
		if len(b) == 0 {
			break
		}
		// Batches are reused by the executor; the tuple structs copy
		// safely per the batch ownership contract.
		rel.Tuples = append(rel.Tuples, b...)
	}
	return Result{Rel: rel, CacheHit: rs.CacheHit()}, nil
}

// Explain plans the statement (through the cache) and renders its plan,
// for ad-hoc SQL or a named prepared statement.
func (s *Server) Explain(sessionID, stmtName, sql string) (string, error) {
	var norm string
	var err error
	if stmtName != "" {
		info, lerr := s.sess.get(sessionID).stmt(stmtName)
		if lerr != nil {
			return "", lerr
		}
		norm = info.norm
	} else {
		_, norm, err = sqlish.ParseNormalized(sql)
		if err != nil {
			return "", err
		}
	}
	if s.dist != nil {
		st, perr := sqlish.Parse(norm)
		if perr != nil {
			return "", perr
		}
		if text, handled, derr := s.dist.DistExplain(st, norm); handled {
			return text, derr
		}
	}
	prep, _, err := s.plan(norm)
	if err != nil {
		return "", err
	}
	return prep.Explain(), nil
}

// ------------------------------------------------------------------ HTTP

// Handler returns the HTTP front end:
//
//	POST /query         {"sql": "...", "params": [...]} or
//	                    {"session": "s", "stmt": "name", "params": [...]}
//	POST /query/stream  same body; chunked batch-framed NDJSON response
//	POST /prepare       {"session": "s", "name": "q1", "sql": "... $1 ..."}
//	GET  /explain       ?sql=... | ?session=s&stmt=name     (text/plain)
//	GET  /healthz       liveness + catalog/cache/gate statistics
//	GET  /readyz        readiness: 200 while serving, 503 once draining
//	GET  /stats         per-table ANALYZE statistics + plan-cache counters
//	GET  /metrics       Prometheus text-format counters
//
// Both query endpoints execute under the request's context: a client
// that disconnects (or times out) cancels the context, and the
// cancellation propagates into every operator of the running plan.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /query/stream", s.handleQueryStream)
	mux.HandleFunc("POST /prepare", s.handlePrepare)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// queryRequest is the POST /query and POST /prepare body.
type queryRequest struct {
	// Session scopes prepared statements; empty means DefaultSessionID.
	Session string `json:"session,omitempty"`
	// Name names the statement being prepared (POST /prepare only).
	Name string `json:"name,omitempty"`
	// Stmt executes a previously prepared statement by name.
	Stmt string `json:"stmt,omitempty"`
	// SQL is the ad-hoc statement text.
	SQL string `json:"sql,omitempty"`
	// Params bind $1..$N in order: JSON null, booleans, numbers (integers
	// stay int64, anything with a fraction becomes float) and strings.
	Params []any `json:"params,omitempty"`
	// Batch overrides the executor batch size for this request (from the
	// client DSN's batch= option); 0 keeps the server default.
	Batch int `json:"batch,omitempty"`
}

// queryResponse is the POST /query result. Columns and Types list the
// visible attributes followed by the valid-time bounds "ts" and "te";
// each row is the matching array of values.
type queryResponse struct {
	Columns  []string `json:"columns,omitempty"`
	Types    []string `json:"types,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	RowCount int      `json:"row_count"`
	Plan     string   `json:"plan,omitempty"`
	CacheHit bool     `json:"cache_hit"`
}

// prepareResponse is the POST /prepare result.
type prepareResponse struct {
	Session string   `json:"session"`
	Name    string   `json:"name"`
	Params  int      `json:"params"`
	Columns []string `json:"columns"`
	Types   []string `json:"types"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, params, err := decodeRequest(r)
	if err != nil {
		httpError(w, err)
		return
	}
	res, err := s.QueryBatch(r.Context(), req.Session, req.Stmt, req.SQL, params, req.Batch)
	if err != nil {
		httpError(w, err)
		return
	}
	if res.Plan != "" {
		writeJSON(w, queryResponse{Plan: res.Plan, CacheHit: res.CacheHit})
		return
	}
	writeJSON(w, encodeRelation(res.Rel, res.CacheHit))
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	req, _, err := decodeRequest(r)
	if err != nil {
		httpError(w, err)
		return
	}
	prep, err := s.Prepare(req.Session, req.Name, req.SQL)
	if err != nil {
		httpError(w, err)
		return
	}
	cols, types := SchemaColumns(prep)
	sessionID := req.Session
	if sessionID == "" {
		sessionID = DefaultSessionID
	}
	writeJSON(w, prepareResponse{
		Session: sessionID,
		Name:    req.Name,
		Params:  prep.NumParams,
		Columns: cols,
		Types:   types,
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	text, err := s.Explain(q.Get("session"), q.Get("stmt"), q.Get("sql"))
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, text)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.catalog.Snapshot()
	writeJSON(w, map[string]any{
		"ok":       true,
		"uptime_s": int64(time.Since(s.start).Seconds()),
		"queries":  s.queries.Load(),
		"errors":   s.errors.Load(),
		"sessions": s.sess.count(),
		"catalog": map[string]any{
			"version": snap.Version,
			"tables":  snap.Names(),
		},
		"cache": s.cache.Stats(),
		"gate":  s.gate.Stats(),
	})
}

// handleReadyz is the readiness probe, distinct from /healthz liveness:
// a draining server is still alive (in-flight streams are finishing) but
// must stop receiving new work, so load balancers watch this endpoint.
// While draining it returns 503 with the structured "unavailable" error
// body every refused query also gets.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		httpError(w, errDraining())
		return
	}
	writeJSON(w, map[string]any{"ready": true})
}

// columnStatsJSON is one column's statistics in the GET /stats response.
type columnStatsJSON struct {
	Name        string  `json:"name"`
	Type        string  `json:"type"`
	Distinct    float64 `json:"distinct"`
	NullFrac    float64 `json:"null_frac"`
	Min         any     `json:"min"`
	Max         any     `json:"max"`
	HistBuckets int     `json:"hist_buckets"`
}

// tableStatsJSON is one table's entry in the GET /stats response.
type tableStatsJSON struct {
	Name     string            `json:"name"`
	Rows     int               `json:"rows"`
	Analyzed bool              `json:"analyzed"`
	Columns  []columnStatsJSON `json:"columns,omitempty"`
	Interval any               `json:"interval,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.catalog.Snapshot()
	tables := make([]tableStatsJSON, 0, snap.Len())
	for _, name := range snap.Names() {
		rel, _ := snap.Lookup(name)
		entry := tableStatsJSON{Name: name, Rows: rel.Len()}
		if t := snap.TableStats(name); t != nil && len(t.Cols) == rel.Schema.Len() {
			entry.Analyzed = true
			for i, c := range t.Cols {
				at := rel.Schema.Attrs[i]
				entry.Columns = append(entry.Columns, columnStatsJSON{
					Name:        at.Name,
					Type:        at.Type.String(),
					Distinct:    c.Distinct,
					NullFrac:    c.NullFrac,
					Min:         wire.Cell(c.Min),
					Max:         wire.Cell(c.Max),
					HistBuckets: c.Hist.Buckets(),
				})
			}
			entry.Interval = map[string]any{
				"span_ts":     t.T.Span.Ts,
				"span_te":     t.T.Span.Te,
				"avg_dur":     t.T.AvgDur,
				"distinct":    t.T.DistinctT,
				"avg_overlap": t.T.AvgOverlap,
			}
		}
		tables = append(tables, entry)
	}
	writeJSON(w, map[string]any{
		"catalog_version": snap.Version,
		"stats_version":   snap.StatsVersion,
		"tables":          tables,
		"cache":           s.cache.Stats(),
	})
}

// decodeRequest parses a JSON request body, converting params with
// json.Number semantics so integers survive exactly.
func decodeRequest(r *http.Request) (queryRequest, []value.Value, error) {
	var req queryRequest
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		return req, nil, fmt.Errorf("server: bad request body: %v", err)
	}
	params := make([]value.Value, len(req.Params))
	for i, p := range req.Params {
		v, err := wire.Value(p)
		if err != nil {
			return req, nil, fmt.Errorf("server: param $%d: %v", i+1, err)
		}
		params[i] = v
	}
	return req, params, nil
}

// encodeRelation renders a result relation as a queryResponse.
func encodeRelation(rel *relation.Relation, cacheHit bool) queryResponse {
	cols := make([]string, 0, rel.Schema.Len()+2)
	types := make([]string, 0, rel.Schema.Len()+2)
	for _, at := range rel.Schema.Attrs {
		cols = append(cols, at.Name)
		types = append(types, at.Type.String())
	}
	cols = append(cols, "ts", "te")
	types = append(types, "int", "int")
	rows := make([][]any, rel.Len())
	for i, t := range rel.Tuples {
		row := make([]any, 0, len(t.Vals)+2)
		for _, v := range t.Vals {
			row = append(row, wire.Cell(v))
		}
		row = append(row, t.T.Ts, t.T.Te)
		rows[i] = row
	}
	return queryResponse{
		Columns:  cols,
		Types:    types,
		Rows:     rows,
		RowCount: rel.Len(),
		CacheHit: cacheHit,
	}
}

// SchemaColumns lists a prepared statement's result columns and types:
// the visible attributes followed by the valid-time bounds "ts" and
// "te". It is the one definition of the wire schema shape (the public
// talign package reuses it for embedded cursors).
func SchemaColumns(prep *sqlish.Prepared) (cols, types []string) {
	sch := prep.Schema()
	for _, at := range sch.Attrs {
		cols = append(cols, at.Name)
		types = append(types, at.Type.String())
	}
	cols = append(cols, "ts", "te")
	types = append(types, "int", "int")
	return cols, types
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are sent; nothing more to do than note it in the log-less
		// world of this server.
		_ = err
	}
}

// httpError renders a structured JSON error {code, message, line, col}
// with the HTTP status the code implies: parse errors keep the offending
// token's statement position, other pipeline stages classify by code
// (see errorCode).
func httpError(w http.ResponseWriter, err error) {
	we := wire.FromError(err, errorCode(err))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(statusForCode(we.Code))
	json.NewEncoder(w).Encode(map[string]any{"error": we})
}

// statusForCode maps wire error codes to HTTP statuses: caller mistakes
// are 400s, lifecycle refusals and resource aborts get their
// conventional 5xx/429 statuses so proxies and retry layers can react
// without parsing the body.
func statusForCode(code string) int {
	switch code {
	case sqlish.ErrInternal:
		return http.StatusInternalServerError
	case sqlish.ErrUnavailable:
		return http.StatusServiceUnavailable
	case sqlish.ErrTimeout:
		return http.StatusGatewayTimeout
	case sqlish.ErrResource:
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

// errorCode picks the wire code for a non-structured error. Resilience
// outcomes come first — recovered panics report "internal", budget
// aborts "resource", deadline expiry "timeout" (whichever side set the
// deadline), plain cancellation "cancelled" — then server-side
// request/protocol problems report "request" and everything else that
// reached execution reports "execute" (analyzer errors carry the sqlish
// prefix and report "analyze").
func errorCode(err error) string {
	var pe *exec.PanicError
	var be *exec.BudgetError
	msg := err.Error()
	switch {
	case errors.As(err, &pe):
		return sqlish.ErrInternal
	case errors.As(err, &be):
		return sqlish.ErrResource
	case errors.Is(err, context.DeadlineExceeded):
		return sqlish.ErrTimeout
	case errors.Is(err, context.Canceled):
		return sqlish.ErrCancelled
	case strings.HasPrefix(msg, "server:"):
		return "request"
	case strings.HasPrefix(msg, "sqlish:"):
		return sqlish.ErrAnalyze
	default:
		return sqlish.ErrExecute
	}
}
