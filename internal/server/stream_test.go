package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"talign/internal/exec"
	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/wire"
)

// postStream sends a query to /query/stream and decodes every NDJSON
// frame.
func postStream(t *testing.T, ts *httptest.Server, body string) (int, []wire.Frame) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query/stream", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /query/stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	var frames []wire.Frame
	for {
		var f wire.Frame
		if err := dec.Decode(&f); err != nil {
			break
		}
		frames = append(frames, f)
	}
	return resp.StatusCode, frames
}

// TestStreamProtocol checks the frame sequence of a row-producing
// statement: schema, rows, trailing status with the exact row count.
func TestStreamProtocol(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, frames := postStream(t, ts, `{"sql": "SELECT a FROM p WHERE a >= 40 ORDER BY a"}`)
	if code != http.StatusOK || len(frames) < 3 {
		t.Fatalf("status %d, %d frames", code, len(frames))
	}
	if frames[0].Frame != wire.FrameSchema {
		t.Fatalf("first frame = %q", frames[0].Frame)
	}
	if got := frames[0].Columns; len(got) != 3 || got[0] != "a" || got[1] != "ts" || got[2] != "te" {
		t.Fatalf("schema columns = %v", got)
	}
	last := frames[len(frames)-1]
	if last.Frame != wire.FrameStatus || last.RowCount != 4 {
		t.Fatalf("last frame = %+v", last)
	}
	var rows int
	for _, f := range frames[1 : len(frames)-1] {
		if f.Frame != wire.FrameRows {
			t.Fatalf("mid frame = %q", f.Frame)
		}
		rows += len(f.Rows)
	}
	if rows != 4 {
		t.Fatalf("streamed %d rows, want 4", rows)
	}

	// EXPLAIN streams a plan frame then a status frame.
	_, frames = postStream(t, ts, `{"sql": "EXPLAIN SELECT a FROM p"}`)
	if len(frames) != 2 || frames[0].Frame != wire.FramePlan || !strings.Contains(frames[0].Plan, "SeqScan p") {
		t.Fatalf("EXPLAIN frames = %+v", frames)
	}

	// Errors before any row travel as a structured HTTP error.
	code, _ = postStream(t, ts, `{"sql": "SELECT nope FROM nowhere"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad query status = %d", code)
	}
}

// diffQueries are the ≥10 statement shapes of the acceptance criterion:
// the streamed result must be byte-equal to the buffered result for
// every one of them.
var diffQueries = []struct {
	sql    string
	params string
}{
	{"SELECT a, mn, mx FROM p ORDER BY a, mn", ""},
	{"SELECT n FROM r WHERE n = $1", `["Ann"]`},
	{"SELECT DISTINCT n FROM r ORDER BY n", ""},
	{"SELECT ABSORB n FROM r", ""},
	{"SELECT n, a FROM r, p WHERE a >= $1 ORDER BY n, a LIMIT 7", `[40]`},
	{"SELECT n, a FROM r JOIN p ON a >= 30 ORDER BY n, a DESC OFFSET 2", ""},
	{"SELECT r.n, x.n2 FROM r LEFT OUTER JOIN (SELECT n n2, Ts, Te FROM r WHERE n = 'Joe') x ON r.n = x.n2 ORDER BY r.n", ""},
	{"SELECT n, Ts, Te FROM (r a NORMALIZE r b USING (n)) x ORDER BY n, Ts", ""},
	{"WITH r2 AS (SELECT Ts Us, Te Ue, * FROM r) SELECT n, Us, Ue, x.Ts, x.Te FROM (r2 ALIGN p ON DUR(Us, Ue) BETWEEN mn AND mx) x ORDER BY n, Us, Ts", ""},
	{"SELECT n, COUNT(*) c, Ts, Te FROM (r a NORMALIZE r b USING ()) x GROUP BY n, Ts, Te ORDER BY n, Ts", ""},
	{"SELECT n FROM r UNION SELECT n FROM r ORDER BY n", ""},
	{"SELECT a + mn AS s, a * 2 AS d FROM p WHERE a BETWEEN $1 AND $2 ORDER BY s, d", `[30, 50]`},
	{"SELECT v FROM nums ORDER BY v LIMIT 100 OFFSET 450", ""},
}

// TestStreamedEqualsBuffered is the differential acceptance test: for
// every query shape, the rows coming off the NDJSON stream must be
// byte-identical (as canonical JSON) to the rows of the buffered
// /query response, and the row counts must agree.
func TestStreamedEqualsBuffered(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags()})
	// A larger relation so results span several executor batches (the
	// stream emits one rows frame per batch).
	b := relation.NewBuilder("v int")
	for i := 0; i < 5000; i++ {
		b.Row(int64(i%97), int64(i%97)+40, int64(i))
	}
	s.Catalog().Register("nums", b.MustBuild())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, q := range diffQueries {
		body := fmt.Sprintf(`{"sql": %q}`, q.sql)
		if q.params != "" {
			body = fmt.Sprintf(`{"sql": %q, "params": %s}`, q.sql, q.params)
		}
		code, buffered := post(t, ts, "/query", body)
		if code != http.StatusOK {
			t.Fatalf("%s: buffered status %d: %v", q.sql, code, buffered)
		}
		code, frames := postStream(t, ts, body)
		if code != http.StatusOK {
			t.Fatalf("%s: streamed status %d", q.sql, code)
		}
		var streamedRows []any
		var status *wire.Frame
		for i := range frames {
			switch frames[i].Frame {
			case wire.FrameRows:
				for _, r := range frames[i].Rows {
					streamedRows = append(streamedRows, r)
				}
			case wire.FrameStatus:
				status = &frames[i]
			case wire.FrameError:
				t.Fatalf("%s: error frame: %v", q.sql, frames[i].Error)
			}
		}
		if status == nil {
			t.Fatalf("%s: stream ended without a status frame", q.sql)
		}
		wantCount := int64(buffered["row_count"].(float64))
		if status.RowCount != wantCount || int64(len(streamedRows)) != wantCount {
			t.Fatalf("%s: streamed %d rows (status %d), buffered %d", q.sql, len(streamedRows), status.RowCount, wantCount)
		}
		bufRows, ok := buffered["rows"].([]any)
		if !ok {
			bufRows = nil
		}
		want, err := json.Marshal(bufRows)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(streamedRows)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(normalizeJSON(t, got), normalizeJSON(t, want)) {
			t.Fatalf("%s: streamed rows differ from buffered rows\nstreamed: %.200s\nbuffered: %.200s", q.sql, got, want)
		}
	}
}

// normalizeJSON round-trips through any to erase json.Number vs float64
// representation differences between the two decode paths.
func normalizeJSON(t *testing.T, data []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return out
}

// bigAlignServer registers a relation large enough that the self-ALIGN
// below runs for a long time (seconds), with parallel plans forced so
// exchange workers are part of the cancellation picture.
func bigAlignServer(t *testing.T, n int) (*Server, string) {
	t.Helper()
	flags := plan.DefaultFlags()
	flags.DOP = 4
	flags.ForceParallel = true
	s := New(Config{Flags: flags, MaxDOP: 16})
	b := relation.NewBuilder("v int")
	for i := 0; i < n; i++ {
		b.Row(int64(i%13), int64(i%13)+50, int64(i))
	}
	s.Catalog().Register("big", b.MustBuild())
	// Every tuple overlaps nearly every other: group construction feeds
	// the plane sweep ~n² pairs.
	return s, "SELECT v, Ts, Te FROM (big a ALIGN big b ON true) x"
}

// TestCancelMidAlign is the cancellation acceptance test (run with
// -race): cancelling a context mid-ALIGN on a large relation must return
// promptly with context.Canceled, leak no goroutines, release the
// admission gate, and be visible in the operator instrumentation
// counters.
func TestCancelMidAlign(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, sql := bigAlignServer(t, 4000)

	before := exec.CancelObserved()
	ctx, cancel := context.WithCancel(context.Background())
	rs, err := s.Stream(ctx, "", "", sql, nil)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	// Pull one batch so the pipeline is demonstrably mid-flight, then
	// cancel and require a prompt cooperative abort.
	if _, err := rs.Next(); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	cancel()
	start := time.Now()
	var nerr error
	for {
		_, nerr = rs.Next()
		if nerr != nil {
			break
		}
		if time.Since(start) > 10*time.Second {
			t.Fatal("cancelled query kept producing batches for 10s")
		}
	}
	if !errors.Is(nerr, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", nerr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	rs.Close()

	// Operator instrumentation saw the abort.
	if after := exec.CancelObserved(); after <= before {
		t.Fatalf("exec.CancelObserved() = %d, want > %d", after, before)
	}
	// Gate slots released.
	waitFor(t, 5*time.Second, "gate drain", func() bool {
		return s.gate.Stats().InUse == 0
	})
	// No goroutine leaks: exchange workers, splitter producers and drain
	// helpers must all exit.
	waitFor(t, 10*time.Second, "goroutine drain", func() bool {
		return runtime.NumGoroutine() <= baseline+2
	})
	// Cancellation is counted.
	if s.cancels.Load() == 0 {
		t.Fatal("server cancel counter did not move")
	}
}

// TestCancelOnClientDisconnect: dropping the HTTP connection mid-stream
// aborts the query server-side (request-context propagation).
func TestCancelOnClientDisconnect(t *testing.T) {
	s, sql := bigAlignServer(t, 4000)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := exec.CancelObserved()
	resp, err := http.Post(ts.URL+"/query/stream", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"sql": %q}`, sql))))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	// Read a little, then hang up without draining.
	buf := make([]byte, 1024)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	resp.Body.Close()

	waitFor(t, 10*time.Second, "server-side abort", func() bool {
		return exec.CancelObserved() > before && s.gate.Stats().InUse == 0
	})
}

// TestGateAcquireCtx: a waiter cancelled while queued leaves the line
// with nothing claimed.
func TestGateAcquireCtx(t *testing.T) {
	g := NewGate(2)
	if claimed := g.Acquire(2); claimed != 2 {
		t.Fatalf("claimed %d", claimed)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.AcquireCtx(ctx, 1)
		done <- err
	}()
	waitFor(t, 5*time.Second, "waiter queued", func() bool {
		return g.Stats().Waiting == 1
	})
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("AcquireCtx = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	if st := g.Stats(); st.Waiting != 0 || st.InUse != 2 {
		t.Fatalf("gate after cancelled wait: %+v", st)
	}
	g.Release(2)
	if st := g.Stats(); st.InUse != 0 {
		t.Fatalf("gate after release: %+v", st)
	}
}

// TestMetricsEndpoint: /metrics serves Prometheus text with the cache,
// gate and cancellation counters.
func TestMetricsEndpoint(t *testing.T) {
	s := demoServer(t, Config{Flags: plan.DefaultFlags(), MaxDOP: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, out := post(t, ts, "/query", `{"sql": "SELECT n FROM r"}`); out["row_count"] == nil {
		t.Fatalf("warmup query failed: %v", out)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	for _, want := range []string{
		"talignd_queries_total 1",
		"talignd_plan_cache_misses_total 1",
		"# TYPE talignd_plan_cache_hits_total counter",
		"talignd_gate_capacity 8",
		"talignd_gate_in_flight_dop 0",
		"talignd_query_cancels_total",
		"talignd_exec_cancel_observed_total",
		"talignd_plan_cache_capacity",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("timed out waiting for %s\n%s", what, buf[:n])
}
