package server

import (
	"container/list"
	"sync"

	"talign/internal/sqlish"
)

// cacheKey identifies one cached plan. Four components make reuse sound:
// the normalized SQL text (formatting differences collapse), the catalog
// version the plan was built against (schema or data changes invalidate),
// the statistics version (ANALYZE changes cost decisions, so plans built
// against stale statistics must not be reused), and the planner-flags
// fingerprint (flags change method choice and exchange placement, so
// plans under different flags must not mix).
type cacheKey struct {
	sql     string
	version uint64
	stats   uint64
	flags   string
}

// PlanCache is a thread-safe LRU cache of prepared statements. Entries are
// immutable sqlish.Prepared plans, so a cached entry can be handed to any
// number of concurrent executions; eviction only drops the cache's
// reference. A catalog change does not purge entries eagerly — stale
// versions simply stop being requested and age out of the LRU.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheSlot
	byKey map[cacheKey]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
	plans     uint64
}

type cacheSlot struct {
	key  cacheKey
	prep *sqlish.Prepared
}

// DefaultCacheSize is the prepared-plan cache capacity when Config leaves
// it zero.
const DefaultCacheSize = 256

// NewPlanCache returns an LRU plan cache holding up to capacity entries
// (DefaultCacheSize when capacity <= 0).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &PlanCache{
		cap:   capacity,
		order: list.New(),
		byKey: map[cacheKey]*list.Element{},
	}
}

// get returns the cached plan for key, marking it most recently used.
func (c *PlanCache) get(key cacheKey) (*sqlish.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheSlot).prep, true
}

// put inserts (or refreshes) a plan, evicting the least recently used
// entry beyond capacity.
func (c *PlanCache) put(key cacheKey, prep *sqlish.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheSlot).prep = prep
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheSlot{key: key, prep: prep})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheSlot).key)
		c.evictions++
	}
}

// GetOrPrepare returns the plan cached under key, or plans it with prepare
// and caches the result; hit reports whether the cache already had it.
// Concurrent misses on the same key may each run prepare (last insert
// wins); plans are immutable so the duplicates are merely redundant work,
// and the Plans counter counts every prepare call.
func (c *PlanCache) GetOrPrepare(key cacheKey, prepare func() (*sqlish.Prepared, error)) (prep *sqlish.Prepared, hit bool, err error) {
	if prep, ok := c.get(key); ok {
		return prep, true, nil
	}
	prep, err = prepare()
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	c.plans++
	c.mu.Unlock()
	c.put(key, prep)
	return prep, false, nil
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	// Size and Capacity are the current and maximum entry counts.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	// Hits and Misses count lookups; Evictions counts LRU drops.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Plans counts how many times a statement was actually planned (a
	// prepared statement executed N times contributes 1 here and N-1 to
	// Hits, which is the acceptance check for "plan once, execute many").
	Plans uint64 `json:"plans"`
}

// Stats returns the current cache counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:      c.order.Len(),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Plans:     c.plans,
	}
}
