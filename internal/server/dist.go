package server

import (
	"context"
	"net/http"

	"talign/internal/schema"
	"talign/internal/sqlish"
	"talign/internal/tuple"
	"talign/internal/value"
)

// BatchSource is the pull contract a RowStream drains: batches of tuples
// until an empty batch, then Close. A sqlish.Cursor is the local
// implementation; the distsql coordinator's merged worker stream is the
// distributed one.
type BatchSource interface {
	// Next returns the next batch; an empty batch signals exhaustion and
	// errors are terminal.
	Next() ([]tuple.Tuple, error)
	// Close tears the source down; it must be idempotent.
	Close() error
}

// DistResult is a distributor's answer for one handled statement:
// either a plan rendering (EXPLAIN-style shapes, catalog mutations) or a
// row source with its schema.
type DistResult struct {
	// Cols and Types are the wire schema (visible attributes then the
	// valid-time bounds), parallel to SchemaColumns.
	Cols  []string
	Types []string
	// Schema is the visible-attribute schema (for buffered results).
	Schema schema.Schema
	// Plan is the plan/acknowledgement text when the statement produces
	// no rows; Src must be nil then.
	Plan string
	// CacheHit reports whether the distributed plan came from the
	// distributor's plan cache.
	CacheHit bool
	// Src streams the merged result batches (nil for Plan results).
	Src BatchSource
}

// DistMetric is one distributor counter or gauge surfaced through the
// server's /metrics endpoint.
type DistMetric struct {
	// Name is the full metric name (talignd_... by convention).
	Name string
	// Help is the HELP line text.
	Help string
	// Gauge selects the gauge type; counters are the default.
	Gauge bool
	// Value is the current reading.
	Value uint64
}

// Distributor is the seam the distsql coordinator plugs into: when set
// (SetDistributor), every statement is offered to it after parsing and
// before local planning. A distributor that declines (handled=false)
// leaves the statement to the local pipeline — that is how statements
// touching no sharded table keep working unchanged on a coordinator.
type Distributor interface {
	// DistStream plans and launches one statement. The statement arrives
	// parsed, with its normalized text (the distributed-plan cache key)
	// and bound parameters. The returned source must honor ctx.
	DistStream(ctx context.Context, st *sqlish.Statement, norm string, params []value.Value, batch int) (*DistResult, bool, error)
	// DistExplain renders the distributed plan for EXPLAIN (the GET
	// /explain path, which never executes).
	DistExplain(st *sqlish.Statement, norm string) (string, bool, error)
	// DistMetrics lists the distributor's counters for /metrics.
	DistMetrics() []DistMetric
}

// HTTPError renders err as the server's structured JSON error body with
// the HTTP status its code implies (exported for the distsql worker
// handler, so fragment errors look exactly like query errors).
func HTTPError(w http.ResponseWriter, err error) { httpError(w, err) }

// ErrorCode classifies err into a wire error code (exported alongside
// HTTPError for the distsql frame writers).
func ErrorCode(err error) string { return errorCode(err) }

// SetDistributor installs the distributed-execution seam (nil uninstalls
// it). Install before serving traffic; the seam itself is read without
// synchronization on the hot path.
func (s *Server) SetDistributor(d Distributor) { s.dist = d }

// Distributor returns the installed seam (nil when single-node).
func (s *Server) Distributor() Distributor { return s.dist }

// distStream offers one parsed statement to the distributor. It claims
// one admission-gate unit for the whole distributed execution — the
// coordinator's own fan-out work — before planning, releasing it on
// error, on plan-only results, or at stream Close.
func (s *Server) distStream(ctx context.Context, st *sqlish.Statement, norm string, params []value.Value, batch int) (*RowStream, bool, error) {
	claimed, gerr := s.gate.AcquireCtx(ctx, 1)
	if gerr != nil {
		return nil, true, gerr
	}
	res, handled, err := s.dist.DistStream(ctx, st, norm, params, batch)
	if !handled {
		s.gate.Release(claimed)
		return nil, false, nil
	}
	if err != nil {
		s.gate.Release(claimed)
		return nil, true, err
	}
	if res.Src == nil {
		s.gate.Release(claimed)
		return &RowStream{s: s, plan: res.Plan, cacheHit: res.CacheHit}, true, nil
	}
	return &RowStream{
		cols:     res.Cols,
		types:    res.Types,
		sch:      res.Schema,
		cacheHit: res.CacheHit,
		s:        s,
		src:      res.Src,
		release:  func() { s.gate.Release(claimed) },
	}, true, nil
}
