package server

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"talign/internal/exec"
	"talign/internal/faultinject"
	"talign/internal/schema"
	"talign/internal/sqlish"
	"talign/internal/tuple"
	"talign/internal/value"
)

// RowStream is one query's incremental result: schema metadata up front,
// then batches of rows pulled straight from the executor. It is the
// server-core primitive beneath the wire-level NDJSON streaming, the
// public talign package's embedded cursors and the buffered legacy
// Query path.
//
// The admission-gate units the execution claimed are held until Close —
// a streaming client occupies its parallelism budget for as long as it
// keeps the cursor open — so Close must always be called. Statements
// that produce a plan rendering instead of rows (EXPLAIN, EXPLAIN
// ANALYZE, ANALYZE) return a RowStream with Plan set and no row batches;
// Close is then a no-op.
type RowStream struct {
	cols     []string
	types    []string
	plan     string
	cacheHit bool

	s       *Server
	src     BatchSource
	sch     schema.Schema
	release func()
	cancel  func()
	counted bool
	done    bool
}

// Columns lists the result columns: the visible attributes followed by
// the valid-time bounds "ts" and "te".
func (rs *RowStream) Columns() []string { return rs.cols }

// Types lists the column type names, parallel to Columns.
func (rs *RowStream) Types() []string { return rs.types }

// Plan holds the plan rendering for EXPLAIN/ANALYZE-style statements
// (empty for row-producing statements).
func (rs *RowStream) Plan() string { return rs.plan }

// CacheHit reports whether the plan came out of the plan cache.
func (rs *RowStream) CacheHit() bool { return rs.cacheHit }

// Next returns the next batch of tuples; an empty batch signals
// exhaustion. The batch is only valid until the following Next or Close
// (the executor's ownership contract). Errors — cancellations,
// timeouts, budget aborts and recovered panics, each counted into its
// own server metric — are terminal.
func (rs *RowStream) Next() (batch []tuple.Tuple, err error) {
	defer func() {
		// The executor guards every operator, but the stream layer itself
		// (batch encoding, instrumentation hooks) must not crash the
		// process either.
		if rerr := exec.Recovered("server.RowStream", recover()); rerr != nil {
			batch, err = nil, rerr
			rs.fail(rerr)
		}
	}()
	if rs.src == nil || rs.done {
		return nil, nil
	}
	b, err := rs.src.Next()
	if err != nil {
		rs.fail(err)
		return nil, err
	}
	if len(b) == 0 {
		rs.Close()
		return nil, nil
	}
	rs.s.rowsStreamed.Add(uint64(len(b)))
	return b, nil
}

// fail records a terminal error (classified once per stream) and tears
// the execution down.
func (rs *RowStream) fail(err error) {
	if !rs.counted {
		rs.counted = true
		rs.s.countFailure(err)
	}
	rs.Close()
}

// Close tears the execution down, releases its admission-gate units and
// cancels its per-query deadline context; it is idempotent and safe to
// call mid-stream (the pipeline stops without draining).
func (rs *RowStream) Close() error {
	if rs.done {
		return nil
	}
	rs.done = true
	var err error
	if rs.src != nil {
		err = rs.src.Close()
	}
	if rs.release != nil {
		rs.release()
		rs.release = nil
	}
	if rs.cancel != nil {
		rs.cancel()
		rs.cancel = nil
	}
	return err
}

// countFailure classifies a terminal query error into the server's
// failure counters: every failure counts as an error, and the
// resilience outcomes — cancellation, deadline expiry, budget abort,
// recovered panic — additionally count into their own metric.
func (s *Server) countFailure(err error) {
	s.errors.Add(1)
	var pe *exec.PanicError
	var be *exec.BudgetError
	switch {
	case errors.As(err, &pe):
		s.panics.Add(1)
	case errors.As(err, &be):
		s.resourceAborts.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
	case errors.Is(err, context.Canceled):
		s.cancels.Add(1)
	}
}

// Stream executes ad-hoc SQL (stmtName == "") or a session's named
// prepared statement as an incremental row stream under ctx: admission
// waits on the gate honor the context, and every operator in the built
// pipeline checks it between batches, so cancelling ctx (a disconnected
// client, a deadline) aborts the query server-side. The returned
// RowStream must be Closed.
func (s *Server) Stream(ctx context.Context, sessionID, stmtName, sql string, params []value.Value) (*RowStream, error) {
	return s.StreamBatch(ctx, sessionID, stmtName, sql, params, 0)
}

// StreamBatch is Stream with a per-request batch-size override (batch <=
// 0 keeps the server's configured batch size); the override participates
// in the plan-cache key through the flags fingerprint.
//
// The query lifecycle seams live here: a draining server refuses new
// work with the code "unavailable", the server's per-query deadline is
// armed around the whole execution (gate wait included), and a panic
// anywhere in the planning path is recovered into a structured internal
// error rather than crashing the process.
func (s *Server) StreamBatch(ctx context.Context, sessionID, stmtName, sql string, params []value.Value, batch int) (*RowStream, error) {
	s.queries.Add(1)
	if s.Draining() {
		err := errDraining()
		s.countFailure(err)
		return nil, err
	}
	cancel := func() {}
	if s.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
	}
	rs, err := s.streamGuarded(ctx, sessionID, stmtName, sql, params, batch)
	if err != nil {
		cancel()
		s.countFailure(err)
		return nil, err
	}
	if rs.src != nil {
		// Row-producing streams own the deadline context until Close; the
		// plan-frame shapes (EXPLAIN, ANALYZE) are already done.
		rs.cancel = cancel
	} else {
		cancel()
	}
	return rs, nil
}

// streamGuarded is stream behind the server-level panic boundary.
func (s *Server) streamGuarded(ctx context.Context, sessionID, stmtName, sql string, params []value.Value, batch int) (rs *RowStream, err error) {
	defer exec.RecoverAsError("server.stream", &err)
	if err := faultinject.Hit("server.stream"); err != nil {
		return nil, err
	}
	return s.stream(ctx, sessionID, stmtName, sql, params, batch)
}

func (s *Server) stream(ctx context.Context, sessionID, stmtName, sql string, params []value.Value, batch int) (*RowStream, error) {
	var norm string
	switch {
	case stmtName != "" && sql != "":
		return nil, fmt.Errorf("server: request must set either sql or stmt, not both")
	case stmtName != "":
		// The statement text was parse-checked at Prepare time (and an
		// ANALYZE can never be prepared), so the normalized text goes
		// straight to the plan cache.
		info, lerr := s.sess.get(sessionID).stmt(stmtName)
		if lerr != nil {
			return nil, lerr
		}
		norm = info.norm
		if s.dist != nil {
			// Distributed execution re-derives the statement shape from the
			// normalized text (parse-checked at Prepare time, so this cannot
			// fail for user reasons).
			st, perr := sqlish.Parse(norm)
			if perr != nil {
				return nil, perr
			}
			if rs, handled, derr := s.distStream(ctx, st, norm, params, batch); handled {
				return rs, derr
			}
		}
	case strings.TrimSpace(sql) != "":
		// One lex of the ORIGINAL text yields both the parse check (so
		// syntax errors point at the client's statement, not at the
		// whitespace-collapsed normalized form) and the plan-cache key.
		st, norm0, perr := sqlish.ParseNormalized(sql)
		if perr != nil {
			return nil, perr
		}
		// The distributed seam sees every statement first — ANALYZE, CREATE
		// and DROP included, since on a coordinator they must broadcast or
		// partition rather than act locally. A declined statement (one that
		// touches no sharded table) falls through to the local pipeline.
		if s.dist != nil {
			if rs, handled, derr := s.distStream(ctx, st, norm0, params, batch); handled {
				return rs, derr
			}
		}
		// ANALYZE mutates catalog statistics instead of planning a query;
		// it bypasses the plan cache entirely but still pays one unit of
		// the admission gate — its full-table scan is real work that must
		// queue with the rest of the traffic.
		if name, ok := st.AnalyzeTarget(); ok {
			claimed, gerr := s.gate.AcquireCtx(ctx, 1)
			if gerr != nil {
				return nil, gerr
			}
			defer s.gate.Release(claimed)
			t, aerr := s.Analyze(name)
			if aerr != nil {
				return nil, aerr
			}
			return &RowStream{s: s, plan: fmt.Sprintf("ANALYZE %s: %d rows, %d columns", name, t.Rows, len(t.Cols))}, nil
		}
		// CREATE TABLE and DROP TABLE mutate the catalog (and the data
		// directory when a store is attached); like ANALYZE they bypass
		// the plan cache but pay one admission-gate unit — the CSV load
		// and segment writes are real work.
		if name, path, ok := st.CreateTarget(); ok {
			claimed, gerr := s.gate.AcquireCtx(ctx, 1)
			if gerr != nil {
				return nil, gerr
			}
			defer s.gate.Release(claimed)
			rel, cerr := s.CreateTable(name, path)
			if cerr != nil {
				return nil, cerr
			}
			return &RowStream{s: s, plan: fmt.Sprintf("CREATE TABLE %s: %d rows, %d columns", name, rel.Len(), rel.Schema.Len())}, nil
		}
		if name, ok := st.DropTarget(); ok {
			claimed, gerr := s.gate.AcquireCtx(ctx, 1)
			if gerr != nil {
				return nil, gerr
			}
			defer s.gate.Release(claimed)
			if derr := s.DropTable(name); derr != nil {
				return nil, derr
			}
			return &RowStream{s: s, plan: "DROP TABLE " + name}, nil
		}
		norm = norm0
	default:
		return nil, fmt.Errorf("server: request has neither sql nor stmt")
	}
	prep, hit, err := s.planWith(norm, batch)
	if err != nil {
		return nil, err
	}
	if prep.IsExplainAnalyze() {
		// EXPLAIN ANALYZE executes the statement, so it goes through the
		// admission gate like any other execution.
		claimed, gerr := s.gate.AcquireCtx(ctx, prep.MaxDOP())
		if gerr != nil {
			return nil, gerr
		}
		defer s.gate.Release(claimed)
		text, eerr := prep.ExplainAnalyzeContext(ctx, params...)
		if eerr != nil {
			return nil, eerr
		}
		return &RowStream{s: s, plan: text, cacheHit: hit}, nil
	}
	if prep.IsExplain() {
		return &RowStream{s: s, plan: prep.Explain(), cacheHit: hit}, nil
	}
	// Charge the plan's actual width, not the configured DOP: a serial
	// plan costs one unit, so cheap queries never queue behind the
	// parallel budget. The claim is held until the stream is closed —
	// an open cursor IS in-flight work.
	claimed, gerr := s.gate.AcquireCtx(ctx, prep.MaxDOP())
	if gerr != nil {
		return nil, gerr
	}
	var bud *exec.Budget
	if s.maxRows > 0 || s.maxBytes > 0 {
		bud = exec.NewBudget(s.maxRows, s.maxBytes)
	}
	cur, err := prep.StreamBudget(ctx, bud, params...)
	if err != nil {
		s.gate.Release(claimed)
		return nil, err
	}
	cols, types := SchemaColumns(prep)
	return &RowStream{
		cols:     cols,
		types:    types,
		cacheHit: hit,
		s:        s,
		src:      cur,
		sch:      cur.Schema(),
		release:  func() { s.gate.Release(claimed) },
	}, nil
}
