package server

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"talign/internal/sqlish"
	"talign/internal/tuple"
	"talign/internal/value"
)

// RowStream is one query's incremental result: schema metadata up front,
// then batches of rows pulled straight from the executor. It is the
// server-core primitive beneath the wire-level NDJSON streaming, the
// public talign package's embedded cursors and the buffered legacy
// Query path.
//
// The admission-gate units the execution claimed are held until Close —
// a streaming client occupies its parallelism budget for as long as it
// keeps the cursor open — so Close must always be called. Statements
// that produce a plan rendering instead of rows (EXPLAIN, EXPLAIN
// ANALYZE, ANALYZE) return a RowStream with Plan set and no row batches;
// Close is then a no-op.
type RowStream struct {
	cols     []string
	types    []string
	plan     string
	cacheHit bool

	s       *Server
	cur     *sqlish.Cursor
	release func()
	counted bool
	done    bool
}

// Columns lists the result columns: the visible attributes followed by
// the valid-time bounds "ts" and "te".
func (rs *RowStream) Columns() []string { return rs.cols }

// Types lists the column type names, parallel to Columns.
func (rs *RowStream) Types() []string { return rs.types }

// Plan holds the plan rendering for EXPLAIN/ANALYZE-style statements
// (empty for row-producing statements).
func (rs *RowStream) Plan() string { return rs.plan }

// CacheHit reports whether the plan came out of the plan cache.
func (rs *RowStream) CacheHit() bool { return rs.cacheHit }

// Next returns the next batch of tuples; an empty batch signals
// exhaustion. The batch is only valid until the following Next or Close
// (the executor's ownership contract). Errors — including context
// cancellation, which is counted into the server's cancellation metric —
// are terminal.
func (rs *RowStream) Next() ([]tuple.Tuple, error) {
	if rs.cur == nil || rs.done {
		return nil, nil
	}
	b, err := rs.cur.Next()
	if err != nil {
		rs.fail(err)
		return nil, err
	}
	if len(b) == 0 {
		rs.Close()
		return nil, nil
	}
	rs.s.rowsStreamed.Add(uint64(len(b)))
	return b, nil
}

// fail records a terminal error and tears the execution down.
func (rs *RowStream) fail(err error) {
	if (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && !rs.counted {
		rs.counted = true
		rs.s.cancels.Add(1)
	}
	rs.s.errors.Add(1)
	rs.Close()
}

// Close tears the execution down and releases its admission-gate units;
// it is idempotent and safe to call mid-stream (the pipeline stops
// without draining).
func (rs *RowStream) Close() error {
	if rs.done {
		return nil
	}
	rs.done = true
	var err error
	if rs.cur != nil {
		err = rs.cur.Close()
	}
	if rs.release != nil {
		rs.release()
		rs.release = nil
	}
	return err
}

// Stream executes ad-hoc SQL (stmtName == "") or a session's named
// prepared statement as an incremental row stream under ctx: admission
// waits on the gate honor the context, and every operator in the built
// pipeline checks it between batches, so cancelling ctx (a disconnected
// client, a deadline) aborts the query server-side. The returned
// RowStream must be Closed.
func (s *Server) Stream(ctx context.Context, sessionID, stmtName, sql string, params []value.Value) (*RowStream, error) {
	return s.StreamBatch(ctx, sessionID, stmtName, sql, params, 0)
}

// StreamBatch is Stream with a per-request batch-size override (batch <=
// 0 keeps the server's configured batch size); the override participates
// in the plan-cache key through the flags fingerprint.
func (s *Server) StreamBatch(ctx context.Context, sessionID, stmtName, sql string, params []value.Value, batch int) (*RowStream, error) {
	s.queries.Add(1)
	rs, err := s.stream(ctx, sessionID, stmtName, sql, params, batch)
	if err != nil {
		s.errors.Add(1)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.cancels.Add(1)
		}
	}
	return rs, err
}

func (s *Server) stream(ctx context.Context, sessionID, stmtName, sql string, params []value.Value, batch int) (*RowStream, error) {
	var norm string
	switch {
	case stmtName != "" && sql != "":
		return nil, fmt.Errorf("server: request must set either sql or stmt, not both")
	case stmtName != "":
		// The statement text was parse-checked at Prepare time (and an
		// ANALYZE can never be prepared), so the normalized text goes
		// straight to the plan cache.
		info, lerr := s.sess.get(sessionID).stmt(stmtName)
		if lerr != nil {
			return nil, lerr
		}
		norm = info.norm
	case strings.TrimSpace(sql) != "":
		// One lex of the ORIGINAL text yields both the parse check (so
		// syntax errors point at the client's statement, not at the
		// whitespace-collapsed normalized form) and the plan-cache key.
		st, norm0, perr := sqlish.ParseNormalized(sql)
		if perr != nil {
			return nil, perr
		}
		// ANALYZE mutates catalog statistics instead of planning a query;
		// it bypasses the plan cache entirely but still pays one unit of
		// the admission gate — its full-table scan is real work that must
		// queue with the rest of the traffic.
		if name, ok := st.AnalyzeTarget(); ok {
			claimed, gerr := s.gate.AcquireCtx(ctx, 1)
			if gerr != nil {
				return nil, gerr
			}
			defer s.gate.Release(claimed)
			t, aerr := s.Analyze(name)
			if aerr != nil {
				return nil, aerr
			}
			return &RowStream{s: s, plan: fmt.Sprintf("ANALYZE %s: %d rows, %d columns", name, t.Rows, len(t.Cols))}, nil
		}
		norm = norm0
	default:
		return nil, fmt.Errorf("server: request has neither sql nor stmt")
	}
	prep, hit, err := s.planWith(norm, batch)
	if err != nil {
		return nil, err
	}
	if prep.IsExplainAnalyze() {
		// EXPLAIN ANALYZE executes the statement, so it goes through the
		// admission gate like any other execution.
		claimed, gerr := s.gate.AcquireCtx(ctx, prep.MaxDOP())
		if gerr != nil {
			return nil, gerr
		}
		defer s.gate.Release(claimed)
		text, eerr := prep.ExplainAnalyzeContext(ctx, params...)
		if eerr != nil {
			return nil, eerr
		}
		return &RowStream{s: s, plan: text, cacheHit: hit}, nil
	}
	if prep.IsExplain() {
		return &RowStream{s: s, plan: prep.Explain(), cacheHit: hit}, nil
	}
	// Charge the plan's actual width, not the configured DOP: a serial
	// plan costs one unit, so cheap queries never queue behind the
	// parallel budget. The claim is held until the stream is closed —
	// an open cursor IS in-flight work.
	claimed, gerr := s.gate.AcquireCtx(ctx, prep.MaxDOP())
	if gerr != nil {
		return nil, gerr
	}
	cur, err := prep.Stream(ctx, params...)
	if err != nil {
		s.gate.Release(claimed)
		return nil, err
	}
	cols, types := SchemaColumns(prep)
	return &RowStream{
		cols:     cols,
		types:    types,
		cacheHit: hit,
		s:        s,
		cur:      cur,
		release:  func() { s.gate.Release(claimed) },
	}, nil
}
