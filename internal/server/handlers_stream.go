package server

import (
	"encoding/json"
	"net/http"

	"talign/internal/faultinject"
	"talign/internal/wire"
)

// handleQueryStream is the wire-level row-streaming endpoint: it runs the
// request under the request's context (client disconnect cancels the
// running plan server-side) and writes the result as chunked NDJSON
// frames — a schema frame, one rows frame per executor batch, and a
// trailing status (or error) frame — flushing after every frame so rows
// reach the client as the executor produces them.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	req, params, err := decodeRequest(r)
	if err != nil {
		httpError(w, err)
		return
	}
	rs, err := s.StreamBatch(r.Context(), req.Session, req.Stmt, req.SQL, params, req.Batch)
	if err != nil {
		// Nothing was sent yet: report the failure as a plain structured
		// HTTP error, exactly like the buffered endpoint.
		httpError(w, err)
		return
	}
	defer rs.Close()
	s.streams.Add(1)
	WriteFrameStream(w, rs)
}

// WriteFrameStream writes a RowStream as chunked NDJSON frames — schema,
// one rows frame per batch, a terminal status or error frame — flushing
// after every frame. It is the one encoder of the row-stream wire shape,
// shared by the client-facing /query/stream endpoint and the worker-side
// /fragment executor, so coordinator-to-worker hops speak byte-identical
// protocol to client-to-server hops. The caller Closes rs.
func WriteFrameStream(w http.ResponseWriter, rs *RowStream) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // streaming through proxies
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	send := func(f wire.Frame) bool {
		if err := enc.Encode(f); err != nil {
			return false // client is gone; the deferred Close cancels upstream
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	if rs.Plan() != "" {
		if send(wire.Frame{Frame: wire.FramePlan, Plan: rs.Plan(), CacheHit: rs.CacheHit()}) {
			send(wire.Frame{Frame: wire.FrameStatus})
		}
		return
	}
	if !send(wire.Frame{Frame: wire.FrameSchema, Columns: rs.Columns(), Types: rs.Types(), CacheHit: rs.CacheHit()}) {
		return
	}
	var total int64
	for {
		batch, err := rs.Next()
		if err == nil {
			// Chaos-test seam: fail (or stall) the response mid-stream, after
			// rows have already been flushed to the client.
			err = faultinject.Hit("server.stream.rows")
		}
		if err != nil {
			send(wire.Frame{Frame: wire.FrameError, Error: wire.FromError(err, errorCode(err))})
			return
		}
		if len(batch) == 0 {
			send(wire.Frame{Frame: wire.FrameStatus, RowCount: total})
			return
		}
		rows := make([][]any, len(batch))
		for i, t := range batch {
			row := make([]any, 0, len(t.Vals)+2)
			for _, v := range t.Vals {
				row = append(row, wire.Cell(v))
			}
			row = append(row, t.T.Ts, t.T.Te)
			rows[i] = row
		}
		total += int64(len(batch))
		if !send(wire.Frame{Frame: wire.FrameRows, Rows: rows}) {
			return
		}
	}
}
