// Package benchkit is the parameter-sweep harness behind cmd/experiments
// and the repository benchmarks: it times evaluation strategies across
// input sizes and renders the series of the paper's figures in a long-form
// TSV (figure, series, x, seconds, output rows).
package benchkit

import (
	"fmt"
	"io"
	"time"
)

// Point is one measurement.
type Point struct {
	X       int     // input tuples per relation
	Seconds float64 // wall-clock runtime
	Rows    int     // output cardinality
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure groups the series reproducing one panel of the paper.
type Figure struct {
	ID     string // e.g. "13a"
	Title  string
	XLabel string
	Series []Series
}

// Runner evaluates one point: it returns the output cardinality.
type Runner func(n int) (rows int, err error)

// Sweep measures run across sizes.
func Sweep(name string, sizes []int, run Runner) (Series, error) {
	s := Series{Name: name}
	for _, n := range sizes {
		start := time.Now()
		rows, err := run(n)
		if err != nil {
			return s, fmt.Errorf("benchkit: %s at n=%d: %w", name, n, err)
		}
		s.Points = append(s.Points, Point{X: n, Seconds: time.Since(start).Seconds(), Rows: rows})
	}
	return s, nil
}

// WriteTSV renders the figure in long form.
func (f Figure) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Figure %s: %s (x = %s)\n", f.ID, f.Title, f.XLabel); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "figure\tseries\tx\tseconds\tout_rows"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s\t%s\t%d\t%.4f\t%d\n", f.ID, s.Name, p.X, p.Seconds, p.Rows); err != nil {
				return err
			}
		}
	}
	return nil
}

// Scale multiplies sizes by factor/100, keeping at least 1.
func Scale(sizes []int, percent int) []int {
	out := make([]int, 0, len(sizes))
	for _, s := range sizes {
		v := s * percent / 100
		if v < 1 {
			v = 1
		}
		out = append(out, v)
	}
	return out
}

// CapSizes drops sweep points above max (quadratic baselines need caps).
func CapSizes(sizes []int, max int) []int {
	var out []int
	for _, s := range sizes {
		if s <= max {
			out = append(out, s)
		}
	}
	return out
}
