package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// BenchPoint is one testing.Benchmark measurement of a figure panel:
// wall time, allocation profile and output cardinality per operation.
type BenchPoint struct {
	Name        string  `json:"name"` // e.g. "fig13/normalize-ssn/hash"
	N           int     `json:"n"`    // input tuples
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Rows        int     `json:"rows"` // output cardinality
}

// BenchFile is the committed benchmark-trajectory format (BENCH_PR<k>.json):
// a pre-change baseline and the current numbers for the same panels.
type BenchFile struct {
	Description string       `json:"description,omitempty"`
	Before      []BenchPoint `json:"before,omitempty"`
	After       []BenchPoint `json:"after"`
}

// MeasureBench runs fn under testing.Benchmark and folds the result into a
// BenchPoint. fn must return the workload's output cardinality.
func MeasureBench(name string, n int, fn func() (rows int, err error)) (BenchPoint, error) {
	var rows int
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := fn()
			if err != nil {
				runErr = err
				b.FailNow()
			}
			rows = r
		}
	})
	if runErr != nil {
		return BenchPoint{}, fmt.Errorf("benchkit: %s: %w", name, runErr)
	}
	return BenchPoint{
		Name:        name,
		N:           n,
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Rows:        rows,
	}, nil
}

// UpdateBenchFile writes points as the "after" section of path, keeping an
// existing "before" section (and description) intact so the committed file
// documents the pre-change baseline alongside the current numbers.
func UpdateBenchFile(path string, points []BenchPoint) error {
	var f BenchFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("benchkit: %s exists but is not a bench file: %w", path, err)
		}
	}
	f.After = points
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// WriteBenchFile writes a complete bench file — description, "before" and
// "after" — for trajectories where both sections are measured in the same
// run (e.g. a feature measured against its own off-switch).
func WriteBenchFile(path string, f BenchFile) error {
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
