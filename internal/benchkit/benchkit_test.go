package benchkit

import (
	"errors"
	"strings"
	"testing"
)

func TestSweepAndTSV(t *testing.T) {
	s, err := Sweep("lin", []int{1, 2, 4}, func(n int) (int, error) { return n * 10, nil })
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(s.Points) != 3 || s.Points[2].Rows != 40 {
		t.Fatalf("points: %+v", s.Points)
	}
	fig := Figure{ID: "x1", Title: "demo", XLabel: "n", Series: []Series{s}}
	var b strings.Builder
	if err := fig.WriteTSV(&b); err != nil {
		t.Fatalf("tsv: %v", err)
	}
	out := b.String()
	for _, part := range []string{"# Figure x1", "figure\tseries", "x1\tlin\t4\t", "\t40\n"} {
		if !strings.Contains(out, part) {
			t.Fatalf("tsv missing %q:\n%s", part, out)
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := Sweep("bad", []int{1}, func(int) (int, error) { return 0, boom })
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestScaleAndCap(t *testing.T) {
	got := Scale([]int{100, 10, 1}, 25)
	if got[0] != 25 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("scale: %v", got)
	}
	capped := CapSizes([]int{10, 20, 30}, 20)
	if len(capped) != 2 || capped[1] != 20 {
		t.Fatalf("cap: %v", capped)
	}
}
