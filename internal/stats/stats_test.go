package stats

import (
	"math"
	"testing"

	"talign/internal/relation"
	"talign/internal/value"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestAnalyzeColumns(t *testing.T) {
	b := relation.NewBuilder("a int", "s string")
	for i := 0; i < 100; i++ {
		b.Row(int64(i), int64(i+1), int64(i%10), string(rune('a'+i%3)))
	}
	b.Row(100, 101, nil, nil)
	rel := b.MustBuild()

	st := Analyze(rel)
	if st.Rows != 101 {
		t.Fatalf("Rows = %d, want 101", st.Rows)
	}
	a := st.Col(0)
	if a == nil {
		t.Fatal("no stats for column 0")
	}
	approx(t, "a.Distinct", a.Distinct, 10, 0)
	approx(t, "a.NullFrac", a.NullFrac, 1.0/101, 1e-9)
	if a.Min.Int() != 0 || a.Max.Int() != 9 {
		t.Errorf("a range = [%s, %s], want [0, 9]", a.Min, a.Max)
	}
	s := st.Col(1)
	approx(t, "s.Distinct", s.Distinct, 3, 0)

	if sel, ok := a.SelEq(value.NewInt(3)); !ok || math.Abs(sel-(100.0/101)/10) > 1e-9 {
		t.Errorf("SelEq(3) = %g, %v", sel, ok)
	}
	if sel, ok := a.SelEq(value.NewInt(99)); !ok || sel > 1e-6 {
		t.Errorf("SelEq(out of range) = %g, %v, want ~0", sel, ok)
	}
	// a < 5 keeps values 0..4, half the distribution.
	if sel, ok := a.SelRange(OpLT, value.NewInt(5)); !ok || math.Abs(sel-0.5) > 0.1 {
		t.Errorf("SelRange(< 5) = %g, %v, want ~0.5", sel, ok)
	}
	// Boundary buckets with heavy duplicates cost some precision; a loose
	// tolerance is fine — the planner only needs the right magnitude.
	if sel, ok := a.SelRange(OpGE, value.NewInt(5)); !ok || math.Abs(sel-0.5) > 0.15 {
		t.Errorf("SelRange(>= 5) = %g, %v, want ~0.5", sel, ok)
	}
}

func TestAnalyzeIntervals(t *testing.T) {
	// Three disjoint tuples plus one spanning all of them.
	rel := relation.NewBuilder("a int").
		Row(0, 10, 1).
		Row(10, 20, 2).
		Row(20, 30, 3).
		Row(0, 30, 4).
		MustBuild()
	st := Analyze(rel)
	if st.T.Span.Ts != 0 || st.T.Span.Te != 30 {
		t.Errorf("span = %v, want [0, 30)", st.T.Span)
	}
	approx(t, "AvgDur", st.T.AvgDur, (10+10+10+30)/4.0, 1e-9)
	approx(t, "DistinctT", st.T.DistinctT, 4, 0)
	// Overlapping pairs: the spanning tuple overlaps each of the three
	// disjoint ones; 3 pairs → average 2·3/4 = 1.5 partners per tuple.
	approx(t, "AvgOverlap", st.T.AvgOverlap, 1.5, 1e-9)
}

func TestNilSafety(t *testing.T) {
	var tb *Table
	if c := tb.Col(0); c != nil {
		t.Fatal("nil Table.Col should be nil")
	}
	var c *Column
	if _, ok := c.SelEq(value.NewInt(1)); ok {
		t.Error("nil column SelEq should report !ok")
	}
	if _, ok := c.SelRange(OpLT, value.NewInt(1)); ok {
		t.Error("nil column SelRange should report !ok")
	}
	if _, ok := EqJoinSel(nil, nil); ok {
		t.Error("EqJoinSel(nil, nil) should report !ok")
	}
	if sel, ok := EqJoinSel(&Column{Distinct: 4}, nil); !ok || sel != 0.25 {
		t.Errorf("one-sided EqJoinSel = %g, %v, want 0.25", sel, ok)
	}
	if _, ok := OverlapFrac(nil, tb); ok {
		t.Error("OverlapFrac(nil, nil) should report !ok")
	}
}

func TestHistogramFracBelow(t *testing.T) {
	vals := make([]value.Value, 0, 100)
	for i := 0; i < 100; i++ {
		vals = append(vals, value.NewInt(int64(i)))
	}
	h := equiDepth(vals, 100)
	if h.Buckets() != HistBuckets {
		t.Fatalf("buckets = %d, want %d", h.Buckets(), HistBuckets)
	}
	for _, tc := range []struct {
		v    int64
		want float64
	}{{0, 0}, {25, 0.25}, {50, 0.5}, {99, 1}, {1000, 1}, {-5, 0}} {
		got, ok := h.FracBelow(value.NewInt(tc.v))
		if !ok {
			t.Fatalf("FracBelow(%d) not ok", tc.v)
		}
		approx(t, "FracBelow", got, tc.want, 0.05)
	}
	if _, ok := (Histogram{}).FracBelow(value.NewInt(1)); ok {
		t.Error("empty histogram should report !ok")
	}
}

func TestEmptyRelation(t *testing.T) {
	rel := relation.NewBuilder("a int").MustBuild()
	st := Analyze(rel)
	if st.Rows != 0 {
		t.Fatalf("Rows = %d", st.Rows)
	}
	if c := st.Col(0); c.Distinct != 0 || !c.Min.IsNull() {
		t.Errorf("empty column stats = %+v", c)
	}
}
