// Package stats implements per-table statistics for the cost-based
// optimizer: per-column row counts, null fractions, distinct-count
// estimates, min/max bounds and equi-depth histograms, plus interval
// statistics for the valid-time column (duration histogram, covering span
// and an overlap profile). ANALYZE computes them with one pass over a
// materialized relation; the planner consumes them through the estimation
// helpers below, falling back to the classic hard-coded selectivity
// constants wherever statistics are missing. All estimation methods are
// nil-safe: a nil *Table or *Column reports ok=false and the caller keeps
// its default.
package stats

import (
	"sort"

	"talign/internal/interval"
	"talign/internal/relation"
	"talign/internal/value"
)

// HistBuckets is the equi-depth histogram resolution: enough buckets to
// make range selectivities meaningful on skewed data, few enough that a
// Table stays small and cheap to build.
const HistBuckets = 32

// Histogram is an equi-depth histogram over the sorted non-null values of
// one column: Bounds[i], Bounds[i+1] delimit bucket i and every bucket
// holds roughly the same number of values. An empty histogram (no bounds)
// carries no information.
type Histogram struct {
	// Bounds are the bucket boundaries in ascending value order
	// (len = buckets + 1, or 0 when the histogram is empty).
	Bounds []value.Value
}

// Buckets returns the number of buckets (0 for an empty histogram).
func (h Histogram) Buckets() int {
	if len(h.Bounds) < 2 {
		return 0
	}
	return len(h.Bounds) - 1
}

// FracBelow estimates the fraction of the histogram's values that are
// strictly less than v, interpolating linearly inside numeric buckets;
// ok is false when the histogram is empty.
func (h Histogram) FracBelow(v value.Value) (frac float64, ok bool) {
	b := h.Buckets()
	if b == 0 || v.IsNull() {
		return 0, false
	}
	if v.Compare(h.Bounds[0]) <= 0 {
		return 0, true
	}
	if v.Compare(h.Bounds[b]) > 0 {
		return 1, true
	}
	// First boundary >= v; v lies in bucket i-1 = [Bounds[i-1], Bounds[i]].
	i := sort.Search(b+1, func(i int) bool { return h.Bounds[i].Compare(v) >= 0 })
	if i == 0 {
		return 0, true
	}
	within := 0.5 // non-interpolatable kinds: assume the bucket midpoint
	lo, hasLo := h.Bounds[i-1].AsFloat()
	hi, hasHi := h.Bounds[i].AsFloat()
	if x, hasX := v.AsFloat(); hasLo && hasHi && hasX && hi > lo {
		within = (x - lo) / (hi - lo)
		if within < 0 {
			within = 0
		} else if within > 1 {
			within = 1
		}
	}
	return (float64(i-1) + within) / float64(b), true
}

// Column summarizes one attribute's value distribution.
type Column struct {
	// NullFrac is the fraction of rows whose value is ω.
	NullFrac float64
	// Distinct is the number of distinct non-null values (exact: ANALYZE
	// scans the whole relation).
	Distinct float64
	// Min and Max bound the non-null values; both are ω when the column
	// holds no non-null value.
	Min, Max value.Value
	// Hist is the equi-depth histogram over the non-null values.
	Hist Histogram
}

// SelEq estimates the selectivity of column = v; ok is false when the
// receiver is nil (no statistics). A v outside [Min, Max] estimates a
// vanishing (but positive) selectivity so downstream clamping keeps
// cardinalities sane.
func (c *Column) SelEq(v value.Value) (sel float64, ok bool) {
	if c == nil {
		return 0, false
	}
	// The out-of-range test needs only Min/Max, so it also serves
	// zone-derived statistics, which carry no distinct counts.
	if !v.IsNull() && !c.Min.IsNull() &&
		(v.Compare(c.Min) < 0 || v.Compare(c.Max) > 0) {
		return 1e-9, true
	}
	if c.Distinct <= 0 {
		return 0, false
	}
	return (1 - c.NullFrac) / c.Distinct, true
}

// Op enumerates the range-comparison shapes SelRange estimates.
type Op uint8

// The range-comparison shapes: column OP v.
const (
	OpLT Op = iota
	OpLE
	OpGT
	OpGE
)

// SelRange estimates the selectivity of "column OP v" from the histogram;
// ok is false without one.
func (c *Column) SelRange(op Op, v value.Value) (sel float64, ok bool) {
	if c == nil {
		return 0, false
	}
	below, ok := c.Hist.FracBelow(v)
	if !ok {
		return 0, false
	}
	eq, _ := c.SelEq(v)
	notNull := 1 - c.NullFrac
	switch op {
	case OpLT:
		sel = below * notNull
	case OpLE:
		sel = below*notNull + eq
	case OpGT:
		sel = (1-below)*notNull - eq
	case OpGE:
		sel = (1 - below) * notNull
	}
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel, true
}

// EqJoinSel estimates the selectivity of an equi-join between two columns
// with the textbook 1/max(distinct_l, distinct_r); one-sided statistics
// use that side's distinct count alone. ok is false when neither side has
// statistics.
func EqJoinSel(l, r *Column) (sel float64, ok bool) {
	ld, rd := 0.0, 0.0
	if l != nil {
		ld = l.Distinct
	}
	if r != nil {
		rd = r.Distinct
	}
	d := ld
	if rd > d {
		d = rd
	}
	if d <= 0 {
		return 0, false
	}
	return 1 / d, true
}

// IntervalStats summarizes the valid-time column: how long tuples live,
// where, and how much they overlap each other. It feeds the output
// estimates of ALIGN/NORMALIZE group construction and of interval joins.
type IntervalStats struct {
	// Span is the smallest interval covering every tuple (zero when the
	// relation is empty).
	Span interval.Interval
	// AvgDur is the mean tuple duration.
	AvgDur float64
	// DurHist is the equi-depth histogram of tuple durations.
	DurHist Histogram
	// DistinctT is the number of distinct exact (Ts, Te) intervals; it
	// estimates the selectivity of the T-equality key the reduction rules
	// append (r.T = s.T).
	DistinctT float64
	// AvgOverlap is the overlap profile: the average number of OTHER
	// tuples of the same relation whose interval overlaps a tuple's
	// interval.
	AvgOverlap float64
}

// Table is the ANALYZE output for one relation: row count, per-column
// statistics aligned with the schema, and valid-time statistics.
type Table struct {
	// Rows is the relation's cardinality at ANALYZE time.
	Rows int64
	// Cols holds one Column per schema attribute, in schema order.
	Cols []Column
	// T summarizes the valid-time intervals.
	T IntervalStats
}

// Col returns the statistics for column i, or nil when the receiver is
// nil or i is out of range — the planner's "no statistics" marker.
func (t *Table) Col(i int) *Column {
	if t == nil || i < 0 || i >= len(t.Cols) {
		return nil
	}
	return &t.Cols[i]
}

// OverlapFrac estimates the probability that a random tuple of l and a
// random tuple of r overlap in valid time, from the covering spans and
// average durations (a uniform-start approximation); ok is false when
// either side lacks interval statistics.
func OverlapFrac(l, r *Table) (frac float64, ok bool) {
	if l == nil || r == nil || l.Rows == 0 || r.Rows == 0 {
		return 0, false
	}
	lo, hi := l.T.Span.Ts, l.T.Span.Te
	if r.T.Span.Ts < lo {
		lo = r.T.Span.Ts
	}
	if r.T.Span.Te > hi {
		hi = r.T.Span.Te
	}
	span := float64(hi - lo)
	if span <= 0 {
		return 0, false
	}
	frac = (l.T.AvgDur + r.T.AvgDur) / span
	if frac > 1 {
		frac = 1
	}
	return frac, true
}

// Analyze computes full statistics for rel in O(m · n log n): per column a
// sort of the non-null values (null fraction, exact distinct count,
// min/max, equi-depth histogram) and for the valid-time column a
// start-ordered sweep counting overlapping pairs.
func Analyze(rel *relation.Relation) *Table {
	n := rel.Len()
	t := &Table{Rows: int64(n), Cols: make([]Column, rel.Schema.Len())}
	for i := range t.Cols {
		t.Cols[i] = analyzeColumn(rel, i)
	}
	t.T = analyzeIntervals(rel)
	return t
}

// FromSegments derives coarse table statistics from the zone maps of a
// storage-backed relation's segments, for tables that were never
// ANALYZEd: exact row count, per-column null counts and Min/Max bounds,
// and the covering valid-time span. Distinct counts and histograms stay
// zero — estimators that need them keep reporting "no statistics" —
// but Min/Max alone already lets SelEq recognize out-of-range constants.
// Returns nil when segs is empty.
func FromSegments(segs []relation.Segment) *Table {
	if len(segs) == 0 {
		return nil
	}
	ncols := len(segs[0].Zone.Cols)
	t := &Table{Cols: make([]Column, ncols)}
	nulls := make([]int64, ncols)
	for i := range t.Cols {
		t.Cols[i] = Column{Min: value.Null, Max: value.Null}
	}
	for si, sg := range segs {
		z := &sg.Zone
		t.Rows += int64(z.Rows)
		if si == 0 || int64(z.MinTS) < t.T.Span.Ts {
			t.T.Span.Ts = z.MinTS
		}
		if si == 0 || int64(z.MaxTE) > t.T.Span.Te {
			t.T.Span.Te = z.MaxTE
		}
		for i := 0; i < ncols && i < len(z.Cols); i++ {
			zc := z.Cols[i]
			nulls[i] += int64(zc.Nulls)
			if zc.Min.IsNull() {
				continue
			}
			c := &t.Cols[i]
			if c.Min.IsNull() || zc.Min.Compare(c.Min) < 0 {
				c.Min = zc.Min
			}
			if c.Max.IsNull() || zc.Max.Compare(c.Max) > 0 {
				c.Max = zc.Max
			}
		}
	}
	if t.Rows > 0 {
		for i := range t.Cols {
			t.Cols[i].NullFrac = float64(nulls[i]) / float64(t.Rows)
		}
	}
	return t
}

// analyzeColumn computes one column's statistics.
func analyzeColumn(rel *relation.Relation, col int) Column {
	vals := make([]value.Value, 0, rel.Len())
	nulls := 0
	for _, tp := range rel.Tuples {
		v := tp.Vals[col]
		if v.IsNull() {
			nulls++
			continue
		}
		vals = append(vals, v)
	}
	c := Column{Min: value.Null, Max: value.Null}
	if rel.Len() > 0 {
		c.NullFrac = float64(nulls) / float64(rel.Len())
	}
	if len(vals) == 0 {
		return c
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a].Compare(vals[b]) < 0 })
	distinct := 1
	for i := 1; i < len(vals); i++ {
		if vals[i].Compare(vals[i-1]) != 0 {
			distinct++
		}
	}
	c.Distinct = float64(distinct)
	c.Min, c.Max = vals[0], vals[len(vals)-1]
	c.Hist = equiDepth(vals, distinct)
	return c
}

// equiDepth builds histogram bounds over sorted values.
func equiDepth(sorted []value.Value, distinct int) Histogram {
	b := HistBuckets
	if distinct < b {
		b = distinct
	}
	if b < 1 || len(sorted) == 0 {
		return Histogram{}
	}
	bounds := make([]value.Value, 0, b+1)
	for i := 0; i <= b; i++ {
		idx := i * (len(sorted) - 1) / b
		bounds = append(bounds, sorted[idx])
	}
	return Histogram{Bounds: bounds}
}

// analyzeIntervals computes the valid-time statistics.
func analyzeIntervals(rel *relation.Relation) IntervalStats {
	n := rel.Len()
	if n == 0 {
		return IntervalStats{}
	}
	starts := make([]int64, n)
	ends := make([]int64, n)
	durs := make([]value.Value, n)
	var durSum float64
	for i, tp := range rel.Tuples {
		starts[i], ends[i] = tp.T.Ts, tp.T.Te
		durs[i] = value.NewInt(tp.T.Duration())
		durSum += float64(tp.T.Duration())
	}
	st := IntervalStats{AvgDur: durSum / float64(n)}
	if span, ok := rel.Span(); ok {
		st.Span = span
	}

	// Distinct exact intervals: sort (Ts, Te) pairs lexicographically.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if starts[ia] != starts[ib] {
			return starts[ia] < starts[ib]
		}
		return ends[ia] < ends[ib]
	})
	distinctT := 1
	for k := 1; k < n; k++ {
		a, b := order[k-1], order[k]
		if starts[a] != starts[b] || ends[a] != ends[b] {
			distinctT++
		}
	}
	st.DistinctT = float64(distinctT)

	// Overlap profile: with tuples ordered by Ts, tuple i overlaps every
	// later tuple j whose Ts_j < Te_i, so one binary search per tuple
	// counts all overlapping pairs.
	sortedTs := make([]int64, n)
	for k, idx := range order {
		sortedTs[k] = starts[idx]
	}
	var pairs float64
	for k, idx := range order {
		te := ends[idx]
		hi := sort.Search(n, func(j int) bool { return sortedTs[j] >= te })
		if hi > k+1 {
			pairs += float64(hi - k - 1)
		}
	}
	st.AvgOverlap = 2 * pairs / float64(n)

	sort.Slice(durs, func(a, b int) bool { return durs[a].Compare(durs[b]) < 0 })
	dd := 1
	for i := 1; i < len(durs); i++ {
		if durs[i].Compare(durs[i-1]) != 0 {
			dd++
		}
	}
	st.DurHist = equiDepth(durs, dd)
	return st
}
