package core

import (
	"math/rand"
	"testing"

	"talign/internal/expr"
	"talign/internal/plan"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/value"
)

// The interval-index access path (Sec. 8 future work) must be a pure
// performance change: every operator produces identical results with the
// flag on and off.

func ivxFlags() plan.Flags {
	f := plan.DefaultFlags()
	f.EnableIntervalIndex = true
	return f
}

func ivxAttrs() []schema.Attr {
	return []schema.Attr{{Name: "x", Type: value.KindString}, {Name: "v", Type: value.KindInt}}
}

func ivxAttrsS() []schema.Attr {
	return []schema.Attr{{Name: "y", Type: value.KindString}, {Name: "w", Type: value.KindInt}}
}

func TestIntervalIndexAlignEquivalence(t *testing.T) {
	base := Default()
	indexed := New(ivxFlags())
	rng := rand.New(rand.NewSource(91))
	thetas := map[string]expr.Expr{
		"true": nil,
		"v<=w": expr.Le(expr.C("v"), expr.C("w")), // non-equi: index path fires
	}
	for name, theta := range thetas {
		for round := 0; round < 80; round++ {
			r := randrel.Generate(rng, randrel.DefaultConfig(ivxAttrs()...))
			s := randrel.Generate(rng, randrel.DefaultConfig(ivxAttrsS()...))
			want, err := base.Align(r, s, theta)
			if err != nil {
				t.Fatalf("base align: %v", err)
			}
			got, err := indexed.Align(r, s, theta)
			if err != nil {
				t.Fatalf("indexed align: %v", err)
			}
			if !relation.SetEqual(got, want) {
				onlyGot, onlyWant := relation.Diff(got, want)
				t.Fatalf("θ=%s round %d: interval index changed the result\nonly indexed: %v\nonly base: %v\nr:\n%s\ns:\n%s",
					name, round, onlyGot, onlyWant, r, s)
			}
		}
	}
}

func TestIntervalIndexJoinEquivalence(t *testing.T) {
	base := Default()
	indexed := New(ivxFlags())
	rng := rand.New(rand.NewSource(92))
	for round := 0; round < 60; round++ {
		r := randrel.Generate(rng, randrel.DefaultConfig(ivxAttrs()...))
		s := randrel.Generate(rng, randrel.DefaultConfig(ivxAttrsS()...))
		want, err := base.FullOuterJoin(r, s, nil)
		if err != nil {
			t.Fatalf("base: %v", err)
		}
		got, err := indexed.FullOuterJoin(r, s, nil)
		if err != nil {
			t.Fatalf("indexed: %v", err)
		}
		if !relation.SetEqual(got, want) {
			t.Fatalf("round %d: full outer join differs under interval index", round)
		}
		wantA, err := base.AntiJoin(r, s, expr.Le(expr.C("v"), expr.C("w")))
		if err != nil {
			t.Fatalf("base anti: %v", err)
		}
		gotA, err := indexed.AntiJoin(r, s, expr.Le(expr.C("v"), expr.C("w")))
		if err != nil {
			t.Fatalf("indexed anti: %v", err)
		}
		if !relation.SetEqual(gotA, wantA) {
			t.Fatalf("round %d: antijoin differs under interval index", round)
		}
	}
}

// TestIntervalIndexPlanShape: with the flag on and a non-equi θ, EXPLAIN
// shows the interval-index join; with equi θ the ordinary join machinery
// stays in charge.
func TestIntervalIndexPlanShape(t *testing.T) {
	indexed := New(ivxFlags())
	r := relation.NewBuilder("x string", "v int").Row(0, 5, "a", 1).MustBuild()
	s := relation.NewBuilder("y string", "w int").Row(2, 7, "b", 2).MustBuild()
	p := indexed.Planner()
	nonEqui := indexed.AlignPlan(p.Scan(r, "r"), p.Scan(s, "s"), nil)
	if text := plan.Explain(nonEqui); !containsStr(text, "interval-index") {
		t.Fatalf("non-equi align should use the interval index:\n%s", text)
	}
	theta, err := BindTheta(r, s, expr.Eq(expr.C("x"), expr.C("y")))
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	equi := indexed.AlignPlan(p.Scan(r, "r"), p.Scan(s, "s"), theta)
	if text := plan.Explain(equi); containsStr(text, "interval-index") {
		t.Fatalf("equi align should use hash/merge, not the interval index:\n%s", text)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
