package core

import (
	"math/rand"
	"strings"
	"testing"

	"talign/internal/expr"
	"talign/internal/plan"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/value"
)

// legacyFlags reverts to the classic join → sort → Adjust pipeline under
// the given join-method flags.
func legacyFlags(base plan.Flags) plan.Flags {
	base.DisableFusedAdjust = true
	return base
}

// methodFlags builds flag sets that force each group strategy.
func methodFlags() map[string]plan.Flags {
	return map[string]plan.Flags{
		"hash":     {EnableHashJoin: true, EnableSort: true},
		"merge":    {EnableMergeJoin: true, EnableSort: true},
		"nestloop": {EnableNestLoop: true, EnableSort: true},
	}
}

// TestFusedAdjustMatchesLegacy is the randomized differential test for the
// fused group-construction → sweep operator: for random relations, ALIGN
// and NORMALIZE under every forced group strategy must be set-equal to the
// classic pipeline under the same flags.
func TestFusedAdjustMatchesLegacy(t *testing.T) {
	attrsR := []schema.Attr{{Name: "x", Type: value.KindString}, {Name: "v", Type: value.KindInt}}
	attrsS := []schema.Attr{{Name: "x2", Type: value.KindString}, {Name: "w", Type: value.KindInt}}
	theta := expr.Eq(expr.CI(0, value.KindString), expr.CI(2, value.KindString))

	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := randrel.Generate(rng, randrel.DefaultConfig(attrsR...))
		s := randrel.Generate(rng, randrel.DefaultConfig(attrsS...))
		for name, flags := range methodFlags() {
			fused := New(flags)
			legacy := New(legacyFlags(flags))

			check := func(op string, f func(a *Algebra) (*relation.Relation, error)) {
				t.Helper()
				want, err := f(legacy)
				if err != nil {
					t.Fatalf("seed %d %s/%s legacy: %v", seed, op, name, err)
				}
				got, err := f(fused)
				if err != nil {
					t.Fatalf("seed %d %s/%s fused: %v", seed, op, name, err)
				}
				if !relation.SetEqual(want, got) {
					a, b := relation.Diff(want, got)
					t.Fatalf("seed %d %s/%s: fused differs from legacy\nonly legacy: %v\nonly fused: %v\nr:\n%s\ns:\n%s",
						seed, op, name, a, b, r, s)
				}
			}
			check("align-theta", func(a *Algebra) (*relation.Relation, error) { return a.Align(r, s, theta) })
			check("align-true", func(a *Algebra) (*relation.Relation, error) { return a.Align(r, s, nil) })
			check("normalize-x", func(a *Algebra) (*relation.Relation, error) { return a.Normalize(r, r, "x") })
			check("normalize-all", func(a *Algebra) (*relation.Relation, error) { return a.Normalize(r, r, "x", "v") })
			check("normalize-empty", func(a *Algebra) (*relation.Relation, error) { return a.Normalize(r, r) })
			check("fullouter", func(a *Algebra) (*relation.Relation, error) { return a.FullOuterJoin(r, s, theta) })
			check("antijoin", func(a *Algebra) (*relation.Relation, error) { return a.AntiJoin(r, s, theta) })
		}
	}
}

// TestFusedAdjustIntervalIndex differentially tests the fused
// interval-index strategy (keyless θ) against the legacy interval-index
// plan and the nested-loop fallback.
func TestFusedAdjustIntervalIndex(t *testing.T) {
	attrsR := []schema.Attr{{Name: "x", Type: value.KindString}}
	attrsS := []schema.Attr{{Name: "y", Type: value.KindString}}
	ivx := plan.DefaultFlags()
	ivx.EnableIntervalIndex = true
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := randrel.Generate(rng, randrel.DefaultConfig(attrsR...))
		s := randrel.Generate(rng, randrel.DefaultConfig(attrsS...))
		want, err := New(legacyFlags(ivx)).Align(r, s, nil)
		if err != nil {
			t.Fatalf("seed %d legacy interval-index: %v", seed, err)
		}
		got, err := New(ivx).Align(r, s, nil)
		if err != nil {
			t.Fatalf("seed %d fused interval-index: %v", seed, err)
		}
		nl, err := Default().Align(r, s, nil)
		if err != nil {
			t.Fatalf("seed %d nestloop: %v", seed, err)
		}
		if !relation.SetEqual(want, got) || !relation.SetEqual(nl, got) {
			t.Fatalf("seed %d: interval-index results diverge\nr:\n%s\ns:\n%s", seed, r, s)
		}
	}
}

// TestFusedAdjustParallel: the exchange rewrite composes with the fused
// fragment — parallel fused plans match serial fused and serial legacy.
func TestFusedAdjustParallel(t *testing.T) {
	attrsR := []schema.Attr{{Name: "x", Type: value.KindString}, {Name: "v", Type: value.KindInt}}
	theta := expr.Eq(expr.CI(0, value.KindString), expr.CI(2, value.KindString))
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := randrel.Generate(rng, randrel.DefaultConfig(attrsR...))
		s := randrel.Generate(rng, randrel.DefaultConfig(attrsR...))
		want, err := New(legacyFlags(plan.DefaultFlags())).Align(r, s, theta)
		if err != nil {
			t.Fatalf("seed %d legacy: %v", seed, err)
		}
		for _, v := range []struct{ dop, batch int }{{2, 1}, {4, 3}, {4, 0}} {
			a := New(parallelFlags(v.dop, v.batch))
			got, err := a.Align(r, s, theta)
			if err != nil {
				t.Fatalf("seed %d dop=%d: %v", seed, v.dop, err)
			}
			if !relation.SetEqual(want, got) {
				x, y := relation.Diff(want, got)
				t.Fatalf("seed %d dop=%d batch=%d: parallel fused differs\nonly legacy: %v\nonly fused: %v",
					seed, v.dop, v.batch, x, y)
			}
			gotN, err := a.Normalize(r, r, "x")
			if err != nil {
				t.Fatalf("seed %d dop=%d normalize: %v", seed, v.dop, err)
			}
			wantN, err := New(legacyFlags(plan.DefaultFlags())).Normalize(r, r, "x")
			if err != nil {
				t.Fatalf("seed %d legacy normalize: %v", seed, err)
			}
			if !relation.SetEqual(wantN, gotN) {
				t.Fatalf("seed %d dop=%d: parallel fused normalize differs", seed, v.dop)
			}
		}
	}
}

// TestFusedAdjustPlanShape: EXPLAIN renders the fused node with its mode
// and group strategy, and the legacy flag restores the classic chain.
func TestFusedAdjustPlanShape(t *testing.T) {
	r := relation.NewBuilder("x string", "v int").Row(0, 5, "a", 1).MustBuild()
	s := relation.NewBuilder("y string", "w int").Row(2, 7, "a", 2).MustBuild()
	theta, err := BindTheta(r, s, expr.Eq(expr.C("x"), expr.C("y")))
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	a := Default()
	text := plan.Explain(a.AlignPlan(a.Planner().Scan(r, "r"), a.Planner().Scan(s, "s"), theta))
	if !strings.Contains(text, "FusedAdjust align") {
		t.Fatalf("fused plan missing FusedAdjust node:\n%s", text)
	}
	if !strings.Contains(text, "join)") {
		t.Fatalf("fused plan label missing group strategy:\n%s", text)
	}
	leg := New(legacyFlags(plan.DefaultFlags()))
	text = plan.Explain(leg.AlignPlan(leg.Planner().Scan(r, "r"), leg.Planner().Scan(s, "s"), theta))
	if !strings.Contains(text, "Sort") || strings.Contains(text, "FusedAdjust") {
		t.Fatalf("legacy plan should keep the classic chain:\n%s", text)
	}
}
