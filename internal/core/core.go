// Package core implements the paper's contribution: timestamp propagation
// (the extend operator U, Def. 3), the two temporal primitives — temporal
// aligner Φ_θ (Defs. 10/11) and temporal splitter / normalization N_B
// (Defs. 8/9) — the absorb operator α (Def. 12), and the reduction rules of
// Table 2 that turn every operator of a temporal algebra with sequenced
// semantics into nontemporal operators over adjusted relations.
//
// Query processing is the paper's two-step scheme: (1) propagate and adjust
// the interval timestamps of argument tuples, (2) apply the corresponding
// nontemporal operator, comparing adjusted timestamps with equality only.
//
// θ conditions are expressions over the concatenation of the left and the
// right argument schema (left attributes first). They must not reference
// the implicit valid time: predicates and functions over timestamps go
// through propagated attributes (Extend), which is exactly extended
// snapshot reducibility.
package core

import (
	"fmt"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// Algebra evaluates the temporal algebra under a planner configuration.
// The zero value is not usable; construct with New or Default.
type Algebra struct {
	p *plan.Planner
}

// New returns an algebra whose internal joins are planned under flags.
func New(flags plan.Flags) *Algebra {
	return &Algebra{p: plan.NewPlanner(flags)}
}

// Default returns an algebra with all join methods enabled.
func Default() *Algebra { return New(plan.DefaultFlags()) }

// Planner exposes the underlying planner (for composing with custom plans).
func (a *Algebra) Planner() *plan.Planner { return a.p }

// ----------------------------------------------------------------- extend

// Extend implements U(r) (Def. 3): it appends an attribute holding a copy
// of each tuple's valid time, enabling predicates and functions over the
// original interval timestamps (extended snapshot reducibility).
func Extend(r *relation.Relation, name string) (*relation.Relation, error) {
	if r.Schema.Index(name) >= 0 {
		return nil, fmt.Errorf("core: extend attribute %q already exists", name)
	}
	attrs := make([]schema.Attr, 0, r.Schema.Len()+1)
	attrs = append(attrs, r.Schema.Attrs...)
	attrs = append(attrs, schema.Attr{Name: name, Type: value.KindInterval})
	s, err := schema.New(attrs...)
	if err != nil {
		return nil, err
	}
	out := relation.New(s)
	for _, t := range r.Tuples {
		vals := make([]value.Value, 0, len(t.Vals)+1)
		vals = append(vals, t.Vals...)
		vals = append(vals, value.NewInterval(t.T))
		out.Tuples = append(out.Tuples, tuple.Tuple{Vals: vals, T: t.T})
	}
	return out, nil
}

// MustExtend is Extend but panics on error.
func MustExtend(r *relation.Relation, name string) *relation.Relation {
	out, err := Extend(r, name)
	if err != nil {
		panic(err)
	}
	return out
}

// BindTheta binds a θ condition against Concat(r.Schema, s.Schema) and
// verifies it does not reference the implicit valid time. Ambiguous names
// resolve to the left argument (use positional references or distinct
// names where that matters; the SQL layer resolves qualified names).
func BindTheta(r, s *relation.Relation, theta expr.Expr) (expr.Expr, error) {
	if theta == nil {
		return nil, nil
	}
	bound, err := theta.Bind(r.Schema.Concat(s.Schema))
	if err != nil {
		return nil, err
	}
	if expr.UsesT(bound) {
		return nil, fmt.Errorf("core: θ references the implicit valid time; propagate timestamps with Extend instead (extended snapshot reducibility)")
	}
	return bound, nil
}

// swapTheta re-targets a θ bound against Concat(r, s) to Concat(s, r).
func swapTheta(theta expr.Expr, rWidth, sWidth int) expr.Expr {
	if theta == nil {
		return nil
	}
	return expr.Remap(theta, func(i int) int {
		if i < rWidth {
			return i + sWidth
		}
		return i - rWidth
	})
}

// ----------------------------------------------------- primitive: aligner

// AlignPlan builds the plan for r Φ_θ s (Def. 11): the group-construction
// left outer join of Sec. 6.1, partitioned by r-tuple and sorted by the
// intersection interval, feeding the plane-sweep Adjust node.
func (a *Algebra) AlignPlan(r, s plan.Node, theta expr.Expr) plan.Node {
	return a.alignPlanMode(r, s, theta, exec.ModeAlign)
}

// GapsPlan builds the customized aligner that emits only the maximal
// sub-intervals of r not covered by a θ-matching s tuple — the Sec. 8
// future-work specialization that evaluates the temporal antijoin without
// producing intersections that cannot contribute to its result.
func (a *Algebra) GapsPlan(r, s plan.Node, theta expr.Expr) plan.Node {
	return a.alignPlanMode(r, s, theta, exec.ModeGaps)
}

func (a *Algebra) alignPlanMode(r, s plan.Node, theta expr.Expr, mode exec.AdjustMode) plan.Node {
	serial := a.alignFragment(r, s, theta, mode)
	attempt, force := a.p.ShouldParallelize(r.Rows())
	if !attempt {
		return serial
	}
	// Parallel alignment: the plane sweep is independent per left tuple, so
	// r is hash-partitioned by the whole tuple (values and valid time), the
	// group side is materialized once and broadcast, and each fragment runs
	// group construction + sort + sweep on its partition.
	shared := a.p.Shared(s)
	ex, err := a.p.Exchange([]plan.Node{r}, [][]expr.Expr{nil}, func(parts []plan.Node) (plan.Node, error) {
		return a.alignFragment(parts[0], shared, theta, mode), nil
	})
	return plan.PickParallel(serial, ex, err, force)
}

// alignFragment is the serial group-construction + plane-sweep pipeline;
// in a parallel plan it runs once per partition of r. By default it is a
// single fused operator (plan.FusedAdjustNode) that probes the group side
// and sweeps without materializing concatenated join rows; the
// DisableFusedAdjust flag selects the paper-literal three-node chain.
func (a *Algebra) alignFragment(r, s plan.Node, theta expr.Expr, mode exec.AdjustMode) plan.Node {
	if !a.p.Flags.DisableFusedAdjust {
		return a.p.FusedAlign(r, s, theta, mode)
	}
	return a.alignFragmentLegacy(r, s, theta, mode)
}

// alignFragmentLegacy is the classic pipeline: project the group side's
// timestamps into columns, left outer join, sort by (r tuple, P1, P2),
// plane-sweep.
func (a *Algebra) alignFragmentLegacy(r, s plan.Node, theta expr.Expr, mode exec.AdjustMode) plan.Node {
	rl, sl := r.Schema().Len(), s.Schema().Len()

	// Project the group side to (s attributes, __ts, __te): the sweep needs
	// the group tuple's timestamp as ordinary values.
	names := make([]string, 0, sl+2)
	exprs := make([]expr.Expr, 0, sl+2)
	for i, at := range s.Schema().Attrs {
		names = append(names, at.Name)
		exprs = append(exprs, expr.ColIdx{Idx: i, Typ: at.Type, Name: at.Name})
	}
	names = append(names, "__ts", "__te")
	exprs = append(exprs, expr.TStart{}, expr.TEnd{})
	sp := a.p.Project(s, names, exprs)

	tsCol := rl + sl     // __ts position in the join row
	teCol := rl + sl + 1 // __te position in the join row
	overlap := expr.And(
		expr.Lt(expr.TStart{}, expr.CI(teCol, value.KindInt)),
		expr.Lt(expr.CI(tsCol, value.KindInt), expr.TEnd{}),
	)
	cond := overlap
	if theta != nil {
		cond = expr.And(theta, overlap)
	}
	var join plan.Node
	if pairs, _ := expr.SplitJoinCondition(cond, rl); a.p.Flags.EnableIntervalIndex && len(pairs) == 0 {
		// θ admits no equi keys: the sort-based overlap join (Sec. 8
		// future work) replaces the quadratic nested loop.
		join = a.p.IntervalJoin(r, sp, cond, exec.LeftOuterJoin)
	} else {
		join = a.p.Join(r, sp, cond, exec.LeftOuterJoin, false)
	}

	// Partition by r-tuple (attributes + valid time), order by the
	// intersection [P1, P2) so duplicates are adjacent (Fig. 9).
	p1 := expr.Call("GREATEST", expr.TStart{}, expr.CI(tsCol, value.KindInt))
	p2 := expr.Call("LEAST", expr.TEnd{}, expr.CI(teCol, value.KindInt))
	keys := make([]exec.SortKey, 0, rl+4)
	for i, at := range r.Schema().Attrs {
		keys = append(keys, exec.SortKey{Expr: expr.ColIdx{Idx: i, Typ: at.Type, Name: at.Name}})
	}
	keys = append(keys,
		exec.SortKey{Expr: expr.TStart{}},
		exec.SortKey{Expr: expr.TEnd{}},
		exec.SortKey{Expr: p1},
		exec.SortKey{Expr: p2},
	)
	sorted := a.p.Sort(join, keys...)
	return a.p.Adjust(sorted, mode, rl, p1, p2)
}

// Align evaluates r Φ_θ s. theta is a condition over Concat(r, s) (nil for
// true, as in the reduction of the Cartesian product).
func (a *Algebra) Align(r, s *relation.Relation, theta expr.Expr) (*relation.Relation, error) {
	bound, err := BindTheta(r, s, theta)
	if err != nil {
		return nil, err
	}
	return plan.Run(a.AlignPlan(a.p.Scan(r, "r"), a.p.Scan(s, "s"), bound))
}

// ---------------------------------------------------- primitive: splitter

// NormalizePlan builds the plan for N_B(r; s) (Def. 9): r is left outer
// joined with the union of s's start and end points π_{B,Ts}(s) ∪
// π_{B,Te}(s) (Sec. 6.3), partitioned by r-tuple, sorted by split point,
// and swept with isalign = false.
//
// cols are the positions of the grouping attributes B, applied
// positionally to both r and s (for the set operations they are all of
// r's attributes; for projection/aggregation r and s coincide). Use
// NormalizePlan2 when B sits at different positions in r and s.
func (a *Algebra) NormalizePlan(r, s plan.Node, cols []int) plan.Node {
	return a.NormalizePlan2(r, s, cols, cols)
}

// NormalizePlan2 is NormalizePlan with independent column positions for the
// grouping attributes in r (rCols) and s (sCols).
func (a *Algebra) NormalizePlan2(r, s plan.Node, rCols, sCols []int) plan.Node {
	points := a.splitPointsPlan(s, sCols)
	serial := a.normalizeFragment(r, points, rCols)
	attempt, force := a.p.ShouldParallelize(r.Rows())
	if !attempt {
		return serial
	}
	// Parallel normalization: like alignment, the splitter sweep is
	// independent per r tuple; partition r by the whole tuple and broadcast
	// the (much smaller) split-point relation to every fragment.
	shared := a.p.Shared(points)
	ex, err := a.p.Exchange([]plan.Node{r}, [][]expr.Expr{nil}, func(parts []plan.Node) (plan.Node, error) {
		return a.normalizeFragment(parts[0], shared, rCols), nil
	})
	return plan.PickParallel(serial, ex, err, force)
}

// splitPointsPlan builds π_{B,Ts}(s) ∪ π_{B,Te}(s): the candidate split
// points with their grouping attributes.
func (a *Algebra) splitPointsPlan(s plan.Node, sCols []int) plan.Node {
	splitPoints := func(point expr.Expr) plan.Node {
		names := make([]string, 0, len(sCols)+1)
		exprs := make([]expr.Expr, 0, len(sCols)+1)
		for _, c := range sCols {
			at := s.Schema().Attrs[c]
			names = append(names, at.Name)
			exprs = append(exprs, expr.ColIdx{Idx: c, Typ: at.Type, Name: at.Name})
		}
		names = append(names, "__p")
		exprs = append(exprs, point)
		pr := a.p.Project(s, names, exprs)
		pr.TMode = exec.TZero // split points are nontemporal values
		return pr
	}
	return a.p.SetOp(splitPoints(expr.TStart{}), splitPoints(expr.TEnd{}), exec.UnionOp)
}

// normalizeFragment joins r with the split-point relation and sweeps; in
// a parallel plan it runs once per partition of r. cols are B's positions
// in r; the split-point relation carries B first and __p last. Like
// alignFragment it defaults to the fused operator and keeps the classic
// join → sort → Adjust chain behind DisableFusedAdjust.
func (a *Algebra) normalizeFragment(r, points plan.Node, cols []int) plan.Node {
	if !a.p.Flags.DisableFusedAdjust {
		keys := make([]expr.EquiPair, 0, len(cols))
		for i, c := range cols {
			at := r.Schema().Attrs[c]
			keys = append(keys, expr.EquiPair{
				Left:  expr.ColIdx{Idx: c, Typ: at.Type, Name: at.Name},
				Right: expr.ColIdx{Idx: i, Typ: at.Type, Name: points.Schema().Attrs[i].Name},
			})
		}
		return a.p.FusedNormalize(r, points, keys, len(cols))
	}
	return a.normalizeFragmentLegacy(r, points, cols)
}

func (a *Algebra) normalizeFragmentLegacy(r, points plan.Node, cols []int) plan.Node {
	rl := r.Schema().Len()

	pCol := rl + len(cols) // __p position in the join row
	conds := make([]expr.Expr, 0, len(cols)+2)
	for i, c := range cols {
		at := r.Schema().Attrs[c]
		conds = append(conds, expr.Eq(
			expr.ColIdx{Idx: c, Typ: at.Type, Name: at.Name},
			expr.CI(rl+i, at.Type),
		))
	}
	// Only split points strictly inside r's interval split it.
	conds = append(conds,
		expr.Lt(expr.TStart{}, expr.CI(pCol, value.KindInt)),
		expr.Lt(expr.CI(pCol, value.KindInt), expr.TEnd{}),
	)
	join := a.p.Join(r, points, expr.And(conds...), exec.LeftOuterJoin, false)

	keys := make([]exec.SortKey, 0, rl+3)
	for i, at := range r.Schema().Attrs {
		keys = append(keys, exec.SortKey{Expr: expr.ColIdx{Idx: i, Typ: at.Type, Name: at.Name}})
	}
	keys = append(keys,
		exec.SortKey{Expr: expr.TStart{}},
		exec.SortKey{Expr: expr.TEnd{}},
		exec.SortKey{Expr: expr.CI(pCol, value.KindInt)},
	)
	sorted := a.p.Sort(join, keys...)
	return a.p.Adjust(sorted, exec.ModeNormalize, rl, expr.CI(pCol, value.KindInt), nil)
}

// Normalize evaluates N_B(r; s) with B given by attribute names of r,
// matched positionally against s (pass r twice for self-normalization).
func (a *Algebra) Normalize(r, s *relation.Relation, attrs ...string) (*relation.Relation, error) {
	cols, err := r.Schema.Indexes(attrs...)
	if err != nil {
		return nil, err
	}
	for _, c := range cols {
		if c >= s.Schema.Len() {
			return nil, fmt.Errorf("core: normalization attribute #%d outside s's schema %s", c, s.Schema)
		}
	}
	return plan.Run(a.NormalizePlan(a.p.Scan(r, "r"), a.p.Scan(s, "s"), cols))
}

// ----------------------------------------------------------------- absorb

// Absorb evaluates α(r) (Def. 12): tuples whose timestamps are properly
// contained in a value-equivalent tuple's timestamp are removed.
func (a *Algebra) Absorb(r *relation.Relation) (*relation.Relation, error) {
	return plan.Run(a.p.Absorb(a.p.Scan(r, "r")))
}
