package core

import (
	"math/rand"
	"testing"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/oracle"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/value"
)

// This file is the executable proof of Theorem 1: for every operator of
// the temporal algebra, the reduction-rule evaluation (package core) must
// produce exactly the relation defined by snapshot reducibility, extended
// snapshot reducibility and change preservation (package oracle computes it
// directly from the definitions). Agreement on hundreds of random
// duplicate-free relations covers the full operator matrix.

const theorem1Rounds = 120

func attrs2() []schema.Attr {
	return []schema.Attr{
		{Name: "x", Type: value.KindString},
		{Name: "v", Type: value.KindInt},
	}
}

func attrs2s() []schema.Attr {
	return []schema.Attr{
		{Name: "y", Type: value.KindString},
		{Name: "w", Type: value.KindInt},
	}
}

func crossValidate(t *testing.T, name string, seed int64,
	run func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error),
	spec func(r, s *relation.Relation) (*relation.Relation, error)) {
	t.Helper()
	a := Default()
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < theorem1Rounds; round++ {
		r := randrel.Generate(rng, randrel.DefaultConfig(attrs2()...))
		s := randrel.Generate(rng, randrel.DefaultConfig(attrs2s()...))
		if err := r.DuplicateFree(); err != nil {
			t.Fatalf("%s: generator broke the invariant: %v", name, err)
		}
		got, err := run(a, r, s)
		if err != nil {
			t.Fatalf("%s round %d: core: %v", name, round, err)
		}
		want, err := spec(r, s)
		if err != nil {
			t.Fatalf("%s round %d: oracle: %v", name, round, err)
		}
		if !relation.SetEqual(got, want) {
			onlyGot, onlyWant := relation.Diff(got, want)
			t.Fatalf("%s round %d: reduction disagrees with definitions\nr:\n%s\ns:\n%s\nonly core:   %v\nonly oracle: %v",
				name, round, r, s, onlyGot, onlyWant)
		}
	}
}

// thetaXY is the join condition x = y (string attributes of both sides).
func thetaXY() expr.Expr { return expr.Eq(expr.C("x"), expr.C("y")) }

// thetaVW is a non-equi condition v <= w.
func thetaVW() expr.Expr { return expr.Le(expr.C("v"), expr.C("w")) }

func TestTheorem1CartesianProduct(t *testing.T) {
	crossValidate(t, "cartesian", 1,
		func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) { return a.CartesianProduct(r, s) },
		func(r, s *relation.Relation) (*relation.Relation, error) { return oracle.CartesianProduct(r, s) })
}

func TestTheorem1InnerJoinEqui(t *testing.T) {
	crossValidate(t, "join-equi", 2,
		func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) { return a.Join(r, s, thetaXY()) },
		func(r, s *relation.Relation) (*relation.Relation, error) { return oracle.Join(r, s, thetaXY()) })
}

func TestTheorem1InnerJoinNonEqui(t *testing.T) {
	crossValidate(t, "join-nonequi", 3,
		func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) { return a.Join(r, s, thetaVW()) },
		func(r, s *relation.Relation) (*relation.Relation, error) { return oracle.Join(r, s, thetaVW()) })
}

func TestTheorem1LeftOuterJoin(t *testing.T) {
	crossValidate(t, "louter", 4,
		func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.LeftOuterJoin(r, s, thetaXY())
		},
		func(r, s *relation.Relation) (*relation.Relation, error) {
			return oracle.LeftOuterJoin(r, s, thetaXY())
		})
}

func TestTheorem1LeftOuterJoinNonEqui(t *testing.T) {
	crossValidate(t, "louter-nonequi", 5,
		func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.LeftOuterJoin(r, s, thetaVW())
		},
		func(r, s *relation.Relation) (*relation.Relation, error) {
			return oracle.LeftOuterJoin(r, s, thetaVW())
		})
}

func TestTheorem1RightOuterJoin(t *testing.T) {
	crossValidate(t, "router", 6,
		func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.RightOuterJoin(r, s, thetaXY())
		},
		func(r, s *relation.Relation) (*relation.Relation, error) {
			return oracle.RightOuterJoin(r, s, thetaXY())
		})
}

func TestTheorem1FullOuterJoin(t *testing.T) {
	crossValidate(t, "fouter", 7,
		func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.FullOuterJoin(r, s, thetaXY())
		},
		func(r, s *relation.Relation) (*relation.Relation, error) {
			return oracle.FullOuterJoin(r, s, thetaXY())
		})
}

func TestTheorem1FullOuterJoinNonEqui(t *testing.T) {
	crossValidate(t, "fouter-nonequi", 8,
		func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.FullOuterJoin(r, s, thetaVW())
		},
		func(r, s *relation.Relation) (*relation.Relation, error) {
			return oracle.FullOuterJoin(r, s, thetaVW())
		})
}

func TestTheorem1AntiJoin(t *testing.T) {
	crossValidate(t, "anti", 9,
		func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.AntiJoin(r, s, thetaXY())
		},
		func(r, s *relation.Relation) (*relation.Relation, error) { return oracle.AntiJoin(r, s, thetaXY()) })
}

func TestTheorem1AntiJoinNonEqui(t *testing.T) {
	crossValidate(t, "anti-nonequi", 10,
		func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.AntiJoin(r, s, thetaVW())
		},
		func(r, s *relation.Relation) (*relation.Relation, error) { return oracle.AntiJoin(r, s, thetaVW()) })
}

// Set operations need union compatible schemas: reuse the r-schema for s.
func crossValidateSet(t *testing.T, name string, seed int64,
	run func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error),
	spec func(r, s *relation.Relation) (*relation.Relation, error)) {
	t.Helper()
	a := Default()
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < theorem1Rounds; round++ {
		r := randrel.Generate(rng, randrel.DefaultConfig(attrs2()...))
		s := randrel.Generate(rng, randrel.DefaultConfig(attrs2()...))
		got, err := run(a, r, s)
		if err != nil {
			t.Fatalf("%s round %d: core: %v", name, round, err)
		}
		want, err := spec(r, s)
		if err != nil {
			t.Fatalf("%s round %d: oracle: %v", name, round, err)
		}
		if !relation.SetEqual(got, want) {
			onlyGot, onlyWant := relation.Diff(got, want)
			t.Fatalf("%s round %d: reduction disagrees with definitions\nr:\n%s\ns:\n%s\nonly core:   %v\nonly oracle: %v",
				name, round, r, s, onlyGot, onlyWant)
		}
	}
}

func TestTheorem1Union(t *testing.T) {
	crossValidateSet(t, "union", 11,
		func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) { return a.Union(r, s) },
		func(r, s *relation.Relation) (*relation.Relation, error) { return oracle.Union(r, s) })
}

func TestTheorem1Difference(t *testing.T) {
	crossValidateSet(t, "difference", 12,
		func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) { return a.Difference(r, s) },
		func(r, s *relation.Relation) (*relation.Relation, error) { return oracle.Difference(r, s) })
}

func TestTheorem1Intersection(t *testing.T) {
	crossValidateSet(t, "intersection", 13,
		func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) { return a.Intersection(r, s) },
		func(r, s *relation.Relation) (*relation.Relation, error) { return oracle.Intersection(r, s) })
}

func TestTheorem1Selection(t *testing.T) {
	pred := expr.Gt(expr.C("v"), expr.Int(0))
	crossValidate(t, "selection", 14,
		func(a *Algebra, r, _ *relation.Relation) (*relation.Relation, error) { return a.Selection(r, pred) },
		func(r, _ *relation.Relation) (*relation.Relation, error) { return oracle.Selection(r, pred) })
}

func TestTheorem1Projection(t *testing.T) {
	crossValidate(t, "projection", 15,
		func(a *Algebra, r, _ *relation.Relation) (*relation.Relation, error) { return a.Projection(r, "x") },
		func(r, _ *relation.Relation) (*relation.Relation, error) { return oracle.Projection(r, "x") })
}

func TestTheorem1Aggregation(t *testing.T) {
	crossValidate(t, "aggregation", 16,
		func(a *Algebra, r, _ *relation.Relation) (*relation.Relation, error) {
			return a.Aggregation(r, []string{"x"}, []exec.AggSpec{
				{Func: exec.AggSum, Arg: expr.C("v"), Name: "sv"},
				{Func: exec.AggCountStar, Name: "c"},
				{Func: exec.AggMin, Arg: expr.C("v"), Name: "mn"},
				{Func: exec.AggMax, Arg: expr.C("v"), Name: "mx"},
			})
		},
		func(r, _ *relation.Relation) (*relation.Relation, error) {
			return oracle.Aggregation(r, []string{"x"}, []oracle.AggSpec{
				{Op: oracle.Sum, Arg: expr.C("v"), Name: "sv"},
				{Op: oracle.CountStar, Name: "c"},
				{Op: oracle.Min, Arg: expr.C("v"), Name: "mn"},
				{Op: oracle.Max, Arg: expr.C("v"), Name: "mx"},
			})
		})
}

func TestTheorem1AggregationGlobal(t *testing.T) {
	crossValidate(t, "aggregation-global", 17,
		func(a *Algebra, r, _ *relation.Relation) (*relation.Relation, error) {
			return a.Aggregation(r, nil, []exec.AggSpec{
				{Func: exec.AggCountStar, Name: "c"},
				{Func: exec.AggAvg, Arg: expr.C("v"), Name: "av"},
			})
		},
		func(r, _ *relation.Relation) (*relation.Relation, error) {
			return oracle.Aggregation(r, nil, []oracle.AggSpec{
				{Op: oracle.CountStar, Name: "c"},
				{Op: oracle.Avg, Arg: expr.C("v"), Name: "av"},
			})
		})
}

// TestTheorem1ExtendedSnapshotReducibility exercises θ over propagated
// timestamps (DUR(U)) for the outer join, the paper's flagship ESR case.
func TestTheorem1ExtendedSnapshotReducibility(t *testing.T) {
	a := Default()
	rng := rand.New(rand.NewSource(18))
	theta := expr.Between{X: expr.Dur(expr.C("u")), Lo: expr.Int(2), Hi: expr.Dur(expr.C("u2"))}
	for round := 0; round < theorem1Rounds; round++ {
		r0 := randrel.Generate(rng, randrel.DefaultConfig(attrs2()...))
		s0 := randrel.Generate(rng, randrel.DefaultConfig(attrs2s()...))
		r := MustExtend(r0, "u")
		s := MustExtend(s0, "u2")
		got, err := a.LeftOuterJoin(r, s, theta)
		if err != nil {
			t.Fatalf("round %d: core: %v", round, err)
		}
		want, err := oracle.LeftOuterJoin(r, s, theta)
		if err != nil {
			t.Fatalf("round %d: oracle: %v", round, err)
		}
		if !relation.SetEqual(got, want) {
			onlyGot, onlyWant := relation.Diff(got, want)
			t.Fatalf("round %d: ESR disagreement\nr:\n%s\ns:\n%s\nonly core:   %v\nonly oracle: %v",
				round, r, s, onlyGot, onlyWant)
		}
	}
}
