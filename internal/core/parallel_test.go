package core

import (
	"math/rand"
	"strings"
	"testing"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/oracle"
	"talign/internal/plan"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/value"
)

// parallelFlags builds a configuration that forces the exchange rewrite
// regardless of input size, with a tiny batch size to shake out batch
// boundary bugs.
func parallelFlags(dop, batch int) plan.Flags {
	f := plan.DefaultFlags()
	f.DOP = dop
	f.ForceParallel = true
	f.BatchSize = batch
	return f
}

// TestParallelMatchesSerial is the randomized differential test for the
// batched executor and the exchange layer: for random relations, every
// temporal operator must return set-equal results under the serial plan,
// parallel plans at several DOPs, and (where the oracle implements the
// operator) the independent snapshot-by-snapshot oracle.
func TestParallelMatchesSerial(t *testing.T) {
	attrsR := []schema.Attr{{Name: "x", Type: value.KindString}, {Name: "v", Type: value.KindInt}}
	attrsS := []schema.Attr{{Name: "x2", Type: value.KindString}, {Name: "w", Type: value.KindInt}}
	theta := expr.Eq(expr.CI(0, value.KindString), expr.CI(2, value.KindString))

	type binOp struct {
		name   string
		run    func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error)
		oracle func(r, s *relation.Relation) (*relation.Relation, error)
	}
	ops := []binOp{
		{"align", func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.Align(r, s, theta)
		}, nil},
		{"normalize", func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.Normalize(r, r, "x")
		}, nil},
		{"join", func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.Join(r, s, theta)
		}, func(r, s *relation.Relation) (*relation.Relation, error) {
			return oracle.Join(r, s, theta)
		}},
		{"leftouter", func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.LeftOuterJoin(r, s, theta)
		}, func(r, s *relation.Relation) (*relation.Relation, error) {
			return oracle.LeftOuterJoin(r, s, theta)
		}},
		{"fullouter", func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.FullOuterJoin(r, s, theta)
		}, func(r, s *relation.Relation) (*relation.Relation, error) {
			return oracle.FullOuterJoin(r, s, theta)
		}},
		{"antijoin", func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.AntiJoin(r, s, theta)
		}, func(r, s *relation.Relation) (*relation.Relation, error) {
			return oracle.AntiJoin(r, s, theta)
		}},
		{"aggregation", func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.Aggregation(r, []string{"x"}, []exec.AggSpec{
				{Func: exec.AggCount, Arg: expr.C("v"), Name: "c"},
				{Func: exec.AggMax, Arg: expr.C("v"), Name: "m"},
			})
		}, func(r, s *relation.Relation) (*relation.Relation, error) {
			return oracle.Aggregation(r, []string{"x"}, []oracle.AggSpec{
				{Op: oracle.Count, Arg: expr.C("v"), Name: "c"},
				{Op: oracle.Max, Arg: expr.C("v"), Name: "m"},
			})
		}},
		{"union", func(a *Algebra, r, s *relation.Relation) (*relation.Relation, error) {
			return a.Union(r, r2(s, attrsR))
		}, func(r, s *relation.Relation) (*relation.Relation, error) {
			return oracle.Union(r, r2(s, attrsR))
		}},
	}

	serial := Default()
	variants := []struct {
		dop, batch int
	}{
		{2, 1},   // degenerate batches: every tuple crosses a boundary
		{3, 2},   // odd dop, tiny batches
		{4, 0},   // default batch size
		{8, 512}, // more workers than data
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := randrel.Generate(rng, randrel.DefaultConfig(attrsR...))
		s := randrel.Generate(rng, randrel.DefaultConfig(attrsS...))
		for _, op := range ops {
			want, err := op.run(serial, r, s)
			if err != nil {
				t.Fatalf("seed %d %s serial: %v", seed, op.name, err)
			}
			if op.oracle != nil {
				ow, err := op.oracle(r, s)
				if err != nil {
					t.Fatalf("seed %d %s oracle: %v", seed, op.name, err)
				}
				if !relation.SetEqual(want, ow) {
					a, b := relation.Diff(want, ow)
					t.Fatalf("seed %d %s: serial differs from oracle\nonly engine: %v\nonly oracle: %v\nr:\n%s\ns:\n%s",
						seed, op.name, a, b, r, s)
				}
			}
			for _, v := range variants {
				par := New(parallelFlags(v.dop, v.batch))
				got, err := op.run(par, r, s)
				if err != nil {
					t.Fatalf("seed %d %s dop=%d batch=%d: %v", seed, op.name, v.dop, v.batch, err)
				}
				if !relation.SetEqual(want, got) {
					a, b := relation.Diff(want, got)
					t.Fatalf("seed %d %s dop=%d batch=%d: parallel differs from serial\nonly serial: %v\nonly parallel: %v\nr:\n%s\ns:\n%s",
						seed, op.name, v.dop, v.batch, a, b, r, s)
				}
			}
		}
	}
}

// r2 renames s's attributes to be union compatible with r's schema.
func r2(s *relation.Relation, attrs []schema.Attr) *relation.Relation {
	out := relation.New(schema.Schema{Attrs: attrs})
	out.Tuples = s.Tuples
	return out
}

// TestParallelExplainShowsExchange: a parallel plan renders Exchange and
// Partition nodes with the configured DOP.
func TestParallelExplainShowsExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := randrel.DefaultConfig(
		schema.Attr{Name: "x", Type: value.KindString},
		schema.Attr{Name: "v", Type: value.KindInt},
	)
	cfg.MaxTuples = 64
	r := randrel.Generate(rng, cfg)
	a := New(parallelFlags(4, 0))
	node := a.AlignPlan(a.Planner().Scan(r, "r"), a.Planner().Scan(r, "s"), nil)
	out := plan.Explain(node)
	for _, want := range []string{"Exchange (hash partition, dop=4", "Partition (hash by tuple"} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, out)
		}
	}
}
