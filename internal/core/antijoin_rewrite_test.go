package core

import (
	"math/rand"
	"testing"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/oracle"
	"talign/internal/plan"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/value"
)

// The antijoin rewrite (gaps-only aligner, Sec. 8 future work) must be a
// pure plan change: the result stays the oracle's definitional antijoin.

func rewriteFlags() plan.Flags {
	f := plan.DefaultFlags()
	f.EnableAntiJoinRewrite = true
	return f
}

func TestAntiJoinRewriteEquivalence(t *testing.T) {
	fast := New(rewriteFlags())
	rng := rand.New(rand.NewSource(123))
	attrsR := []schema.Attr{{Name: "x", Type: value.KindString}, {Name: "v", Type: value.KindInt}}
	attrsS := []schema.Attr{{Name: "y", Type: value.KindString}, {Name: "w", Type: value.KindInt}}
	thetas := map[string]expr.Expr{
		"true": nil,
		"x=y":  expr.Eq(expr.C("x"), expr.C("y")),
		"v<=w": expr.Le(expr.C("v"), expr.C("w")),
	}
	for name, theta := range thetas {
		for round := 0; round < 80; round++ {
			r := randrel.Generate(rng, randrel.DefaultConfig(attrsR...))
			s := randrel.Generate(rng, randrel.DefaultConfig(attrsS...))
			got, err := fast.AntiJoin(r, s, theta)
			if err != nil {
				t.Fatalf("θ=%s: rewrite: %v", name, err)
			}
			want, err := oracle.AntiJoin(r, s, theta)
			if err != nil {
				t.Fatalf("θ=%s: oracle: %v", name, err)
			}
			if !relation.SetEqual(got, want) {
				onlyGot, onlyWant := relation.Diff(got, want)
				t.Fatalf("θ=%s round %d: rewrite changed the antijoin\nonly rewrite: %v\nonly oracle: %v\nr:\n%s\ns:\n%s",
					name, round, onlyGot, onlyWant, r, s)
			}
		}
	}
}

// TestAntiJoinRewritePlanShape: the rewritten plan has no join above the
// adjustment and mentions the gaps mode.
func TestAntiJoinRewritePlanShape(t *testing.T) {
	fast := New(rewriteFlags())
	r := relation.NewBuilder("x string").Row(0, 9, "a").MustBuild()
	s := relation.NewBuilder("y string").Row(2, 4, "a").MustBuild()
	p := fast.Planner()
	node, err := fast.JoinReducePlan(p.Scan(r, "r"), p.Scan(s, "s"), nil, exec.AntiJoin)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	text := plan.Explain(node)
	if !containsStr(text, "align-gaps") {
		t.Fatalf("rewrite should use the gaps mode:\n%s", text)
	}
	// Exactly one Adjust and no outer join above it besides the group
	// construction join.
	out, err := plan.Run(node)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := relation.NewBuilder("x string").
		Row(0, 2, "a").
		Row(4, 9, "a").
		MustBuild()
	if !relation.SetEqual(out, want) {
		t.Fatalf("gaps result wrong:\n%s", out)
	}
}

// TestAntiJoinRewriteComposesWithIntervalIndex: both future-work features
// can be active together.
func TestAntiJoinRewriteComposesWithIntervalIndex(t *testing.T) {
	f := rewriteFlags()
	f.EnableIntervalIndex = true
	both := New(f)
	rng := rand.New(rand.NewSource(124))
	attrsR := []schema.Attr{{Name: "x", Type: value.KindString}}
	attrsS := []schema.Attr{{Name: "y", Type: value.KindString}}
	for round := 0; round < 60; round++ {
		r := randrel.Generate(rng, randrel.DefaultConfig(attrsR...))
		s := randrel.Generate(rng, randrel.DefaultConfig(attrsS...))
		got, err := both.AntiJoin(r, s, nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want, err := oracle.AntiJoin(r, s, nil)
		if err != nil {
			t.Fatalf("round %d: oracle: %v", round, err)
		}
		if !relation.SetEqual(got, want) {
			t.Fatalf("round %d: combined flags changed the antijoin", round)
		}
	}
}
