package core

import (
	"math/rand"
	"testing"

	"talign/internal/expr"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/value"
)

// Property tests for the paper's formal claims about the primitives.

func propAttrs() []schema.Attr {
	return []schema.Attr{{Name: "x", Type: value.KindString}}
}

func propAttrsS() []schema.Attr {
	return []schema.Attr{{Name: "y", Type: value.KindString}}
}

// TestLemma1CardinalityBound: |r Φ_θ s| ≤ 2nm + n for every θ.
func TestLemma1CardinalityBound(t *testing.T) {
	a := Default()
	rng := rand.New(rand.NewSource(21))
	thetas := map[string]expr.Expr{
		"true": nil,
		"x=y":  expr.Eq(expr.C("x"), expr.C("y")),
	}
	for name, theta := range thetas {
		for round := 0; round < 150; round++ {
			r := randrel.Generate(rng, randrel.DefaultConfig(propAttrs()...))
			s := randrel.Generate(rng, randrel.DefaultConfig(propAttrsS()...))
			got, err := a.Align(r, s, theta)
			if err != nil {
				t.Fatalf("align: %v", err)
			}
			n, m := r.Len(), s.Len()
			if got.Len() > 2*n*m+n {
				t.Fatalf("θ=%s: |rΦs| = %d exceeds 2nm+n = %d\nr:\n%s\ns:\n%s",
					name, got.Len(), 2*n*m+n, r, s)
			}
		}
	}
}

// TestProposition1: after N_B(r; r), same-B tuples have equal or disjoint
// timestamps.
func TestProposition1(t *testing.T) {
	a := Default()
	rng := rand.New(rand.NewSource(22))
	for round := 0; round < 150; round++ {
		r := randrel.Generate(rng, randrel.DefaultConfig(propAttrs()...))
		norm, err := a.Normalize(r, r, "x")
		if err != nil {
			t.Fatalf("normalize: %v", err)
		}
		for i, t1 := range norm.Tuples {
			for _, t2 := range norm.Tuples[i+1:] {
				if !t1.ValsEqual(t2) {
					continue
				}
				if t1.T != t2.T && t1.T.Overlaps(t2.T) {
					t.Fatalf("round %d: pieces %v and %v neither equal nor disjoint\nr:\n%s\nnorm:\n%s",
						round, t1, t2, r, norm)
				}
			}
		}
	}
}

// TestProposition2: after N_A(r; s) and N_A(s; r), same-value pieces across
// the two results are equal or disjoint.
func TestProposition2(t *testing.T) {
	a := Default()
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 150; round++ {
		r := randrel.Generate(rng, randrel.DefaultConfig(propAttrs()...))
		s := randrel.Generate(rng, randrel.DefaultConfig(propAttrs()...))
		nr, err := a.Normalize(r, s, "x")
		if err != nil {
			t.Fatalf("normalize r: %v", err)
		}
		ns, err := a.Normalize(s, r, "x")
		if err != nil {
			t.Fatalf("normalize s: %v", err)
		}
		for _, t1 := range nr.Tuples {
			for _, t2 := range ns.Tuples {
				if !t1.ValsEqual(t2) {
					continue
				}
				if t1.T != t2.T && t1.T.Overlaps(t2.T) {
					t.Fatalf("round %d: cross pieces %v and %v neither equal nor disjoint\nr:\n%s\ns:\n%s",
						round, t1, t2, r, s)
				}
			}
		}
	}
}

// TestProposition3: for each θ-matching overlapping pair, both alignments
// contain pieces with exactly the intersection timestamp.
func TestProposition3(t *testing.T) {
	a := Default()
	rng := rand.New(rand.NewSource(24))
	theta := expr.Eq(expr.C("x"), expr.C("y"))
	for round := 0; round < 150; round++ {
		r := randrel.Generate(rng, randrel.DefaultConfig(propAttrs()...))
		s := randrel.Generate(rng, randrel.DefaultConfig(propAttrsS()...))
		rt, err := a.Align(r, s, theta)
		if err != nil {
			t.Fatalf("align r: %v", err)
		}
		st, err := a.Align(s, r, expr.Eq(expr.C("y"), expr.C("x")))
		if err != nil {
			t.Fatalf("align s: %v", err)
		}
		for _, rr := range r.Tuples {
			for _, ss := range s.Tuples {
				if !rr.Vals[0].Equal(ss.Vals[0]) {
					continue
				}
				iv, ok := rr.T.Intersect(ss.T)
				if !ok {
					continue
				}
				foundR, foundS := false, false
				for _, p := range rt.Tuples {
					if p.ValsEqual(rr) && p.T == iv {
						foundR = true
					}
				}
				for _, p := range st.Tuples {
					if p.ValsEqual(ss) && p.T == iv {
						foundS = true
					}
				}
				if !foundR || !foundS {
					t.Fatalf("round %d: intersection %v of %v and %v missing (r:%v s:%v)",
						round, iv, rr, ss, foundR, foundS)
				}
			}
		}
	}
}

// TestProposition4: every aligned piece is either an intersection with a
// matching group tuple or a maximal uncovered sub-interval.
func TestProposition4(t *testing.T) {
	a := Default()
	rng := rand.New(rand.NewSource(25))
	theta := expr.Eq(expr.C("x"), expr.C("y"))
	for round := 0; round < 150; round++ {
		r := randrel.Generate(rng, randrel.DefaultConfig(propAttrs()...))
		s := randrel.Generate(rng, randrel.DefaultConfig(propAttrsS()...))
		rt, err := a.Align(r, s, theta)
		if err != nil {
			t.Fatalf("align: %v", err)
		}
		for _, p := range rt.Tuples {
			// Find the source tuple (unique by duplicate-freeness).
			okPiece := false
			for _, rr := range r.Tuples {
				if !p.ValsEqual(rr) || !rr.T.ContainsInterval(p.T) {
					continue
				}
				// Case 1: intersection with a matching s tuple.
				for _, ss := range s.Tuples {
					if rr.Vals[0].Equal(ss.Vals[0]) {
						if iv, ok := rr.T.Intersect(ss.T); ok && iv == p.T {
							okPiece = true
						}
					}
				}
				if okPiece {
					break
				}
				// Case 2: maximal uncovered sub-interval: no matching s
				// overlaps it, and extending by one point in either
				// direction hits a matching s or leaves rr.T.
				covered := false
				for _, ss := range s.Tuples {
					if rr.Vals[0].Equal(ss.Vals[0]) && ss.T.Overlaps(p.T) {
						covered = true
					}
				}
				if covered {
					continue
				}
				extendLeftOK := p.T.Ts == rr.T.Ts
				extendRightOK := p.T.Te == rr.T.Te
				for _, ss := range s.Tuples {
					if !rr.Vals[0].Equal(ss.Vals[0]) {
						continue
					}
					if ss.T.Contains(p.T.Ts - 1) {
						extendLeftOK = true
					}
					if ss.T.Contains(p.T.Te) {
						extendRightOK = true
					}
				}
				if extendLeftOK && extendRightOK {
					okPiece = true
					break
				}
			}
			if !okPiece {
				t.Fatalf("round %d: piece %v violates Proposition 4\nr:\n%s\ns:\n%s\naligned:\n%s",
					round, p, r, s, rt)
			}
		}
	}
}

// TestAlignAgainstEmptyGroup: aligning against an empty relation returns r
// unchanged; normalizing likewise.
func TestAlignAgainstEmpty(t *testing.T) {
	a := Default()
	r := relation.NewBuilder("x string").Row(0, 9, "a").Row(2, 4, "b").MustBuild()
	empty := relation.NewBuilder("y string").MustBuild()
	aligned, err := a.Align(r, empty, nil)
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	if !relation.SetEqual(aligned, r) {
		t.Fatalf("align against empty changed r:\n%s", aligned)
	}
	norm, err := a.Normalize(r, empty)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if !relation.SetEqual(norm, r) {
		t.Fatalf("normalize against empty changed r:\n%s", norm)
	}
}

// TestEmptyArguments: every operator handles empty inputs.
func TestEmptyArguments(t *testing.T) {
	a := Default()
	empty := relation.NewBuilder("x string", "v int").MustBuild()
	other := relation.NewBuilder("x string", "v int").Row(0, 5, "a", 1).MustBuild()
	if out, err := a.Union(empty, other); err != nil || out.Len() != 1 {
		t.Fatalf("union with empty: %v %v", out, err)
	}
	if out, err := a.Difference(empty, other); err != nil || out.Len() != 0 {
		t.Fatalf("difference with empty: %v %v", out, err)
	}
	if out, err := a.Join(empty, other, nil); err != nil || out.Len() != 0 {
		t.Fatalf("join with empty: %v %v", out, err)
	}
	if out, err := a.FullOuterJoin(empty, other, nil); err != nil || out.Len() != 1 {
		t.Fatalf("full outer with empty: %v %v", out, err)
	}
	if out, err := a.Projection(empty, "x"); err != nil || out.Len() != 0 {
		t.Fatalf("projection of empty: %v %v", out, err)
	}
}
