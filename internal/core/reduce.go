package core

import (
	"fmt"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/plan"
	"talign/internal/relation"
)

// This file implements the reduction rules of Table 2. Every temporal
// operator reduces to its nontemporal counterpart over adjusted argument
// relations; adjusted timestamps are compared with equality only.
//
//	Selection     σT_θ(r)   = σ_θ(r)
//	Projection    πT_B(r)   = π_{B,T}(N_B(r; r))
//	Aggregation   BϑT_F(r)  = B,Tϑ_F(N_B(r; r))
//	Difference    r −T s    = N_A(r; s) − N_A(s; r)
//	Union         r ∪T s    = N_A(r; s) ∪ N_A(s; r)
//	Intersection  r ∩T s    = N_A(r; s) ∩ N_A(s; r)
//	Cart.Prod.    r ×T s    = α((rΦtrue s) ⋈_{r.T=s.T} (sΦtrue r))
//	Inner Join    r ⋈T_θ s  = α((rΦθ s) ⋈_{θ∧r.T=s.T} (sΦθ r))
//	Left O. Join  r ⟕T_θ s  = α((rΦθ s) ⟕_{θ∧r.T=s.T} (sΦθ r))
//	Right O. Join r ⟖T_θ s  = α((rΦθ s) ⟖_{θ∧r.T=s.T} (sΦθ r))
//	Full O. Join  r ⟗T_θ s  = α((rΦθ s) ⟗_{θ∧r.T=s.T} (sΦθ r))
//	Anti Join     r ▷T_θ s  =  (rΦθ s) ▷_{θ∧r.T=s.T} (sΦθ r)

// Selection evaluates σT_θ(r): the only operator needing no adjustment.
func (a *Algebra) Selection(r *relation.Relation, pred expr.Expr) (*relation.Relation, error) {
	bound, err := pred.Bind(r.Schema)
	if err != nil {
		return nil, err
	}
	if expr.UsesT(bound) {
		return nil, fmt.Errorf("core: selection predicate references the implicit valid time; use Extend (extended snapshot reducibility)")
	}
	return plan.Run(a.p.Filter(a.p.Scan(r, "r"), bound))
}

// Projection evaluates πT_B(r) = π_{B,T}(N_B(r; r)) with set semantics.
func (a *Algebra) Projection(r *relation.Relation, attrs ...string) (*relation.Relation, error) {
	cols, err := r.Schema.Indexes(attrs...)
	if err != nil {
		return nil, err
	}
	scan := a.p.Scan(r, "r")
	norm := a.NormalizePlan(scan, a.p.Scan(r, "r"), cols)
	names := make([]string, len(cols))
	exprs := make([]expr.Expr, len(cols))
	for i, c := range cols {
		at := r.Schema.Attrs[c]
		names[i] = at.Name
		exprs[i] = expr.ColIdx{Idx: c, Typ: at.Type, Name: at.Name}
	}
	proj := a.p.Project(norm, names, exprs) // TKeep: the adjusted T survives
	return plan.Run(a.p.Distinct(proj))
}

// Aggregation evaluates BϑT_F(r) = B,Tϑ_F(N_B(r; r)). groupBy names the
// grouping attributes B (possibly empty); aggregate arguments may reference
// any attribute of r, including propagated timestamps.
func (a *Algebra) Aggregation(r *relation.Relation, groupBy []string, aggs []exec.AggSpec) (*relation.Relation, error) {
	cols, err := r.Schema.Indexes(groupBy...)
	if err != nil {
		return nil, err
	}
	norm := a.NormalizePlan(a.p.Scan(r, "r"), a.p.Scan(r, "r"), cols)
	names := make([]string, len(cols))
	exprs := make([]expr.Expr, len(cols))
	for i, c := range cols {
		at := r.Schema.Attrs[c]
		names[i] = at.Name
		exprs[i] = expr.ColIdx{Idx: c, Typ: at.Type, Name: at.Name}
	}
	boundAggs := make([]exec.AggSpec, len(aggs))
	for i, sp := range aggs {
		boundAggs[i] = sp
		if sp.Arg != nil {
			arg, err := sp.Arg.Bind(r.Schema)
			if err != nil {
				return nil, err
			}
			if expr.UsesT(arg) {
				return nil, fmt.Errorf("core: aggregate argument references the implicit valid time; use Extend (extended snapshot reducibility)")
			}
			boundAggs[i].Arg = arg
		}
	}
	agg, err := a.p.ParAggregate(norm, exprs, names, true, boundAggs)
	if err != nil {
		return nil, err
	}
	return plan.Run(agg)
}

// setOperands builds the two normalized inputs N_A(r; s) and N_A(s; r).
func (a *Algebra) setOperands(r, s *relation.Relation) (plan.Node, plan.Node, error) {
	if !r.Schema.UnionCompatible(s.Schema) {
		return nil, nil, fmt.Errorf("core: set operation arguments not union compatible: %s vs %s", r.Schema, s.Schema)
	}
	all := make([]int, r.Schema.Len())
	for i := range all {
		all[i] = i
	}
	nr := a.NormalizePlan(a.p.Scan(r, "r"), a.p.Scan(s, "s"), all)
	ns := a.NormalizePlan(a.p.Scan(s, "s"), a.p.Scan(r, "r"), all)
	return nr, ns, nil
}

// Union evaluates r ∪T s = N_A(r; s) ∪ N_A(s; r).
func (a *Algebra) Union(r, s *relation.Relation) (*relation.Relation, error) {
	nr, ns, err := a.setOperands(r, s)
	if err != nil {
		return nil, err
	}
	return plan.Run(a.p.SetOp(nr, ns, exec.UnionOp))
}

// Difference evaluates r −T s = N_A(r; s) − N_A(s; r).
func (a *Algebra) Difference(r, s *relation.Relation) (*relation.Relation, error) {
	nr, ns, err := a.setOperands(r, s)
	if err != nil {
		return nil, err
	}
	return plan.Run(a.p.SetOp(nr, ns, exec.ExceptOp))
}

// Intersection evaluates r ∩T s = N_A(r; s) ∩ N_A(s; r).
func (a *Algebra) Intersection(r, s *relation.Relation) (*relation.Relation, error) {
	nr, ns, err := a.setOperands(r, s)
	if err != nil {
		return nil, err
	}
	return plan.Run(a.p.SetOp(nr, ns, exec.IntersectOp))
}

// joinReduce implements the shared reduction for the tuple based binary
// operators: align both arguments, join the adjusted relations with
// θ ∧ r.T = s.T, and absorb temporal duplicates (Example 9) — except for
// the antijoin, whose rule has no absorb.
func (a *Algebra) joinReduce(r, s *relation.Relation, theta expr.Expr, typ exec.JoinType) (*relation.Relation, error) {
	bound, err := BindTheta(r, s, theta)
	if err != nil {
		return nil, err
	}
	node, err := a.JoinReducePlan(a.p.Scan(r, "r"), a.p.Scan(s, "s"), bound, typ)
	if err != nil {
		return nil, err
	}
	return plan.Run(node)
}

// JoinReducePlan builds the Table 2 plan for a tuple based binary operator
// over already-constructed inputs. theta must be bound against
// Concat(r.Schema, s.Schema) (nil means true).
func (a *Algebra) JoinReducePlan(r, s plan.Node, theta expr.Expr, typ exec.JoinType) (plan.Node, error) {
	if typ == exec.AntiJoin && a.p.Flags.EnableAntiJoinRewrite {
		// Specialized primitive (Sec. 8 future work): only the aligner's
		// gap tuples can survive (rΦθs) ▷_{θ∧r.T=s.T} (sΦθr) — by
		// Proposition 3 every intersection piece has an equal-timestamp
		// θ-partner on the other side — so the antijoin IS the gaps-only
		// alignment, and the second alignment and the join disappear.
		return a.GapsPlan(r, s, theta), nil
	}
	rl, sl := r.Schema().Len(), s.Schema().Len()
	rAligned := a.AlignPlan(r, s, theta)
	sAligned := a.AlignPlan(s, r, swapTheta(theta, rl, sl))
	// The reduction compares adjusted timestamps with equality, so T is an
	// ordinary equi-join key — which also makes the join hash-partitionable
	// across the exchange layer when DOP > 1.
	join := a.p.ParJoin(rAligned, sAligned, theta, typ, true)
	if typ == exec.AntiJoin {
		return join, nil
	}
	return a.p.Absorb(join), nil
}

// CartesianProduct evaluates r ×T s.
func (a *Algebra) CartesianProduct(r, s *relation.Relation) (*relation.Relation, error) {
	return a.joinReduce(r, s, nil, exec.InnerJoin)
}

// Join evaluates the temporal inner join r ⋈T_θ s.
func (a *Algebra) Join(r, s *relation.Relation, theta expr.Expr) (*relation.Relation, error) {
	return a.joinReduce(r, s, theta, exec.InnerJoin)
}

// LeftOuterJoin evaluates r ⟕T_θ s.
func (a *Algebra) LeftOuterJoin(r, s *relation.Relation, theta expr.Expr) (*relation.Relation, error) {
	return a.joinReduce(r, s, theta, exec.LeftOuterJoin)
}

// RightOuterJoin evaluates r ⟖T_θ s.
func (a *Algebra) RightOuterJoin(r, s *relation.Relation, theta expr.Expr) (*relation.Relation, error) {
	return a.joinReduce(r, s, theta, exec.RightOuterJoin)
}

// FullOuterJoin evaluates r ⟗T_θ s.
func (a *Algebra) FullOuterJoin(r, s *relation.Relation, theta expr.Expr) (*relation.Relation, error) {
	return a.joinReduce(r, s, theta, exec.FullOuterJoin)
}

// AntiJoin evaluates r ▷T_θ s (no absorb, per Table 2).
func (a *Algebra) AntiJoin(r, s *relation.Relation, theta expr.Expr) (*relation.Relation, error) {
	return a.joinReduce(r, s, theta, exec.AntiJoin)
}

// Timeslice exposes τ_t over the package API for applications (temporal
// upward compatibility: querying the state at one time point).
func Timeslice(r *relation.Relation, t int64) *relation.Relation {
	return r.Timeslice(t)
}
