package core

import (
	"testing"

	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/interval"
	"talign/internal/relation"
)

// The tests in this file replay the paper's running hotel example (Fig. 1)
// and its worked examples. Months are encoded as integers with 2012/1 = 0,
// so e.g. [2012/2, 2012/6) is [1, 5).

// reservationsR returns relation R of Fig. 1(a).
func reservationsR() *relation.Relation {
	return relation.NewBuilder("n string").
		Row(0, 7, "Ann").  // r1 [2012/1, 2012/8)
		Row(1, 5, "Joe").  // r2 [2012/2, 2012/6)
		Row(7, 11, "Ann"). // r3 [2012/8, 2012/12)
		MustBuild()
}

// pricesP returns relation P of Fig. 1(a).
func pricesP() *relation.Relation {
	return relation.NewBuilder("a int", "min int", "max int").
		Row(0, 5, 50, 1, 2).   // s1 [2012/1, 2012/6)
		Row(0, 5, 40, 3, 7).   // s2
		Row(0, 12, 30, 8, 12). // s3 [2012/1, 2013/1)
		Row(9, 12, 50, 1, 2).  // s4 [2012/10, 2013/1)
		Row(9, 12, 40, 3, 7).  // s5
		MustBuild()
}

// thetaQ1 is Min <= DUR(U) <= Max over Concat(U(R), P).
func thetaQ1() expr.Expr {
	return expr.Between{X: expr.Dur(expr.C("u")), Lo: expr.C("min"), Hi: expr.C("max")}
}

func mustEqual(t *testing.T, got, want *relation.Relation) {
	t.Helper()
	if !relation.SetEqual(got, want) {
		onlyGot, onlyWant := relation.Diff(got, want)
		t.Fatalf("relations differ\nonly in got:  %v\nonly in want: %v\ngot:\n%s\nwant:\n%s",
			onlyGot, onlyWant, got, want)
	}
}

func iv(ts, te int64) interval.Interval { return interval.New(ts, te) }

// TestQ1LeftOuterJoin replays query Q1 = R ⟕T_{Min≤DUR(R.T)≤Max} P and
// checks the exact result of Fig. 1(b), including timestamp propagation
// (extended snapshot reducibility) and the preserved change at 2012/8
// (tuples z3 and z4 stay separate).
func TestQ1LeftOuterJoin(t *testing.T) {
	a := Default()
	ru := MustExtend(reservationsR(), "u")
	got, err := a.LeftOuterJoin(ru, pricesP(), thetaQ1())
	if err != nil {
		t.Fatalf("left outer join: %v", err)
	}
	want := relation.NewBuilder("n string", "u period", "a int", "min int", "max int").
		Row(0, 5, "Ann", iv(0, 7), 40, 3, 7).       // z1
		Row(1, 5, "Joe", iv(1, 5), 40, 3, 7).       // z2
		Row(5, 7, "Ann", iv(0, 7), nil, nil, nil).  // z3
		Row(7, 9, "Ann", iv(7, 11), nil, nil, nil). // z4 (change at 2012/8 preserved)
		Row(9, 11, "Ann", iv(7, 11), 40, 3, 7).     // z5
		MustBuild()
	mustEqual(t, got, want)
}

// TestQ2Aggregation replays Q2 = ϑT_AVG(DUR(R.T))(R) (Fig. 7).
func TestQ2Aggregation(t *testing.T) {
	a := Default()
	ru := MustExtend(reservationsR(), "u")
	got, err := a.Aggregation(ru, nil, []exec.AggSpec{
		{Func: exec.AggAvg, Arg: expr.Dur(expr.C("u")), Name: "avg_dur"},
	})
	if err != nil {
		t.Fatalf("aggregation: %v", err)
	}
	want := relation.NewBuilder("avg_dur float").
		Row(0, 1, 7.0).
		Row(1, 5, 5.5).
		Row(5, 7, 7.0).
		Row(7, 11, 4.0).
		MustBuild()
	mustEqual(t, got, want)
}

// TestNormalizationFig3 replays N_{}(R; R) of Fig. 3.
func TestNormalizationFig3(t *testing.T) {
	a := Default()
	r := reservationsR()
	got, err := a.Normalize(r, r)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	want := relation.NewBuilder("n string").
		Row(0, 1, "Ann").
		Row(1, 5, "Ann").
		Row(5, 7, "Ann").
		Row(1, 5, "Joe").
		Row(7, 11, "Ann").
		MustBuild()
	mustEqual(t, got, want)
}

// TestAlignmentFig4 replays P Φ_{Min≤DUR(U)≤Max} U(R) of Fig. 4.
func TestAlignmentFig4(t *testing.T) {
	a := Default()
	ru := MustExtend(reservationsR(), "u")
	// θ over Concat(P, U(R)).
	theta := expr.Between{X: expr.Dur(expr.C("u")), Lo: expr.C("min"), Hi: expr.C("max")}
	got, err := a.Align(pricesP(), ru, theta)
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	want := relation.NewBuilder("a int", "min int", "max int").
		Row(0, 5, 50, 1, 2).
		Row(9, 12, 50, 1, 2).
		Row(0, 5, 40, 3, 7).   // s2 ∩ r1
		Row(1, 5, 40, 3, 7).   // s2 ∩ r2
		Row(9, 11, 40, 3, 7).  // s5 ∩ r3
		Row(11, 12, 40, 3, 7). // uncovered rest of s5
		Row(0, 12, 30, 8, 12).
		MustBuild()
	mustEqual(t, got, want)
}

// TestSplitterFig2a replays the temporal splitter illustration of
// Fig. 2(a): r over [2012/1, 2012/8), g1 over [2012/1, 2012/4), g2 over
// [2012/3, 2012/6) produce T1..T4.
func TestSplitterFig2a(t *testing.T) {
	a := Default()
	r := relation.NewBuilder("x string").Row(0, 7, "r").MustBuild()
	g := relation.NewBuilder("x string").
		Row(0, 3, "r").
		Row(2, 5, "r").
		MustBuild()
	got, err := a.Normalize(r, g, "x")
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	want := relation.NewBuilder("x string").
		Row(0, 2, "r").
		Row(2, 3, "r").
		Row(3, 5, "r").
		Row(5, 7, "r").
		MustBuild()
	mustEqual(t, got, want)
}

// TestAlignerFig2b replays the temporal aligner illustration of Fig. 2(b):
// the intersections with g1 and g2 plus the maximal uncovered tail.
func TestAlignerFig2b(t *testing.T) {
	a := Default()
	r := relation.NewBuilder("x string").Row(0, 7, "r").MustBuild()
	g := relation.NewBuilder("x string").
		Row(0, 3, "r").
		Row(2, 5, "r").
		MustBuild()
	got, err := a.Align(r, g, nil) // θ = true
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	want := relation.NewBuilder("x string").
		Row(0, 3, "r"). // r ∩ g1
		Row(2, 5, "r"). // r ∩ g2
		Row(5, 7, "r"). // maximal uncovered part
		MustBuild()
	mustEqual(t, got, want)
}

// TestLemma1BaseCase replays Fig. 5: one r tuple and two disjoint s tuples
// inside it produce 2m+1 = 5 aligned tuples.
func TestLemma1BaseCase(t *testing.T) {
	a := Default()
	r := relation.NewBuilder("x string").Row(0, 11, "r1").MustBuild()
	s := relation.NewBuilder("y string").
		Row(1, 3, "s1").
		Row(5, 8, "s2").
		MustBuild()
	got, err := a.Align(r, s, nil)
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	want := relation.NewBuilder("x string").
		Row(0, 1, "r1").
		Row(1, 3, "r1").
		Row(3, 5, "r1").
		Row(5, 8, "r1").
		Row(8, 11, "r1").
		MustBuild()
	mustEqual(t, got, want)
}

// TestExample9CartesianAbsorb replays Example 9: the temporal Cartesian
// product produces a temporal duplicate (a,c,[3,7)) ⊂ (a,c,[1,9)) that the
// absorb operator removes.
func TestExample9CartesianAbsorb(t *testing.T) {
	a := Default()
	r := relation.NewBuilder("x string").
		Row(1, 9, "a").
		Row(3, 7, "b").
		MustBuild()
	s := relation.NewBuilder("y string").
		Row(1, 9, "c").
		Row(3, 7, "d").
		MustBuild()
	got, err := a.CartesianProduct(r, s)
	if err != nil {
		t.Fatalf("cartesian product: %v", err)
	}
	want := relation.NewBuilder("x string", "y string").
		Row(1, 9, "a", "c").
		Row(3, 7, "a", "d").
		Row(3, 7, "b", "c").
		Row(3, 7, "b", "d").
		MustBuild()
	mustEqual(t, got, want)
}

// TestExample9AlignedInputs checks the intermediate alignments of
// Example 9 before the join.
func TestExample9AlignedInputs(t *testing.T) {
	a := Default()
	r := relation.NewBuilder("x string").
		Row(1, 9, "a").
		Row(3, 7, "b").
		MustBuild()
	s := relation.NewBuilder("y string").
		Row(1, 9, "c").
		Row(3, 7, "d").
		MustBuild()
	rt, err := a.Align(r, s, nil)
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	want := relation.NewBuilder("x string").
		Row(1, 9, "a").
		Row(3, 7, "a").
		Row(3, 7, "b").
		MustBuild()
	mustEqual(t, rt, want)
}

// TestUnionPreservesChanges checks that ∪T keeps the pieces produced by
// different argument tuples separate instead of coalescing them.
func TestUnionPreservesChanges(t *testing.T) {
	a := Default()
	r := relation.NewBuilder("x string").Row(0, 4, "a").MustBuild()
	s := relation.NewBuilder("x string").Row(2, 6, "a").MustBuild()
	got, err := a.Union(r, s)
	if err != nil {
		t.Fatalf("union: %v", err)
	}
	want := relation.NewBuilder("x string").
		Row(0, 2, "a").
		Row(2, 4, "a").
		Row(4, 6, "a").
		MustBuild()
	mustEqual(t, got, want)
}

// TestDifference checks r −T s on overlapping value-equivalent tuples.
func TestDifference(t *testing.T) {
	a := Default()
	r := relation.NewBuilder("x string").
		Row(0, 10, "a").
		Row(0, 10, "b").
		MustBuild()
	s := relation.NewBuilder("x string").
		Row(2, 4, "a").
		Row(8, 12, "b").
		MustBuild()
	got, err := a.Difference(r, s)
	if err != nil {
		t.Fatalf("difference: %v", err)
	}
	want := relation.NewBuilder("x string").
		Row(0, 2, "a").
		Row(4, 10, "a").
		Row(0, 8, "b").
		MustBuild()
	mustEqual(t, got, want)
}

// TestIntersection checks r ∩T s.
func TestIntersection(t *testing.T) {
	a := Default()
	r := relation.NewBuilder("x string").Row(0, 10, "a").Row(0, 3, "b").MustBuild()
	s := relation.NewBuilder("x string").Row(2, 4, "a").Row(5, 6, "a").MustBuild()
	got, err := a.Intersection(r, s)
	if err != nil {
		t.Fatalf("intersection: %v", err)
	}
	want := relation.NewBuilder("x string").
		Row(2, 4, "a").
		Row(5, 6, "a").
		MustBuild()
	mustEqual(t, got, want)
}

// TestProjection checks πT_B change preservation: pieces split at the
// boundaries of same-B tuples, value duplicates merged.
func TestProjection(t *testing.T) {
	a := Default()
	r := relation.NewBuilder("n string", "v int").
		Row(0, 7, "Ann", 1).
		Row(1, 5, "Ann", 2).
		MustBuild()
	got, err := a.Projection(r, "n")
	if err != nil {
		t.Fatalf("projection: %v", err)
	}
	want := relation.NewBuilder("n string").
		Row(0, 1, "Ann").
		Row(1, 5, "Ann").
		Row(5, 7, "Ann").
		MustBuild()
	mustEqual(t, got, want)
}

// TestAntiJoin checks r ▷T_θ s: the gaps of r w.r.t. matching s tuples.
func TestAntiJoin(t *testing.T) {
	a := Default()
	r := relation.NewBuilder("x string").Row(0, 10, "a").MustBuild()
	s := relation.NewBuilder("y string").
		Row(2, 4, "a").
		Row(6, 7, "b").
		MustBuild()
	got, err := a.AntiJoin(r, s, expr.Eq(expr.C("x"), expr.C("y")))
	if err != nil {
		t.Fatalf("antijoin: %v", err)
	}
	want := relation.NewBuilder("x string").
		Row(0, 2, "a").
		Row(4, 10, "a").
		MustBuild()
	mustEqual(t, got, want)
}

// TestSelection checks σT passes tuples through untouched.
func TestSelection(t *testing.T) {
	a := Default()
	r := relation.NewBuilder("x string", "v int").
		Row(0, 5, "a", 1).
		Row(3, 9, "b", 2).
		MustBuild()
	got, err := a.Selection(r, expr.Gt(expr.C("v"), expr.Int(1)))
	if err != nil {
		t.Fatalf("selection: %v", err)
	}
	want := relation.NewBuilder("x string", "v int").
		Row(3, 9, "b", 2).
		MustBuild()
	mustEqual(t, got, want)
}

// TestFullOuterJoin exercises the O3-style full outer join on an equality
// condition.
func TestFullOuterJoin(t *testing.T) {
	a := Default()
	r := relation.NewBuilder("k int").Row(0, 10, 1).MustBuild()
	s := relation.NewBuilder("k2 int").Row(5, 15, 1).Row(0, 3, 2).MustBuild()
	got, err := a.FullOuterJoin(r, s, expr.Eq(expr.C("k"), expr.C("k2")))
	if err != nil {
		t.Fatalf("full outer join: %v", err)
	}
	want := relation.NewBuilder("k int", "k2 int").
		Row(0, 5, 1, nil).   // r unmatched part
		Row(5, 10, 1, 1).    // matched intersection
		Row(10, 15, nil, 1). // s unmatched part
		Row(0, 3, nil, 2).   // s tuple with no θ-partner
		MustBuild()
	mustEqual(t, got, want)
}

// TestExtendRejectsDuplicate verifies U(r) refuses an existing name.
func TestExtendRejectsDuplicate(t *testing.T) {
	r := relation.NewBuilder("x string").Row(0, 1, "a").MustBuild()
	if _, err := Extend(r, "x"); err == nil {
		t.Fatal("extend with duplicate attribute name should fail")
	}
}

// TestThetaOverImplicitTimeRejected verifies the extended snapshot
// reducibility guard: conditions must use propagated timestamps.
func TestThetaOverImplicitTimeRejected(t *testing.T) {
	a := Default()
	r := relation.NewBuilder("x string").Row(0, 1, "a").MustBuild()
	s := relation.NewBuilder("y string").Row(0, 1, "b").MustBuild()
	_, err := a.Join(r, s, expr.Gt(expr.TEnd{}, expr.Int(0)))
	if err == nil {
		t.Fatal("θ over the implicit valid time should be rejected")
	}
}
