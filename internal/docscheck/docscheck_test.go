// Package docscheck enforces the documentation contract in CI: every
// package carries a package comment, and the exported API surface of the
// user-facing packages (sqlish, plan, exec, server) is fully documented.
// It mirrors revive's "package-comments" and "exported" rules with the
// standard library's go/ast, so the check runs under plain `go test`
// without any external linter installed (revive.toml configures the same
// rules for environments that do have revive).
package docscheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("docscheck: go.mod not found above working directory")
		}
		dir = parent
	}
}

// parseDir parses the non-test Go files of one directory.
func parseDir(t *testing.T, dir string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("docscheck: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("docscheck: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	return fset, files
}

// TestPackageComments requires a "// Package xxx ..." comment on every
// package under internal/, cmd/ and examples/, plus the public root
// package and the database/sql driver.
func TestPackageComments(t *testing.T) {
	root := repoRoot(t)
	dirs := []string{".", "sqldriver"}
	for _, group := range []string{"internal", "cmd", "examples"} {
		entries, err := os.ReadDir(filepath.Join(root, group))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() {
				dirs = append(dirs, filepath.Join(group, e.Name()))
			}
		}
	}
	for _, rel := range dirs {
		dir := filepath.Join(root, rel)
		_, files := parseDir(t, dir)
		documented := false
		for _, f := range files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
			}
		}
		if len(files) > 0 && !documented {
			t.Errorf("%s: no file carries a package comment", rel)
		}
	}
}

// TestExportedDocs requires a doc comment on every exported top-level
// declaration (types, funcs, methods on exported types, consts, vars) in
// the packages whose API the docs satellite covers — the public talign
// root package and the database/sql driver included.
func TestExportedDocs(t *testing.T) {
	root := repoRoot(t)
	for _, pkg := range []string{
		"internal/sqlish", "internal/plan", "internal/exec",
		"internal/server", "internal/expr", "internal/stats",
		"internal/opt", "internal/wire", "internal/colbatch",
		"internal/storage", "internal/distsql", "internal/backoff",
		".", "sqldriver",
	} {
		dir := filepath.Join(root, pkg)
		fset, files := parseDir(t, dir)
		for _, f := range files {
			for _, decl := range f.Decls {
				for _, miss := range undocumented(decl) {
					pos := fset.Position(decl.Pos())
					t.Errorf("%s: exported %s lacks a doc comment (%s:%d)",
						pkg, miss, filepath.Base(pos.Filename), pos.Line)
				}
			}
		}
	}
}

// ifaceMethods are method names documented once on the package's central
// interface (plan.Node, exec.Iterator / exec.BatchSizer, expr.Expr);
// implementations inherit that contract, so re-documenting each of the
// dozens of operator types' Schema/Build/Next/... would be noise. Every
// other exported method still needs its own comment.
var ifaceMethods = map[string]bool{
	// plan.Node
	"Children": true, "Rows": true, "Cost": true, "Build": true, "Label": true,
	// exec.Iterator + exec.BatchSizer (Schema is shared with plan.Node)
	"Schema": true, "Open": true, "Next": true, "Close": true, "SetBatchSize": true,
	// expr.Expr + fmt.Stringer
	"Bind": true, "Type": true, "Eval": true, "String": true,
}

// undocumented lists the exported names of decl that no doc comment
// covers. A doc comment on a grouped const/var/type block covers every
// spec in the block (matching revive's exported rule in its default
// configuration).
func undocumented(decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		if d.Recv != nil {
			recv := receiverType(d.Recv)
			if recv == "" || !ast.IsExported(recv) {
				return nil
			}
			if ifaceMethods[d.Name.Name] {
				return nil
			}
			return []string{fmt.Sprintf("method %s.%s", recv, d.Name.Name)}
		}
		return []string{"func " + d.Name.Name}
	case *ast.GenDecl:
		if d.Doc != nil {
			return nil // block comment covers the group
		}
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && sp.Doc == nil && sp.Comment == nil {
					out = append(out, "type "+sp.Name.Name)
				}
			case *ast.ValueSpec:
				if sp.Doc != nil || sp.Comment != nil {
					continue
				}
				for _, name := range sp.Names {
					if name.IsExported() {
						out = append(out, fmt.Sprintf("%s %s", d.Tok, name.Name))
					}
				}
			}
		}
	}
	return out
}

// receiverType extracts the receiver's type name.
func receiverType(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		if ident, ok := idx.X.(*ast.Ident); ok {
			return ident.Name
		}
	}
	return ""
}
