// Package dataset generates the evaluation workloads of Sec. 7.
//
// The real-world Incumben dataset (University of Arizona) is not publicly
// available; Incumben synthesizes a dataset matching every statistic the
// paper reports: 83,857 job-assignment entries, 49,195 distinct employees
// (ssn), day granularity over a 16 year span, and interval durations
// between 1 and 573 days with a mean of about 180. Job codes (pcn) are not
// characterized in the paper; we draw them uniformly from about 7,000
// positions (documented substitution, see DESIGN.md).
//
// The synthetic datasets D_disj (pairwise disjoint intervals), D_eq (all
// intervals equal) and D_rand (random intervals and price categories) are
// generated exactly as described in Sec. 7.4; the "random dataset" of
// Sec. 7.5 keeps Incumben's duration distribution but randomizes start
// points.
package dataset

import (
	"math"
	"math/rand"

	"talign/internal/interval"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// Incumben mirrors the published statistics of the real dataset.
const (
	IncumbenRows      = 83857
	IncumbenEmployees = 49195
	IncumbenSpanDays  = 16 * 365.25 // 16 years at day granularity
	IncumbenMinDur    = 1
	IncumbenMaxDur    = 573
	IncumbenMeanDur   = 180
	IncumbenPositions = 7000
)

// IncumbenConfig scales the synthetic Incumben generator.
type IncumbenConfig struct {
	Rows int
	Seed int64
}

// IncumbenSchema is (ssn int, pcn int) plus the implicit valid time.
func IncumbenSchema() schema.Schema {
	return schema.MustNew(
		schema.Attr{Name: "ssn", Type: value.KindInt},
		schema.Attr{Name: "pcn", Type: value.KindInt},
	)
}

// Incumben generates the scaled synthetic dataset. Distinct employee and
// position counts scale linearly with Rows so group sizes match the real
// dataset at every sweep point.
func Incumben(cfg IncumbenConfig) *relation.Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := cfg.Rows
	if rows <= 0 {
		rows = IncumbenRows
	}
	employees := int(float64(rows) * IncumbenEmployees / IncumbenRows)
	if employees < 1 {
		employees = 1
	}
	positions := int(float64(rows) * IncumbenPositions / IncumbenRows)
	if positions < 10 {
		positions = 10
	}
	rel := relation.New(IncumbenSchema())
	span := int64(IncumbenSpanDays)
	type key struct{ ssn, pcn int64 }
	used := make(map[key][]interval.Interval, rows)
	for len(rel.Tuples) < rows {
		var ssn int64
		if len(rel.Tuples) < employees {
			ssn = int64(len(rel.Tuples)) // guarantee the distinct count
		} else {
			ssn = int64(rng.Intn(employees))
		}
		pcn := int64(rng.Intn(positions))
		dur := incumbenDuration(rng)
		// Job assignments start on administrative month boundaries (the
		// real dataset's timestamps cluster, giving far fewer distinct
		// split points than uniformly random data — the contrast Fig. 16
		// relies on).
		months := (span - dur) / 30
		if months < 1 {
			months = 1
		}
		start := 30 * rng.Int63n(months)
		iv := interval.Interval{Ts: start, Te: start + dur}
		k := key{ssn, pcn}
		clash := false
		for _, u := range used[k] {
			if u.Overlaps(iv) {
				clash = true
				break
			}
		}
		if clash {
			continue // keep the relation duplicate free
		}
		used[k] = append(used[k], iv)
		rel.Tuples = append(rel.Tuples, tuple.Tuple{
			Vals: []value.Value{value.NewInt(ssn), value.NewInt(pcn)},
			T:    iv,
		})
	}
	return rel
}

// incumbenDuration draws a duration with mean ≈ IncumbenMeanDur clamped to
// the published range (a truncated normal keeps the average while allowing
// the long 573-day tail).
func incumbenDuration(rng *rand.Rand) int64 {
	for {
		d := int64(math.Round(rng.NormFloat64()*90 + IncumbenMeanDur))
		if d >= IncumbenMinDur && d <= IncumbenMaxDur {
			return d
		}
	}
}

// pairSchema is the generic two-relation schema used by the O1/O2/O3
// workloads: r(id, grp) and s(id, grp) — grp doubles as pcn for O3 and as
// an uninterpreted payload elsewhere.
func pairSchema(idName, grpName string) schema.Schema {
	return schema.MustNew(
		schema.Attr{Name: idName, Type: value.KindInt},
		schema.Attr{Name: grpName, Type: value.KindInt},
	)
}

// Ddisj generates the D_disj pair: every interval in either relation is
// disjoint from every other interval (Sec. 7.4). The temporal outer join
// O1 degenerates to emitting every tuple null-padded; the standard-SQL
// NOT EXISTS must scan almost the whole inner relation per tuple.
func Ddisj(n int, seed int64) (r, s *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	r = relation.New(pairSchema("rid", "rgrp"))
	s = relation.New(pairSchema("sid", "sgrp"))
	for i := 0; i < n; i++ {
		base := int64(i) * 20
		r.Tuples = append(r.Tuples, tuple.Tuple{
			Vals: []value.Value{value.NewInt(int64(i)), value.NewInt(int64(rng.Intn(100)))},
			T:    interval.Interval{Ts: base, Te: base + 8},
		})
		s.Tuples = append(s.Tuples, tuple.Tuple{
			Vals: []value.Value{value.NewInt(int64(i)), value.NewInt(int64(rng.Intn(100)))},
			T:    interval.Interval{Ts: base + 10, Te: base + 18},
		})
	}
	return r, s
}

// Deq generates the D_eq pair: all intervals are identical (Sec. 7.4), the
// best case for the standard-SQL formulation because every NOT EXISTS
// refutes on its first probe.
func Deq(n int, seed int64) (r, s *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	r = relation.New(pairSchema("rid", "rgrp"))
	s = relation.New(pairSchema("sid", "sgrp"))
	span := interval.Interval{Ts: 0, Te: 1000}
	for i := 0; i < n; i++ {
		r.Tuples = append(r.Tuples, tuple.Tuple{
			Vals: []value.Value{value.NewInt(int64(i)), value.NewInt(int64(rng.Intn(100)))},
			T:    span,
		})
		s.Tuples = append(s.Tuples, tuple.Tuple{
			Vals: []value.Value{value.NewInt(int64(i)), value.NewInt(int64(rng.Intn(100)))},
			T:    span,
		})
	}
	return r, s
}

// DrandSchemaS is the price-category side of O2: (a, min, max) plus time.
func DrandSchemaS() schema.Schema {
	return schema.MustNew(
		schema.Attr{Name: "a", Type: value.KindInt},
		schema.Attr{Name: "min", Type: value.KindInt},
		schema.Attr{Name: "max", Type: value.KindInt},
	)
}

// Drand generates the D_rand pair for query O2 (Sec. 7.4): r has random
// intervals; s has random intervals plus duration categories [min, max]
// that O2's θ condition compares against DUR(r.T).
func Drand(n int, seed int64) (r, s *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	r = relation.New(pairSchema("rid", "rgrp"))
	s = relation.New(DrandSchemaS())
	span := int64(20 * n)
	if span < 1000 {
		span = 1000
	}
	for i := 0; i < n; i++ {
		dur := 1 + rng.Int63n(120)
		start := rng.Int63n(span)
		r.Tuples = append(r.Tuples, tuple.Tuple{
			Vals: []value.Value{value.NewInt(int64(i)), value.NewInt(int64(rng.Intn(100)))},
			T:    interval.Interval{Ts: start, Te: start + dur},
		})
		lo := 1 + rng.Int63n(50)
		hi := lo + rng.Int63n(100)
		sdur := 1 + rng.Int63n(120)
		sstart := rng.Int63n(span)
		s.Tuples = append(s.Tuples, tuple.Tuple{
			Vals: []value.Value{value.NewInt(int64(i)), value.NewInt(lo), value.NewInt(hi)},
			T:    interval.Interval{Ts: sstart, Te: sstart + sdur},
		})
	}
	return r, s
}

// RandomIncumbenLike generates the Sec. 7.5 "random dataset": Incumben's
// average duration but uniformly random start and end points and uniform
// random job codes, yielding a larger temporal join result and more
// distinct splitting points than the real data.
func RandomIncumbenLike(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := relation.New(IncumbenSchema())
	span := int64(IncumbenSpanDays)
	employees := int(float64(n) * IncumbenEmployees / IncumbenRows)
	if employees < 1 {
		employees = 1
	}
	// A third of Incumben's position pool: random categories repeat more
	// often, so the temporal join result of O3 grows — the paper's stated
	// contrast between the random dataset and the real one (Sec. 7.5).
	positions := int(float64(n) * IncumbenPositions / IncumbenRows / 3)
	if positions < 10 {
		positions = 10
	}
	type key struct{ ssn, pcn int64 }
	used := make(map[key][]interval.Interval, n)
	for len(rel.Tuples) < n {
		ssn := int64(rng.Intn(employees))
		pcn := int64(rng.Intn(positions))
		dur := 1 + rng.Int63n(2*IncumbenMeanDur-1) // uniform, mean ≈ 180
		start := rng.Int63n(span - dur + 1)
		iv := interval.Interval{Ts: start, Te: start + dur}
		k := key{ssn, pcn}
		clash := false
		for _, u := range used[k] {
			if u.Overlaps(iv) {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		used[k] = append(used[k], iv)
		rel.Tuples = append(rel.Tuples, tuple.Tuple{
			Vals: []value.Value{value.NewInt(ssn), value.NewInt(pcn)},
			T:    iv,
		})
	}
	return rel
}

// SplitHalves deterministically splits a relation into two halves with
// renamed schemas (used to build the r and s sides of O3 from Incumben).
func SplitHalves(rel *relation.Relation, leftNames, rightNames []string) (r, s *relation.Relation) {
	mk := func(names []string) schema.Schema {
		attrs := make([]schema.Attr, rel.Schema.Len())
		for i, a := range rel.Schema.Attrs {
			attrs[i] = schema.Attr{Name: names[i], Type: a.Type}
		}
		return schema.Schema{Attrs: attrs}
	}
	r = relation.New(mk(leftNames))
	s = relation.New(mk(rightNames))
	for i, t := range rel.Tuples {
		if i%2 == 0 {
			r.Tuples = append(r.Tuples, t)
		} else {
			s.Tuples = append(s.Tuples, t)
		}
	}
	return r, s
}
