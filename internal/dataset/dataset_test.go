package dataset

import (
	"testing"

	"talign/internal/relation"
)

// TestIncumbenStatistics verifies the generator reproduces the published
// statistics of the real dataset at a scaled size.
func TestIncumbenStatistics(t *testing.T) {
	const n = 20000
	rel := Incumben(IncumbenConfig{Rows: n, Seed: 3})
	if rel.Len() != n {
		t.Fatalf("rows: %d", rel.Len())
	}
	if err := rel.DuplicateFree(); err != nil {
		t.Fatalf("duplicate free: %v", err)
	}
	ssn := map[int64]bool{}
	var durSum int64
	for _, tp := range rel.Tuples {
		ssn[tp.Vals[0].Int()] = true
		d := tp.T.Duration()
		if d < IncumbenMinDur || d > IncumbenMaxDur {
			t.Fatalf("duration %d outside [%d, %d]", d, IncumbenMinDur, IncumbenMaxDur)
		}
		durSum += d
		if tp.T.Ts < 0 || tp.T.Te > int64(IncumbenSpanDays) {
			t.Fatalf("interval %v outside the 16-year span", tp.T)
		}
	}
	wantEmployees := n * IncumbenEmployees / IncumbenRows
	if got := len(ssn); got < wantEmployees*95/100 || got > wantEmployees*105/100 {
		t.Fatalf("distinct employees: %d, want ≈ %d", got, wantEmployees)
	}
	mean := float64(durSum) / float64(n)
	if mean < 160 || mean > 200 {
		t.Fatalf("mean duration %.1f, want ≈ %d", mean, IncumbenMeanDur)
	}
}

func TestIncumbenDeterminism(t *testing.T) {
	a := Incumben(IncumbenConfig{Rows: 500, Seed: 7})
	b := Incumben(IncumbenConfig{Rows: 500, Seed: 7})
	if !relation.SetEqual(a, b) {
		t.Fatal("same seed must reproduce the dataset")
	}
	c := Incumben(IncumbenConfig{Rows: 500, Seed: 8})
	if relation.SetEqual(a, c) {
		t.Fatal("different seeds must differ")
	}
}

func TestDdisjIsDisjoint(t *testing.T) {
	r, s := Ddisj(200, 1)
	all := r.Clone()
	all.Tuples = append(all.Tuples, s.Tuples...)
	for i, a := range all.Tuples {
		for _, b := range all.Tuples[i+1:] {
			if a.T.Overlaps(b.T) {
				t.Fatalf("intervals %v and %v overlap", a.T, b.T)
			}
		}
	}
}

func TestDeqAllEqual(t *testing.T) {
	r, s := Deq(100, 1)
	span := r.Tuples[0].T
	for _, tp := range append(r.Tuples, s.Tuples...) {
		if tp.T != span {
			t.Fatalf("interval %v differs", tp.T)
		}
	}
	if err := r.DuplicateFree(); err != nil {
		t.Fatalf("ids keep D_eq duplicate free: %v", err)
	}
}

func TestDrandCategories(t *testing.T) {
	r, s := Drand(300, 2)
	if r.Len() != 300 || s.Len() != 300 {
		t.Fatal("sizes")
	}
	for _, tp := range s.Tuples {
		lo, hi := tp.Vals[1].Int(), tp.Vals[2].Int()
		if lo < 1 || hi < lo {
			t.Fatalf("category [%d, %d] malformed", lo, hi)
		}
	}
}

func TestRandomIncumbenLike(t *testing.T) {
	rel := RandomIncumbenLike(2000, 4)
	if rel.Len() != 2000 {
		t.Fatalf("rows: %d", rel.Len())
	}
	if err := rel.DuplicateFree(); err != nil {
		t.Fatalf("duplicate free: %v", err)
	}
	var durSum int64
	for _, tp := range rel.Tuples {
		durSum += tp.T.Duration()
	}
	mean := float64(durSum) / 2000
	if mean < 150 || mean > 210 {
		t.Fatalf("mean duration %.1f, want ≈ 180", mean)
	}
}

func TestSplitHalves(t *testing.T) {
	rel := Incumben(IncumbenConfig{Rows: 100, Seed: 5})
	r, s := SplitHalves(rel, []string{"ssn", "pcn"}, []string{"ssn2", "pcn2"})
	if r.Len()+s.Len() != rel.Len() {
		t.Fatal("halves must partition the relation")
	}
	if r.Schema.Attrs[0].Name != "ssn" || s.Schema.Attrs[0].Name != "ssn2" {
		t.Fatal("renaming broken")
	}
}
