package dataset

import "talign/internal/relation"

// Demo returns the paper's running hotel example (Example 1, Fig. 1):
// room reservations r(n) and price categories p(a, mn, mx) over months
// since 2012/1. Both binaries (talign -demo, talignd -demo) and the CI
// smoke test load exactly this catalog, so the worked examples in
// docs/SQL.md and README.md stay reproducible against it.
func Demo() (r, p *relation.Relation) {
	r = relation.NewBuilder("n string").
		Row(0, 7, "Ann").
		Row(1, 5, "Joe").
		Row(7, 11, "Ann").
		MustBuild()
	p = relation.NewBuilder("a int", "mn int", "mx int").
		Row(0, 5, 50, 1, 2).   // short term, winter
		Row(0, 5, 40, 3, 7).   // long term, winter
		Row(0, 12, 30, 8, 12). // permanent
		Row(9, 12, 50, 1, 2).  // short term, next winter
		Row(9, 12, 40, 3, 7).  // long term, next winter
		MustBuild()
	return r, p
}
