// Package schema describes temporal relation schemas R = (A1, ..., Am, T)
// (Sec. 3.1). The valid-time attribute T is implicit: a Schema lists only
// the nontemporal attributes A1..Am; every tuple additionally carries its
// interval timestamp.
package schema

import (
	"fmt"
	"strings"

	"talign/internal/value"
)

// Attr is a named, typed nontemporal attribute.
type Attr struct {
	Name string
	Type value.Kind
}

// String renders "name type".
func (a Attr) String() string { return a.Name + " " + a.Type.String() }

// Schema is an ordered list of nontemporal attributes.
type Schema struct {
	Attrs []Attr
}

// New builds a schema from attributes; duplicate names are rejected.
func New(attrs ...Attr) (Schema, error) {
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		key := strings.ToLower(a.Name)
		if seen[key] {
			return Schema{}, fmt.Errorf("schema: duplicate attribute %q", a.Name)
		}
		seen[key] = true
	}
	return Schema{Attrs: attrs}, nil
}

// MustNew is New but panics on error; for literals in tests and examples.
func MustNew(attrs ...Attr) Schema {
	s, err := New(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of nontemporal attributes.
func (s Schema) Len() int { return len(s.Attrs) }

// Index returns the position of the attribute with the given name
// (case-insensitive), or -1 if absent.
func (s Schema) Index(name string) int {
	for i, a := range s.Attrs {
		if strings.EqualFold(a.Name, name) {
			return i
		}
	}
	return -1
}

// Indexes resolves a list of attribute names to positions; it fails on the
// first unknown name.
func (s Schema) Indexes(names ...string) ([]int, error) {
	out := make([]int, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("schema: unknown attribute %q", n)
		}
		out = append(out, i)
	}
	return out, nil
}

// Project returns the sub-schema at the given positions.
func (s Schema) Project(cols []int) Schema {
	attrs := make([]Attr, len(cols))
	for i, c := range cols {
		attrs[i] = s.Attrs[c]
	}
	return Schema{Attrs: attrs}
}

// Concat appends o's attributes after s's (join result schema). Name
// clashes are permitted here; resolution layers qualify names.
func (s Schema) Concat(o Schema) Schema {
	attrs := make([]Attr, 0, len(s.Attrs)+len(o.Attrs))
	attrs = append(attrs, s.Attrs...)
	attrs = append(attrs, o.Attrs...)
	return Schema{Attrs: attrs}
}

// UnionCompatible reports whether two schemas have the same arity and
// pairwise compatible types (identical, or both numeric). The set
// operators of the algebra require union compatible arguments (Sec. 3.1).
func (s Schema) UnionCompatible(o Schema) bool {
	if len(s.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range s.Attrs {
		a, b := s.Attrs[i].Type, o.Attrs[i].Type
		if a == b {
			continue
		}
		if a.Numeric() && b.Numeric() {
			continue
		}
		// An untyped (null-only) column unions with anything: it arises
		// from literal ω padding in outer-join style queries.
		if a == value.KindNull || b == value.KindNull {
			continue
		}
		return false
	}
	return true
}

// Equal reports whether both schemas have identical names and types.
func (s Schema) Equal(o Schema) bool {
	if len(s.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range s.Attrs {
		if !strings.EqualFold(s.Attrs[i].Name, o.Attrs[i].Name) || s.Attrs[i].Type != o.Attrs[i].Type {
			return false
		}
	}
	return true
}

// String renders "(a int, b string)".
func (s Schema) String() string {
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
