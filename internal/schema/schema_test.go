package schema

import (
	"testing"

	"talign/internal/value"
)

func TestNewRejectsDuplicates(t *testing.T) {
	if _, err := New(Attr{Name: "a", Type: value.KindInt}, Attr{Name: "A", Type: value.KindInt}); err == nil {
		t.Fatal("case-insensitive duplicate must fail")
	}
	s, err := New(Attr{Name: "a", Type: value.KindInt}, Attr{Name: "b", Type: value.KindString})
	if err != nil || s.Len() != 2 {
		t.Fatalf("new: %v %v", s, err)
	}
}

func TestIndexAndIndexes(t *testing.T) {
	s := MustNew(Attr{Name: "a", Type: value.KindInt}, Attr{Name: "b", Type: value.KindString})
	if s.Index("B") != 1 || s.Index("a") != 0 || s.Index("zz") != -1 {
		t.Fatal("index lookup broken")
	}
	idx, err := s.Indexes("b", "a")
	if err != nil || idx[0] != 1 || idx[1] != 0 {
		t.Fatalf("indexes: %v %v", idx, err)
	}
	if _, err := s.Indexes("zz"); err == nil {
		t.Fatal("unknown name must fail")
	}
}

func TestProjectConcat(t *testing.T) {
	s := MustNew(Attr{Name: "a", Type: value.KindInt}, Attr{Name: "b", Type: value.KindString})
	p := s.Project([]int{1})
	if p.Len() != 1 || p.Attrs[0].Name != "b" {
		t.Fatalf("project: %v", p)
	}
	c := s.Concat(p)
	if c.Len() != 3 || c.Attrs[2].Name != "b" {
		t.Fatalf("concat: %v", c)
	}
}

func TestUnionCompatible(t *testing.T) {
	a := MustNew(Attr{Name: "x", Type: value.KindInt}, Attr{Name: "y", Type: value.KindString})
	b := MustNew(Attr{Name: "p", Type: value.KindFloat}, Attr{Name: "q", Type: value.KindString})
	if !a.UnionCompatible(b) {
		t.Fatal("numeric kinds are compatible")
	}
	c := MustNew(Attr{Name: "p", Type: value.KindString}, Attr{Name: "q", Type: value.KindString})
	if a.UnionCompatible(c) {
		t.Fatal("int vs string must not be compatible")
	}
	d := MustNew(Attr{Name: "only", Type: value.KindInt})
	if a.UnionCompatible(d) {
		t.Fatal("arity mismatch must not be compatible")
	}
	// ω-typed (padding) columns union with anything.
	e := MustNew(Attr{Name: "p", Type: value.KindNull}, Attr{Name: "q", Type: value.KindNull})
	if !a.UnionCompatible(e) {
		t.Fatal("null columns must be wildcards")
	}
}

func TestEqualAndString(t *testing.T) {
	a := MustNew(Attr{Name: "x", Type: value.KindInt})
	b := MustNew(Attr{Name: "X", Type: value.KindInt})
	c := MustNew(Attr{Name: "x", Type: value.KindString})
	if !a.Equal(b) || a.Equal(c) {
		t.Fatal("schema equality broken")
	}
	if a.String() != "(x int)" {
		t.Fatalf("string: %q", a.String())
	}
}
